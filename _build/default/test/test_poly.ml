open Flo_linalg
open Flo_poly

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---- Affine ---------------------------------------------------------- *)

let test_affine_apply () =
  let f = Affine.make (Imat.of_rows [ [ 1; 0 ]; [ 1; 1 ] ]) [| 2; 0 |] in
  checkb "apply" true (Ivec.equal (Affine.apply f [| 3; 4 |]) [| 5; 7 |]);
  check "in_dim" 2 (Affine.in_dim f);
  check "out_dim" 2 (Affine.out_dim f)

let test_affine_compose () =
  let f = Affine.make (Imat.of_rows [ [ 2; 0 ]; [ 0; 1 ] ]) [| 1; 1 |] in
  let g = Affine.make (Imat.of_rows [ [ 0; 1 ]; [ 1; 0 ] ]) [| 0; 3 |] in
  let fg = Affine.compose f g in
  let x = [| 5; 7 |] in
  checkb "compose = f after g" true
    (Ivec.equal (Affine.apply fg x) (Affine.apply f (Affine.apply g x)))

let test_affine_identity () =
  let id = Affine.identity 3 in
  checkb "identity" true (Ivec.equal (Affine.apply id [| 1; 2; 3 |]) [| 1; 2; 3 |]);
  Alcotest.check_raises "offset mismatch"
    (Invalid_argument "Affine.make: offset dimension mismatch") (fun () ->
      ignore (Affine.make (Imat.identity 2) [| 0 |]))

(* ---- Hyperplane ------------------------------------------------------ *)

let test_hyperplane () =
  let h = Hyperplane.make [| 2; 4 |] 6 in
  checkb "normalized normal" true (Ivec.equal h.Hyperplane.normal [| 1; 2 |]);
  check "normalized constant" 3 h.Hyperplane.constant;
  checkb "contains" true (Hyperplane.contains h [| 1; 1 |]);
  checkb "not contains" false (Hyperplane.contains h [| 0; 0 |]);
  let axis = Hyperplane.axis 3 1 in
  checkb "axis normal" true (Ivec.equal axis.Hyperplane.normal [| 0; 1; 0 |]);
  checkb "same family" true
    (Hyperplane.same_family h (Hyperplane.make [| 3; 6 |] 1));
  let m = Hyperplane.member_through [| 1; 2 |] [| 5; 1 |] in
  check "member constant" 7 m.Hyperplane.constant;
  Alcotest.check_raises "zero normal" (Invalid_argument "Hyperplane.make: zero normal")
    (fun () -> ignore (Hyperplane.make [| 0; 0 |] 1))

(* ---- Iter_space ------------------------------------------------------ *)

let test_iter_space () =
  let s = Iter_space.make [| (0, 3); (1, 2) |] in
  check "depth" 2 (Iter_space.depth s);
  check "cardinal" 8 (Iter_space.cardinal s);
  check "extent" 4 (Iter_space.extent s 0);
  check "lo" 1 (Iter_space.lo s 1);
  check "hi" 2 (Iter_space.hi s 1);
  checkb "mem" true (Iter_space.mem s [| 2; 1 |]);
  checkb "not mem" false (Iter_space.mem s [| 4; 1 |]);
  checkb "wrong dim" false (Iter_space.mem s [| 1 |]);
  Alcotest.check_raises "lo > hi" (Invalid_argument "Iter_space.make: lo > hi") (fun () ->
      ignore (Iter_space.make [| (3, 1) |]))

let test_iter_space_iter () =
  let s = Iter_space.make [| (0, 1); (0, 2) |] in
  let seen = ref [] in
  Iter_space.iter s (fun v -> seen := Array.copy v :: !seen);
  check "count" 6 (List.length !seen);
  checkb "lexicographic order" true
    (List.rev !seen
    = [ [| 0; 0 |]; [| 0; 1 |]; [| 0; 2 |]; [| 1; 0 |]; [| 1; 1 |]; [| 1; 2 |] ])

let test_iter_slice () =
  let s = Iter_space.make [| (0, 7); (0, 1) |] in
  let n = ref 0 in
  Iter_space.iter_slice s ~dim:0 ~lo:2 ~hi:4 (fun _ -> incr n);
  check "slice count" 6 !n;
  n := 0;
  Iter_space.iter_slice s ~dim:0 ~lo:6 ~hi:20 (fun _ -> incr n);
  check "clamped slice" 4 !n;
  n := 0;
  Iter_space.iter_slice s ~dim:0 ~lo:9 ~hi:20 (fun _ -> incr n);
  check "void slice" 0 !n

(* ---- Data_space ------------------------------------------------------ *)

let test_data_space () =
  let s = Data_space.make [| 4; 3 |] in
  check "rank" 2 (Data_space.rank s);
  check "cardinal" 12 (Data_space.cardinal s);
  check "extent" 3 (Data_space.extent s 1);
  checkb "mem" true (Data_space.mem s [| 3; 2 |]);
  checkb "not mem" false (Data_space.mem s [| 4; 0 |]);
  Alcotest.check_raises "nonpositive extent"
    (Invalid_argument "Data_space.make: nonpositive extent") (fun () ->
      ignore (Data_space.make [| 4; 0 |]))

let test_data_space_indexing () =
  let s = Data_space.make [| 4; 3 |] in
  check "row major" 5 (Data_space.row_major_index s [| 1; 2 |]);
  check "col major" 9 (Data_space.col_major_index s [| 1; 2 |]);
  checkb "round trip" true
    (Ivec.equal (Data_space.of_row_major s 5) [| 1; 2 |]);
  (* row-major enumeration matches index order *)
  let i = ref 0 in
  let ok = ref true in
  Data_space.iter s (fun a ->
      if Data_space.row_major_index s a <> !i then ok := false;
      incr i);
  checkb "iter matches row-major" true !ok;
  check "iter count" 12 !i

let test_data_space_bijections () =
  let s = Data_space.make [| 3; 5; 2 |] in
  let seen = Hashtbl.create 30 in
  Data_space.iter s (fun a ->
      let rm = Data_space.row_major_index s a in
      let cm = Data_space.col_major_index s a in
      checkb "rm in range" true (rm >= 0 && rm < 30);
      checkb "cm in range" true (cm >= 0 && cm < 30);
      Hashtbl.replace seen (rm, cm) ());
  check "bijective" 30 (Hashtbl.length seen)

(* ---- Access ----------------------------------------------------------- *)

let test_access () =
  let r = Access.ji ~array_id:7 in
  check "array id" 7 (Access.array_id r);
  check "rank" 2 (Access.rank r);
  check "depth" 2 (Access.depth r);
  checkb "eval swaps" true (Ivec.equal (Access.eval r [| 3; 9 |]) [| 9; 3 |]);
  let d = Imat.of_rows [ [ 0; 1 ]; [ 1; 0 ] ] in
  let r' = Access.transform d r in
  checkb "transformed is identity" true (Imat.equal (Access.matrix r') (Imat.identity 2));
  checkb "same matrix" true (Access.same_matrix (Access.ij ~array_id:1) (Access.ij ~array_id:2));
  checkb "diag eval" true (Ivec.equal (Access.eval (Access.diag ~array_id:0) [| 2; 3 |]) [| 5; 3 |])

(* ---- Loop_nest -------------------------------------------------------- *)

let space44 = Iter_space.make [| (0, 3); (0, 3) |]

let test_loop_nest () =
  let nest = Loop_nest.make ~weight:3 ~parallel_dim:0 space44 [ Access.ij ~array_id:0 ] in
  check "depth" 2 (Loop_nest.depth nest);
  check "trip count includes weight" 48 (Loop_nest.trip_count nest);
  check "refs_to" 1 (List.length (Loop_nest.refs_to nest 0));
  check "refs_to other" 0 (List.length (Loop_nest.refs_to nest 1));
  checkb "arrays touched" true (Loop_nest.arrays_touched nest = [ 0 ]);
  Alcotest.check_raises "bad parallel dim"
    (Invalid_argument "Loop_nest.make: parallel_dim out of range") (fun () ->
      ignore (Loop_nest.make ~parallel_dim:2 space44 [ Access.ij ~array_id:0 ]));
  Alcotest.check_raises "no refs" (Invalid_argument "Loop_nest.make: no references")
    (fun () -> ignore (Loop_nest.make ~parallel_dim:0 space44 []));
  Alcotest.check_raises "depth mismatch"
    (Invalid_argument "Loop_nest.make: reference depth mismatch") (fun () ->
      ignore
        (Loop_nest.make ~parallel_dim:0 space44
           [ Access.of_rows ~array_id:0 [ [ 1; 0; 0 ]; [ 0; 1; 0 ] ] [ 0; 0 ] ]))

(* ---- Program ---------------------------------------------------------- *)

let decl id name n = Program.declare ~id ~name (Data_space.make [| n; n |])

let test_program () =
  let p =
    Program.make ~name:"p"
      [ decl 0 "a" 4; decl 1 "b" 4 ]
      [ Loop_nest.make ~parallel_dim:0 space44 [ Access.ij ~array_id:0; Access.ji ~array_id:1 ] ]
  in
  checkb "ids" true (Program.array_ids p = [ 0; 1 ]);
  check "refs to 0" 1 (List.length (Program.refs_to p 0));
  check "total trip" 16 (Program.total_trip_count p);
  checkb "decl lookup" true ((Program.array_decl p 1).Program.name = "b");
  checkb "opaque default" false (Program.array_decl p 0).Program.opaque;
  Alcotest.check_raises "undeclared"
    (Invalid_argument "Program.make: reference to undeclared array") (fun () ->
      ignore
        (Program.make ~name:"bad" [ decl 0 "a" 4 ]
           [ Loop_nest.make ~parallel_dim:0 space44 [ Access.ij ~array_id:9 ] ]));
  Alcotest.check_raises "duplicate ids" (Invalid_argument "Program.make: duplicate array ids")
    (fun () -> ignore (Program.make ~name:"bad" [ decl 0 "a" 4; decl 0 "b" 4 ] []));
  Alcotest.check_raises "rank mismatch"
    (Invalid_argument "Program.make: reference rank mismatch") (fun () ->
      ignore
        (Program.make ~name:"bad"
           [ Program.declare ~id:0 ~name:"a" (Data_space.make [| 4; 4; 4 |]) ]
           [ Loop_nest.make ~parallel_dim:0 space44 [ Access.ij ~array_id:0 ] ]))

let test_program_opaque () =
  let d = Program.declare ~opaque:true ~id:0 ~name:"x" (Data_space.make [| 2; 2 |]) in
  checkb "opaque set" true d.Program.opaque

(* ---- Parallelize ------------------------------------------------------ *)

let nest16 =
  Loop_nest.make ~parallel_dim:0
    (Iter_space.make [| (0, 15); (0, 3) |])
    [ Access.ij ~array_id:0 ]

let test_round_robin () =
  let p = Parallelize.round_robin ~threads:4 nest16 in
  check "num blocks" 4 p.Parallelize.num_blocks;
  checkb "block 0 range" true (Parallelize.block_range p 0 = (0, 3));
  checkb "block 3 range" true (Parallelize.block_range p 3 = (12, 15));
  check "owner rr" 1 (Parallelize.owner p 1);
  checkb "blocks of thread" true (Parallelize.blocks_of_thread p 2 = [ 2 ]);
  let counts = Parallelize.iterations_per_thread p in
  checkb "balanced" true (Array.for_all (fun c -> c = 16) counts)

let test_round_robin_multi_block () =
  let p = Parallelize.round_robin ~threads:4 ~blocks_per_thread:2 nest16 in
  check "num blocks" 8 p.Parallelize.num_blocks;
  checkb "thread 1 blocks" true (Parallelize.blocks_of_thread p 1 = [ 1; 5 ]);
  checkb "block 5 range" true (Parallelize.block_range p 5 = (10, 11))

let test_uneven_last_block () =
  let nest =
    Loop_nest.make ~parallel_dim:0
      (Iter_space.make [| (0, 9); (0, 0) |])
      [ Access.ij ~array_id:0 ]
  in
  let p = Parallelize.round_robin ~threads:3 nest in
  (* ceil(10/3) = 4 -> ranges 0-3, 4-7, 8-9 *)
  checkb "block 2 smaller" true (Parallelize.block_range p 2 = (8, 9));
  let counts = Parallelize.iterations_per_thread p in
  checkb "last thread lighter" true (counts.(2) = 2 && counts.(0) = 4)

let test_iter_thread () =
  let p = Parallelize.round_robin ~threads:4 nest16 in
  let seen = ref [] in
  Parallelize.iter_thread p ~thread:1 (fun v -> seen := Array.copy v :: !seen);
  check "iterations" 16 (List.length !seen);
  checkb "all in block range" true
    (List.for_all (fun v -> v.(0) >= 4 && v.(0) <= 7) !seen)

let test_custom_assign () =
  let p = Parallelize.custom ~threads:4 ~num_blocks:4 ~assign:(fun b -> 3 - b) nest16 in
  check "reversed owner" 3 (Parallelize.owner p 0);
  checkb "thread 0 owns block 3" true (Parallelize.blocks_of_thread p 0 = [ 3 ]);
  let bad = Parallelize.custom ~threads:4 ~num_blocks:4 ~assign:(fun _ -> 9) nest16 in
  Alcotest.check_raises "assign out of range"
    (Invalid_argument "Parallelize: assign out of range") (fun () ->
      ignore (Parallelize.owner bad 0))

let test_more_blocks_than_iterations () =
  Alcotest.check_raises "too many blocks"
    (Invalid_argument "Parallelize: more blocks than parallel iterations") (fun () ->
      ignore (Parallelize.round_robin ~threads:32 nest16))

(* threads' iterations partition the space exactly *)
let prop_partition_exact =
  QCheck.Test.make ~name:"thread iterations partition the space" ~count:50
    (QCheck.pair (QCheck.int_range 1 8) (QCheck.int_range 1 3))
    (fun (threads, bpt) ->
      QCheck.assume (threads * bpt <= 16);
      let p = Parallelize.round_robin ~threads ~blocks_per_thread:bpt nest16 in
      let seen = Hashtbl.create 64 in
      for t = 0 to threads - 1 do
        Parallelize.iter_thread p ~thread:t (fun v ->
            let key = (v.(0), v.(1)) in
            if Hashtbl.mem seen key then failwith "duplicate iteration";
            Hashtbl.replace seen key ())
      done;
      Hashtbl.length seen = 64)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_partition_exact ]

let suite =
  [
    ("affine apply", `Quick, test_affine_apply);
    ("affine compose", `Quick, test_affine_compose);
    ("affine identity", `Quick, test_affine_identity);
    ("hyperplane", `Quick, test_hyperplane);
    ("iter space basics", `Quick, test_iter_space);
    ("iter space enumeration", `Quick, test_iter_space_iter);
    ("iter space slices", `Quick, test_iter_slice);
    ("data space basics", `Quick, test_data_space);
    ("data space indexing", `Quick, test_data_space_indexing);
    ("data space bijections", `Quick, test_data_space_bijections);
    ("access references", `Quick, test_access);
    ("loop nest", `Quick, test_loop_nest);
    ("program validation", `Quick, test_program);
    ("program opaque arrays", `Quick, test_program_opaque);
    ("parallelize round robin", `Quick, test_round_robin);
    ("parallelize multi-block", `Quick, test_round_robin_multi_block);
    ("parallelize uneven last block", `Quick, test_uneven_last_block);
    ("parallelize iter_thread", `Quick, test_iter_thread);
    ("parallelize custom assignment", `Quick, test_custom_assign);
    ("parallelize too many blocks", `Quick, test_more_blocks_than_iterations);
  ]
  @ qsuite
