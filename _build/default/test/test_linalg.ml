open Flo_linalg

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---- Rat ------------------------------------------------------------ *)

let test_rat_normalization () =
  let r = Rat.make 6 4 in
  check "num" 3 (Rat.num r);
  check "den" 2 (Rat.den r);
  let r = Rat.make (-6) 4 in
  check "neg num" (-3) (Rat.num r);
  let r = Rat.make 6 (-4) in
  check "sign moves to num" (-3) (Rat.num r);
  check "den positive" 2 (Rat.den r);
  let z = Rat.make 0 5 in
  check "zero canonical num" 0 (Rat.num z);
  check "zero canonical den" 1 (Rat.den z)

let test_rat_div_by_zero () =
  Alcotest.check_raises "make 1 0" Division_by_zero (fun () -> ignore (Rat.make 1 0));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Rat.inv Rat.zero));
  Alcotest.check_raises "div zero" Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero))

let test_rat_arith () =
  let half = Rat.make 1 2 and third = Rat.make 1 3 in
  checkb "1/2+1/3" true (Rat.equal (Rat.add half third) (Rat.make 5 6));
  checkb "1/2-1/3" true (Rat.equal (Rat.sub half third) (Rat.make 1 6));
  checkb "1/2*1/3" true (Rat.equal (Rat.mul half third) (Rat.make 1 6));
  checkb "1/2 / 1/3" true (Rat.equal (Rat.div half third) (Rat.make 3 2));
  checkb "neg" true (Rat.equal (Rat.neg half) (Rat.make (-1) 2));
  checkb "abs" true (Rat.equal (Rat.abs (Rat.make (-1) 2)) half)

let test_rat_compare () =
  check "1/2 vs 1/3" 1 (Rat.compare (Rat.make 1 2) (Rat.make 1 3));
  check "equal" 0 (Rat.compare (Rat.make 2 4) (Rat.make 1 2));
  check "negative" (-1) (Rat.compare (Rat.make (-1) 2) Rat.zero);
  check "sign pos" 1 (Rat.sign (Rat.make 3 7));
  check "sign neg" (-1) (Rat.sign (Rat.make (-3) 7));
  check "sign zero" 0 (Rat.sign Rat.zero)

let test_rat_floor_ceil () =
  check "floor 7/2" 3 (Rat.floor (Rat.make 7 2));
  check "floor -7/2" (-4) (Rat.floor (Rat.make (-7) 2));
  check "ceil 7/2" 4 (Rat.ceil (Rat.make 7 2));
  check "ceil -7/2" (-3) (Rat.ceil (Rat.make (-7) 2));
  check "floor integer" 5 (Rat.floor (Rat.of_int 5));
  check "ceil integer" 5 (Rat.ceil (Rat.of_int 5))

let test_rat_to_int () =
  check "to_int_exn" 7 (Rat.to_int_exn (Rat.make 14 2));
  checkb "is_integer" true (Rat.is_integer (Rat.make 14 2));
  checkb "not integer" false (Rat.is_integer (Rat.make 1 2));
  Alcotest.check_raises "to_int_exn non-integer"
    (Invalid_argument "Rat.to_int_exn: not an integer") (fun () ->
      ignore (Rat.to_int_exn (Rat.make 1 2)))

let test_gcd_lcm () =
  check "gcd 12 18" 6 (Rat.gcd 12 18);
  check "gcd 0 5" 5 (Rat.gcd 0 5);
  check "gcd 0 0" 0 (Rat.gcd 0 0);
  check "gcd neg" 6 (Rat.gcd (-12) 18);
  check "lcm 4 6" 12 (Rat.lcm 4 6);
  check "lcm 0 3" 0 (Rat.lcm 0 3)

(* ---- Ivec ----------------------------------------------------------- *)

let test_ivec_basics () =
  let v = Ivec.of_list [ 1; -2; 3 ] in
  check "dim" 3 (Ivec.dim v);
  check "get" (-2) (Ivec.get v 1);
  checkb "unit" true (Ivec.equal (Ivec.unit 3 1) [| 0; 1; 0 |]);
  Alcotest.check_raises "unit out of range" (Invalid_argument "Ivec.unit") (fun () ->
      ignore (Ivec.unit 3 3));
  checkb "add" true (Ivec.equal (Ivec.add v [| 1; 1; 1 |]) [| 2; -1; 4 |]);
  checkb "sub" true (Ivec.equal (Ivec.sub v [| 1; 1; 1 |]) [| 0; -3; 2 |]);
  checkb "scale" true (Ivec.equal (Ivec.scale 2 v) [| 2; -4; 6 |]);
  check "dot" 14 (Ivec.dot [| 1; 2; 3 |] [| 3; 4; 1 |]);
  checkb "is_zero" true (Ivec.is_zero (Ivec.zero 4));
  checkb "not zero" false (Ivec.is_zero v)

let test_ivec_primitive () =
  checkb "divides by gcd" true (Ivec.equal (Ivec.primitive [| 4; -6; 8 |]) [| 2; -3; 4 |]);
  checkb "sign normal" true (Ivec.equal (Ivec.primitive [| -2; 4 |]) [| 1; -2 |]);
  check "gcd" 2 (Ivec.gcd [| 4; -6; 8 |]);
  check "gcd zero vec" 0 (Ivec.gcd (Ivec.zero 3));
  checkb "zero stays" true (Ivec.is_zero (Ivec.primitive (Ivec.zero 3)))

let test_ivec_lex () =
  checkb "lex lt" true (Ivec.lex_compare [| 1; 2 |] [| 1; 3 |] < 0);
  checkb "lex eq" true (Ivec.lex_compare [| 1; 2 |] [| 1; 2 |] = 0);
  checkb "lex gt" true (Ivec.lex_compare [| 2; 0 |] [| 1; 9 |] > 0)

(* ---- Imat ----------------------------------------------------------- *)

let m_ab = Imat.of_rows [ [ 1; 2 ]; [ 3; 4 ] ]

let test_imat_basics () =
  check "rows" 2 (Imat.rows m_ab);
  check "cols" 2 (Imat.cols m_ab);
  check "get" 3 (Imat.get m_ab 1 0);
  checkb "row" true (Ivec.equal (Imat.row m_ab 0) [| 1; 2 |]);
  checkb "col" true (Ivec.equal (Imat.col m_ab 1) [| 2; 4 |]);
  checkb "transpose" true
    (Imat.equal (Imat.transpose m_ab) (Imat.of_rows [ [ 1; 3 ]; [ 2; 4 ] ]));
  checkb "identity" true (Imat.equal (Imat.identity 2) (Imat.of_rows [ [ 1; 0 ]; [ 0; 1 ] ]))

let test_imat_mul () =
  let product = Imat.mul m_ab (Imat.of_rows [ [ 0; 1 ]; [ 1; 0 ] ]) in
  checkb "mul" true (Imat.equal product (Imat.of_rows [ [ 2; 1 ]; [ 4; 3 ] ]));
  checkb "mul_vec" true (Ivec.equal (Imat.mul_vec m_ab [| 1; 1 |]) [| 3; 7 |]);
  checkb "vec_mul" true (Ivec.equal (Imat.vec_mul [| 1; 1 |] m_ab) [| 4; 6 |]);
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Imat.mul: dimension mismatch")
    (fun () -> ignore (Imat.mul m_ab (Imat.of_rows [ [ 1; 2 ] ])))

let test_imat_det () =
  check "det 2x2" (-2) (Imat.det m_ab);
  check "det identity" 1 (Imat.det (Imat.identity 4));
  check "det singular" 0 (Imat.det (Imat.of_rows [ [ 1; 2 ]; [ 2; 4 ] ]));
  check "det 3x3" (-306)
    (Imat.det (Imat.of_rows [ [ 6; 1; 1 ]; [ 4; -2; 5 ]; [ 2; 8; 7 ] ]));
  check "det with zero pivot" (-1) (Imat.det (Imat.of_rows [ [ 0; 1 ]; [ 1; 0 ] ]));
  checkb "unimodular" true (Imat.is_unimodular (Imat.of_rows [ [ 0; 1 ]; [ -1; 0 ] ]));
  checkb "not unimodular" false (Imat.is_unimodular m_ab)

let test_imat_delete () =
  let m = Imat.of_rows [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] in
  checkb "delete col" true
    (Imat.equal (Imat.delete_col m 1) (Imat.of_rows [ [ 1; 3 ]; [ 4; 6 ] ]));
  checkb "delete row" true (Imat.equal (Imat.delete_row m 0) (Imat.of_rows [ [ 4; 5; 6 ] ]));
  checkb "append cols" true
    (Imat.equal
       (Imat.append_cols (Imat.identity 2) m_ab)
       (Imat.of_rows [ [ 1; 0; 1; 2 ]; [ 0; 1; 3; 4 ] ]))

let test_imat_permutation () =
  let p = Imat.permutation [ 1; 0 ] in
  checkb "swap" true (Ivec.equal (Imat.mul_vec p [| 7; 9 |]) [| 9; 7 |]);
  Alcotest.check_raises "not a permutation" (Invalid_argument "Imat.permutation")
    (fun () -> ignore (Imat.permutation [ 0; 0 ]))

(* ---- Gauss ----------------------------------------------------------- *)

let test_gauss_rank () =
  check "rank full" 2 (Gauss.rank m_ab);
  check "rank singular" 1 (Gauss.rank (Imat.of_rows [ [ 1; 2 ]; [ 2; 4 ] ]));
  check "rank zero" 0 (Gauss.rank (Imat.of_rows [ [ 0; 0 ]; [ 0; 0 ] ]));
  check "rank rect" 2 (Gauss.rank (Imat.of_rows [ [ 1; 0; 1 ]; [ 0; 1; 1 ] ]))

let test_gauss_nullspace () =
  let m = Imat.of_rows [ [ 1; 2 ]; [ 2; 4 ] ] in
  (match Gauss.nullspace m with
  | [ v ] ->
    checkb "in kernel" true (Ivec.is_zero (Imat.mul_vec m v));
    check "primitive" 1 (Ivec.gcd v)
  | l -> Alcotest.failf "expected 1 basis vector, got %d" (List.length l));
  check "trivial kernel" 0 (List.length (Gauss.nullspace (Imat.identity 3)));
  check "full kernel" 2 (List.length (Gauss.nullspace (Imat.of_rows [ [ 0; 0 ] ])))

let test_gauss_left_nullspace () =
  let m = Imat.of_rows [ [ 0; 1 ]; [ 0; 1 ] ] in
  match Gauss.left_nullspace m with
  | [ v ] -> checkb "left kernel" true (Ivec.is_zero (Imat.vec_mul v m))
  | l -> Alcotest.failf "expected 1 left basis vector, got %d" (List.length l)

let test_gauss_solve () =
  (match Gauss.solve m_ab [| 5; 11 |] with
  | Some x ->
    checkb "solution" true
      (Rat.equal x.(0) (Rat.of_int 1) && Rat.equal x.(1) (Rat.of_int 2))
  | None -> Alcotest.fail "expected a solution");
  (match Gauss.solve (Imat.of_rows [ [ 1; 2 ]; [ 2; 4 ] ]) [| 1; 3 |] with
  | None -> ()
  | Some _ -> Alcotest.fail "inconsistent system should have no solution");
  match Gauss.solve (Imat.of_rows [ [ 2; 0 ]; [ 0; 4 ] ]) [| 1; 1 |] with
  | Some x -> checkb "rational solution" true (Rat.equal x.(0) (Rat.make 1 2))
  | None -> Alcotest.fail "expected rational solution"

let test_gauss_inverse () =
  let u = Imat.of_rows [ [ 1; 1 ]; [ 0; 1 ] ] in
  let inv = Gauss.inverse_unimodular u in
  checkb "u * inv = id" true (Imat.equal (Imat.mul u inv) (Imat.identity 2));
  Alcotest.check_raises "non-unimodular"
    (Invalid_argument "Gauss.inverse_unimodular: not unimodular") (fun () ->
      ignore (Gauss.inverse_unimodular m_ab))

(* ---- Hermite --------------------------------------------------------- *)

let test_egcd () =
  let g, s, t = Hermite.egcd 12 18 in
  check "gcd" 6 g;
  check "bezout" 6 ((s * 12) + (t * 18));
  let g, s, t = Hermite.egcd (-5) 3 in
  check "gcd neg" 1 g;
  check "bezout neg" 1 ((s * -5) + (t * 3));
  let g, _, _ = Hermite.egcd 0 0 in
  check "gcd zero" 0 g

let test_row_to_e1 () =
  let d = [| 3; 5 |] in
  let u = Hermite.row_to_e1 d in
  checkb "d.U = e1" true (Ivec.equal (Imat.vec_mul d u) [| 1; 0 |]);
  checkb "U unimodular" true (Imat.is_unimodular u);
  Alcotest.check_raises "zero vector" (Invalid_argument "Hermite.row_to_e1: zero vector")
    (fun () -> ignore (Hermite.row_to_e1 [| 0; 0 |]));
  Alcotest.check_raises "not primitive"
    (Invalid_argument "Hermite.row_to_e1: not primitive") (fun () ->
      ignore (Hermite.row_to_e1 [| 2; 4 |]))

let test_complete_to_unimodular () =
  let d = [| 0; 1; 0 |] in
  let m = Hermite.complete_to_unimodular d in
  checkb "row 0 is d" true (Ivec.equal (Imat.row m 0) d);
  checkb "unimodular" true (Imat.is_unimodular m);
  Alcotest.check_raises "bad row"
    (Invalid_argument "Hermite.complete_to_unimodular: bad row") (fun () ->
      ignore (Hermite.complete_to_unimodular ~row:2 [| 1; -1 |]))

let test_complete_row_placement () =
  let d = [| 1; -1 |] in
  let m = Hermite.complete_to_unimodular ~row:1 d in
  checkb "row 1 is d" true (Ivec.equal (Imat.row m 1) d);
  checkb "unimodular" true (Imat.is_unimodular m)

let test_hnf () =
  let m = Imat.of_rows [ [ 4; 6 ]; [ 2; 4 ] ] in
  let h, u = Hermite.hermite_normal_form m in
  checkb "u unimodular" true (Imat.is_unimodular u);
  checkb "h = m.u" true (Imat.equal h (Imat.mul m u));
  (* lower triangular with positive pivots *)
  checkb "upper right zero" true (Imat.get h 0 1 = 0);
  checkb "pivot positive" true (Imat.get h 0 0 > 0)

(* ---- QCheck properties ---------------------------------------------- *)

let small_int = QCheck.int_range (-20) 20

let nonzero_small = QCheck.map (fun n -> if n = 0 then 1 else n) small_int

let rat_arb =
  QCheck.map
    (fun (n, d) -> Rat.make n d)
    (QCheck.pair small_int nonzero_small)

let prop_rat_add_comm =
  QCheck.Test.make ~name:"rat add commutative" ~count:200 (QCheck.pair rat_arb rat_arb)
    (fun (a, b) -> Rat.equal (Rat.add a b) (Rat.add b a))

let prop_rat_mul_inverse =
  QCheck.Test.make ~name:"rat mul inverse" ~count:200 rat_arb (fun a ->
      Rat.is_zero a || Rat.equal (Rat.mul a (Rat.inv a)) Rat.one)

let prop_rat_canonical =
  QCheck.Test.make ~name:"rat always canonical" ~count:200 (QCheck.pair rat_arb rat_arb)
    (fun (a, b) ->
      let c = Rat.add a b in
      Rat.den c > 0 && Rat.gcd (abs (Rat.num c)) (Rat.den c) <= 1)

let vec_arb n = QCheck.array_of_size (QCheck.Gen.return n) small_int

let prop_primitive_gcd_one =
  QCheck.Test.make ~name:"primitive has gcd 1" ~count:200 (vec_arb 4) (fun v ->
      QCheck.assume (not (Ivec.is_zero v));
      Ivec.gcd (Ivec.primitive v) = 1)

let mat_arb n =
  QCheck.array_of_size (QCheck.Gen.return n) (vec_arb n)

let prop_nullspace_in_kernel =
  QCheck.Test.make ~name:"nullspace vectors are in kernel" ~count:100 (mat_arb 3) (fun m ->
      List.for_all (fun v -> Ivec.is_zero (Imat.mul_vec m v)) (Gauss.nullspace m))

let prop_rank_nullity =
  QCheck.Test.make ~name:"rank + nullity = cols" ~count:100 (mat_arb 3) (fun m ->
      Gauss.rank m + List.length (Gauss.nullspace m) = Imat.cols m)

let prop_det_transpose =
  QCheck.Test.make ~name:"det of transpose" ~count:100 (mat_arb 3) (fun m ->
      Imat.det m = Imat.det (Imat.transpose m))

let prop_complete_unimodular =
  QCheck.Test.make ~name:"completion is unimodular with d as row 0" ~count:100 (vec_arb 3)
    (fun v ->
      QCheck.assume (not (Ivec.is_zero v));
      let d = Ivec.primitive v in
      let m = Hermite.complete_to_unimodular d in
      Imat.is_unimodular m && Ivec.equal (Imat.row m 0) d)

let prop_hnf_unimodular =
  QCheck.Test.make ~name:"hnf transform is unimodular and consistent" ~count:100
    (mat_arb 3) (fun m ->
      let h, u = Hermite.hermite_normal_form m in
      Imat.is_unimodular u && Imat.equal h (Imat.mul m u))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_rat_add_comm; prop_rat_mul_inverse; prop_rat_canonical; prop_primitive_gcd_one;
      prop_nullspace_in_kernel; prop_rank_nullity; prop_det_transpose;
      prop_complete_unimodular; prop_hnf_unimodular;
    ]

let suite =
  [
    ("rat normalization", `Quick, test_rat_normalization);
    ("rat division by zero", `Quick, test_rat_div_by_zero);
    ("rat arithmetic", `Quick, test_rat_arith);
    ("rat compare/sign", `Quick, test_rat_compare);
    ("rat floor/ceil", `Quick, test_rat_floor_ceil);
    ("rat to_int", `Quick, test_rat_to_int);
    ("gcd/lcm", `Quick, test_gcd_lcm);
    ("ivec basics", `Quick, test_ivec_basics);
    ("ivec primitive", `Quick, test_ivec_primitive);
    ("ivec lex compare", `Quick, test_ivec_lex);
    ("imat basics", `Quick, test_imat_basics);
    ("imat multiplication", `Quick, test_imat_mul);
    ("imat determinant", `Quick, test_imat_det);
    ("imat delete/append", `Quick, test_imat_delete);
    ("imat permutation", `Quick, test_imat_permutation);
    ("gauss rank", `Quick, test_gauss_rank);
    ("gauss nullspace", `Quick, test_gauss_nullspace);
    ("gauss left nullspace", `Quick, test_gauss_left_nullspace);
    ("gauss solve", `Quick, test_gauss_solve);
    ("gauss unimodular inverse", `Quick, test_gauss_inverse);
    ("hermite egcd", `Quick, test_egcd);
    ("hermite row_to_e1", `Quick, test_row_to_e1);
    ("hermite completion", `Quick, test_complete_to_unimodular);
    ("hermite completion row placement", `Quick, test_complete_row_placement);
    ("hermite normal form", `Quick, test_hnf);
  ]
  @ qsuite
