open Flo_poly
open Flo_workloads

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_suite_membership () =
  check "16 applications" 16 (List.length Suite.all);
  checkb "table 2 order" true
    (Suite.names
    = [ "cc-ver-1"; "s3asim"; "twer"; "bt"; "cc-ver-2"; "astro"; "wupwise"; "contour";
        "mgrid"; "swim"; "afores"; "sar"; "hf"; "qio"; "applu"; "sp" ]);
  checkb "find" true ((Suite.find "swim").App.name = "swim");
  Alcotest.check_raises "unknown app" Not_found (fun () -> ignore (Suite.find "nope"))

let test_group_sizes () =
  let count g = List.length (List.filter (fun a -> a.App.group = g) Suite.all) in
  check "group 1" 3 (count App.No_benefit);
  check "group 2" 6 (count App.Moderate);
  check "group 3" 7 (count App.High)

let test_master_slave_apps () =
  let ms = List.filter (fun a -> a.App.master_slave) Suite.all in
  checkb "cc-ver-2, afores, sar" true
    (List.sort compare (List.map (fun a -> a.App.name) ms) = [ "afores"; "cc-ver-2"; "sar" ])

let test_array_count_range () =
  (* paper: 3 (afores) to 17 (twer) disk-resident arrays *)
  let count name = List.length (Suite.find name).App.program.Program.arrays in
  check "afores arrays" 3 (count "afores");
  check "twer arrays" 17 (count "twer");
  List.iter
    (fun app ->
      let n = List.length app.App.program.Program.arrays in
      checkb (app.App.name ^ " array count in range") true (n >= 3 && n <= 17))
    Suite.all

let test_programs_validate () =
  (* Program.make already validated on construction; sanity: every nest's
     parallel extent supports 64 threads or is an (intentional) master nest *)
  List.iter
    (fun app ->
      List.iter
        (fun nest ->
          let ext = Iter_space.extent nest.Loop_nest.space nest.Loop_nest.parallel_dim in
          checkb
            (Printf.sprintf "%s/%s parallel extent" app.App.name nest.Loop_nest.name)
            true
            (ext >= 16))
        app.App.program.Program.nests)
    Suite.all

let test_accesses_in_bounds () =
  (* every reference's image of its iteration-space corners stays inside the
     array: catches extent/transpose mismatches *)
  List.iter
    (fun app ->
      let program = app.App.program in
      List.iter
        (fun nest ->
          let bounds = Iter_space.bounds nest.Loop_nest.space in
          let corners =
            (* all lo/hi combinations *)
            Array.fold_left
              (fun acc (lo, hi) ->
                List.concat_map (fun v -> [ lo :: v; hi :: v ]) acc)
              [ [] ] bounds
            |> List.map (fun l -> Flo_linalg.Ivec.of_list (List.rev l))
          in
          List.iter
            (fun r ->
              let space = (Program.array_decl program (Access.array_id r)).Program.space in
              List.iter
                (fun corner ->
                  checkb
                    (Printf.sprintf "%s/%s ref to array %d in bounds" app.App.name
                       nest.Loop_nest.name (Access.array_id r))
                    true
                    (Data_space.mem space (Access.eval r corner)))
                corners)
            nest.Loop_nest.refs)
        app.App.program.Program.nests)
    Suite.all

let test_opaque_fraction () =
  (* twer's 8 index-list arrays are the suite's non-affine accesses; together
     with coverage-declined arrays they land the optimized fraction near the
     paper's ~72% *)
  let total = List.fold_left (fun n a -> n + List.length a.App.program.Program.arrays) 0 Suite.all in
  let opaque =
    List.fold_left
      (fun n a ->
        n + List.length (List.filter (fun d -> d.Program.opaque) a.App.program.Program.arrays))
      0 Suite.all
  in
  check "total arrays" 95 total;
  check "opaque arrays (twer)" 8 opaque

let test_access_budget () =
  (* keep simulations tractable: per-app element accesses within sane bounds *)
  List.iter
    (fun app ->
      let n = App.total_accesses app in
      checkb (Printf.sprintf "%s accesses %d" app.App.name n) true
        (n >= 100_000 && n <= 4_000_000))
    Suite.all

let suite =
  [
    ("suite membership", `Quick, test_suite_membership);
    ("benefit group sizes", `Quick, test_group_sizes);
    ("master-slave apps", `Quick, test_master_slave_apps);
    ("array count range", `Quick, test_array_count_range);
    ("programs validate", `Quick, test_programs_validate);
    ("accesses stay in bounds", `Quick, test_accesses_in_bounds);
    ("opaque array fraction", `Quick, test_opaque_fraction);
    ("access budget", `Quick, test_access_budget);
  ]
