open Flo_linalg
open Flo_poly
open Flo_core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let layer capacity fanout = { Chunk_pattern.capacity; fanout }

(* the paper's Fig. 6 example: 4 threads, 2 I/O caches of S1, 1 storage
   cache of S2, with S1 = 64 and S2 = 256 (t_1 = 2) *)
let fig6 = Chunk_pattern.make ~layers:[| layer 64 2; layer 256 2 |]

(* ---- Chunk_pattern ----------------------------------------------------- *)

let test_pattern_structure () =
  check "threads" 4 (Chunk_pattern.threads fig6);
  check "chunk = S1/l" 32 (Chunk_pattern.chunk_elems fig6);
  check "period = S2" 256 (Chunk_pattern.period fig6);
  check "thread base share" 64 (Chunk_pattern.thread_base fig6);
  checkb "t_1 = S2/(N2 S1)" true (fig6.Chunk_pattern.reps = [| 2 |])

let test_pattern_bases () =
  (* SC2 pattern: <P1 P2 P1 P2 | P3 P4 P3 P4> with 32-element chunks *)
  check "P1 base" 0 (Chunk_pattern.base fig6 ~thread:0);
  check "P2 base" 32 (Chunk_pattern.base fig6 ~thread:1);
  check "P3 base" 128 (Chunk_pattern.base fig6 ~thread:2);
  check "P4 base" 160 (Chunk_pattern.base fig6 ~thread:3)

let test_pattern_offsets_match_paper_formula () =
  (* b1 = (x mod t1) * S1, b2 = (x / t1) * S2 *)
  let expect thread x =
    Chunk_pattern.base fig6 ~thread + (x mod 2 * 64) + (x / 2 * 256)
  in
  for thread = 0 to 3 do
    for x = 0 to 5 do
      check
        (Printf.sprintf "chunk %d of thread %d" x thread)
        (expect thread x)
        (Chunk_pattern.offset fig6 ~thread ~rank:(x * 32))
    done
  done

let test_pattern_locate_inverse () =
  for thread = 0 to 3 do
    for rank = 0 to 191 do
      let o = Chunk_pattern.offset fig6 ~thread ~rank in
      let t', r' = Chunk_pattern.locate fig6 o in
      if t' <> thread || r' <> rank then
        Alcotest.failf "locate(offset %d,%d) = (%d,%d)" thread rank t' r'
    done
  done

let test_pattern_single_layer () =
  let p = Chunk_pattern.make ~layers:[| layer 64 4 |] in
  check "chunk" 16 (Chunk_pattern.chunk_elems p);
  check "period" 64 (Chunk_pattern.period p);
  (* second chunk of thread 0 starts one full period later *)
  check "x=1 offset" 64 (Chunk_pattern.offset p ~thread:0 ~rank:16)

let test_pattern_validation () =
  Alcotest.check_raises "S1 not divisible"
    (Invalid_argument "Chunk_pattern.make: S_1 not a multiple of threads-per-cache")
    (fun () -> ignore (Chunk_pattern.make ~layers:[| layer 65 2 |]));
  Alcotest.check_raises "t_i not integral"
    (Invalid_argument "Chunk_pattern.make: t_i not integral") (fun () ->
      ignore (Chunk_pattern.make ~layers:[| layer 64 2; layer 200 2 |]));
  Alcotest.check_raises "no layers" (Invalid_argument "Chunk_pattern: no layers")
    (fun () -> ignore (Chunk_pattern.make ~layers:[||]))

let test_pattern_fit () =
  (* infeasible capacities are clamped down (and t_i up to 1) *)
  let p = Chunk_pattern.fit ~align:8 ~layers:[| layer 70 2; layer 100 2 |] () in
  check "aligned chunk" 32 (Chunk_pattern.chunk_elems p);
  check "clamped S1" 64 p.Chunk_pattern.layers.(0).Chunk_pattern.capacity;
  check "clamped S2 (t=1)" 128 p.Chunk_pattern.layers.(1).Chunk_pattern.capacity;
  checkb "reps at least 1" true (Array.for_all (fun t -> t >= 1) p.Chunk_pattern.reps)

(* random pattern configurations stay bijective *)
let pattern_arb =
  let gen =
    QCheck.Gen.(
      let* l = int_range 1 4 in
      let* chunk = int_range 1 8 in
      let* n2 = int_range 1 3 in
      let* t1 = int_range 1 3 in
      let* n3 = int_range 1 2 in
      let* t2 = int_range 1 2 in
      let s1 = chunk * l in
      let s2 = t1 * n2 * s1 in
      let s3 = t2 * n3 * s2 in
      return [| layer s1 l; layer s2 n2; layer s3 n3 |])
  in
  QCheck.make gen

let prop_pattern_bijective =
  QCheck.Test.make ~name:"pattern offsets are bijective (locate inverts)" ~count:100
    pattern_arb (fun layers ->
      let p = Chunk_pattern.make ~layers in
      let per = 2 * Chunk_pattern.thread_base p in
      let seen = Hashtbl.create 64 in
      let ok = ref true in
      for t = 0 to Chunk_pattern.threads p - 1 do
        for r = 0 to per - 1 do
          let o = Chunk_pattern.offset p ~thread:t ~rank:r in
          if Hashtbl.mem seen o then ok := false;
          Hashtbl.replace seen o ();
          if Chunk_pattern.locate p o <> (t, r) then ok := false
        done
      done;
      !ok)

let prop_pattern_dense =
  QCheck.Test.make ~name:"pattern covers every offset of a period" ~count:100 pattern_arb
    (fun layers ->
      let p = Chunk_pattern.make ~layers in
      let seen = Hashtbl.create 64 in
      for t = 0 to Chunk_pattern.threads p - 1 do
        for r = 0 to Chunk_pattern.thread_base p - 1 do
          Hashtbl.replace seen (Chunk_pattern.offset p ~thread:t ~rank:r) ()
        done
      done;
      let dense = ref true in
      for o = 0 to Chunk_pattern.period p - 1 do
        if not (Hashtbl.mem seen o) then dense := false
      done;
      !dense)

(* ---- File_layout -------------------------------------------------------- *)

let space_16x8 = Data_space.make [| 16; 8 |]

let test_permuted_layout () =
  let l = File_layout.permuted space_16x8 [| 1; 0 |] in
  (* col-major: offset = a2 * 16 + a1 *)
  check "permuted offset" 35 (File_layout.offset_of l [| 3; 2 |]);
  check "matches col_major" (File_layout.offset_of (File_layout.Col_major space_16x8) [| 3; 2 |])
    (File_layout.offset_of l [| 3; 2 |]);
  checkb "identity permutation = row major" true
    (File_layout.offset_of (File_layout.permuted space_16x8 [| 0; 1 |]) [| 3; 2 |]
    = File_layout.offset_of (File_layout.Row_major space_16x8) [| 3; 2 |]);
  Alcotest.check_raises "bad permutation"
    (Invalid_argument "File_layout.permuted: not a permutation") (fun () ->
      ignore (File_layout.permuted space_16x8 [| 0; 0 |]))

let internode_col =
  (* transposed access on a 16x8 array, 4 threads: partition along a2 *)
  let d = Imat.of_rows [ [ 0; 1 ]; [ -1; 0 ] ] in
  File_layout.internode ~space:space_16x8 ~d ~v:0 ~num_blocks:4 ~v_origin:0
    ~slab_height:2
    ~pattern:(Chunk_pattern.make ~layers:[| layer 16 2; layer 64 2 |])

let test_internode_injective () =
  let seen = Hashtbl.create 256 in
  Data_space.iter space_16x8 (fun a ->
      let o = File_layout.offset_of internode_col a in
      checkb "offset nonneg" true (o >= 0);
      if Hashtbl.mem seen o then Alcotest.failf "duplicate offset %d" o;
      Hashtbl.replace seen o ());
  check "all distinct" 128 (Hashtbl.length seen);
  checkb "size covers offsets" true (File_layout.size internode_col >= 128)

let test_internode_owner_alignment () =
  (* a2 (column) is the partition driver: column c belongs to thread c/2 *)
  Data_space.iter space_16x8 (fun a ->
      match File_layout.owner_of internode_col a with
      | Some t -> check "owner" (a.(1) / 2) t
      | None -> Alcotest.fail "expected owner")

let test_internode_thread_contiguity () =
  (* each thread's elements land in [owner-count] x chunk-sized runs: the
     16-element chunks of one thread hold 16 consecutive thread-local
     elements *)
  let offsets = Array.make 4 [] in
  Data_space.iter space_16x8 (fun a ->
      let t = Option.get (File_layout.owner_of internode_col a) in
      offsets.(t) <- File_layout.offset_of internode_col a :: offsets.(t));
  Array.iteri
    (fun t offs ->
      let sorted = List.sort compare offs in
      (* 32 elements per thread in runs of >= 8 (chunk = 8 after fit) *)
      let runs = ref 1 in
      let rec count = function
        | a :: (c :: _ as rest) ->
          if c <> a + 1 then incr runs;
          count rest
        | _ -> ()
      in
      count sorted;
      checkb (Printf.sprintf "thread %d data is chunked, not scattered" t) true (!runs <= 4))
    offsets

let test_internode_validation () =
  let d_bad = Imat.of_rows [ [ 1; 1 ]; [ 1; 1 ] ] in
  let pattern = Chunk_pattern.make ~layers:[| layer 16 2 |] in
  Alcotest.check_raises "not unimodular"
    (Invalid_argument "File_layout.internode: D not unimodular") (fun () ->
      ignore
        (File_layout.internode ~space:space_16x8 ~d:d_bad ~v:0 ~num_blocks:4 ~v_origin:0
           ~slab_height:1 ~pattern));
  Alcotest.check_raises "bad v" (Invalid_argument "File_layout.internode: v out of range")
    (fun () ->
      ignore
        (File_layout.internode ~space:space_16x8 ~d:(Imat.identity 2) ~v:5 ~num_blocks:4
           ~v_origin:0 ~slab_height:1 ~pattern))

let test_offset_out_of_range () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "File_layout.offset_of: out of range") (fun () ->
      ignore (File_layout.offset_of (File_layout.Row_major space_16x8) [| 99; 0 |]))

(* sheared access: the anchored slab grid keeps owners aligned *)
let test_internode_shear () =
  let space = Data_space.make [| 20; 8 |] in
  (* accesses A[i+j, j] with i in 0..11 parallel over 4 blocks *)
  let d = Imat.of_rows [ [ 1; -1 ]; [ 0; 1 ] ] in
  let l =
    File_layout.internode ~space ~d ~v:0 ~num_blocks:4 ~v_origin:0 ~slab_height:3
      ~pattern:(Chunk_pattern.make ~layers:[| layer 24 2; layer 96 2 |])
  in
  (* element (i+j, j) has a'_v = i: iteration block i/3 owns it *)
  let ok = ref true in
  for i = 0 to 11 do
    for j = 0 to 7 do
      match File_layout.owner_of l [| i + j; j |] with
      | Some t -> if t <> i / 3 then ok := false
      | None -> ok := false
    done
  done;
  checkb "shear owners aligned with iteration blocks" true !ok;
  (* and the whole space still maps injectively *)
  let seen = Hashtbl.create 256 in
  Data_space.iter space (fun a ->
      let o = File_layout.offset_of l a in
      if Hashtbl.mem seen o then Alcotest.failf "dup offset %d" o;
      Hashtbl.replace seen o ());
  check "injective" 160 (Hashtbl.length seen)

(* ---- Weights -------------------------------------------------------------- *)

let nest_of ?(w = 1) ?(n = 8) refs =
  Loop_nest.make ~weight:w ~parallel_dim:0 (Iter_space.make [| (0, n - 1); (0, n - 1) |]) refs

let test_weights_grouping () =
  let n1 = nest_of ~w:2 [ Access.ij ~array_id:0 ] in
  let n2 = nest_of [ Access.ij ~array_id:0; Access.ji ~array_id:0 ] in
  let groups =
    Weights.group_refs
      [ (n1, List.hd n1.Loop_nest.refs);
        (n2, List.nth n2.Loop_nest.refs 0); (n2, List.nth n2.Loop_nest.refs 1) ]
  in
  check "two groups" 2 (List.length groups);
  let g1 = List.hd groups in
  (* ij group: 2*64 + 64 = 192; ji group: 64 *)
  check "dominant weight" 192 g1.Weights.weight;
  checkb "dominant is ij" true (Imat.equal g1.Weights.matrix (Imat.identity 2));
  Alcotest.(check (float 1e-9)) "coverage of dominant" 0.75
    (Weights.coverage groups ~satisfied:(fun g -> g == g1))

(* ---- Array_partition ------------------------------------------------------- *)

let solve_one access =
  let nest = nest_of [ access ] in
  Array_partition.solve_refs [ (nest, access) ]

let test_partition_row_access () =
  match solve_one (Access.ij ~array_id:0) with
  | Some r ->
    checkb "d annihilates j column" true (Ivec.equal r.Array_partition.d_row [| 1; 0 |]);
    check "stride" 1 r.Array_partition.stride;
    Alcotest.(check (float 1e-9)) "full coverage" 1.0 r.Array_partition.coverage;
    checkb "D unimodular" true (Imat.is_unimodular r.Array_partition.d);
    checkb "d is row v of D" true
      (Ivec.equal (Imat.row r.Array_partition.d r.Array_partition.v) r.Array_partition.d_row)
  | None -> Alcotest.fail "row access must be partitionable"

let test_partition_col_access () =
  match solve_one (Access.ji ~array_id:0) with
  | Some r ->
    checkb "d picks second data dim" true (Ivec.equal r.Array_partition.d_row [| 0; 1 |]);
    check "stride" 1 r.Array_partition.stride
  | None -> Alcotest.fail "col access must be partitionable"

let test_partition_shear () =
  match solve_one (Access.diag ~array_id:0) with
  | Some r ->
    (* d . (1,1)^T != 0 is the parallel direction; d . (1,1 col j) = 0 *)
    checkb "d = (1,-1)" true (Ivec.equal r.Array_partition.d_row [| 1; -1 |]);
    check "stride" 1 r.Array_partition.stride
  | None -> Alcotest.fail "shear must be partitionable"

let test_partition_strided () =
  match solve_one (Access.of_rows ~array_id:0 [ [ 2; 0 ]; [ 0; 2 ] ] [ 0; 0 ]) with
  | Some r -> check "stride follows coefficient" 2 r.Array_partition.stride
  | None -> Alcotest.fail "strided access must be partitionable"

let test_partition_unsolvable () =
  (* 3-deep nest, 2-D array indexed by the two non-parallel iterators:
     Q.E_u has full row rank, no d exists *)
  let access = Access.of_rows ~array_id:0 [ [ 0; 1; 0 ]; [ 0; 0; 1 ] ] [ 0; 0 ] in
  let nest =
    Loop_nest.make ~parallel_dim:0
      (Iter_space.make [| (0, 3); (0, 3); (0, 3) |])
      [ access ]
  in
  checkb "unsolvable" true (Array_partition.solve_refs [ (nest, access) ] = None)

let test_partition_conflicting_majority () =
  let heavy = nest_of ~w:3 [ Access.ji ~array_id:0 ] in
  let light = nest_of [ Access.ij ~array_id:0 ] in
  match
    Array_partition.solve_refs
      [ (heavy, List.hd heavy.Loop_nest.refs); (light, List.hd light.Loop_nest.refs) ]
  with
  | Some r ->
    checkb "majority (col) satisfied" true (Ivec.equal r.Array_partition.d_row [| 0; 1 |]);
    Alcotest.(check (float 1e-9)) "coverage 3/4" 0.75 r.Array_partition.coverage;
    check "one group unsatisfied" 1 (List.length r.Array_partition.unsatisfied)
  | None -> Alcotest.fail "expected the dominant group to be solvable"

let test_partition_compatible_groups () =
  (* A[i,j] and A[i, j+1] share the same matrix family direction: both satisfiable *)
  let n1 = nest_of [ Access.ij ~array_id:0 ] in
  let shifted = Access.of_rows ~array_id:0 [ [ 1; 0 ]; [ 0; 1 ] ] [ 0; 1 ] in
  let n2 = nest_of [ shifted ] in
  match Array_partition.solve_refs [ (n1, List.hd n1.Loop_nest.refs); (n2, shifted) ] with
  | Some r -> Alcotest.(check (float 1e-9)) "both satisfied" 1.0 r.Array_partition.coverage
  | None -> Alcotest.fail "compatible groups must be solvable"

let test_partition_origin () =
  (* offset vector shifts the image origin: A[i+3, j] partitioned along rows *)
  let access = Access.of_rows ~array_id:0 [ [ 1; 0 ]; [ 0; 1 ] ] [ 3; 0 ] in
  let nest = nest_of [ access ] in
  match Array_partition.solve_refs [ (nest, access) ] with
  | Some r ->
    (* d = (1,0): a'_v = i + 3; lo_u = 0 -> origin = d.q = 3 *)
    check "origin includes offset" 3 r.Array_partition.origin;
    check "u extent" 8 r.Array_partition.u_extent
  | None -> Alcotest.fail "expected solvable"

(* property: whenever Step I succeeds, iterations on one iteration hyperplane
   touch data on one data hyperplane (the defining equation of the paper) *)
let prop_partition_invariant =
  let access_arb =
    QCheck.make
      QCheck.Gen.(
        let entry = int_range (-2) 2 in
        let* q = array_size (return 4) entry in
        return (Access.of_rows ~array_id:0 [ [ q.(0); q.(1) ]; [ q.(2); q.(3) ] ] [ 0; 0 ]))
  in
  QCheck.Test.make ~name:"Step I: h_A . D . Q . E_u = 0 on satisfied groups" ~count:200
    access_arb (fun access ->
      let nest = nest_of [ access ] in
      match Array_partition.solve_refs [ (nest, access) ] with
      | None -> QCheck.assume_fail ()
      | Some r ->
        let d_row = r.Array_partition.d_row in
        List.for_all
          (fun (g : Weights.group) ->
            let m = Array_partition.constraint_columns g in
            Ivec.is_zero (Imat.vec_mul d_row m))
          r.Array_partition.satisfied
        && Imat.is_unimodular r.Array_partition.d)

(* ---- Internode / scopes ------------------------------------------------- *)

let spec4 =
  Internode.make_spec ~threads:4 ~num_blocks:4
    ~layers:[| layer 64 2; layer 256 2 |]
    ~align:8

let test_internode_spec_validation () =
  Alcotest.check_raises "fanout product"
    (Invalid_argument "Internode.make_spec: layer fanouts do not multiply to thread count")
    (fun () ->
      ignore
        (Internode.make_spec ~threads:8 ~num_blocks:8 ~layers:[| layer 64 2; layer 256 2 |]
           ~align:8))

let test_scope_patterns () =
  let both = Internode.pattern_for spec4 Internode.Both in
  check "both chunk" 32 (Chunk_pattern.chunk_elems both);
  check "both period" 256 (Chunk_pattern.period both);
  let io = Internode.pattern_for spec4 Internode.Io_only in
  check "io-only period is minimal" 128 (Chunk_pattern.period io);
  checkb "io-only reps all 1" true (Array.for_all (( = ) 1) io.Chunk_pattern.reps);
  let st = Internode.pattern_for spec4 Internode.Storage_only in
  (* merged layer: every thread gets an equal share of S2 *)
  check "storage-only chunk" 64 (Chunk_pattern.chunk_elems st);
  check "storage-only threads" 4 (Chunk_pattern.threads st)

let test_layout_for () =
  let space = Data_space.make [| 16; 16 |] in
  let access = Access.ji ~array_id:0 in
  let nest = nest_of ~n:16 [ access ] in
  let partition = Option.get (Array_partition.solve_refs [ (nest, access) ]) in
  let l = Internode.layout_for ~space ~partition spec4 Internode.Both in
  (match l with
  | File_layout.Internode i ->
    check "slab height = ext_u/num_blocks" 4 (File_layout.slab_height i)
  | _ -> Alcotest.fail "expected internode layout");
  (* still a valid injective layout *)
  let seen = Hashtbl.create 256 in
  Data_space.iter space (fun a -> Hashtbl.replace seen (File_layout.offset_of l a) ());
  check "injective" 256 (Hashtbl.length seen)

(* ---- Optimizer ------------------------------------------------------------ *)

let program_mixed =
  let d = Data_space.make [| 16; 16 |] in
  Program.make ~name:"mixed"
    [ Program.declare ~id:0 ~name:"colwise" d;
      Program.declare ~id:1 ~name:"tied" d;
      Program.declare ~opaque:true ~id:2 ~name:"hidden" d ]
    [
      nest_of ~n:16 [ Access.ji ~array_id:0; Access.ji ~array_id:1; Access.ij ~array_id:2 ];
      nest_of ~n:16 [ Access.ij ~array_id:1 ];
    ]

let test_optimizer_decisions () =
  let plan = Optimizer.run ~spec:spec4 program_mixed in
  check "total" 3 (Optimizer.total_arrays plan);
  check "optimized" 1 (Optimizer.optimized_count plan);
  (match Optimizer.layout_of plan 0 with
  | File_layout.Internode _ -> ()
  | _ -> Alcotest.fail "colwise array should be restructured");
  (match Optimizer.layout_of plan 1 with
  | File_layout.Row_major _ -> ()
  | _ -> Alcotest.fail "tied array must be declined");
  (match Optimizer.layout_of plan 2 with
  | File_layout.Row_major _ -> ()
  | _ -> Alcotest.fail "opaque array must stay canonical");
  Alcotest.(check (float 1e-9)) "mean coverage" 1.0 (Optimizer.mean_coverage plan)

let test_optimizer_min_coverage () =
  let plan = Optimizer.run ~min_coverage:0. ~spec:spec4 program_mixed in
  (* with the gate dropped, the tied array is restructured too *)
  check "optimized with gate off" 2 (Optimizer.optimized_count plan)

let test_optimizer_scope_recorded () =
  let plan = Optimizer.run ~scope:Internode.Io_only ~spec:spec4 program_mixed in
  checkb "scope kept" true (plan.Optimizer.scope = Internode.Io_only)

(* ---- Reindex --------------------------------------------------------------- *)

let test_permutations () =
  check "3! permutations" 6 (List.length (Reindex.permutations 3));
  check "1 permutation" 1 (List.length (Reindex.permutations 1));
  checkb "all distinct" true
    (let l = Reindex.permutations 4 in
     List.length (List.sort_uniq compare l) = 24)

let test_reindex_dominant_order () =
  let chosen = Reindex.dominant_order program_mixed in
  (* col-wise array -> col-major permutation; tied -> canonical *)
  (match List.assoc 0 chosen with
  | File_layout.Permuted (_, order) -> checkb "transposed" true (order = [| 1; 0 |])
  | _ -> Alcotest.fail "expected a permutation for the col-wise array");
  match List.assoc 1 chosen with
  | File_layout.Row_major _ -> ()
  | _ -> Alcotest.fail "tie keeps canonical layout"

let test_reindex_profile_search () =
  (* evaluator prefers the transposed layout of array 0 *)
  let evaluate assignment =
    match assignment 0 with
    | File_layout.Permuted (_, order) when order = [| 1; 0 |] -> 1.0
    | _ -> 2.0
  in
  let outcome = Reindex.optimize program_mixed ~evaluate in
  Alcotest.(check (float 1e-9)) "found the optimum" 1.0 outcome.Reindex.time;
  checkb "spent profile runs" true (outcome.Reindex.evaluations > 1)

(* ---- Compmap ---------------------------------------------------------------- *)

let test_compmap_bijections () =
  let threads = 16 and cluster = 4 and num_blocks = 16 in
  List.iter
    (fun s ->
      let image =
        List.init num_blocks (Compmap.assign s ~cluster ~threads ~num_blocks)
        |> List.sort_uniq compare
      in
      Alcotest.(check int)
        (Compmap.strategy_to_string s ^ " is a bijection")
        threads (List.length image))
    (Compmap.all_strategies ~cluster ~threads)

let test_compmap_strategies_family () =
  let fam = Compmap.all_strategies ~cluster:4 ~threads:16 in
  checkb "contains ident" true (List.mem Compmap.Ident fam);
  checkb "contains reverse" true (List.mem Compmap.Reverse fam);
  checkb "contains cluster swap" true (List.mem Compmap.Cluster_swap fam);
  Alcotest.check_raises "cluster must divide"
    (Invalid_argument "Compmap.all_strategies: cluster must divide threads") (fun () ->
      ignore (Compmap.all_strategies ~cluster:3 ~threads:16))

let test_compmap_search () =
  (* evaluator rewards Reverse on nest 1 only *)
  let evaluate f = if f 1 = Compmap.Reverse then 1.0 else 2.0 in
  let outcome = Compmap.optimize ~nests:2 ~cluster:4 ~threads:16 ~evaluate in
  checkb "nest 1 reversed" true (List.assoc 1 outcome.Compmap.choices = Compmap.Reverse);
  checkb "nest 0 untouched" true (List.assoc 0 outcome.Compmap.choices = Compmap.Ident);
  Alcotest.(check (float 1e-9)) "time" 1.0 outcome.Compmap.time

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pattern_bijective; prop_pattern_dense; prop_partition_invariant ]

let suite =
  [
    ("pattern structure (Fig 6)", `Quick, test_pattern_structure);
    ("pattern thread bases", `Quick, test_pattern_bases);
    ("pattern offsets match paper formula", `Quick, test_pattern_offsets_match_paper_formula);
    ("pattern locate inverse", `Quick, test_pattern_locate_inverse);
    ("pattern single layer", `Quick, test_pattern_single_layer);
    ("pattern validation", `Quick, test_pattern_validation);
    ("pattern fit clamps", `Quick, test_pattern_fit);
    ("permuted layouts", `Quick, test_permuted_layout);
    ("internode injectivity", `Quick, test_internode_injective);
    ("internode owner alignment", `Quick, test_internode_owner_alignment);
    ("internode thread contiguity", `Quick, test_internode_thread_contiguity);
    ("internode validation", `Quick, test_internode_validation);
    ("offset out of range", `Quick, test_offset_out_of_range);
    ("internode sheared access", `Quick, test_internode_shear);
    ("weights grouping", `Quick, test_weights_grouping);
    ("Step I: row access", `Quick, test_partition_row_access);
    ("Step I: column access", `Quick, test_partition_col_access);
    ("Step I: sheared access", `Quick, test_partition_shear);
    ("Step I: strided access", `Quick, test_partition_strided);
    ("Step I: unsolvable system", `Quick, test_partition_unsolvable);
    ("Step I: weighted conflict", `Quick, test_partition_conflicting_majority);
    ("Step I: compatible groups", `Quick, test_partition_compatible_groups);
    ("Step I: image origin", `Quick, test_partition_origin);
    ("internode spec validation", `Quick, test_internode_spec_validation);
    ("scope patterns (Fig 7f)", `Quick, test_scope_patterns);
    ("layout_for", `Quick, test_layout_for);
    ("optimizer decisions", `Quick, test_optimizer_decisions);
    ("optimizer coverage gate", `Quick, test_optimizer_min_coverage);
    ("optimizer scope", `Quick, test_optimizer_scope_recorded);
    ("reindex permutations", `Quick, test_permutations);
    ("reindex dominant order", `Quick, test_reindex_dominant_order);
    ("reindex profile search", `Quick, test_reindex_profile_search);
    ("compmap bijections", `Quick, test_compmap_bijections);
    ("compmap strategy family", `Quick, test_compmap_strategies_family);
    ("compmap greedy search", `Quick, test_compmap_search);
  ]
  @ qsuite

(* ---- extra property coverage (randomized internode configurations) ------ *)

let internode_arb =
  let gen =
    QCheck.Gen.(
      let* rows = int_range 8 24 in
      let* cols = int_range 4 16 in
      let* chunk = int_range 1 4 in
      let* l = int_range 1 4 in
      let* t1 = int_range 1 3 in
      let* num_blocks = int_range 1 8 in
      let* transposed = bool in
      let* sh = int_range 1 4 in
      let s1 = chunk * l in
      let layers = [| layer s1 l; layer (t1 * 2 * s1) 2 |] in
      return (rows, cols, layers, num_blocks, transposed, sh))
  in
  QCheck.make gen

let prop_internode_injective_random =
  QCheck.Test.make ~name:"internode layouts are injective on random configs" ~count:60
    internode_arb (fun (rows, cols, layers, num_blocks, transposed, sh) ->
      let space = Data_space.make [| rows; cols |] in
      let d =
        if transposed then Imat.of_rows [ [ 0; 1 ]; [ -1; 0 ] ] else Imat.identity 2
      in
      let l =
        File_layout.internode ~space ~d ~v:0 ~num_blocks ~v_origin:0 ~slab_height:sh
          ~pattern:(Chunk_pattern.make ~layers)
      in
      let seen = Hashtbl.create 256 in
      let ok = ref true in
      let size = File_layout.size l in
      Data_space.iter space (fun a ->
          let o = File_layout.offset_of l a in
          if o < 0 || o >= size then ok := false;
          if Hashtbl.mem seen o then ok := false;
          Hashtbl.replace seen o ());
      !ok && Hashtbl.length seen = rows * cols)

let prop_owner_matches_slab =
  QCheck.Test.make ~name:"owner is locate's thread" ~count:60 internode_arb
    (fun (rows, cols, layers, num_blocks, transposed, sh) ->
      let space = Data_space.make [| rows; cols |] in
      let d =
        if transposed then Imat.of_rows [ [ 0; 1 ]; [ -1; 0 ] ] else Imat.identity 2
      in
      let pattern = Chunk_pattern.make ~layers in
      let l =
        File_layout.internode ~space ~d ~v:0 ~num_blocks ~v_origin:0 ~slab_height:sh
          ~pattern
      in
      let ok = ref true in
      Data_space.iter space (fun a ->
          let o = File_layout.offset_of l a in
          let owner = Option.get (File_layout.owner_of l a) in
          let t, _ = Chunk_pattern.locate pattern o in
          if t <> owner then ok := false);
      !ok)

let test_scope_improvement_order () =
  (* on the toy column-sweep program the full-hierarchy pattern is at least
     as good as either single-layer variant in footprint terms: its chunks
     are block-aligned *)
  let both = Internode.pattern_for spec4 Internode.Both in
  let io = Internode.pattern_for spec4 Internode.Io_only in
  checkb "both chunk aligned" true (Chunk_pattern.chunk_elems both mod spec4.Internode.align = 0);
  checkb "io-only may be unaligned" true (Chunk_pattern.chunk_elems io >= 1)

let suite =
  suite
  @ [
      ("scope chunk alignment", `Quick, test_scope_improvement_order);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_internode_injective_random; prop_owner_matches_slab ]

(* ---- Relayout (Section 4.3 extension) ----------------------------------- *)

let test_relayout_identity () =
  let space = Data_space.make [| 8; 8 |] in
  let rm = File_layout.Row_major space in
  let p = Relayout.plan ~block_elems:4 ~from_layout:rm ~to_layout:rm in
  check "no moves" 0 p.Relayout.moved;
  check "no src blocks" 0 p.Relayout.src_blocks;
  Alcotest.(check (float 1e-9)) "free" 0. (Relayout.cost_us ~read_us:5. ~write_us:7. p)

let test_relayout_transpose () =
  let space = Data_space.make [| 8; 8 |] in
  let p =
    Relayout.plan ~block_elems:4 ~from_layout:(File_layout.Row_major space)
      ~to_layout:(File_layout.Col_major space)
  in
  (* only the diagonal stays: 64 - 8 moves; all 16 blocks touched *)
  check "moved" 56 p.Relayout.moved;
  check "src blocks" 16 p.Relayout.src_blocks;
  check "dst blocks" 16 p.Relayout.dst_blocks

let test_relayout_moves_ordered () =
  let space = Data_space.make [| 4; 4 |] in
  let last = ref (-1) in
  let count = ref 0 in
  Relayout.iter_moves ~from_layout:(File_layout.Row_major space)
    ~to_layout:(File_layout.Col_major space) (fun m ->
      checkb "source order" true (m.Relayout.src > !last);
      last := m.Relayout.src;
      incr count);
  check "moves" 12 !count

let test_relayout_space_mismatch () =
  Alcotest.check_raises "different spaces"
    (Invalid_argument "Relayout: layouts describe different data spaces") (fun () ->
      ignore
        (Relayout.plan ~block_elems:4
           ~from_layout:(File_layout.Row_major (Data_space.make [| 8; 8 |]))
           ~to_layout:(File_layout.Row_major (Data_space.make [| 4; 4 |]))))

let test_break_even () =
  checkb "amortizes" true
    (Relayout.break_even ~conversion_us:100. ~default_us:60. ~optimized_us:10. = Some 2);
  checkb "never" true
    (Relayout.break_even ~conversion_us:100. ~default_us:10. ~optimized_us:60. = None);
  checkb "at least one run" true
    (Relayout.break_even ~conversion_us:1. ~default_us:100. ~optimized_us:10. = Some 1)

(* ---- template hierarchy (Section 4.3 extension) -------------------------- *)

let test_template_spec () =
  let spec = Internode.template_spec ~fanouts:[| 4; 4; 4 |] ~chunk:64 ~align:64 ~num_blocks:64 in
  check "threads" 64 spec.Internode.threads;
  let p = Internode.pattern_for spec Internode.Both in
  check "chunk preserved" 64 (Chunk_pattern.chunk_elems p);
  checkb "capacity-oblivious (all t_i = 1)" true
    (Array.for_all (( = ) 1) p.Chunk_pattern.reps);
  Alcotest.check_raises "bad chunk" (Invalid_argument "Internode.template_spec: chunk < 1")
    (fun () -> ignore (Internode.template_spec ~fanouts:[| 2 |] ~chunk:0 ~align:1 ~num_blocks:2))

let suite =
  suite
  @ [
      ("relayout identity", `Quick, test_relayout_identity);
      ("relayout transpose", `Quick, test_relayout_transpose);
      ("relayout move ordering", `Quick, test_relayout_moves_ordered);
      ("relayout space mismatch", `Quick, test_relayout_space_mismatch);
      ("relayout break-even", `Quick, test_break_even);
      ("template hierarchy spec", `Quick, test_template_spec);
    ]

(* relayout moves, applied to a scratch file model, reconstruct the target
   layout exactly *)
let prop_relayout_roundtrip =
  let arb =
    QCheck.make
      QCheck.Gen.(
        let* rows = int_range 2 10 in
        let* cols = int_range 2 10 in
        let* transpose = bool in
        return (rows, cols, transpose))
  in
  QCheck.Test.make ~name:"relayout moves reconstruct the target layout" ~count:60 arb
    (fun (rows, cols, transpose) ->
      let space = Data_space.make [| rows; cols |] in
      let from_layout = File_layout.Row_major space in
      let to_layout =
        if transpose then File_layout.Col_major space
        else File_layout.permuted space [| 1; 0 |]
      in
      (* model the file as element-id arrays *)
      let src = Array.make (rows * cols) (-1) in
      Data_space.iter space (fun a ->
          src.(File_layout.offset_of from_layout a) <- Data_space.row_major_index space a);
      let dst = Array.copy src in
      Relayout.iter_moves ~from_layout ~to_layout (fun m ->
          dst.(m.Relayout.dst) <- src.(m.Relayout.src));
      let ok = ref true in
      Data_space.iter space (fun a ->
          if dst.(File_layout.offset_of to_layout a) <> Data_space.row_major_index space a
          then ok := false);
      !ok)

(* compmap assignments are total and bijective for any valid geometry *)
let prop_compmap_total =
  let arb =
    QCheck.make
      QCheck.Gen.(
        let* cluster = int_range 1 8 in
        let* n_clusters = int_range 1 8 in
        return (cluster, cluster * n_clusters))
  in
  QCheck.Test.make ~name:"compmap strategies are bijections" ~count:60 arb
    (fun (cluster, threads) ->
      List.for_all
        (fun s ->
          let image =
            List.init threads (Compmap.assign s ~cluster ~threads ~num_blocks:threads)
          in
          List.sort_uniq compare image = List.init threads Fun.id)
        (Compmap.all_strategies ~cluster ~threads))

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest [ prop_relayout_roundtrip; prop_compmap_total ]
