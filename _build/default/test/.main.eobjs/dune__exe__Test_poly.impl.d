test/test_poly.ml: Access Affine Alcotest Array Data_space Flo_linalg Flo_poly Hashtbl Hyperplane Imat Iter_space Ivec List Loop_nest Parallelize Program QCheck QCheck_alcotest
