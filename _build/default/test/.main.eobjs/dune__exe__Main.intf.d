test/main.mli:
