test/test_storage.ml: Alcotest Array Block Clock Disk Dll Fifo Flo_storage Hierarchy Karma List Lru Mq Option Policy QCheck QCheck_alcotest Stats Striping Topology
