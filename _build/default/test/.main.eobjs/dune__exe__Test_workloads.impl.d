test/test_workloads.ml: Access Alcotest App Array Data_space Flo_linalg Flo_poly Flo_workloads Iter_space List Loop_nest Printf Program Suite
