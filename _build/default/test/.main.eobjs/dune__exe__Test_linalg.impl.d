test/test_linalg.ml: Alcotest Array Flo_linalg Gauss Hermite Imat Ivec List QCheck QCheck_alcotest Rat
