test/main.ml: Alcotest Test_core Test_engine Test_linalg Test_poly Test_storage Test_workloads
