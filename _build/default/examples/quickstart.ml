(* Quickstart: run the compiler pass on a toy program and inspect what it
   decides.

     dune exec examples/quickstart.exe

   The program is the paper's running example (Fig. 3): a matrix-multiply
   style nest over disk-resident arrays, parallelized over the outer loop.
   W is written row-wise, U is read row-wise, V is read column-wise — the
   pass restructures V (and leaves the row-friendly arrays partitioned but
   un-permuted). *)

open Flo_poly
open Flo_core

let n = 64

let program =
  let d = Data_space.make [| n; n |] in
  let space = Iter_space.make [| (0, n - 1); (0, n - 1) |] in
  Program.make ~name:"matmul"
    [
      Program.declare ~id:0 ~name:"W" d;
      Program.declare ~id:1 ~name:"U" d;
      Program.declare ~id:2 ~name:"V" d;
    ]
    [
      Loop_nest.make ~name:"multiply" ~parallel_dim:0 space
        [ Access.ij ~array_id:0; Access.ij ~array_id:1; Access.ji ~array_id:2 ];
    ]

let () =
  (* a 2-layer hierarchy: 4 threads, 2 I/O caches, 1 storage cache *)
  let spec =
    Internode.make_spec ~threads:4 ~num_blocks:4
      ~layers:
        [|
          { Chunk_pattern.capacity = 512; fanout = 2 };
          { Chunk_pattern.capacity = 2048; fanout = 2 };
        |]
      ~align:16
  in
  let plan = Optimizer.run ~spec program in
  Format.printf "%a@.@." Optimizer.pp plan;

  (* show how V's elements map to file offsets: each thread's column band
     is now stored in consecutive, cache-sized chunks *)
  let v_layout = Optimizer.layout_of plan 2 in
  Format.printf "V's layout: %s (file size %d elements)@.@." (File_layout.describe v_layout)
    (File_layout.size v_layout);
  Format.printf "element -> offset (owner thread):@.";
  List.iter
    (fun (a1, a2) ->
      let a = [| a1; a2 |] in
      Format.printf "  V[%2d,%2d] -> %6d (thread %s)@." a1 a2
        (File_layout.offset_of v_layout a)
        (match File_layout.owner_of v_layout a with
        | Some t -> string_of_int t
        | None -> "-"))
    [ (0, 0); (1, 0); (0, 15); (0, 16); (0, 32); (0, 48); (63, 63) ]
