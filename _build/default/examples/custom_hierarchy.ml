(* Building a layout for a custom, deeper cache hierarchy.

     dune exec examples/custom_hierarchy.exe

   The paper's Algorithm 1 is defined for any number of layers; the
   evaluation uses two cache layers, but the pattern machinery is generic.
   Here we stack three cache layers (say compute-node, I/O-node and storage
   caches) and show the resulting interleave, then simulate a column-sweep
   application on a non-default two-layer topology (8 I/O nodes, 2 storage
   nodes) to show the optimization is topology-portable. *)

open Flo_core
open Flo_storage
open Flo_poly
open Flo_workloads
open Flo_engine

let () =
  (* three cache layers: 2 threads/L1, 2 L1s/L2, 2 L2s/L3 = 8 threads *)
  let layers =
    [|
      { Chunk_pattern.capacity = 64; fanout = 2 };
      { Chunk_pattern.capacity = 256; fanout = 2 };
      { Chunk_pattern.capacity = 1024; fanout = 2 };
    |]
  in
  let p = Chunk_pattern.make ~layers in
  Format.printf "%a@.@." Chunk_pattern.pp p;
  Format.printf "chunk starts of each thread (first 4 chunks):@.";
  for t = 0 to Chunk_pattern.threads p - 1 do
    Format.printf "  thread %d:" t;
    for x = 0 to 3 do
      Format.printf " %5d" (Chunk_pattern.offset p ~thread:t ~rank:(x * Chunk_pattern.chunk_elems p))
    done;
    Format.printf "@."
  done;

  (* a non-default 2-layer topology: 32 compute / 8 I/O / 2 storage *)
  let topo =
    Topology.make ~compute_nodes:32 ~io_nodes:8 ~storage_nodes:2 ~block_elems:64
      ~io_cache_blocks:128 ~storage_cache_blocks:512 ()
  in
  let config = Config.with_topology Config.default topo in
  let n = 256 in
  let d = Data_space.make [| n; n |] in
  let space = Iter_space.make [| (0, n - 1); (0, n - 1) |] in
  let app =
    App.make ~name:"custom" ~group:App.High ~cpu_us_per_iteration:15.
      ~description:"column sweep on a 32/8/2 system"
      (Program.make ~name:"custom"
         [ Program.declare ~id:0 ~name:"a" d; Program.declare ~id:1 ~name:"b" d ]
         [
           Loop_nest.make ~weight:2 ~parallel_dim:0 space
             [ Access.ji ~array_id:0; Access.ji ~array_id:1 ];
         ])
  in
  let default = Experiment.default_run config app in
  let inter = Experiment.inter_run config app in
  Format.printf "@.32/8/2 system: default %.1f ms, inter %.1f ms (normalized %.3f)@."
    (default.Run.elapsed_us /. 1000.)
    (inter.Run.elapsed_us /. 1000.)
    (Experiment.normalized ~base:default inter)
