examples/stencil2d.ml: Access App Config Data_space Experiment Flo_core Flo_engine Flo_poly Flo_storage Flo_workloads Format Iter_space List Loop_nest Program Run Topology
