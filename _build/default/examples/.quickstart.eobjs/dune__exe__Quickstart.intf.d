examples/quickstart.mli:
