examples/matmul_ooc.ml: Access App Config Data_space Experiment Flo_engine Flo_poly Flo_storage Flo_workloads Format Iter_space Loop_nest Program Run Topology
