examples/custom_hierarchy.ml: Access App Chunk_pattern Config Data_space Experiment Flo_core Flo_engine Flo_poly Flo_storage Flo_workloads Format Iter_space Loop_nest Program Run Topology
