examples/quickstart.ml: Access Chunk_pattern Data_space File_layout Flo_core Flo_poly Format Internode Iter_space List Loop_nest Optimizer Program
