examples/custom_hierarchy.mli:
