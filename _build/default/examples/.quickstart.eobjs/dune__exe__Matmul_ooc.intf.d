examples/matmul_ooc.mli:
