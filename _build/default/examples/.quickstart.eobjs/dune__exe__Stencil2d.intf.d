examples/stencil2d.mli:
