(* Out-of-core matrix multiply, end to end: build the program, run it
   through the storage-hierarchy simulator under the default (row-major)
   layouts and under the pass's inter-node layouts, and compare.

     dune exec examples/matmul_ooc.exe

   This is the motivating scenario of the paper's Section 2: the
   column-wise reads of V scatter every thread's accesses over the whole
   file and thrash the shared I/O-node caches. *)

open Flo_poly
open Flo_storage
open Flo_workloads
open Flo_engine

let n = 256

let app =
  let d = Data_space.make [| n; n |] in
  let space = Iter_space.make [| (0, n - 1); (0, n - 1) |] in
  App.make ~name:"matmul-ooc" ~group:App.High ~cpu_us_per_iteration:10.
    ~description:"out-of-core matrix multiply"
    (Program.make ~name:"matmul-ooc"
       [
         Program.declare ~id:0 ~name:"W" d;
         Program.declare ~id:1 ~name:"U" d;
         Program.declare ~id:2 ~name:"V" d;
       ]
       [
         Loop_nest.make ~name:"multiply" ~weight:2 ~parallel_dim:0 space
           [ Access.ij ~array_id:0; Access.ij ~array_id:1; Access.ji ~array_id:2 ];
       ])

let () =
  let config = Config.default in
  Format.printf "system: %a@.@." Topology.pp config.Config.topology;

  let default = Experiment.default_run config app in
  let optimized = Experiment.inter_run config app in

  let show label (r : Run.result) =
    Format.printf
      "%-9s  time %8.1f ms   L1 miss/elem %5.2f%%   L2 miss/elem %5.2f%%   %7d requests   %6d disk reads@."
      label (r.Run.elapsed_us /. 1000.)
      (100. *. Run.l1_miss_per_element r)
      (100. *. Run.l2_miss_per_element r)
      r.Run.block_requests r.Run.disk_reads
  in
  show "default" default;
  show "inter" optimized;
  Format.printf "@.normalized execution time: %.3f (%.1f%% improvement)@."
    (Experiment.normalized ~base:default optimized)
    (100. *. (1. -. Experiment.normalized ~base:default optimized));

  (* the same comparison under exclusive caching (Fig. 7(h)) *)
  let dk = Experiment.default_run ~caching:Run.Demote config app in
  let ok_ = Experiment.inter_run ~caching:Run.Demote config app in
  Format.printf "under DEMOTE-LRU: %.3f@." (ok_.Run.elapsed_us /. dk.Run.elapsed_us)
