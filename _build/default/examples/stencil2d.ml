(* A 5-point stencil sweep over a disk-resident grid, demonstrating
   (a) multiple references with distinct offset vectors but one access
   matrix — they share a constraint group, so Step I satisfies all of them —
   and (b) the block-size sensitivity experiment of Fig. 7(e) on a single
   application.

     dune exec examples/stencil2d.exe *)

open Flo_poly
open Flo_storage
open Flo_workloads
open Flo_engine

let n = 256

let app =
  (* grid is read through a transposed stencil (column sweep with N/S/E/W
     neighbours), out is written row-wise *)
  let d = Data_space.make [| n + 2; n + 2 |] in
  let space = Iter_space.make [| (1, n); (1, n) |] in
  let at di dj = Access.of_rows ~array_id:0 [ [ 0; 1 ]; [ 1; 0 ] ] [ dj; di ] in
  App.make ~name:"stencil2d" ~group:App.High ~cpu_us_per_iteration:20.
    ~description:"transposed 5-point stencil"
    (Program.make ~name:"stencil2d"
       [ Program.declare ~id:0 ~name:"grid" d; Program.declare ~id:1 ~name:"out" d ]
       [
         Loop_nest.make ~name:"sweep" ~weight:2 ~parallel_dim:0 space
           [ at 0 0; at 1 0; at (-1) 0; at 0 1; at 0 (-1); Access.ij ~array_id:1 ];
       ])

let () =
  (* all five stencil references share the access matrix, so one data
     transformation satisfies every one of them *)
  let plan = Experiment.inter_plan Config.default app in
  Format.printf "%a@.@." Flo_core.Optimizer.pp plan;

  Format.printf "block-size sensitivity (Fig. 7(e) on one app):@.";
  Format.printf "%8s  %10s  %10s  %8s@." "block" "default-ms" "inter-ms" "norm";
  List.iter
    (fun block_elems ->
      let t = Config.default.Config.topology in
      let topo =
        Topology.make ~compute_nodes:t.Topology.compute_nodes
          ~io_nodes:t.Topology.io_nodes ~storage_nodes:t.Topology.storage_nodes
          ~block_elems
          ~io_cache_blocks:(t.Topology.io_cache_blocks * t.Topology.block_elems / block_elems)
          ~storage_cache_blocks:
            (t.Topology.storage_cache_blocks * t.Topology.block_elems / block_elems)
          ()
      in
      let config = Config.with_topology Config.default topo in
      let d = Experiment.default_run config app in
      let o = Experiment.inter_run config app in
      Format.printf "%8d  %10.1f  %10.1f  %8.3f@." block_elems (d.Run.elapsed_us /. 1000.)
        (o.Run.elapsed_us /. 1000.)
        (Experiment.normalized ~base:d o))
    [ 16; 32; 64; 128 ]
