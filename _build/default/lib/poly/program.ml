type array_decl = { id : int; name : string; space : Data_space.t; opaque : bool }

let declare ?(opaque = false) ~id ~name space = { id; name; space; opaque }

type t = { name : string; arrays : array_decl list; nests : Loop_nest.t list }

let make ~name arrays nests =
  let ids = List.map (fun a -> a.id) arrays in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Program.make: duplicate array ids";
  let find id = List.find_opt (fun a -> a.id = id) arrays in
  List.iter
    (fun nest ->
      List.iter
        (fun r ->
          match find (Access.array_id r) with
          | None -> invalid_arg "Program.make: reference to undeclared array"
          | Some a ->
            if Access.rank r <> Data_space.rank a.space then
              invalid_arg "Program.make: reference rank mismatch")
        nest.Loop_nest.refs)
    nests;
  { name; arrays; nests }

let array_decl t id = List.find (fun a -> a.id = id) t.arrays

let array_ids t = List.sort compare (List.map (fun a -> a.id) t.arrays)

let refs_to t id =
  List.concat_map
    (fun nest -> List.map (fun r -> (nest, r)) (Loop_nest.refs_to nest id))
    t.nests

let total_trip_count t =
  List.fold_left (fun acc nest -> acc + Loop_nest.trip_count nest) 0 t.nests

let pp ppf t =
  Format.fprintf ppf "@[<v>program %s: %d arrays, %d nests@]" t.name
    (List.length t.arrays) (List.length t.nests)
