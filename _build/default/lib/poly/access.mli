(** Array references: affine maps from iteration space to data space.

    A reference [a = Q i + q] is the paper's basic object of analysis; [Q] is
    the [m x n] access matrix and [q] the offset vector. *)

open Flo_linalg

type t = { array_id : int; map : Affine.t }

val make : array_id:int -> Imat.t -> Ivec.t -> t
val of_rows : array_id:int -> int list list -> int list -> t
(** Convenience: access matrix given as row lists plus offset list. *)

val array_id : t -> int
val matrix : t -> Imat.t
val offset : t -> Ivec.t
val eval : t -> Ivec.t -> Ivec.t
(** Data vector touched by an iteration vector. *)

val rank : t -> int
(** Array rank [m] (output dimension). *)

val depth : t -> int
(** Loop depth [n] (input dimension). *)

val transform : Imat.t -> t -> t
(** [transform d r] is the reference after the unimodular data transformation
    [D]: [r' = D r], i.e. matrix [D.Q] and offset [D.q] (Section 4.1). *)

val same_matrix : t -> t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Common constructors for 2-deep nests over 2-D arrays. *)

val ij : array_id:int -> t
(** [A\[i, j\]] under iterators [(i, j)]. *)

val ji : array_id:int -> t
(** [A\[j, i\]] — the transposed (column-wise) access. *)

val diag : array_id:int -> t
(** [A\[i + j, j\]] — a sheared (wavefront) access. *)
