open Flo_linalg

type t = { mat : Imat.t; off : Ivec.t }

let make mat off =
  if Imat.rows mat <> Ivec.dim off then invalid_arg "Affine.make: offset dimension mismatch";
  { mat; off }

let identity n = { mat = Imat.identity n; off = Ivec.zero n }

let apply t x = Ivec.add (Imat.mul_vec t.mat x) t.off

let compose f g =
  { mat = Imat.mul f.mat g.mat; off = Ivec.add (Imat.mul_vec f.mat g.off) f.off }

let in_dim t = Imat.cols t.mat
let out_dim t = Imat.rows t.mat

let equal a b = Imat.equal a.mat b.mat && Ivec.equal a.off b.off

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,+ %a@]" Imat.pp t.mat Ivec.pp t.off
