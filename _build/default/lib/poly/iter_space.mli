(** Rectangular iteration spaces.

    An [n]-level loop nest with loop-invariant bounds is the box
    [lo_k <= i_k <= hi_k].  The paper's polyhedral model admits general affine
    bounds; every workload in the suite (and the paper's own examples) uses
    rectangular nests, so the box form is represented exactly and general
    polyhedra are out of scope (see DESIGN.md). *)

type t

val make : (int * int) array -> t
(** [make bounds] with inclusive [(lo, hi)] per level, outermost first.
    @raise Invalid_argument if any [lo > hi] or the array is empty. *)

val depth : t -> int
val bounds : t -> (int * int) array
val lo : t -> int -> int
val hi : t -> int -> int

val extent : t -> int -> int
(** Number of iterations of level [k]. *)

val cardinal : t -> int
(** Total number of iterations. *)

val mem : t -> Flo_linalg.Ivec.t -> bool

val iter : t -> (Flo_linalg.Ivec.t -> unit) -> unit
(** Enumerate all iteration vectors in lexicographic order.  The vector passed
    to the callback is reused between calls; copy it if retained. *)

val iter_slice : t -> dim:int -> lo:int -> hi:int -> (Flo_linalg.Ivec.t -> unit) -> unit
(** Enumerate the sub-box where level [dim] is restricted to [lo..hi]
    (clamped to the space's own bounds; empty if the clamp is void). *)

val pp : Format.formatter -> t -> unit
