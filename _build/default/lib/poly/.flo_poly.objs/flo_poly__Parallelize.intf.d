lib/poly/parallelize.mli: Flo_linalg Loop_nest
