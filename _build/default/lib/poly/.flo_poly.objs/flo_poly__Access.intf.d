lib/poly/access.mli: Affine Flo_linalg Format Imat Ivec
