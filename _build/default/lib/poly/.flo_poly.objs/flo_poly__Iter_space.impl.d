lib/poly/iter_space.ml: Array Format
