lib/poly/loop_nest.mli: Access Format Iter_space
