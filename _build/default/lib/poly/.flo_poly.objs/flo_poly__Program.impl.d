lib/poly/program.ml: Access Data_space Format List Loop_nest
