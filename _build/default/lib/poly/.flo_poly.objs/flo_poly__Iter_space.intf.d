lib/poly/iter_space.mli: Flo_linalg Format
