lib/poly/affine.mli: Flo_linalg Format Imat Ivec
