lib/poly/access.ml: Affine Flo_linalg Format Imat Ivec
