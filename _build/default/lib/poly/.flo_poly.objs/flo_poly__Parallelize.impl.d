lib/poly/parallelize.ml: Array Fun Iter_space List Loop_nest
