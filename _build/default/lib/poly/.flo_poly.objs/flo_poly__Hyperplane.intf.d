lib/poly/hyperplane.mli: Flo_linalg Format Ivec
