lib/poly/data_space.ml: Array Format
