lib/poly/data_space.mli: Flo_linalg Format
