lib/poly/hyperplane.ml: Flo_linalg Format Ivec
