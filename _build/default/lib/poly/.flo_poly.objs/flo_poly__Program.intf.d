lib/poly/program.mli: Access Data_space Format Loop_nest
