lib/poly/affine.ml: Flo_linalg Format Imat Ivec
