lib/poly/loop_nest.ml: Access Format Iter_space List
