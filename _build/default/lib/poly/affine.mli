(** Integer affine maps [x -> M x + c] between index spaces. *)

open Flo_linalg

type t = { mat : Imat.t; off : Ivec.t }

val make : Imat.t -> Ivec.t -> t
(** @raise Invalid_argument if [off] length differs from the row count. *)

val identity : int -> t
val apply : t -> Ivec.t -> Ivec.t

val compose : t -> t -> t
(** [compose f g] is [x -> f (g x)]. *)

val in_dim : t -> int
val out_dim : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
