type t = {
  name : string;
  space : Iter_space.t;
  refs : Access.t list;
  parallel_dim : int;
  weight : int;
}

let make ?(name = "nest") ?(weight = 1) ~parallel_dim space refs =
  let depth = Iter_space.depth space in
  if parallel_dim < 0 || parallel_dim >= depth then
    invalid_arg "Loop_nest.make: parallel_dim out of range";
  if weight < 1 then invalid_arg "Loop_nest.make: weight < 1";
  if refs = [] then invalid_arg "Loop_nest.make: no references";
  List.iter
    (fun r ->
      if Access.depth r <> depth then
        invalid_arg "Loop_nest.make: reference depth mismatch")
    refs;
  { name; space; refs; parallel_dim; weight }

let depth t = Iter_space.depth t.space

let trip_count t = Iter_space.cardinal t.space * t.weight

let refs_to t id = List.filter (fun r -> Access.array_id r = id) t.refs

let arrays_touched t =
  List.sort_uniq compare (List.map Access.array_id t.refs)

let pp ppf t =
  Format.fprintf ppf "@[<v>nest %s: space %a, parallel dim %d, weight %d@,%a@]"
    t.name Iter_space.pp t.space t.parallel_dim t.weight
    (Format.pp_print_list Access.pp)
    t.refs
