type t = { extents : int array }

let make extents =
  if Array.length extents = 0 then invalid_arg "Data_space.make: empty";
  Array.iter (fun n -> if n <= 0 then invalid_arg "Data_space.make: nonpositive extent") extents;
  { extents = Array.copy extents }

let rank t = Array.length t.extents
let extents t = Array.copy t.extents
let extent t k = t.extents.(k)
let cardinal t = Array.fold_left ( * ) 1 t.extents

let mem t v =
  Array.length v = rank t
  && begin
       let ok = ref true in
       Array.iteri (fun k x -> if x < 0 || x >= t.extents.(k) then ok := false) v;
       !ok
     end

let check t v =
  if not (mem t v) then invalid_arg "Data_space: index out of range"

let row_major_index t v =
  check t v;
  let idx = ref 0 in
  for k = 0 to rank t - 1 do
    idx := (!idx * t.extents.(k)) + v.(k)
  done;
  !idx

let col_major_index t v =
  check t v;
  let idx = ref 0 in
  for k = rank t - 1 downto 0 do
    idx := (!idx * t.extents.(k)) + v.(k)
  done;
  !idx

let of_row_major t i =
  if i < 0 || i >= cardinal t then invalid_arg "Data_space.of_row_major";
  let m = rank t in
  let v = Array.make m 0 in
  let rem = ref i in
  for k = m - 1 downto 0 do
    v.(k) <- !rem mod t.extents.(k);
    rem := !rem / t.extents.(k)
  done;
  v

let iter t f =
  let n = rank t in
  let v = Array.make n 0 in
  let rec go k =
    if k = n then f v
    else
      for x = 0 to t.extents.(k) - 1 do
        v.(k) <- x;
        go (k + 1)
      done
  in
  go 0

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "x") Format.pp_print_int)
    (Array.to_list t.extents)
