open Flo_linalg

type t = { array_id : int; map : Affine.t }

let make ~array_id mat off = { array_id; map = Affine.make mat off }

let of_rows ~array_id rows off =
  make ~array_id (Imat.of_rows rows) (Ivec.of_list off)

let array_id t = t.array_id
let matrix t = t.map.Affine.mat
let offset t = t.map.Affine.off
let eval t i = Affine.apply t.map i
let rank t = Affine.out_dim t.map
let depth t = Affine.in_dim t.map

let transform d t =
  { t with map = Affine.compose (Affine.make d (Ivec.zero (Imat.rows d))) t.map }

let same_matrix a b = Imat.equal (matrix a) (matrix b)

let equal a b = a.array_id = b.array_id && Affine.equal a.map b.map

let pp ppf t =
  Format.fprintf ppf "@[ref(array %d):@ %a@]" t.array_id Affine.pp t.map

let ij ~array_id = of_rows ~array_id [ [ 1; 0 ]; [ 0; 1 ] ] [ 0; 0 ]
let ji ~array_id = of_rows ~array_id [ [ 0; 1 ]; [ 1; 0 ] ] [ 0; 0 ]
let diag ~array_id = of_rows ~array_id [ [ 1; 1 ]; [ 0; 1 ] ] [ 0; 0 ]
