type t = {
  nest : Loop_nest.t;
  threads : int;
  num_blocks : int;
  assign : int -> int;
}

let check_basics ~threads ~num_blocks nest =
  if threads < 1 then invalid_arg "Parallelize: threads < 1";
  if num_blocks < 1 then invalid_arg "Parallelize: num_blocks < 1";
  let u = nest.Loop_nest.parallel_dim in
  let ext = Iter_space.extent nest.Loop_nest.space u in
  if num_blocks > ext then invalid_arg "Parallelize: more blocks than parallel iterations"

let round_robin ~threads ?(blocks_per_thread = 1) nest =
  if blocks_per_thread < 1 then invalid_arg "Parallelize: blocks_per_thread < 1";
  let num_blocks = threads * blocks_per_thread in
  check_basics ~threads ~num_blocks nest;
  { nest; threads; num_blocks; assign = (fun b -> b mod threads) }

let custom ~threads ~num_blocks ~assign nest =
  check_basics ~threads ~num_blocks nest;
  { nest; threads; num_blocks; assign }

(* Even partition: each block spans ceil(extent / num_blocks) indices, the
   last block takes the remainder (paper: "the last block may have a smaller
   number of iterations"). *)
let block_range t b =
  if b < 0 || b >= t.num_blocks then invalid_arg "Parallelize.block_range";
  let u = t.nest.Loop_nest.parallel_dim in
  let space = t.nest.Loop_nest.space in
  let lo0 = Iter_space.lo space u in
  let ext = Iter_space.extent space u in
  let size = (ext + t.num_blocks - 1) / t.num_blocks in
  let lo = lo0 + (b * size) in
  let hi = min (lo + size - 1) (lo0 + ext - 1) in
  (lo, hi)

let owner t b =
  let o = t.assign b in
  if o < 0 || o >= t.threads then invalid_arg "Parallelize: assign out of range";
  o

let blocks_of_thread t thread =
  List.filter (fun b -> owner t b = thread) (List.init t.num_blocks Fun.id)

let iter_thread t ~thread f =
  let u = t.nest.Loop_nest.parallel_dim in
  List.iter
    (fun b ->
      let lo, hi = block_range t b in
      if lo <= hi then Iter_space.iter_slice t.nest.Loop_nest.space ~dim:u ~lo ~hi f)
    (blocks_of_thread t thread)

let iterations_per_thread t =
  let counts = Array.make t.threads 0 in
  for b = 0 to t.num_blocks - 1 do
    let lo, hi = block_range t b in
    if lo <= hi then begin
      let per_index = Iter_space.cardinal t.nest.Loop_nest.space
                      / Iter_space.extent t.nest.Loop_nest.space t.nest.Loop_nest.parallel_dim
      in
      counts.(owner t b) <- counts.(owner t b) + ((hi - lo + 1) * per_index)
    end
  done;
  counts
