(** Loop nests: an iteration space, the references executed in its body, and
    the parallelization directive.

    [parallel_dim] is the paper's user-specified [u]: the loop whose index
    space is cut by the iteration hyperplanes.  [weight] scales the nest's
    contribution to reference weights (e.g. an outer timestep loop that we do
    not represent explicitly). *)

type t = {
  name : string;
  space : Iter_space.t;
  refs : Access.t list;
  parallel_dim : int;
  weight : int;
}

val make :
  ?name:string -> ?weight:int -> parallel_dim:int -> Iter_space.t -> Access.t list -> t
(** @raise Invalid_argument if [parallel_dim] is out of range, [weight < 1],
    any reference's depth differs from the space's, or [refs] is empty. *)

val depth : t -> int
val trip_count : t -> int
(** Total iterations, times [weight]. *)

val refs_to : t -> int -> Access.t list
(** References to a given array id. *)

val arrays_touched : t -> int list
(** Sorted, deduplicated array ids. *)

val pp : Format.formatter -> t -> unit
