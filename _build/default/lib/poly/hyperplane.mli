(** Hyperplane families [g . x = c] over iteration or data spaces.

    A family is identified by its (primitive) normal vector [g]; members
    differ only in the constant [c] (paper, Section 3). *)

open Flo_linalg

type t = { normal : Ivec.t; constant : int }

val make : Ivec.t -> int -> t
(** Normalizes the normal vector to primitive form, scaling the constant
    when the gcd divides it; otherwise keeps the raw pair.
    @raise Invalid_argument on a zero normal. *)

val family : Ivec.t -> Ivec.t
(** The primitive normal identifying the family of a (nonzero) vector. *)

val axis : int -> int -> t
(** [axis n k] is the hyperplane [x_k = 0] in dimension [n] — the iteration
    hyperplane vector [h_I] / data hyperplane vector [h_A] of the paper. *)

val contains : t -> Ivec.t -> bool
val same_family : t -> t -> bool

val member_through : Ivec.t -> Ivec.t -> t
(** [member_through g p] is the member of family [g] passing through point
    [p]. *)

val pp : Format.formatter -> t -> unit
