(** Loop parallelization and distribution (paper, Section 3).

    The iteration space is cut into [num_blocks] iteration blocks by parallel
    hyperplanes orthogonal to loop [u] (the nest's [parallel_dim]); blocks are
    assigned to threads round-robin in thread order.  The baseline
    computation-mapping scheme substitutes a different [assign] function. *)

type t = private {
  nest : Loop_nest.t;
  threads : int;
  num_blocks : int;
  assign : int -> int;
}

val round_robin : threads:int -> ?blocks_per_thread:int -> Loop_nest.t -> t
(** The paper's distribution: [num_blocks = threads * blocks_per_thread]
    (default 1 block per thread), block [b] owned by thread [b mod threads].
    @raise Invalid_argument if [threads < 1] or [blocks_per_thread < 1]. *)

val custom : threads:int -> num_blocks:int -> assign:(int -> int) -> Loop_nest.t -> t
(** Arbitrary block-to-thread mapping; [assign b] must be in
    [0 .. threads-1] (checked lazily on use). *)

val block_range : t -> int -> int * int
(** Inclusive range of the parallel-loop index covered by block [b]; blocks
    split the extent evenly with the last block possibly smaller.
    @raise Invalid_argument if [b] is out of range. *)

val owner : t -> int -> int
(** Thread owning block [b]. *)

val blocks_of_thread : t -> int -> int list
(** Blocks owned by a thread, in execution order. *)

val iter_thread : t -> thread:int -> (Flo_linalg.Ivec.t -> unit) -> unit
(** Enumerate the iterations executed by [thread], block by block, each block
    in lexicographic order.  Callback vector is reused. *)

val iterations_per_thread : t -> int array
(** Iteration counts per thread (for balance diagnostics). *)
