(** Whole-program summary consumed by the layout pass: the disk-resident
    arrays and the parallelized loop nests referencing them.

    Each array is stored in its own file (paper, Section 4 footnote 3). *)

type array_decl = { id : int; name : string; space : Data_space.t; opaque : bool }
(** [opaque] marks arrays that other parts of the application also touch
    through non-affine subscripts (index arrays, conditionals): the layout
    pass must leave such arrays in their canonical layout. *)

val declare : ?opaque:bool -> id:int -> name:string -> Data_space.t -> array_decl

type t = { name : string; arrays : array_decl list; nests : Loop_nest.t list }

val make : name:string -> array_decl list -> Loop_nest.t list -> t
(** Validates that array ids are distinct, every referenced array is declared
    and every reference's rank matches its array's rank.
    @raise Invalid_argument otherwise. *)

val array_decl : t -> int -> array_decl
(** @raise Not_found for unknown ids. *)

val array_ids : t -> int list
(** Sorted ids of all declared arrays. *)

val refs_to : t -> int -> (Loop_nest.t * Access.t) list
(** All references to an array across all nests, paired with their nest. *)

val total_trip_count : t -> int
val pp : Format.formatter -> t -> unit
