open Flo_linalg

type t = { normal : Ivec.t; constant : int }

let make normal constant =
  if Ivec.is_zero normal then invalid_arg "Hyperplane.make: zero normal";
  let g = Ivec.gcd normal in
  if g > 1 && constant mod g = 0 then
    { normal = Ivec.primitive normal; constant = constant / g }
  else { normal; constant }

let family v =
  if Ivec.is_zero v then invalid_arg "Hyperplane.family: zero vector";
  Ivec.primitive v

let axis n k = { normal = Ivec.unit n k; constant = 0 }

let contains t p = Ivec.dot t.normal p = t.constant

let same_family a b = Ivec.equal (family a.normal) (family b.normal)

let member_through g p = { normal = g; constant = Ivec.dot g p }

let pp ppf t = Format.fprintf ppf "%a . x = %d" Ivec.pp t.normal t.constant
