(** Data spaces of disk-resident arrays.

    An [m]-dimensional array declared with extents [(N_1, ..., N_m)] has the
    data space [0 <= a_k < N_k].  Also provides the canonical row-major /
    column-major linearizations that serve as default file layouts. *)

type t

val make : int array -> t
(** [make extents] — all extents must be positive. *)

val rank : t -> int
val extents : t -> int array
val extent : t -> int -> int
val cardinal : t -> int
val mem : t -> Flo_linalg.Ivec.t -> bool

val row_major_index : t -> Flo_linalg.Ivec.t -> int
(** Last dimension fastest.  @raise Invalid_argument if out of range. *)

val col_major_index : t -> Flo_linalg.Ivec.t -> int
(** First dimension fastest. *)

val of_row_major : t -> int -> Flo_linalg.Ivec.t
(** Inverse of {!row_major_index}. *)

val iter : t -> (Flo_linalg.Ivec.t -> unit) -> unit
(** Row-major enumeration; callback vector is reused. *)

val pp : Format.formatter -> t -> unit
