type t = { bounds : (int * int) array }

let make bounds =
  if Array.length bounds = 0 then invalid_arg "Iter_space.make: empty";
  Array.iter (fun (lo, hi) -> if lo > hi then invalid_arg "Iter_space.make: lo > hi") bounds;
  { bounds = Array.copy bounds }

let depth t = Array.length t.bounds
let bounds t = Array.copy t.bounds
let lo t k = fst t.bounds.(k)
let hi t k = snd t.bounds.(k)
let extent t k = snd t.bounds.(k) - fst t.bounds.(k) + 1

let cardinal t =
  Array.fold_left (fun acc (lo, hi) -> acc * (hi - lo + 1)) 1 t.bounds

let mem t v =
  if Array.length v <> depth t then false
  else begin
    let ok = ref true in
    Array.iteri
      (fun k x ->
        let lo, hi = t.bounds.(k) in
        if x < lo || x > hi then ok := false)
      v;
    !ok
  end

let iter_box bounds f =
  let n = Array.length bounds in
  let v = Array.map fst bounds in
  let rec go k =
    if k = n then f v
    else begin
      let lo, hi = bounds.(k) in
      for x = lo to hi do
        v.(k) <- x;
        go (k + 1)
      done
    end
  in
  go 0

let iter t f = iter_box t.bounds f

let iter_slice t ~dim ~lo ~hi f =
  let b = Array.copy t.bounds in
  let blo, bhi = b.(dim) in
  let lo = max lo blo and hi = min hi bhi in
  if lo <= hi then begin
    b.(dim) <- (lo, hi);
    iter_box b f
  end

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " x ")
       (fun ppf (lo, hi) -> Format.fprintf ppf "[%d..%d]" lo hi))
    (Array.to_list t.bounds)
