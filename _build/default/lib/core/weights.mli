(** Reference weighting (paper Eq. 5).

    When multiple references to one array have different access matrices,
    the homogeneous systems of Eq. 4 may be jointly unsolvable; the pass
    then prioritizes constraint groups by weight [W(Q_i) = sum n_j], where
    [n_j] is the trip-count product of the loops enclosing reference [j]. *)

open Flo_linalg
open Flo_poly

type group = {
  matrix : Imat.t;  (** shared access matrix [Q_i] *)
  parallel_dim : int;  (** the nests' [u] (grouping key alongside [Q]) *)
  refs : (Loop_nest.t * Access.t) list;
  weight : int;  (** [W(Q_i)] *)
}

val weight_of_ref : Loop_nest.t -> int
(** [n_j]: the nest's trip count (including its weight multiplier). *)

val group_refs : (Loop_nest.t * Access.t) list -> group list
(** Group references by (access matrix, parallel dim), weights summed,
    sorted by descending weight (ties broken deterministically). *)

val coverage : group list -> satisfied:(group -> bool) -> float
(** Fraction of total weight in groups accepted by [satisfied]; 0 when the
    list is empty. *)
