lib/core/compmap.ml: Array List Printf
