lib/core/array_partition.ml: Flo_linalg Flo_poly Gauss Hermite Imat Ivec List Weights
