lib/core/relayout.ml: Array Data_space File_layout Flo_linalg Flo_poly Hashtbl List
