lib/core/reindex.mli: Data_space File_layout Flo_poly Program
