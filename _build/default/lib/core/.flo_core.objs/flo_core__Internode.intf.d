lib/core/internode.mli: Array_partition Chunk_pattern Data_space File_layout Flo_poly
