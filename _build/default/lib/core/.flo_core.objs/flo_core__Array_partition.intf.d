lib/core/array_partition.mli: Access Flo_linalg Flo_poly Imat Ivec Loop_nest Weights
