lib/core/weights.ml: Access Flo_linalg Flo_poly Hashtbl Imat List Loop_nest
