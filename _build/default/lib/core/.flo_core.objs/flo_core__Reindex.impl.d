lib/core/reindex.ml: Array Data_space File_layout Flo_linalg Flo_poly Fun Hashtbl List Program Weights
