lib/core/optimizer.mli: Array_partition File_layout Flo_poly Format Internode Program
