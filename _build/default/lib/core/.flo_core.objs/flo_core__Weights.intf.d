lib/core/weights.mli: Access Flo_linalg Flo_poly Imat Loop_nest
