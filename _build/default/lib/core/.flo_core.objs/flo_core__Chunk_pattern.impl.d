lib/core/chunk_pattern.ml: Array Format
