lib/core/compmap.mli:
