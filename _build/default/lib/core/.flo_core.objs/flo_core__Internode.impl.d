lib/core/internode.ml: Array Array_partition Chunk_pattern File_layout
