lib/core/relayout.mli: File_layout Flo_linalg
