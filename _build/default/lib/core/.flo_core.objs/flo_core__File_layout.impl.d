lib/core/file_layout.ml: Array Chunk_pattern Data_space Flo_linalg Flo_poly Format Imat Ivec
