lib/core/chunk_pattern.mli: Format
