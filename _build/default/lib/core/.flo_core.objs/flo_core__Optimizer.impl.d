lib/core/optimizer.ml: Array_partition File_layout Flo_poly Format Internode List Option Program Weights
