lib/core/file_layout.mli: Chunk_pattern Data_space Flo_linalg Flo_poly Format Imat Ivec
