(** Storage-hierarchy-aware layout formation (Step II glue).

    Combines a Step I partition with a chunk pattern derived from the cache
    hierarchy.  [scope] reproduces Fig. 7(f): the pattern can be built
    considering only the I/O-node layer, only the storage-node layer, or
    the full hierarchy. *)

open Flo_poly

type scope = Io_only | Storage_only | Both

type spec = {
  threads : int;
  num_blocks : int;  (** iteration blocks per nest (round-robin over threads) *)
  layers : Chunk_pattern.layer array;
      (** full hierarchy bottom-up; capacities are this array's share of each
          cache, in elements *)
  align : int;  (** data block size in elements (chunks are block-aligned) *)
}

val make_spec :
  threads:int -> num_blocks:int -> layers:Chunk_pattern.layer array -> align:int -> spec
(** @raise Invalid_argument if [threads] differs from the product of layer
    fanouts, or any field is non-positive. *)

val pattern_for : spec -> scope -> Chunk_pattern.t
(** [Both]: fit the declared capacities.  [Io_only]: capacities above layer
    1 collapse to their minimum ([t_i = 1]) so only the I/O-cache size
    shapes the interleave; chunks are element-aligned (the stripe/block
    size is a storage-layer parameter this variant does not see), so
    adjacent threads share boundary blocks.  [Storage_only]: layer 1 is
    merged into layer 2 — each thread's chunk is an equal share of the
    storage cache. *)

val layout_for :
  space:Data_space.t -> partition:Array_partition.result -> spec -> scope -> File_layout.t

val template_spec : fanouts:int array -> chunk:int -> align:int -> num_blocks:int -> spec
(** The "template hierarchy" extension of Section 4.3: all hierarchies
    sharing the same fanout vector belong to one template, and a single
    compilation serves every member.  The pattern uses the minimal feasible
    capacities ([t_i = 1] everywhere) with a [chunk]-element thread chunk, so
    it is capacity-oblivious — correct on any member, with some performance
    loss versus a capacity-exact compilation (quantified by bench ablation
    A3).  @raise Invalid_argument on non-positive arguments. *)

val scope_to_string : scope -> string
