(** Layout conversion passes (the paper's Section 4.3 extension).

    The inter-node layout is private to one compiled binary: the mapping
    from array elements to file offsets exists only in the executable, so
    the data is unreadable by other applications.  The fix the paper
    sketches is a pair of conversions — input arrays are transformed from a
    canonical layout when the program starts, output arrays back to a
    canonical (or consumer-desired) layout when it ends.

    This module plans such conversions and estimates their I/O cost so the
    engine can report when optimization + conversion still beats running
    with canonical layouts (amortization). *)



type move = { element : Flo_linalg.Ivec.t; src : int; dst : int }

type plan = {
  from_layout : File_layout.t;
  to_layout : File_layout.t;
  src_blocks : int;  (** distinct blocks read, at [block_elems] granularity *)
  dst_blocks : int;  (** distinct blocks written *)
  moved : int;  (** elements whose offset changes *)
}

val plan : block_elems:int -> from_layout:File_layout.t -> to_layout:File_layout.t -> plan
(** Streams the array once in source order.
    @raise Invalid_argument if the two layouts describe different data
    spaces. *)

val iter_moves :
  from_layout:File_layout.t -> to_layout:File_layout.t -> (move -> unit) -> unit
(** Enumerate the element moves in source-offset order (the order a
    streaming converter would perform them).  Elements whose offset is
    unchanged are skipped. *)

val cost_us :
  read_us:float -> write_us:float -> plan -> float
(** [src_blocks * read_us + dst_blocks * write_us]: the modeled one-off
    conversion cost. *)

val break_even :
  conversion_us:float -> default_us:float -> optimized_us:float -> int option
(** Number of whole executions after which converting in and out of the
    optimized layout beats staying canonical:
    smallest [n] with [conversion_us + n * optimized < n * default].
    [None] when the optimized layout is not faster. *)
