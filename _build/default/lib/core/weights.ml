open Flo_linalg
open Flo_poly

type group = {
  matrix : Imat.t;
  parallel_dim : int;
  refs : (Loop_nest.t * Access.t) list;
  weight : int;
}

let weight_of_ref nest = Loop_nest.trip_count nest

let group_refs refs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (nest, r) ->
      let key = (Access.matrix r, nest.Loop_nest.parallel_dim) in
      let existing = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key ((nest, r) :: existing))
    refs;
  let groups =
    Hashtbl.fold
      (fun (matrix, parallel_dim) refs acc ->
        let weight = List.fold_left (fun w (nest, _) -> w + weight_of_ref nest) 0 refs in
        { matrix; parallel_dim; refs = List.rev refs; weight } :: acc)
      tbl []
  in
  List.sort
    (fun a b ->
      let c = compare b.weight a.weight in
      if c <> 0 then c else compare (a.matrix, a.parallel_dim) (b.matrix, b.parallel_dim))
    groups

let coverage groups ~satisfied =
  let total = List.fold_left (fun acc g -> acc + g.weight) 0 groups in
  if total = 0 then 0.
  else
    let sat = List.fold_left (fun acc g -> if satisfied g then acc + g.weight else acc) 0 groups in
    float_of_int sat /. float_of_int total
