(** Profile-driven dimension reindexing — the prior file-layout baseline
    ([27], Kandemir et al., FAST'08) used in Fig. 7(g).

    For each array the scheme exhaustively tries every dimension permutation
    (e.g. 6 layouts for a 3-D array), profiles the program, and keeps the
    best.  Arrays are visited greedily in id order with the other arrays'
    layouts fixed at their current best, exactly as one would drive the
    profile loop in practice.  The search is parameterized by an [evaluate]
    callback (modeled execution time from the engine) so this module stays
    independent of the simulator. *)

open Flo_poly

val permutations : int -> int array list
(** All permutations of [0 .. n-1], lexicographic; [n!] entries. *)

val candidates : Data_space.t -> File_layout.t list
(** All [Permuted] layouts of an array. *)

val dominant_order : Program.t -> (int * File_layout.t) list
(** Static variant (no profile runs): per array, the dimension permutation
    that makes the weight-dominant reference's deepest loop iterator index
    the innermost stored dimension; a weight tie between the two heaviest
    groups keeps the canonical layout.  This is the hierarchy-oblivious,
    single-array core of [27] and the comparator used in Fig. 7(g). *)

type outcome = {
  layouts : (int * File_layout.t) list;  (** chosen layout per array id *)
  time : float;  (** [evaluate] value of the chosen assignment *)
  evaluations : int;  (** profile runs spent *)
}

val optimize : Program.t -> evaluate:((int -> File_layout.t) -> float) -> outcome
(** [evaluate f] must return the modeled execution time under the layout
    assignment [f] (total over arrays).  Lower is better. *)
