open Flo_poly

type move = { element : Flo_linalg.Ivec.t; src : int; dst : int }

type plan = {
  from_layout : File_layout.t;
  to_layout : File_layout.t;
  src_blocks : int;
  dst_blocks : int;
  moved : int;
}

let check_spaces a b =
  if Data_space.extents (File_layout.space a) <> Data_space.extents (File_layout.space b)
  then invalid_arg "Relayout: layouts describe different data spaces"

let plan ~block_elems ~from_layout ~to_layout =
  check_spaces from_layout to_layout;
  if block_elems < 1 then invalid_arg "Relayout.plan: block_elems < 1";
  let src = Hashtbl.create 1024 and dst = Hashtbl.create 1024 in
  let moved = ref 0 in
  Data_space.iter (File_layout.space from_layout) (fun a ->
      let s = File_layout.offset_of from_layout a in
      let d = File_layout.offset_of to_layout a in
      if s <> d then begin
        incr moved;
        Hashtbl.replace src (s / block_elems) ();
        Hashtbl.replace dst (d / block_elems) ()
      end);
  {
    from_layout;
    to_layout;
    src_blocks = Hashtbl.length src;
    dst_blocks = Hashtbl.length dst;
    moved = !moved;
  }

let iter_moves ~from_layout ~to_layout f =
  check_spaces from_layout to_layout;
  (* collect and order by source offset: a streaming converter reads the
     source file sequentially *)
  let moves = ref [] in
  Data_space.iter (File_layout.space from_layout) (fun a ->
      let src = File_layout.offset_of from_layout a in
      let dst = File_layout.offset_of to_layout a in
      if src <> dst then moves := { element = Array.copy a; src; dst } :: !moves);
  List.iter f (List.sort (fun m1 m2 -> compare m1.src m2.src) !moves)

let cost_us ~read_us ~write_us plan =
  (float_of_int plan.src_blocks *. read_us) +. (float_of_int plan.dst_blocks *. write_us)

let break_even ~conversion_us ~default_us ~optimized_us =
  let gain = default_us -. optimized_us in
  if gain <= 0. then None
  else Some (max 1 (int_of_float (ceil (conversion_us /. gain))))
