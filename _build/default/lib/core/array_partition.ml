open Flo_linalg

type result = {
  d_row : Ivec.t;
  d : Imat.t;
  v : int;
  satisfied : Weights.group list;
  unsatisfied : Weights.group list;
  coverage : float;
  stride : int;
  origin : int;
  u_extent : int;
}

let constraint_columns (g : Weights.group) = Imat.delete_col g.matrix g.parallel_dim

let annihilates d g =
  let m = constraint_columns g in
  Ivec.is_zero (Imat.vec_mul d m)

let solve ?(weighted = true) groups =
  let groups =
    if weighted then List.sort (fun (a : Weights.group) b -> compare b.weight a.weight) groups
    else groups
  in
  match groups with
  | [] -> None
  | dominant :: rest ->
    let first = constraint_columns dominant in
    if Gauss.left_nullspace first = [] then None
    else begin
      (* greedily grow the constraint system while it stays solvable *)
      let m =
        List.fold_left
          (fun m g ->
            let candidate = Imat.append_cols m (constraint_columns g) in
            if Gauss.left_nullspace candidate <> [] then candidate else m)
          first rest
      in
      let basis = Gauss.left_nullspace m in
      let u_col = Imat.col dominant.matrix dominant.parallel_dim in
      let stride_of d = Ivec.dot d u_col in
      (* prefer a solution that actually advances along v with the parallel
         loop (nonzero stride), and among those the smallest stride to keep
         the transformed bounding box tight *)
      let d_row =
        let scored =
          List.map (fun d -> (abs (stride_of d), d)) basis
          |> List.sort (fun (a, da) (b, db) ->
                 match (a, b) with
                 | 0, 0 -> Ivec.lex_compare da db
                 | 0, _ -> 1
                 | _, 0 -> -1
                 | _ -> if a <> b then compare a b else Ivec.lex_compare da db)
        in
        match scored with
        | (_, d) :: _ -> d
        | [] -> assert false (* basis nonempty by construction *)
      in
      (* nullspace vectors are already primitive; only the sign may need
         fixing so the image advances forward with the parallel loop *)
      let d_row = if stride_of d_row < 0 then Ivec.neg d_row else d_row in
      let d = Hermite.complete_to_unimodular ~row:0 d_row in
      (* a group rejected by the greedy pass may still be annihilated *)
      let satisfied, unsatisfied = List.partition (annihilates d_row) groups in
      let coverage = Weights.coverage groups ~satisfied:(annihilates d_row) in
      (* anchor of the partition-dimension image: Step I guarantees
         a'_v = stride * i_u + d.q over satisfied references, so the data
         slabs must be aligned to the dominant nest's parallel loop *)
      let origin, u_extent =
        match dominant.Weights.refs with
        | (nest, access) :: _ ->
          let space = nest.Flo_poly.Loop_nest.space in
          let u = dominant.Weights.parallel_dim in
          let lo = Flo_poly.Iter_space.lo space u in
          ( (stride_of d_row * lo) + Ivec.dot d_row (Flo_poly.Access.offset access),
            Flo_poly.Iter_space.extent space u )
        | [] -> (0, 1)
      in
      Some
        {
          d_row;
          d;
          v = 0;
          satisfied;
          unsatisfied;
          coverage;
          stride = stride_of d_row;
          origin;
          u_extent;
        }
    end

let solve_refs refs = solve (Weights.group_refs refs)
