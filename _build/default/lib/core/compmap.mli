(** Computation mapping for multi-level storage-cache hierarchies — the
    prior code-restructuring baseline ([26], Kandemir et al., HPDC'10) used
    in Fig. 7(g).

    Instead of changing data layouts, the scheme re-clusters loop iteration
    blocks onto threads so that threads sharing a cache touch nearby data.
    We implement it as the iterative search the paper describes: a family of
    topology-aware clusterings per loop nest, evaluated by profiling
    (the [evaluate] callback) and adopted greedily per nest.  File layouts
    remain canonical. *)

type strategy =
  | Ident  (** round-robin: block [b] on thread [b mod threads] *)
  | Reverse  (** reversed thread order *)
  | Cluster_swap  (** swap the roles of pset index and slot-in-pset *)
  | Pset_rotate of int  (** rotate blocks across psets by [k] clusters *)
  | Block_cyclic of int
      (** distribute runs of [c] consecutive blocks to the same pset *)

val all_strategies : cluster:int -> threads:int -> strategy list
(** The candidate family explored by the iterative search. *)

val assign : strategy -> cluster:int -> threads:int -> num_blocks:int -> int -> int
(** Block-to-thread map for one nest.  [cluster] is the number of threads
    sharing a layer-1 cache.  Total: every value is in [0..threads-1], and
    when [num_blocks = threads] the map is a bijection. *)

type outcome = {
  choices : (int * strategy) list;  (** per nest index *)
  time : float;
  evaluations : int;
}

val optimize :
  nests:int ->
  cluster:int ->
  threads:int ->
  evaluate:((int -> strategy) -> float) ->
  outcome
(** Greedy per-nest search over {!all_strategies}; [evaluate f] returns the
    modeled execution time when nest [i] uses strategy [f i]. *)

val strategy_to_string : strategy -> string
