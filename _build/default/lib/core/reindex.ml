open Flo_poly

let rec permutations n =
  if n <= 0 then invalid_arg "Reindex.permutations: n < 1"
  else if n = 1 then [ [| 0 |] ]
  else
    (* insert (n-1) into every position of every permutation of (n-1) *)
    let smaller = permutations (n - 1) in
    List.concat_map
      (fun p ->
        List.init n (fun pos ->
            Array.init n (fun i ->
                if i < pos then p.(i) else if i = pos then n - 1 else p.(i - 1))))
      smaller
    |> List.sort_uniq compare

let candidates space =
  List.map (File_layout.permuted space) (permutations (Data_space.rank space))

(* Dimension order implied by one access matrix: dimension indexed by a
   deeper loop iterator goes further inside (is stored more contiguously). *)
let order_of_group space (g : Weights.group) =
  let q = g.Weights.matrix in
  let m = Flo_linalg.Imat.rows q and n = Flo_linalg.Imat.cols q in
  let depth_of r =
    let d = ref (-1) in
    for j = 0 to n - 1 do
      if Flo_linalg.Imat.get q r j <> 0 then d := j
    done;
    !d
  in
  let dims = List.init m (fun r -> (depth_of r, r)) in
  let sorted = List.stable_sort (fun (a, ra) (b, rb) -> compare (a, ra) (b, rb)) dims in
  let order = Array.of_list (List.map snd sorted) in
  if order = Array.init m Fun.id then File_layout.Row_major space
  else File_layout.permuted space order

(* Static variant: per array, pick the dimension order that makes the
   weight-dominant reference's deepest iterator innermost (ties between the
   two heaviest constraint groups keep the canonical layout).  This is the
   single-array, hierarchy-oblivious core of [27] without profile runs. *)
let dominant_order program =
  let order_for id =
    let decl = Program.array_decl program id in
    let space = decl.Program.space in
    match Weights.group_refs (Program.refs_to program id) with
    | [] -> File_layout.Row_major space
    | [ g ] -> order_of_group space g
    | g1 :: g2 :: _ ->
      if g1.Weights.weight = g2.Weights.weight then File_layout.Row_major space
      else order_of_group space g1
  in
  List.map (fun id -> (id, order_for id)) (Program.array_ids program)

type outcome = {
  layouts : (int * File_layout.t) list;
  time : float;
  evaluations : int;
}

let optimize program ~evaluate =
  let ids = Program.array_ids program in
  let current = Hashtbl.create 8 in
  List.iter
    (fun id ->
      let decl = Program.array_decl program id in
      Hashtbl.replace current id (File_layout.Row_major decl.Program.space))
    ids;
  let assignment id = Hashtbl.find current id in
  let evaluations = ref 0 in
  let eval () =
    incr evaluations;
    evaluate assignment
  in
  let best_time = ref (eval ()) in
  List.iter
    (fun id ->
      let decl = Program.array_decl program id in
      List.iter
        (fun layout ->
          let previous = Hashtbl.find current id in
          Hashtbl.replace current id layout;
          let t = eval () in
          if t < !best_time then best_time := t
          else Hashtbl.replace current id previous)
        (candidates decl.Program.space))
    ids;
  {
    layouts = List.map (fun id -> (id, Hashtbl.find current id)) ids;
    time = !best_time;
    evaluations = !evaluations;
  }
