type strategy =
  | Ident
  | Reverse
  | Cluster_swap
  | Pset_rotate of int
  | Block_cyclic of int

let divisors n = List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1))

let all_strategies ~cluster ~threads =
  if cluster < 1 || threads < 1 || threads mod cluster <> 0 then
    invalid_arg "Compmap.all_strategies: cluster must divide threads";
  let n_clusters = threads / cluster in
  let rotations =
    List.init (min 3 (max 0 (n_clusters - 1))) (fun k -> Pset_rotate (k + 1))
  in
  let cyclics =
    divisors cluster
    |> List.filter (fun c -> c > 1 && c < cluster)
    |> List.map (fun c -> Block_cyclic c)
  in
  (Ident :: Reverse :: (if n_clusters > 1 then [ Cluster_swap ] else []))
  @ rotations @ cyclics

let assign strategy ~cluster ~threads ~num_blocks b =
  if b < 0 || b >= num_blocks then invalid_arg "Compmap.assign: block out of range";
  let n_clusters = threads / cluster in
  let r = b mod threads in
  match strategy with
  | Ident -> r
  | Reverse -> threads - 1 - r
  | Cluster_swap ->
    let pset = r mod n_clusters and slot = r / n_clusters in
    (pset * cluster) + (slot mod cluster)
  | Pset_rotate k ->
    let pset = (r / cluster) + k and slot = r mod cluster in
    (pset mod n_clusters * cluster) + slot
  | Block_cyclic c ->
    let pset = r / c mod n_clusters in
    let slot = ((r mod c) + (c * (r / (c * n_clusters)))) mod cluster in
    (pset * cluster) + slot

type outcome = {
  choices : (int * strategy) list;
  time : float;
  evaluations : int;
}

let optimize ~nests ~cluster ~threads ~evaluate =
  let chosen = Array.make nests Ident in
  let evaluations = ref 0 in
  let eval () =
    incr evaluations;
    evaluate (fun i -> chosen.(i))
  in
  let best_time = ref (eval ()) in
  let family = all_strategies ~cluster ~threads in
  for i = 0 to nests - 1 do
    List.iter
      (fun s ->
        if s <> chosen.(i) then begin
          let previous = chosen.(i) in
          chosen.(i) <- s;
          let t = eval () in
          if t < !best_time then best_time := t else chosen.(i) <- previous
        end)
      family
  done;
  {
    choices = List.init nests (fun i -> (i, chosen.(i)));
    time = !best_time;
    evaluations = !evaluations;
  }

let strategy_to_string = function
  | Ident -> "ident"
  | Reverse -> "reverse"
  | Cluster_swap -> "cluster-swap"
  | Pset_rotate k -> Printf.sprintf "pset-rotate(%d)" k
  | Block_cyclic c -> Printf.sprintf "block-cyclic(%d)" c
