
type scope = Io_only | Storage_only | Both

type spec = {
  threads : int;
  num_blocks : int;
  layers : Chunk_pattern.layer array;
  align : int;
}

let make_spec ~threads ~num_blocks ~layers ~align =
  if threads < 1 || num_blocks < 1 || align < 1 then
    invalid_arg "Internode.make_spec: nonpositive field";
  let product =
    Array.fold_left (fun acc (ly : Chunk_pattern.layer) -> acc * ly.fanout) 1 layers
  in
  if product <> threads then
    invalid_arg "Internode.make_spec: layer fanouts do not multiply to thread count";
  { threads; num_blocks; layers = Array.copy layers; align }

let pattern_for spec scope =
  match scope with
  | Both -> Chunk_pattern.fit ~align:spec.align ~layers:spec.layers ()
  | Io_only ->
    (* capacity 1 above layer 1 makes [fit] clamp every t_i to its minimum;
       the data-block (stripe) size is a storage-layer parameter this
       variant does not see, so chunks are element-aligned only — adjacent
       threads share boundary blocks, which is precisely the footprint
       inflation the full-hierarchy pass avoids *)
    let layers =
      Array.mapi
        (fun i (ly : Chunk_pattern.layer) -> if i = 0 then ly else { ly with capacity = 1 })
        spec.layers
    in
    Chunk_pattern.fit ~align:1 ~layers ()
  | Storage_only ->
    if Array.length spec.layers < 2 then
      Chunk_pattern.fit ~align:spec.align ~layers:spec.layers ()
    else begin
      let l0 = spec.layers.(0) and l1 = spec.layers.(1) in
      let merged : Chunk_pattern.layer =
        { capacity = l1.capacity; fanout = l0.fanout * l1.fanout }
      in
      let rest = Array.sub spec.layers 2 (Array.length spec.layers - 2) in
      Chunk_pattern.fit ~align:spec.align ~layers:(Array.append [| merged |] rest) ()
    end

let layout_for ~space ~partition spec scope =
  let pattern = pattern_for spec scope in
  let stride = max 1 (abs partition.Array_partition.stride) in
  let per_block =
    (partition.Array_partition.u_extent + spec.num_blocks - 1) / spec.num_blocks
  in
  File_layout.internode ~space ~d:partition.Array_partition.d
    ~v:partition.Array_partition.v ~num_blocks:spec.num_blocks
    ~v_origin:partition.Array_partition.origin
    ~slab_height:(max 1 (stride * per_block))
    ~pattern

let template_spec ~fanouts ~chunk ~align ~num_blocks =
  if Array.length fanouts = 0 then invalid_arg "Internode.template_spec: no fanouts";
  if chunk < 1 then invalid_arg "Internode.template_spec: chunk < 1";
  let threads = Array.fold_left ( * ) 1 fanouts in
  (* minimal capacities: S_1 = l * chunk, each higher layer exactly one
     repetition of its children *)
  let layers = Array.make (Array.length fanouts) { Chunk_pattern.capacity = 0; fanout = 1 } in
  let prev = ref (chunk * fanouts.(0)) in
  layers.(0) <- { Chunk_pattern.capacity = !prev; fanout = fanouts.(0) };
  for i = 1 to Array.length fanouts - 1 do
    prev := !prev * fanouts.(i);
    layers.(i) <- { Chunk_pattern.capacity = !prev; fanout = fanouts.(i) }
  done;
  make_spec ~threads ~num_blocks ~layers ~align

let scope_to_string = function
  | Io_only -> "io-only"
  | Storage_only -> "storage-only"
  | Both -> "both"
