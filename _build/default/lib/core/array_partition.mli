(** Step I: array partitioning by unimodular data transformation
    (paper Section 4.1).

    For each array we seek a primitive row vector [d] (the [v]-th row of the
    transformation [D]) such that for the weighted-majority constraint
    groups [h_A . D . Q . E_u = 0] (Eq. 3/4) — equivalently
    [d . Q . E_u = 0]: every column of [Q] except the parallel loop's is
    annihilated by [d].  [d] is found with integer Gaussian elimination and
    completed to a unimodular [D] by extended-gcd column operations.

    The partition dimension is fixed at [v = 0]: the transformed array is
    cut along its first dimension, so thread slabs are outermost and
    contiguous under row-major linearization. *)

open Flo_linalg
open Flo_poly

type result = {
  d_row : Ivec.t;  (** the solved primitive row vector *)
  d : Imat.t;  (** unimodular completion, [d_row] at row 0 *)
  v : int;  (** always 0 *)
  satisfied : Weights.group list;  (** constraint groups [d] annihilates *)
  unsatisfied : Weights.group list;
  coverage : float;  (** weight fraction satisfied, in [0, 1] *)
  stride : int;  (** [|d . Q_dom . e_u|]: distance along [v] between images
                     of consecutive parallel iterations (0 = degenerate) *)
  origin : int;
      (** [stride * lo_u + d . q] for the dominant reference: the
          (untransformed-coordinate) anchor of the image along [v] *)
  u_extent : int;  (** trip count of the dominant nest's parallel loop *)
}

val constraint_columns : Weights.group -> Imat.t
(** [Q . E_u]: the columns of the group's access matrix excluding the
    parallel dimension's. *)

val solve : ?weighted:bool -> Weights.group list -> result option
(** Greedy weighted solve: accept constraint groups in descending weight
    order while the accumulated homogeneous system still has a nonzero
    solution.  Returns [None] when even the heaviest group alone is
    unsolvable (its [Q . E_u] has full row rank), i.e. the array cannot be
    partitioned — the pass leaves its layout canonical.

    [weighted:false] (ablation A1) processes groups in arbitrary-but-fixed
    declaration order instead of by weight. *)

val solve_refs : (Loop_nest.t * Access.t) list -> result option
(** Convenience: group with {!Weights.group_refs}, then {!solve}. *)
