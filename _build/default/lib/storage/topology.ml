type t = {
  compute_nodes : int;
  threads_per_compute : int;
  io_nodes : int;
  storage_nodes : int;
  block_elems : int;
  io_cache_blocks : int;
  storage_cache_blocks : int;
}

let make ~compute_nodes ?(threads_per_compute = 1) ~io_nodes ~storage_nodes ~block_elems
    ~io_cache_blocks ~storage_cache_blocks () =
  let pos name v = if v < 1 then invalid_arg ("Topology.make: " ^ name ^ " < 1") in
  pos "compute_nodes" compute_nodes;
  pos "threads_per_compute" threads_per_compute;
  pos "io_nodes" io_nodes;
  pos "storage_nodes" storage_nodes;
  pos "block_elems" block_elems;
  pos "io_cache_blocks" io_cache_blocks;
  pos "storage_cache_blocks" storage_cache_blocks;
  if compute_nodes mod io_nodes <> 0 then
    invalid_arg "Topology.make: compute_nodes not a multiple of io_nodes";
  if io_nodes mod storage_nodes <> 0 then
    invalid_arg "Topology.make: io_nodes not a multiple of storage_nodes";
  {
    compute_nodes;
    threads_per_compute;
    io_nodes;
    storage_nodes;
    block_elems;
    io_cache_blocks;
    storage_cache_blocks;
  }

let default =
  make ~compute_nodes:64 ~io_nodes:16 ~storage_nodes:4 ~block_elems:64
    ~io_cache_blocks:256 ~storage_cache_blocks:512 ()

let threads t = t.compute_nodes * t.threads_per_compute
let compute_per_io t = t.compute_nodes / t.io_nodes
let io_per_storage t = t.io_nodes / t.storage_nodes
let threads_per_io t = compute_per_io t * t.threads_per_compute

let io_of_compute t c =
  if c < 0 || c >= t.compute_nodes then invalid_arg "Topology.io_of_compute";
  c / compute_per_io t

let nominal_storage_of_io t io =
  if io < 0 || io >= t.io_nodes then invalid_arg "Topology.nominal_storage_of_io";
  io / io_per_storage t

let pp ppf t =
  Format.fprintf ppf
    "(%d compute x %d thr, %d io [%d blk cache], %d storage [%d blk cache], block %d elems)"
    t.compute_nodes t.threads_per_compute t.io_nodes t.io_cache_blocks t.storage_nodes
    t.storage_cache_blocks t.block_elems
