(** Mutable doubly-linked lists with external node handles.

    Backbone of the recency structures in {!Lru} and {!Mq}: all queue
    operations are O(1) given the node handle. *)

type 'a t
type 'a node

val create : unit -> 'a t
val value : 'a node -> 'a
val is_empty : 'a t -> bool
val length : 'a t -> int

val push_front : 'a t -> 'a -> 'a node
val push_back : 'a t -> 'a -> 'a node

val remove : 'a t -> 'a node -> unit
(** @raise Invalid_argument if the node is not currently in [t]. *)

val move_front : 'a t -> 'a node -> unit
val peek_back : 'a t -> 'a node option
val pop_back : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** Front (most recent) to back. *)

val clear : 'a t -> unit
