(** PVFS-style striping: file blocks are distributed round-robin over the
    storage nodes; stripe unit = one data block (paper, Table 1: stripe size
    equals the cache block size).

    Each file occupies a fixed region ([file_stride] blocks, default 8192)
    of every disk's address space so on-disk locality within a file is
    preserved and cross-file seek distances stay physical. *)

val storage_node_of : storage_nodes:int -> Block.t -> int
(** Round-robin on the block index. *)

val lba_of : storage_nodes:int -> file_stride:int -> Block.t -> int
(** Logical block address on its storage node's disk.
    @raise Invalid_argument if the per-node file slot overflows
    [file_stride]. *)

val locate : storage_nodes:int -> file_stride:int -> Block.t -> int * int
(** [(storage_node, lba)]. *)

val default_file_stride : int
