(** Data blocks: the unit of storage-cache management and striping.

    A block is identified by the file it belongs to (one file per
    disk-resident array) and its index within that file's linear block
    space.  Block size is a topology parameter; this module is agnostic. *)

type t = { file : int; index : int }

val make : file:int -> index:int -> t
(** @raise Invalid_argument on negative file or index. *)

val file : t -> int
val index : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

val of_offset : block_elems:int -> file:int -> int -> t
(** Block containing the element at a file offset (in elements). *)

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
