(** CLOCK (second-chance) replacement.

    Approximates LRU with a circular scan and per-block reference bits;
    included because CLOCK-family policies are the common deployed
    alternative the paper cites ([20] CLOCK-Pro). *)

val create : Policy.factory
