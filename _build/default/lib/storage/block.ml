type t = { file : int; index : int }

let make ~file ~index =
  if file < 0 || index < 0 then invalid_arg "Block.make: negative component";
  { file; index }

let file t = t.file
let index t = t.index

let compare a b =
  let c = compare a.file b.file in
  if c <> 0 then c else compare a.index b.index

let equal a b = a.file = b.file && a.index = b.index

let hash t = (t.file * 0x3fffffff) lxor t.index

let pp ppf t = Format.fprintf ppf "%d:%d" t.file t.index

let of_offset ~block_elems ~file off =
  if off < 0 then invalid_arg "Block.of_offset: negative offset";
  make ~file ~index:(off / block_elems)

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Tbl = Hashtbl.Make (Key)
module Set = Set.Make (Key)
