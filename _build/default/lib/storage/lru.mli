(** Least-recently-used replacement — the paper's default policy.

    O(1) touch/insert/remove via a hash table over an intrusive
    doubly-linked recency list.  [insert] places at the MRU end,
    [insert_cold] at the LRU end. *)

val create : Policy.factory
