(** Multi-Queue replacement (Zhou, Philbin & Li; the paper's reference [50]).

    Designed for second-level storage caches: [m] LRU queues indexed by
    log2(access frequency), per-block lifetimes that demote idle blocks one
    queue down, and a history buffer that remembers the frequency of evicted
    blocks so a re-fetched block rejoins its old queue.  Included as an extra
    policy to show the layout pass is policy-orthogonal. *)

val create : Policy.factory
(** 8 queues, lifetime [4 * capacity] accesses, history of [4 * capacity]
    entries. *)

val create_custom : queues:int -> lifetime:int option -> Policy.factory
(** [lifetime = None] means [4 * capacity].
    @raise Invalid_argument if [queues < 2]. *)
