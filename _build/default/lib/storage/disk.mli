(** Deterministic single-disk service-time model.

    Seek time follows the usual [base + factor * sqrt(distance)] curve,
    rotational delay is the average half-rotation at the configured RPM, and
    transfer time is per block.  The model is deterministic (no randomness)
    so experiments are exactly reproducible. *)

type params = {
  seek_base_us : float;  (** fixed cost of any non-zero seek *)
  seek_factor_us : float;  (** multiplies [sqrt (|lba - head|)] *)
  rpm : int;  (** rotational speed; 10_000 in the paper's Table 1 *)
  transfer_us : float;  (** per-block transfer time *)
}

val default_params : params
(** 10k RPM; microsecond-scale constants sized for the scaled-down blocks. *)

type t

val create : ?params:params -> unit -> t
val params : t -> params
val head : t -> int

val service : t -> lba:int -> float
(** Service time in microseconds for reading the block at [lba]; moves the
    head there.  Sequential access ([lba = head + 1]) pays only transfer. *)

val reads : t -> int
val busy_us : t -> float
val reset : t -> unit
