(** KARMA-style hint-driven exclusive multilevel caching (Yadgar, Factor &
    Schuster, FAST'07 — the paper's reference [47]).

    Application hints (here: the compiler's per-thread, per-array block-range
    summaries) are overlaid into disjoint {e classes}; classes are ranked by
    marginal gain (access density) and greedily pinned to cache levels, top
    level first.  Each class is cached at exactly one level — caches at other
    levels simply refuse to store its blocks — which yields exclusive caching
    without demotions.

    The quality of the resulting partition depends directly on how localized
    each thread's block ranges are, which is how the layout optimization
    interacts with KARMA in Fig. 7(h). *)

type hint = {
  file : int;
  lo_block : int;
  hi_block : int;  (** inclusive *)
  accesses : float;  (** estimated accesses to the range *)
}

type cls = {
  file : int;
  lo : int;
  hi : int;  (** inclusive block range; classes of one file are disjoint *)
  density : float;  (** estimated accesses per block *)
}

val size : cls -> int

val classes : hint list -> cls list
(** Overlay segmentation: boundaries at every hint endpoint, densities
    summed over overlapping hints.  Zero-density gaps are dropped. *)

type plan

val plan :
  l1_hints:hint list array ->
  l1_capacity:int ->
  l2_capacity_total:int ->
  plan
(** [l1_hints.(i)] are the hints of the threads served by I/O node [i]; the
    global class list is their union.  Each I/O node greedily pins the
    densest classes its threads touch into its own [l1_capacity]; classes
    pinned by no I/O node compete for the (pooled) level-2 capacity. *)

val l1_assigned : plan -> io:int -> cls list
val l2_assigned : plan -> cls list

val l1_cache : plan -> io:int -> Policy.t
(** Partitioned cache for I/O node [io]: one LRU per pinned class; blocks of
    unpinned classes are never stored ([insert] is a no-op for them). *)

val l2_cache : plan -> storage_nodes:int -> Policy.t
(** Partitioned cache for one storage node; per-class quota is the class
    size divided by [storage_nodes] (striping spreads each class evenly). *)
