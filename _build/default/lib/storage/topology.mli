(** Static description of the three-tier storage architecture (Fig. 1):
    compute nodes running threads, I/O nodes with storage caches, storage
    nodes with storage caches and disks.

    Node counts must nest evenly: [compute_nodes mod io_nodes = 0] and
    [io_nodes mod storage_nodes = 0], matching the pset-style grouping of
    BG/P and the paper's symmetric-hierarchy assumption (Section 4.2). *)

type t = {
  compute_nodes : int;
  threads_per_compute : int;
  io_nodes : int;
  storage_nodes : int;
  block_elems : int;  (** data block = stripe unit, in array elements *)
  io_cache_blocks : int;  (** cache capacity per I/O node, in blocks *)
  storage_cache_blocks : int;  (** cache capacity per storage node, in blocks *)
}

val make :
  compute_nodes:int ->
  ?threads_per_compute:int ->
  io_nodes:int ->
  storage_nodes:int ->
  block_elems:int ->
  io_cache_blocks:int ->
  storage_cache_blocks:int ->
  unit ->
  t
(** @raise Invalid_argument on non-positive fields or uneven nesting. *)

val default : t
(** The scaled-down Table 1 system: 64 compute nodes (1 thread each), 16 I/O
    nodes, 4 storage nodes, 64-element blocks, 256-block I/O caches and
    512-block storage caches (the paper's 1:2 capacity ratio). *)

val threads : t -> int
val compute_per_io : t -> int
val io_per_storage : t -> int
val threads_per_io : t -> int

val io_of_compute : t -> int -> int
(** I/O node serving a compute node. *)

val nominal_storage_of_io : t -> int -> int
(** Storage node grouped under an I/O node in the nominal tree (used for
    layout-pattern construction; actual block routing is by striping). *)

val pp : Format.formatter -> t -> unit
