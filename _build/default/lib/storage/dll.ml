type 'a node = {
  v : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable owner : int; (* id of the list currently holding the node, -1 if none *)
}

type 'a t = {
  id : int;
  mutable front : 'a node option;
  mutable back : 'a node option;
  mutable len : int;
}

let next_id = ref 0

let create () =
  incr next_id;
  { id = !next_id; front = None; back = None; len = 0 }

let value n = n.v
let is_empty t = t.len = 0
let length t = t.len

let push_front t v =
  let n = { v; prev = None; next = t.front; owner = t.id } in
  (match t.front with Some h -> h.prev <- Some n | None -> t.back <- Some n);
  t.front <- Some n;
  t.len <- t.len + 1;
  n

let push_back t v =
  let n = { v; prev = t.back; next = None; owner = t.id } in
  (match t.back with Some b -> b.next <- Some n | None -> t.front <- Some n);
  t.back <- Some n;
  t.len <- t.len + 1;
  n

let remove t n =
  if n.owner <> t.id then invalid_arg "Dll.remove: node not in this list";
  (match n.prev with Some p -> p.next <- n.next | None -> t.front <- n.next);
  (match n.next with Some q -> q.prev <- n.prev | None -> t.back <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.owner <- -1;
  t.len <- t.len - 1

let move_front t n =
  remove t n;
  n.next <- t.front;
  n.owner <- t.id;
  (match t.front with Some h -> h.prev <- Some n | None -> t.back <- Some n);
  t.front <- Some n;
  t.len <- t.len + 1

let peek_back t = t.back

let pop_back t =
  match t.back with
  | None -> None
  | Some n ->
    remove t n;
    Some n.v

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
      f n.v;
      go n.next
  in
  go t.front

let clear t =
  (* detach nodes so stale handles are rejected by [remove] *)
  let rec go = function
    | None -> ()
    | Some n ->
      let next = n.next in
      n.prev <- None;
      n.next <- None;
      n.owner <- -1;
      go next
  in
  go t.front;
  t.front <- None;
  t.back <- None;
  t.len <- 0
