type protocol = Inclusive | Demote_exclusive

type costs = { l1_hit_us : float; l2_hit_us : float; demote_us : float }

let default_costs = { l1_hit_us = 25.; l2_hit_us = 140.; demote_us = 8. }

type t = {
  topo : Topology.t;
  protocol : protocol;
  mapping : int array; (* thread -> compute node *)
  l1 : Policy.t array;
  l2 : Policy.t array;
  l1_stats : Stats.t array;
  l2_stats : Stats.t array;
  disks : Disk.t array;
  costs : costs;
  file_stride : int;
  readahead : int;
  mutable prefetches : int;
  clocks : float array;
}

let create ?(protocol = Inclusive) ?mapping ?l1 ?l2 ?l1_factory ?l2_factory
    ?(costs = default_costs) ?disk_params ?(file_stride = Striping.default_file_stride)
    ?(readahead = 0) topo =
  if readahead < 0 then invalid_arg "Hierarchy.create: negative readahead";
  let threads = Topology.threads topo in
  let mapping =
    match mapping with
    | None -> Array.init threads (fun t -> t mod topo.Topology.compute_nodes)
    | Some m ->
      if Array.length m <> threads then invalid_arg "Hierarchy.create: mapping length";
      Array.iter
        (fun c ->
          if c < 0 || c >= topo.Topology.compute_nodes then
            invalid_arg "Hierarchy.create: mapping target out of range")
        m;
      Array.copy m
  in
  let l1_factory = Option.value l1_factory ~default:Lru.create in
  let l2_factory = Option.value l2_factory ~default:Lru.create in
  let l1 =
    match l1 with
    | Some caches ->
      if Array.length caches <> topo.Topology.io_nodes then
        invalid_arg "Hierarchy.create: l1 cache count";
      caches
    | None ->
      Array.init topo.Topology.io_nodes (fun _ ->
          l1_factory ~capacity:topo.Topology.io_cache_blocks)
  in
  let l2 =
    match l2 with
    | Some caches ->
      if Array.length caches <> topo.Topology.storage_nodes then
        invalid_arg "Hierarchy.create: l2 cache count";
      caches
    | None ->
      Array.init topo.Topology.storage_nodes (fun _ ->
          l2_factory ~capacity:topo.Topology.storage_cache_blocks)
  in
  {
    topo;
    protocol;
    mapping;
    l1;
    l2;
    l1_stats = Array.init topo.Topology.io_nodes (fun _ -> Stats.create ());
    l2_stats = Array.init topo.Topology.storage_nodes (fun _ -> Stats.create ());
    disks =
      Array.init topo.Topology.storage_nodes (fun _ -> Disk.create ?params:disk_params ());
    costs;
    file_stride;
    readahead;
    prefetches = 0;
    clocks = Array.make threads 0.;
  }

let topology t = t.topo

let io_node_of_thread t thread =
  if thread < 0 || thread >= Array.length t.clocks then
    invalid_arg "Hierarchy: thread out of range";
  Topology.io_of_compute t.topo
    (t.mapping.(thread) mod t.topo.Topology.compute_nodes)

(* Install a block in an L1 cache; under DEMOTE an L1 victim moves to the
   MRU end of its storage node's cache. *)
let install_l1 t ~io ~thread b =
  match t.l1.(io).Policy.insert b with
  | None -> ()
  | Some victim -> (
    Stats.record_eviction t.l1_stats.(io);
    match t.protocol with
    | Inclusive -> ()
    | Demote_exclusive ->
      let sn = Striping.storage_node_of ~storage_nodes:t.topo.Topology.storage_nodes victim in
      Stats.record_demotion t.l2_stats.(sn);
      t.clocks.(thread) <- t.clocks.(thread) +. t.costs.demote_us;
      (match t.l2.(sn).Policy.insert victim with
      | Some _ -> Stats.record_eviction t.l2_stats.(sn)
      | None -> ()))

let access t ~thread b =
  let io = io_node_of_thread t thread in
  let cost = ref t.costs.l1_hit_us in
  if t.l1.(io).Policy.touch b then Stats.record_hit t.l1_stats.(io)
  else begin
    Stats.record_miss t.l1_stats.(io);
    let sn = Striping.storage_node_of ~storage_nodes:t.topo.Topology.storage_nodes b in
    cost := !cost +. t.costs.l2_hit_us;
    if t.l2.(sn).Policy.touch b then begin
      Stats.record_hit t.l2_stats.(sn);
      (match t.protocol with
      | Inclusive -> ()
      | Demote_exclusive ->
        (* the client caches it now: deprioritize rather than keep hot *)
        ignore (t.l2.(sn).Policy.remove b);
        ignore (t.l2.(sn).Policy.insert_cold b))
    end
    else begin
      Stats.record_miss t.l2_stats.(sn);
      let lba =
        Striping.lba_of ~storage_nodes:t.topo.Topology.storage_nodes
          ~file_stride:t.file_stride b
      in
      cost := !cost +. Disk.service t.disks.(sn) ~lba;
      (* sequential readahead: the storage node speculatively pulls the next
         blocks of the same file into its cache.  The disk transfer overlaps
         with the demand read, so only a fraction of the transfer is charged
         to the requesting thread. *)
      if t.readahead > 0 then begin
        let params = Disk.params t.disks.(sn) in
        for k = 1 to t.readahead do
          (* next stripe unit on this storage node *)
          let next =
            Block.make ~file:(Block.file b)
              ~index:(Block.index b + (k * t.topo.Topology.storage_nodes))
          in
          if Block.index next / t.topo.Topology.storage_nodes < t.file_stride
             && not (t.l2.(sn).Policy.contains next)
          then begin
            t.prefetches <- t.prefetches + 1;
            cost := !cost +. (0.2 *. params.Disk.transfer_us);
            match t.l2.(sn).Policy.insert_cold next with
            | Some _ -> Stats.record_eviction t.l2_stats.(sn)
            | None -> ()
          end
        done
      end;
      match t.protocol with
      | Inclusive ->
        (match t.l2.(sn).Policy.insert b with
        | Some _ -> Stats.record_eviction t.l2_stats.(sn)
        | None -> ())
      | Demote_exclusive ->
        (* DEMOTE-LRU keeps plain LRU for read blocks too, but a block the
           client is about to cache enters at the cold end *)
        (match t.l2.(sn).Policy.insert_cold b with
        | Some _ -> Stats.record_eviction t.l2_stats.(sn)
        | None -> ())
    end;
    install_l1 t ~io ~thread b
  end;
  t.clocks.(thread) <- t.clocks.(thread) +. !cost

let touch_element t ~thread ~file ~offset =
  access t ~thread
    (Block.of_offset ~block_elems:t.topo.Topology.block_elems ~file offset)

let thread_clock_us t thread = t.clocks.(thread)

let elapsed_us t = Array.fold_left max 0. t.clocks

let add_cpu_us t ~thread us = t.clocks.(thread) <- t.clocks.(thread) +. us

let l1_stats t = Stats.merge (Array.to_list t.l1_stats)
let l2_stats t = Stats.merge (Array.to_list t.l2_stats)
let l1_stats_of t i = t.l1_stats.(i)
let l2_stats_of t i = t.l2_stats.(i)

let disk_reads t = Array.fold_left (fun acc d -> acc + Disk.reads d) 0 t.disks

let prefetches t = t.prefetches

let reset t =
  Array.iter (fun (c : Policy.t) -> c.Policy.clear ()) t.l1;
  Array.iter (fun (c : Policy.t) -> c.Policy.clear ()) t.l2;
  Array.iter Stats.reset t.l1_stats;
  Array.iter Stats.reset t.l2_stats;
  Array.iter Disk.reset t.disks;
  t.prefetches <- 0;
  Array.fill t.clocks 0 (Array.length t.clocks) 0.
