lib/storage/dll.ml:
