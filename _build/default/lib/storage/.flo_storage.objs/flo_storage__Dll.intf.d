lib/storage/dll.mli:
