lib/storage/lru.mli: Policy
