lib/storage/karma.mli: Policy
