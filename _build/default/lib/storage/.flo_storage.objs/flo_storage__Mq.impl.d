lib/storage/mq.ml: Array Block Dll Policy Queue
