lib/storage/mq.mli: Policy
