lib/storage/block.ml: Format Hashtbl Set
