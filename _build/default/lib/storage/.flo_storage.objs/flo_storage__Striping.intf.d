lib/storage/striping.mli: Block
