lib/storage/karma.ml: Array Block Hashtbl Int List Lru Map Option Policy
