lib/storage/fifo.mli: Policy
