lib/storage/fifo.ml: Block Policy Queue
