lib/storage/clock.ml: Array Block Policy
