lib/storage/topology.mli: Format
