lib/storage/disk.mli:
