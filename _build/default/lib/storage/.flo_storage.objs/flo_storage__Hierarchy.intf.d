lib/storage/hierarchy.mli: Block Disk Policy Stats Topology
