lib/storage/topology.ml: Format
