lib/storage/lru.ml: Block Dll Policy
