lib/storage/hierarchy.ml: Array Block Disk Lru Option Policy Stats Striping Topology
