lib/storage/clock.mli: Policy
