lib/storage/policy.ml: Block
