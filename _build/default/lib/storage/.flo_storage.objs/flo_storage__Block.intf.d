lib/storage/block.mli: Format Hashtbl Set
