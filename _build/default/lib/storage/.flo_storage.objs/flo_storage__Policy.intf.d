lib/storage/policy.mli: Block
