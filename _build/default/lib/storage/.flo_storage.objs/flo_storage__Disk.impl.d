lib/storage/disk.ml:
