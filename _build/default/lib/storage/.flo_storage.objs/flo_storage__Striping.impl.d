lib/storage/striping.ml: Block
