type state = {
  capacity : int;
  tbl : Block.t Dll.node Block.Tbl.t;
  order : Block.t Dll.t; (* front = MRU *)
}

let touch s b =
  match Block.Tbl.find_opt s.tbl b with
  | None -> false
  | Some n ->
    Dll.move_front s.order n;
    true

let evict s =
  match Dll.pop_back s.order with
  | None -> None
  | Some victim ->
    Block.Tbl.remove s.tbl victim;
    Some victim

let add ~cold s b =
  match Block.Tbl.find_opt s.tbl b with
  | Some n ->
    Dll.move_front s.order n;
    None
  | None ->
    let victim = if Dll.length s.order >= s.capacity then evict s else None in
    let n = if cold then Dll.push_back s.order b else Dll.push_front s.order b in
    Block.Tbl.add s.tbl b n;
    victim

let remove s b =
  match Block.Tbl.find_opt s.tbl b with
  | None -> false
  | Some n ->
    Dll.remove s.order n;
    Block.Tbl.remove s.tbl b;
    true

let create ~capacity : Policy.t =
  Policy.check_capacity capacity;
  let s = { capacity; tbl = Block.Tbl.create (2 * capacity); order = Dll.create () } in
  {
    Policy.name = "lru";
    capacity;
    touch = touch s;
    insert = add ~cold:false s;
    insert_cold = add ~cold:true s;
    remove = remove s;
    contains = (fun b -> Block.Tbl.mem s.tbl b);
    size = (fun () -> Dll.length s.order);
    clear =
      (fun () ->
        Block.Tbl.clear s.tbl;
        Dll.clear s.order);
    iter = (fun f -> Dll.iter f s.order);
  }
