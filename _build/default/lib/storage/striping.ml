let default_file_stride = 8192

let storage_node_of ~storage_nodes b =
  if storage_nodes < 1 then invalid_arg "Striping: storage_nodes < 1";
  Block.index b mod storage_nodes

let lba_of ~storage_nodes ~file_stride b =
  let local = Block.index b / storage_nodes in
  if local >= file_stride then invalid_arg "Striping.lba_of: file larger than file_stride";
  (Block.file b * file_stride) + local

let locate ~storage_nodes ~file_stride b =
  (storage_node_of ~storage_nodes b, lba_of ~storage_nodes ~file_stride b)
