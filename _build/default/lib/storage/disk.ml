type params = {
  seek_base_us : float;
  seek_factor_us : float;
  rpm : int;
  transfer_us : float;
}

let default_params =
  { seek_base_us = 300.; seek_factor_us = 5.; rpm = 10_000; transfer_us = 1_200. }

type t = {
  params : params;
  mutable head : int;
  mutable reads : int;
  mutable busy_us : float;
}

let create ?(params = default_params) () = { params; head = 0; reads = 0; busy_us = 0. }

let params t = t.params
let head t = t.head
let reads t = t.reads
let busy_us t = t.busy_us

let rotation_us p = 60. *. 1e6 /. float_of_int p.rpm

let service t ~lba =
  if lba < 0 then invalid_arg "Disk.service: negative lba";
  let p = t.params in
  let dist = abs (lba - t.head) in
  let cost =
    if dist = 1 || dist = 0 then
      (* sequential (or same-track re-read): head is already positioned *)
      p.transfer_us
    else
      p.seek_base_us
      +. (p.seek_factor_us *. sqrt (float_of_int dist))
      +. (rotation_us p /. 2.)
      +. p.transfer_us
  in
  t.head <- lba;
  t.reads <- t.reads + 1;
  t.busy_us <- t.busy_us +. cost;
  cost

let reset t =
  t.head <- 0;
  t.reads <- 0;
  t.busy_us <- 0.
