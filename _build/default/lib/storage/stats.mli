(** Per-cache access counters. *)

type t = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable demotions : int;
}

val create : unit -> t
val record_hit : t -> unit
val record_miss : t -> unit
val record_eviction : t -> unit
val record_demotion : t -> unit

val miss_rate : t -> float
(** [misses / accesses]; 0 when no accesses. *)

val hit_rate : t -> float
val merge : t list -> t
(** Fresh aggregate of the given counters. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
