(** First-in-first-out replacement (diagnostic baseline).

    Hits do not refresh standing; eviction order is insertion order. *)

val create : Policy.factory
