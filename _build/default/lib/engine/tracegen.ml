open Flo_poly
open Flo_storage
open Flo_core

let plan_of ~threads ~blocks_per_thread ?assign ?cluster nest =
  let u = nest.Loop_nest.parallel_dim in
  let extent = Iter_space.extent nest.Loop_nest.space u in
  let num_blocks = min (threads * blocks_per_thread) extent in
  match assign with
  | None -> Parallelize.custom ~threads ~num_blocks ~assign:(fun b -> b mod threads) nest
  | Some strategy ->
    let cluster =
      match cluster with
      | Some c -> c
      | None -> invalid_arg "Tracegen: assign requires cluster"
    in
    Parallelize.custom ~threads ~num_blocks
      ~assign:(fun b -> Compmap.assign strategy ~cluster ~threads ~num_blocks b)
      nest

let nest_streams ~layouts ~block_elems ~threads ~blocks_per_thread ?assign ?cluster
    ?(sample = 1) nest =
  if sample < 1 then invalid_arg "Tracegen.nest_streams: sample < 1";
  let plan = plan_of ~threads ~blocks_per_thread ?assign ?cluster nest in
  let refs =
    List.map (fun r -> (Access.array_id r, layouts (Access.array_id r), r)) nest.Loop_nest.refs
  in
  let totals = Parallelize.iterations_per_thread plan in
  Array.init threads (fun thread ->
      let acc = ref [] in
      let count = ref 0 in
      (* per-file last-block memory: the I/O runtime buffers one block per
         open file, so a request is only issued when a reference leaves the
         block it last read from that file *)
      let last_index = Hashtbl.create 8 in
      let counter = ref 0 in
      (* profile mode keeps a prefix of each thread's iterations: a prefix
         preserves the contiguity structure a strided subsample would break,
         so sampled evaluations transfer to full runs *)
      let limit = (totals.(thread) + sample - 1) / sample in
      Parallelize.iter_thread plan ~thread (fun iter ->
          let keep = !counter < limit in
          incr counter;
          if keep then
            List.iter
              (fun (file, layout, r) ->
                let offset = File_layout.offset_of layout (Access.eval r iter) in
                let index = offset / block_elems in
                if Hashtbl.find_opt last_index file <> Some index then begin
                  Hashtbl.replace last_index file index;
                  acc := Block.make ~file ~index :: !acc;
                  incr count
                end)
              refs);
      let arr = Array.make !count (Block.make ~file:0 ~index:0) in
      let rec fill i = function
        | [] -> ()
        | b :: rest ->
          arr.(i) <- b;
          fill (i - 1) rest
      in
      fill (!count - 1) !acc;
      arr)

let iterations_per_thread ~threads ~blocks_per_thread ?(sample = 1) nest =
  let plan = plan_of ~threads ~blocks_per_thread nest in
  let counts = Parallelize.iterations_per_thread plan in
  Array.map (fun c -> (c + sample - 1) / sample) counts
