(** Plain-text table rendering for the benchmark harness. *)

val table : header:string list -> string list list -> string
(** Left-aligned first column, right-aligned rest, column-fitted. *)

val print_table : title:string -> header:string list -> string list list -> unit
(** Render to stdout with a title line and a trailing blank line. *)

val f1 : float -> string
(** One decimal place. *)

val f2 : float -> string
val f3 : float -> string
val pct : float -> string
(** Ratio as a percentage, one decimal: [0.237 -> "23.7"]. *)

val ms : float -> string
(** Microseconds rendered as milliseconds, one decimal. *)

val mean : float list -> float
val geomean : float list -> float
