(** Experiment configuration: the scaled-down Table 1 system plus execution
    model constants, and the bridge from a concrete {!Flo_storage.Topology}
    to the storage-agnostic pattern spec of the layout pass. *)

open Flo_storage
open Flo_core
open Flo_poly

type t = {
  topology : Topology.t;
  blocks_per_thread : int;  (** iteration blocks per thread (default 1) *)
  quantum : int;  (** block requests per thread per interleave round *)
  costs : Hierarchy.costs;
  disk_params : Disk.params;
  client_buffer_blocks : int;
      (** MPI-IO data-sieving buffer per thread (blocks); not a storage
          cache — the paper's compute nodes have none — but the I/O
          runtime's request coalescing window *)
  client_hit_us : float;  (** cost of serving a request from that buffer *)
}

val default : t
(** The defaults of Table 1, scaled (64/16/4 nodes, 64-element blocks,
    256/512-block caches). *)

val with_topology : t -> Topology.t -> t

val spec_for : t -> Program.t -> Internode.spec
(** Pattern spec for one program: layer capacities are each cache's share
    per disk-resident array (in elements), fanouts follow the nominal node
    tree, and a top pseudo-layer spans the storage nodes so the pattern
    interleaves all threads. *)

val threads : t -> int
