(** Per-thread block-request stream generation.

    A thread's element accesses are translated through the chosen file
    layouts into block requests; {e consecutive requests to the same block
    collapse into one} — exactly the MPI-IO behaviour the paper relies on:
    a thread reading elements stored contiguously issues one block-sized
    request, a thread whose elements are scattered issues one request per
    element.  This is where a layout's "block footprint" becomes request
    traffic. *)

open Flo_poly
open Flo_storage
open Flo_core

val nest_streams :
  layouts:(int -> File_layout.t) ->
  block_elems:int ->
  threads:int ->
  blocks_per_thread:int ->
  ?assign:Compmap.strategy ->
  ?cluster:int ->
  ?sample:int ->
  Loop_nest.t ->
  Block.t array array
(** [nest_streams ... nest] is one collapsed block-request stream per
    thread for a single execution of [nest] (weights are replayed by the
    runner).  [assign] substitutes the computation-mapping baseline's
    block-to-thread map ([cluster] = threads per layer-1 cache, required
    with [assign]).  [sample > 1] keeps the first [1/sample] of each
    thread's iterations (a prefix preserves contiguity) — profile mode.  The per-nest block count is capped by the nest's
    parallel extent. *)

val iterations_per_thread :
  threads:int -> blocks_per_thread:int -> ?sample:int -> Loop_nest.t -> int array
(** Element-iteration counts matching [nest_streams]'s enumeration (used to
    charge CPU time). *)
