lib/engine/report.mli:
