lib/engine/config.ml: Chunk_pattern Disk Flo_core Flo_poly Flo_storage Hierarchy Internode List Program Topology
