lib/engine/experiment.ml: App Array Compmap Config File_layout Flo_core Flo_poly Flo_storage Flo_workloads Fun Internode List Optimizer Reindex Run Topology
