lib/engine/run.ml: App Array Block Config Flo_poly Flo_storage Flo_workloads Format Hashtbl Hierarchy Karma List Lru Option Policy Stats Topology Tracegen
