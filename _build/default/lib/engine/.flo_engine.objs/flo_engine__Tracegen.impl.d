lib/engine/tracegen.ml: Access Array Block Compmap File_layout Flo_core Flo_poly Flo_storage Hashtbl Iter_space List Loop_nest Parallelize
