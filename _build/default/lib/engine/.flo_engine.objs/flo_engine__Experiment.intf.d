lib/engine/experiment.mli: App Compmap Config File_layout Flo_core Flo_workloads Internode Optimizer Reindex Run
