lib/engine/run.mli: App Block Compmap Config File_layout Flo_core Flo_storage Flo_workloads Format Karma Policy Stats
