lib/engine/report.ml: List Printf String
