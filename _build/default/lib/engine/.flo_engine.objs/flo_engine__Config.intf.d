lib/engine/config.mli: Disk Flo_core Flo_poly Flo_storage Hierarchy Internode Program Topology
