lib/engine/tracegen.mli: Block Compmap File_layout Flo_core Flo_poly Flo_storage Loop_nest
