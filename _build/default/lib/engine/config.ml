open Flo_storage
open Flo_core
open Flo_poly

type t = {
  topology : Topology.t;
  blocks_per_thread : int;
  quantum : int;
  costs : Hierarchy.costs;
  disk_params : Disk.params;
  client_buffer_blocks : int;
  client_hit_us : float;
}

let default =
  {
    topology = Topology.default;
    blocks_per_thread = 1;
    quantum = 4;
    costs = Hierarchy.default_costs;
    disk_params = Disk.default_params;
    client_buffer_blocks = 16;
    client_hit_us = 2.;
  }

let with_topology t topology = { t with topology }

let threads t = Topology.threads t.topology

let spec_for t program =
  let topo = t.topology in
  let num_arrays = max 1 (List.length program.Program.arrays) in
  let elems_of blocks = max 1 (blocks * topo.Topology.block_elems / num_arrays) in
  let s1 = elems_of topo.Topology.io_cache_blocks in
  let s2 = elems_of topo.Topology.storage_cache_blocks in
  let layers =
    [|
      { Chunk_pattern.capacity = s1; fanout = Topology.threads_per_io topo };
      { Chunk_pattern.capacity = s2; fanout = Topology.io_per_storage topo };
      (* top pseudo-layer: spans the storage nodes with minimal repetition *)
      {
        Chunk_pattern.capacity = s2 * topo.Topology.storage_nodes;
        fanout = topo.Topology.storage_nodes;
      };
    |]
  in
  Internode.make_spec ~threads:(Topology.threads topo)
    ~num_blocks:(Topology.threads topo * t.blocks_per_thread)
    ~layers ~align:topo.Topology.block_elems
