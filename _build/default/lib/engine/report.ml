let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc r -> max acc (try String.length (List.nth r c) with _ -> 0))
      0 all
  in
  let widths = List.init cols width in
  let render_row r =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = try List.nth r c with _ -> "" in
           let pad = w - String.length cell in
           if c = 0 then cell ^ String.make pad ' ' else String.make pad ' ' ^ cell)
         widths)
  in
  let sep = String.make (List.fold_left ( + ) (2 * (cols - 1)) widths) '-' in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)

let print_table ~title ~header rows =
  print_endline ("== " ^ title ^ " ==");
  print_endline (table ~header rows);
  print_newline ()

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let pct v = Printf.sprintf "%.1f" (100. *. v)
let ms us = Printf.sprintf "%.1f" (us /. 1000.)

let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let geomean = function
  | [] -> 0.
  | l -> exp (List.fold_left (fun acc x -> acc +. log x) 0. l /. float_of_int (List.length l))
