open Flo_poly

(* ---- small construction DSL ---------------------------------------- *)

let arr ?opaque id name extents = Program.declare ?opaque ~id ~name (Data_space.make extents)

let sq n = Iter_space.make [| (0, n - 1); (0, n - 1) |]
let rect a b = Iter_space.make [| (0, a - 1); (0, b - 1) |]
let cube a b c = Iter_space.make [| (0, a - 1); (0, b - 1); (0, c - 1) |]

let nest ?(w = 1) name space refs = Loop_nest.make ~name ~weight:w ~parallel_dim:0 space refs

let row id = Access.ij ~array_id:id
let col id = Access.ji ~array_id:id
let diag id = Access.diag ~array_id:id

(* 3-D accesses over iterators (i, j, k) *)
let row3 id = Access.of_rows ~array_id:id [ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ] [ 0; 0; 0 ]
let jmaj id = Access.of_rows ~array_id:id [ [ 0; 1; 0 ]; [ 1; 0; 0 ]; [ 0; 0; 1 ] ] [ 0; 0; 0 ]
let kmaj id = Access.of_rows ~array_id:id [ [ 0; 0; 1 ]; [ 0; 1; 0 ]; [ 1; 0; 0 ] ] [ 0; 0; 0 ]
let stride2 id = Access.of_rows ~array_id:id [ [ 2; 0 ]; [ 0; 2 ] ] [ 0; 0 ]

let n2 = 256 (* default 2-D array edge *)
let n2s = 128 (* small 2-D edge *)
let n3 = 64 (* 3-D array edge *)

(* cubic 3-D spaces: transposed (j-/k-major) references stay in range and
   data slabs are fully packed under any axis permutation *)
let cube3 () = cube n3 n3 n3
let arr3 ?opaque id name = arr ?opaque id name [| n3; n3; n3 |]

let prog name arrays nests = Program.make ~name arrays nests

(* ---- group 1: no benefit ------------------------------------------- *)

let cc_ver_1 =
  App.make ~name:"cc-ver-1" ~cpu_us_per_iteration:77.0 ~group:App.No_benefit
    ~description:"protein structure prediction v1: row-wise passes with strong reuse"
    (prog "cc-ver-1"
       [ arr 0 "w" [| n2; n2 |]; arr 1 "x" [| n2; n2 |]; arr 2 "y" [| n2; n2 |];
         arr 3 "z" [| n2; n2 |] ]
       [
         nest ~w:2 "fold" (sq n2) [ row 0; row 1 ];
         nest ~w:2 "pair" (sq n2) [ row 1; row 2 ];
         nest ~w:2 "refine" (sq n2) [ row 2; row 3; row 0 ];
       ])

let s3asim =
  App.make ~name:"s3asim" ~cpu_us_per_iteration:112.0 ~group:App.No_benefit
    ~description:"sequence-similarity search: sequential database scans, small per-query state"
    (prog "s3asim"
       [ arr 0 "db0" [| n2; n2 |]; arr 1 "db1" [| n2; n2 |]; arr 2 "query" [| n2s; n2s |];
         arr 3 "score" [| n2s; n2s |]; arr 4 "hits" [| n2s; n2s |] ]
       [
         nest ~w:2 "scan" (sq n2) [ row 0; row 1 ];
         nest ~w:2 "score" (sq n2s) [ row 2; row 3 ];
         nest "reduce" (sq n2s) [ row 3; row 4 ];
       ])

let twer =
  (* 17 arrays, each referenced row-wise and column-wise with equal weight:
     the homogeneous systems conflict and coverage is stuck at ~50% *)
  let arrays =
    (* half the state arrays are also accessed through particle index lists
       the front-end cannot analyze *)
    List.init 17 (fun i -> arr ~opaque:(i mod 2 = 1) i (Printf.sprintf "t%02d" i) [| n2s; n2s |])
  in
  let quartet base = List.init 4 (fun k -> (base + k) mod 17) in
  let row_phase p = nest (Printf.sprintf "row-phase%d" p) (sq n2s) (List.map row (quartet (4 * p))) in
  let col_phase p = nest (Printf.sprintf "col-phase%d" p) (sq n2s) (List.map col (quartet (4 * p))) in
  App.make ~name:"twer" ~cpu_us_per_iteration:740.0 ~group:App.No_benefit
    ~description:"twister simulation kernel: 17 arrays with conflicting row/column phases"
    (prog "twer" arrays
       (List.concat_map (fun p -> [ row_phase p; col_phase p ]) [ 0; 1; 2; 3 ]))

(* ---- group 2: moderate benefit ------------------------------------- *)

let bt =
  App.make ~name:"bt" ~cpu_us_per_iteration:11000.0 ~group:App.Moderate
    ~description:"out-of-core NAS BT: directional solves, two of five arrays cache-hostile"
    (prog "bt"
       [ arr3 0 "u"; arr3 1 "rhs"; arr3 2 "lhsy"; arr3 3 "lhsz";
         arr3 4 "forcing" ]
       [
         nest "x-solve" (cube3 ()) [ row3 0; row3 1 ];
         nest "y-solve" (cube3 ()) [ jmaj 2; row3 1 ];
         nest "z-solve" (cube3 ()) [ kmaj 2; kmaj 3 ];
         nest "add" (cube3 ()) [ row3 0; row3 4 ];
       ])

let cc_ver_2 =
  App.make ~name:"cc-ver-2" ~cpu_us_per_iteration:31700.0 ~group:App.Moderate ~master_slave:true
    ~description:"protein structure prediction v2: master-slave with column-wise slave work"
    (prog "cc-ver-2"
       [ arr 0 "c0" [| n2; n2 |]; arr 1 "c1" [| n2; n2 |]; arr 2 "c2" [| 2 * n2; 2 * n2 |];
         arr 3 "c3" [| 2 * n2; 2 * n2 |]; arr 4 "c4" [| n2; n2 |]; arr 5 "c5" [| n2; n2 |] ]
       [
         nest ~w:3 "master-prep" (rect 32 96) [ diag 2; row 0 ];
         nest "slave1" (sq n2) [ col 2; col 3 ];
         nest "slave2" (sq n2) [ col 4; col 5; row 0 ];
         nest "exchange" (sq n2) [ row 2; row 3 ];
         nest "gather" (rect 32 n2) [ row 1; row 0 ];
       ])

let astro =
  App.make ~name:"astro" ~cpu_us_per_iteration:12900.0 ~group:App.Moderate
    ~description:"astrophysics code: column sweeps with a significant row-wise update phase"
    (prog "astro"
       (List.init 7 (fun i ->
            let edge = if i = 0 || i = 2 then 2 * n2 else n2 in
            arr i (Printf.sprintf "a%d" i) [| edge; edge |]))
       [
         nest ~w:2 "sweep1" (sq n2) [ col 0; col 1 ];
         nest ~w:2 "sweep2" (sq n2) [ col 2; col 3 ];
         nest ~w:2 "update" (sq n2) [ row 0; row 2; row 4 ];
         nest "flux" (sq n2) [ col 5; col 6; row 4 ];
       ])

let wupwise =
  App.make ~name:"wupwise" ~cpu_us_per_iteration:1410.0 ~group:App.Moderate
    ~description:"out-of-core SPECOMP wupwise: half the arrays column/k-major"
    (prog "wupwise"
       [ arr 0 "g0" [| n2; n2 |]; arr 1 "g1" [| n2; n2 |]; arr 2 "g2" [| n2; n2 |];
         arr 3 "g3" [| n2; n2 |]; arr3 4 "psi"; arr3 5 "phi" ]
       [
         nest ~w:2 "gamma-col" (sq n2) [ col 0; col 1 ];
         nest ~w:2 "gamma-row" (sq n2) [ row 1; row 2 ];
         nest "su3" (cube3 ()) [ kmaj 4; jmaj 4; row3 5 ];
         nest "project" (sq n2) [ col 3 ];
       ])

let contour =
  App.make ~name:"contour" ~cpu_us_per_iteration:257.0 ~group:App.Moderate
    ~description:"contour display: sheared (wavefront) traversals plus row-wise rendering"
    (prog "contour"
       [ arr 0 "grid" [| 320; n2 |]; arr 1 "level" [| 320; n2 |]; arr 2 "out" [| 2 * n2; 2 * n2 |];
         arr 3 "tmp" [| n2; n2 |]; arr 4 "mask" [| n2; n2 |] ]
       [
         nest ~w:6 "trace" (rect 64 n2) [ diag 0; diag 1 ];
         nest "render" (sq n2) [ col 2; row 2 ];
         nest "post" (sq n2) [ row 2; row 4; row 3 ];
       ])

let mgrid =
  App.make ~name:"mgrid" ~cpu_us_per_iteration:2100.0 ~group:App.Moderate
    ~description:"out-of-core SPECOMP mgrid: column smoothing and strided restriction"
    (prog "mgrid"
       [ arr 0 "fine" [| n2; n2 |]; arr 1 "mid" [| n2s; n2s |]; arr 2 "coarse" [| 64; 64 |];
         arr 3 "resid" [| n2; n2 |]; arr 4 "tmp" [| n2s; n2s |] ]
       [
         nest ~w:2 "smooth" (sq n2) [ col 0; row 3 ];
         nest "restrict" (sq n2s) [ stride2 0; row 1 ];
         nest "interp" (sq n2s) [ col 1; row 4 ];
         nest ~w:2 "apply" (sq 64) [ row 2 ];
       ])

(* ---- group 3: high benefit ----------------------------------------- *)

let swim =
  App.make ~name:"swim" ~cpu_us_per_iteration:40800.0 ~group:App.High
    ~description:"out-of-core SPECOMP swim: shallow-water column sweeps throughout"
    (prog "swim"
       [ arr 0 "u" [| n2; n2 |]; arr 1 "v" [| n2; n2 |]; arr 2 "p" [| n2; n2 |];
         arr 3 "unew" [| n2; n2 |]; arr 4 "vnew" [| n2; n2 |]; arr 5 "pnew" [| n2; n2 |] ]
       [
         nest ~w:2 "calc1" (sq n2) [ col 0; col 1; col 2 ];
         nest ~w:2 "calc2" (sq n2) [ col 3; col 4; col 5 ];
         nest "calc3" (sq n2) [ col 1; col 4 ];
       ])

let afores =
  App.make ~name:"afores" ~cpu_us_per_iteration:1710.0 ~group:App.High ~master_slave:true
    ~description:"alternative-fuel combustion I/O template: 3 arrays, column-wise kernels"
    (prog "afores"
       [ arr 0 "fuel" [| n2; n2 |]; arr 1 "oxid" [| n2; n2 |]; arr 2 "temp" [| 320; n2 |] ]
       [
         nest ~w:4 "inject" (rect 16 128) [ diag 2; row 0 ];
         nest ~w:3 "burn" (sq n2) [ col 0; col 1 ];
         nest ~w:2 "diffuse" (sq n2) [ col 2; col 1 ];
       ])

let sar =
  App.make ~name:"sar" ~cpu_us_per_iteration:1190.0 ~group:App.High ~master_slave:true
    ~description:"synthetic aperture radar kernel: azimuth passes dominate range passes"
    (prog "sar"
       [ arr 0 "img" [| n2; n2 |]; arr 1 "rng" [| n2; n2 |]; arr 2 "azi" [| n2; n2 |];
         arr 3 "out" [| n2; n2 |] ]
       [
         nest "range-fft" (sq n2) [ row 0; row 1 ];
         nest ~w:3 "azimuth-fft" (sq n2) [ col 1; col 2 ];
         nest ~w:2 "focus" (sq n2) [ col 2; col 3 ];
         nest ~w:6 "report" (rect 32 128) [ row 3 ];
       ])

let hf =
  App.make ~name:"hf" ~cpu_us_per_iteration:5640.0 ~group:App.High
    ~description:"Hartree-Fock method: column-wise integral and Fock-matrix passes"
    (prog "hf"
       [ arr 0 "ints" [| n2s; n2s |]; arr 1 "fock" [| n2s; n2s |]; arr 2 "dens" [| n2s; n2s |];
         arr 3 "coul" [| n2s; n2s |]; arr 4 "exch" [| n2s; n2s |]; arr 5 "tmp" [| n2s; n2s |];
         arr 6 "eri1" [| n2; n2 |]; arr 7 "eri2" [| n2; n2 |] ]
       [
         nest ~w:2 "eri-gen" (sq n2) [ col 6; col 7 ];
         nest ~w:3 "fock-build" (sq n2s) [ col 0; col 1; col 2 ];
         nest ~w:2 "coul-exch" (sq n2s) [ col 3; col 4 ];
         nest "diag" (sq n2s) [ row 5; row 1 ];
       ])

let qio =
  App.make ~name:"qio" ~cpu_us_per_iteration:5020.0 ~group:App.High
    ~description:"parallel I/O benchmark: whole-file strided read phases"
    (prog "qio"
       (List.init 4 (fun i -> arr i (Printf.sprintf "q%d" i) [| n2; n2 |]))
       [
         nest ~w:2 "phase1" (sq n2) [ col 0; col 1 ];
         nest ~w:2 "phase2" (sq n2) [ col 2; col 3 ];
         nest "phase3" (sq n2) [ col 0; col 2 ];
       ])

let applu =
  App.make ~name:"applu" ~cpu_us_per_iteration:14200.0 ~group:App.High
    ~description:"out-of-core SPECOMP applu: k-major lower/upper triangular sweeps"
    (prog "applu"
       [ arr3 0 "rsd"; arr3 1 "u"; arr3 2 "frct"; arr3 3 "flux"; arr3 4 "qs" ]
       [
         nest "jacld" (cube3 ()) [ kmaj 0; kmaj 1 ];
         nest "blts" (cube3 ()) [ kmaj 0; kmaj 2 ];
         nest "jacu" (cube3 ()) [ jmaj 3; kmaj 4 ];
         nest "rhs" (cube3 ()) [ row3 1 ];
       ])

let sp =
  App.make ~name:"sp" ~cpu_us_per_iteration:9000.0 ~group:App.High
    ~description:"out-of-core NAS SP: j-/k-major scalar-pentadiagonal sweeps"
    (prog "sp"
       [ arr3 0 "lhs"; arr3 1 "rhs"; arr3 2 "rho"; arr3 3 "us"; arr3 4 "speed" ]
       [
         nest "x-sweep" (cube3 ()) [ jmaj 0; jmaj 1 ];
         nest "y-sweep" (cube3 ()) [ kmaj 2; kmaj 3 ];
         nest "z-sweep" (cube3 ()) [ jmaj 4; kmaj 2 ];
         nest "tzetar" (cube3 ()) [ kmaj 1; jmaj 4 ];
       ])

(* Table 2's row order *)
let all =
  [ cc_ver_1; s3asim; twer; bt; cc_ver_2; astro; wupwise; contour; mgrid; swim; afores;
    sar; hf; qio; applu; sp ]

let find name = List.find (fun a -> a.App.name = name) all

let names = List.map (fun a -> a.App.name) all
