open Flo_poly

type benefit_group = No_benefit | Moderate | High

type t = {
  name : string;
  description : string;
  group : benefit_group;
  master_slave : bool;
  program : Program.t;
  cpu_us_per_iteration : float;
}

let make ~name ~description ~group ?(master_slave = false) ?(cpu_us_per_iteration = 0.2)
    program =
  { name; description; group; master_slave; program; cpu_us_per_iteration }

let group_to_string = function
  | No_benefit -> "none"
  | Moderate -> "moderate"
  | High -> "high"

let total_accesses t =
  List.fold_left
    (fun acc nest ->
      acc + (Loop_nest.trip_count nest * List.length nest.Loop_nest.refs))
    0 t.program.Program.nests
