(** The 16 I/O-intensive applications of the paper's evaluation (Table 2).

    The real codes (out-of-core SPECOMP/NAS programs, locally-maintained
    scientific codes) are proprietary or unavailable; each is modeled as a
    loop-nest program whose {e access-pattern structure} — row-wise vs
    column-wise vs strided vs sheared references, reference weights, array
    counts, and master-slave asymmetry — reproduces the application's
    behaviour class from the paper:

    {ul
    {- group 1, no benefit: [cc-ver-1], [s3asim] (already cache-friendly),
       [twer] (17 arrays with equally-weighted conflicting references);}
    {- group 2, 8-13%: [bt], [cc-ver-2], [astro], [wupwise], [contour],
       [mgrid] (partial optimization coverage);}
    {- group 3, 21-26%: [swim], [afores], [sar], [hf], [qio], [applu], [sp]
       (dominant cache-hostile patterns, high coverage).}} *)

val all : App.t list
(** The 16 applications, in Table 2's row order. *)

val find : string -> App.t
(** @raise Not_found on unknown names. *)

val names : string list
