(** Application descriptors for the 16-program evaluation suite.

    Each application is a {!Flo_poly.Program.t} (arrays + parallelized loop
    nests) plus execution-model metadata.  [group] records the benefit group
    the paper reports for the application (Section 5.2); tests assert that
    the reproduction lands each app in its group. *)

open Flo_poly

type benefit_group = No_benefit | Moderate | High

type t = {
  name : string;
  description : string;
  group : benefit_group;
  master_slave : bool;
      (** apps whose computation is master-slave rather than data-parallel
          (cc-ver-2, afores, sar) — the only ones sensitive to thread
          mapping in Fig. 7(b) *)
  program : Program.t;
  cpu_us_per_iteration : float;
}

val make :
  name:string ->
  description:string ->
  group:benefit_group ->
  ?master_slave:bool ->
  ?cpu_us_per_iteration:float ->
  Program.t ->
  t

val group_to_string : benefit_group -> string
val total_accesses : t -> int
(** Element accesses one full execution issues (trip counts x refs). *)
