lib/workloads/suite.ml: Access App Data_space Flo_poly Iter_space List Loop_nest Printf Program
