lib/workloads/app.ml: Flo_poly List Loop_nest Program
