lib/workloads/app.mli: Flo_poly Program
