type t = int array array

let make rows cols v = Array.make_matrix rows cols v

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0))

let of_rows rows =
  match rows with
  | [] -> [||]
  | first :: _ ->
    let cols = List.length first in
    if not (List.for_all (fun r -> List.length r = cols) rows) then
      invalid_arg "Imat.of_rows: ragged rows";
    Array.of_list (List.map Array.of_list rows)

let rows m = Array.length m
let cols m = if Array.length m = 0 then 0 else Array.length m.(0)
let get m i j = m.(i).(j)
let row m i = Array.copy m.(i)
let col m j = Array.init (rows m) (fun i -> m.(i).(j))
let copy m = Array.map Array.copy m
let equal a b = a = b

let transpose m = Array.init (cols m) (fun j -> col m j)

let mul a b =
  if cols a <> rows b then invalid_arg "Imat.mul: dimension mismatch";
  Array.init (rows a) (fun i ->
      Array.init (cols b) (fun j ->
          let s = ref 0 in
          for k = 0 to cols a - 1 do
            s := !s + (a.(i).(k) * b.(k).(j))
          done;
          !s))

let mul_vec m v =
  if cols m <> Array.length v then invalid_arg "Imat.mul_vec: dimension mismatch";
  Array.map (fun r -> Ivec.dot r v) m

let vec_mul v m =
  if Array.length v <> rows m then invalid_arg "Imat.vec_mul: dimension mismatch";
  Array.init (cols m) (fun j -> Ivec.dot v (col m j))

let map2 f a b =
  if rows a <> rows b || cols a <> cols b then invalid_arg "Imat: shape mismatch";
  Array.init (rows a) (fun i -> Array.init (cols a) (fun j -> f a.(i).(j) b.(i).(j)))

let add = map2 ( + )
let neg = Array.map Ivec.neg
let scale k = Array.map (Ivec.scale k)

let delete_row m i =
  if i < 0 || i >= rows m then invalid_arg "Imat.delete_row";
  Array.init (rows m - 1) (fun r -> Array.copy m.(if r < i then r else r + 1))

let delete_col m j =
  if j < 0 || j >= cols m then invalid_arg "Imat.delete_col";
  Array.map
    (fun r -> Array.init (Array.length r - 1) (fun c -> r.(if c < j then c else c + 1)))
    m

let append_cols a b =
  if rows a <> rows b then invalid_arg "Imat.append_cols: row mismatch";
  Array.init (rows a) (fun i -> Array.append a.(i) b.(i))

let swap_rows m i j =
  let m = copy m in
  let t = m.(i) in
  m.(i) <- m.(j);
  m.(j) <- t;
  m

let swap_cols m i j =
  Array.map
    (fun r ->
      let r = Array.copy r in
      let t = r.(i) in
      r.(i) <- r.(j);
      r.(j) <- t;
      r)
    m

(* Bareiss fraction-free elimination keeps all intermediates integral. *)
let det m =
  let n = rows m in
  if n <> cols m then invalid_arg "Imat.det: not square";
  if n = 0 then 1
  else begin
    let a = Array.map Array.copy m in
    let sign = ref 1 in
    let prev = ref 1 in
    let ok = ref true in
    (try
       for k = 0 to n - 2 do
         if a.(k).(k) = 0 then begin
           (* find pivot row below *)
           let p = ref (-1) in
           for i = k + 1 to n - 1 do
             if !p < 0 && a.(i).(k) <> 0 then p := i
           done;
           if !p < 0 then begin
             ok := false;
             raise Exit
           end;
           let t = a.(k) in
           a.(k) <- a.(!p);
           a.(!p) <- t;
           sign := - !sign
         end;
         for i = k + 1 to n - 1 do
           for j = k + 1 to n - 1 do
             a.(i).(j) <- ((a.(i).(j) * a.(k).(k)) - (a.(i).(k) * a.(k).(j))) / !prev
           done;
           a.(i).(k) <- 0
         done;
         prev := a.(k).(k)
       done
     with Exit -> ());
    if not !ok then 0 else !sign * a.(n - 1).(n - 1)
  end

let is_unimodular m = rows m = cols m && abs (det m) = 1

let permutation p =
  let n = List.length p in
  let seen = Array.make n false in
  List.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then invalid_arg "Imat.permutation";
      seen.(i) <- true)
    p;
  let m = make n n 0 in
  List.iteri (fun i pi -> m.(i).(pi) <- 1) p;
  m

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i r ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
           Format.pp_print_int)
        (Array.to_list r))
    m;
  Format.fprintf ppf "@]"
