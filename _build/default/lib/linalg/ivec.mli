(** Dense integer vectors.

    Thin immutable-by-convention wrapper over [int array] used for iteration
    vectors, data (index) vectors, hyperplane normals and offset vectors.  All
    operations allocate fresh arrays; callers must not mutate results. *)

type t = int array

val make : int -> int -> t
(** [make n v] is the [n]-vector with every entry [v]. *)

val zero : int -> t
val of_list : int list -> t
val to_list : t -> int list
val dim : t -> int
val get : t -> int -> int

val unit : int -> int -> t
(** [unit n k] is the [n]-dimensional unit vector with 1 at 0-based index [k].
    @raise Invalid_argument if [k] is out of range. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val dot : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val gcd : t -> int
(** Non-negative gcd of all entries; 0 for the zero vector. *)

val primitive : t -> t
(** Divide by {!gcd} so entries are coprime; first nonzero entry made
    positive.  The zero vector maps to itself. *)

val lex_compare : t -> t -> int
val pp : Format.formatter -> t -> unit
