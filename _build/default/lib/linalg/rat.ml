type t = { num : int; den : int }

let rec gcd_pos a b = if b = 0 then a else gcd_pos b (a mod b)

let gcd a b = gcd_pos (abs a) (abs b)

let lcm a b = if a = 0 || b = 0 then 0 else abs (a / gcd a b * b)

let make num den =
  if den = 0 then raise Division_by_zero;
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num t = t.num
let den t = t.den

(* Entries in this domain stay minuscule; a cheap overflow guard catches
   misuse during development without the cost of arbitrary precision. *)
let checked_mul a b =
  let p = a * b in
  assert (a = 0 || (p / a = b && abs a < max_int / 2));
  p

let add a b =
  make ((checked_mul a.num b.den) + (checked_mul b.num a.den)) (checked_mul a.den b.den)

let neg a = { a with num = -a.num }

let sub a b = add a (neg b)

let mul a b = make (checked_mul a.num b.num) (checked_mul a.den b.den)

let inv a =
  if a.num = 0 then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)

let abs a = { a with num = Stdlib.abs a.num }

let sign a = compare a.num 0

let compare a b = Stdlib.compare (checked_mul a.num b.den) (checked_mul b.num a.den)

let equal a b = a.num = b.num && a.den = b.den

let is_zero a = a.num = 0

let is_integer a = a.den = 1

let to_int_exn a =
  if a.den <> 1 then invalid_arg "Rat.to_int_exn: not an integer";
  a.num

let to_float a = float_of_int a.num /. float_of_int a.den

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor a =
  if a.num >= 0 then a.num / a.den
  else -((- a.num + a.den - 1) / a.den)

let ceil a = - (floor (neg a))

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
