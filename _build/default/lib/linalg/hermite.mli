(** Extended-gcd machinery and unimodular completion.

    The paper's Step I produces one primitive row vector [d] (the data
    hyperplane normal pulled back through the transformation); the full data
    transformation [D] is any unimodular matrix having [d] as a designated
    row.  [complete_to_unimodular] builds it via extended-gcd column
    operations (the core of Hermite normalization). *)

val egcd : int -> int -> int * int * int
(** [egcd a b = (g, s, t)] with [s*a + t*b = g] and [g = gcd a b >= 0]. *)

val row_to_e1 : Ivec.t -> Imat.t
(** [row_to_e1 d] for primitive [d] returns a unimodular [U] such that
    [d . U = e_1] (the first unit row vector).
    @raise Invalid_argument if [d] is zero or not primitive. *)

val complete_to_unimodular : ?row:int -> Ivec.t -> Imat.t
(** [complete_to_unimodular ~row d] is a unimodular matrix whose [row]-th
    (default 0) row equals the primitive vector [d].
    @raise Invalid_argument if [d] is zero or not primitive, or [row] is out
    of range. *)

val hermite_normal_form : Imat.t -> Imat.t * Imat.t
(** [hermite_normal_form m = (h, u)] with [u] unimodular, [h = m . u] in
    column-style Hermite normal form (lower triangular, pivots positive,
    entries right of a pivot zero).  Used for testing and for diagnosing
    degenerate access matrices. *)
