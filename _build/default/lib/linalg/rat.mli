(** Exact rational arithmetic on native integers.

    Values are kept in canonical form: the denominator is strictly positive and
    [gcd (abs num) den = 1].  Matrix entries arising in affine loop analysis are
    tiny, so native [int] precision is ample; arithmetic that would overflow is
    detected by assertion in debug builds. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on division by {!zero}. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on {!zero}. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val to_float : t -> float
val min : t -> t -> t
val max : t -> t -> t

val floor : t -> int
(** Largest integer [<=] the value. *)

val ceil : t -> int
(** Smallest integer [>=] the value. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** Least common multiple, non-negative. *)
