type t = int array

let make n v = Array.make n v
let zero n = Array.make n 0
let of_list = Array.of_list
let to_list = Array.to_list
let dim = Array.length
let get v i = v.(i)

let unit n k =
  if k < 0 || k >= n then invalid_arg "Ivec.unit";
  let v = Array.make n 0 in
  v.(k) <- 1;
  v

let map2 f a b =
  if Array.length a <> Array.length b then invalid_arg "Ivec: dimension mismatch";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add = map2 ( + )
let sub = map2 ( - )
let neg = Array.map (fun x -> -x)
let scale k = Array.map (fun x -> k * x)

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Ivec.dot: dimension mismatch";
  let s = ref 0 in
  Array.iteri (fun i x -> s := !s + (x * b.(i))) a;
  !s

let equal a b = a = b

let is_zero = Array.for_all (fun x -> x = 0)

let gcd v = Array.fold_left (fun g x -> Rat.gcd g x) 0 v

let primitive v =
  let g = gcd v in
  if g = 0 then v
  else
    let v = Array.map (fun x -> x / g) v in
    let sign =
      let rec first i =
        if i >= Array.length v then 1
        else if v.(i) <> 0 then compare v.(i) 0
        else first (i + 1)
      in
      first 0
    in
    if sign < 0 then neg v else v

let lex_compare a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i >= n then compare (Array.length a) (Array.length b)
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let pp ppf v =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Format.pp_print_int)
    (Array.to_list v)
