(** Exact Gaussian elimination over the rationals with integer interfaces.

    This is the "Integer Gaussian Elimination" engine the paper invokes to
    solve the homogeneous systems [h_A . D . Q . E_u = 0] (Eqs. 3-4): results
    are returned as primitive integer vectors (denominators cleared, entries
    coprime). *)

val rank : Imat.t -> int

val nullspace : Imat.t -> Ivec.t list
(** Basis of the right nullspace [{ x | M x = 0 }] as primitive integer
    vectors.  Empty list when the kernel is trivial. *)

val left_nullspace : Imat.t -> Ivec.t list
(** Basis of [{ x | x M = 0 }] (row vectors), primitive. *)

val solve : Imat.t -> Ivec.t -> Rat.t array option
(** [solve m b] is a rational solution of [m x = b] if one exists. *)

val inverse_unimodular : Imat.t -> Imat.t
(** Exact inverse of a unimodular matrix (integral because [|det| = 1]).
    @raise Invalid_argument if the matrix is not unimodular. *)
