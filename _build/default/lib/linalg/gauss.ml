(* Reduced row echelon form over Rat.t; all integer results are recovered by
   clearing denominators and normalizing to primitive vectors. *)

type rmat = Rat.t array array

let to_rmat (m : Imat.t) : rmat = Array.map (Array.map Rat.of_int) m

(* Returns (rref, pivot column of each pivot row). *)
let rref (a : rmat) : rmat * int list =
  let a = Array.map Array.copy a in
  let rows = Array.length a in
  let cols = if rows = 0 then 0 else Array.length a.(0) in
  let pivots = ref [] in
  let r = ref 0 in
  for c = 0 to cols - 1 do
    if !r < rows then begin
      (* find a pivot in column c at or below row !r *)
      let p = ref (-1) in
      for i = !r to rows - 1 do
        if !p < 0 && not (Rat.is_zero a.(i).(c)) then p := i
      done;
      if !p >= 0 then begin
        let t = a.(!r) in
        a.(!r) <- a.(!p);
        a.(!p) <- t;
        let inv = Rat.inv a.(!r).(c) in
        a.(!r) <- Array.map (fun x -> Rat.mul inv x) a.(!r);
        for i = 0 to rows - 1 do
          if i <> !r && not (Rat.is_zero a.(i).(c)) then begin
            let f = a.(i).(c) in
            a.(i) <- Array.mapi (fun j x -> Rat.sub x (Rat.mul f a.(!r).(j))) a.(i)
          end
        done;
        pivots := c :: !pivots;
        incr r
      end
    end
  done;
  (a, List.rev !pivots)

let rank m =
  let _, pivots = rref (to_rmat m) in
  List.length pivots

let clear_denominators (v : Rat.t array) : Ivec.t =
  let l = Array.fold_left (fun acc x -> Rat.lcm acc (Rat.den x)) 1 v in
  Ivec.primitive
    (Array.map (fun x -> Rat.num x * (l / Rat.den x)) v)

let nullspace (m : Imat.t) : Ivec.t list =
  let cols = Imat.cols m in
  if cols = 0 then []
  else begin
    let a, pivots = rref (to_rmat m) in
    let is_pivot = Array.make cols false in
    let pivot_row = Array.make cols (-1) in
    List.iteri
      (fun r c ->
        is_pivot.(c) <- true;
        pivot_row.(c) <- r)
      pivots;
    let free = List.filter (fun c -> not is_pivot.(c)) (List.init cols Fun.id) in
    let basis_for f =
      let v = Array.make cols Rat.zero in
      v.(f) <- Rat.one;
      for c = 0 to cols - 1 do
        if is_pivot.(c) then v.(c) <- Rat.neg a.(pivot_row.(c)).(f)
      done;
      clear_denominators v
    in
    List.map basis_for free
  end

let left_nullspace m = nullspace (Imat.transpose m)

let solve (m : Imat.t) (b : Ivec.t) : Rat.t array option =
  let rows = Imat.rows m and cols = Imat.cols m in
  if Array.length b <> rows then invalid_arg "Gauss.solve: dimension mismatch";
  let aug =
    Array.init rows (fun i ->
        Array.init (cols + 1) (fun j ->
            Rat.of_int (if j < cols then Imat.get m i j else b.(i))))
  in
  let a, pivots = rref aug in
  (* inconsistent iff the augmented column is a pivot *)
  if List.mem cols pivots then None
  else begin
    let x = Array.make cols Rat.zero in
    List.iteri
      (fun r c -> x.(c) <- a.(r).(cols))
      pivots;
    Some x
  end

let inverse_unimodular (m : Imat.t) : Imat.t =
  let n = Imat.rows m in
  if not (Imat.is_unimodular m) then invalid_arg "Gauss.inverse_unimodular: not unimodular";
  let aug =
    Array.init n (fun i ->
        Array.init (2 * n) (fun j ->
            if j < n then Rat.of_int (Imat.get m i j)
            else if j - n = i then Rat.one
            else Rat.zero))
  in
  let a, _ = rref aug in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let x = a.(i).(n + j) in
          if not (Rat.is_integer x) then
            invalid_arg "Gauss.inverse_unimodular: non-integral inverse";
          Rat.to_int_exn x))
