(** Dense integer matrices.

    Row-major [int array array]; immutable by convention.  Used for access
    matrices [Q] and unimodular data transformations [D]. *)

type t = int array array

val make : int -> int -> int -> t
(** [make rows cols v] fills with [v]. *)

val identity : int -> t
val of_rows : int list list -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> int
val row : t -> int -> Ivec.t
val col : t -> int -> Ivec.t
val transpose : t -> t
val copy : t -> t
val equal : t -> t -> bool

val mul : t -> t -> t
(** @raise Invalid_argument on inner-dimension mismatch. *)

val mul_vec : t -> Ivec.t -> Ivec.t
(** Matrix-vector product. *)

val vec_mul : Ivec.t -> t -> Ivec.t
(** Row-vector-matrix product. *)

val add : t -> t -> t
val neg : t -> t
val scale : int -> t -> t

val delete_row : t -> int -> t
(** 0-based row removal. *)

val delete_col : t -> int -> t
(** 0-based column removal; this builds the paper's [E_u] from an identity. *)

val append_cols : t -> t -> t
(** Horizontal concatenation; row counts must match. *)

val swap_rows : t -> int -> int -> t
val swap_cols : t -> int -> int -> t

val det : t -> int
(** Determinant by fraction-free (Bareiss) elimination.
    @raise Invalid_argument if the matrix is not square. *)

val is_unimodular : t -> bool
(** Square with determinant +/-1. *)

val permutation : int list -> t
(** [permutation p] for [p] a permutation of [0..n-1] is the matrix [M] with
    [M.(i).(p_i) = 1], i.e. [mul_vec M a] picks coordinate [p_i] of [a] into
    slot [i].  @raise Invalid_argument if [p] is not a permutation. *)

val pp : Format.formatter -> t -> unit
