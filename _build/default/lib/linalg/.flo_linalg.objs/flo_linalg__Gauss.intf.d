lib/linalg/gauss.mli: Imat Ivec Rat
