lib/linalg/rat.mli: Format
