lib/linalg/ivec.ml: Array Format Rat
