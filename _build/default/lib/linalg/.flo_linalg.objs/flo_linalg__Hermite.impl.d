lib/linalg/hermite.ml: Array Gauss Imat Ivec
