lib/linalg/hermite.mli: Imat Ivec
