lib/linalg/gauss.ml: Array Fun Imat Ivec List Rat
