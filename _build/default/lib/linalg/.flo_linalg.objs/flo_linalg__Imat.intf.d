lib/linalg/imat.mli: Format Ivec
