let rec egcd a b =
  if b = 0 then
    if a >= 0 then (a, 1, 0) else (-a, -1, 0)
  else
    let g, s, t = egcd b (a mod b) in
    (g, t, s - (a / b * t))

(* Right-multiply columns (i, j) of [m] by the 2x2 unimodular matrix
   [[c00 c01] [c10 c11]] (acting on the column pair). *)
let col_op m i j c00 c10 c01 c11 =
  Array.iter
    (fun r ->
      let vi = r.(i) and vj = r.(j) in
      r.(i) <- (c00 * vi) + (c10 * vj);
      r.(j) <- (c01 * vi) + (c11 * vj))
    m

let row_to_e1 d =
  let n = Ivec.dim d in
  if Ivec.is_zero d then invalid_arg "Hermite.row_to_e1: zero vector";
  if Ivec.gcd d <> 1 then invalid_arg "Hermite.row_to_e1: not primitive";
  let u = Imat.identity n in
  let w = Array.copy d in
  let wm = [| w |] in
  for j = 1 to n - 1 do
    if w.(j) <> 0 then begin
      let a = w.(0) and b = w.(j) in
      let g, s, t = egcd a b in
      (* det of [[s, -b/g], [t, a/g]] is (s*a + t*b)/g = 1 *)
      col_op u 0 j s t (-b / g) (a / g);
      col_op wm 0 j s t (-b / g) (a / g)
    end
  done;
  (* the gcd chain may leave -1 when the leading entry was negative *)
  if w.(0) < 0 then begin
    Array.iter (fun r -> r.(0) <- -r.(0)) u;
    w.(0) <- -w.(0)
  end;
  assert (w.(0) = 1 && Array.for_all (fun x -> x = 0) (Array.sub w 1 (n - 1)));
  u

let complete_to_unimodular ?(row = 0) d =
  let n = Ivec.dim d in
  if row < 0 || row >= n then invalid_arg "Hermite.complete_to_unimodular: bad row";
  let u = row_to_e1 d in
  let m = Gauss.inverse_unimodular u in
  (* first row of U^-1 is d since d.U = e1; move it to the requested slot *)
  if row = 0 then m else Imat.swap_rows m 0 row

let hermite_normal_form m =
  let rows = Imat.rows m and cols = Imat.cols m in
  let h = Imat.copy m in
  let u = Imat.copy (Imat.identity cols) in
  let pivot_col = ref 0 in
  for i = 0 to rows - 1 do
    if !pivot_col < cols then begin
      (* zero out everything right of the pivot column in row i *)
      for j = !pivot_col + 1 to cols - 1 do
        if h.(i).(j) <> 0 then begin
          let a = h.(i).(!pivot_col) and b = h.(i).(j) in
          let g, s, t = egcd a b in
          col_op h !pivot_col j s t (-b / g) (a / g);
          col_op u !pivot_col j s t (-b / g) (a / g)
        end
      done;
      if h.(i).(!pivot_col) <> 0 then begin
        (* make the pivot positive *)
        if h.(i).(!pivot_col) < 0 then begin
          col_op h !pivot_col !pivot_col (-1) 0 0 1;
          col_op u !pivot_col !pivot_col (-1) 0 0 1
        end;
        (* reduce entries left of the pivot modulo the pivot *)
        for j = 0 to !pivot_col - 1 do
          let q =
            let p = h.(i).(!pivot_col) in
            let x = h.(i).(j) in
            (* floor division so remainders land in [0, p) *)
            if x >= 0 then x / p else -((-x + p - 1) / p)
          in
          (* col_j := col_j - q * col_pivot *)
          if q <> 0 then begin
            col_op h j !pivot_col 1 (-q) 0 1;
            col_op u j !pivot_col 1 (-q) 0 1
          end
        done;
        incr pivot_col
      end
    end
  done;
  (h, u)
