let () =
  Alcotest.run "flopt"
    [
      ("linalg", Test_linalg.suite);
      ("poly", Test_poly.suite);
      ("obs", Test_obs.suite);
      ("slo", Test_slo.suite);
      ("analysis", Test_analysis.suite);
      ("storage", Test_storage.suite);
      ("sim-kernel", Test_sim_kernel.suite);
      ("core", Test_core.suite);
      ("workloads", Test_workloads.suite);
      ("engine", Test_engine.suite);
      ("faults", Test_faults.suite);
      ("parallel", Test_parallel.suite);
      ("fidelity", Test_fidelity.suite);
      ("bench", Test_bench.suite);
      ("traffic", Test_traffic.suite);
      ("trace", Test_trace.suite);
      ("overload", Test_overload.suite);
    ]
