(* The fault-injection subsystem: PRNG determinism, plan grammar round-trip,
   retry backoff bounds, injector semantics (offline caches, failover
   remaps, read-error retry loops, timeouts, degraded service), the hard
   byte-identity invariant (zero-fault plan = fault-free path), and the
   jobs-independence of chaos sweeps. *)

open Flo_storage
open Flo_core
open Flo_workloads
open Flo_engine
open Flo_faults

let checkb = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_jobs =
  match Sys.getenv_opt "FLOPT_TEST_JOBS" with
  | Some s -> (match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 4)
  | None -> 4

(* ---- Prng -------------------------------------------------------------- *)

let test_prng_deterministic () =
  let draw seed n =
    let g = Prng.create ~seed in
    List.init n (fun _ -> Prng.next_int64 g)
  in
  checkb "same seed same stream" true (draw 42 64 = draw 42 64);
  checkb "different seeds diverge" true (draw 42 64 <> draw 43 64);
  let g = Prng.create ~seed:7 and h = Prng.for_stream ~seed:7 ~stream:0 in
  checkb "stream 0 is a distinct substream" true
    (List.init 16 (fun _ -> Prng.next_int64 g)
    <> List.init 16 (fun _ -> Prng.next_int64 h));
  let s0 = Prng.for_stream ~seed:7 ~stream:1 and s1 = Prng.for_stream ~seed:7 ~stream:2 in
  checkb "substreams diverge" true
    (List.init 16 (fun _ -> Prng.next_int64 s0)
    <> List.init 16 (fun _ -> Prng.next_int64 s1))

let test_prng_ranges () =
  let g = Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let f = Prng.float g in
    checkb "float in [0,1)" true (f >= 0. && f < 1.)
  done;
  let g = Prng.create ~seed:2 in
  for _ = 1 to 1000 do
    let i = Prng.int g ~bound:7 in
    checkb "int in [0,bound)" true (i >= 0 && i < 7)
  done

(* ---- Fault_plan grammar ------------------------------------------------- *)

let test_plan_parse_ok () =
  let p =
    match
      Fault_plan.of_string
        "read-error:rate=0.1,node=2;latency:rate=0.5,mult=4;degrade:mult=2;\
         cache-off:node=1;failover:node=0,to=3;retry:max=5,base=100,timeout=9000"
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  check_int "five fault clauses" 5 (List.length p.Fault_plan.specs);
  check_int "retry max folded in" 5 p.Fault_plan.retry.Retry.max_retries;
  checkb "retry mult keeps default" true
    (p.Fault_plan.retry.Retry.multiplier = Retry.default.Retry.multiplier);
  checkb "not empty" false (Fault_plan.is_empty p);
  (* canonical rendering re-parses to the same plan *)
  (match Fault_plan.of_string (Fault_plan.to_string p) with
  | Ok p' -> checkb "roundtrip" true (p' = p)
  | Error e -> Alcotest.failf "canonical form rejected: %s" e)

let test_plan_parse_errors () =
  List.iter
    (fun s ->
      match Fault_plan.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [
      "bogus:rate=1";                  (* unknown clause *)
      "read-error:rate=2";             (* rate out of range *)
      "read-error:rate=-0.1";
      "read-error:rate=0.5,node=-1";   (* negative node *)
      "latency:rate=0.5";              (* missing mult *)
      "latency:rate=0.5,mult=0.5";     (* multiplier < 1 *)
      "degrade:mult=abc";              (* not a number *)
      "cache-off:";                    (* missing node *)
      "read-error:rate=0.5,frobnicate=1"; (* unknown key *)
      "retry:max=-1";
      "retry:jitter=1.5";
    ]

let test_plan_scale () =
  let p =
    Result.get_ok
      (Fault_plan.of_string "read-error:rate=0.6;degrade:mult=3;cache-off:node=0")
  in
  let zero = Fault_plan.scale p 0. in
  checkb "scale 0 drops every clause" true (zero.Fault_plan.specs = []);
  checkb "scale 0 is the empty plan" true (Fault_plan.is_empty { zero with seed = 0 });
  let double = Fault_plan.scale p 2. in
  List.iter
    (fun spec ->
      match spec with
      | Fault_plan.Read_error { rate; _ } -> checkb "rate clamped to 1" true (rate = 1.)
      | Fault_plan.Degraded { multiplier; _ } ->
        checkb "degrade interpolates 1+(m-1)s" true (multiplier = 5.)
      | Fault_plan.Cache_offline _ -> ()
      | _ -> Alcotest.fail "unexpected clause")
    double.Fault_plan.specs;
  check_int "structural clauses kept at s>0" 3 (List.length double.Fault_plan.specs)

let plan_arb =
  let open QCheck in
  (* floats as eighths so the %.12g wire format round-trips exactly *)
  let gen =
    Gen.(
      let rate8 = map (fun k -> float_of_int k /. 8.) (int_range 0 8) in
      let mult8 = map (fun k -> float_of_int k /. 8.) (int_range 8 128) in
      let clause =
        oneof
          [
            (let* rate = rate8 in
             let* node = opt (int_range 0 3) in
             return (Fault_plan.Read_error { node; rate }));
            (let* rate = rate8 in
             let* m = mult8 in
             let* node = opt (int_range 0 3) in
             return (Fault_plan.Latency_spike { node; rate; multiplier = m }));
            (let* m = mult8 in
             let* node = opt (int_range 0 3) in
             return (Fault_plan.Degraded { node; multiplier = m }));
            (let* node = int_range 0 3 in
             return (Fault_plan.Cache_offline { node }));
            (let* node = int_range 0 3 in
             let* target = opt (int_range 0 3) in
             return (Fault_plan.Stripe_failover { node; target }));
          ]
      in
      let* specs = list_size (int_range 0 6) clause in
      let* seed = int_range 0 1000 in
      let* max_retries = int_range 0 6 in
      let* jitter = rate8 in
      return
        {
          Fault_plan.seed;
          retry = { Retry.default with Retry.max_retries; jitter };
          specs;
        })
  in
  QCheck.make ~print:Fault_plan.to_string gen

let prop_plan_roundtrip =
  QCheck.Test.make ~count:200 ~name:"fault plan to_string/of_string round-trips"
    plan_arb
    (fun p ->
      match Fault_plan.of_string (Fault_plan.to_string p) with
      | Ok p' -> Fault_plan.with_seed p' p.Fault_plan.seed = p
      | Error _ -> false)

(* ---- Retry backoff ------------------------------------------------------ *)

let test_backoff_bounds () =
  let p = { Retry.max_retries = 4; base_backoff_us = 100.; multiplier = 2.;
            jitter = 0.5; timeout_us = 1e6 } in
  let inj =
    Injector.create ~storage_nodes:2
      { Fault_plan.empty with Fault_plan.retry = p }
  in
  for attempt = 0 to 3 do
    let nominal = 100. *. (2. ** float_of_int attempt) in
    for _ = 1 to 50 do
      let b = Injector.backoff_us inj ~node:0 ~attempt in
      checkb
        (Printf.sprintf "backoff attempt %d in [nominal/2, nominal]" attempt)
        true
        (b >= (nominal /. 2.) -. 1e-9 && b <= nominal +. 1e-9)
    done
  done;
  (* jitter 0: exact exponential ladder *)
  let exact =
    Injector.create ~storage_nodes:1
      { Fault_plan.empty with Fault_plan.retry = { p with Retry.jitter = 0. } }
  in
  checkb "no jitter is exact" true
    (Injector.backoff_us exact ~node:0 ~attempt:2 = 400.)

let test_retry_validate () =
  List.iter
    (fun p ->
      match Retry.validate p with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "accepted %s" (Retry.to_string p))
    [
      { Retry.default with Retry.max_retries = -1 };
      { Retry.default with Retry.base_backoff_us = -5. };
      { Retry.default with Retry.multiplier = 0.5 };
      { Retry.default with Retry.jitter = 1.5 };
      { Retry.default with Retry.timeout_us = 0. };
    ];
  checkb "default valid" true (Retry.validate Retry.default = Ok ())

(* ---- Injector semantics over real runs ---------------------------------- *)

let small_config =
  Config.with_topology Config.default
    (Topology.make ~compute_nodes:8 ~io_nodes:4 ~storage_nodes:2 ~block_elems:16
       ~io_cache_blocks:32 ~storage_cache_blocks:64 ())

let toy_app =
  let d = Flo_poly.Data_space.make [| 64; 64 |] in
  let space = Flo_poly.Iter_space.make [| (0, 63); (0, 63) |] in
  App.make ~name:"toy" ~description:"column sweep" ~group:App.High
    (Flo_poly.Program.make ~name:"toy"
       [ Flo_poly.Program.declare ~id:0 ~name:"a" d;
         Flo_poly.Program.declare ~id:1 ~name:"b" d ]
       [
         Flo_poly.Loop_nest.make ~weight:2 ~parallel_dim:0 space
           [ Flo_poly.Access.ji ~array_id:0; Flo_poly.Access.ij ~array_id:1 ];
       ])

(* two identical row-sweep nests: each array is 256 blocks, 128 per storage
   node — the second pass misses the 32-block L1 but hits the 512-block L2,
   so storage caching is actually load-bearing here *)
let reuse_app =
  let d = Flo_poly.Data_space.make [| 64; 64 |] in
  let space = Flo_poly.Iter_space.make [| (0, 63); (0, 63) |] in
  let nest =
    Flo_poly.Loop_nest.make ~weight:1 ~parallel_dim:0 space
      [ Flo_poly.Access.ij ~array_id:0; Flo_poly.Access.ij ~array_id:1 ]
  in
  App.make ~name:"toy-reuse" ~description:"two row sweeps" ~group:App.High
    (Flo_poly.Program.make ~name:"toy-reuse"
       [ Flo_poly.Program.declare ~id:0 ~name:"a" d;
         Flo_poly.Program.declare ~id:1 ~name:"b" d ]
       [ nest; nest ])

(* tiny L1, roomy L2: the reuse app's second sweep misses every I/O-node
   cache but fits entirely in the storage caches *)
let l2_heavy_config =
  Config.with_topology Config.default
    (Topology.make ~compute_nodes:8 ~io_nodes:4 ~storage_nodes:2 ~block_elems:16
       ~io_cache_blocks:8 ~storage_cache_blocks:512 ())

let run_with ?(app = toy_app) ?(config = small_config) plan =
  let inj =
    Injector.create ~storage_nodes:config.Config.topology.Topology.storage_nodes
      plan
  in
  let r =
    Run.run ~faults:inj ~config ~layouts:(Experiment.default_layouts app) app
  in
  (r, Injector.counts inj)

let plain_run ?(app = toy_app) ?(config = small_config) () =
  Run.run ~config ~layouts:(Experiment.default_layouts app) app

let plan_of s = Fault_plan.with_seed (Result.get_ok (Fault_plan.of_string s)) 42

let test_cache_off_all_miss () =
  let base = plain_run ~app:reuse_app ~config:l2_heavy_config () in
  checkb "baseline leans on L2" true (base.Run.l2.Stats.hits > 0);
  let r, c =
    run_with ~app:reuse_app ~config:l2_heavy_config
      (plan_of "cache-off:node=0;cache-off:node=1")
  in
  check_int "no L2 hits with every cache offline" 0 r.Run.l2.Stats.hits;
  checkb "offline misses counted" true (c.Injector.offline_misses > 0);
  checkb "every former hit goes to disk" true (r.Run.disk_reads > base.Run.disk_reads);
  checkb "offline caches cost time" true (r.Run.elapsed_us > base.Run.elapsed_us)

let test_failover_shifts_traffic () =
  let r, c = run_with (plan_of "failover:node=0") in
  check_int "remapped node serves nothing" 0 r.Run.l2_nodes.(0).Stats.accesses;
  checkb "remaps counted" true (c.Injector.remaps > 0);
  checkb "survivor carries the load" true (r.Run.l2_nodes.(1).Stats.accesses > 0)

let test_read_errors_retry () =
  let r, c = run_with (plan_of "read-error:rate=0.2") in
  checkb "faults drawn" true (c.Injector.faults > 0);
  checkb "retries follow faults" true (c.Injector.retries > 0);
  let base = plain_run () in
  checkb "retries cost modeled time" true (r.Run.elapsed_us > base.Run.elapsed_us);
  (* the retry path only re-reads: cache behavior is unchanged *)
  checkb "miss counts unchanged by retries" true
    (r.Run.l1.Stats.misses = base.Run.l1.Stats.misses
    && r.Run.l2.Stats.misses = base.Run.l2.Stats.misses)

let test_timeout_failover_path () =
  (* a timeout budget smaller than one backoff forces the failover read *)
  let _, c = run_with (plan_of "read-error:rate=0.5;retry:max=9,base=500,timeout=1") in
  checkb "timeouts recorded" true (c.Injector.timeouts > 0);
  checkb "every timeout fails over" true (c.Injector.failovers >= c.Injector.timeouts)

let test_retries_exhausted_failover () =
  let _, c = run_with (plan_of "read-error:rate=0.9;retry:max=0") in
  checkb "max=0 goes straight to failover" true
    (c.Injector.failovers > 0 && c.Injector.retries = 0)

let test_degraded_service () =
  let r, _ = run_with (plan_of "degrade:mult=8") in
  let base = plain_run () in
  checkb "degraded node is slower" true (r.Run.elapsed_us > base.Run.elapsed_us);
  checkb "cache behavior unchanged" true
    (r.Run.l2.Stats.misses = base.Run.l2.Stats.misses)

let test_injector_rejects_bad_nodes () =
  List.iter
    (fun s ->
      let plan = plan_of s in
      match Injector.create ~storage_nodes:2 plan with
      | _ -> Alcotest.failf "accepted %S for 2 nodes" s
      | exception Invalid_argument _ -> ())
    [ "cache-off:node=2"; "failover:node=5"; "read-error:rate=0.5,node=9" ]

(* ---- the hard invariant: empty plan = fault-free path -------------------- *)

let results_identical (a : Run.result) (b : Run.result) = a = b

let test_zero_fault_identity_toy () =
  let base = plain_run () in
  let empty_r, c = run_with Fault_plan.empty in
  checkb "empty plan byte-identical" true (results_identical base empty_r);
  checkb "no counter moved" true (c = Injector.counts (Injector.create ~storage_nodes:2 Fault_plan.empty));
  (* scale 0 of a rich plan is the same empty plan *)
  let scaled_r, _ =
    run_with (Fault_plan.scale (plan_of "read-error:rate=0.9;degrade:mult=16;cache-off:node=0") 0.)
  in
  checkb "scale-0 plan byte-identical" true (results_identical base scaled_r)

let test_zero_fault_identity_suite () =
  (* the full 16-app suite, default and optimized layouts: running through
     an empty injector must be indistinguishable field-for-field *)
  let config = Config.default in
  let sn = config.Config.topology.Topology.storage_nodes in
  List.iter
    (fun app ->
      List.iter
        (fun (mode, layouts) ->
          let base = Run.run ~config ~layouts app in
          let inj = Injector.create ~storage_nodes:sn Fault_plan.empty in
          let faulty = Run.run ~faults:inj ~config ~layouts app in
          checkb
            (Printf.sprintf "%s (%s layouts)" app.App.name mode)
            true
            (results_identical base faulty))
        [
          ("default", Experiment.default_layouts app);
          ("inter", Experiment.inter_layouts config app);
        ])
    Suite.all

(* ---- jobs-independence of chaos sweeps (qcheck) -------------------------- *)

let chaos_arb =
  let open QCheck in
  let gen =
    Gen.(
      let* seed = int_range 0 99 in
      let* rate8 = int_range 0 4 in
      let* col = bool in
      return (seed, float_of_int rate8 /. 8., col))
  in
  QCheck.make
    ~print:(fun (s, r, col) -> Printf.sprintf "seed=%d rate=%.3f col=%b" s r col)
    gen

let prop_chaos_jobs_equivalence =
  QCheck.Test.make ~count:10
    ~name:"chaos sweep: --jobs 1 and --jobs N give identical points" chaos_arb
    (fun (seed, rate, col) ->
      let plan =
        Fault_plan.with_seed
          (Result.get_ok
             (Fault_plan.of_string
                (Printf.sprintf "read-error:rate=%.3f;latency:rate=0.25,mult=4" rate)))
          seed
      in
      let scope = if col then Internode.Both else Internode.Io_only in
      let sweep jobs =
        Experiment.chaos ~scales:[ 0.; 1. ] ~scope ~jobs ~plan small_config toy_app
      in
      sweep 1 = sweep test_jobs)

(* ---- optimizer degradation chain ---------------------------------------- *)

let test_optimizer_degradation_consistent () =
  List.iter
    (fun app ->
      let plan = Experiment.inter_plan Config.default app in
      let degraded = Optimizer.degraded plan in
      List.iter
        (fun (d : Optimizer.decision) ->
          (match (d.Optimizer.stage, d.Optimizer.reason) with
          | Optimizer.Inter, Optimizer.Optimized ->
            checkb "degraded never lists full results" true
              (not (List.memq d degraded))
          | Optimizer.Inter, r ->
            Alcotest.failf "%s/%s: Inter with reason %s" app.App.name
              d.Optimizer.array_name
              (Optimizer.reason_to_string r)
          | (Optimizer.Intra | Optimizer.Canonical), Optimizer.Optimized ->
            Alcotest.failf "%s/%s: degraded stage claims Optimized" app.App.name
              d.Optimizer.array_name
          | (Optimizer.Intra | Optimizer.Canonical), _ ->
            checkb "listed as degraded" true (List.memq d degraded));
          (* reasons render machine-readably for reports and the CLI *)
          checkb "reason renders" true
            (String.length (Optimizer.reason_to_string d.Optimizer.reason) > 0))
        plan.Optimizer.decisions;
      check_int
        (app.App.name ^ ": optimized + degraded-to-canonical = total")
        (Optimizer.total_arrays plan)
        (Optimizer.optimized_count plan
        + List.length
            (List.filter
               (fun (d : Optimizer.decision) -> d.Optimizer.stage = Optimizer.Canonical)
               plan.Optimizer.decisions)))
    Suite.all

(* the --faults spec comes straight off the command line: the grammar must
   be total — structured Error on any byte string, never an exception *)
let prop_fault_plan_parse_never_raises =
  QCheck.Test.make ~count:1000 ~name:"Fault_plan.of_string is total on arbitrary bytes"
    (QCheck.make ~print:String.escaped
       QCheck.Gen.(
         frequency
           [
             (3, string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 48));
             (* clause-shaped prefixes that reach every parser state *)
             ( 2,
               map
                 (fun (a, b) -> a ^ b)
                 (pair
                    (oneofl
                       [ "read-error:"; "latency:rate="; "degrade:mult=";
                         "cache-off:node="; "failover:"; "retry:max="; ";;";
                         "read-error:rate=0.1,"; "latency:rate=nan,mult=" ])
                    (string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 24)) ) );
           ]))
    (fun s ->
      match Fault_plan.of_string s with Ok _ | Error _ -> true)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_plan_roundtrip; prop_fault_plan_parse_never_raises;
      prop_chaos_jobs_equivalence ]

let suite =
  [
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng ranges", `Quick, test_prng_ranges);
    ("plan grammar parses", `Quick, test_plan_parse_ok);
    ("plan grammar rejects", `Quick, test_plan_parse_errors);
    ("plan scaling", `Quick, test_plan_scale);
    ("backoff bounds", `Quick, test_backoff_bounds);
    ("retry policy validation", `Quick, test_retry_validate);
    ("offline caches all-miss", `Quick, test_cache_off_all_miss);
    ("failover shifts traffic", `Quick, test_failover_shifts_traffic);
    ("read errors retry and cost time", `Quick, test_read_errors_retry);
    ("timeouts fail over", `Quick, test_timeout_failover_path);
    ("exhausted retries fail over", `Quick, test_retries_exhausted_failover);
    ("degraded service multiplier", `Quick, test_degraded_service);
    ("injector rejects out-of-range nodes", `Quick, test_injector_rejects_bad_nodes);
    ("zero-fault identity (toy)", `Quick, test_zero_fault_identity_toy);
    ("zero-fault identity (16-app suite)", `Slow, test_zero_fault_identity_suite);
    ("optimizer degradation chain consistent", `Quick, test_optimizer_degradation_consistent);
  ]
  @ qsuite
