open Flo_obs
open Flo_storage

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* ---- Histogram: units ------------------------------------------------- *)

let test_histogram_basics () =
  let h = Histogram.create () in
  checkb "empty" true (Histogram.is_empty h);
  checkf "empty percentile" 0. (Histogram.percentile h 0.5);
  List.iter (Histogram.add h) [ 1.; 10.; 100.; 1000.; 10000. ];
  check "count" 5 (Histogram.count h);
  checkf "sum" 11111. (Histogram.sum h);
  checkf "mean" 2222.2 (Histogram.mean h);
  checkf "min" 1. (Histogram.min_value h);
  checkf "max" 10000. (Histogram.max_value h);
  (* p100 clamps to the observed max, p0 to the observed min *)
  checkf "p100 = max" 10000. (Histogram.percentile h 1.0);
  checkf "p0 = min" 1. (Histogram.percentile h 0.0);
  (* the median estimate brackets the true median's bucket *)
  let p50 = Histogram.percentile h 0.5 in
  checkb "p50 bracketed" true (p50 >= 100. && p50 < 260.);
  Histogram.reset h;
  check "reset" 0 (Histogram.count h);
  Alcotest.check_raises "bad shape" (Invalid_argument "Histogram.create: lo must be positive")
    (fun () -> ignore (Histogram.create ~lo:0. ()));
  Alcotest.check_raises "merge shape mismatch"
    (Invalid_argument "Histogram.merge: shape mismatch") (fun () ->
      ignore (Histogram.merge (Histogram.create ()) (Histogram.create ~buckets:8 ())))

let test_histogram_percentile_order () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i)
  done;
  let last = ref 0. in
  List.iter
    (fun p ->
      let v = Histogram.percentile h p in
      checkb (Printf.sprintf "p%.0f nondecreasing" (100. *. p)) true (v >= !last);
      last := v)
    [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]

let test_histogram_edge_shapes () =
  (* one bucket is a legal shape: everything lands in the open top bucket *)
  let h = Histogram.create ~buckets:1 () in
  checkf "empty single-bucket percentile" 0. (Histogram.percentile h 0.5);
  List.iter (Histogram.add h) [ 2.; 40.; 900. ];
  check "count" 3 (Histogram.count h);
  (* the only bucket's edge is +inf; every percentile clamps to the observed
     max rather than raising or returning inf (a one-bucket histogram has no
     quantile resolution, documented in the mli) *)
  List.iter
    (fun p ->
      let v = Histogram.percentile h p in
      checkb (Printf.sprintf "single-bucket p%.0f finite" (100. *. p)) true
        (Float.is_finite v);
      checkf (Printf.sprintf "single-bucket p%.0f = max" (100. *. p)) 900. v)
    [ 0.0; 0.5; 0.9; 1.0 ];
  checkf "single-bucket min still tracked" 2. (Histogram.min_value h);
  (* empty histograms answer every quantile with 0., documented *)
  let e = Histogram.create () in
  List.iter (fun p -> checkf "empty percentile" 0. (Histogram.percentile e p))
    [ 0.0; 0.5; 0.99; 1.0 ];
  Alcotest.check_raises "zero buckets still rejected"
    (Invalid_argument "Histogram.create: need at least 1 bucket") (fun () ->
      ignore (Histogram.create ~buckets:0 ()))

(* ---- Histogram: properties ------------------------------------------- *)

(* integral samples keep float sums exact, so merge totals compare with = *)
let samples_arb =
  QCheck.list_of_size (QCheck.Gen.int_range 0 200)
    (QCheck.map float_of_int (QCheck.int_range 0 100_000))

let prop_histogram_add_merge_preserves_count =
  QCheck.Test.make ~name:"histogram add/merge preserves counts" ~count:100
    (QCheck.pair samples_arb samples_arb) (fun (xs, ys) ->
      let ha = Histogram.create () and hb = Histogram.create () in
      List.iter (Histogram.add ha) xs;
      List.iter (Histogram.add hb) ys;
      let m = Histogram.merge ha hb in
      let hall = Histogram.create () in
      List.iter (Histogram.add hall) (xs @ ys);
      Histogram.count m = List.length xs + List.length ys
      && Histogram.count m = Histogram.count hall
      && Histogram.counts m = Histogram.counts hall
      && Histogram.sum m = Histogram.sum hall
      && Array.fold_left ( + ) 0 (Histogram.counts m) = Histogram.count m)

(* the traffic engine's bulk-replay primitive must be indistinguishable
   from the per-observation loop it shortcuts *)
let prop_histogram_add_many_equals_repeated_add =
  QCheck.Test.make ~name:"histogram add_many = n repeated adds" ~count:100
    QCheck.(pair samples_arb (small_list (int_bound 5_000)))
    (fun (values, counts) ->
      let pairs =
        List.map2
          (fun v n -> (v, n))
          values
          (List.init (List.length values) (fun i ->
               match List.nth_opt counts i with Some n -> n | None -> 1))
      in
      let bulk = Histogram.create () and looped = Histogram.create () in
      List.iter (fun (v, n) -> Histogram.add_many bulk v n) pairs;
      List.iter
        (fun (v, n) ->
          for _ = 1 to n do
            Histogram.add looped v
          done)
        pairs;
      Histogram.count bulk = Histogram.count looped
      && Histogram.counts bulk = Histogram.counts looped
      && Float.abs (Histogram.sum bulk -. Histogram.sum looped)
         <= 1e-6 *. Float.max 1. (Float.abs (Histogram.sum looped))
      && Histogram.min_value bulk = Histogram.min_value looped
      && Histogram.max_value bulk = Histogram.max_value looped
      && (Histogram.is_empty bulk
         || Histogram.percentile bulk 0.99 = Histogram.percentile looped 0.99))

let test_histogram_add_many_validation () =
  let h = Histogram.create () in
  Histogram.add_many h 5. 0;
  Alcotest.(check bool) "count 0 is a no-op" true (Histogram.is_empty h);
  Alcotest.(check bool) "negative count rejected" true
    (match Histogram.add_many h 5. (-1) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "NaN rejected" true
    (match Histogram.add_many h Float.nan 3 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_histogram_bucket_monotone =
  QCheck.Test.make ~name:"histogram buckets are monotone" ~count:100 samples_arb
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let bounds = Histogram.bounds h in
      let strictly_increasing = ref true in
      for i = 1 to Array.length bounds - 1 do
        if not (bounds.(i) > bounds.(i - 1)) then strictly_increasing := false
      done;
      (* a larger sample never lands in an earlier bucket: cumulative counts
         up to each bound dominate the true CDF ordering *)
      let index_of v =
        let idx = ref (Array.length bounds - 1) in
        (try
           Array.iteri
             (fun i b ->
               if v <= b then begin
                 idx := i;
                 raise Exit
               end)
             bounds
         with Exit -> ());
        !idx
      in
      let sorted = List.sort compare xs in
      let indices = List.map index_of sorted in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      !strictly_increasing && nondecreasing indices)

(* ---- Metrics: units --------------------------------------------------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "requests" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check "counter" 5 (Metrics.counter_value c);
  (* registration is idempotent: same cell comes back *)
  let c' = Metrics.counter m "requests" in
  Metrics.incr c';
  check "same cell" 6 (Metrics.counter_value c);
  (* labels are order-insensitive dimensions *)
  let l1 = Metrics.counter m ~labels:[ ("node", "0"); ("layer", "l1") ] "hits" in
  let l1' = Metrics.counter m ~labels:[ ("layer", "l1"); ("node", "0") ] "hits" in
  let l2 = Metrics.counter m ~labels:[ ("node", "0"); ("layer", "l2") ] "hits" in
  Metrics.incr l1;
  Metrics.incr l1';
  Metrics.incr l2;
  check "labeled cell shared" 2 (Metrics.counter_value l1);
  check "distinct labels distinct" 1 (Metrics.counter_value l2);
  let g = Metrics.gauge m "depth" in
  Metrics.set_gauge g 3.5;
  checkf "gauge" 3.5 (Metrics.gauge_value g);
  let h = Metrics.histogram m "latency" in
  Histogram.add h 5.;
  (match Metrics.find_histogram m "latency" with
  | Some h' -> check "histogram findable" 1 (Histogram.count h')
  | None -> Alcotest.fail "histogram not found");
  check "cardinal" 5 (Metrics.cardinal m);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: \"requests\" registered as another kind") (fun () ->
      ignore (Metrics.gauge m "requests"))

(* ---- Metrics: merge is associative & commutative ----------------------- *)

(* a comparable snapshot of a registry (histograms by bucket contents) *)
let snapshot m =
  List.map
    (fun (name, labels, v) ->
      ( name,
        labels,
        match v with
        | Metrics.Counter c -> `C c
        | Metrics.Gauge g -> `G g
        | Metrics.Histogram h ->
          `H (Histogram.counts h, Histogram.count h, Histogram.sum h) ))
    (Metrics.to_list m)

(* registries built from op lists: (kind, name idx, label idx, int value) *)
let registry_ops_arb =
  QCheck.list_of_size (QCheck.Gen.int_range 0 30)
    (QCheck.quad (QCheck.int_range 0 2) (QCheck.int_range 0 2) (QCheck.int_range 0 1)
       (QCheck.int_range 0 100))

let build_registry ops =
  let m = Metrics.create () in
  List.iter
    (fun (kind, name_i, label_i, v) ->
      let name = [| "alpha"; "beta"; "gamma" |].(name_i) in
      let labels = if label_i = 0 then [] else [ ("node", "1") ] in
      match kind with
      | 0 -> Metrics.incr ~by:v (Metrics.counter m ~labels ("c." ^ name))
      | 1 ->
        let g = Metrics.gauge m ~labels ("g." ^ name) in
        Metrics.set_gauge g (Float.max (Metrics.gauge_value g) (float_of_int v))
      | _ -> Histogram.add (Metrics.histogram m ~labels ("h." ^ name)) (float_of_int v))
    ops;
  m

let prop_metrics_merge_commutative =
  QCheck.Test.make ~name:"metrics merge is commutative" ~count:100
    (QCheck.pair registry_ops_arb registry_ops_arb) (fun (a, b) ->
      let ma = build_registry a and mb = build_registry b in
      snapshot (Metrics.merge ma mb) = snapshot (Metrics.merge mb ma))

let prop_metrics_merge_associative =
  QCheck.Test.make ~name:"metrics merge is associative" ~count:100
    (QCheck.triple registry_ops_arb registry_ops_arb registry_ops_arb)
    (fun (a, b, c) ->
      let ma = build_registry a and mb = build_registry b and mc = build_registry c in
      snapshot (Metrics.merge ma (Metrics.merge mb mc))
      = snapshot (Metrics.merge (Metrics.merge ma mb) mc))

let prop_metrics_merge_leaves_inputs () =
  let ma = build_registry [ (2, 0, 0, 7) ] in
  let mb = build_registry [ (2, 0, 0, 9) ] in
  let merged = Metrics.merge ma mb in
  (* mutating the merged registry must not leak into the inputs *)
  (match Metrics.find_histogram merged "h.alpha" with
  | Some h -> Histogram.add h 1.
  | None -> Alcotest.fail "merged histogram missing");
  match Metrics.find_histogram ma "h.alpha" with
  | Some h -> check "input unchanged" 1 (Histogram.count h)
  | None -> Alcotest.fail "input histogram missing"

(* ---- Event ------------------------------------------------------------- *)

let test_event_json () =
  let e =
    Event.make ~time_us:12.5 ~kind:Event.Disk_read ~layer:Event.Disk ~node:3 ~thread:1
      ~file:0 ~block:42 ~latency_us:300.25 ()
  in
  let json = Event.to_json e in
  checkb "object braces" true
    (String.length json > 2 && json.[0] = '{' && json.[String.length json - 1] = '}');
  List.iter
    (fun needle ->
      checkb (Printf.sprintf "contains %s" needle) true
        (let len = String.length needle in
         let rec scan i =
           i + len <= String.length json && (String.sub json i len = needle || scan (i + 1))
         in
         scan 0))
    [ {|"kind":"disk_read"|}; {|"layer":"disk"|}; {|"node":3|}; {|"block":42|};
      {|"lat_us":300.250|}; {|"t_us":12.500|} ]

let test_event_json_parse () =
  (* field order and whitespace are irrelevant; lat_us is optional *)
  let line =
    {| { "block": 7, "kind": "hit", "t_us": 3.5, "node": 2, "layer": "l2", "file": 1, "thread": 4 } |}
  in
  (match Event.of_json line with
  | Ok e ->
    checkb "kind" true (e.Event.kind = Event.Hit);
    checkb "layer" true (e.Event.layer = Event.L2);
    check "node" 2 e.Event.node;
    check "block" 7 e.Event.block;
    checkf "time" 3.5 e.Event.time_us;
    checkf "lat defaults" 0. e.Event.latency_us
  | Error msg -> Alcotest.failf "valid line rejected: %s" msg);
  List.iter
    (fun bad ->
      match Event.of_json bad with
      | Ok _ -> Alcotest.failf "accepted malformed %S" bad
      | Error _ -> ())
    [
      ""; "[]"; "{"; {|{"t_us":1}|};
      {|{"t_us":1,"kind":"hit","layer":"l9","node":0,"thread":0,"file":0,"block":0}|};
      {|{"t_us":1,"kind":"hit","layer":"l1","node":0,"thread":0,"file":0,"block":0} x|};
    ];
  (* an unknown kind is NOT malformed: it round-trips as an opaque record
     (forward compat with event kinds from newer builds) *)
  match
    Event.of_json
      {|{"t_us":1,"kind":"warp","layer":"l1","node":0,"thread":0,"file":0,"block":0}|}
  with
  | Ok e -> checkb "unknown kind wraps in Other" true (e.Event.kind = Event.Other "warp")
  | Error msg -> Alcotest.failf "unknown kind rejected: %s" msg

(* floats as eighths so the %.3f wire format round-trips exactly *)
let event_arb =
  let open QCheck in
  let gen =
    Gen.(
      oneofl [ Event.Access; Event.Hit; Event.Miss; Event.Evict; Event.Demote;
               Event.Prefetch; Event.Disk_read; Event.Fault; Event.Retry;
               Event.Timeout; Event.Failover ]
      >>= fun kind ->
      oneofl [ Event.L1; Event.L2; Event.Disk ] >>= fun layer ->
      int_range 0 7 >>= fun node ->
      int_range 0 63 >>= fun thread ->
      int_range 0 15 >>= fun file ->
      int_range 0 100_000 >>= fun block ->
      int_range 0 8_000_000 >>= fun t8 ->
      int_range 0 80_000 >>= fun l8 ->
      return
        (Event.make
           ~time_us:(float_of_int t8 /. 8.)
           ~kind ~layer ~node ~thread ~file ~block
           ~latency_us:(float_of_int l8 /. 8.)
           ()))
  in
  QCheck.make ~print:(fun e -> Event.to_json e) gen

let prop_event_json_roundtrip =
  QCheck.Test.make ~name:"event to_json/of_json round-trips" ~count:500 event_arb
    (fun e ->
      match Event.of_json (Event.to_json e) with
      | Ok e' -> e' = e
      | Error _ -> false)

(* ---- Sink: ring properties --------------------------------------------- *)

let dummy_event i =
  Event.make ~time_us:(float_of_int i) ~kind:Event.Access ~layer:Event.L1 ~node:0
    ~thread:0 ~file:0 ~block:i ()

let prop_ring_bounded_and_newest =
  QCheck.Test.make ~name:"ring sink bounded, keeps newest" ~count:200
    (QCheck.pair (QCheck.int_range 1 20) (QCheck.int_range 0 100)) (fun (cap, n) ->
      let ring = Sink.create_ring ~capacity:cap in
      let sink = Sink.ring_sink ring in
      for i = 0 to n - 1 do
        sink.Sink.emit (dummy_event i)
      done;
      let events = Sink.ring_events ring in
      let expected = List.init (min cap n) (fun i -> n - min cap n + i) in
      Sink.ring_length ring = min cap n
      && List.length events = min cap n
      && Sink.ring_dropped ring = max 0 (n - cap)
      && List.map (fun (e : Event.t) -> e.Event.block) events = expected)

let test_sink_jsonl_and_tee () =
  let path = Filename.temp_file "flopt_obs" ".jsonl" in
  let oc = open_out path in
  let ring = Sink.create_ring ~capacity:8 in
  let sink = Sink.tee (Sink.jsonl oc) (Sink.ring_sink ring) in
  for i = 0 to 4 do
    sink.Sink.emit (dummy_event i)
  done;
  sink.Sink.flush ();
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  check "one line per event" 5 (List.length !lines);
  check "tee reached the ring too" 5 (Sink.ring_length ring);
  List.iter
    (fun line ->
      checkb "line is a json object" true
        (String.length line > 2 && line.[0] = '{' && line.[String.length line - 1] = '}'))
    !lines;
  checkb "null sink is null" true (Sink.is_null Sink.null);
  checkb "ring sink is not null" false (Sink.is_null (Sink.ring_sink ring))

exception Simulated_crash

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

let test_with_jsonl_crash_safe () =
  let path = Filename.temp_file "flopt_crash" ".jsonl" in
  (* the run dies mid-trace; the sink must still leave a complete prefix *)
  (try
     Sink.with_jsonl path (fun sink ->
         for i = 0 to 9 do
           sink.Sink.emit (dummy_event i);
           if i = 6 then raise Simulated_crash
         done)
   with Simulated_crash -> ());
  let lines = read_lines path in
  check "every emitted event on disk" 7 (List.length lines);
  checkb "no temp file left behind" false (Sys.file_exists (path ^ ".part"));
  List.iteri
    (fun i line ->
      match Event.of_json line with
      | Ok e -> check "line parses back" i e.Event.block
      | Error msg -> Alcotest.failf "truncated line %d: %s" i msg)
    lines;
  Sys.remove path;
  (* the normal path returns f's value and closes the channel *)
  let path2 = Filename.temp_file "flopt_ok" ".jsonl" in
  let n =
    Sink.with_jsonl path2 (fun sink ->
        sink.Sink.emit (dummy_event 0);
        41 + 1)
  in
  check "result forwarded" 42 n;
  check "one line" 1 (List.length (read_lines path2));
  Sys.remove path2

(* ---- Span --------------------------------------------------------------- *)

let test_span_records () =
  let m = Metrics.create () in
  let now = ref 0. in
  let clock () = !now in
  let s = Span.start ~metrics:m ~clock "phase" in
  now := 125.;
  checkf "elapsed" 125. (Span.stop s);
  ignore (Span.with_ ~metrics:m ~clock "phase" (fun () -> now := !now +. 75.));
  match Metrics.find_histogram m "span.phase" with
  | Some h ->
    check "two samples" 2 (Histogram.count h);
    checkf "total" 200. (Histogram.sum h)
  | None -> Alcotest.fail "span histogram missing"

(* ---- Hierarchy events vs. stats (satellite: trace consistency) ---------- *)

let count_events events pred = List.length (List.filter pred events)

(* valid (io_nodes, storage_nodes) pairs under the even-nesting constraint *)
let topo_shapes = [ (1, 1); (2, 1); (2, 2); (4, 2) ]

let hierarchy_case_arb =
  let open QCheck in
  let gen =
    Gen.(
      oneofl topo_shapes >>= fun (io_nodes, storage_nodes) ->
      oneofl [ 1; 2 ] >>= fun compute_per_io ->
      int_range 2 4 >>= fun io_cache ->
      int_range 2 8 >>= fun st_cache ->
      oneofl [ Hierarchy.Inclusive; Hierarchy.Demote_exclusive ] >>= fun protocol ->
      int_range 0 2 >>= fun readahead ->
      list_size (int_range 1 150)
        (pair (int_range 0 ((io_nodes * compute_per_io) - 1))
           (pair (int_range 0 2) (int_range 0 19)))
      >>= fun accesses ->
      return (io_nodes, storage_nodes, compute_per_io, io_cache, st_cache, protocol,
              readahead, accesses))
  in
  make
    ~print:(fun (io, st, cpi, ic, sc, proto, ra, accesses) ->
      Printf.sprintf "io=%d st=%d cpi=%d caches=(%d,%d) proto=%s ra=%d n=%d" io st cpi ic
        sc
        (match proto with Hierarchy.Inclusive -> "incl" | _ -> "demote")
        ra (List.length accesses))
    gen

let prop_hierarchy_events_match_stats =
  QCheck.Test.make ~name:"hierarchy events are consistent with stats" ~count:100
    hierarchy_case_arb
    (fun (io_nodes, storage_nodes, compute_per_io, io_cache, st_cache, protocol,
          readahead, accesses) ->
      let topo =
        Topology.make ~compute_nodes:(io_nodes * compute_per_io) ~io_nodes ~storage_nodes
          ~block_elems:4 ~io_cache_blocks:io_cache ~storage_cache_blocks:st_cache ()
      in
      let ring = Sink.create_ring ~capacity:65536 in
      let h = Hierarchy.create ~protocol ~readahead ~sink:(Sink.ring_sink ring) topo in
      List.iter
        (fun (thread, (file, index)) ->
          Hierarchy.access h ~thread (Block.make ~file ~index))
        accesses;
      let events = Sink.ring_events ring in
      checkb "ring large enough for the whole trace" true (Sink.ring_dropped ring = 0);
      let layer_ok layer stats_of nodes =
        List.init nodes Fun.id
        |> List.for_all (fun node ->
               let s : Stats.t = stats_of node in
               let c kind =
                 count_events events (fun (e : Event.t) ->
                     e.Event.kind = kind && e.Event.layer = layer && e.Event.node = node)
               in
               c Event.Hit = s.Stats.hits
               && c Event.Miss = s.Stats.misses
               && c Event.Hit + c Event.Miss
                  = count_events events (fun (e : Event.t) ->
                        (e.Event.kind = Event.Hit || e.Event.kind = Event.Miss)
                        && e.Event.layer = layer && e.Event.node = node)
               && s.Stats.hits + s.Stats.misses = s.Stats.accesses
               && c Event.Evict = s.Stats.evictions
               && c Event.Demote = s.Stats.demotions
               && c Event.Prefetch = s.Stats.prefetches)
      in
      let accesses_emitted =
        count_events events (fun (e : Event.t) -> e.Event.kind = Event.Access)
      in
      layer_ok Event.L1 (Hierarchy.l1_stats_of h) io_nodes
      && layer_ok Event.L2 (Hierarchy.l2_stats_of h) storage_nodes
      && accesses_emitted = (Hierarchy.l1_stats h).Stats.accesses
      && count_events events (fun (e : Event.t) -> e.Event.kind = Event.Disk_read)
         = Hierarchy.disk_reads h
      && (Hierarchy.l2_stats h).Stats.prefetch_hits = Hierarchy.prefetch_hits h
      && Hierarchy.prefetch_hits h <= Hierarchy.prefetches h)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_histogram_add_merge_preserves_count;
      prop_histogram_add_many_equals_repeated_add;
      prop_histogram_bucket_monotone;
      prop_event_json_roundtrip;
      prop_metrics_merge_commutative;
      prop_metrics_merge_associative;
      prop_ring_bounded_and_newest;
      prop_hierarchy_events_match_stats;
    ]

let suite =
  [
    ("histogram basics", `Quick, test_histogram_basics);
    ("histogram add_many validation", `Quick, test_histogram_add_many_validation);
    ("histogram percentile ordering", `Quick, test_histogram_percentile_order);
    ("histogram edge shapes", `Quick, test_histogram_edge_shapes);
    ("event json parsing", `Quick, test_event_json_parse);
    ("crash-safe jsonl sink", `Quick, test_with_jsonl_crash_safe);
    ("metrics registry", `Quick, test_metrics_registry);
    ("metrics merge copies", `Quick, prop_metrics_merge_leaves_inputs);
    ("event json encoding", `Quick, test_event_json);
    ("jsonl + tee sinks", `Quick, test_sink_jsonl_and_tee);
    ("span phase timing", `Quick, test_span_records);
  ]
  @ qsuite

(* ---- gauges -------------------------------------------------------------- *)

(* last-write-wins cell semantics plus the merge and render contracts the
   fidelity layer's drift gauges rely on *)
let gauge_value_gen =
  (* exactly-representable floats so set/read/merge equality is meaningful *)
  QCheck.Gen.(map2 (fun m e -> ldexp (float_of_int m) e) (int_range (-4096) 4096) (int_range (-8) 8))

let prop_gauge_roundtrip =
  QCheck.Test.make ~name:"gauge set/read/merge round-trips" ~count:200
    (QCheck.make QCheck.Gen.(pair gauge_value_gen gauge_value_gen))
    (fun (v1, v2) ->
      let r1 = Metrics.create () and r2 = Metrics.create () in
      let g1 = Metrics.gauge r1 ~labels:[ ("app", "x") ] "fidelity.drift" in
      Metrics.set_gauge g1 v1;
      (* re-registration returns the same cell *)
      let g1' = Metrics.gauge r1 ~labels:[ ("app", "x") ] "fidelity.drift" in
      Metrics.set_gauge g1' v1;
      let g2 = Metrics.gauge r2 ~labels:[ ("app", "x") ] "fidelity.drift" in
      Metrics.set_gauge g2 v2;
      Metrics.gauge_value g1 = v1
      && Metrics.find r1 ~labels:[ ("app", "x") ] "fidelity.drift" = Some (Metrics.Gauge v1)
      && (* merge takes the max, in either order *)
      Metrics.find (Metrics.merge r1 r2) ~labels:[ ("app", "x") ] "fidelity.drift"
         = Some (Metrics.Gauge (Float.max v1 v2))
      && Metrics.find (Metrics.merge r2 r1) ~labels:[ ("app", "x") ] "fidelity.drift"
         = Some (Metrics.Gauge (Float.max v1 v2)))

let test_gauge_render () =
  let r = Metrics.create () in
  Metrics.set_gauge (Metrics.gauge r ~labels:[ ("app", "toy") ] "fidelity.max_rel_drift") 0.5;
  Metrics.set_gauge (Metrics.gauge r "plain") 3.;
  let rendered = Format.asprintf "%a" Metrics.pp r in
  let contains needle =
    let n = String.length needle and h = String.length rendered in
    let rec go i = i + n <= h && (String.sub rendered i n = needle || go (i + 1)) in
    go 0
  in
  checkb "labeled gauge line" true
    (contains "fidelity.max_rel_drift{app=toy} = 0.5");
  checkb "unlabeled gauge line" true (contains "plain = 3")

let suite =
  suite
  @ [ ("gauge render", `Quick, test_gauge_render) ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_gauge_roundtrip ]
