(* The machine-readable bench trajectory: JSON tree parse/print, manifest
   schema round-trip and validation, and bench-diff's regression gating. *)

open Flo_engine
module B = Bench_schema
module J = B.Json

let checkb = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* -- Json ---------------------------------------------------------------- *)

let test_json_roundtrip_by_hand () =
  let t =
    J.Obj
      [
        ("s", J.Str "he\"llo\n");
        ("n", J.Num 1.5);
        ("i", J.Num 42.);
        ("b", J.Bool true);
        ("z", J.Null);
        ("l", J.Arr [ J.Num 1.; J.Arr []; J.Obj [] ]);
      ]
  in
  checkb "roundtrip" true (J.parse (J.to_string t) = t);
  check_str "integers print bare" "42" (J.to_string (J.Num 42.))

let test_json_parse_accepts_whitespace () =
  let t = J.parse "  {\n  \"a\" : [ 1 , 2 ] ,\n \"b\" : null }  " in
  checkb "fields" true
    (t = J.Obj [ ("a", J.Arr [ J.Num 1.; J.Num 2. ]); ("b", J.Null) ])

let test_json_parse_rejects_garbage () =
  List.iter
    (fun s ->
      match J.parse s with
      | exception J.Parse _ -> ()
      | v -> Alcotest.failf "accepted %S as %s" s (J.to_string v))
    [ ""; "{"; "{\"a\":}"; "[1,]"; "tru"; "{} x"; "\"unterminated" ]

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun n -> J.Num (float_of_int n)) small_signed_int;
        map (fun s -> J.Str s) (string_size ~gen:printable (int_bound 8));
      ]
  in
  let rec tree depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (2, scalar);
          (1, map (fun l -> J.Arr l) (list_size (int_bound 4) (tree (depth - 1))));
          ( 1,
            map
              (fun kvs -> J.Obj kvs)
              (list_size (int_bound 4)
                 (pair (string_size ~gen:printable (int_bound 6)) (tree (depth - 1))))
          );
        ]
  in
  tree 3

let prop_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Json.parse inverts Json.to_string"
    (QCheck.make json_gen)
    (fun t -> J.parse (J.to_string t) = t)

(* -- parser robustness ---------------------------------------------------- *)

(* arbitrary byte strings, not just printable ones: the manifest parser is
   the only component that reads files an attacker (or a crashed writer)
   controls, so it must be total — structured [Error], never an exception *)
let hostile_string_gen =
  QCheck.Gen.(
    frequency
      [
        (* raw bytes *)
        (3, string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 64));
        (* json-ish prefixes that exercise every parser state *)
        ( 2,
          map
            (fun (a, b) -> a ^ b)
            (pair
               (oneofl
                  [ "{"; "["; "{\"a\":"; "[1,"; "\""; "\\"; "tru"; "-"; "1e";
                    "{\"schema\":\"flopt-bench\","; "nul" ])
               (string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 32)) ) );
      ])

let prop_parse_string_never_raises =
  QCheck.Test.make ~count:1000
    ~name:"Bench_schema.parse_string is total on arbitrary bytes"
    (QCheck.make ~print:String.escaped hostile_string_gen)
    (fun s ->
      match B.parse_string s with Ok _ | Error _ -> true)

let test_parser_depth_limited () =
  (* a hostile "[[[[..." must come back as a structured error, not blow the
     stack; depths inside the cap still parse *)
  let deep n = String.make n '[' ^ "1" ^ String.make n ']' in
  (match B.parse_string (deep 100_000) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted 100k-deep nesting");
  (match J.parse (deep 100_000) with
  | exception J.Parse _ -> ()
  | _ -> Alcotest.fail "Json.parse accepted 100k-deep nesting");
  checkb "shallow nesting still parses" true
    (match J.parse (deep 20) with Arr _ -> true | _ -> false)

let fixture name =
  if Sys.file_exists (Filename.concat "data" name) then Filename.concat "data" name
  else Filename.concat "test/data" name

let test_hostile_fixtures_load_to_errors () =
  List.iter
    (fun name ->
      match B.load (fixture name) with
      | Error e -> checkb (name ^ " has a message") true (String.length e > 0)
      | Ok _ -> Alcotest.failf "loaded %s as a valid manifest" name)
    [ "truncated_manifest.json"; "hostile_manifest.json" ]

(* -- manifest schema ------------------------------------------------------ *)

let metric ?(gated = true) app name value =
  { B.app; name; value; unit_ = "us"; gated }

let manifest metrics =
  B.make ~apps:[ "a"; "b" ] ~sample:1 ~block_elems:64 ~threads:64 metrics

let test_manifest_roundtrip () =
  let m =
    manifest [ metric "a" "elapsed_us.inter" 12.5; metric ~gated:false "a" "wall_ns" 3e9 ]
  in
  let path = Filename.temp_file "flopt_bench" ".json" in
  B.save path m;
  (match B.load path with
  | Ok m' -> checkb "roundtrip" true (m = m')
  | Error e -> Alcotest.failf "load failed: %s" e);
  Sys.remove path

let test_validate_rejects () =
  let dup = metric "a" "x" 1. in
  (match B.validate (manifest [ dup; dup ]) with
  | Error e -> checkb "duplicate" true (String.length e > 0)
  | Ok () -> Alcotest.fail "duplicate metric accepted");
  (match B.validate { (manifest []) with B.version = 99 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "future version accepted");
  (match B.validate (manifest [ metric "a" "x" Float.nan ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "NaN accepted")

let test_save_is_atomic () =
  (* a crash between open and rename must never corrupt an existing
     manifest: the data goes to path.tmp first *)
  let path = Filename.temp_file "flopt_bench" ".json" in
  let good = manifest [ metric "a" "x" 1. ] in
  B.save path good;
  (* stale garbage from a previous crashed writer is simply overwritten *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc "{ truncated garb";
  close_out oc;
  let better = manifest [ metric "a" "x" 2. ] in
  B.save path better;
  (match B.load path with
  | Ok m -> checkb "new manifest replaces old" true (m = better)
  | Error e -> Alcotest.failf "load after save: %s" e);
  checkb "tmp file consumed by rename" false (Sys.file_exists tmp);
  (* a save that cannot even create its temp file raises and leaves the
     published manifest untouched *)
  Unix.mkdir tmp 0o755;
  (match B.save path good with
  | () -> Alcotest.fail "save into blocked tmp path succeeded"
  | exception Sys_error _ -> ());
  (match B.load path with
  | Ok m -> checkb "failed save left manifest intact" true (m = better)
  | Error e -> Alcotest.failf "manifest corrupted by failed save: %s" e);
  Unix.rmdir tmp;
  Sys.remove path

let test_load_reports_errors () =
  (match B.load "/nonexistent/bench.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file loaded");
  let path = Filename.temp_file "flopt_bench" ".json" in
  let oc = open_out path in
  output_string oc "{\"schema\":\"other\",\"version\":1}";
  close_out oc;
  (match B.load path with
  | Error e -> checkb "names wrong schema" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "wrong schema loaded");
  Sys.remove path

(* -- diffing and gating ---------------------------------------------------- *)

let test_self_diff_clean () =
  let m = manifest [ metric "a" "x" 10.; metric "a" "y" 0. ] in
  let d = B.diff ~old_:m ~new_:m in
  check_int "changes" 2 (List.length d.B.changes);
  check_int "regressions" 0 (List.length (B.regressions d));
  check_int "improvements" 0 (List.length (B.improvements d));
  checkb "nothing added/removed" true (d.B.added = [] && d.B.removed = [])

let test_injected_slowdown_regresses () =
  let old_ = manifest [ metric "a" "elapsed_us.inter" 100.; metric "a" "m" 5. ] in
  let new_ = manifest [ metric "a" "elapsed_us.inter" 200.; metric "a" "m" 5. ] in
  let d = B.diff ~old_ ~new_ in
  let r = B.regressions ~threshold:25. d in
  check_int "one regression" 1 (List.length r);
  let c = List.hd r in
  check_str "which" "elapsed_us.inter" c.B.c_name;
  Alcotest.(check (float 1e-9)) "plus 100%" 100. c.B.delta_pct

let test_threshold_masks_small_changes () =
  let old_ = manifest [ metric "a" "x" 100. ] in
  let new_ = manifest [ metric "a" "x" 110. ] in
  let d = B.diff ~old_ ~new_ in
  check_int "gated at 0%" 1 (List.length (B.regressions d));
  check_int "masked at 25%" 0 (List.length (B.regressions ~threshold:25. d))

let test_ungated_never_gates () =
  let old_ = manifest [ metric ~gated:false "a" "wall_ns" 100. ] in
  let new_ = manifest [ metric ~gated:false "a" "wall_ns" 1000. ] in
  let d = B.diff ~old_ ~new_ in
  check_int "wall time ignored" 0 (List.length (B.regressions d))

let test_zero_baseline_special_case () =
  (* a cost that was 0 and became nonzero is an infinite-percent regression,
     not a divide-by-zero *)
  let old_ = manifest [ metric "a" "drift" 0. ] in
  let new_ = manifest [ metric "a" "drift" 1. ] in
  let d = B.diff ~old_ ~new_ in
  let r = B.regressions ~threshold:1000. d in
  check_int "still regressed" 1 (List.length r);
  checkb "infinite" true ((List.hd r).B.delta_pct = infinity)

let test_added_removed () =
  let old_ = manifest [ metric "a" "x" 1.; metric "a" "gone" 2. ] in
  let new_ = manifest [ metric "a" "x" 1.; metric "a" "fresh" 3. ] in
  let d = B.diff ~old_ ~new_ in
  check_int "added" 1 (List.length d.B.added);
  check_int "removed" 1 (List.length d.B.removed);
  check_str "added name" "fresh" (List.hd d.B.added).B.name;
  check_str "removed name" "gone" (List.hd d.B.removed).B.name

let prop_self_diff_never_regresses =
  QCheck.Test.make ~count:200 ~name:"self-diff has no regressions"
    QCheck.(small_list (pair (int_bound 1000) bool))
    (fun cells ->
      let metrics =
        List.mapi
          (fun i (v, gated) -> metric ~gated "a" (Printf.sprintf "m%d" i) (float_of_int v))
          cells
      in
      let m = manifest metrics in
      let d = B.diff ~old_:m ~new_:m in
      B.regressions d = [] && B.improvements d = [])

(* -- bench history --------------------------------------------------------- *)

module H = Bench_history

let pt name value = { H.name; value; unit_ = "x" }

let history_of rows =
  List.fold_left
    (fun h (commit, points) ->
      match H.upsert h ~commit points with
      | Ok h -> h
      | Error e -> Alcotest.failf "upsert %s: %s" commit e)
    H.empty rows

let test_history_valid_commit () =
  List.iter
    (fun c -> checkb c true (H.valid_commit c))
    [ "a"; "abc123"; "v1.2.3-rc1"; "deadbeef"; String.make 64 'f' ];
  List.iter
    (fun c -> checkb (String.escaped c) false (H.valid_commit c))
    [ ""; "a b"; "a/b"; "a\nb"; "\x00"; String.make 65 'f'; "caf\xc3\xa9" ]

let test_history_upsert_appends_and_replaces () =
  let h = history_of [ ("c1", [ pt "m" 1. ]); ("c2", [ pt "m" 2. ]) ] in
  check_int "two rows" 2 (List.length h.H.rows);
  (* re-recording c1 replaces in place: order stays c1, c2 *)
  let h' = history_of [ ("c1", [ pt "m" 9. ]); ("c2", [ pt "m" 2. ]) ] in
  let h'' =
    match H.upsert h ~commit:"c1" [ pt "m" 9. ] with
    | Ok h -> h
    | Error e -> Alcotest.failf "re-upsert: %s" e
  in
  checkb "replace preserves position" true (h' = h'');
  check_str "first row still c1" "c1" (List.hd h''.H.rows).H.commit

let test_history_upsert_rejects () =
  List.iter
    (fun (label, commit, points) ->
      match H.upsert H.empty ~commit points with
      | Error e -> checkb (label ^ " has message") true (String.length e > 0)
      | Ok _ -> Alcotest.failf "%s accepted" label)
    [
      ("bad commit", "a b", [ pt "m" 1. ]);
      ("empty points", "c1", []);
      ("duplicate point name", "c1", [ pt "m" 1.; pt "m" 2. ]);
      ("nan value", "c1", [ pt "m" Float.nan ]);
      ("infinite value", "c1", [ pt "m" Float.infinity ]);
    ]

let test_history_idempotent_roundtrip () =
  (* same inputs -> byte-equal file, and re-recording a commit from the
     same points leaves the saved history byte-identical *)
  let h =
    history_of
      [
        ("c1", [ pt "rps" 100.; pt "wall" 2. ]);
        ("c2", [ pt "rps" 120.; pt "wall" 1.9 ]);
      ]
  in
  let path = Filename.temp_file "flopt_hist" ".json" in
  H.save path h;
  let read_all p =
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let first = read_all path in
  (match H.upsert h ~commit:"c2" [ pt "rps" 120.; pt "wall" 1.9 ] with
  | Ok h' -> H.save path h'
  | Error e -> Alcotest.failf "re-record: %s" e);
  check_str "idempotent re-record" first (read_all path);
  (match H.load path with
  | Ok h' -> checkb "load inverts save" true (h = h')
  | Error e -> Alcotest.failf "load: %s" e);
  Sys.remove path

let test_history_series_has_gaps () =
  let h =
    history_of
      [
        ("c1", [ pt "rps" 1. ]);
        ("c2", [ pt "wall" 2. ]);
        ("c3", [ pt "rps" 3. ]);
      ]
  in
  checkb "gap row skipped, not zeroed" true
    (H.series h "rps" = [ ("c1", 1.); ("c3", 3.) ]);
  checkb "absent series empty" true (H.series h "nope" = [])

let test_history_parse_rejects_corrupt () =
  List.iter
    (fun (label, s) ->
      match H.parse_string s with
      | Error e -> checkb (label ^ " has message") true (String.length e > 0)
      | Ok _ -> Alcotest.failf "%s accepted" label)
    [
      ("garbage", "{ not json");
      ("wrong schema", "{\"schema\":\"flopt-bench\",\"version\":1,\"rows\":[]}");
      ( "future version",
        "{\"schema\":\"flopt-bench-history\",\"version\":99,\"rows\":[]}" );
      ( "bad commit id",
        "{\"schema\":\"flopt-bench-history\",\"version\":1,\"rows\":[{\"commit\":\"a b\",\"points\":[{\"name\":\"m\",\"value\":1,\"unit\":\"x\"}]}]}"
      );
      ( "duplicate commit",
        "{\"schema\":\"flopt-bench-history\",\"version\":1,\"rows\":[{\"commit\":\"c\",\"points\":[{\"name\":\"m\",\"value\":1,\"unit\":\"x\"}]},{\"commit\":\"c\",\"points\":[{\"name\":\"m\",\"value\":2,\"unit\":\"x\"}]}]}"
      );
    ]

let test_history_metrics_of_manifest () =
  let m =
    manifest
      [
        { B.app = "a"; name = "tracegen_elems_per_sec.inter"; value = 100.;
          unit_ = "elem/s"; gated = false };
        { B.app = "b"; name = "tracegen_elems_per_sec.inter"; value = 400.;
          unit_ = "elem/s"; gated = false };
        { B.app = "_suite"; name = "suite_wall_s.seq"; value = 3.5;
          unit_ = "s"; gated = false };
        { B.app = "_traffic"; name = "modeled_rps"; value = 1234.;
          unit_ = "req/s"; gated = false };
        { B.app = "_slo"; name = "fleet_burn_rate"; value = 0.25;
          unit_ = "x"; gated = false };
      ]
  in
  let points = H.metrics_of_manifest m in
  let value name =
    match List.find_opt (fun p -> p.H.name = name) points with
    | Some p -> p.H.value
    | None -> Alcotest.failf "missing point %s" name
  in
  (* geomean of 100 and 400 is 200 *)
  checkb "tracegen geomean" true
    (Float.abs (value "tracegen_elems_per_sec" -. 200.) < 1e-6);
  checkb "suite wall" true (value "suite_wall_s" = 3.5);
  checkb "modeled rps" true (value "modeled_rps" = 1234.);
  checkb "slo burn" true (value "slo_burn_rate" = 0.25);
  (* a manifest without _slo simply yields no burn point *)
  let bare = manifest [ metric "a" "elapsed_us.inter" 1. ] in
  checkb "missing series absent, not zero" true
    (H.metrics_of_manifest bare = [])

let test_history_page_deterministic () =
  let h =
    history_of
      [
        ("c1", [ pt "modeled_rps" 100.; pt "suite_wall_s" 2. ]);
        ("c2", [ pt "modeled_rps" 140.; pt "suite_wall_s" 1.8 ]);
        ("c3", [ pt "modeled_rps" 130. ]);
      ]
  in
  let page = H.render_page h in
  check_str "byte-equal on re-render" page (H.render_page h);
  let contains needle =
    let n = String.length needle and l = String.length page in
    let rec go i = i + n <= l && (String.sub page i n = needle || go (i + 1)) in
    go 0
  in
  checkb "no javascript" false (contains "<script");
  checkb "inline svg" true (contains "<svg");
  checkb "commits appear" true (contains "c1" && contains "c3");
  checkb "table view present" true (contains "<table");
  checkb "dark mode selected" true (contains "prefers-color-scheme")

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_json_roundtrip; prop_parse_string_never_raises;
      prop_self_diff_never_regresses;
    ]

let suite =
  [
    ("json roundtrip by hand", `Quick, test_json_roundtrip_by_hand);
    ("json whitespace", `Quick, test_json_parse_accepts_whitespace);
    ("json rejects garbage", `Quick, test_json_parse_rejects_garbage);
    ("parser depth limited", `Quick, test_parser_depth_limited);
    ("hostile fixtures load to errors", `Quick, test_hostile_fixtures_load_to_errors);
    ("manifest roundtrip", `Quick, test_manifest_roundtrip);
    ("validate rejects bad manifests", `Quick, test_validate_rejects);
    ("save is atomic", `Quick, test_save_is_atomic);
    ("load reports errors", `Quick, test_load_reports_errors);
    ("self-diff is clean", `Quick, test_self_diff_clean);
    ("injected 2x slowdown regresses", `Quick, test_injected_slowdown_regresses);
    ("threshold masks small changes", `Quick, test_threshold_masks_small_changes);
    ("ungated metrics never gate", `Quick, test_ungated_never_gates);
    ("zero-baseline special case", `Quick, test_zero_baseline_special_case);
    ("added/removed metrics", `Quick, test_added_removed);
    ("history commit-id validation", `Quick, test_history_valid_commit);
    ("history upsert appends/replaces", `Quick, test_history_upsert_appends_and_replaces);
    ("history upsert rejects bad rows", `Quick, test_history_upsert_rejects);
    ("history record is idempotent", `Quick, test_history_idempotent_roundtrip);
    ("history series keeps gaps", `Quick, test_history_series_has_gaps);
    ("history rejects corrupt files", `Quick, test_history_parse_rejects_corrupt);
    ("history distills manifests", `Quick, test_history_metrics_of_manifest);
    ("history page is deterministic", `Quick, test_history_page_deterministic);
  ]
  @ qsuite
