open Flo_storage

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let b ?(file = 0) index = Block.make ~file ~index

(* ---- Block ----------------------------------------------------------- *)

let test_block () =
  let x = Block.make ~file:2 ~index:5 in
  check "file" 2 (Block.file x);
  check "index" 5 (Block.index x);
  checkb "equal" true (Block.equal x (Block.make ~file:2 ~index:5));
  checkb "ordering by file first" true (Block.compare (b ~file:0 9) (b ~file:1 0) < 0);
  checkb "of_offset" true (Block.equal (Block.of_offset ~block_elems:64 ~file:1 130) (b ~file:1 2));
  Alcotest.check_raises "negative" (Invalid_argument "Block.make: negative component")
    (fun () -> ignore (Block.make ~file:(-1) ~index:0))

(* ---- Stats ----------------------------------------------------------- *)

let test_stats () =
  let s = Stats.create () in
  Stats.record_hit s;
  Stats.record_hit s;
  Stats.record_miss s;
  Stats.record_eviction s;
  Stats.record_demotion s;
  check "accesses" 3 s.Stats.accesses;
  check "hits" 2 s.Stats.hits;
  check "misses" 1 s.Stats.misses;
  Alcotest.(check (float 1e-9)) "miss rate" (1. /. 3.) (Stats.miss_rate s);
  Alcotest.(check (float 1e-9)) "hit rate" (2. /. 3.) (Stats.hit_rate s);
  let m = Stats.merge [ s; s ] in
  check "merged accesses" 6 m.Stats.accesses;
  Stats.reset s;
  check "reset" 0 s.Stats.accesses;
  Alcotest.(check (float 1e-9)) "empty miss rate" 0. (Stats.miss_rate (Stats.create ()))

(* ---- Dll ------------------------------------------------------------- *)

let test_dll () =
  let l = Dll.create () in
  checkb "empty" true (Dll.is_empty l);
  let n1 = Dll.push_front l 1 in
  let _n2 = Dll.push_front l 2 in
  let n3 = Dll.push_back l 3 in
  check "length" 3 (Dll.length l);
  (* order: 2, 1, 3 *)
  let collect () =
    let acc = ref [] in
    Dll.iter (fun v -> acc := v :: !acc) l;
    List.rev !acc
  in
  checkb "order" true (collect () = [ 2; 1; 3 ]);
  Dll.move_front l n3;
  checkb "after move_front" true (collect () = [ 3; 2; 1 ]);
  Dll.remove l n1;
  check "after remove" 2 (Dll.length l);
  checkb "pop_back" true (Dll.pop_back l = Some 2);
  checkb "peek_back" true (Option.map Dll.value (Dll.peek_back l) = Some 3);
  Alcotest.check_raises "stale node" (Invalid_argument "Dll.remove: node not in this list")
    (fun () -> Dll.remove l n1)

(* ---- policy conformance (shared across implementations) -------------- *)

let policy_conformance name (factory : Policy.factory) =
  let test () =
    let c = factory ~capacity:3 in
    checkb "miss on empty" false (c.Policy.touch (b 1));
    checkb "no eviction below capacity" true (c.Policy.insert (b 1) = None);
    ignore (c.Policy.insert (b 2));
    ignore (c.Policy.insert (b 3));
    check "size at capacity" 3 (c.Policy.size ());
    checkb "hit" true (c.Policy.touch (b 2));
    checkb "contains no refresh" true (c.Policy.contains (b 1));
    (* inserting a resident block evicts nothing *)
    checkb "reinsert no evict" true (c.Policy.insert (b 3) = None);
    check "size stable" 3 (c.Policy.size ());
    (* overflow evicts exactly one resident block *)
    (match c.Policy.insert (b 4) with
    | Some victim -> checkb "victim was resident" true (List.mem (Block.index victim) [ 1; 2; 3 ])
    | None -> Alcotest.fail "expected an eviction");
    check "size after eviction" 3 (c.Policy.size ());
    checkb "remove" true (c.Policy.remove (b 4));
    checkb "remove absent" false (c.Policy.remove (b 99));
    check "size after remove" 2 (c.Policy.size ());
    c.Policy.clear ();
    check "cleared" 0 (c.Policy.size ());
    checkb "miss after clear" false (c.Policy.touch (b 2))
  in
  (name ^ " conformance", `Quick, test)

let test_lru_order () =
  let c = Lru.create ~capacity:3 in
  ignore (c.Policy.insert (b 1));
  ignore (c.Policy.insert (b 2));
  ignore (c.Policy.insert (b 3));
  ignore (c.Policy.touch (b 1));
  (* LRU order now: 2 (oldest), 3, 1 *)
  checkb "evicts LRU" true (c.Policy.insert (b 4) = Some (b 2));
  checkb "then 3" true (c.Policy.insert (b 5) = Some (b 3))

let test_lru_insert_cold () =
  let c = Lru.create ~capacity:2 in
  ignore (c.Policy.insert (b 1));
  ignore (c.Policy.insert_cold (b 2));
  (* 2 sits at the LRU end despite being inserted last *)
  checkb "cold is first victim" true (c.Policy.insert (b 3) = Some (b 2))

let test_fifo_ignores_recency () =
  let c = Fifo.create ~capacity:2 in
  ignore (c.Policy.insert (b 1));
  ignore (c.Policy.insert (b 2));
  ignore (c.Policy.touch (b 1));
  checkb "evicts insertion order" true (c.Policy.insert (b 3) = Some (b 1))

let test_fifo_remove_stale_queue () =
  let c = Fifo.create ~capacity:2 in
  ignore (c.Policy.insert (b 1));
  ignore (c.Policy.insert (b 2));
  ignore (c.Policy.remove (b 1));
  ignore (c.Policy.insert (b 3));
  (* 1's stale queue entry must be skipped: victim is 2 *)
  checkb "skips removed" true (c.Policy.insert (b 4) = Some (b 2))

let test_clock_second_chance () =
  let c = Clock.create ~capacity:2 in
  ignore (c.Policy.insert (b 1));
  ignore (c.Policy.insert (b 2));
  ignore (c.Policy.touch (b 1));
  ignore (c.Policy.touch (b 2));
  (* all referenced: the hand clears bits and evicts the first it re-reaches *)
  (match c.Policy.insert (b 3) with
  | Some _ -> ()
  | None -> Alcotest.fail "expected eviction");
  check "size" 2 (c.Policy.size ())

let test_mq_frequency_protection () =
  let c = Mq.create ~capacity:4 in
  (* make block 1 hot *)
  ignore (c.Policy.insert (b 1));
  for _ = 1 to 8 do
    ignore (c.Policy.touch (b 1))
  done;
  ignore (c.Policy.insert (b 2));
  ignore (c.Policy.insert (b 3));
  ignore (c.Policy.insert (b 4));
  (* a cold insert should evict a cold block, not the hot one *)
  (match c.Policy.insert (b 5) with
  | Some victim -> checkb "hot block survives" false (Block.equal victim (b 1))
  | None -> Alcotest.fail "expected eviction");
  checkb "hot still resident" true (c.Policy.contains (b 1))

let test_mq_history () =
  let c = Mq.create ~capacity:2 in
  ignore (c.Policy.insert (b 1));
  for _ = 1 to 6 do
    ignore (c.Policy.touch (b 1))
  done;
  (* evict 1, then re-fetch: remembered frequency should place it high *)
  ignore (c.Policy.insert (b 2));
  ignore (c.Policy.insert (b 3));
  ignore (c.Policy.insert (b 1));
  checkb "refetched" true (c.Policy.contains (b 1))

(* ---- Disk ------------------------------------------------------------ *)

let test_disk () =
  let d = Disk.create () in
  let first = Disk.service d ~lba:100 in
  checkb "first read seeks" true (first > Disk.default_params.Disk.transfer_us);
  let seq = Disk.service d ~lba:101 in
  Alcotest.(check (float 1e-9)) "sequential costs transfer only"
    Disk.default_params.Disk.transfer_us seq;
  let rand = Disk.service d ~lba:5000 in
  checkb "random read costs more" true (rand > seq);
  check "reads counted" 3 (Disk.reads d);
  checkb "busy time accumulates" true (Disk.busy_us d > 0.);
  check "head follows" 5000 (Disk.head d);
  Disk.reset d;
  check "reset reads" 0 (Disk.reads d);
  Alcotest.check_raises "negative lba" (Invalid_argument "Disk.service: negative lba")
    (fun () -> ignore (Disk.service d ~lba:(-1)))

let test_disk_monotone_seek () =
  let p = Disk.default_params in
  let d1 = Disk.create () in
  let near = Disk.service d1 ~lba:10 in
  let d2 = Disk.create () in
  let far = Disk.service d2 ~lba:100000 in
  checkb "longer seeks cost more" true (far > near);
  ignore p

(* ---- Striping --------------------------------------------------------- *)

let test_striping () =
  check "round robin node" 2 (Striping.storage_node_of ~storage_nodes:4 (b 6));
  check "node wraps" 0 (Striping.storage_node_of ~storage_nodes:4 (b 8));
  check "lba local slot" 2 (Striping.lba_of ~storage_nodes:4 ~file_stride:100 (b 8));
  check "lba includes file base" 103
    (Striping.lba_of ~storage_nodes:4 ~file_stride:100 (Block.make ~file:1 ~index:12));
  let node, lba = Striping.locate ~storage_nodes:4 ~file_stride:100 (b 9) in
  check "locate node" 1 node;
  check "locate lba" 2 lba;
  Alcotest.check_raises "stride overflow"
    (Invalid_argument "Striping.lba_of: file larger than file_stride") (fun () ->
      ignore (Striping.lba_of ~storage_nodes:1 ~file_stride:10 (b 10)))

(* consecutive blocks spread across all nodes *)
let test_striping_balance () =
  let counts = Array.make 4 0 in
  for i = 0 to 99 do
    let n = Striping.storage_node_of ~storage_nodes:4 (b i) in
    counts.(n) <- counts.(n) + 1
  done;
  checkb "balanced" true (Array.for_all (fun c -> c = 25) counts)

(* ---- Topology ---------------------------------------------------------- *)

let test_topology () =
  let t = Topology.default in
  check "threads" 64 (Topology.threads t);
  check "compute per io" 4 (Topology.compute_per_io t);
  check "io per storage" 4 (Topology.io_per_storage t);
  check "threads per io" 4 (Topology.threads_per_io t);
  check "io of compute 5" 1 (Topology.io_of_compute t 5);
  check "nominal storage of io 7" 1 (Topology.nominal_storage_of_io t 7);
  Alcotest.check_raises "uneven nesting"
    (Invalid_argument "Topology.make: compute_nodes not a multiple of io_nodes") (fun () ->
      ignore
        (Topology.make ~compute_nodes:10 ~io_nodes:3 ~storage_nodes:1 ~block_elems:64
           ~io_cache_blocks:8 ~storage_cache_blocks:8 ()))

(* ---- Karma ------------------------------------------------------------- *)

let hint file lo hi accesses = { Karma.file; lo_block = lo; hi_block = hi; accesses }

let test_karma_classes () =
  (* two overlapping hints split into three segments with summed densities *)
  let cls = Karma.classes [ hint 0 0 9 100.; hint 0 5 14 50. ] in
  check "segments" 3 (List.length cls);
  let seg lo = List.find (fun (c : Karma.cls) -> c.Karma.lo = lo) cls in
  Alcotest.(check (float 1e-6)) "first density" 10. (seg 0).Karma.density;
  Alcotest.(check (float 1e-6)) "overlap density" 15. (seg 5).Karma.density;
  Alcotest.(check (float 1e-6)) "tail density" 5. (seg 10).Karma.density;
  check "sizes" 5 (Karma.size (seg 0))

let test_karma_plan_exclusive () =
  (* one io node; dense class pinned at L1, the rest at L2 *)
  let l1_hints = [| [ hint 0 0 3 400.; hint 0 4 19 16. ] |] in
  let plan = Karma.plan ~l1_hints ~l1_capacity:4 ~l2_capacity_total:16 in
  let l1 = Karma.l1_assigned plan ~io:0 in
  let l2 = Karma.l2_assigned plan in
  check "l1 classes" 1 (List.length l1);
  checkb "dense class at l1" true ((List.hd l1).Karma.lo = 0);
  check "l2 classes" 1 (List.length l2);
  checkb "cold class at l2" true ((List.hd l2).Karma.lo = 4);
  (* caches respect the assignment: L1 refuses L2's blocks and vice versa *)
  let c1 = Karma.l1_cache plan ~io:0 in
  let c2 = Karma.l2_cache plan ~storage_nodes:1 in
  checkb "l1 accepts own" true (c1.Policy.insert (b 2) = None && c1.Policy.contains (b 2));
  ignore (c1.Policy.insert (b 10));
  checkb "l1 refuses foreign" false (c1.Policy.contains (b 10));
  ignore (c2.Policy.insert (b 10));
  checkb "l2 accepts own" true (c2.Policy.contains (b 10));
  ignore (c2.Policy.insert (b 2));
  checkb "l2 refuses l1's" false (c2.Policy.contains (b 2))

let test_karma_quota_eviction () =
  let l1_hints = [| [ hint 0 0 3 100. ] |] in
  let plan = Karma.plan ~l1_hints ~l1_capacity:2 ~l2_capacity_total:8 in
  (* class of size 4 does not fit in L1 (no splitting): it goes to L2 *)
  check "l1 empty" 0 (List.length (Karma.l1_assigned plan ~io:0));
  check "l2 holds it" 1 (List.length (Karma.l2_assigned plan))

(* ---- Hierarchy --------------------------------------------------------- *)

let tiny_topology =
  Topology.make ~compute_nodes:4 ~io_nodes:2 ~storage_nodes:1 ~block_elems:4
    ~io_cache_blocks:2 ~storage_cache_blocks:4 ()

let test_hierarchy_inclusive_path () =
  let h = Hierarchy.create tiny_topology in
  Hierarchy.access h ~thread:0 (b 0);
  (* cold: miss at both layers, one disk read *)
  check "l1 miss" 1 (Hierarchy.l1_stats h).Stats.misses;
  check "l2 miss" 1 (Hierarchy.l2_stats h).Stats.misses;
  check "disk read" 1 (Hierarchy.disk_reads h);
  Hierarchy.access h ~thread:0 (b 0);
  check "l1 hit" 1 (Hierarchy.l1_stats h).Stats.hits;
  check "still one disk read" 1 (Hierarchy.disk_reads h);
  (* thread 2 is on the other I/O node: misses L1 but hits shared L2 *)
  Hierarchy.access h ~thread:2 (b 0);
  check "l2 hit from other client" 1 (Hierarchy.l2_stats h).Stats.hits;
  check "no extra disk read" 1 (Hierarchy.disk_reads h);
  checkb "clock advanced" true (Hierarchy.thread_clock_us h 0 > 0.)

let test_hierarchy_routing () =
  let h = Hierarchy.create tiny_topology in
  check "thread 0 -> io 0" 0 (Hierarchy.io_node_of_thread h 0);
  check "thread 3 -> io 1" 1 (Hierarchy.io_node_of_thread h 3);
  let mapping = [| 3; 2; 1; 0 |] in
  let h2 = Hierarchy.create ~mapping tiny_topology in
  check "mapped thread 0 -> io 1" 1 (Hierarchy.io_node_of_thread h2 0)

let test_hierarchy_demote () =
  let h = Hierarchy.create ~protocol:Hierarchy.Demote_exclusive tiny_topology in
  (* fill thread 0's L1 (capacity 2) and force an eviction: victim demoted *)
  Hierarchy.access h ~thread:0 (b 0);
  Hierarchy.access h ~thread:0 (b 1);
  Hierarchy.access h ~thread:0 (b 2);
  check "demotion recorded" 1 (Hierarchy.l2_stats h).Stats.demotions;
  (* the demoted block must hit at L2 now *)
  let reads_before = Hierarchy.disk_reads h in
  Hierarchy.access h ~thread:0 (b 0);
  check "demoted block served from l2" (Hierarchy.disk_reads h) reads_before;
  check "l2 hit" 1 (Hierarchy.l2_stats h).Stats.hits

let test_hierarchy_elapsed_and_reset () =
  let h = Hierarchy.create tiny_topology in
  Hierarchy.access h ~thread:1 (b 7);
  Hierarchy.add_cpu_us h ~thread:1 100.;
  checkb "elapsed is max clock" true (Hierarchy.elapsed_us h >= 100.);
  Hierarchy.reset h;
  Alcotest.(check (float 1e-9)) "clocks cleared" 0. (Hierarchy.elapsed_us h);
  check "stats cleared" 0 (Hierarchy.l1_stats h).Stats.accesses;
  (* caches really cleared: same access misses again *)
  Hierarchy.access h ~thread:1 (b 7);
  check "cold again" 1 (Hierarchy.l1_stats h).Stats.misses

let test_hierarchy_validation () =
  Alcotest.check_raises "bad mapping length"
    (Invalid_argument "Hierarchy.create: mapping length") (fun () ->
      ignore (Hierarchy.create ~mapping:[| 0 |] tiny_topology));
  Alcotest.check_raises "bad mapping target"
    (Invalid_argument "Hierarchy.create: mapping target out of range") (fun () ->
      ignore (Hierarchy.create ~mapping:[| 0; 1; 2; 9 |] tiny_topology))

let test_hierarchy_prefetch_hits () =
  let h = Hierarchy.create ~readahead:2 tiny_topology in
  Hierarchy.access h ~thread:0 (b 0);
  (* the miss on b0 read the disk and speculatively pulled b1, b2 into L2 *)
  check "two blocks prefetched" 2 (Hierarchy.prefetches h);
  check "no hits yet" 0 (Hierarchy.prefetch_hits h);
  Hierarchy.access h ~thread:0 (b 1);
  check "first prefetched block touched" 1 (Hierarchy.prefetch_hits h);
  check "served without a new disk read" 1 (Hierarchy.disk_reads h);
  Hierarchy.access h ~thread:0 (b 2);
  check "second prefetched block touched" 2 (Hierarchy.prefetch_hits h);
  (* re-touching a block counts once: the speculative tag is consumed *)
  Hierarchy.access h ~thread:2 (b 2);
  check "tag consumed on first touch" 2 (Hierarchy.prefetch_hits h);
  let l2 = Hierarchy.l2_stats h in
  check "stats mirror the accessors" l2.Stats.prefetch_hits (Hierarchy.prefetch_hits h);
  checkb "hits bounded by prefetches" true
    (Hierarchy.prefetch_hits h <= Hierarchy.prefetches h);
  Hierarchy.reset h;
  check "reset clears prefetch counters" 0 (Hierarchy.prefetches h)

(* ---- QCheck: LRU model conformance ------------------------------------ *)

(* Compare the O(1) LRU against a naive reference implementation. *)
let prop_lru_matches_model =
  let ops =
    QCheck.list_of_size (QCheck.Gen.int_range 1 200)
      (QCheck.pair (QCheck.int_range 0 2) (QCheck.int_range 0 9))
  in
  QCheck.Test.make ~name:"lru matches a naive model" ~count:100 ops (fun ops ->
      let cache = Lru.create ~capacity:3 in
      let model = ref [] in
      (* model: most-recent first, max 3 entries *)
      let model_touch k =
        if List.mem k !model then begin
          model := k :: List.filter (( <> ) k) !model;
          true
        end
        else false
      in
      let model_insert k =
        if List.mem k !model then model := k :: List.filter (( <> ) k) !model
        else begin
          model := k :: !model;
          if List.length !model > 3 then
            model := List.filteri (fun i _ -> i < 3) !model
        end
      in
      List.for_all
        (fun (op, k) ->
          match op with
          | 0 -> cache.Policy.touch (b k) = model_touch k
          | 1 ->
            ignore (cache.Policy.insert (b k));
            model_insert k;
            cache.Policy.size () = List.length !model
          | _ ->
            let removed = cache.Policy.remove (b k) in
            let present = List.mem k !model in
            model := List.filter (( <> ) k) !model;
            removed = present)
        ops)

let prop_caches_never_exceed_capacity =
  let factories = [ ("lru", Lru.create); ("fifo", Fifo.create); ("clock", Clock.create); ("mq", Mq.create) ] in
  let ops = QCheck.list_of_size (QCheck.Gen.int_range 1 100) (QCheck.int_range 0 30) in
  QCheck.Test.make ~name:"no policy exceeds capacity" ~count:50 ops (fun keys ->
      List.for_all
        (fun (_, f) ->
          let c = f ~capacity:4 in
          List.iter (fun k -> ignore (c.Policy.insert (b k))) keys;
          c.Policy.size () <= 4)
        factories)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lru_matches_model; prop_caches_never_exceed_capacity ]

let suite =
  [
    ("block identity", `Quick, test_block);
    ("stats counters", `Quick, test_stats);
    ("dll operations", `Quick, test_dll);
    policy_conformance "lru" Lru.create;
    policy_conformance "fifo" Fifo.create;
    policy_conformance "clock" Clock.create;
    policy_conformance "mq" Mq.create;
    ("lru eviction order", `Quick, test_lru_order);
    ("lru cold insertion", `Quick, test_lru_insert_cold);
    ("fifo ignores recency", `Quick, test_fifo_ignores_recency);
    ("fifo stale queue entries", `Quick, test_fifo_remove_stale_queue);
    ("clock second chance", `Quick, test_clock_second_chance);
    ("mq frequency protection", `Quick, test_mq_frequency_protection);
    ("mq history buffer", `Quick, test_mq_history);
    ("disk service model", `Quick, test_disk);
    ("disk seek monotonicity", `Quick, test_disk_monotone_seek);
    ("striping placement", `Quick, test_striping);
    ("striping balance", `Quick, test_striping_balance);
    ("topology", `Quick, test_topology);
    ("karma class overlay", `Quick, test_karma_classes);
    ("karma exclusive plan", `Quick, test_karma_plan_exclusive);
    ("karma quota handling", `Quick, test_karma_quota_eviction);
    ("hierarchy inclusive path", `Quick, test_hierarchy_inclusive_path);
    ("hierarchy routing", `Quick, test_hierarchy_routing);
    ("hierarchy demote protocol", `Quick, test_hierarchy_demote);
    ("hierarchy elapsed/reset", `Quick, test_hierarchy_elapsed_and_reset);
    ("hierarchy validation", `Quick, test_hierarchy_validation);
    ("hierarchy prefetch hits", `Quick, test_hierarchy_prefetch_hits);
  ]
  @ qsuite
