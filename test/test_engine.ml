open Flo_storage
open Flo_core
open Flo_workloads
open Flo_engine

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* a small config so engine tests stay fast *)
let small_config =
  Config.with_topology Config.default
    (Topology.make ~compute_nodes:8 ~io_nodes:4 ~storage_nodes:2 ~block_elems:16
       ~io_cache_blocks:32 ~storage_cache_blocks:64 ())

let small_app =
  let d = Flo_poly.Data_space.make [| 64; 64 |] in
  let space = Flo_poly.Iter_space.make [| (0, 63); (0, 63) |] in
  App.make ~name:"toy" ~description:"column sweep" ~group:App.High
    (Flo_poly.Program.make ~name:"toy"
       [ Flo_poly.Program.declare ~id:0 ~name:"a" d; Flo_poly.Program.declare ~id:1 ~name:"b" d ]
       [
         Flo_poly.Loop_nest.make ~weight:2 ~parallel_dim:0 space
           [ Flo_poly.Access.ji ~array_id:0; Flo_poly.Access.ij ~array_id:1 ];
       ])

(* ---- Config ----------------------------------------------------------- *)

let test_spec_for () =
  let spec = Config.spec_for small_config small_app.App.program in
  check "threads" 8 spec.Internode.threads;
  check "align = block" 16 spec.Internode.align;
  check "layers" 3 (Array.length spec.Internode.layers);
  (* capacities are per-array shares in elements *)
  check "S1 share" (32 * 16 / 2) spec.Internode.layers.(0).Chunk_pattern.capacity;
  check "fanout l" 2 spec.Internode.layers.(0).Chunk_pattern.fanout

let test_config_validate () =
  checkb "default validates" true (Config.validate Config.default = Ok ());
  checkb "small validates" true (Config.validate small_config = Ok ());
  (* every bad field comes back as a structured reason, never an exception *)
  let expect_error label build =
    match build () with
    | Error e ->
      checkb (label ^ " has a message") true
        (String.length (Config.invalid_config_to_string e) > 0)
    | Ok _ -> Alcotest.failf "%s accepted" label
  in
  expect_error "zero storage nodes" (fun () -> Config.build ~storage_nodes:0 ());
  expect_error "negative io nodes" (fun () -> Config.build ~io_nodes:(-4) ());
  expect_error "zero block" (fun () -> Config.build ~block_elems:0 ());
  expect_error "zero quantum" (fun () -> Config.build ~quantum:0 ());
  expect_error "zero blocks per thread" (fun () -> Config.build ~blocks_per_thread:0 ());
  expect_error "uneven nesting" (fun () -> Config.build ~compute_nodes:7 ~io_nodes:3 ());
  (match Config.build ~storage_nodes:2 ~io_nodes:4 () with
  | Ok c -> check "build applies overrides" 2 c.Config.topology.Topology.storage_nodes
  | Error e -> Alcotest.failf "valid build rejected: %s" (Config.invalid_config_to_string e))

let test_config_validate_layers () =
  let layer fanout capacity = { Chunk_pattern.fanout; capacity } in
  checkb "good ladder" true
    (Config.validate_layers [| layer 2 8; layer 2 32 |] = Ok ());
  (* S_{i+1} must be a multiple of N_{i+1} * S_i (the Step II law) *)
  (match Config.validate_layers [| layer 2 8; layer 2 20 |] with
  | Error (Config.Step2_indivisible { layer = l; capacity; unit_ }) ->
    check "failing layer" 1 l;
    check "capacity" 20 capacity;
    check "unit" 16 unit_
  | Error e ->
    Alcotest.failf "wrong reason: %s" (Config.invalid_config_to_string e)
  | Ok () -> Alcotest.fail "indivisible ladder accepted");
  (match Config.validate_layers [| layer 3 8 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "S1 not multiple of N1 accepted")

(* ---- Tracegen ---------------------------------------------------------- *)

let test_streams_collapse () =
  let nest = List.hd small_app.App.program.Flo_poly.Program.nests in
  let row_layouts _ = File_layout.Row_major (Flo_poly.Data_space.make [| 64; 64 |]) in
  let streams =
    Tracegen.nest_streams ~layouts:row_layouts ~block_elems:16 ~threads:8
      ~blocks_per_thread:1 nest
  in
  check "one stream per thread" 8 (Array.length streams);
  (* thread 0 iterates i in 0..7, j in 0..63:
     - array 1 (row access): 8 rows x 4 blocks = 32 block visits, collapsed
     - array 0 (col access): every (j,i) jumps blocks: 512 visits *)
  let counts = Array.map Array.length streams in
  checkb "collapse bounded below" true (counts.(0) >= 512);
  checkb "collapse effective" true (counts.(0) <= 560)

let test_streams_sample_prefix () =
  let nest = List.hd small_app.App.program.Flo_poly.Program.nests in
  let layouts _ = File_layout.Row_major (Flo_poly.Data_space.make [| 64; 64 |]) in
  let full =
    Tracegen.nest_streams ~layouts ~block_elems:16 ~threads:8 ~blocks_per_thread:1 nest
  in
  let sampled =
    Tracegen.nest_streams ~layouts ~block_elems:16 ~threads:8 ~blocks_per_thread:1
      ~sample:4 nest
  in
  checkb "prefix shorter" true (Array.length sampled.(0) < Array.length full.(0));
  (* a prefix: sampled stream is a prefix of the full stream *)
  let is_prefix =
    Array.for_all Fun.id
      (Array.mapi (fun i b -> Block.equal b full.(0).(i)) sampled.(0))
  in
  checkb "is a prefix" true is_prefix;
  let iters = Tracegen.iterations_per_thread ~threads:8 ~blocks_per_thread:1 ~sample:4 nest in
  check "sampled iterations" 128 iters.(0)

(* ---- Run ----------------------------------------------------------------- *)

let test_run_basic () =
  let r = Experiment.default_run small_config small_app in
  checkb "accesses counted" true (r.Run.element_accesses > 0);
  check "elements = trips x refs" (App.total_accesses small_app) r.Run.element_accesses;
  checkb "time positive" true (r.Run.elapsed_us > 0.);
  checkb "requests <= elements" true (r.Run.block_requests <= r.Run.element_accesses);
  checkb "disk reads <= l2 misses" true (r.Run.disk_reads <= r.Run.l2.Stats.misses);
  checkb "miss per element sane" true
    (Run.l1_miss_per_element r >= 0. && Run.l1_miss_per_element r <= 1.)

let test_run_deterministic () =
  let a = Experiment.default_run small_config small_app in
  let b = Experiment.default_run small_config small_app in
  Alcotest.(check (float 0.)) "same elapsed" a.Run.elapsed_us b.Run.elapsed_us;
  check "same misses" a.Run.l1.Stats.misses b.Run.l1.Stats.misses

let test_inter_beats_default_on_colwise () =
  let d = Experiment.default_run small_config small_app in
  let o = Experiment.inter_run small_config small_app in
  checkb "optimized faster" true (o.Run.elapsed_us < d.Run.elapsed_us);
  checkb "fewer requests" true (o.Run.block_requests < d.Run.block_requests);
  checkb "fewer L1 misses" true (o.Run.l1.Stats.misses <= d.Run.l1.Stats.misses)

let test_run_caching_variants () =
  List.iter
    (fun caching ->
      let r = Run.run ~caching ~config:small_config
                ~layouts:(Experiment.default_layouts small_app) small_app in
      checkb "runs" true (r.Run.elapsed_us > 0.))
    [ Run.Lru; Run.Demote; Run.Karma; Run.Custom (Lru.create, Mq.create) ]

let test_run_mapping_permutation () =
  let m = Experiment.random_mapping ~seed:1 small_config in
  check "mapping length" 8 (Array.length m);
  let sorted = List.sort compare (Array.to_list m) in
  checkb "mapping is a permutation of compute nodes" true (sorted = List.init 8 Fun.id);
  let r = Experiment.default_run ~mapping:m small_config small_app in
  checkb "runs with mapping" true (r.Run.elapsed_us > 0.);
  (* deterministic: same seed, same mapping *)
  checkb "deterministic" true (Experiment.random_mapping ~seed:1 small_config = m);
  checkb "different seeds differ" true (Experiment.random_mapping ~seed:2 small_config <> m)

let test_karma_hints () =
  let streams = [| [| Block.make ~file:0 ~index:3; Block.make ~file:0 ~index:9 |] |] in
  let hints =
    Run.karma_hints_of_streams ~io_of_thread:(fun _ -> 0) ~io_nodes:1 [ (2, streams) ]
  in
  match hints.(0) with
  | [ h ] ->
    check "lo" 3 h.Karma.lo_block;
    check "hi" 9 h.Karma.hi_block;
    Alcotest.(check (float 1e-9)) "weighted accesses" 4. h.Karma.accesses
  | l -> Alcotest.failf "expected one hint, got %d" (List.length l)

let test_karma_hints_ordered () =
  (* one thread touching several files: the hint order must be the sorted
     (file, lo_block) order, not whatever Hashtbl.iter happens to yield *)
  let streams =
    [|
      [|
        Block.make ~file:5 ~index:7;
        Block.make ~file:1 ~index:2;
        Block.make ~file:3 ~index:0;
        Block.make ~file:1 ~index:4;
      |];
    |]
  in
  let hints =
    Run.karma_hints_of_streams ~io_of_thread:(fun _ -> 0) ~io_nodes:1 [ (1, streams) ]
  in
  let keys =
    List.map (fun (h : Karma.hint) -> (h.Karma.file, h.Karma.lo_block)) hints.(0)
  in
  Alcotest.(check (list (pair int int))) "hints sorted by (file, lo_block)"
    [ (1, 2); (3, 0); (5, 7) ]
    keys

(* ---- The headline shapes (one app per group, full scale) ----------------- *)

let full = Config.default

let test_shape_group1 () =
  let app = Suite.find "cc-ver-1" in
  let d = Experiment.default_run full app in
  let o = Experiment.inter_run full app in
  let n = Experiment.normalized ~base:d o in
  checkb (Printf.sprintf "cc-ver-1 no benefit (%.3f)" n) true (n > 0.95 && n < 1.08)

let test_shape_group2 () =
  let app = Suite.find "astro" in
  let d = Experiment.default_run full app in
  let o = Experiment.inter_run full app in
  let n = Experiment.normalized ~base:d o in
  checkb (Printf.sprintf "astro moderate benefit (%.3f)" n) true (n > 0.84 && n < 0.95)

let test_shape_group3 () =
  let app = Suite.find "qio" in
  let d = Experiment.default_run full app in
  let o = Experiment.inter_run full app in
  let n = Experiment.normalized ~base:d o in
  checkb (Printf.sprintf "qio high benefit (%.3f)" n) true (n > 0.70 && n < 0.80)

let test_shape_twer_conflicted () =
  let app = Suite.find "twer" in
  let plan = Experiment.inter_plan full app in
  (* conflicting equal-weight references: conflicted arrays are declined *)
  checkb "most twer arrays not restructured" true (Optimizer.optimized_count plan = 0)

let test_shape_optimized_fraction () =
  (* paper: ~72% of all arrays optimized *)
  let total = ref 0 and optimized = ref 0 in
  List.iter
    (fun app ->
      let plan = Experiment.inter_plan full app in
      total := !total + Optimizer.total_arrays plan;
      optimized := !optimized + Optimizer.optimized_count plan)
    Suite.all;
  let frac = float_of_int !optimized /. float_of_int !total in
  checkb (Printf.sprintf "optimized fraction %.2f" frac) true (frac > 0.55 && frac < 0.85)

let suite =
  [
    ("config spec_for", `Quick, test_spec_for);
    ("config validate", `Quick, test_config_validate);
    ("config validate_layers", `Quick, test_config_validate_layers);
    ("tracegen collapse", `Quick, test_streams_collapse);
    ("tracegen prefix sampling", `Quick, test_streams_sample_prefix);
    ("run basic invariants", `Quick, test_run_basic);
    ("run deterministic", `Quick, test_run_deterministic);
    ("inter beats default on column sweeps", `Quick, test_inter_beats_default_on_colwise);
    ("run caching variants", `Quick, test_run_caching_variants);
    ("thread mapping permutations", `Quick, test_run_mapping_permutation);
    ("karma hints from streams", `Quick, test_karma_hints);
    ("karma hints deterministic order", `Quick, test_karma_hints_ordered);
    ("shape: group 1 app", `Slow, test_shape_group1);
    ("shape: group 2 app", `Slow, test_shape_group2);
    ("shape: group 3 app", `Slow, test_shape_group3);
    ("shape: twer declines", `Quick, test_shape_twer_conflicted);
    ("shape: optimized array fraction", `Slow, test_shape_optimized_fraction);
  ]

(* ---- readahead & template extensions -------------------------------- *)

let test_readahead_effect () =
  (* sequential scan: readahead turns most L2 cold misses into hits *)
  let layouts = Experiment.default_layouts small_app in
  let without = Run.run ~config:small_config ~layouts small_app in
  let with_ra = Run.run ~readahead:2 ~config:small_config ~layouts small_app in
  checkb "no more disk reads with readahead" true
    (with_ra.Run.disk_reads <= without.Run.disk_reads);
  checkb "same work" true (with_ra.Run.element_accesses = without.Run.element_accesses)

let test_prefetch_accounting () =
  let layouts = Experiment.default_layouts small_app in
  let r = Run.run ~readahead:2 ~config:small_config ~layouts small_app in
  checkb "prefetches issued" true (r.Run.prefetches > 0);
  checkb "some prefetched blocks touched" true (r.Run.prefetch_hits > 0);
  checkb "hits bounded by prefetches" true (r.Run.prefetch_hits <= r.Run.prefetches);
  let without = Run.run ~config:small_config ~layouts small_app in
  check "no prefetches without readahead" 0 without.Run.prefetches;
  check "no phantom hits" 0 without.Run.prefetch_hits

let test_template_run () =
  let r = Experiment.inter_template_run small_config small_app in
  let d = Experiment.default_run small_config small_app in
  checkb "template layout still beats default on column sweeps" true
    (r.Run.elapsed_us < d.Run.elapsed_us)

(* ---- Observability ---------------------------------------------------- *)

(* the Fig. 6 worked example's shape: 4 threads, 2 I/O caches, 1 storage cache *)
let fig6_config =
  Config.with_topology Config.default
    (Topology.make ~compute_nodes:4 ~io_nodes:2 ~storage_nodes:1 ~block_elems:16
       ~io_cache_blocks:4 ~storage_cache_blocks:16 ())

let fig6_run ?sink ?metrics () =
  let mapping = Experiment.random_mapping ~seed:1 fig6_config in
  Run.run ~mapping ~readahead:2 ?sink ?metrics ~config:fig6_config
    ~layouts:(Experiment.default_layouts small_app) small_app

let test_sink_leaves_results_unchanged () =
  let plain = fig6_run () in
  let ring = Flo_obs.Sink.create_ring ~capacity:200_000 in
  let observed =
    fig6_run ~sink:(Flo_obs.Sink.ring_sink ring)
      ~metrics:(Flo_obs.Metrics.create ()) ()
  in
  Alcotest.(check (float 0.)) "identical elapsed" plain.Run.elapsed_us
    observed.Run.elapsed_us;
  check "identical l1 misses" plain.Run.l1.Stats.misses observed.Run.l1.Stats.misses;
  check "identical l2 misses" plain.Run.l2.Stats.misses observed.Run.l2.Stats.misses;
  check "identical disk reads" plain.Run.disk_reads observed.Run.disk_reads;
  check "identical requests" plain.Run.block_requests observed.Run.block_requests;
  checkb "per-thread clocks identical" true (plain.Run.thread_us = observed.Run.thread_us)

let test_run_events_match_counters () =
  let ring = Flo_obs.Sink.create_ring ~capacity:200_000 in
  let r = fig6_run ~sink:(Flo_obs.Sink.ring_sink ring) () in
  check "trace complete" 0 (Flo_obs.Sink.ring_dropped ring);
  let events = Flo_obs.Sink.ring_events ring in
  let count kind layer =
    List.length
      (List.filter
         (fun (e : Flo_obs.Event.t) ->
           e.Flo_obs.Event.kind = kind && e.Flo_obs.Event.layer = layer)
         events)
  in
  let open Flo_obs.Event in
  check "access events = block requests" r.Run.block_requests (count Access L1);
  check "l1 hit events" r.Run.l1.Stats.hits (count Hit L1);
  check "l1 miss events" r.Run.l1.Stats.misses (count Miss L1);
  check "l2 hit events" r.Run.l2.Stats.hits (count Hit L2);
  check "l2 miss events" r.Run.l2.Stats.misses (count Miss L2);
  check "l1 evict events" r.Run.l1.Stats.evictions (count Evict L1);
  check "l2 evict events" r.Run.l2.Stats.evictions (count Evict L2);
  check "demote events" r.Run.l2.Stats.demotions (count Demote L2);
  check "prefetch events" r.Run.prefetches (count Prefetch L2);
  check "disk read events" r.Run.disk_reads (count Disk_read Disk)

(* golden regression: the full human-readable report for the Fig. 6 example *)
let render_fig6_report () =
  let registry = Flo_obs.Metrics.create () in
  let r = fig6_run ~metrics:registry () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Format.asprintf "%a@." Run.pp_result r);
  let node_table title prefix stats =
    Buffer.add_string buf (Printf.sprintf "\n%s\n" title);
    Buffer.add_string buf
      (Report.table ~header:Report.stats_header
         (Array.to_list
            (Array.mapi
               (fun i s -> Report.stats_row (Printf.sprintf "%s%d" prefix i) s)
               stats)));
    Buffer.add_char buf '\n'
  in
  node_table "I/O-node caches (L1)" "io" r.Run.l1_nodes;
  node_table "storage-node caches (L2)" "st" r.Run.l2_nodes;
  (match Flo_obs.Metrics.find_histogram registry "request_latency_us" with
  | Some h -> Buffer.add_string buf (Printf.sprintf "\nrequest latency: %s\n" (Report.latency_summary h))
  | None -> Buffer.add_string buf "\nrequest latency: missing\n");
  Buffer.contents buf

(* regenerate with:
   FLOPT_GOLDEN_UPDATE=$PWD/test dune exec test/main.exe -- test engine -q *)
let test_fig6_golden_report () =
  let actual = render_fig6_report () in
  let path = "golden_fig6_report.expected" in
  match Sys.getenv_opt "FLOPT_GOLDEN_UPDATE" with
  | Some dir ->
    let oc = open_out_bin (Filename.concat dir path) in
    output_string oc actual;
    close_out oc
  | None ->
    let expected =
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    Alcotest.(check string) "report matches golden file" expected actual

let suite =
  suite
  @ [
      ("storage-node readahead", `Quick, test_readahead_effect);
      ("prefetch accounting", `Quick, test_prefetch_accounting);
      ("template-hierarchy run", `Quick, test_template_run);
      ("sink does not perturb results", `Quick, test_sink_leaves_results_unchanged);
      ("trace events match counters", `Quick, test_run_events_match_counters);
      ("fig. 6 golden report", `Quick, test_fig6_golden_report);
    ]

(* ---- full-suite shape regression (the headline reproduction) ------------- *)

let group_bounds = function
  | App.No_benefit -> (0.95, 1.08)
  | App.Moderate -> (0.86, 0.94)
  | App.High -> (0.70, 0.81)

let test_all_groups () =
  List.iter
    (fun app ->
      let d = Experiment.default_run full app in
      let o = Experiment.inter_run full app in
      let n = Experiment.normalized ~base:d o in
      let lo, hi = group_bounds app.App.group in
      checkb
        (Printf.sprintf "%s normalized %.3f in [%.2f, %.2f] (%s)" app.App.name n lo hi
           (App.group_to_string app.App.group))
        true
        (n >= lo && n <= hi))
    Suite.all

let test_miss_reduction_shape () =
  (* Table 3's qualitative claim: optimized I/O-cache misses never increase,
     and drop hard for the high-benefit group *)
  List.iter
    (fun app ->
      let d = Experiment.default_run full app in
      let o = Experiment.inter_run full app in
      let ratio = Run.l1_miss_per_element o /. max 1e-12 (Run.l1_miss_per_element d) in
      checkb (Printf.sprintf "%s L1 miss ratio %.2f <= 1.02" app.App.name ratio) true
        (ratio <= 1.02);
      if app.App.group = App.High then
        checkb (Printf.sprintf "%s high group miss ratio %.2f < 0.5" app.App.name ratio)
          true (ratio < 0.5))
    Suite.all

let suite =
  suite
  @ [
      ("shape: all 16 apps in their groups", `Slow, test_all_groups);
      ("shape: Table 3 miss reductions", `Slow, test_miss_reduction_shape);
    ]

(* ---- trace flush ordering ------------------------------------------------ *)

(* the contract `flopt run --trace` relies on: the instant with_jsonl
   returns, the file on disk is the complete trace — flushed and closed, no
   buffered tail — so a pipeline can re-read it immediately *)
let test_trace_readable_immediately () =
  let live = Flo_analysis.Analyzer.create () in
  let path = Filename.temp_file "flopt_trace_flush" ".jsonl" in
  ignore
    (Flo_obs.Sink.with_jsonl path (fun sink ->
         fig6_run
           ~sink:(Flo_obs.Sink.tee sink (Flo_analysis.Analyzer.sink live))
           ()));
  let off =
    match Flo_analysis.Analyzer.load_file path with
    | Ok a -> a
    | Error e ->
      Alcotest.failf "immediate re-read failed: %s"
        (Flo_analysis.Analyzer.load_error_to_string e)
  in
  Sys.remove path;
  check "no events lost at close"
    (Flo_analysis.Analyzer.event_count live)
    (Flo_analysis.Analyzer.event_count off)

let suite = suite @ [ ("trace file complete on return", `Quick, test_trace_readable_immediately) ]
