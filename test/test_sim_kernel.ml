(* The allocation-free simulation kernel: the qcheck law that Flat_lru and
   the retained reference LRU agree on every operation result and the full
   eviction sequence; hierarchy fast-path vs generic-path equality over
   random access strings (both protocols, with and without readahead); the
   full-suite Run.result field-for-field identity golden; the
   Gc.minor_words proof that Flat_lru allocates nothing at steady state;
   and the karma-hints flat-accumulation regression against the reference
   per-stream Hashtbl implementation. *)

open Flo_storage
open Flo_workloads
open Flo_engine

let checkb = Alcotest.(check bool)

let test_jobs =
  match Sys.getenv_opt "FLOPT_TEST_JOBS" with
  | Some s -> (match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 4)
  | None -> 4

(* ---- Flat_lru vs reference Lru: operation-string law -------------------- *)

type op = Touch of int | Insert of int | Insert_cold of int | Remove of int | Contains of int

let pp_op = function
  | Touch k -> Printf.sprintf "touch %d" k
  | Insert k -> Printf.sprintf "insert %d" k
  | Insert_cold k -> Printf.sprintf "insert_cold %d" k
  | Remove k -> Printf.sprintf "remove %d" k
  | Contains k -> Printf.sprintf "contains %d" k

(* keys are packed blocks over a few files so both components exercise the
   hash; the key space exceeds every capacity so evictions are frequent *)
let block_of_key k = Block.make ~file:(k / 16) ~index:(k mod 16)

let ops_arb =
  QCheck.make
    ~print:(fun (cap, ops) ->
      Printf.sprintf "capacity=%d [%s]" cap
        (String.concat "; " (List.map pp_op ops)))
    QCheck.Gen.(
      let* cap = int_range 1 6 in
      let* ops =
        list_size (int_range 0 200)
          (let* k = int_range 0 47 in
           oneofl [ Touch k; Insert k; Insert_cold k; Remove k; Contains k ])
      in
      return (cap, ops))

let prop_flat_lru_matches_reference =
  QCheck.Test.make ~count:300
    ~name:"Flat_lru = reference Lru: results, evictions, order" ops_arb
    (fun (capacity, ops) ->
      let flat = Flat_lru.create ~capacity in
      let refp = Lru.reference ~capacity in
      let agree =
        List.for_all
          (fun op ->
            let b = block_of_key (match op with
              | Touch k | Insert k | Insert_cold k | Remove k | Contains k -> k)
            in
            let bi = (b : Block.t :> int) in
            let same =
              match op with
              | Touch _ -> Flat_lru.touch flat bi = refp.Policy.touch b
              | Insert _ ->
                let v = Flat_lru.insert flat bi in
                let r = refp.Policy.insert b in
                (match r with
                | None -> v = Flat_lru.nil
                | Some rb -> v = (rb : Block.t :> int))
              | Insert_cold _ ->
                let v = Flat_lru.insert_cold flat bi in
                let r = refp.Policy.insert_cold b in
                (match r with
                | None -> v = Flat_lru.nil
                | Some rb -> v = (rb : Block.t :> int))
              | Remove _ -> Flat_lru.remove flat bi = refp.Policy.remove b
              | Contains _ -> Flat_lru.contains flat bi = refp.Policy.contains b
            in
            (* after every op: same size and same MRU->LRU order, so the
               next eviction decision cannot diverge *)
            let flat_order = ref [] in
            Flat_lru.iter (fun k -> flat_order := k :: !flat_order) flat;
            let ref_order = ref [] in
            refp.Policy.iter (fun b -> ref_order := (b : Block.t :> int) :: !ref_order);
            same
            && Flat_lru.size flat = refp.Policy.size ()
            && !flat_order = !ref_order)
          ops
      in
      (* clear resets both to the same empty state *)
      Flat_lru.clear flat;
      refp.Policy.clear ();
      agree && Flat_lru.size flat = 0 && refp.Policy.size () = 0)

let test_flat_lru_validation () =
  checkb "capacity < 1 rejected" true
    (match Flat_lru.create ~capacity:0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let c = Flat_lru.create ~capacity:2 in
  checkb "negative key rejected" true
    (match Flat_lru.touch c (-1) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "lru factory populates fast" true ((Lru.create ~capacity:4).Policy.fast <> None);
  checkb "reference leaves fast none" true
    ((Lru.reference ~capacity:4).Policy.fast = None);
  checkb "mq leaves fast none" true ((Mq.create ~capacity:4).Policy.fast = None);
  checkb "fifo leaves fast none" true ((Fifo.create ~capacity:4).Policy.fast = None)

(* ---- hierarchy: fast path = generic path over random access strings ----- *)

(* The suite golden below covers the default Inclusive, readahead-0
   configuration; this property drives the paths it cannot reach — DEMOTE
   demotions and the readahead/prefetch machinery — through both kernels.
   The reference hierarchy is built from Lru.reference factories, so it
   takes the generic closure path; observables must match exactly. *)

let topo_small =
  Topology.make ~compute_nodes:4 ~io_nodes:2 ~storage_nodes:2 ~block_elems:8
    ~io_cache_blocks:8 ~storage_cache_blocks:12 ()

let hierarchy_observables h =
  let threads = Topology.threads (Hierarchy.topology h) in
  ( Hierarchy.elapsed_us h,
    Array.init threads (fun t -> Hierarchy.thread_clock_us h t),
    Array.init (Hierarchy.io_nodes h) (Hierarchy.l1_stats_of h),
    Array.init (Hierarchy.storage_nodes h) (Hierarchy.l2_stats_of h),
    Hierarchy.disk_reads h,
    Hierarchy.prefetches h,
    Hierarchy.prefetch_hits h )

let access_string_arb =
  QCheck.make
    ~print:(fun (demote, readahead, accs) ->
      Printf.sprintf "demote=%b readahead=%d %s" demote readahead
        (String.concat ","
           (List.map (fun (t, f, i) -> Printf.sprintf "%d:%d:%d" t f i) accs)))
    QCheck.Gen.(
      let* demote = bool in
      let* readahead = oneofl [ 0; 2 ] in
      let* accs =
        list_size (int_range 0 300)
          (let* t = int_range 0 3 in
           let* f = int_range 0 2 in
           let* i = int_range 0 40 in
           return (t, f, i))
      in
      return (demote, readahead, accs))

let prop_hierarchy_fast_matches_generic =
  QCheck.Test.make ~count:100
    ~name:"hierarchy: devirtualized path = generic path (demote, readahead)"
    access_string_arb
    (fun (demote, readahead, accs) ->
      let protocol =
        if demote then Hierarchy.Demote_exclusive else Hierarchy.Inclusive
      in
      let fast = Hierarchy.create ~protocol ~readahead topo_small in
      let generic =
        Hierarchy.create ~protocol ~readahead ~l1_factory:Lru.reference
          ~l2_factory:Lru.reference topo_small
      in
      List.iter
        (fun (t, f, i) ->
          let b = Block.make ~file:f ~index:i in
          Hierarchy.access fast ~thread:t b;
          Hierarchy.access generic ~thread:t b)
        accs;
      hierarchy_observables fast = hierarchy_observables generic)

(* ---- full-suite Run.result identity golden ------------------------------ *)

(* Run.Custom leaves Policy.fast = None, so the reference run replays the
   whole workload through the generic dispatch path with the retained
   closure LRU.  Every field of the result record must be identical —
   clocks to the last IEEE bit. *)

let check_app_results config app =
  List.iter
    (fun (mode, layouts) ->
      List.iter
        (fun sample ->
          let fast = Run.run ~caching:Run.Lru ~sample ~config ~layouts app in
          let refr =
            Run.run
              ~caching:(Run.Custom (Lru.reference, Lru.reference))
              ~sample ~config ~layouts app
          in
          checkb
            (Printf.sprintf "%s (%s, sample %d)" app.App.name mode sample)
            true
            (fast = refr))
        [ 1; 8 ])
    [
      ("default", Experiment.default_layouts app);
      ("inter", Experiment.inter_layouts config app);
    ]

let test_golden_run_suite () =
  (* fan the 16 apps over the worker pool; each task is the full
     mode x sample grid for one app *)
  ignore
    (Parallel.map ~jobs:test_jobs
       (fun app ->
         check_app_results Config.default app;
         app.App.name)
       (Array.of_list Suite.all))

(* ---- zero steady-state allocation (Gc.minor_words) ---------------------- *)

let test_flat_lru_no_alloc () =
  let c = Flat_lru.create ~capacity:64 in
  (* fill past capacity so the workload below keeps evicting *)
  for i = 0 to 255 do
    ignore (Flat_lru.insert c i)
  done;
  let work () =
    for i = 0 to 49_999 do
      let k = i land 511 in
      ignore (Flat_lru.touch c k);
      ignore (Flat_lru.insert c k);
      ignore (Flat_lru.contains c (k + 1));
      if i land 7 = 0 then begin
        ignore (Flat_lru.remove c k);
        ignore (Flat_lru.insert_cold c k)
      end
    done
  in
  (* one untimed pass so closures and any lazy setup are in place *)
  work ();
  let delta f =
    let w0 = Gc.minor_words () in
    f ();
    Gc.minor_words () -. w0
  in
  let nothing () = () in
  let baseline = delta nothing in
  let measured = delta work in
  (* the measurement itself boxes the first counter read; the 50k-op
     workload must add nothing on top of that *)
  Alcotest.(check (float 0.))
    "minor words allocated by 50k flat-LRU ops" baseline measured

(* ---- karma hints: flat accumulation = reference Hashtbl+sort ------------ *)

(* the pre-flat implementation, kept verbatim as the executable spec *)
let reference_hints ~io_of_thread ~io_nodes weighted_streams =
  let hints = Array.make io_nodes [] in
  List.iter
    (fun (weight, streams) ->
      Array.iteri
        (fun thread blocks ->
          if Array.length blocks > 0 then begin
            let per_file = Hashtbl.create 4 in
            Array.iter
              (fun b ->
                let file = Block.file b and idx = Block.index b in
                match Hashtbl.find_opt per_file file with
                | None -> Hashtbl.replace per_file file (idx, idx, 1)
                | Some (lo, hi, n) ->
                  Hashtbl.replace per_file file (min lo idx, max hi idx, n + 1))
              blocks;
            let io = io_of_thread thread in
            Hashtbl.fold (fun file range acc -> (file, range) :: acc) per_file []
            |> List.sort (fun (fa, (la, _, _)) (fb, (lb, _, _)) ->
                   compare (fb, lb) (fa, la))
            |> List.iter (fun (file, (lo, hi, n)) ->
                   let hint =
                     {
                       Karma.file;
                       lo_block = lo;
                       hi_block = hi;
                       accesses = float_of_int (n * weight);
                     }
                   in
                   hints.(io) <- hint :: hints.(io))
          end)
        streams)
    weighted_streams;
  hints

let streams_arb =
  QCheck.make
    ~print:(fun nests ->
      String.concat " | "
        (List.map
           (fun (w, streams) ->
             Printf.sprintf "w%d:%s" w
               (String.concat ";"
                  (Array.to_list
                     (Array.map
                        (fun s -> string_of_int (Array.length s))
                        streams))))
           nests))
    QCheck.Gen.(
      list_size (int_range 0 3)
        (let* weight = int_range 1 3 in
         let* streams =
           array_size (return 4)
             (array_size (int_range 0 15)
                (let* f = int_range 0 4 in
                 let* i = int_range 0 30 in
                 return (Block.make ~file:f ~index:i)))
         in
         return (weight, streams)))

let prop_karma_hints_match_reference =
  QCheck.Test.make ~count:200
    ~name:"karma hints: flat accumulation = reference Hashtbl+sort" streams_arb
    (fun weighted_streams ->
      let io_of_thread t = t mod 2 in
      let fast =
        Run.karma_hints_of_streams ~io_of_thread ~io_nodes:2 weighted_streams
      in
      let refr = reference_hints ~io_of_thread ~io_nodes:2 weighted_streams in
      fast = refr)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_flat_lru_matches_reference;
      prop_hierarchy_fast_matches_generic;
      prop_karma_hints_match_reference;
    ]

let suite =
  [
    ("flat-lru validation and fast fields", `Quick, test_flat_lru_validation);
    ("flat-lru zero steady-state allocation", `Quick, test_flat_lru_no_alloc);
    ("golden run equality (16-app suite)", `Slow, test_golden_run_suite);
  ]
  @ qsuite
