(* Overload robustness: the admission controller's apportioning laws, the
   circuit breaker's hysteresis, the open-loop collapse baseline the
   controls exist to prevent, accounting invariants of the admission
   ledger, and jobs/seed determinism of every overload artifact. *)

open Flo_traffic
module Breaker = Flo_faults.Breaker

let checkb = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let test_jobs = Test_parallel.test_jobs
let small_config = Test_parallel.small_config ~block_elems:16 ~threads:8
let toy_mix = [ Test_parallel.toy_col; Test_parallel.toy_row ]

(* ---- Overload.split laws ----------------------------------------------- *)

let test_split_exact () =
  let counts = [| 3; 0; 5; 2 |] in
  let total = Array.fold_left ( + ) 0 counts in
  for keep = -2 to total + 3 do
    let s = Overload.split ~counts ~keep in
    check_int
      (Printf.sprintf "sum at keep=%d" keep)
      (min (max keep 0) total)
      (Array.fold_left ( + ) 0 s);
    Array.iteri
      (fun i v ->
        checkb "non-negative" true (v >= 0);
        checkb "pointwise capped" true (v <= counts.(i)))
      s
  done;
  checkb "empty counts" true (Overload.split ~counts:[||] ~keep:4 = [||])

let prop_split_laws =
  QCheck.Test.make ~count:200 ~name:"overload: split is an exact apportioning"
    QCheck.(
      make
        ~print:(fun (counts, keep) ->
          Printf.sprintf "counts=[%s] keep=%d"
            (String.concat ";" (List.map string_of_int counts))
            keep)
        Gen.(
          let* counts = list_size (int_range 0 6) (int_range 0 20) in
          let* keep = int_range 0 130 in
          return (counts, keep)))
    (fun (counts_l, keep) ->
      let counts = Array.of_list counts_l in
      let total = Array.fold_left ( + ) 0 counts in
      let s = Overload.split ~counts ~keep in
      let sum = Array.fold_left ( + ) 0 s in
      sum = min keep total
      && Array.for_all2 (fun v c -> v >= 0 && v <= c) s counts
      && s = Overload.split ~counts ~keep)

(* ---- params validation ------------------------------------------------- *)

let test_params_validation () =
  let ok p = Result.is_ok (Overload.validate p) in
  checkb "default valid" true (ok Overload.default);
  checkb "no controls rejected" false
    (ok { Overload.default with Overload.shed = None; breaker = None });
  checkb "breaker-only valid" true
    (ok
       { Overload.default with
         Overload.shed = None;
         breaker = Some Breaker.default });
  checkb "zero capacity rejected" false
    (ok { Overload.default with Overload.capacity = 0. });
  checkb "negative capacity rejected" false
    (ok { Overload.default with Overload.capacity = -1. });
  checkb "brownout factor 1 rejected" false
    (ok { Overload.default with Overload.brownout_factor = 1 });
  List.iter
    (fun s ->
      match Overload.policy_of_string s with
      | Ok p -> check_str "policy round-trips" s (Overload.policy_to_string p)
      | Error e -> Alcotest.failf "policy %S rejected: %s" s e)
    [ "fail-fast"; "priority"; "brownout" ];
  checkb "off is not a policy" true
    (Result.is_error (Overload.policy_of_string "off"))

(* ---- breaker state machine --------------------------------------------- *)

let spec =
  { Breaker.open_rate = 0.1; close_rate = 0.02; cooldown_windows = 2;
    probe = 0.2; node = None }

let test_breaker_opens_and_cools () =
  let b = Breaker.create spec in
  checkb "starts closed" true (Breaker.state b = Breaker.Closed);
  checkb "closed admits all" true (Breaker.admits b ~window:0 = `All);
  (* a clean window keeps it closed; a storm opens it *)
  let b = Breaker.observe b ~window:0 ~requests:100 ~errors:1 in
  checkb "1% stays closed" true (Breaker.state b = Breaker.Closed);
  let b = Breaker.observe b ~window:1 ~requests:100 ~errors:30 in
  (match Breaker.state b with
  | Breaker.Open { until_window } ->
    check_int "cooldown from next window" (1 + 1 + spec.Breaker.cooldown_windows)
      until_window
  | st -> Alcotest.failf "expected open, got %s" (Breaker.state_to_string st));
  checkb "open admits nothing" true (Breaker.admits b ~window:2 = `None);
  (* observations during cooldown are ignored *)
  let b = Breaker.observe b ~window:2 ~requests:0 ~errors:0 in
  checkb "still open mid-cooldown" true (Breaker.admits b ~window:3 = `None);
  let b = Breaker.observe b ~window:3 ~requests:0 ~errors:0 in
  checkb "half-open probe after cooldown" true
    (Breaker.admits b ~window:4 = `Probe spec.Breaker.probe)

let half_open () =
  let b = Breaker.create spec in
  let b = Breaker.observe b ~window:0 ~requests:100 ~errors:30 in
  let b = Breaker.observe b ~window:1 ~requests:0 ~errors:0 in
  let b = Breaker.observe b ~window:2 ~requests:0 ~errors:0 in
  checkb "reached half-open" true (Breaker.admits b ~window:3 <> `None
                                   && Breaker.admits b ~window:3 <> `All);
  b

(* rates strictly between close_rate and open_rate hold the state: the
   breaker cannot flap across the boundary *)
let test_breaker_hysteresis_no_flap () =
  let b = ref (half_open ()) in
  for w = 3 to 12 do
    b := Breaker.observe !b ~window:w ~requests:100 ~errors:5;
    checkb
      (Printf.sprintf "window %d holds half-open at 5%%" w)
      true
      (Breaker.state !b = Breaker.Half_open)
  done;
  (* a clean probe closes it; a storm reopens it *)
  let closed = Breaker.observe !b ~window:13 ~requests:100 ~errors:1 in
  checkb "clean probe closes" true (Breaker.state closed = Breaker.Closed);
  let reopened = Breaker.observe !b ~window:13 ~requests:100 ~errors:30 in
  checkb "storm probe reopens" true
    (match Breaker.state reopened with Breaker.Open _ -> true | _ -> false)

let test_breaker_half_open_no_traffic_holds () =
  let b = half_open () in
  let b = Breaker.observe b ~window:3 ~requests:0 ~errors:0 in
  checkb "no probe traffic holds half-open" true
    (Breaker.state b = Breaker.Half_open)

let test_breaker_spec_round_trip () =
  List.iter
    (fun s ->
      match Breaker.of_string s with
      | Error e -> Alcotest.failf "spec %S rejected: %s" s e
      | Ok sp ->
        check_str "round-trips" (Breaker.to_string sp)
          (match Breaker.of_string (Breaker.to_string sp) with
          | Ok sp' -> Breaker.to_string sp'
          | Error e -> Alcotest.failf "re-parse failed: %s" e))
    [ "open=0.2"; "open=0.3,close=0.1,cooldown=4,probe=0.5,node=1" ];
  List.iter
    (fun s -> checkb (Printf.sprintf "%S rejected" s) true
        (Result.is_error (Breaker.of_string s)))
    [ "open=0"; "open=0.1,close=0.5"; "cooldown=0"; "probe=0"; "probe=1.5";
      "bogus=1" ]

(* ---- open-loop collapse baseline --------------------------------------- *)

(* the golden baseline the controls are judged against: with overload=None
   the engine is open-loop, so at offered load far beyond capacity every
   job is served and the congestion multiplier (and with it the tail) grows
   without bound instead of saturating *)
let storm_params rate_mult =
  {
    (Engine.default_params ~mix:toy_mix) with
    Engine.tenants = 8;
    duration_s = 3.;
    rate = 1.5 *. rate_mult;
    sample = 1;
    windows = 3;
  }

let test_collapse_baseline () =
  let at mult = Engine.simulate ~jobs:1 ~config:small_config (storm_params mult) in
  let base = at 1. and stormed = at 50. in
  checkb "open loop serves everything" true
    (stormed.Engine.overload = None
     && stormed.Engine.total_requests > 20 * base.Engine.total_requests);
  let max_mult (r : Engine.result) =
    Array.fold_left
      (fun acc (s : Engine.shard_stats) -> Float.max acc s.Engine.multiplier)
      0. r.Engine.shards
  in
  checkb "multiplier grows ~linearly with offered load" true
    (max_mult stormed > 10. *. max_mult base);
  checkb "tail collapses with it" true
    (stormed.Engine.agg_p99_us > 10. *. base.Engine.agg_p99_us)

(* ---- admission accounting ---------------------------------------------- *)

let overload_params ?(shed = Some Overload.Fail_fast) ?(capacity = 1.0)
    ?breaker ?(rate_mult = 8.) () =
  {
    (storm_params rate_mult) with
    Engine.overload =
      Some { Overload.default with Overload.shed; capacity; breaker };
  }

let test_admission_accounting () =
  let r =
    Engine.simulate ~jobs:test_jobs ~config:small_config (overload_params ())
  in
  let ol =
    match r.Engine.overload with
    | Some ol -> ol
    | None -> Alcotest.fail "overload stats missing"
  in
  check_int "offered = admitted + shed" ol.Engine.ol_offered_requests
    (ol.Engine.ol_admitted_requests + ol.Engine.ol_shed_requests);
  check_int "replay served exactly the admitted cohort"
    ol.Engine.ol_admitted_requests r.Engine.total_requests;
  checkb "controller admits nonzero goodput" true
    (ol.Engine.ol_admitted_requests > 0);
  checkb "storm at 8x sheds something" true (ol.Engine.ol_shed_requests > 0);
  checkb "shed fraction consistent" true
    (Float.abs
       (ol.Engine.ol_shed_fraction
       -. float_of_int ol.Engine.ol_shed_requests
          /. float_of_int ol.Engine.ol_offered_requests)
    < 1e-9);
  (* the per-(shard, window) ledger sums to the totals *)
  let cells f =
    Array.fold_left
      (fun acc per_shard -> Array.fold_left (fun a c -> a + f c) acc per_shard)
      0 ol.Engine.ol_admissions
  in
  check_int "ledger served requests sum" ol.Engine.ol_admitted_requests
    (cells (fun c -> c.Engine.aw_served_requests));
  checkb "every cell balances" true
    (Array.for_all
       (Array.for_all (fun c ->
            c.Engine.aw_offered_jobs - c.Engine.aw_routed_out_jobs
            + c.Engine.aw_routed_in_jobs
            = c.Engine.aw_admitted_jobs + c.Engine.aw_browned_jobs
              + c.Engine.aw_shed_jobs))
       ol.Engine.ol_admissions)

(* whole-job service quantum: even when a single job exceeds the window
   target, each loaded (shard, window) still admits one job — a shard
   never stalls behind coarse quanta *)
let test_min_one_job_floor () =
  let r =
    Engine.simulate ~jobs:1 ~config:small_config
      (overload_params ~capacity:0.001 ~rate_mult:4. ())
  in
  let ol = Option.get r.Engine.overload in
  checkb "tiny capacity still admits a quantum" true
    (ol.Engine.ol_admitted_requests > 0);
  checkb "but sheds nearly everything" true
    (ol.Engine.ol_shed_fraction > 0.5)

let test_breaker_storm_fails_over () =
  let faults =
    match Flo_faults.Fault_plan.of_string "read-error:rate=0.4,node=0" with
    | Ok f -> f
    | Error e -> Alcotest.failf "fault spec: %s" e
  in
  let p =
    { (overload_params ~breaker:{ spec with Breaker.node = Some 0 } ()) with
      Engine.faults;
      windows = 6;
    }
  in
  let r = Engine.simulate ~jobs:test_jobs ~config:small_config p in
  let ol = Option.get r.Engine.overload in
  let opened =
    Array.exists
      (Array.exists (fun c ->
           match c.Engine.aw_breaker with
           | Some (Breaker.Open _) -> true
           | _ -> false))
      ol.Engine.ol_admissions
  in
  checkb "storm opens the breaker" true opened;
  checkb "open breaker routes jobs along the failover path" true
    (ol.Engine.ol_failover_jobs > 0)

(* ---- determinism ------------------------------------------------------- *)

let render (r : Engine.result) =
  let base = Traffic_report.summary r ^ Traffic_report.verdict_line r in
  match r.Engine.overload with
  | None -> base
  | Some ol -> base ^ "\n" ^ Traffic_report.overload_line r ol

let test_overload_seed_deterministic () =
  let p =
    overload_params ~shed:(Some Overload.Brownout)
      ~breaker:Breaker.default ()
  in
  let run () = render (Engine.simulate ~jobs:test_jobs ~config:small_config p) in
  check_str "same seed renders identically" (run ()) (run ())

let overload_arb =
  QCheck.make
    ~print:(fun (tenants, seed, policy, capacity, breaker, rate_mult) ->
      Printf.sprintf "tenants=%d seed=%d policy=%s capacity=%g breaker=%b mult=%g"
        tenants seed
        (match policy with
        | None -> "off"
        | Some p -> Overload.policy_to_string p)
        capacity breaker rate_mult)
    QCheck.Gen.(
      let* tenants = int_range 1 10 in
      let* seed = small_nat in
      let* policy =
        oneofl
          [ Some Overload.Fail_fast; Some Overload.Priority;
            Some Overload.Brownout; None ]
      in
      let* capacity = oneofl [ 0.25; 1.0; 4.0 ] in
      let* breaker = bool in
      let* rate_mult = oneofl [ 1.; 8. ] in
      return (tenants, seed, policy, capacity, breaker, rate_mult))

let prop_overload_jobs_equivalence =
  QCheck.Test.make ~count:10
    ~name:"overload: reports identical at --jobs 1 and --jobs N"
    overload_arb
    (fun (tenants, seed, policy, capacity, breaker, rate_mult) ->
      QCheck.assume (policy <> None || breaker);
      let faults =
        match Flo_faults.Fault_plan.of_string "read-error:rate=0.1,node=0" with
        | Ok f -> f
        | Error _ -> assert false
      in
      let p =
        { (overload_params ~shed:policy ~capacity
             ?breaker:(if breaker then Some Breaker.default else None)
             ~rate_mult ())
          with
          Engine.tenants;
          seed;
          faults;
        }
      in
      let run jobs = render (Engine.simulate ~jobs ~config:small_config p) in
      run 1 = run test_jobs)

(* shed=off with no breaker is the plain engine: the result must be
   byte-identical to a run that never mentions overload at all *)
let test_controls_off_identity () =
  let plain =
    render (Engine.simulate ~jobs:1 ~config:small_config (storm_params 2.))
  in
  let off =
    render
      (Engine.simulate ~jobs:1 ~config:small_config
         { (storm_params 2.) with Engine.overload = None })
  in
  check_str "overload-off renders byte-identical" plain off

let suite =
  [
    ("split exact", `Quick, test_split_exact);
    ("params validation", `Quick, test_params_validation);
    ("breaker opens and cools", `Quick, test_breaker_opens_and_cools);
    ("breaker hysteresis no flap", `Quick, test_breaker_hysteresis_no_flap);
    ("breaker half-open holds", `Quick, test_breaker_half_open_no_traffic_holds);
    ("breaker spec round-trip", `Quick, test_breaker_spec_round_trip);
    ("collapse baseline", `Quick, test_collapse_baseline);
    ("admission accounting", `Quick, test_admission_accounting);
    ("min-one-job floor", `Quick, test_min_one_job_floor);
    ("breaker storm fails over", `Quick, test_breaker_storm_fails_over);
    ("seed determinism", `Quick, test_overload_seed_deterministic);
    ("controls-off identity", `Quick, test_controls_off_identity);
    QCheck_alcotest.to_alcotest prop_split_laws;
    QCheck_alcotest.to_alcotest prop_overload_jobs_equivalence;
  ]
