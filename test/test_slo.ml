(* SLO engine: parser grammar round-trips and structured errors, window
   scoring over degenerate inputs (zero traffic, all-error), budget/burn
   arithmetic, and the qcheck monotonicity law — turning a good window bad
   can never shrink consumption or alert counts. *)

open Flo_obs

let checkb = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---- parser ------------------------------------------------------------ *)

let test_parse_roundtrip () =
  List.iter
    (fun s ->
      match Slo.parse s with
      | Error msg -> Alcotest.failf "parse %S: %s" s msg
      | Ok spec -> (
        check_str (Printf.sprintf "canonical %S round-trips" s)
          (Slo.to_string spec)
          (match Slo.parse (Slo.to_string spec) with
          | Ok again -> Slo.to_string again
          | Error msg -> Alcotest.failf "re-parse %S: %s" (Slo.to_string spec) msg)))
    [
      "p99<800us@99.9"; "p50<2ms@99"; "p90<1s@90"; "err<0.5%@99.9"; "err<5%@50";
      "p99.9<250us@99.99";
    ]

let test_parse_units () =
  let threshold s =
    match Slo.parse s with
    | Ok { Slo.objective = Slo.Latency { threshold_us; _ }; _ } -> threshold_us
    | Ok _ -> Alcotest.failf "%S parsed as error-rate" s
    | Error msg -> Alcotest.failf "parse %S: %s" s msg
  in
  checkb "us" true (threshold "p99<800us@99" = 800.);
  checkb "ms" true (threshold "p99<2ms@99" = 2000.);
  checkb "s" true (threshold "p99<1.5s@99" = 1_500_000.)

let test_parse_errors () =
  List.iter
    (fun s ->
      checkb (Printf.sprintf "rejects %S" s) true (Result.is_error (Slo.parse s)))
    [
      ""; "p99<800"; "p99<800us"; "p99<800us@"; "p99<800us@0"; "p99<800us@100";
      "p99<800us@101"; "p0<1us@99"; "p100<1us@99"; "p99<-5us@99"; "p99<1xx@99";
      "err<0.5@99"; "err<-1%@99"; "err<101%@99"; "nonsense"; "p99>800us@99";
      "@99"; "err<%@99"; "p99<us@99";
    ]

(* ---- window scoring ---------------------------------------------------- *)

let spec_of s =
  match Slo.parse s with
  | Ok spec -> spec
  | Error msg -> Alcotest.failf "parse %S: %s" s msg

let test_good_window_rules () =
  let lat = spec_of "p99<100us@99" in
  (* empty window is good: no traffic violated anything *)
  checkb "empty window good" true (Slo.good lat { Slo.total = 0; breaching = 0 });
  (* p99: at most 1% of requests may breach *)
  checkb "exactly 1% breaching good" true
    (Slo.good lat { Slo.total = 100; breaching = 1 });
  checkb "over 1% breaching bad" false
    (Slo.good lat { Slo.total = 100; breaching = 2 });
  let err = spec_of "err<50%@99" in
  checkb "half failing good at 50%" true
    (Slo.good err { Slo.total = 10; breaching = 5 });
  checkb "all failing bad" false (Slo.good err { Slo.total = 10; breaching = 10 })

let test_zero_traffic_period () =
  let v =
    Slo.evaluate (spec_of "p99<100us@99")
      (Array.make 8 { Slo.total = 0; breaching = 0 })
  in
  check_int "no bad windows" 0 v.Slo.bad_windows;
  checkb "fully compliant" true v.Slo.compliant;
  checkb "compliance 1" true (v.Slo.compliance = 1.);
  checkb "burn 0" true (v.Slo.burn_rate = 0.);
  checkb "budget intact" true (v.Slo.budget_remaining = 1.);
  check_int "no pages" 0 v.Slo.fast_pages;
  check_int "no tickets" 0 v.Slo.slow_tickets

let test_all_error_period () =
  let v =
    Slo.evaluate (spec_of "err<0.5%@99")
      (Array.make 4 { Slo.total = 10; breaching = 10 })
  in
  check_int "every window bad" 4 v.Slo.bad_windows;
  checkb "not compliant" false v.Slo.compliant;
  checkb "compliance 0" true (v.Slo.compliance = 0.);
  (* all windows bad: burn = (bad/windows)/(1-target) = 1/0.01 = 100 *)
  checkb "burn = 1/(1-target)" true (Float.abs (v.Slo.burn_rate -. 100.) < 1e-9);
  checkb "budget gone" true (v.Slo.budget_remaining = 0.);
  checkb "pages fired" true (v.Slo.fast_pages > 0)

let test_empty_period () =
  let v = Slo.evaluate (spec_of "p99<100us@99") [||] in
  check_int "no windows" 0 v.Slo.windows;
  checkb "vacuously compliant" true v.Slo.compliant;
  checkb "compliance 1" true (v.Slo.compliance = 1.)

let test_evaluate_rejects_bad_samples () =
  let spec = spec_of "p99<100us@99" in
  List.iter
    (fun (label, s) ->
      checkb label true
        (match Slo.evaluate spec [| s |] with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [
      ("negative total", { Slo.total = -1; breaching = 0 });
      ("negative breaching", { Slo.total = 5; breaching = -2 });
      ("breaching over total", { Slo.total = 3; breaching = 4 });
    ]

let test_burn_rate_arithmetic () =
  (* 2 bad of 10 windows at target 90%: budget is exactly 1 window rate,
     burn = (2/10)/0.1 = 2, consumed = 2/1 = 2, remaining 0 *)
  let samples =
    Array.init 10 (fun i ->
        if i < 2 then { Slo.total = 10; breaching = 10 }
        else { Slo.total = 10; breaching = 0 })
  in
  let v = Slo.evaluate (spec_of "err<1%@90") samples in
  check_int "bad windows" 2 v.Slo.bad_windows;
  checkb "burn 2" true (Float.abs (v.Slo.burn_rate -. 2.) < 1e-9);
  checkb "consumed 2" true (Float.abs (v.Slo.budget_consumed -. 2.) < 1e-9);
  checkb "remaining 0" true (v.Slo.budget_remaining = 0.);
  checkb "not compliant" false v.Slo.compliant

(* ---- monotonicity (qcheck) --------------------------------------------- *)

(* flipping one good window to bad can only push the verdict towards
   alarm: bad count, consumption, burn, pages, and tickets never decrease,
   compliance and remaining budget never increase *)
let prop_flip_monotone =
  QCheck.Test.make ~count:200
    ~name:"slo: flipping a good window bad never relaxes the verdict"
    QCheck.(
      make
        ~print:(fun (n, flip, target) ->
          Printf.sprintf "windows=%d flip=%d target=%g" n flip target)
        Gen.(
          let* n = int_range 1 24 in
          let* flip = int_range 0 (n - 1) in
          let* target = oneofl [ 0.5; 0.9; 0.99; 0.999 ] in
          return (n, flip, target)))
    (fun (n, flip, target) ->
      let spec =
        { Slo.objective = Slo.Error_rate { max_rate = 0.01 }; target }
      in
      (* deterministic pseudo-random good/bad pattern, then force [flip]
         good so the flipped pair differs in exactly one window *)
      let base =
        Array.init n (fun i ->
            if (i * 2654435761) land 4 = 4 && i <> flip then
              { Slo.total = 100; breaching = 100 }
            else { Slo.total = 100; breaching = 0 })
      in
      let flipped = Array.copy base in
      flipped.(flip) <- { Slo.total = 100; breaching = 100 };
      let a = Slo.evaluate spec base and b = Slo.evaluate spec flipped in
      b.Slo.bad_windows >= a.Slo.bad_windows
      && b.Slo.burn_rate >= a.Slo.burn_rate
      && b.Slo.budget_consumed >= a.Slo.budget_consumed
      && b.Slo.budget_remaining <= a.Slo.budget_remaining
      && b.Slo.compliance <= a.Slo.compliance
      && b.Slo.fast_pages >= a.Slo.fast_pages
      && b.Slo.slow_tickets >= a.Slo.slow_tickets)

(* ---- metrics ----------------------------------------------------------- *)

let test_record_publishes_gauges () =
  let registry = Metrics.create () in
  let v =
    Slo.evaluate (spec_of "err<1%@90")
      [| { Slo.total = 10; breaching = 10 }; { Slo.total = 10; breaching = 0 } |]
  in
  Slo.record v ~labels:[ ("scope", "fleet") ] registry;
  let found = ref 0 in
  List.iter
    (fun (name, labels, value) ->
      match value with
      | Metrics.Gauge g
        when name = Slo.burn_rate_gauge && labels = [ ("scope", "fleet") ] ->
        incr found;
        checkb "burn gauge value" true (g = v.Slo.burn_rate)
      | Metrics.Gauge _ when name = Slo.budget_remaining_gauge -> incr found
      | _ -> ())
    (Metrics.to_list registry);
  check_int "both gauges published" 2 !found

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_flip_monotone ]

let suite =
  [
    ("parse round-trips", `Quick, test_parse_roundtrip);
    ("parse units", `Quick, test_parse_units);
    ("parse errors", `Quick, test_parse_errors);
    ("good-window rules", `Quick, test_good_window_rules);
    ("zero-traffic period", `Quick, test_zero_traffic_period);
    ("all-error period", `Quick, test_all_error_period);
    ("empty period", `Quick, test_empty_period);
    ("evaluate rejects bad samples", `Quick, test_evaluate_rejects_bad_samples);
    ("burn-rate arithmetic", `Quick, test_burn_rate_arithmetic);
    ("record publishes gauges", `Quick, test_record_publishes_gauges);
  ]
  @ qsuite
