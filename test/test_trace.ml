(* Request-level sampled tracing: id minting pinned to the fault-subsystem
   PRNG, trace/event JSON round-trips, the exemplar keep-max law, jobs
   equivalence of whole trace files, tail-sampling completeness under a
   fault storm, and the zero-overhead-when-off guarantee (tracing must
   never move a modeled number). *)

open Flo_traffic
module Trace = Flo_obs.Trace
module Histogram = Flo_obs.Histogram

let checkb = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let test_jobs = Test_parallel.test_jobs
let small_config = Test_parallel.small_config ~block_elems:16 ~threads:8
let toy_mix = [ Test_parallel.toy_col; Test_parallel.toy_row ]

let storm_plan =
  match
    Flo_faults.Fault_plan.of_string
      "read-error:rate=0.2;latency:rate=0.3,mult=6;retry:max=2,timeout=400"
  with
  | Ok p -> Flo_faults.Fault_plan.with_seed p 7
  | Error msg -> failwith msg

let traced_params ?(sample_rate = 4) ?(breach_us = 1e6) ?(faults = storm_plan)
    () =
  {
    (Engine.default_params ~mix:toy_mix) with
    Engine.tenants = 8;
    duration_s = 2.;
    rate = 1.5;
    sample = 1;
    windows = 4;
    faults;
    trace = Some { Tracer.default with Tracer.sample_rate; breach_us };
  }

let simulate ?(jobs = 1) params =
  Engine.simulate ~jobs ~config:small_config params

(* ---- id minting -------------------------------------------------------- *)

(* flo_obs sits below flo_faults, so Trace carries its own copy of the
   splitmix64 substream math; this equality is the contract that keeps the
   two from drifting apart *)
let test_mint_id_equals_prng_at () =
  List.iter
    (fun (seed, stream) ->
      for k = 0 to 64 do
        checkb
          (Printf.sprintf "mint_id = Prng.at (seed=%d stream=%d k=%d)" seed
             stream k)
          true
          (Trace.mint_id ~seed ~stream k = Flo_faults.Prng.at ~seed ~stream k)
      done)
    [ (0, 0); (42, 3); (7, 1024); (123456789, 17) ]

let test_id_string_roundtrip () =
  List.iter
    (fun id ->
      let s = Trace.id_to_string id in
      check_int "16 hex digits" 16 (String.length s);
      checkb "id_of_string inverts" true (Trace.id_of_string s = Some id))
    [ 0L; 1L; -1L; Int64.min_int; Int64.max_int; Trace.mint_id ~seed:1 ~stream:2 3 ];
  List.iter
    (fun bad -> checkb bad true (Trace.id_of_string bad = None))
    [ ""; "123"; "xyzxyzxyzxyzxyzx"; "00000000000000000" ]

(* ---- JSON round-trips -------------------------------------------------- *)

let sample_trace =
  let leaf name start_us dur_us = Trace.span ~name ~start_us ~dur_us () in
  Trace.make ~trace_id:0x00ffee11aa55cc01L ~tenant:3 ~app:"bt \"q\"" ~window:2
    ~shard:1 ~outcome:"timeout" ~latency_us:1234.5 ~count:7
    ~reasons:[ Trace.Fault_path; Trace.Breach; Trace.Fault_path ]
    ~root:
      (Trace.span ~name:"request" ~start_us:10. ~dur_us:1234.5
         ~children:
           [
             leaf "queue.congestion" 10. 1000.;
             Trace.span ~name:"service" ~start_us:1010. ~dur_us:234.5
               ~children:[ leaf "l1.miss" 1010. 25.; leaf "disk.timeout" 1035. 0. ]
               ();
           ]
         ())

let test_trace_json_roundtrip () =
  match Trace.of_json (Trace.to_json sample_trace) with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok t ->
    checkb "structural equality" true (t = sample_trace);
    (* make sorted and deduplicated the reasons *)
    checkb "reasons normalized" true (t.Trace.reasons = [ Trace.Breach; Trace.Fault_path ]);
    check_int "span_count" 5 (Trace.span_count t)

let test_trace_json_forward_compat () =
  (* unknown reasons drop; unknown trailing fields are ignored *)
  let line =
    {|{"trace_id":"000000000000002a","tenant":1,"app":"x","window":0,"shard":0,"outcome":"ok","lat_us":5.0,"count":1,"reasons":["head","flux_capacitor"],"root":{"name":"request","t_us":0.0,"dur_us":5.0},"future_field":[1,{"a":"b"}]}|}
  in
  (match Trace.of_json line with
  | Error msg -> Alcotest.failf "forward-compat parse failed: %s" msg
  | Ok t ->
    checkb "unknown reason dropped" true (t.Trace.reasons = [ Trace.Head ]);
    checkb "id parsed" true (t.Trace.trace_id = 42L));
  (* but reasons must not end up empty *)
  let only_unknown =
    {|{"trace_id":"000000000000002a","tenant":1,"app":"x","window":0,"shard":0,"outcome":"ok","lat_us":5.0,"count":1,"reasons":["flux_capacitor"],"root":{"name":"request","t_us":0.0,"dur_us":5.0}}|}
  in
  checkb "all-unknown reasons rejected" true
    (Result.is_error (Trace.of_json only_unknown))

let test_trace_json_rejects_deep_nesting () =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    {|{"trace_id":"0000000000000001","tenant":0,"app":"x","window":0,"shard":0,"outcome":"ok","lat_us":1.0,"count":1,"reasons":["head"],"root":|};
  for _ = 1 to 80 do
    Buffer.add_string b {|{"name":"s","t_us":0.0,"dur_us":1.0,"children":[|}
  done;
  Buffer.add_string b {|{"name":"s","t_us":0.0,"dur_us":1.0}|};
  for _ = 1 to 80 do
    Buffer.add_string b "]}"
  done;
  Buffer.add_string b "}";
  checkb "depth-bomb rejected" true (Result.is_error (Trace.of_json (Buffer.contents b)))

let test_event_other_roundtrip () =
  let line =
    {|{"t_us":1.5,"kind":"zstd_compact","layer":"l2","node":3,"thread":2,"file":4,"block":9,"lat_us":0.25}|}
  in
  match Flo_obs.Event.of_json line with
  | Error msg -> Alcotest.failf "unknown kind should parse: %s" msg
  | Ok e ->
    checkb "kind is Other" true (e.Flo_obs.Event.kind = Flo_obs.Event.Other "zstd_compact");
    (* and it survives a second trip through the wire format *)
    (match Flo_obs.Event.of_json (Flo_obs.Event.to_json e) with
    | Ok e2 -> checkb "Other round-trips" true (e2 = e)
    | Error msg -> Alcotest.failf "re-parse failed: %s" msg);
    (* the analyzer treats it as an opaque record rather than crashing *)
    let a = Flo_analysis.Analyzer.create () in
    Flo_analysis.Analyzer.feed a e

(* ---- exemplars --------------------------------------------------------- *)

let exemplar_arb =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (v, id) -> Printf.sprintf "(%g,%Ld)" v id) l))
    QCheck.Gen.(
      small_list (pair (oneofl [ 1.; 5.; 40.; 300.; 2500. ]) (map Int64.of_int (int_bound 6))))

(* keep-max law: a bucket's exemplars are exactly the top-cap entries of
   everything ever offered to it, ordered by (value desc, id asc), dedup *)
let prop_exemplar_keep_max =
  QCheck.Test.make ~count:200 ~name:"exemplars: keep-max law per bucket"
    exemplar_arb (fun adds ->
      let cap = 2 in
      let h = Histogram.create () in
      List.iter
        (fun (value, trace_id) -> Histogram.add_exemplar ~cap h ~value ~trace_id)
        adds;
      List.for_all
        (fun bucket ->
          let expected =
            List.filter (fun (v, _) -> Histogram.value_index h v = bucket) adds
            |> List.sort_uniq (fun (v1, i1) (v2, i2) ->
                   match compare v2 v1 with 0 -> compare i1 i2 | c -> c)
            |> List.filteri (fun i _ -> i < cap)
            |> List.map (fun (value, trace_id) -> { Histogram.value; trace_id })
          in
          Histogram.exemplars_of_bucket h bucket = expected)
        (List.init (Histogram.bucket_count h) Fun.id))

let prop_exemplar_merge_commutes =
  QCheck.Test.make ~count:200
    ~name:"exemplars: merge = adding everything into one histogram"
    (QCheck.pair exemplar_arb exemplar_arb) (fun (xs, ys) ->
      let fill adds =
        let h = Histogram.create () in
        List.iter (fun (value, trace_id) -> Histogram.add_exemplar h ~value ~trace_id) adds;
        h
      in
      let merged_ab = Histogram.merge (fill xs) (fill ys) in
      let merged_ba = Histogram.merge (fill ys) (fill xs) in
      let direct = fill (xs @ ys) in
      let view h =
        List.init (Histogram.bucket_count h) (Histogram.exemplars_of_bucket h)
      in
      view merged_ab = view direct && view merged_ba = view direct)

let test_exemplar_validation () =
  let h = Histogram.create () in
  checkb "rejects NaN" true
    (match Histogram.add_exemplar h ~value:Float.nan ~trace_id:1L with
    | () -> false
    | exception Invalid_argument _ -> true);
  checkb "rejects cap < 1" true
    (match Histogram.add_exemplar ~cap:0 h ~value:1. ~trace_id:1L with
    | () -> false
    | exception Invalid_argument _ -> true);
  checkb "no exemplars yet" true (not (Histogram.has_exemplars h));
  Histogram.add_exemplar h ~value:10. ~trace_id:5L;
  checkb "has exemplars now" true (Histogram.has_exemplars h);
  (* exemplars_at falls back to a populated bucket even when the p-bucket
     itself holds none *)
  Histogram.add h 10.;
  Histogram.add_many h 1e6 99;
  checkb "p99 falls back to the populated bucket" true
    (Histogram.exemplars_at h ~p:0.99 = [ { Histogram.value = 10.; trace_id = 5L } ])

(* ---- engine integration ------------------------------------------------ *)

let render_traces (r : Engine.result) =
  String.concat "\n" (List.map Trace.to_json r.Engine.traces)

let prop_trace_jobs_equivalence =
  QCheck.Test.make ~count:6
    ~name:"tracing: trace file and report identical at --jobs 1 and --jobs N"
    QCheck.(
      make
        ~print:(fun (seed, rate, storm) ->
          Printf.sprintf "seed=%d sample_rate=%d storm=%b" seed rate storm)
        Gen.(
          let* seed = small_nat in
          let* rate = oneofl [ 1; 4; 1 lsl 16 ] in
          let* storm = bool in
          return (seed, rate, storm)))
    (fun (seed, rate, storm) ->
      let params =
        {
          (traced_params ~sample_rate:rate
             ~faults:(if storm then storm_plan else Flo_faults.Fault_plan.empty)
             ())
          with
          Engine.seed;
        }
      in
      let render jobs =
        let r = simulate ~jobs params in
        render_traces r ^ "\n" ^ Traffic_report.summary r
        ^ Traffic_report.verdict_line r
      in
      render 1 = render test_jobs)

(* tracing observes the replay, it never steers it: every modeled number in
   the report must be byte-identical with tracing on, off, and at any
   sampling rate *)
let test_zero_overhead_when_off () =
  let traced = traced_params () in
  let untraced = { traced with Engine.trace = None } in
  let report p =
    let r = simulate p in
    Traffic_report.summary r ^ Traffic_report.verdict_line r
  in
  let off = report untraced in
  let has_needle hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  checkb "untraced report has no exemplar line" true
    (not (has_needle off "exemplar"));
  (* verdict + all modeled tables: strip only the exemplar line from the
     traced report, everything else must match the untraced one exactly *)
  let on_lines =
    String.split_on_char '\n' (report traced)
    |> List.filter (fun l -> not (has_needle l "exemplar traces:"))
  in
  check_str "reports identical modulo the exemplar line" off
    (String.concat "\n" on_lines);
  (* raising the sampling rate must not move modeled numbers either *)
  let r_sparse = simulate (traced_params ~sample_rate:(1 lsl 16) ()) in
  let r_dense = simulate (traced_params ~sample_rate:1 ()) in
  check_str "verdict invariant under sampling rate"
    (Traffic_report.verdict_line r_sparse)
    (Traffic_report.verdict_line r_dense)

let test_tail_sampling_completeness () =
  (* exhaustive view: head-sample every request, so every faulty request is
     visible as a count=1 head trace *)
  let dense = simulate (traced_params ~sample_rate:1 ()) in
  (* sparse view: head sampling effectively off, only the tail sampler *)
  let sparse = simulate (traced_params ~sample_rate:(1 lsl 30) ()) in
  let is_faulty (t : Trace.t) = t.Trace.outcome <> "ok" in
  let tail_ids r =
    List.filter_map
      (fun (t : Trace.t) ->
        if List.mem Trace.Fault_path t.Trace.reasons then Some t.Trace.trace_id
        else None)
      r.Engine.traces
  in
  (* the storm actually produced faulty requests *)
  checkb "storm produced faulty traces" true
    (List.exists is_faulty dense.Engine.traces);
  (* tail sampling is head-rate independent: the same fault groups are kept
     whether head sampling is dense or off *)
  checkb "tail set independent of head rate" true
    (tail_ids dense = tail_ids sparse);
  (* completeness: every faulty request seen in the exhaustive view is
     covered by a tail-sampled group trace of the same (tenant, window) even
     with head sampling off *)
  let tail_groups =
    List.filter_map
      (fun (t : Trace.t) ->
        if List.mem Trace.Fault_path t.Trace.reasons then
          Some (t.Trace.tenant, t.Trace.window, t.Trace.outcome)
        else None)
      sparse.Engine.traces
  in
  List.iter
    (fun (t : Trace.t) ->
      if is_faulty t then
        checkb
          (Printf.sprintf "faulty request (tenant=%d window=%d %s) tail-sampled"
             t.Trace.tenant t.Trace.window t.Trace.outcome)
          true
          (List.mem (t.Trace.tenant, t.Trace.window, t.Trace.outcome) tail_groups))
    dense.Engine.traces;
  (* conservation under head-sample-everything: head traces stand for
     exactly one request each and cover the whole run *)
  let head_count =
    List.fold_left
      (fun acc (t : Trace.t) ->
        if List.mem Trace.Head t.Trace.reasons then acc + t.Trace.count else acc)
      0 dense.Engine.traces
  in
  check_int "head traces cover every modeled request at rate 1"
    dense.Engine.total_requests head_count

let test_exemplars_reach_report () =
  let r = simulate (traced_params ()) in
  checkb "aggregate histogram carries exemplars" true
    (Histogram.has_exemplars r.Engine.agg_hist);
  let summary = Traffic_report.summary r in
  let has_needle hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  checkb "report names exemplar traces" true
    (has_needle summary "exemplar traces:");
  (* every advertised exemplar id resolves to a trace in the file *)
  let ids =
    List.map (fun (e : Histogram.exemplar) -> e.Histogram.trace_id)
      (Histogram.exemplars_at r.Engine.agg_hist ~p:0.99)
  in
  checkb "p99 exemplars non-empty" true (ids <> []);
  List.iter
    (fun id ->
      checkb
        (Printf.sprintf "exemplar %s resolves" (Trace.id_to_string id))
        true
        (List.exists (fun (t : Trace.t) -> t.Trace.trace_id = id) r.Engine.traces))
    ids

(* ---- perfetto ---------------------------------------------------------- *)

let test_perfetto_traces_stable () =
  let r = simulate (traced_params ~sample_rate:64 ()) in
  let traces = r.Engine.traces in
  checkb "have traces to export" true (traces <> []);
  let a = Flo_analysis.Perfetto.json_of_traces traces in
  let b = Flo_analysis.Perfetto.json_of_traces traces in
  check_str "repeated export byte-identical" a b;
  let has_needle hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (* slices carry the ids the CLI renders *)
  List.iter
    (fun (t : Trace.t) ->
      let id = Trace.id_to_string t.Trace.trace_id in
      checkb (Printf.sprintf "trace_id %s exported" id) true
        (has_needle a (Printf.sprintf {|"trace_id":"%s"|} id)))
    traces;
  checkb "span ids exported" true (has_needle a {|"span_id":"|})

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_exemplar_keep_max;
      prop_exemplar_merge_commutes;
      prop_trace_jobs_equivalence;
    ]

let suite =
  [
    ("mint_id = Prng.at", `Quick, test_mint_id_equals_prng_at);
    ("id string round-trip", `Quick, test_id_string_roundtrip);
    ("trace JSON round-trip", `Quick, test_trace_json_roundtrip);
    ("trace JSON forward-compat", `Quick, test_trace_json_forward_compat);
    ("trace JSON depth bomb", `Quick, test_trace_json_rejects_deep_nesting);
    ("event Other round-trip", `Quick, test_event_other_roundtrip);
    ("exemplar validation and fallback", `Quick, test_exemplar_validation);
    ("zero overhead when off", `Quick, test_zero_overhead_when_off);
    ("tail-sampling completeness", `Quick, test_tail_sampling_completeness);
    ("exemplars reach the report", `Quick, test_exemplars_reach_report);
    ("perfetto trace export stable", `Quick, test_perfetto_traces_stable);
  ]
  @ qsuite
