(* The multi-tenant traffic engine: statistical properties of the Zipf and
   arrival samplers (tolerance bands sized >= 5 sigma so random qcheck seeds
   cannot flake them), seed determinism and substream enumeration-order
   independence, the jobs-equivalence of `flopt traffic` output, kernel
   apportionment laws, and degenerate-input report coverage. *)

open Flo_traffic

let checkb = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let test_jobs = Test_parallel.test_jobs

(* ---- Zipf -------------------------------------------------------------- *)

let test_zipf_pmf_sums_to_one () =
  List.iter
    (fun (s, n) ->
      let z = Zipf.make ~s ~n in
      let total = ref 0. in
      for r = 0 to n - 1 do
        let p = Zipf.pmf z r in
        checkb "pmf positive" true (p > 0.);
        total := !total +. p
      done;
      checkb
        (Printf.sprintf "pmf sums to 1 (s=%g n=%d)" s n)
        true
        (Float.abs (!total -. 1.) < 1e-9);
      (* popularity is monotone decreasing in rank *)
      for r = 1 to n - 1 do
        checkb "pmf decreasing" true (Zipf.pmf z r <= Zipf.pmf z (r - 1))
      done)
    [ (0.5, 2); (1.1, 16); (2.0, 7); (1.0, 1) ]

let test_zipf_validation () =
  List.iter
    (fun (s, n) ->
      checkb
        (Printf.sprintf "rejects s=%g n=%d" s n)
        true
        (match Zipf.make ~s ~n with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ (0., 4); (-1., 4); (1.1, 0); (1.1, -3); (Float.nan, 4) ]

(* rank-frequency over 20k draws within an absolute band: each frequency is
   a binomial proportion with sd <= sqrt(0.25/20000) ~ 0.0035, so 0.025 is
   over 7 sigma *)
let prop_zipf_rank_frequency =
  QCheck.Test.make ~count:20
    ~name:"zipf: empirical rank frequencies track the pmf"
    QCheck.(
      make
        ~print:(fun (s, n, seed) -> Printf.sprintf "s=%g n=%d seed=%d" s n seed)
        Gen.(
          let* s = oneofl [ 0.7; 1.1; 1.5 ] in
          let* n = int_range 2 10 in
          let* seed = small_nat in
          return (s, n, seed)))
    (fun (s, n, seed) ->
      let z = Zipf.make ~s ~n in
      let prng = Flo_faults.Prng.for_stream ~seed ~stream:0 in
      let draws = 20_000 in
      let freq = Array.make n 0 in
      for _ = 1 to draws do
        let r = Zipf.sample z prng in
        if r < 0 || r >= n then QCheck.Test.fail_report "rank out of support";
        freq.(r) <- freq.(r) + 1
      done;
      Array.for_all Fun.id
        (Array.init n (fun r ->
             Float.abs
               ((float_of_int freq.(r) /. float_of_int draws) -. Zipf.pmf z r)
             < 0.025)))

(* ---- arrivals ---------------------------------------------------------- *)

(* 10k+ exponential draws: sample mean of inter-arrivals has sd
   (1/rate)/sqrt(n) ~ 0.2% of the mean, so a 5% band is ~25 sigma; the
   variance estimator's sd is var*sqrt(2/n) ~ 1.4%, so 20% is ~14 sigma *)
let test_poisson_interarrival_moments () =
  let rate = 5. in
  let prng = Flo_faults.Prng.for_stream ~seed:11 ~stream:3 in
  let n = 10_000 in
  let xs = Array.init n (fun _ -> Arrivals.exponential prng ~rate) in
  let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs /. float_of_int n
  in
  checkb "all positive" true (Array.for_all (fun x -> x >= 0.) xs);
  checkb
    (Printf.sprintf "mean %.4f ~ 1/rate" mean)
    true
    (Float.abs (mean -. (1. /. rate)) < 0.05 /. rate);
  checkb
    (Printf.sprintf "variance %.5f ~ 1/rate^2" var)
    true
    (Float.abs (var -. (1. /. (rate *. rate))) < 0.2 /. (rate *. rate))

(* arrival count over a long window: Poisson(rate*T) has sd sqrt(rate*T);
   a 5*sqrt band flakes ~1 in 3.5 million runs *)
let prop_arrival_count_tracks_rate =
  QCheck.Test.make ~count:20 ~name:"arrivals: count ~ rate * duration"
    QCheck.(
      make
        ~print:(fun (rate, seed, bursty) ->
          Printf.sprintf "rate=%g seed=%d bursty=%b" rate seed bursty)
        Gen.(
          let* rate = oneofl [ 2.; 8. ] in
          let* seed = small_nat in
          let* bursty = bool in
          return (rate, seed, bursty)))
    (fun (rate, seed, bursty) ->
      let process =
        if bursty then Arrivals.Bursty { on_s = 3.; off_s = 1. }
        else Arrivals.Poisson
      in
      let duration_s = 500. in
      let prng = Flo_faults.Prng.for_stream ~seed ~stream:1 in
      let n = Arrivals.count prng ~process ~rate ~duration_s in
      let expected = rate *. duration_s in
      (* the on/off modulation widens the count spread; double the band *)
      let band = (if bursty then 10. else 5.) *. sqrt expected in
      Float.abs (float_of_int n -. expected) < band)

let test_arrivals_ordered_and_in_window () =
  List.iter
    (fun process ->
      let prng = Flo_faults.Prng.for_stream ~seed:5 ~stream:2 in
      let last = ref (-1.) in
      let n = ref 0 in
      Arrivals.iter prng ~process ~rate:4. ~duration_s:25. (fun t ->
          checkb "within window" true (t >= 0. && t < 25.);
          checkb "non-decreasing" true (t >= !last);
          last := t;
          incr n);
      checkb "some arrivals" true (!n > 0))
    [ Arrivals.Poisson; Arrivals.Bursty { on_s = 0.5; off_s = 0.5 } ]

let test_arrivals_validation () =
  List.iter
    (fun p ->
      checkb "invalid process rejected" true
        (Result.is_error (Arrivals.validate p)))
    [
      Arrivals.Bursty { on_s = 0.; off_s = 1. };
      Arrivals.Bursty { on_s = 1.; off_s = -1. };
      Arrivals.Bursty { on_s = Float.nan; off_s = 1. };
    ];
  checkb "poisson valid" true (Result.is_ok (Arrivals.validate Arrivals.Poisson))

(* ---- seed determinism -------------------------------------------------- *)

let test_same_seed_same_event_stream () =
  let timeline seed =
    let prng = Flo_faults.Prng.for_stream ~seed ~stream:7 in
    let acc = ref [] in
    Arrivals.iter prng ~process:(Arrivals.Bursty { on_s = 2.; off_s = 1. })
      ~rate:3. ~duration_s:50.
      (fun t -> acc := t :: !acc);
    List.rev !acc
  in
  checkb "same seed, identical timeline" true (timeline 42 = timeline 42);
  checkb "different seed, different timeline" true (timeline 42 <> timeline 43)

let small_config = Test_parallel.small_config ~block_elems:16 ~threads:8
let toy_mix = [ Test_parallel.toy_col; Test_parallel.toy_row ]

let toy_params =
  {
    (Engine.default_params ~mix:toy_mix) with
    Engine.tenants = 12;
    duration_s = 3.;
    rate = 1.5;
    sample = 1;
  }

let test_simulate_replay_exact () =
  let render () =
    let r = Engine.simulate ~jobs:1 ~config:small_config toy_params in
    Traffic_report.summary r ^ Traffic_report.verdict_line r
  in
  check_str "two runs render identically" (render ()) (render ())

(* a tenant's substreams are keyed by (seed, tenant), never by enumeration
   order: growing the tenant count must not disturb earlier tenants' layout
   decisions or job counts *)
let test_substreams_enumeration_independent () =
  let stats tenants =
    Engine.simulate ~jobs:1 ~config:small_config
      { toy_params with Engine.tenants }
  in
  let small = stats 5 and large = stats 11 in
  for t = 0 to 4 do
    let a = small.Engine.tenants_stats.(t)
    and b = large.Engine.tenants_stats.(t) in
    checkb
      (Printf.sprintf "tenant %d layout decision stable" t)
      true
      (a.Engine.optimized = b.Engine.optimized);
    check_int (Printf.sprintf "tenant %d job count stable" t) a.Engine.jobs
      b.Engine.jobs;
    checkb
      (Printf.sprintf "tenant %d rank mix stable" t)
      true
      (a.Engine.rank_jobs = b.Engine.rank_jobs)
  done

(* ---- jobs equivalence (qcheck) ----------------------------------------- *)

let traffic_params_arb =
  QCheck.make
    ~print:(fun (tenants, seed, zipf_s, opt_share, bursty, noisy) ->
      Printf.sprintf "tenants=%d seed=%d zipf=%g opt=%g bursty=%b noisy=%g"
        tenants seed zipf_s opt_share bursty noisy)
    QCheck.Gen.(
      let* tenants = int_range 0 10 in
      let* seed = small_nat in
      let* zipf_s = oneofl [ 0.8; 1.1; 1.6 ] in
      let* opt_share = oneofl [ 0.; 0.5; 1. ] in
      let* bursty = bool in
      let* noisy = oneofl [ 1.; 4. ] in
      return (tenants, seed, zipf_s, opt_share, bursty, noisy))

let prop_traffic_jobs_equivalence =
  QCheck.Test.make ~count:10
    ~name:"traffic: gated output identical at --jobs 1 and --jobs N"
    traffic_params_arb
    (fun (tenants, seed, zipf_s, opt_share, bursty, noisy) ->
      let params =
        {
          (Engine.default_params ~mix:toy_mix) with
          Engine.tenants;
          seed;
          duration_s = 2.;
          zipf_s;
          opt_share;
          noisy_boost = noisy;
          process =
            (if bursty then Arrivals.Bursty { on_s = 1.; off_s = 0.5 }
             else Arrivals.Poisson);
          sample = 1;
        }
      in
      let render jobs =
        let r = Engine.simulate ~jobs ~config:small_config params in
        Traffic_report.summary r ^ Traffic_report.verdict_line r
      in
      render 1 = render test_jobs)

(* ---- kernels ----------------------------------------------------------- *)

let test_kernel_compile_shapes () =
  List.iter
    (fun mode ->
      let k = Kernel.compile ~config:small_config ~mode Test_parallel.toy_col in
      checkb "requests positive" true (k.Kernel.requests_per_job > 0);
      checkb "demand positive" true (k.Kernel.demand_us_per_job > 0.);
      checkb "classes non-empty" true (Array.length k.Kernel.classes > 0);
      let wsum =
        Array.fold_left (fun a c -> a +. c.Kernel.weight) 0. k.Kernel.classes
      in
      checkb "weights sum to 1" true (Float.abs (wsum -. 1.) < 1e-9);
      Array.iter
        (fun c -> checkb "latency positive" true (c.Kernel.latency_us > 0.))
        k.Kernel.classes)
    [ Kernel.Default; Kernel.Inter ]

let prop_apportion_sums_exactly =
  QCheck.Test.make ~count:100
    ~name:"kernel: apportionment sums exactly to the request count"
    QCheck.(pair (int_bound 2_000_000) (int_bound 1000))
    (fun (requests, salt) ->
      let k =
        Kernel.compile ~config:small_config
          ~mode:(if salt mod 2 = 0 then Kernel.Default else Kernel.Inter)
          Test_parallel.toy_row
      in
      let counts = Kernel.apportion k ~requests in
      Array.length counts = Array.length k.Kernel.classes
      && Array.for_all (fun c -> c >= 0) counts
      && Array.fold_left ( + ) 0 counts = requests
      && Kernel.apportion k ~requests = counts)

(* ---- degenerate inputs ------------------------------------------------- *)

let test_degenerate_reports_render () =
  let render params =
    let r = Engine.simulate ~jobs:1 ~config:small_config params in
    let s = Traffic_report.summary r ^ Traffic_report.verdict_line r in
    checkb "renders non-empty" true (String.length s > 0);
    r
  in
  (* zero tenants: no traffic at all *)
  let r0 = render { toy_params with Engine.tenants = 0 } in
  check_int "0 tenants, 0 requests" 0 r0.Engine.total_requests;
  checkb "0 tenants, fairness 1" true (r0.Engine.fairness = 1.);
  checkb "0 tenants, p99 0" true (r0.Engine.agg_p99_us = 0.);
  (* one tenant: no neighbors to be noisy towards *)
  let r1 = render { toy_params with Engine.tenants = 1; noisy_boost = 4. } in
  checkb "1 tenant, no noisy delta" true (r1.Engine.noisy_p99_delta_pct = None);
  (* single-app mix, everything optimized: no default cohort to compare *)
  let rs =
    render
      {
        toy_params with
        Engine.mix = [ Test_parallel.toy_col ];
        opt_share = 1.;
        tenants = 3;
      }
  in
  checkb "single-app mix, no opt delta" true (rs.Engine.opt_p50_advantage_pct = None);
  (* empty-histogram percentile edge straight through the Report path *)
  let h = Flo_obs.Histogram.create () in
  checkb "empty histogram p99 = 0" true (Flo_obs.Histogram.percentile h 0.99 = 0.)

let test_validate_rejects_bad_params () =
  List.iter
    (fun (label, p) ->
      checkb label true (Result.is_error (Engine.validate p)))
    [
      ("empty mix", { toy_params with Engine.mix = [] });
      ("negative tenants", { toy_params with Engine.tenants = -1 });
      ("zero duration", { toy_params with Engine.duration_s = 0. });
      ("zero rate", { toy_params with Engine.rate = 0. });
      ("zero zipf", { toy_params with Engine.zipf_s = 0. });
      ("opt share over 1", { toy_params with Engine.opt_share = 1.5 });
      ("noisy below 1", { toy_params with Engine.noisy_boost = 0.5 });
      ("zero sample", { toy_params with Engine.sample = 0 });
      ( "bad burst",
        { toy_params with Engine.process = Arrivals.Bursty { on_s = 0.; off_s = 1. } } );
    ];
  checkb "defaults valid" true (Result.is_ok (Engine.validate toy_params))

let test_metrics_counters_recorded () =
  let registry = Flo_obs.Metrics.create () in
  let r =
    Engine.simulate ~jobs:test_jobs ~metrics:registry ~config:small_config
      toy_params
  in
  let total =
    List.fold_left
      (fun acc (name, _, v) ->
        match v with
        | Flo_obs.Metrics.Counter c when name = "traffic.requests" -> acc + c
        | _ -> acc)
      0
      (Flo_obs.Metrics.to_list registry)
  in
  check_int "per-tenant request counters sum to the total" r.Engine.total_requests
    total

(* ---- SLO over the engine ----------------------------------------------- *)

let slo_spec s =
  match Flo_obs.Slo.parse s with
  | Ok spec -> spec
  | Error msg -> Alcotest.failf "parse %S: %s" s msg

let storm_plan =
  match Flo_faults.Fault_plan.of_string "read-error:rate=0.05" with
  | Ok p -> Flo_faults.Fault_plan.with_seed p 7
  | Error msg -> Alcotest.failf "fault plan: %s" msg

let test_slo_windows_jobs_equivalent () =
  (* the full windowed SLO report — congestion multipliers, burn rates,
     alerts, faults baked into the kernels — must be byte-identical at
     every jobs setting *)
  let params =
    {
      toy_params with
      Engine.tenants = 6;
      windows = 5;
      opt_share = 0.5;
      faults = storm_plan;
    }
  in
  let render spec_str jobs =
    let r = Engine.simulate ~jobs ~config:small_config params in
    let e = Slo_eval.evaluate (slo_spec spec_str) r in
    Slo_report.summary r e ^ Slo_report.verdict_line r e
  in
  List.iter
    (fun spec_str ->
      check_str
        (Printf.sprintf "%s report jobs-invariant" spec_str)
        (render spec_str 1)
        (render spec_str test_jobs))
    [ "p99<500us@99"; "err<0.5%@99.9" ]

let test_slo_storm_burns_default_cohort_more () =
  (* a read-error storm: failures happen on disk reads, and the optimized
     layouts do fewer of them per element access, so the default cohort
     must consume more error budget *)
  let params =
    {
      toy_params with
      Engine.tenants = 8;
      windows = 4;
      opt_share = 0.5;
      faults = storm_plan;
    }
  in
  let r = Engine.simulate ~jobs:test_jobs ~config:small_config params in
  (* threshold sits between the cohorts' error rates: the default layouts'
     extra disk reads push their windows over it, the optimized stay under *)
  let e = Slo_eval.evaluate (slo_spec "err<0.5%@99.9") r in
  let burn optimized =
    match
      List.find_opt
        (fun (row : Slo_eval.row) -> row.Slo_eval.scope = Slo_eval.Cohort optimized)
        e.Slo_eval.cohort_rows
    with
    | Some row -> row.Slo_eval.verdict.Flo_obs.Slo.budget_consumed
    | None -> Alcotest.failf "missing cohort row (optimized=%b)" optimized
  in
  checkb "storm burns budget at all" true (burn false > 0.);
  checkb "default cohort burns more than optimized" true (burn false > burn true)

let test_slo_fault_free_run_has_no_errors () =
  let params = { toy_params with Engine.tenants = 4; windows = 4 } in
  let r = Engine.simulate ~jobs:1 ~config:small_config params in
  let e = Slo_eval.evaluate (slo_spec "err<0.01%@99.9") r in
  let v = e.Slo_eval.fleet.Slo_eval.verdict in
  checkb "no error burn without faults" true (v.Flo_obs.Slo.burn_rate = 0.);
  checkb "compliant" true v.Flo_obs.Slo.compliant

let test_windows_param_validation () =
  checkb "zero windows rejected" true
    (Result.is_error (Engine.validate { toy_params with Engine.windows = 0 }));
  checkb "negative windows rejected" true
    (Result.is_error (Engine.validate { toy_params with Engine.windows = -2 }));
  checkb "many windows fine" true
    (Result.is_ok (Engine.validate { toy_params with Engine.windows = 64 }))

let test_windowed_totals_match_aggregate () =
  (* windowing repartitions the same jobs: per-window rank ledgers must sum
     to the aggregate rank ledger, at every windows setting *)
  let totals params =
    let r = Engine.simulate ~jobs:1 ~config:small_config params in
    Array.map
      (fun (s : Engine.tenant_stats) ->
        let summed = Array.make (Array.length s.Engine.rank_jobs) 0 in
        Array.iter
          (Array.iteri (fun rank n -> summed.(rank) <- summed.(rank) + n))
          s.Engine.window_rank_jobs;
        (s.Engine.jobs, s.Engine.rank_jobs, summed))
      r.Engine.tenants_stats
  in
  List.iter
    (fun windows ->
      Array.iter
        (fun (jobs, rank_jobs, summed) ->
          checkb
            (Printf.sprintf "windows=%d ledger sums to aggregate" windows)
            true
            (rank_jobs = summed);
          check_int
            (Printf.sprintf "windows=%d ledger sums to job count" windows)
            jobs
            (Array.fold_left ( + ) 0 summed))
        (totals { toy_params with Engine.tenants = 5; windows }))
    [ 1; 3; 8 ]

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_zipf_rank_frequency;
      prop_arrival_count_tracks_rate;
      prop_traffic_jobs_equivalence;
      prop_apportion_sums_exactly;
    ]

let suite =
  [
    ("zipf pmf", `Quick, test_zipf_pmf_sums_to_one);
    ("zipf validation", `Quick, test_zipf_validation);
    ("poisson inter-arrival moments", `Quick, test_poisson_interarrival_moments);
    ("arrivals ordered in window", `Quick, test_arrivals_ordered_and_in_window);
    ("arrivals validation", `Quick, test_arrivals_validation);
    ("same seed, same event stream", `Quick, test_same_seed_same_event_stream);
    ("simulate replay-exact", `Quick, test_simulate_replay_exact);
    ("substreams enumeration-independent", `Quick, test_substreams_enumeration_independent);
    ("kernel compile shapes", `Quick, test_kernel_compile_shapes);
    ("degenerate reports render", `Quick, test_degenerate_reports_render);
    ("params validation", `Quick, test_validate_rejects_bad_params);
    ("metrics counters recorded", `Quick, test_metrics_counters_recorded);
    ("slo report jobs-invariant", `Quick, test_slo_windows_jobs_equivalent);
    ("slo storm burns default cohort more", `Quick,
     test_slo_storm_burns_default_cohort_more);
    ("slo fault-free run clean", `Quick, test_slo_fault_free_run_has_no_errors);
    ("windows validation", `Quick, test_windows_param_validation);
    ("windowed ledgers sum to aggregate", `Quick,
     test_windowed_totals_match_aggregate);
  ]
  @ qsuite
