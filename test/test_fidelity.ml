(* Model-fidelity telemetry: the compiler-side predictions (Predict) joined
   against observed run analytics (Fidelity), and their rendering.

   The headline guarantees pinned here:
   - under matching run parameters the analytical model is EXACT — all 16
     apps under the inter-node layout show zero drift (golden file);
   - a deliberately mis-parameterized model (wrong block size) produces
     nonzero, flagged drift (golden file). *)

open Flo_workloads
open Flo_engine
module F = Flo_fidelity.Fidelity
module P = Flo_fidelity.Predict

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let config = Config.default

let fidelity_of ?tolerance ?predict_block_elems ?sample app =
  fst
    (Experiment.fidelity ?tolerance ?predict_block_elems ?sample
       ~layouts:(Experiment.inter_layouts config app)
       config app)

let read_golden path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let check_golden path actual =
  (* regenerate with: FLOPT_GOLDEN_UPDATE=$PWD/test dune exec test/main.exe -- test fidelity -q *)
  match Sys.getenv_opt "FLOPT_GOLDEN_UPDATE" with
  | Some dir ->
    let oc = open_out_bin (Filename.concat dir path) in
    output_string oc actual;
    close_out oc
  | None -> Alcotest.(check string) "matches golden file" (read_golden path) actual

(* every app of the suite, inter-node layout, default config: the model must
   reproduce the run exactly — drift 0 everywhere *)
let test_suite_zero_drift_golden () =
  let lines =
    List.map
      (fun app ->
        let fd = fidelity_of app in
        checkb (app.App.name ^ " ok") true (F.ok fd);
        check (app.App.name ^ " max abs drift") 0 (F.max_abs_drift fd);
        Report.fidelity_line fd)
      Suite.all
  in
  check_golden "golden_fidelity_suite.expected"
    (String.concat "\n" lines ^ "\n")

(* predictions made for 32-element blocks against a 64-element-block run:
   every row must drift and be flagged at zero tolerance *)
let test_block_mismatch_golden () =
  let app = Suite.find "cc-ver-1" in
  let fd = fidelity_of ~predict_block_elems:32 app in
  checkb "not ok" false (F.ok fd);
  checkb "has flagged rows" true (F.flagged fd <> []);
  checkb "nonzero drift" true (F.max_abs_drift fd > 0);
  check_golden "golden_fidelity_mismatch.expected" (Report.fidelity_summary fd)

let test_sampled_run_still_exact () =
  let fd = fidelity_of ~sample:8 (Suite.find "wupwise") in
  checkb "ok under sampling" true (F.ok fd);
  check "max abs drift" 0 (F.max_abs_drift fd)

let test_default_layout_also_exact () =
  (* the model is layout-generic: row-major predictions match too *)
  let app = Suite.find "astro" in
  let fd, _ =
    Experiment.fidelity ~layouts:(Experiment.default_layouts app) config app
  in
  checkb "ok" true (F.ok fd);
  check "max abs drift" 0 (F.max_abs_drift fd)

let test_tolerance_masks_drift () =
  let app = Suite.find "cc-ver-1" in
  let strict = fidelity_of ~predict_block_elems:32 app in
  let lax = fidelity_of ~tolerance:0.6 ~predict_block_elems:32 app in
  checkb "strict flags" true (F.flagged strict <> []);
  (* the 32-vs-64 mismatch doubles block counts: 50% relative error < 60% *)
  check "lax flags none" 0 (List.length (F.flagged lax));
  checkb "same drift either way" true
    (F.max_abs_drift strict = F.max_abs_drift lax)

let test_predict_layer_expectations () =
  let app = Suite.find "cc-ver-1" in
  let fd = fidelity_of app in
  let p = fd.F.predict in
  checkb "arrays predicted" true (p.P.arrays <> []);
  List.iter
    (fun (ap : P.array_prediction) ->
      checkb (ap.P.array_name ^ " optimized") true ap.P.optimized;
      checkb (ap.P.array_name ^ " block aligned") true ap.P.block_aligned;
      checkb (ap.P.array_name ^ " has layers") true (ap.P.layers <> []);
      List.iter
        (fun (l : P.layer_expect) ->
          checkb "capacity positive" true (l.P.capacity > 0);
          checkb "sharing positive" true (l.P.threads_sharing > 0);
          check "whole blocks" 0 (l.P.capacity mod p.P.block_elems))
        ap.P.layers)
    p.P.arrays;
  (* Step II claim: the inter-node layout leaves no block with two owners *)
  checkb "single owner" true p.P.single_owner;
  check "cross shared" 0 p.P.cross_shared_blocks

let test_record_publishes_gauges () =
  let fd = fidelity_of (Suite.find "cc-ver-1") in
  let registry = Flo_obs.Metrics.create () in
  F.record fd registry;
  let labels = [ ("app", "cc-ver-1") ] in
  List.iter
    (fun name ->
      match Flo_obs.Metrics.find registry ~labels name with
      | Some (Flo_obs.Metrics.Gauge v) ->
        Alcotest.(check (float 0.)) name 0. v
      | _ -> Alcotest.failf "gauge %s missing" name)
    [
      "fidelity.distinct.max_abs_drift";
      "fidelity.distinct.max_rel_drift";
      "fidelity.sharing.abs_drift";
      "fidelity.flagged_rows";
      "fidelity.layer_violations";
    ]

let test_predict_validates_args () =
  let app = Suite.find "cc-ver-1" in
  let layouts = Experiment.inter_layouts config app in
  Alcotest.check_raises "sample 0"
    (Invalid_argument "Predict.compute: sample < 1") (fun () ->
      ignore
        (P.compute ~sample:0 ~block_elems:64 ~threads:4 ~name:"x" ~layouts
           app.App.program));
  Alcotest.check_raises "negative tolerance"
    (Invalid_argument "Fidelity.join: negative tolerance") (fun () ->
      let fd = fidelity_of app in
      ignore
        (F.join ~tolerance:(-0.1) ~predict:fd.F.predict
           ~observed:(Flo_analysis.Analyzer.create ()) ()))

(* drift arithmetic on synthetic rows *)
let test_row_drift_arithmetic () =
  let row predicted observed = { F.thread = 0; file = 0; predicted; observed } in
  check "abs" 3 (F.abs_drift (row 10 13));
  Alcotest.(check (float 1e-9)) "rel" 0.3 (F.rel_drift (row 10 13));
  Alcotest.(check (float 0.)) "both zero" 0. (F.rel_drift (row 0 0));
  checkb "zero prediction, nonzero observation" true
    (F.rel_drift (row 0 5) = infinity)

(* flagging is monotone in tolerance: anything flagged at a higher tolerance
   is flagged at every lower one *)
let prop_flagged_monotone =
  QCheck.Test.make ~count:200 ~name:"fidelity flagged monotone in tolerance"
    QCheck.(
      triple
        (small_list (pair (int_bound 50) (int_bound 50)))
        (float_bound_inclusive 1.) (float_bound_inclusive 1.))
    (fun (cells, t1, t2) ->
      let lo = Float.min t1 t2 and hi = Float.max t1 t2 in
      let rows =
        List.mapi
          (fun i (p, o) -> { F.thread = i; file = 0; predicted = p; observed = o })
          cells
      in
      let flagged tol =
        List.filter (fun r -> F.rel_drift r > tol) rows
      in
      List.for_all (fun r -> List.memq r (flagged lo)) (flagged hi))

(* -- layout drift watch ---------------------------------------------------- *)

module D = Flo_fidelity.Drift

let base_signal =
  {
    D.miss_l1 = 0.05;
    miss_l2 = 0.02;
    cross_shared = 4;
    sharing = [| [| 0; 2 |]; [| 2; 0 |] |];
    fidelity_rel = 0.;
  }

let shifted_signal =
  { base_signal with D.miss_l1 = 0.2; miss_l2 = 0.09; cross_shared = 11 }

let observe_n d s n =
  let r = ref d in
  for _ = 1 to n do
    r := D.observe !r s
  done;
  !r

let test_drift_quiet_on_identical () =
  let d = observe_n (D.create ~baseline:base_signal ()) base_signal 6 in
  Alcotest.(check int) "windows" 6 (D.windows_seen d);
  checkb "no recommendation" false (D.recommended d);
  checkb "no reasons" true (D.reasons d = []);
  Alcotest.(check (float 0.)) "score zero" 0. (D.last_score d);
  checkb "status says no" true
    (let s = D.status_line d in
     String.length s > 0
     &&
     let rec contains i =
       i + 12 <= String.length s
       && (String.sub s i 12 = "recommend=no" || contains (i + 1))
     in
     contains 0)

let test_drift_flags_after_streak () =
  let d0 = D.create ~baseline:base_signal () in
  let score, reasons = D.score d0 shifted_signal in
  checkb "window scores above enter" true (score >= D.default_config.D.enter);
  checkb "reasons name components" true (reasons <> []);
  let d1 = D.observe d0 shifted_signal in
  checkb "one high window is not enough" false (D.recommended d1);
  let d2 = D.observe d1 shifted_signal in
  checkb "streak of 2 raises" true (D.recommended d2);
  checkb "reasons attached on flip" true (D.reasons d2 <> [])

let test_drift_hysteresis () =
  let on =
    observe_n (D.create ~baseline:base_signal ()) shifted_signal
      D.default_config.D.enter_streak
  in
  checkb "raised" true (D.recommended on);
  let low1 = D.observe on base_signal in
  checkb "one quiet window does not clear" true (D.recommended low1);
  let low2 = D.observe low1 base_signal in
  checkb "streak of 2 clears" false (D.recommended low2);
  checkb "reasons cleared" true (D.reasons low2 = []);
  (* alternating noise never accumulates a streak in either direction *)
  let d = ref (D.create ~baseline:base_signal ()) in
  for _ = 1 to 4 do
    d := D.observe (D.observe !d shifted_signal) base_signal
  done;
  checkb "alternating windows never raise" false (D.recommended !d)

let test_drift_matrix_zero_padding () =
  (* a larger matrix whose extra rows/cols are all zero is the same
     observation — no matrix component fires *)
  let padded =
    {
      base_signal with
      D.sharing = [| [| 0; 2; 0 |]; [| 2; 0; 0 |]; [| 0; 0; 0 |] |];
    }
  in
  let d = D.create ~baseline:base_signal () in
  let score, reasons = D.score d padded in
  Alcotest.(check (float 0.)) "padded matrix scores zero" 0. score;
  checkb "no reasons" true (reasons = []);
  (* genuinely moved sharing mass fires the matrix component *)
  let moved =
    { base_signal with D.sharing = [| [| 0; 0 |]; [| 0; 4 |] |] }
  in
  let _, reasons = D.score d moved in
  checkb "matrix shift named" true
    (List.exists (function D.Matrix_shift _ -> true | _ -> false) reasons)

let test_drift_config_validation () =
  let bad =
    [
      ("exit above enter", { D.default_config with D.exit_ = 0.5 });
      ("negative exit", { D.default_config with D.exit_ = -0.1 });
      ("zero enter streak", { D.default_config with D.enter_streak = 0 });
      ("zero exit streak", { D.default_config with D.exit_streak = 0 });
    ]
  in
  List.iter
    (fun (label, c) ->
      checkb label true (Result.is_error (D.validate_config c));
      checkb (label ^ " raises on create") true
        (match D.create ~config:c ~baseline:base_signal () with
        | _ -> false
        | exception Invalid_argument _ -> true))
    bad;
  checkb "default config valid" true
    (Result.is_ok (D.validate_config D.default_config))

let test_drift_signal_phase_shift () =
  (* the synthetic phase shift: the baseline was captured under the
     optimized layouts; the same program running under default layouts is
     a workload the layouts no longer fit, and must score above enter *)
  let app = Suite.find "mgrid" in
  let baseline =
    Experiment.drift_signal ~layouts:(Experiment.inter_layouts config app)
      config app
  in
  let observed =
    Experiment.drift_signal ~layouts:(Experiment.default_layouts app) config app
  in
  let d = D.create ~baseline () in
  let unshifted, none = D.score d baseline in
  Alcotest.(check (float 0.)) "unshifted window scores zero" 0. unshifted;
  checkb "unshifted has no reasons" true (none = []);
  let shifted, reasons = D.score d observed in
  checkb "shifted window scores above enter" true
    (shifted >= D.default_config.D.enter);
  checkb "shifted names at least one component" true (reasons <> []);
  checkb "reason lines render" true
    (List.for_all (fun r -> String.length (D.reason_to_string r) > 0) reasons)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_flagged_monotone ]

let suite =
  [
    ("16-app suite: zero drift under inter (golden)", `Quick, test_suite_zero_drift_golden);
    ("block-size mismatch drifts and flags (golden)", `Quick, test_block_mismatch_golden);
    ("sampled run stays exact", `Quick, test_sampled_run_still_exact);
    ("default layout also exact", `Quick, test_default_layout_also_exact);
    ("tolerance masks flagging, not drift", `Quick, test_tolerance_masks_drift);
    ("Step II layer expectations", `Quick, test_predict_layer_expectations);
    ("record publishes gauges", `Quick, test_record_publishes_gauges);
    ("argument validation", `Quick, test_predict_validates_args);
    ("row drift arithmetic", `Quick, test_row_drift_arithmetic);
    ("drift watch: quiet on identical windows", `Quick, test_drift_quiet_on_identical);
    ("drift watch: flags after enter streak", `Quick, test_drift_flags_after_streak);
    ("drift watch: hysteresis", `Quick, test_drift_hysteresis);
    ("drift watch: matrix zero-padding", `Quick, test_drift_matrix_zero_padding);
    ("drift watch: config validation", `Quick, test_drift_config_validation);
    ("drift watch: phase shift recommends re-layout", `Quick, test_drift_signal_phase_shift);
  ]
  @ qsuite
