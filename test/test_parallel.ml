(* The multicore experiment engine: Parallel's determinism contract (order,
   exceptions, jobs-independence), the qcheck jobs-equivalence property over
   random small experiment grids, manifest equality for Bench_json, and the
   golden fast-path/reference equality for Tracegen across the 16-app
   suite. *)

open Flo_storage
open Flo_workloads
open Flo_engine

let checkb = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* worker-domain count exercised against the jobs=1 reference; FLOPT_TEST_JOBS
   overrides (CI runs the suite at several values) *)
let test_jobs =
  match Sys.getenv_opt "FLOPT_TEST_JOBS" with
  | Some s -> (match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 4)
  | None -> 4

(* ---- Parallel ---------------------------------------------------------- *)

let test_map_matches_sequential () =
  let input = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  let seq = Parallel.map ~jobs:1 f input in
  let par = Parallel.map ~jobs:test_jobs f input in
  checkb "jobs=N equals jobs=1" true (par = seq);
  checkb "jobs=1 equals Array.map" true (seq = Array.map f input);
  check_int "empty input" 0 (Array.length (Parallel.map ~jobs:test_jobs f [||]))

let test_map_preserves_order () =
  (* tasks finishing in any scheduling order must land by input index *)
  let input = Array.init 64 string_of_int in
  let out = Parallel.map ~jobs:test_jobs (fun s -> s ^ "!") input in
  Array.iteri (fun i s -> Alcotest.(check string) "slot" (string_of_int i ^ "!") s) out

let test_map_list () =
  let l = List.init 17 (fun i -> i) in
  checkb "map_list order" true
    (Parallel.map_list ~jobs:test_jobs succ l = List.map succ l)

exception Boom of int

let test_exception_lowest_index () =
  (* several tasks fail: the re-raised exception must be the lowest-index
     one for every jobs value, or the run report would depend on timing *)
  let input = Array.init 32 (fun i -> i) in
  let f x = if x = 7 || x = 23 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match Parallel.map ~jobs f input with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> check_int (Printf.sprintf "jobs=%d" jobs) 7 i)
    [ 1; 2; test_jobs ]

let test_all_tasks_throw () =
  (* the pathological case: every task raises.  The pool must still join all
     helper domains (no leak), re-raise the lowest-index exception, and leave
     the pool usable for the next map *)
  let input = Array.init 16 (fun i -> i) in
  List.iter
    (fun jobs ->
      (match Parallel.map ~jobs (fun x -> raise (Boom x)) input with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> check_int (Printf.sprintf "all-throw jobs=%d" jobs) 0 i);
      (* a clean follow-up map proves no domain is stuck holding the queue *)
      checkb
        (Printf.sprintf "pool recovers after all-throw (jobs=%d)" jobs)
        true
        (Parallel.map ~jobs succ input = Array.map succ input))
    [ 1; 2; test_jobs ]

let test_jobs_validation () =
  checkb "jobs=0 rejected" true
    (match Parallel.map ~jobs:0 Fun.id [| 1 |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Unix.putenv "FLOPT_JOBS" "nonsense";
  checkb "bad FLOPT_JOBS rejected" true
    (match Parallel.default_jobs () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Unix.putenv "FLOPT_JOBS" "3";
  check_int "FLOPT_JOBS honored" 3 (Parallel.default_jobs ());
  (* leave a benign value behind: later tests always pass ~jobs explicitly *)
  Unix.putenv "FLOPT_JOBS" "1"

(* ---- jobs-equivalence of experiment grids (qcheck) ---------------------- *)

let small_config ~block_elems ~threads =
  Config.with_topology Config.default
    (Topology.make ~compute_nodes:threads ~io_nodes:(max 1 (threads / 2))
       ~storage_nodes:(max 1 (threads / 4)) ~block_elems ~io_cache_blocks:32
       ~storage_cache_blocks:64 ())

let toy_app name accesses =
  let d = Flo_poly.Data_space.make [| 64; 64 |] in
  let space = Flo_poly.Iter_space.make [| (0, 63); (0, 63) |] in
  App.make ~name ~description:"toy" ~group:App.High
    (Flo_poly.Program.make ~name
       [ Flo_poly.Program.declare ~id:0 ~name:"a" d;
         Flo_poly.Program.declare ~id:1 ~name:"b" d ]
       [ Flo_poly.Loop_nest.make ~weight:2 ~parallel_dim:0 space accesses ])

let toy_col = toy_app "toy-col" [ Flo_poly.Access.ji ~array_id:0; Flo_poly.Access.ij ~array_id:1 ]
let toy_row = toy_app "toy-row" [ Flo_poly.Access.ij ~array_id:0; Flo_poly.Access.ij ~array_id:1 ]

let grid_arb =
  QCheck.make ~print:(fun (b, t, s, inter) -> Printf.sprintf "block=%d threads=%d sample=%d inter=%b" b t s inter)
    QCheck.Gen.(
      let* block_elems = oneofl [ 8; 16 ] in
      let* threads = oneofl [ 4; 8 ] in
      let* sample = oneofl [ 1; 4 ] in
      let* inter = bool in
      return (block_elems, threads, sample, inter))

let prop_grid_jobs_equivalence =
  QCheck.Test.make ~count:12
    ~name:"experiment grid: --jobs 1 and --jobs N give identical results" grid_arb
    (fun (block_elems, threads, sample, inter) ->
      let config = small_config ~block_elems ~threads in
      let tasks =
        Array.of_list
          (List.concat_map
             (fun app ->
               [ (app, `Default); (app, if inter then `Inter else `Default) ])
             [ toy_col; toy_row ])
      in
      let run (app, mode) =
        let layouts =
          match mode with
          | `Default -> Experiment.default_layouts app
          | `Inter -> Experiment.inter_layouts config app
        in
        Run.run ~sample ~config ~layouts app
      in
      Parallel.map ~jobs:1 run tasks = Parallel.map ~jobs:test_jobs run tasks)

(* ---- manifest equality (Bench_json) ------------------------------------- *)

let test_manifest_jobs_equivalence () =
  let config = small_config ~block_elems:16 ~threads:8 in
  let apps = [ toy_col; toy_row ] in
  let collect jobs = Bench_json.collect ~jobs ~sample:1 ~config apps in
  let seq = collect 1 and par = collect test_jobs in
  checkb "gated metrics identical" true (Bench_json.equal_gated seq par);
  (* the ungated wall metrics differ in value but never in shape *)
  let names m =
    List.map
      (fun (x : Bench_schema.metric) -> (x.Bench_schema.app, x.Bench_schema.name))
      m.Bench_schema.metrics
  in
  checkb "metric sequence identical" true (names seq = names par);
  checkb "manifest validates" true (Bench_schema.validate par = Ok ())

(* ---- golden equality: fast tracegen = naive reference ------------------- *)

let streams_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun (x : Block.t array) y -> x = y) a b

let check_app_streams config app =
  let topo = config.Config.topology in
  let block_elems = topo.Topology.block_elems in
  let threads = Config.threads config in
  let blocks_per_thread = config.Config.blocks_per_thread in
  List.iter
    (fun (mode, layouts) ->
      List.iter
        (fun sample ->
          List.iteri
            (fun i nest ->
              let fast =
                Tracegen.nest_streams ~layouts ~block_elems ~threads
                  ~blocks_per_thread ~sample nest
              in
              let naive =
                Tracegen.reference_streams ~layouts ~block_elems ~threads
                  ~blocks_per_thread ~sample nest
              in
              checkb
                (Printf.sprintf "%s nest %d (%s, sample %d)" app.App.name i mode
                   sample)
                true
                (streams_equal fast naive))
            app.App.program.Flo_poly.Program.nests)
        [ 1; 8 ])
    [
      ("default", Experiment.default_layouts app);
      ("inter", Experiment.inter_layouts config app);
    ]

let test_golden_tracegen_toy () =
  check_app_streams (small_config ~block_elems:16 ~threads:8) toy_col

let test_golden_tracegen_suite () =
  List.iter (check_app_streams Config.default) Suite.all

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_grid_jobs_equivalence ]

let suite =
  [
    ("parallel map matches sequential", `Quick, test_map_matches_sequential);
    ("parallel map preserves order", `Quick, test_map_preserves_order);
    ("parallel map_list", `Quick, test_map_list);
    ("parallel exception determinism", `Quick, test_exception_lowest_index);
    ("parallel all tasks throw", `Quick, test_all_tasks_throw);
    ("jobs validation and FLOPT_JOBS", `Quick, test_jobs_validation);
    ("bench manifest jobs-equivalence", `Quick, test_manifest_jobs_equivalence);
    ("golden tracegen equality (toy)", `Quick, test_golden_tracegen_toy);
    ("golden tracegen equality (16-app suite)", `Slow, test_golden_tracegen_suite);
  ]
  @ qsuite
