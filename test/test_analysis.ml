open Flo_storage
open Flo_workloads
open Flo_engine
module A = Flo_analysis.Analyzer
module E = Flo_obs.Event

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkm = Alcotest.(check (array (array int)))

(* ---- Reuse: hand-computed stack distances ------------------------------ *)

let test_reuse_distances () =
  let r = Flo_analysis.Reuse.create () in
  let t block = Flo_analysis.Reuse.touch r ~file:0 ~block in
  let expect name want got =
    Alcotest.(check (option int)) name want got
  in
  (* stream: a b c a a b d c  (classic LRU stack-distance example) *)
  expect "a cold" None (t 0);
  expect "b cold" None (t 1);
  expect "c cold" None (t 2);
  expect "a after b,c" (Some 2) (t 0);
  expect "a immediate" (Some 0) (t 0);
  expect "b after c,a" (Some 2) (t 1);
  expect "d cold" None (t 3);
  expect "c after a,b,d" (Some 3) (t 2);
  check "touches" 8 (Flo_analysis.Reuse.touches r);
  check "cold" 4 (Flo_analysis.Reuse.cold_touches r);
  check "reuses" 4 (Flo_analysis.Reuse.reuses r);
  check "distinct" 4 (Flo_analysis.Reuse.distinct_blocks r);
  (* distances 0,2,2,3: an LRU cache of >= 4 blocks serves all four *)
  check "below capacity 4" 4 (Flo_analysis.Reuse.below r 4);
  check "below capacity 1" 1 (Flo_analysis.Reuse.below r 1);
  (* same index on a different file is a different block *)
  expect "file split" None (Flo_analysis.Reuse.touch r ~file:1 ~block:0);
  check "distinct after split" 5 (Flo_analysis.Reuse.distinct_blocks r)

(* ---- Sharing: hand-computed 2-thread / 1-shared-cache scenario --------- *)

let test_sharing_hand_example () =
  let s = Flo_analysis.Sharing.create () in
  let touch thread block hit = Flo_analysis.Sharing.touch s ~thread ~file:0 ~block ~hit in
  let evict thread block = Flo_analysis.Sharing.evict s ~thread ~file:0 ~block in
  (* two threads over blocks {0,1,2}; cache holds 2 *)
  touch 0 0 false;                      (* t0 pulls b0 *)
  touch 1 0 true;                       (* t1 reuses it: b0 is shared *)
  touch 0 1 false;                      (* t0 pulls b1 *)
  evict 0 0;                            (* ... evicting b0 *)
  touch 1 0 false;                      (* t1 re-misses b0: conflict 0 -> 1 *)
  evict 1 1;                            (* b1 leaves while serving t1 *)
  touch 1 2 false;                      (* t1 pulls b2 (t1-private) *)
  touch 0 1 false;                      (* t0 re-misses b1: conflict 1 -> 0 *)
  evict 0 2;
  touch 0 2 true;                       (* HIT after evict: re-installed, no conflict *)
  check "threads" 2 (Flo_analysis.Sharing.threads s);
  check "touches" 7 (Flo_analysis.Sharing.touches s);
  check "evictions" 3 (Flo_analysis.Sharing.evictions s);
  check "distinct blocks" 3 (Flo_analysis.Sharing.distinct_blocks s);
  (* t0 touched {0,1,2}, t1 touched {0,2}; both: {0,2} *)
  checkm "shared matrix" [| [| 3; 2 |]; [| 2; 2 |] |] (Flo_analysis.Sharing.shared s);
  checkm "conflict matrix" [| [| 0; 1 |]; [| 1; 0 |] |] (Flo_analysis.Sharing.conflicts s);
  check "cross shared" 2 (Flo_analysis.Sharing.cross_shared s);
  check "shared blocks" 2 (Flo_analysis.Sharing.shared_blocks s);
  check "total conflicts" 2 (Flo_analysis.Sharing.total_conflicts s);
  Alcotest.(check (list int)) "active" [ 0; 1 ] (Flo_analysis.Sharing.active_threads s)

(* ---- Sharing: properties ----------------------------------------------- *)

(* op = (thread, block, Evict | Touch hit) over 4 threads x 10 blocks *)
let sharing_ops_arb =
  QCheck.list_of_size (QCheck.Gen.int_range 0 300)
    (QCheck.triple (QCheck.int_range 0 3) (QCheck.int_range 0 9)
       (QCheck.option QCheck.bool))

let build_sharing ops =
  let s = Flo_analysis.Sharing.create () in
  List.iter
    (fun (thread, block, op) ->
      match op with
      | None -> Flo_analysis.Sharing.evict s ~thread ~file:0 ~block
      | Some hit -> Flo_analysis.Sharing.touch s ~thread ~file:0 ~block ~hit)
    ops;
  s

let prop_sharing_matrix_laws =
  QCheck.Test.make ~name:"sharing matrix symmetric, diagonal = distinct counts"
    ~count:200 sharing_ops_arb (fun ops ->
      let s = build_sharing ops in
      let m = Flo_analysis.Sharing.shared s in
      let n = Array.length m in
      let sym = ref true and diag = ref true and cross = ref 0 in
      for i = 0 to n - 1 do
        if m.(i).(i) <> Flo_analysis.Sharing.distinct_of s ~thread:i then diag := false;
        for j = 0 to n - 1 do
          if m.(i).(j) <> m.(j).(i) then sym := false;
          if i < j then cross := !cross + m.(i).(j)
        done
      done;
      let c = Flo_analysis.Sharing.conflicts s in
      let conflict_ok = ref true and total = ref 0 in
      Array.iteri
        (fun i row ->
          if row.(i) <> 0 then conflict_ok := false;  (* never self-conflict *)
          Array.iter (fun v -> total := !total + v) row)
        c;
      !sym && !diag
      && !cross = Flo_analysis.Sharing.cross_shared s
      && !conflict_ok
      && !total = Flo_analysis.Sharing.total_conflicts s
      && !total <= Flo_analysis.Sharing.evictions s
      && Flo_analysis.Sharing.shared_blocks s <= Flo_analysis.Sharing.distinct_blocks s)

(* ---- Golden trace fixture: exact values -------------------------------- *)

(* data/golden_trace.jsonl is a hand-written 9-request trace: 2 threads over
   file 0 blocks {0..3}, one L1 (cap 2) and one L2 (cap 3).  Every number
   below is derived by hand in the fixture's construction. *)
let load_golden () =
  (* cwd is [_build/default/test] under [dune runtest], the workspace root
     under [dune exec test/main.exe] *)
  let path =
    if Sys.file_exists "data/golden_trace.jsonl" then "data/golden_trace.jsonl"
    else "test/data/golden_trace.jsonl"
  in
  match A.load_file ~keep_events:true path with
  | Ok a -> a
  | Error e ->
    Alcotest.failf "golden trace did not parse: %s" (A.load_error_to_string e)

let l1_0 = { A.layer = E.L1; node = 0 }
let l2_0 = { A.layer = E.L2; node = 0 }

let test_golden_trace_headline () =
  let a = load_golden () in
  check "events" 39 (A.event_count a);
  check "requests" 9 (A.kind_count a E.Access);
  check "l1+l2 hits" 4 (A.kind_count a E.Hit);
  check "l1+l2 misses" 13 (A.kind_count a E.Miss);
  check "evictions" 8 (A.kind_count a E.Evict);
  check "disk reads" 5 (A.kind_count a E.Disk_read);
  Alcotest.(check (float 1e-9)) "disk time" 25000. (A.total_disk_us a);
  let lo, hi = A.time_span a in
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "span" (0., 450.) (lo, hi);
  Alcotest.(check (list string)) "caches" [ "l1/0"; "l2/0" ]
    (List.map A.cache_name (A.caches a))

let test_golden_trace_reuse () =
  let a = load_golden () in
  let r1 = Option.get (A.reuse_of a l1_0) in
  (* L1 stream: 0 0 1 2 0 1 2 3 0 -> distances -,0,-,-,2,2,2,-,3 *)
  check "l1 touches" 9 (Flo_analysis.Reuse.touches r1);
  check "l1 cold" 4 (Flo_analysis.Reuse.cold_touches r1);
  check "l1 reuses" 5 (Flo_analysis.Reuse.reuses r1);
  check "l1 distinct" 4 (Flo_analysis.Reuse.distinct_blocks r1);
  Alcotest.(check (float 1e-9)) "l1 distance sum" 9.
    (Flo_obs.Histogram.sum (Flo_analysis.Reuse.histogram r1));
  Alcotest.(check (float 1e-9)) "l1 distance max" 3.
    (Flo_obs.Histogram.max_value (Flo_analysis.Reuse.histogram r1));
  let r2 = Option.get (A.reuse_of a l2_0) in
  (* L2 stream: 0 1 2 0 1 2 3 0 -> distances -,-,-,2,2,2,-,3 *)
  check "l2 touches" 8 (Flo_analysis.Reuse.touches r2);
  check "l2 cold" 4 (Flo_analysis.Reuse.cold_touches r2);
  check "l2 reuses" 4 (Flo_analysis.Reuse.reuses r2);
  Alcotest.(check (float 1e-9)) "l2 distance sum" 9.
    (Flo_obs.Histogram.sum (Flo_analysis.Reuse.histogram r2))

let test_golden_trace_sharing () =
  let a = load_golden () in
  let s1 = Option.get (A.sharing_of a l1_0) in
  (* t0 touched {0,1,3}, t1 touched {0,2}: only b0 is co-touched *)
  checkm "l1 shared" [| [| 3; 1 |]; [| 1; 2 |] |] (Flo_analysis.Sharing.shared s1);
  (* t1's evict of b0 re-missed by t0 (and vice versa) *)
  checkm "l1 conflicts" [| [| 0; 1 |]; [| 1; 0 |] |] (Flo_analysis.Sharing.conflicts s1);
  check "l1 evictions" 6 (Flo_analysis.Sharing.evictions s1);
  check "l1 cross" 1 (Flo_analysis.Sharing.cross_shared s1);
  let s2 = Option.get (A.sharing_of a l2_0) in
  checkm "l2 shared" [| [| 3; 1 |]; [| 1; 2 |] |] (Flo_analysis.Sharing.shared s2);
  (* t0 evicted b0 from L2; t1's final request re-missed it *)
  checkm "l2 conflicts" [| [| 0; 1 |]; [| 0; 0 |] |] (Flo_analysis.Sharing.conflicts s2);
  check "l2 evictions" 2 (Flo_analysis.Sharing.evictions s2);
  check "layer cross l1" 1 (A.cross_shared_at a E.L1);
  check "layer cross l2" 1 (A.cross_shared_at a E.L2);
  check "layer conflicts l1" 2 (A.conflicts_at a E.L1);
  check "layer conflicts l2" 1 (A.conflicts_at a E.L2)

let test_golden_trace_locality () =
  let a = load_golden () in
  let l = A.locality a in
  check "requests" 9 (Flo_analysis.Locality.requests l);
  check "threads" 2 (Flo_analysis.Locality.threads l);
  Alcotest.(check (list int)) "files" [ 0 ] (Flo_analysis.Locality.files l);
  check "t0 distinct" 3 (Flo_analysis.Locality.distinct l ~thread:0 ~file:0);
  check "t1 distinct" 2 (Flo_analysis.Locality.distinct l ~thread:1 ~file:0);
  check "t0 total" 3 (Flo_analysis.Locality.total_distinct l ~thread:0)

(* ---- Live analysis vs. Run counters ------------------------------------ *)

let small_app =
  let d = Flo_poly.Data_space.make [| 64; 64 |] in
  let space = Flo_poly.Iter_space.make [| (0, 63); (0, 63) |] in
  App.make ~name:"toy" ~description:"column sweep" ~group:App.High
    (Flo_poly.Program.make ~name:"toy"
       [ Flo_poly.Program.declare ~id:0 ~name:"a" d; Flo_poly.Program.declare ~id:1 ~name:"b" d ]
       [
         Flo_poly.Loop_nest.make ~weight:2 ~parallel_dim:0 space
           [ Flo_poly.Access.ji ~array_id:0; Flo_poly.Access.ij ~array_id:1 ];
       ])

(* the Fig. 6 shape of test_engine, but with 32-element blocks so the two
   threads of one column pair touch overlapping block sets *)
let fig6_config =
  Config.with_topology Config.default
    (Topology.make ~compute_nodes:4 ~io_nodes:2 ~storage_nodes:1 ~block_elems:32
       ~io_cache_blocks:4 ~storage_cache_blocks:16 ())

let analyzed_run ?keep_events layouts =
  let a = A.create ?keep_events () in
  let mapping = Experiment.random_mapping ~seed:1 fig6_config in
  let r =
    Run.run ~mapping ~readahead:2 ~sink:(A.sink a) ~config:fig6_config ~layouts
      small_app
  in
  (a, r)

let test_live_analysis_matches_run () =
  let a, r = analyzed_run (Experiment.default_layouts small_app) in
  check "requests" r.Run.block_requests
    (Flo_analysis.Locality.requests (A.locality a));
  check "access events" r.Run.block_requests (A.kind_count a E.Access);
  check "hits" (r.Run.l1.Stats.hits + r.Run.l2.Stats.hits) (A.kind_count a E.Hit);
  check "misses" (r.Run.l1.Stats.misses + r.Run.l2.Stats.misses)
    (A.kind_count a E.Miss);
  check "disk reads" r.Run.disk_reads (A.kind_count a E.Disk_read);
  check "threads" (Array.length r.Run.thread_us)
    (Flo_analysis.Locality.threads (A.locality a));
  (* every L1 touch is a lookup: reuse streams cover hits + misses *)
  let l1_touches =
    List.fold_left
      (fun acc c ->
        if c.A.layer = E.L1 then
          acc + Flo_analysis.Reuse.touches (Option.get (A.reuse_of a c))
        else acc)
      0 (A.caches a)
  in
  check "l1 reuse stream complete" r.Run.l1.Stats.accesses l1_touches

(* ---- Offline load_file agrees with the live sink ----------------------- *)

let test_offline_equals_live () =
  let live, _ = analyzed_run (Experiment.default_layouts small_app) in
  let path = Filename.temp_file "flopt_analysis" ".jsonl" in
  let mapping = Experiment.random_mapping ~seed:1 fig6_config in
  ignore
    (Flo_obs.Sink.with_jsonl path (fun sink ->
         Run.run ~mapping ~readahead:2 ~sink ~config:fig6_config
           ~layouts:(Experiment.default_layouts small_app) small_app));
  let off =
    match A.load_file path with
    | Ok a -> a
    | Error e -> Alcotest.failf "trace did not parse: %s" (A.load_error_to_string e)
  in
  Sys.remove path;
  check "events" (A.event_count live) (A.event_count off);
  List.iter
    (fun k -> check "kind count" (A.kind_count live k) (A.kind_count off k))
    [ E.Access; E.Hit; E.Miss; E.Evict; E.Demote; E.Prefetch; E.Disk_read ];
  List.iter
    (fun layer ->
      check "cross shared" (A.cross_shared_at live layer) (A.cross_shared_at off layer);
      check "conflicts" (A.conflicts_at live layer) (A.conflicts_at off layer);
      Alcotest.(check (array int)) "reuse histogram"
        (Flo_obs.Histogram.counts (A.reuse_histogram_at live layer))
        (Flo_obs.Histogram.counts (A.reuse_histogram_at off layer)))
    [ E.L1; E.L2 ];
  Alcotest.(check (list (pair int (list (pair int int))))) "locality"
    (Flo_analysis.Locality.per_thread (A.locality live))
    (Flo_analysis.Locality.per_thread (A.locality off))

(* ---- The acceptance shape: optimized layout shares less ---------------- *)

let test_optimized_layout_shares_less () =
  let d, _ = analyzed_run (Experiment.default_layouts small_app) in
  let o, _ = analyzed_run (Experiment.inter_layouts fig6_config small_app) in
  let dc = A.cross_shared_at d E.L2 and oc = A.cross_shared_at o E.L2 in
  checkb
    (Printf.sprintf "optimized cross-thread sharing %d < default %d" oc dc)
    true (oc < dc);
  checkb "default sharing nonzero" true (dc > 0);
  checkb "optimized conflicts no worse" true
    (A.conflicts_at o E.L2 <= A.conflicts_at d E.L2)

(* ---- Golden regression: the analyze report ----------------------------- *)

let render_fig6_analysis () =
  let d, _ = analyzed_run (Experiment.default_layouts small_app) in
  let o, _ = analyzed_run (Experiment.inter_layouts fig6_config small_app) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "==== default layouts ====\n\n";
  Buffer.add_string buf (Report.analysis_summary d);
  Buffer.add_string buf "==== optimized (inter-node) layouts ====\n\n";
  Buffer.add_string buf (Report.analysis_summary o);
  Buffer.add_string buf
    (Printf.sprintf
       "==== delta ====\n\nL2 cross-thread shared: %d -> %d\nL2 conflicts: %d -> %d\n"
       (A.cross_shared_at d E.L2) (A.cross_shared_at o E.L2)
       (A.conflicts_at d E.L2) (A.conflicts_at o E.L2));
  Buffer.contents buf

(* regenerate with:
   FLOPT_GOLDEN_UPDATE=$PWD/test dune exec test/main.exe -- test analysis -q *)
let test_fig6_golden_analysis () =
  let actual = render_fig6_analysis () in
  let path =
    if Sys.file_exists "golden_fig6_analysis.expected" then
      "golden_fig6_analysis.expected"
    else "test/golden_fig6_analysis.expected"
  in
  match Sys.getenv_opt "FLOPT_GOLDEN_UPDATE" with
  | Some dir ->
    let oc = open_out_bin (Filename.concat dir path) in
    output_string oc actual;
    close_out oc
  | None ->
    let expected =
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    Alcotest.(check string) "analysis matches golden file" expected actual

(* ---- Perfetto export ---------------------------------------------------- *)

let count_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let c = ref 0 in
  for i = 0 to h - n do
    if String.sub hay i n = needle then incr c
  done;
  !c

let test_perfetto_export () =
  let a = load_golden () in
  let json = String.trim (Flo_analysis.Perfetto.json_of_events (A.events a)) in
  checkb "object" true
    (String.length json > 2 && json.[0] = '{' && json.[String.length json - 1] = '}');
  check "balanced braces" (count_sub json "{") (count_sub json "}");
  check "balanced brackets" (count_sub json "[") (count_sub json "]");
  (* one complete slice per block request *)
  check "slices" 9 (count_sub json {|"ph":"X"|});
  (* instants: evictions + disk reads on the cache tracks *)
  check "instants" 13 (count_sub json {|"ph":"i"|});
  checkb "thread names" true (count_sub json {|"thread_name"|} >= 2);
  checkb "hit color present" true (count_sub json {|"cname":"good"|} >= 1);
  checkb "disk color present" true (count_sub json {|"cname":"terrible"|} >= 1);
  check "traceEvents key" 1 (count_sub json {|"traceEvents"|})

let test_analyzer_error_reporting () =
  let path = Filename.temp_file "flopt_bad" ".jsonl" in
  let oc = open_out path in
  output_string oc (E.to_json (E.make ~time_us:1. ~kind:E.Access ~layer:E.L1 ~node:0
                                 ~thread:0 ~file:0 ~block:0 ()) ^ "\n");
  output_string oc "\n";                  (* blank lines are fine *)
  output_string oc "{\"nope\"\n";
  close_out oc;
  (match A.load_file path with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error (A.Malformed { line; _ }) -> check "line number reported" 3 line
  | Error (A.Io msg) -> Alcotest.failf "expected Malformed, got Io: %s" msg);
  Sys.remove path

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_sharing_matrix_laws ]

let suite =
  [
    ("reuse stack distances", `Quick, test_reuse_distances);
    ("sharing hand example", `Quick, test_sharing_hand_example);
    ("golden trace: headline", `Quick, test_golden_trace_headline);
    ("golden trace: reuse", `Quick, test_golden_trace_reuse);
    ("golden trace: sharing + conflicts", `Quick, test_golden_trace_sharing);
    ("golden trace: locality", `Quick, test_golden_trace_locality);
    ("live analysis matches run counters", `Quick, test_live_analysis_matches_run);
    ("offline load equals live sink", `Quick, test_offline_equals_live);
    ("optimized layout shares less (Fig. 6)", `Quick, test_optimized_layout_shares_less);
    ("fig. 6 golden analysis report", `Quick, test_fig6_golden_analysis);
    ("perfetto export well-formed", `Quick, test_perfetto_export);
    ("malformed trace line reported", `Quick, test_analyzer_error_reporting);
  ]
  @ qsuite

(* ---- perfetto edge shapes ------------------------------------------------ *)

module J = Flo_engine.Bench_schema.Json

let test_perfetto_empty_trace () =
  (* no events must still yield a well-formed document with an (empty or
     metadata-only) traceEvents list, not a parse error or truncation *)
  let doc = J.parse (Flo_analysis.Perfetto.json_of_events []) in
  match J.member "traceEvents" doc with
  | Some (J.Arr items) ->
    checkb "no duration slices for an empty trace" true
      (List.for_all
         (fun item ->
           match J.member "ph" item with
           | Some (J.Str ph) -> ph = "M" (* metadata records only *)
           | _ -> false)
         items)
  | _ -> Alcotest.fail "traceEvents missing or not a list"

let test_perfetto_single_event () =
  let ev =
    E.make ~time_us:5. ~kind:E.Access ~layer:E.L1 ~node:0 ~thread:3 ~file:1
      ~block:7 ~latency_us:2.5 ()
  in
  let doc = J.parse (Flo_analysis.Perfetto.json_of_events [ ev ]) in
  match J.member "traceEvents" doc with
  | Some (J.Arr items) ->
    let slices =
      List.filter
        (fun item ->
          match J.member "ph" item with Some (J.Str "X") -> true | _ -> false)
        items
    in
    check "exactly one slice" 1 (List.length slices);
    (match J.member "ts" (List.hd slices) with
    | Some (J.Num ts) -> checkb "timestamp preserved" true (ts = 5.)
    | _ -> Alcotest.fail "slice has no ts")
  | _ -> Alcotest.fail "traceEvents missing or not a list"

let test_bad_trace_fixture () =
  (* the checked-in fixture behind `flopt analyze` exit-code behavior: line 3
     is the malformed one (line 2 is blank and must be skipped, not counted
     as an error) *)
  let path =
    if Sys.file_exists "data/bad_trace.jsonl" then "data/bad_trace.jsonl"
    else "test/data/bad_trace.jsonl"
  in
  match A.load_file path with
  | Ok _ -> Alcotest.fail "bad fixture accepted"
  | Error (A.Malformed { line; msg }) ->
    check "offending line" 3 line;
    checkb "message not empty" true (String.length msg > 0)
  | Error (A.Io msg) -> Alcotest.failf "expected Malformed, got Io: %s" msg

let suite =
  suite
  @ [
      ("perfetto: empty trace", `Quick, test_perfetto_empty_trace);
      ("perfetto: single event", `Quick, test_perfetto_single_event);
      ("bad-trace fixture reports line 3", `Quick, test_bad_trace_fixture);
    ]
