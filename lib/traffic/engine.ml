open Flo_engine
open Flo_workloads

(* Open-loop multi-tenant traffic over the 16-app catalog.

   Tenants draw apps Zipfian-by-rank, jobs arrive per tenant as a seeded
   Poisson (or on/off bursty) process, and each tenant runs either the
   default or the compiler-optimized layouts.  The hierarchy is sharded by
   storage node: tenant i lives on shard (i mod storage_nodes), each shard
   is simulated by one task on the Parallel domain pool (batched Kernel
   replay, per-shard congestion), and per-shard stats are merged in shard
   order — so results are identical at every jobs setting.

   Determinism: every stochastic draw comes from a splitmix64 substream
   keyed by (seed, tenant, purpose) — never Random, never the wall clock —
   so a (params, config) pair replays byte-identically, and a tenant's
   stream does not depend on how other tenants are enumerated or scheduled. *)

type params = {
  mix : App.t list;  (** popularity order: head = rank 1 *)
  tenants : int;
  seed : int;
  duration_s : float;  (** modeled window, seconds *)
  rate : float;  (** mean job arrivals per tenant per modeled second *)
  zipf_s : float;
  opt_share : float;  (** fraction of tenants given optimized layouts *)
  noisy_boost : float;  (** arrival-rate multiplier for tenant 0; 1 = off *)
  process : Arrivals.process;
  sample : int;  (** profile-mode sampling for kernel compilation *)
  windows : int;  (** SLO evaluation windows the modeled period splits into *)
  faults : Flo_faults.Fault_plan.t;
      (** fault plan baked into kernel compilation; empty = fault-free *)
  trace : Tracer.params option;
      (** request sampling; [None] (the default) compiles kernels without
          profile collection and skips the tracing sweep entirely *)
  overload : Overload.params option;
      (** admission control / load shedding / circuit breaking; [None]
          (the default) runs the open-loop path untouched — byte-identical
          to a build without the subsystem *)
}

let default_params ~mix =
  {
    mix;
    tenants = 64;
    seed = 42;
    duration_s = 10.;
    rate = 2.;
    zipf_s = 1.1;
    opt_share = 0.5;
    noisy_boost = 1.;
    process = Arrivals.Poisson;
    sample = 8;
    windows = 1;
    faults = Flo_faults.Fault_plan.empty;
    trace = None;
    overload = None;
  }

let validate p =
  let ( let* ) = Result.bind in
  let* () = if p.mix <> [] then Ok () else Error "mix must name at least one application" in
  let* () = if p.tenants >= 0 then Ok () else Error "tenants must be non-negative" in
  let* () = if p.duration_s > 0. then Ok () else Error "duration must be positive" in
  let* () = if p.rate > 0. then Ok () else Error "rate must be positive" in
  let* () = if p.zipf_s > 0. then Ok () else Error "zipf-s must be positive" in
  let* () =
    if p.opt_share >= 0. && p.opt_share <= 1. then Ok ()
    else Error "opt-share must be in [0, 1]"
  in
  let* () = if p.noisy_boost >= 1. then Ok () else Error "noisy boost must be >= 1" in
  let* () = if p.sample >= 1 then Ok () else Error "sample must be positive" in
  let* () = if p.windows >= 1 then Ok () else Error "windows must be positive" in
  let* () = match p.trace with None -> Ok () | Some tp -> Tracer.validate tp in
  let* () = match p.overload with None -> Ok () | Some o -> Overload.validate o in
  Arrivals.validate p.process

(* per-tenant substream purposes; the stride is full — widen it if adding
   another purpose *)
let streams_per_tenant = 4
let stream_layout t = (t * streams_per_tenant) + 0
let stream_arrivals t = (t * streams_per_tenant) + 1
let stream_apps t = (t * streams_per_tenant) + 2
let stream_trace t = (t * streams_per_tenant) + 3

type tenant_stats = {
  tenant : int;
  shard : int;
  optimized : bool;
  jobs : int;
  requests : int;
  rank_jobs : int array;  (** jobs per mix rank *)
  window_rank_jobs : int array array;  (** jobs per (window, mix rank) *)
  mean_us : float;
  p50_us : float;
  p99_us : float;
}

type shard_stats = {
  shard : int;
  shard_tenants : int;
  shard_jobs : int;
  shard_requests : int;
  utilization : float;  (** summed service demand / modeled window *)
  multiplier : float;  (** congestion latency factor, [1 + utilization] *)
  window_multipliers : float array;
      (** per-window congestion factor, [1 + window utilization]; equals
          [[| multiplier |]] when the period is a single window *)
}

(* one (shard, window) cell of the overload-control ledger; all serving
   counts are attributed to the shard that actually served the jobs *)
type shard_window_admission = {
  aw_offered_jobs : int;  (** jobs of tenants homed on this shard *)
  aw_routed_out_jobs : int;  (** homed here, served elsewhere (open breaker) *)
  aw_routed_in_jobs : int;  (** homed elsewhere, failed over to here *)
  aw_offered_us : float;
      (** service demand presented for admission on this shard after
          routing, in normal-kernel units *)
  aw_admitted_jobs : int;  (** served here at full fidelity *)
  aw_browned_jobs : int;  (** served here by the degraded brownout kernels *)
  aw_shed_jobs : int;  (** rejected here, never served *)
  aw_served_requests : int;
  aw_admitted_us : float;  (** demand actually absorbed after control *)
  aw_multiplier : float;  (** [1 + admitted demand / window length] *)
  aw_retry_suppressed : bool;
      (** the admission controller switched this cell to the fail-fast
          (retry-suppressed) kernels before shedding any job *)
  aw_breaker : Flo_faults.Breaker.state option;
      (** this shard's breaker state {e during} the window; [None] when no
          breaker is armed on the shard *)
}

type overload_stats = {
  ol_params : Overload.params;
  ol_ff_kernels : (Kernel.t * Kernel.t) array option;
      (** retry-suppressed variants, compiled only under a non-empty fault
          plan with retries enabled *)
  ol_bw_kernels : (Kernel.t * Kernel.t) array option;
      (** reduced-fidelity brownout variants, compiled only under the
          [Brownout] policy *)
  ol_tenant_segs : Overload.seg list array array array;
      (** tenant -> window -> rank -> admitted segments, in serving order *)
  ol_tenant_shed : int array array array;
      (** tenant -> window -> rank -> shed jobs *)
  ol_admissions : shard_window_admission array array;  (** shard -> window *)
  ol_offered_requests : int;  (** arrivals, in normal-kernel request units *)
  ol_admitted_requests : int;  (** requests actually served *)
  ol_shed_requests : int;  (** shed jobs, in normal-kernel request units *)
  ol_browned_jobs : int;
  ol_failover_jobs : int;  (** jobs served off their home shard *)
  ol_retry_suppressed_windows : int;  (** (shard, window) cells switched *)
  ol_goodput_rps : float;  (** admitted requests per modeled second *)
  ol_shed_fraction : float;  (** shed / offered requests *)
}

type result = {
  params : params;
  shards : shard_stats array;
  tenants_stats : tenant_stats array;  (** indexed by tenant id *)
  kernels : (Kernel.t * Kernel.t) array;  (** per rank: (default, inter) *)
  agg_hist : Flo_obs.Histogram.t;
  traces : Flo_obs.Trace.t list;
  total_jobs : int;
  total_requests : int;
  offered_rps : float;  (** modeled requests per modeled second *)
  agg_p50_us : float;
  agg_p99_us : float;
  fairness : float;  (** Jain's index over per-tenant mean latency *)
  noisy_p99_delta_pct : float option;
  opt_p50_advantage_pct : float option;
  wall_s : float;  (** engine wall clock (machine-dependent) *)
  modeled_rps : float;  (** total_requests / wall_s (machine-dependent) *)
  overload : overload_stats option;  (** [Some] iff [params.overload] is *)
}

let compile_kernels ?jobs ?sample ?faults ~config p =
  let sample = Option.value sample ~default:p.sample in
  let faults = Option.value faults ~default:p.faults in
  let ranked = Array.of_list p.mix in
  (* both modes for every rank, fanned over the pool; order by (rank, mode)
     so the array layout is independent of scheduling *)
  let tasks =
    Array.concat
      (List.map
         (fun mode -> Array.map (fun app -> (app, mode)) ranked)
         [ Kernel.Default; Kernel.Inter ])
  in
  let compiled =
    Parallel.map ?jobs
      (fun (app, mode) ->
        Kernel.compile ~sample ~faults ~profile:(p.trace <> None)
          ~config ~mode app)
      tasks
  in
  let n = Array.length ranked in
  Array.init n (fun r -> (compiled.(r), compiled.(n + r)))

(* one tenant's phase-A summary: layout decision, per-(window, rank) job
   counts and the service demand those jobs put on the tenant's home shard
   in each window *)
type tenant_plan = {
  pl_tenant : int;
  pl_optimized : bool;
  pl_window_jobs : int array array;  (** windows x ranks *)
  pl_window_demand_us : float array;  (** per window *)
}

let plan_rank_jobs pl =
  let ranks = if Array.length pl.pl_window_jobs = 0 then 0
              else Array.length pl.pl_window_jobs.(0) in
  let sums = Array.make ranks 0 in
  Array.iter (Array.iteri (fun r j -> sums.(r) <- sums.(r) + j)) pl.pl_window_jobs;
  sums

let plan_tenant ~p ~zipf ~kernels tenant =
  let prng_layout = Flo_faults.Prng.for_stream ~seed:p.seed ~stream:(stream_layout tenant) in
  let optimized = Flo_faults.Prng.float prng_layout < p.opt_share in
  let rate = if tenant = 0 then p.rate *. p.noisy_boost else p.rate in
  let prng_arr = Flo_faults.Prng.for_stream ~seed:p.seed ~stream:(stream_arrivals tenant) in
  let prng_apps = Flo_faults.Prng.for_stream ~seed:p.seed ~stream:(stream_apps tenant) in
  let win_len = p.duration_s /. float_of_int p.windows in
  let window_jobs = Array.make_matrix p.windows (Array.length kernels) 0 in
  (* each arrival is bucketed into its window and draws its app rank on the
     spot.  The arrivals and apps substreams are independent, so each
     stream's draw sequence — and hence every count — is exactly what the
     unwindowed two-pass (count, then sample per job) produced: windows = 1
     replays byte-identically. *)
  Arrivals.iter prng_arr ~process:p.process ~rate ~duration_s:p.duration_s (fun t ->
      let w = min (p.windows - 1) (int_of_float (t /. win_len)) in
      let r = Zipf.sample zipf prng_apps in
      window_jobs.(w).(r) <- window_jobs.(w).(r) + 1);
  let window_demand =
    Array.map
      (fun rank_jobs ->
        let demand = ref 0. in
        Array.iteri
          (fun r j ->
            if j > 0 then begin
              let kd, ki = kernels.(r) in
              let k = if optimized then ki else kd in
              demand := !demand +. (float_of_int j *. k.Kernel.demand_us_per_job)
            end)
          rank_jobs;
        !demand)
      window_jobs
  in
  { pl_tenant = tenant; pl_optimized = optimized; pl_window_jobs = window_jobs;
    pl_window_demand_us = window_demand }

(* Traffic histograms use a much finer bucket resolution than the default
   run-level shape (gamma 1.05 ≈ 5% relative error instead of 60%): tenant
   percentiles are compared against each other (optimized vs default,
   co-located vs remote), and at gamma 1.6 those comparisons would collapse
   onto shared bucket edges. *)
let hist_create () = Flo_obs.Histogram.create ~gamma:1.05 ~buckets:640 ()

let hist_merge_list hists = List.fold_left Flo_obs.Histogram.merge (hist_create ()) hists

(* Phase B: replay the tenant's jobs through the batched kernels into a
   latency histogram, all requests of one (tenant, window, rank)
   apportioned across the kernel's latency classes in one O(classes)
   sweep, under that window's congestion multiplier. *)
let replay_tenant ~kernels ~multipliers plan =
  let hist = hist_create () in
  let requests = ref 0 in
  Array.iteri
    (fun w rank_jobs ->
      let multiplier = multipliers.(w) in
      Array.iteri
        (fun r j ->
          if j > 0 then begin
            let kd, ki = kernels.(r) in
            let k = if plan.pl_optimized then ki else kd in
            let n = j * k.Kernel.requests_per_job in
            requests := !requests + n;
            let counts = Kernel.apportion k ~requests:n in
            Array.iteri
              (fun i cnt ->
                if cnt > 0 then
                  Flo_obs.Histogram.add_many hist
                    (k.Kernel.classes.(i).Kernel.latency_us *. multiplier)
                    cnt)
              counts
          end)
        rank_jobs)
    plan.pl_window_jobs;
  (hist, !requests)

let jain xs =
  match Array.length xs with
  | 0 -> 1.
  | n ->
    let s = Array.fold_left ( +. ) 0. xs in
    let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
    if s2 = 0. then 1. else s *. s /. (float_of_int n *. s2)

let mean_of = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

(* cross-tenant aggregates shared by the plain and overload paths *)
let noisy_delta ~p ~shards_n active =
  if p.noisy_boost <= 1. || shards_n < 2 || p.tenants < 2 then None
  else begin
    (* tenants co-located with the noisy tenant (its shard, itself
       excluded) against tenants on the other shards *)
    let noisy_shard = 0 in
    let co, others =
      List.partition
        (fun (s : tenant_stats) -> s.shard = noisy_shard)
        (List.filter (fun (s : tenant_stats) -> s.tenant <> 0) active)
    in
    match (co, others) with
    | [], _ | _, [] -> None
    | _ ->
      let a = mean_of (List.map (fun s -> s.p99_us) co) in
      let b = mean_of (List.map (fun s -> s.p99_us) others) in
      if b = 0. then None else Some (100. *. ((a /. b) -. 1.))
  end

let opt_advantage active =
  let opt, dfl = List.partition (fun (s : tenant_stats) -> s.optimized) active in
  match (opt, dfl) with
  | [], _ | _, [] -> None
  | _ ->
    let o = mean_of (List.map (fun (s : tenant_stats) -> s.p50_us) opt) in
    let d = mean_of (List.map (fun (s : tenant_stats) -> s.p50_us) dfl) in
    if d = 0. then None else Some (100. *. ((d -. o) /. d))

(* per-tenant and per-shard counters for the observability layer; filled
   after the parallel phase so the registry is only touched by one domain *)
let publish_base_metrics registry tenants_stats shards =
  Array.iter
    (fun s ->
      let labels = [ ("tenant", string_of_int s.tenant) ] in
      Flo_obs.Metrics.incr ~by:s.jobs (Flo_obs.Metrics.counter registry ~labels "traffic.jobs");
      Flo_obs.Metrics.incr ~by:s.requests
        (Flo_obs.Metrics.counter registry ~labels "traffic.requests"))
    tenants_stats;
  Array.iter
    (fun s ->
      let labels = [ ("shard", string_of_int s.shard) ] in
      Flo_obs.Metrics.incr ~by:s.shard_requests
        (Flo_obs.Metrics.counter registry ~labels "traffic.shard_requests"))
    shards

let simulate_plain ?jobs ?metrics ~config p =
  let kernels = compile_kernels ?jobs ~config p in
  let zipf = Zipf.make ~s:p.zipf_s ~n:(Array.length kernels) in
  let shards_n = config.Config.topology.Flo_storage.Topology.storage_nodes in
  let t0 = Unix.gettimeofday () in
  (* one task per storage shard; a shard owns tenants (i mod shards_n) and
     simulates them end to end, so cross-shard scheduling cannot matter *)
  let shard_results =
    Parallel.map ?jobs
      (fun shard ->
        let tenants =
          List.filter (fun t -> t mod shards_n = shard)
            (List.init p.tenants Fun.id)
        in
        let plans = List.map (plan_tenant ~p ~zipf ~kernels) tenants in
        let win_len_us = p.duration_s /. float_of_int p.windows *. 1e6 in
        (* congestion is per (shard, window): each window's multiplier is
           1 + that window's summed demand over its length, so a burst
           inflates only its own window's latencies.  With one window this
           is exactly the old aggregate 1 + utilization. *)
        let window_demand = Array.make p.windows 0. in
        List.iter
          (fun pl ->
            Array.iteri
              (fun w d -> window_demand.(w) <- window_demand.(w) +. d)
              pl.pl_window_demand_us)
          plans;
        let multipliers = Array.map (fun d -> 1. +. (d /. win_len_us)) window_demand in
        let demand_us = Array.fold_left ( +. ) 0. window_demand in
        let utilization = demand_us /. (p.duration_s *. 1e6) in
        let multiplier = 1. +. utilization in
        let per_tenant =
          List.map
            (fun pl ->
              let hist, requests = replay_tenant ~kernels ~multipliers pl in
              let rank_jobs = plan_rank_jobs pl in
              let stats =
                {
                  tenant = pl.pl_tenant;
                  shard;
                  optimized = pl.pl_optimized;
                  jobs = Array.fold_left ( + ) 0 rank_jobs;
                  requests;
                  rank_jobs;
                  window_rank_jobs = pl.pl_window_jobs;
                  mean_us = Flo_obs.Histogram.mean hist;
                  p50_us = Flo_obs.Histogram.percentile hist 0.5;
                  p99_us = Flo_obs.Histogram.percentile hist 0.99;
                }
              in
              (stats, hist))
            plans
        in
        (* the tracing sweep observes the replay (same plans, same order):
           it adds exemplars to the tenant histograms — which then ride the
           shard-order merges below — but never a count, so every modeled
           number is byte-identical with tracing on or off *)
        let shard_traces =
          match p.trace with
          | None -> []
          | Some tp ->
            List.map2
              (fun pl (_, hist) ->
                Tracer.trace_tenant ~t:tp ~seed:p.seed
                  ~stream:(stream_trace pl.pl_tenant) ~tenant:pl.pl_tenant ~shard
                  ~optimized:pl.pl_optimized ~win_len_us ~multipliers ~kernels
                  ~window_jobs:pl.pl_window_jobs ~hist)
              plans per_tenant
            |> List.concat
        in
        let shard_jobs = List.fold_left (fun a (s, _) -> a + s.jobs) 0 per_tenant in
        let shard_requests =
          List.fold_left (fun a (s, _) -> a + s.requests) 0 per_tenant
        in
        let shard_hist = hist_merge_list (List.map snd per_tenant) in
        ( {
            shard;
            shard_tenants = List.length tenants;
            shard_jobs;
            shard_requests;
            utilization;
            multiplier;
            window_multipliers = multipliers;
          },
          List.map fst per_tenant,
          shard_hist,
          shard_traces ))
      (Array.init shards_n Fun.id)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let shards = Array.map (fun (s, _, _, _) -> s) shard_results in
  let tenants_stats = Array.make p.tenants None in
  Array.iter
    (fun (_, stats, _, _) ->
      List.iter (fun s -> tenants_stats.(s.tenant) <- Some s) stats)
    shard_results;
  let tenants_stats =
    Array.map (function Some s -> s | None -> assert false) tenants_stats
  in
  let agg_hist =
    hist_merge_list (Array.to_list (Array.map (fun (_, _, h, _) -> h) shard_results))
  in
  (* sampled traces merge in shard order, like the histograms — the list is
     identical at every jobs value *)
  let traces =
    List.concat_map (fun (_, _, _, ts) -> ts) (Array.to_list shard_results)
  in
  let total_jobs = Array.fold_left (fun a s -> a + s.shard_jobs) 0 shards in
  let total_requests = Array.fold_left (fun a s -> a + s.shard_requests) 0 shards in
  let active = List.filter (fun s -> s.requests > 0) (Array.to_list tenants_stats) in
  let fairness = jain (Array.of_list (List.map (fun s -> s.mean_us) active)) in
  let noisy_p99_delta_pct = noisy_delta ~p ~shards_n active in
  let opt_p50_advantage_pct = opt_advantage active in
  (match metrics with
  | None -> ()
  | Some registry -> publish_base_metrics registry tenants_stats shards);
  {
    params = p;
    shards;
    tenants_stats;
    kernels;
    agg_hist;
    traces;
    total_jobs;
    total_requests;
    offered_rps = float_of_int total_requests /. p.duration_s;
    agg_p50_us = Flo_obs.Histogram.percentile agg_hist 0.5;
    agg_p99_us = Flo_obs.Histogram.percentile agg_hist 0.99;
    fairness;
    noisy_p99_delta_pct;
    opt_p50_advantage_pct;
    wall_s;
    modeled_rps =
      (if wall_s > 0. then float_of_int total_requests /. wall_s else 0.);
    overload = None;
  }

(* ---------------------------------------------------------------------- *)
(* Overload path: admission control, load shedding, circuit breaking.

   Three phases.  Phase A plans every tenant in parallel per home shard
   (identical draws to the plain path — the subsystem makes no PRNG draws
   of its own).  Phase B is a sequential control loop over (window, shard):
   breakers decide what each shard admits, open shards route their traffic
   along the failover path, and the admission controller keeps each serving
   shard's demand at or under [capacity * window length] by shedding,
   degrading, or retry-suppressing whole jobs — all exact-integer
   largest-remainder decisions, so the loop is a pure function of the plans
   and byte-identical at every jobs value.  Phase C replays the admitted
   segments in parallel per home shard. *)

(* serve [jobs] of rank [r] with the variant's kernel for this layout *)
let overload_kernel ~kernels ~ff_kernels ~bw_kernels variant r optimized =
  let pick arr =
    let kd, ki = arr.(r) in
    if optimized then ki else kd
  in
  match (variant : Overload.variant) with
  | Overload.Normal -> pick kernels
  | Overload.Fail_fast_serve ->
    (match ff_kernels with Some a -> pick a | None -> pick kernels)
  | Overload.Browned ->
    (match bw_kernels with Some a -> pick a | None -> pick kernels)

let simulate_overload ?jobs ?metrics ~config ~(o : Overload.params) p =
  let kernels = compile_kernels ?jobs ~config p in
  let t0 = Unix.gettimeofday () in
  (* kernel variants: fail-fast recompiles under the same plan with the
     retry budget zeroed (retries shed before any fresh job); brownout
     recompiles at a coarser sampling factor (degraded service, reusing the
     simulator's profile-mode knob).  Both are skipped when no policy can
     reach them, so breaker-only runs pay for no extra compilations. *)
  let ff_kernels =
    let retry = p.faults.Flo_faults.Fault_plan.retry in
    if
      o.Overload.shed = None
      || Flo_faults.Fault_plan.is_empty p.faults
      || retry.Flo_faults.Retry.max_retries = 0
    then None
    else
      let ff_plan =
        { p.faults with
          Flo_faults.Fault_plan.retry = { retry with Flo_faults.Retry.max_retries = 0 } }
      in
      Some (compile_kernels ?jobs ~faults:ff_plan ~config p)
  in
  let bw_kernels =
    if o.Overload.shed = Some Overload.Brownout then
      Some (compile_kernels ?jobs ~sample:(p.sample * o.Overload.brownout_factor) ~config p)
    else None
  in
  let kernel_of = overload_kernel ~kernels ~ff_kernels ~bw_kernels in
  let zipf = Zipf.make ~s:p.zipf_s ~n:(Array.length kernels) in
  let shards_n = config.Config.topology.Flo_storage.Topology.storage_nodes in
  let ranks = Array.length kernels in
  let win_len_us = p.duration_s /. float_of_int p.windows *. 1e6 in
  let target_us =
    match o.Overload.shed with
    | None -> infinity  (* breaker-only mode: route, never shed *)
    | Some _ -> o.Overload.capacity *. win_len_us
  in
  (* phase A: plan tenants in parallel, one task per home shard — the same
     fan-out (and the same substream draws) as the plain path *)
  let shard_tenant_ids =
    Array.init shards_n (fun shard ->
        List.filter (fun t -> t mod shards_n = shard) (List.init p.tenants Fun.id))
  in
  let shard_plans =
    Parallel.map ?jobs
      (fun shard -> List.map (plan_tenant ~p ~zipf ~kernels) shard_tenant_ids.(shard))
      (Array.init shards_n Fun.id)
  in
  (* a shard's admission classes: every (tenant, rank) pair homed on it, in
     home order — the order every split decision is made in *)
  let shard_classes =
    Array.map
      (fun plans ->
        Array.of_list
          (List.concat_map (fun pl -> List.init ranks (fun r -> (pl, r))) plans))
      shard_plans
  in
  let breakers =
    Array.init shards_n (fun s ->
        match o.Overload.breaker with
        | Some spec when Flo_faults.Breaker.armed spec ~node:s ->
          Some (Flo_faults.Breaker.create spec)
        | _ -> None)
  in
  (* phase B ledgers *)
  let tenant_segs =
    Array.init p.tenants (fun _ ->
        Array.init p.windows (fun _ -> Array.make ranks ([] : Overload.seg list)))
  in
  let tenant_shed = Array.init p.tenants (fun _ -> Array.make_matrix p.windows ranks 0) in
  let dummy_cell =
    {
      aw_offered_jobs = 0;
      aw_routed_out_jobs = 0;
      aw_routed_in_jobs = 0;
      aw_offered_us = 0.;
      aw_admitted_jobs = 0;
      aw_browned_jobs = 0;
      aw_shed_jobs = 0;
      aw_served_requests = 0;
      aw_admitted_us = 0.;
      aw_multiplier = 1.;
      aw_retry_suppressed = false;
      aw_breaker = None;
    }
  in
  let admissions = Array.init shards_n (fun _ -> Array.make p.windows dummy_cell) in
  for w = 0 to p.windows - 1 do
    let admit_mode =
      Array.map
        (function None -> `All | Some b -> Flo_faults.Breaker.admits b ~window:w)
        breakers
    in
    (* an open shard's traffic goes to the next shard that admits anything —
       the same ring walk as Injector.failover_node.  If every other shard
       is also open, the traffic is served locally: the breaker cannot
       black-hole the fleet. *)
    let fail_target s =
      let rec go k =
        if k >= shards_n then s
        else
          let t = (s + k) mod shards_n in
          if admit_mode.(t) <> `None then t else go (k + 1)
      in
      go 1
    in
    (* routing: build each serving shard's admission ledger (reversed;
       deterministic home-shard-then-class order) *)
    let served = Array.make shards_n ([] : (tenant_plan * int * int) list) in
    let offered_jobs = Array.make shards_n 0 in
    let routed_in = Array.make shards_n 0 in
    let routed_out = Array.make shards_n 0 in
    Array.iteri
      (fun s classes ->
        let counts = Array.map (fun (pl, r) -> pl.pl_window_jobs.(w).(r)) classes in
        let total = Array.fold_left ( + ) 0 counts in
        offered_jobs.(s) <- total;
        if total > 0 then begin
          let add t i n =
            if n > 0 then begin
              let pl, r = classes.(i) in
              served.(t) <- (pl, r, n) :: served.(t);
              if t <> s then begin
                routed_in.(t) <- routed_in.(t) + n;
                routed_out.(s) <- routed_out.(s) + n
              end
            end
          in
          match admit_mode.(s) with
          | `All -> Array.iteri (fun i n -> add s i n) counts
          | `None ->
            let t = fail_target s in
            Array.iteri (fun i n -> add t i n) counts
          | `Probe f ->
            (* half-open: a probe fraction stays local (at least one job,
               or the breaker could never observe a recovery), the rest
               takes the failover path *)
            let keep = max 1 (int_of_float (f *. float_of_int total)) in
            let local = Overload.split ~counts ~keep in
            let t = fail_target s in
            Array.iteri
              (fun i n ->
                add s i local.(i);
                add t i (n - local.(i)))
              counts
        end)
      shard_classes;
    (* admission per serving shard *)
    let req_obs = Array.make shards_n 0 in
    let err_obs = Array.make shards_n 0 in
    Array.iteri
      (fun t entries_rev ->
        let entries = Array.of_list (List.rev entries_rev) in
        let n_entries = Array.length entries in
        let counts = Array.map (fun (_, _, n) -> n) entries in
        let total = Array.fold_left ( + ) 0 counts in
        let demand_of variant counts =
          let d = ref 0. in
          Array.iteri
            (fun i n ->
              if n > 0 then begin
                let pl, r, _ = entries.(i) in
                let k = kernel_of variant r pl.pl_optimized in
                d := !d +. (float_of_int n *. k.Kernel.demand_us_per_job)
              end)
            counts;
          !d
        in
        let offered_us = demand_of Overload.Normal counts in
        (* retry-aware admission: when the window is over target and the
           fault plan is burning service time in retries, suppress the
           retry storm (serve everything fail-fast) before shedding any
           fresh job — the defence against metastable congestion collapse *)
        let variant, base_us =
          if offered_us > target_us && ff_kernels <> None then begin
            let ff_us = demand_of Overload.Fail_fast_serve counts in
            if ff_us < offered_us then (Overload.Fail_fast_serve, ff_us)
            else (Overload.Normal, offered_us)
          end
          else (Overload.Normal, offered_us)
        in
        let zeros () = Array.make n_entries 0 in
        (* deterministic top-up: the proportional split computes [keep]
           from the aggregate demand ratio, so with heterogeneous class
           demands (one bt job is worth hundreds of small-app jobs) the
           integer floor can strand most of the window's capacity.  After
           apportioning, greedily admit whole jobs that still fit under
           target, walking classes in [order] until a full pass admits
           nothing. *)
        let top_up ?order ~variant admitted =
          let order =
            match order with Some o -> o | None -> Array.init n_entries Fun.id
          in
          let admitted = Array.copy admitted in
          let per_job =
            Array.map
              (fun (pl, r, _) ->
                (kernel_of variant r pl.pl_optimized).Kernel.demand_us_per_job)
              entries
          in
          let used = ref 0. in
          Array.iteri
            (fun i n -> used := !used +. (float_of_int n *. per_job.(i)))
            admitted;
          let progress = ref true in
          while !progress do
            progress := false;
            Array.iter
              (fun i ->
                if admitted.(i) < counts.(i) && !used +. per_job.(i) <= target_us
                then begin
                  admitted.(i) <- admitted.(i) + 1;
                  used := !used +. per_job.(i);
                  progress := true
                end)
              order
          done;
          admitted
        in
        (* kept (served with [variant]) and browned job counts per class;
           anything left over is shed.  Each policy keeps admitted demand
           at or under target to within per-class rounding. *)
        let kept, browned =
          if base_us <= target_us || total = 0 then (Array.copy counts, zeros ())
          else
            match o.Overload.shed with
            | None -> (Array.copy counts, zeros ())  (* target is infinite *)
            | Some Overload.Fail_fast ->
              let keep = int_of_float (target_us /. base_us *. float_of_int total) in
              (top_up ~variant (Overload.split ~counts ~keep), zeros ())
            | Some Overload.Priority ->
              (* the optimized (paying) cohort is admitted first; default
                 jobs absorb the shedding until that cohort alone exceeds
                 the target *)
              let opt_counts =
                Array.map (fun (pl, _, n) -> if pl.pl_optimized then n else 0) entries
              in
              let dfl_counts =
                Array.map (fun (pl, _, n) -> if pl.pl_optimized then 0 else n) entries
              in
              let opt_total = Array.fold_left ( + ) 0 opt_counts in
              let dfl_total = Array.fold_left ( + ) 0 dfl_counts in
              (* optimized classes first, so any capacity the rounding
                 leaves behind goes to the protected cohort before the
                 default one *)
              let opt_first =
                let opt = ref [] and dfl = ref [] in
                Array.iteri
                  (fun i (pl, _, _) ->
                    if pl.pl_optimized then opt := i :: !opt else dfl := i :: !dfl)
                  entries;
                Array.of_list (List.rev !opt @ List.rev !dfl)
              in
              let opt_us = demand_of variant opt_counts in
              if opt_us >= target_us then begin
                let keep =
                  if opt_us <= 0. then 0
                  else int_of_float (target_us /. opt_us *. float_of_int opt_total)
                in
                ( top_up ~order:opt_first ~variant
                    (Overload.split ~counts:opt_counts ~keep),
                  zeros () )
              end
              else begin
                let dfl_us = base_us -. opt_us in
                let keep_dfl =
                  if dfl_us <= 0. then dfl_total
                  else
                    int_of_float
                      ((target_us -. opt_us) /. dfl_us *. float_of_int dfl_total)
                in
                let kept_dfl = Overload.split ~counts:dfl_counts ~keep:keep_dfl in
                ( top_up ~order:opt_first ~variant
                    (Array.init n_entries (fun i -> opt_counts.(i) + kept_dfl.(i))),
                  zeros () )
              end
            | Some Overload.Brownout ->
              let bw_us = demand_of Overload.Browned counts in
              if bw_us >= target_us then begin
                (* even fully degraded the window exceeds target: brown
                   what fits, shed the rest *)
                let keep =
                  if bw_us <= 0. then 0
                  else int_of_float (target_us /. bw_us *. float_of_int total)
                in
                ( zeros (),
                  top_up ~variant:Overload.Browned (Overload.split ~counts ~keep) )
              end
              else begin
                (* degrade the g fraction that brings admitted demand back
                   to target: (1-g) * base + g * browned = target *)
                let g = (base_us -. target_us) /. (base_us -. bw_us) in
                let browned =
                  Overload.split ~counts
                    ~keep:(min total (int_of_float (ceil (g *. float_of_int total))))
                in
                (Array.init n_entries (fun i -> counts.(i) - browned.(i)), browned)
              end
        in
        (* the service quantum is a whole job: when even one job exceeds
           the window target the keep counts all floor to zero, which would
           stall the shard forever.  A real admission controller still
           drains one quantum per cycle, so admit exactly one job (browned
           under Brownout) and accept the bounded overshoot. *)
        let kept, browned =
          let admitted =
            Array.fold_left ( + ) 0 kept + Array.fold_left ( + ) 0 browned
          in
          if total = 0 || admitted > 0 then (kept, browned)
          else begin
            let one = zeros () in
            (try
               Array.iteri
                 (fun i c -> if c > 0 then (one.(i) <- 1; raise Exit))
                 counts
             with Exit -> ());
            match o.Overload.shed with
            | Some Overload.Brownout -> (kept, one)
            | _ -> (one, browned)
          end
        in
        (* the multiplier every admitted request sees is set by what was
           admitted, not what was offered — this is the whole point *)
        let admitted_us = ref 0. in
        Array.iteri
          (fun i (pl, r, _) ->
            if kept.(i) > 0 then begin
              let k = kernel_of variant r pl.pl_optimized in
              admitted_us :=
                !admitted_us +. (float_of_int kept.(i) *. k.Kernel.demand_us_per_job)
            end;
            if browned.(i) > 0 then begin
              let k = kernel_of Overload.Browned r pl.pl_optimized in
              admitted_us :=
                !admitted_us +. (float_of_int browned.(i) *. k.Kernel.demand_us_per_job)
            end)
          entries;
        let multiplier = 1. +. (!admitted_us /. win_len_us) in
        let served_requests = ref 0 in
        let errors = ref 0 in
        let admitted_jobs = ref 0 in
        let browned_jobs = ref 0 in
        let shed_jobs = ref 0 in
        Array.iteri
          (fun i (pl, r, n) ->
            let record v cnt =
              if cnt > 0 then begin
                let k = kernel_of v r pl.pl_optimized in
                served_requests := !served_requests + (cnt * k.Kernel.requests_per_job);
                errors :=
                  !errors + (cnt * (k.Kernel.errors_per_job + k.Kernel.timeouts_per_job));
                tenant_segs.(pl.pl_tenant).(w).(r) <-
                  { Overload.sg_variant = v; sg_jobs = cnt; sg_mult = multiplier;
                    sg_shard = t }
                  :: tenant_segs.(pl.pl_tenant).(w).(r)
              end
            in
            record variant kept.(i);
            record Overload.Browned browned.(i);
            admitted_jobs := !admitted_jobs + kept.(i);
            browned_jobs := !browned_jobs + browned.(i);
            let sh = n - kept.(i) - browned.(i) in
            if sh > 0 then begin
              shed_jobs := !shed_jobs + sh;
              tenant_shed.(pl.pl_tenant).(w).(r) <- tenant_shed.(pl.pl_tenant).(w).(r) + sh
            end)
          entries;
        req_obs.(t) <- !served_requests;
        err_obs.(t) <- !errors;
        admissions.(t).(w) <-
          {
            aw_offered_jobs = offered_jobs.(t);
            aw_routed_out_jobs = routed_out.(t);
            aw_routed_in_jobs = routed_in.(t);
            aw_offered_us = offered_us;
            aw_admitted_jobs = !admitted_jobs;
            aw_browned_jobs = !browned_jobs;
            aw_shed_jobs = !shed_jobs;
            aw_served_requests = !served_requests;
            aw_admitted_us = !admitted_us;
            aw_multiplier = multiplier;
            aw_retry_suppressed = (variant = Overload.Fail_fast_serve);
            aw_breaker = Option.map Flo_faults.Breaker.state breakers.(t);
          })
      served;
    (* end-of-window observations advance the breakers' state machines *)
    Array.iteri
      (fun s b ->
        match b with
        | None -> ()
        | Some b ->
          breakers.(s) <-
            Some
              (Flo_faults.Breaker.observe b ~window:w ~requests:req_obs.(s)
                 ~errors:err_obs.(s)))
      breakers
  done;
  (* segment lists were built head-first; serve order is the reverse *)
  Array.iter
    (fun wmat ->
      Array.iter
        (fun rrow -> Array.iteri (fun r segs -> rrow.(r) <- List.rev segs) rrow)
        wmat)
    tenant_segs;
  (* phase C: replay admitted segments in parallel per home shard *)
  let replay_segments pl =
    let hist = hist_create () in
    let requests = ref 0 in
    Array.iter
      (fun rrow ->
        Array.iteri
          (fun r segl ->
            List.iter
              (fun (sg : Overload.seg) ->
                let k = kernel_of sg.Overload.sg_variant r pl.pl_optimized in
                let n = sg.Overload.sg_jobs * k.Kernel.requests_per_job in
                requests := !requests + n;
                let cnts = Kernel.apportion k ~requests:n in
                Array.iteri
                  (fun i cnt ->
                    if cnt > 0 then
                      Flo_obs.Histogram.add_many hist
                        (k.Kernel.classes.(i).Kernel.latency_us *. sg.Overload.sg_mult)
                        cnt)
                  cnts)
              segl)
          rrow)
      tenant_segs.(pl.pl_tenant);
    (hist, !requests)
  in
  let shard_results =
    Parallel.map ?jobs
      (fun shard ->
        let plans = shard_plans.(shard) in
        let per_tenant =
          List.map
            (fun pl ->
              let hist, requests = replay_segments pl in
              let rank_jobs = plan_rank_jobs pl in
              let stats =
                {
                  tenant = pl.pl_tenant;
                  shard;
                  optimized = pl.pl_optimized;
                  (* jobs are what arrived; requests are what was served *)
                  jobs = Array.fold_left ( + ) 0 rank_jobs;
                  requests;
                  rank_jobs;
                  window_rank_jobs = pl.pl_window_jobs;
                  mean_us = Flo_obs.Histogram.mean hist;
                  p50_us = Flo_obs.Histogram.percentile hist 0.5;
                  p99_us = Flo_obs.Histogram.percentile hist 0.99;
                }
              in
              (stats, hist))
            plans
        in
        let shard_traces =
          match p.trace with
          | None -> []
          | Some tp ->
            List.map2
              (fun pl (_, hist) ->
                Tracer.trace_tenant_overload ~t:tp ~seed:p.seed
                  ~stream:(stream_trace pl.pl_tenant) ~tenant:pl.pl_tenant ~shard
                  ~optimized:pl.pl_optimized ~win_len_us ~kernels ~ff_kernels
                  ~bw_kernels ~segs:tenant_segs.(pl.pl_tenant)
                  ~shed:tenant_shed.(pl.pl_tenant) ~hist)
              plans per_tenant
            |> List.concat
        in
        (List.map fst per_tenant, hist_merge_list (List.map snd per_tenant), shard_traces))
      (Array.init shards_n Fun.id)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  (* shard stats under overload use serving-shard attribution, straight
     from the admission ledger *)
  let shards =
    Array.init shards_n (fun s ->
        let cells = admissions.(s) in
        let admitted_us =
          Array.fold_left (fun a c -> a +. c.aw_admitted_us) 0. cells
        in
        let utilization = admitted_us /. (p.duration_s *. 1e6) in
        {
          shard = s;
          shard_tenants = List.length shard_tenant_ids.(s);
          shard_jobs =
            Array.fold_left (fun a c -> a + c.aw_admitted_jobs + c.aw_browned_jobs) 0 cells;
          shard_requests = Array.fold_left (fun a c -> a + c.aw_served_requests) 0 cells;
          utilization;
          multiplier = 1. +. utilization;
          window_multipliers = Array.map (fun c -> c.aw_multiplier) cells;
        })
  in
  let tenants_stats = Array.make p.tenants None in
  Array.iter
    (fun (stats, _, _) -> List.iter (fun s -> tenants_stats.(s.tenant) <- Some s) stats)
    shard_results;
  let tenants_stats =
    Array.map (function Some s -> s | None -> assert false) tenants_stats
  in
  let agg_hist =
    hist_merge_list (Array.to_list (Array.map (fun (_, h, _) -> h) shard_results))
  in
  let traces = List.concat_map (fun (_, _, ts) -> ts) (Array.to_list shard_results) in
  let total_jobs = Array.fold_left (fun a s -> a + s.shard_jobs) 0 shards in
  let total_requests = Array.fold_left (fun a s -> a + s.shard_requests) 0 shards in
  (* offered / shed request accounting, in normal-kernel units *)
  let rpj tenant r =
    let k = kernel_of Overload.Normal r tenants_stats.(tenant).optimized in
    k.Kernel.requests_per_job
  in
  let offered_requests = ref 0 in
  let shed_requests = ref 0 in
  Array.iteri
    (fun tenant s ->
      Array.iteri (fun r j -> offered_requests := !offered_requests + (j * rpj tenant r))
        s.rank_jobs;
      Array.iter
        (fun row ->
          Array.iteri (fun r j -> shed_requests := !shed_requests + (j * rpj tenant r)) row)
        tenant_shed.(tenant))
    tenants_stats;
  let sum_cells f =
    Array.fold_left
      (fun a cells -> Array.fold_left (fun a c -> a + f c) a cells)
      0 admissions
  in
  let browned_jobs = sum_cells (fun c -> c.aw_browned_jobs) in
  let failover_jobs = sum_cells (fun c -> c.aw_routed_in_jobs) in
  let retry_suppressed_windows = sum_cells (fun c -> if c.aw_retry_suppressed then 1 else 0) in
  let ol =
    {
      ol_params = o;
      ol_ff_kernels = ff_kernels;
      ol_bw_kernels = bw_kernels;
      ol_tenant_segs = tenant_segs;
      ol_tenant_shed = tenant_shed;
      ol_admissions = admissions;
      ol_offered_requests = !offered_requests;
      ol_admitted_requests = total_requests;
      ol_shed_requests = !shed_requests;
      ol_browned_jobs = browned_jobs;
      ol_failover_jobs = failover_jobs;
      ol_retry_suppressed_windows = retry_suppressed_windows;
      ol_goodput_rps = float_of_int total_requests /. p.duration_s;
      ol_shed_fraction =
        (if !offered_requests = 0 then 0.
         else float_of_int !shed_requests /. float_of_int !offered_requests);
    }
  in
  let active = List.filter (fun s -> s.requests > 0) (Array.to_list tenants_stats) in
  let fairness = jain (Array.of_list (List.map (fun s -> s.mean_us) active)) in
  let noisy_p99_delta_pct = noisy_delta ~p ~shards_n active in
  let opt_p50_advantage_pct = opt_advantage active in
  (match metrics with
  | None -> ()
  | Some registry ->
    publish_base_metrics registry tenants_stats shards;
    let counter name by =
      Flo_obs.Metrics.incr ~by (Flo_obs.Metrics.counter registry name)
    in
    counter "overload.shed_requests" ol.ol_shed_requests;
    counter "overload.admitted_requests" ol.ol_admitted_requests;
    counter "overload.browned_jobs" ol.ol_browned_jobs;
    counter "overload.failover_jobs" ol.ol_failover_jobs;
    Flo_obs.Metrics.set_gauge
      (Flo_obs.Metrics.gauge registry "overload.goodput_rps")
      ol.ol_goodput_rps;
    Flo_obs.Metrics.set_gauge
      (Flo_obs.Metrics.gauge registry "overload.shed_fraction")
      ol.ol_shed_fraction;
    Array.iteri
      (fun s cells ->
        let opened =
          Array.fold_left
            (fun a c ->
              match c.aw_breaker with Some (Flo_faults.Breaker.Open _) -> a + 1 | _ -> a)
            0 cells
        in
        if opened > 0 then
          Flo_obs.Metrics.incr ~by:opened
            (Flo_obs.Metrics.counter registry
               ~labels:[ ("shard", string_of_int s) ]
               "overload.breaker_open_windows"))
      admissions);
  {
    params = p;
    shards;
    tenants_stats;
    kernels;
    agg_hist;
    traces;
    total_jobs;
    total_requests;
    offered_rps = float_of_int total_requests /. p.duration_s;
    agg_p50_us = Flo_obs.Histogram.percentile agg_hist 0.5;
    agg_p99_us = Flo_obs.Histogram.percentile agg_hist 0.99;
    fairness;
    noisy_p99_delta_pct;
    opt_p50_advantage_pct;
    wall_s;
    modeled_rps = (if wall_s > 0. then float_of_int total_requests /. wall_s else 0.);
    overload = Some ol;
  }

let simulate ?jobs ?metrics ~config p =
  (match validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Traffic.Engine.simulate: " ^ msg));
  match p.overload with
  | None -> simulate_plain ?jobs ?metrics ~config p
  | Some o -> simulate_overload ?jobs ?metrics ~config ~o p
