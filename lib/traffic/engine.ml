open Flo_engine
open Flo_workloads

(* Open-loop multi-tenant traffic over the 16-app catalog.

   Tenants draw apps Zipfian-by-rank, jobs arrive per tenant as a seeded
   Poisson (or on/off bursty) process, and each tenant runs either the
   default or the compiler-optimized layouts.  The hierarchy is sharded by
   storage node: tenant i lives on shard (i mod storage_nodes), each shard
   is simulated by one task on the Parallel domain pool (batched Kernel
   replay, per-shard congestion), and per-shard stats are merged in shard
   order — so results are identical at every jobs setting.

   Determinism: every stochastic draw comes from a splitmix64 substream
   keyed by (seed, tenant, purpose) — never Random, never the wall clock —
   so a (params, config) pair replays byte-identically, and a tenant's
   stream does not depend on how other tenants are enumerated or scheduled. *)

type params = {
  mix : App.t list;  (** popularity order: head = rank 1 *)
  tenants : int;
  seed : int;
  duration_s : float;  (** modeled window, seconds *)
  rate : float;  (** mean job arrivals per tenant per modeled second *)
  zipf_s : float;
  opt_share : float;  (** fraction of tenants given optimized layouts *)
  noisy_boost : float;  (** arrival-rate multiplier for tenant 0; 1 = off *)
  process : Arrivals.process;
  sample : int;  (** profile-mode sampling for kernel compilation *)
  windows : int;  (** SLO evaluation windows the modeled period splits into *)
  faults : Flo_faults.Fault_plan.t;
      (** fault plan baked into kernel compilation; empty = fault-free *)
  trace : Tracer.params option;
      (** request sampling; [None] (the default) compiles kernels without
          profile collection and skips the tracing sweep entirely *)
}

let default_params ~mix =
  {
    mix;
    tenants = 64;
    seed = 42;
    duration_s = 10.;
    rate = 2.;
    zipf_s = 1.1;
    opt_share = 0.5;
    noisy_boost = 1.;
    process = Arrivals.Poisson;
    sample = 8;
    windows = 1;
    faults = Flo_faults.Fault_plan.empty;
    trace = None;
  }

let validate p =
  let ( let* ) = Result.bind in
  let* () = if p.mix <> [] then Ok () else Error "mix must name at least one application" in
  let* () = if p.tenants >= 0 then Ok () else Error "tenants must be non-negative" in
  let* () = if p.duration_s > 0. then Ok () else Error "duration must be positive" in
  let* () = if p.rate > 0. then Ok () else Error "rate must be positive" in
  let* () = if p.zipf_s > 0. then Ok () else Error "zipf-s must be positive" in
  let* () =
    if p.opt_share >= 0. && p.opt_share <= 1. then Ok ()
    else Error "opt-share must be in [0, 1]"
  in
  let* () = if p.noisy_boost >= 1. then Ok () else Error "noisy boost must be >= 1" in
  let* () = if p.sample >= 1 then Ok () else Error "sample must be positive" in
  let* () = if p.windows >= 1 then Ok () else Error "windows must be positive" in
  let* () = match p.trace with None -> Ok () | Some tp -> Tracer.validate tp in
  Arrivals.validate p.process

(* per-tenant substream purposes; the stride is full — widen it if adding
   another purpose *)
let streams_per_tenant = 4
let stream_layout t = (t * streams_per_tenant) + 0
let stream_arrivals t = (t * streams_per_tenant) + 1
let stream_apps t = (t * streams_per_tenant) + 2
let stream_trace t = (t * streams_per_tenant) + 3

type tenant_stats = {
  tenant : int;
  shard : int;
  optimized : bool;
  jobs : int;
  requests : int;
  rank_jobs : int array;  (** jobs per mix rank *)
  window_rank_jobs : int array array;  (** jobs per (window, mix rank) *)
  mean_us : float;
  p50_us : float;
  p99_us : float;
}

type shard_stats = {
  shard : int;
  shard_tenants : int;
  shard_jobs : int;
  shard_requests : int;
  utilization : float;  (** summed service demand / modeled window *)
  multiplier : float;  (** congestion latency factor, [1 + utilization] *)
  window_multipliers : float array;
      (** per-window congestion factor, [1 + window utilization]; equals
          [[| multiplier |]] when the period is a single window *)
}

type result = {
  params : params;
  shards : shard_stats array;
  tenants_stats : tenant_stats array;  (** indexed by tenant id *)
  kernels : (Kernel.t * Kernel.t) array;  (** per rank: (default, inter) *)
  agg_hist : Flo_obs.Histogram.t;
  traces : Flo_obs.Trace.t list;
  total_jobs : int;
  total_requests : int;
  offered_rps : float;  (** modeled requests per modeled second *)
  agg_p50_us : float;
  agg_p99_us : float;
  fairness : float;  (** Jain's index over per-tenant mean latency *)
  noisy_p99_delta_pct : float option;
  opt_p50_advantage_pct : float option;
  wall_s : float;  (** engine wall clock (machine-dependent) *)
  modeled_rps : float;  (** total_requests / wall_s (machine-dependent) *)
}

let compile_kernels ?jobs ~config p =
  let ranked = Array.of_list p.mix in
  (* both modes for every rank, fanned over the pool; order by (rank, mode)
     so the array layout is independent of scheduling *)
  let tasks =
    Array.concat
      (List.map
         (fun mode -> Array.map (fun app -> (app, mode)) ranked)
         [ Kernel.Default; Kernel.Inter ])
  in
  let compiled =
    Parallel.map ?jobs
      (fun (app, mode) ->
        Kernel.compile ~sample:p.sample ~faults:p.faults ~profile:(p.trace <> None)
          ~config ~mode app)
      tasks
  in
  let n = Array.length ranked in
  Array.init n (fun r -> (compiled.(r), compiled.(n + r)))

(* one tenant's phase-A summary: layout decision, per-(window, rank) job
   counts and the service demand those jobs put on the tenant's home shard
   in each window *)
type tenant_plan = {
  pl_tenant : int;
  pl_optimized : bool;
  pl_window_jobs : int array array;  (** windows x ranks *)
  pl_window_demand_us : float array;  (** per window *)
}

let plan_rank_jobs pl =
  let ranks = if Array.length pl.pl_window_jobs = 0 then 0
              else Array.length pl.pl_window_jobs.(0) in
  let sums = Array.make ranks 0 in
  Array.iter (Array.iteri (fun r j -> sums.(r) <- sums.(r) + j)) pl.pl_window_jobs;
  sums

let plan_tenant ~p ~zipf ~kernels tenant =
  let prng_layout = Flo_faults.Prng.for_stream ~seed:p.seed ~stream:(stream_layout tenant) in
  let optimized = Flo_faults.Prng.float prng_layout < p.opt_share in
  let rate = if tenant = 0 then p.rate *. p.noisy_boost else p.rate in
  let prng_arr = Flo_faults.Prng.for_stream ~seed:p.seed ~stream:(stream_arrivals tenant) in
  let prng_apps = Flo_faults.Prng.for_stream ~seed:p.seed ~stream:(stream_apps tenant) in
  let win_len = p.duration_s /. float_of_int p.windows in
  let window_jobs = Array.make_matrix p.windows (Array.length kernels) 0 in
  (* each arrival is bucketed into its window and draws its app rank on the
     spot.  The arrivals and apps substreams are independent, so each
     stream's draw sequence — and hence every count — is exactly what the
     unwindowed two-pass (count, then sample per job) produced: windows = 1
     replays byte-identically. *)
  Arrivals.iter prng_arr ~process:p.process ~rate ~duration_s:p.duration_s (fun t ->
      let w = min (p.windows - 1) (int_of_float (t /. win_len)) in
      let r = Zipf.sample zipf prng_apps in
      window_jobs.(w).(r) <- window_jobs.(w).(r) + 1);
  let window_demand =
    Array.map
      (fun rank_jobs ->
        let demand = ref 0. in
        Array.iteri
          (fun r j ->
            if j > 0 then begin
              let kd, ki = kernels.(r) in
              let k = if optimized then ki else kd in
              demand := !demand +. (float_of_int j *. k.Kernel.demand_us_per_job)
            end)
          rank_jobs;
        !demand)
      window_jobs
  in
  { pl_tenant = tenant; pl_optimized = optimized; pl_window_jobs = window_jobs;
    pl_window_demand_us = window_demand }

(* Traffic histograms use a much finer bucket resolution than the default
   run-level shape (gamma 1.05 ≈ 5% relative error instead of 60%): tenant
   percentiles are compared against each other (optimized vs default,
   co-located vs remote), and at gamma 1.6 those comparisons would collapse
   onto shared bucket edges. *)
let hist_create () = Flo_obs.Histogram.create ~gamma:1.05 ~buckets:640 ()

let hist_merge_list hists = List.fold_left Flo_obs.Histogram.merge (hist_create ()) hists

(* Phase B: replay the tenant's jobs through the batched kernels into a
   latency histogram, all requests of one (tenant, window, rank)
   apportioned across the kernel's latency classes in one O(classes)
   sweep, under that window's congestion multiplier. *)
let replay_tenant ~kernels ~multipliers plan =
  let hist = hist_create () in
  let requests = ref 0 in
  Array.iteri
    (fun w rank_jobs ->
      let multiplier = multipliers.(w) in
      Array.iteri
        (fun r j ->
          if j > 0 then begin
            let kd, ki = kernels.(r) in
            let k = if plan.pl_optimized then ki else kd in
            let n = j * k.Kernel.requests_per_job in
            requests := !requests + n;
            let counts = Kernel.apportion k ~requests:n in
            Array.iteri
              (fun i cnt ->
                if cnt > 0 then
                  Flo_obs.Histogram.add_many hist
                    (k.Kernel.classes.(i).Kernel.latency_us *. multiplier)
                    cnt)
              counts
          end)
        rank_jobs)
    plan.pl_window_jobs;
  (hist, !requests)

let jain xs =
  match Array.length xs with
  | 0 -> 1.
  | n ->
    let s = Array.fold_left ( +. ) 0. xs in
    let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
    if s2 = 0. then 1. else s *. s /. (float_of_int n *. s2)

let mean_of = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let simulate ?jobs ?metrics ~config p =
  (match validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Traffic.Engine.simulate: " ^ msg));
  let kernels = compile_kernels ?jobs ~config p in
  let zipf = Zipf.make ~s:p.zipf_s ~n:(Array.length kernels) in
  let shards_n = config.Config.topology.Flo_storage.Topology.storage_nodes in
  let t0 = Unix.gettimeofday () in
  (* one task per storage shard; a shard owns tenants (i mod shards_n) and
     simulates them end to end, so cross-shard scheduling cannot matter *)
  let shard_results =
    Parallel.map ?jobs
      (fun shard ->
        let tenants =
          List.filter (fun t -> t mod shards_n = shard)
            (List.init p.tenants Fun.id)
        in
        let plans = List.map (plan_tenant ~p ~zipf ~kernels) tenants in
        let win_len_us = p.duration_s /. float_of_int p.windows *. 1e6 in
        (* congestion is per (shard, window): each window's multiplier is
           1 + that window's summed demand over its length, so a burst
           inflates only its own window's latencies.  With one window this
           is exactly the old aggregate 1 + utilization. *)
        let window_demand = Array.make p.windows 0. in
        List.iter
          (fun pl ->
            Array.iteri
              (fun w d -> window_demand.(w) <- window_demand.(w) +. d)
              pl.pl_window_demand_us)
          plans;
        let multipliers = Array.map (fun d -> 1. +. (d /. win_len_us)) window_demand in
        let demand_us = Array.fold_left ( +. ) 0. window_demand in
        let utilization = demand_us /. (p.duration_s *. 1e6) in
        let multiplier = 1. +. utilization in
        let per_tenant =
          List.map
            (fun pl ->
              let hist, requests = replay_tenant ~kernels ~multipliers pl in
              let rank_jobs = plan_rank_jobs pl in
              let stats =
                {
                  tenant = pl.pl_tenant;
                  shard;
                  optimized = pl.pl_optimized;
                  jobs = Array.fold_left ( + ) 0 rank_jobs;
                  requests;
                  rank_jobs;
                  window_rank_jobs = pl.pl_window_jobs;
                  mean_us = Flo_obs.Histogram.mean hist;
                  p50_us = Flo_obs.Histogram.percentile hist 0.5;
                  p99_us = Flo_obs.Histogram.percentile hist 0.99;
                }
              in
              (stats, hist))
            plans
        in
        (* the tracing sweep observes the replay (same plans, same order):
           it adds exemplars to the tenant histograms — which then ride the
           shard-order merges below — but never a count, so every modeled
           number is byte-identical with tracing on or off *)
        let shard_traces =
          match p.trace with
          | None -> []
          | Some tp ->
            List.map2
              (fun pl (_, hist) ->
                Tracer.trace_tenant ~t:tp ~seed:p.seed
                  ~stream:(stream_trace pl.pl_tenant) ~tenant:pl.pl_tenant ~shard
                  ~optimized:pl.pl_optimized ~win_len_us ~multipliers ~kernels
                  ~window_jobs:pl.pl_window_jobs ~hist)
              plans per_tenant
            |> List.concat
        in
        let shard_jobs = List.fold_left (fun a (s, _) -> a + s.jobs) 0 per_tenant in
        let shard_requests =
          List.fold_left (fun a (s, _) -> a + s.requests) 0 per_tenant
        in
        let shard_hist = hist_merge_list (List.map snd per_tenant) in
        ( {
            shard;
            shard_tenants = List.length tenants;
            shard_jobs;
            shard_requests;
            utilization;
            multiplier;
            window_multipliers = multipliers;
          },
          List.map fst per_tenant,
          shard_hist,
          shard_traces ))
      (Array.init shards_n Fun.id)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let shards = Array.map (fun (s, _, _, _) -> s) shard_results in
  let tenants_stats = Array.make p.tenants None in
  Array.iter
    (fun (_, stats, _, _) ->
      List.iter (fun s -> tenants_stats.(s.tenant) <- Some s) stats)
    shard_results;
  let tenants_stats =
    Array.map (function Some s -> s | None -> assert false) tenants_stats
  in
  let agg_hist =
    hist_merge_list (Array.to_list (Array.map (fun (_, _, h, _) -> h) shard_results))
  in
  (* sampled traces merge in shard order, like the histograms — the list is
     identical at every jobs value *)
  let traces =
    List.concat_map (fun (_, _, _, ts) -> ts) (Array.to_list shard_results)
  in
  let total_jobs = Array.fold_left (fun a s -> a + s.shard_jobs) 0 shards in
  let total_requests = Array.fold_left (fun a s -> a + s.shard_requests) 0 shards in
  let active = List.filter (fun s -> s.requests > 0) (Array.to_list tenants_stats) in
  let fairness = jain (Array.of_list (List.map (fun s -> s.mean_us) active)) in
  let noisy_p99_delta_pct =
    if p.noisy_boost <= 1. || shards_n < 2 || p.tenants < 2 then None
    else begin
      (* tenants co-located with the noisy tenant (its shard, itself
         excluded) against tenants on the other shards *)
      let noisy_shard = 0 in
      let co, others =
        List.partition
          (fun (s : tenant_stats) -> s.shard = noisy_shard)
          (List.filter (fun (s : tenant_stats) -> s.tenant <> 0) active)
      in
      match (co, others) with
      | [], _ | _, [] -> None
      | _ ->
        let a = mean_of (List.map (fun s -> s.p99_us) co) in
        let b = mean_of (List.map (fun s -> s.p99_us) others) in
        if b = 0. then None else Some (100. *. ((a /. b) -. 1.))
    end
  in
  let opt_p50_advantage_pct =
    let opt, dfl = List.partition (fun s -> s.optimized) active in
    match (opt, dfl) with
    | [], _ | _, [] -> None
    | _ ->
      let o = mean_of (List.map (fun s -> s.p50_us) opt) in
      let d = mean_of (List.map (fun s -> s.p50_us) dfl) in
      if d = 0. then None else Some (100. *. ((d -. o) /. d))
  in
  (* per-tenant and per-shard counters for the observability layer; filled
     after the parallel phase so the registry is only touched by one domain *)
  (match metrics with
  | None -> ()
  | Some registry ->
    Array.iter
      (fun s ->
        let labels = [ ("tenant", string_of_int s.tenant) ] in
        Flo_obs.Metrics.incr ~by:s.jobs (Flo_obs.Metrics.counter registry ~labels "traffic.jobs");
        Flo_obs.Metrics.incr ~by:s.requests
          (Flo_obs.Metrics.counter registry ~labels "traffic.requests"))
      tenants_stats;
    Array.iter
      (fun s ->
        let labels = [ ("shard", string_of_int s.shard) ] in
        Flo_obs.Metrics.incr ~by:s.shard_requests
          (Flo_obs.Metrics.counter registry ~labels "traffic.shard_requests"))
      shards);
  {
    params = p;
    shards;
    tenants_stats;
    kernels;
    agg_hist;
    traces;
    total_jobs;
    total_requests;
    offered_rps = float_of_int total_requests /. p.duration_s;
    agg_p50_us = Flo_obs.Histogram.percentile agg_hist 0.5;
    agg_p99_us = Flo_obs.Histogram.percentile agg_hist 0.99;
    fairness;
    noisy_p99_delta_pct;
    opt_p50_advantage_pct;
    wall_s;
    modeled_rps =
      (if wall_s > 0. then float_of_int total_requests /. wall_s else 0.);
  }
