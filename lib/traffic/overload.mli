(** Overload-control policies for the traffic engine: admission control,
    load shedding, brownout, and circuit breaking.

    This module holds the pure decision machinery — policy/spec types, the
    largest-remainder integer apportioning shed decisions are made with,
    and parameter validation.  {!Engine} threads it through the simulation:
    a per-(shard, window) admission controller keeps admitted service
    demand at or under [capacity * window length], shedding (or degrading)
    whole jobs; a per-storage-node {!Flo_faults.Breaker} routes an
    unhealthy node's traffic along the failover path.  Every decision is a
    deterministic function of (params, plans): no draws, no wall clock, so
    shed counts and breaker trajectories are byte-identical at every
    [--jobs] value.  [Engine.params.overload = None] skips the subsystem
    entirely — reports are byte-identical to a build without it. *)

(** How excess demand is dropped once a (shard, window) exceeds the
    capacity target. *)
type policy =
  | Fail_fast  (** reject excess jobs outright, uniformly across classes *)
  | Priority
      (** reject default-cohort jobs first; the optimized (paying) cohort
          is only shed once the default cohort is fully shed *)
  | Brownout
      (** degrade instead of rejecting: excess jobs are served by a
          reduced-fidelity kernel variant (the closed-loop run compiled at
          [sample * brownout_factor] — the existing profile-sampling [Run]
          knob), which serves a sampled subset of each job's accesses *)

val policy_to_string : policy -> string
val policy_of_string : string -> (policy, string) result
(** ["fail-fast"], ["priority"], ["brownout"].  ["off"] is not a policy —
    the CLI maps it to [shed = None]. *)

type params = {
  shed : policy option;
      (** [None]: admission control off (breaker-only mode — [capacity]
          is ignored and no job is ever shed) *)
  capacity : float;
      (** max sustainable utilization per (shard, window): admitted demand
          is kept at or under [capacity * window length], so the congestion
          multiplier of accepted requests is bounded by [1 + capacity]
          (plus at most one job per class of rounding).  The service
          quantum is a whole job: a window whose every job exceeds the
          target still admits exactly one, so a shard never stalls — the
          bound then degrades to one job's demand. *)
  brownout_factor : int;
      (** sampling multiplier of the brownout kernel variant; only used
          by the [Brownout] policy *)
  breaker : Flo_faults.Breaker.spec option;  (** per-storage-node breaker *)
}

val default : params
(** Fail-fast shedding at capacity 1.0, brownout factor 8, no breaker. *)

val validate : params -> (unit, string) result
(** Requires a positive [capacity], [brownout_factor >= 2], a valid
    breaker spec, and at least one control enabled ([shed] or [breaker]). *)

val describe : params -> string
(** One-line rendering for report headers, e.g.
    ["policy=fail-fast capacity=1 breaker=open=0.1,..."]. *)

val split : counts:int array -> keep:int -> int array
(** Keep [keep] of [sum counts] jobs, apportioned across the classes by
    largest remainder — the same arithmetic as {!Kernel.apportion}, so
    shed decisions are exact integers: the result sums to
    [min keep (sum counts)] (or [0] when [keep <= 0]), never exceeds
    [counts] pointwise, and ties break by class index.  Deterministic. *)

(** One admitted slice of a (tenant, window, rank)'s jobs: how many jobs,
    by which kernel variant, on which serving shard, under which
    congestion multiplier.  A (window, rank) cell can hold several
    segments (e.g. a half-open probe served locally plus the remainder
    failed over); replay, tracing and SLO scoring all walk segments in
    identical order. *)
type variant =
  | Normal
  | Fail_fast_serve  (** retry-suppressed kernels: retries shed first *)
  | Browned  (** reduced-fidelity brownout kernels *)

type seg = {
  sg_variant : variant;
  sg_jobs : int;
  sg_mult : float;  (** the serving (shard, window)'s congestion multiplier *)
  sg_shard : int;  (** serving shard (home shard unless failed over) *)
}

val variant_to_string : variant -> string
