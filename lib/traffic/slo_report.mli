(** Rendering for SLO evaluations.  Every line is a pure function of the
    modeled verdicts, so reports are byte-identical at every [--jobs]
    value — CI pins {!verdict_line}. *)

val summary : ?max_rows:int -> Engine.result -> Slo_eval.t -> string
(** Header, the worst [max_rows] tenants (by burn rate, default 8), both
    layout cohorts, and the fleet row. *)

val verdict_line : Engine.result -> Slo_eval.t -> string
(** One line: spec, mix, fleet burn rate, budget remaining, compliance,
    alert counts, and OK/VIOLATED. *)

val print : ?max_rows:int -> Engine.result -> Slo_eval.t -> unit
(** {!summary} then {!verdict_line} to stdout. *)
