(** Open-loop multi-tenant traffic engine with sharded simulation.

    Tenants draw applications from a Zipfian popularity law over the mix,
    jobs arrive per tenant as a seeded Poisson (or on/off bursty) process,
    and each tenant runs either the default or the compiler-optimized
    layouts.  The hierarchy is sharded by storage node — tenant [i] lives
    on shard [i mod storage_nodes], each shard is one task on the
    {!Flo_engine.Parallel} domain pool, and per-shard stats merge in shard
    order — so every modeled quantity is identical at every [jobs] value.

    All randomness routes through {!Flo_faults.Prng} substreams keyed by
    (seed, tenant, purpose): runs are replay-exact and a tenant's stream
    never depends on enumeration or scheduling order. *)

open Flo_workloads

type params = {
  mix : App.t list;  (** popularity order: head = rank 1 *)
  tenants : int;
  seed : int;
  duration_s : float;  (** modeled window, seconds *)
  rate : float;  (** mean job arrivals per tenant per modeled second *)
  zipf_s : float;
  opt_share : float;  (** fraction of tenants given optimized layouts *)
  noisy_boost : float;  (** arrival-rate multiplier for tenant 0; 1 = off *)
  process : Arrivals.process;
  sample : int;  (** profile-mode sampling for kernel compilation *)
  windows : int;  (** SLO evaluation windows the modeled period splits into *)
  faults : Flo_faults.Fault_plan.t;
      (** fault plan baked into kernel compilation: retry/backoff latencies
          reach the latency classes and failed reads are counted per job
          ({!Kernel.t.errors_per_job}); the empty plan is byte-identical to
          a fault-free run *)
  trace : Tracer.params option;
      (** request-level sampled tracing ({!Tracer}); [None] (the default)
          skips profile collection and the tracing sweep entirely — every
          modeled number is byte-identical either way, tracing only {e adds}
          [result.traces] and histogram exemplars *)
  overload : Overload.params option;
      (** admission control, load shedding and circuit breaking
          ({!Overload}); [None] (the default) takes the open-loop code path
          untouched, so every report is byte-identical to a build without
          the subsystem *)
}

val default_params : mix:App.t list -> params
(** 64 tenants, seed 42, 10 modeled seconds at 2 jobs/s, zipf-s 1.1,
    opt-share 0.5, no noisy tenant, Poisson arrivals, sample 8, a single
    window, no faults, no tracing, no overload control. *)

val validate : params -> (unit, string) result

type tenant_stats = {
  tenant : int;
  shard : int;
  optimized : bool;
  jobs : int;
  requests : int;
  rank_jobs : int array;  (** jobs per mix rank *)
  window_rank_jobs : int array array;
      (** jobs per (window, mix rank); {!Slo_eval} turns these into
          per-window SLO samples without re-simulating *)
  mean_us : float;
  p50_us : float;
  p99_us : float;
}

type shard_stats = {
  shard : int;
  shard_tenants : int;
  shard_jobs : int;
  shard_requests : int;
  utilization : float;  (** summed service demand / modeled window *)
  multiplier : float;  (** congestion latency factor, [1 + utilization] *)
  window_multipliers : float array;
      (** per-window congestion factor, [1 + window utilization]; equals
          [[| multiplier |]] when the period is a single window *)
}

(** One (shard, window) cell of the overload-control ledger.  Serving
    counts ([aw_admitted_jobs], [aw_browned_jobs], [aw_served_requests],
    demand, multiplier) are attributed to the shard that actually served
    the jobs; [aw_offered_jobs]/[aw_routed_out_jobs] describe the tenants
    homed on the shard. *)
type shard_window_admission = {
  aw_offered_jobs : int;  (** jobs of tenants homed on this shard *)
  aw_routed_out_jobs : int;  (** homed here, served elsewhere (open breaker) *)
  aw_routed_in_jobs : int;  (** homed elsewhere, failed over to here *)
  aw_offered_us : float;
      (** service demand presented for admission on this shard after
          routing, in normal-kernel units *)
  aw_admitted_jobs : int;  (** served here at full fidelity *)
  aw_browned_jobs : int;  (** served here by the degraded brownout kernels *)
  aw_shed_jobs : int;  (** rejected here, never served *)
  aw_served_requests : int;
  aw_admitted_us : float;  (** demand actually absorbed after control *)
  aw_multiplier : float;  (** [1 + admitted demand / window length] *)
  aw_retry_suppressed : bool;
      (** the admission controller switched this cell to the fail-fast
          (retry-suppressed) kernels before shedding any job *)
  aw_breaker : Flo_faults.Breaker.state option;
      (** this shard's breaker state {e during} the window; [None] when no
          breaker is armed on the shard *)
}

(** Everything the overload subsystem decided, exposed for reports, SLO
    scoring and tests.  [ol_tenant_segs] is the ground truth the replay,
    the tracer and {!Slo_eval} all walk in identical order. *)
type overload_stats = {
  ol_params : Overload.params;
  ol_ff_kernels : (Kernel.t * Kernel.t) array option;
      (** retry-suppressed kernel variants (the fault plan recompiled with
          a zero retry budget); [None] when no policy can reach them *)
  ol_bw_kernels : (Kernel.t * Kernel.t) array option;
      (** reduced-fidelity brownout variants; [None] off the [Brownout]
          policy *)
  ol_tenant_segs : Overload.seg list array array array;
      (** tenant -> window -> rank -> admitted segments, in serving order *)
  ol_tenant_shed : int array array array;
      (** tenant -> window -> rank -> shed jobs *)
  ol_admissions : shard_window_admission array array;  (** shard -> window *)
  ol_offered_requests : int;  (** arrivals, in normal-kernel request units *)
  ol_admitted_requests : int;  (** requests actually served *)
  ol_shed_requests : int;  (** shed jobs, in normal-kernel request units *)
  ol_browned_jobs : int;
  ol_failover_jobs : int;  (** jobs served off their home shard *)
  ol_retry_suppressed_windows : int;  (** (shard, window) cells switched *)
  ol_goodput_rps : float;  (** admitted requests per modeled second *)
  ol_shed_fraction : float;  (** shed / offered requests *)
}

type result = {
  params : params;
  shards : shard_stats array;
  tenants_stats : tenant_stats array;  (** indexed by tenant id *)
  kernels : (Kernel.t * Kernel.t) array;  (** per rank: (default, inter) *)
  agg_hist : Flo_obs.Histogram.t;
      (** the fleet latency histogram behind [agg_p50_us]/[agg_p99_us];
          under tracing it carries the exemplars that link percentile lines
          to sampled traces *)
  traces : Flo_obs.Trace.t list;
      (** sampled request traces, merged in shard order (then tenant, then
          replay order within a tenant) — identical at every [jobs] value;
          [[]] when [params.trace] is [None] *)
  total_jobs : int;
  total_requests : int;
  offered_rps : float;  (** modeled requests per modeled second *)
  agg_p50_us : float;
  agg_p99_us : float;
  fairness : float;  (** Jain's index over per-tenant mean latency *)
  noisy_p99_delta_pct : float option;
      (** mean p99 of tenants co-located with the noisy tenant vs the other
          shards, percent; [None] without a noisy tenant or a counterpart *)
  opt_p50_advantage_pct : float option;
      (** how much lower the optimized tenants' mean p50 is, percent *)
  wall_s : float;  (** engine wall clock (machine-dependent) *)
  modeled_rps : float;  (** total_requests / wall_s (machine-dependent) *)
  overload : overload_stats option;
      (** [Some] exactly when [params.overload] is.  Under overload
          control, [tenant_stats.jobs] still counts arrivals but
          [requests], the histograms and every percentile describe the
          {e accepted} cohort only; shard stats use serving-shard
          attribution and [shard_stats.window_multipliers] come from the
          admission ledger. *)
}

val simulate :
  ?jobs:int -> ?metrics:Flo_obs.Metrics.t -> config:Flo_engine.Config.t ->
  params -> result
(** Compile the service kernels (one closed-loop run per (rank, mode)),
    then replay the open-loop traffic shard by shard.  Every field except
    [wall_s] and [modeled_rps] is a pure function of (params, config).
    With [metrics], per-tenant [traffic.jobs]/[traffic.requests] and
    per-shard [traffic.shard_requests] counters are recorded.

    With [params.overload] set, a sequential control loop runs between
    planning and replay: per-storage-node circuit breakers decide what each
    shard admits (an open shard's traffic takes the failover ring walk),
    and a per-(shard, window) admission controller keeps admitted demand at
    or under [capacity * window length] — suppressing retry storms first
    (fail-fast kernel variants), then shedding or degrading whole jobs by
    exact largest-remainder apportioning.  No PRNG draws are made, so the
    trajectory is byte-identical at every [jobs] value.  Additional
    [overload.*] counters and gauges are recorded under [metrics].
    @raise Invalid_argument when {!validate} rejects the params. *)
