(** Open-loop multi-tenant traffic engine with sharded simulation.

    Tenants draw applications from a Zipfian popularity law over the mix,
    jobs arrive per tenant as a seeded Poisson (or on/off bursty) process,
    and each tenant runs either the default or the compiler-optimized
    layouts.  The hierarchy is sharded by storage node — tenant [i] lives
    on shard [i mod storage_nodes], each shard is one task on the
    {!Flo_engine.Parallel} domain pool, and per-shard stats merge in shard
    order — so every modeled quantity is identical at every [jobs] value.

    All randomness routes through {!Flo_faults.Prng} substreams keyed by
    (seed, tenant, purpose): runs are replay-exact and a tenant's stream
    never depends on enumeration or scheduling order. *)

open Flo_workloads

type params = {
  mix : App.t list;  (** popularity order: head = rank 1 *)
  tenants : int;
  seed : int;
  duration_s : float;  (** modeled window, seconds *)
  rate : float;  (** mean job arrivals per tenant per modeled second *)
  zipf_s : float;
  opt_share : float;  (** fraction of tenants given optimized layouts *)
  noisy_boost : float;  (** arrival-rate multiplier for tenant 0; 1 = off *)
  process : Arrivals.process;
  sample : int;  (** profile-mode sampling for kernel compilation *)
  windows : int;  (** SLO evaluation windows the modeled period splits into *)
  faults : Flo_faults.Fault_plan.t;
      (** fault plan baked into kernel compilation: retry/backoff latencies
          reach the latency classes and failed reads are counted per job
          ({!Kernel.t.errors_per_job}); the empty plan is byte-identical to
          a fault-free run *)
  trace : Tracer.params option;
      (** request-level sampled tracing ({!Tracer}); [None] (the default)
          skips profile collection and the tracing sweep entirely — every
          modeled number is byte-identical either way, tracing only {e adds}
          [result.traces] and histogram exemplars *)
}

val default_params : mix:App.t list -> params
(** 64 tenants, seed 42, 10 modeled seconds at 2 jobs/s, zipf-s 1.1,
    opt-share 0.5, no noisy tenant, Poisson arrivals, sample 8, a single
    window, no faults, no tracing. *)

val validate : params -> (unit, string) result

type tenant_stats = {
  tenant : int;
  shard : int;
  optimized : bool;
  jobs : int;
  requests : int;
  rank_jobs : int array;  (** jobs per mix rank *)
  window_rank_jobs : int array array;
      (** jobs per (window, mix rank); {!Slo_eval} turns these into
          per-window SLO samples without re-simulating *)
  mean_us : float;
  p50_us : float;
  p99_us : float;
}

type shard_stats = {
  shard : int;
  shard_tenants : int;
  shard_jobs : int;
  shard_requests : int;
  utilization : float;  (** summed service demand / modeled window *)
  multiplier : float;  (** congestion latency factor, [1 + utilization] *)
  window_multipliers : float array;
      (** per-window congestion factor, [1 + window utilization]; equals
          [[| multiplier |]] when the period is a single window *)
}

type result = {
  params : params;
  shards : shard_stats array;
  tenants_stats : tenant_stats array;  (** indexed by tenant id *)
  kernels : (Kernel.t * Kernel.t) array;  (** per rank: (default, inter) *)
  agg_hist : Flo_obs.Histogram.t;
      (** the fleet latency histogram behind [agg_p50_us]/[agg_p99_us];
          under tracing it carries the exemplars that link percentile lines
          to sampled traces *)
  traces : Flo_obs.Trace.t list;
      (** sampled request traces, merged in shard order (then tenant, then
          replay order within a tenant) — identical at every [jobs] value;
          [[]] when [params.trace] is [None] *)
  total_jobs : int;
  total_requests : int;
  offered_rps : float;  (** modeled requests per modeled second *)
  agg_p50_us : float;
  agg_p99_us : float;
  fairness : float;  (** Jain's index over per-tenant mean latency *)
  noisy_p99_delta_pct : float option;
      (** mean p99 of tenants co-located with the noisy tenant vs the other
          shards, percent; [None] without a noisy tenant or a counterpart *)
  opt_p50_advantage_pct : float option;
      (** how much lower the optimized tenants' mean p50 is, percent *)
  wall_s : float;  (** engine wall clock (machine-dependent) *)
  modeled_rps : float;  (** total_requests / wall_s (machine-dependent) *)
}

val simulate :
  ?jobs:int -> ?metrics:Flo_obs.Metrics.t -> config:Flo_engine.Config.t ->
  params -> result
(** Compile the service kernels (one closed-loop run per (rank, mode)),
    then replay the open-loop traffic shard by shard.  Every field except
    [wall_s] and [modeled_rps] is a pure function of (params, config).
    With [metrics], per-tenant [traffic.jobs]/[traffic.requests] and
    per-shard [traffic.shard_requests] counters are recorded.
    @raise Invalid_argument when {!validate} rejects the params. *)
