(** Deterministic request sampling for the traffic engine.

    The engine replays a tenant's jobs as O(latency classes) batched
    histogram updates; the tracer walks the {e same} apportioned counts in
    the {e same} order and decides, per request sequence number, which
    requests materialize a {!Flo_obs.Trace.t} span tree:

    - {b head sampling} — every [sample_rate]-th request of a tenant (by its
      replay sequence number), one trace per sampled request;
    - {b tail sampling} — every (window, rank, class) group whose requests
      hit the fault path, cross [breach_us], or form the max-latency group
      of their (tenant, window) is kept as one {e group} trace whose [count]
      is the whole group — so every fault/timeout request in a run is
      covered by some sampled trace, by construction.

    Trace ids are minted from the tenant's splitmix64 tracing substream at
    counter [2*seq] (head) or [2*seq + 1] (group at its first sequence
    number), so ids never collide and are a pure function of (seed, tenant,
    replay position): output is byte-identical at every [--jobs].  Every
    emitted trace also lands as a histogram exemplar, which is how
    [slo_report]'s p99 lines link to concrete traces. *)

type params = {
  sample_rate : int;  (** head sampling: 1 trace per N requests per tenant *)
  breach_us : float;  (** tail sampling: keep classes slower than this *)
  exemplar_cap : int;  (** exemplars kept per histogram bucket *)
}

val default : params
(** [sample_rate 65536], [breach_us 1e6] (only the extreme tail),
    [exemplar_cap 2]. *)

val validate : params -> (unit, string) result

val trace_tenant :
  t:params ->
  seed:int ->
  stream:int ->
  tenant:int ->
  shard:int ->
  optimized:bool ->
  win_len_us:float ->
  multipliers:float array ->
  kernels:(Kernel.t * Kernel.t) array ->
  window_jobs:int array array ->
  hist:Flo_obs.Histogram.t ->
  Flo_obs.Trace.t list
(** Sample one tenant's replay.  [window_jobs], [multipliers] and [kernels]
    must be exactly what {!Engine}'s replay consumed, and [hist] the
    tenant's latency histogram: each emitted trace's latency is the same
    float expression the replay recorded, so the exemplar attached here
    lands in the bucket that counted the request.  Traces come back in
    replay order (window, rank, class ascending).  Pure observation: [hist]
    gains exemplars, never observations. *)

val trace_tenant_overload :
  t:params ->
  seed:int ->
  stream:int ->
  tenant:int ->
  shard:int ->
  optimized:bool ->
  win_len_us:float ->
  kernels:(Kernel.t * Kernel.t) array ->
  ff_kernels:(Kernel.t * Kernel.t) array option ->
  bw_kernels:(Kernel.t * Kernel.t) array option ->
  segs:Overload.seg list array array ->
  shed:int array array ->
  hist:Flo_obs.Histogram.t ->
  Flo_obs.Trace.t list
(** {!trace_tenant} for a tenant simulated under overload control: the walk
    enumerates the tenant's admitted {!Overload.seg}s (windows x ranks),
    each under its serving multiplier and kernel variant, then emits one
    group trace per shed (window, rank) — outcome ["shed"], reason
    {!Flo_obs.Trace.Shed}, a zero-duration [admission.shed] root span at
    the window origin, [count] = the rejected requests.  Sequence numbers
    cover the offered request space (served segments first, then shed), so
    trace ids never collide with served ones.  Shed traces attach no
    exemplar — shed requests never reach a histogram. *)
