(** Rendering for traffic-engine results.

    Everything except {!wall_line} depends only on the result's modeled
    fields, so the report is byte-identical at every [--jobs] value; CI
    pins {!verdict_line} verbatim and diffs whole reports with the
    [[wall]] line stripped.  All renderers accept degenerate inputs — zero
    tenants, a single tenant, a single-app mix, tenants with no arrivals —
    and produce a well-formed (possibly empty-bodied) table. *)

val mix_names : Engine.params -> string
(** Comma-joined application names of the mix, in popularity order. *)

val summary : ?max_rows:int -> Engine.result -> string
(** Header, per-tenant table (top [max_rows], default 8, by request
    count), per-shard table, and the aggregate/fairness lines.  When the
    run carried overload control, a per-shard admission/breaker table is
    appended — overload-off reports are byte-identical to before the
    subsystem existed. *)

val overload_line : Engine.result -> Engine.overload_stats -> string
(** One deterministic line of overload accounting:
    [overload policy=...: offered=... admitted=... shed=... (...) ...
    goodput=...rps accepted_p99=...us]. *)

val verdict_line : Engine.result -> string
(** One deterministic line:
    [traffic MIX tenants=N seed=S: requests=... offered_rps=... p50=...
    p99=... fairness=... noisy_p99=... opt_p50_adv=...] *)

val wall_line : Engine.result -> string
(** Machine-dependent throughput line, prefixed [[wall]]. *)

val print : ?max_rows:int -> Engine.result -> unit
(** [summary], then {!wall_line}, then ({!overload_line} when overload
    control ran), then {!verdict_line}, to stdout. *)
