(* Zipfian popularity over a ranked catalog.

   Rank r (0-based) has weight 1 / (r+1)^s; the sampler inverts the
   cumulative distribution with a binary search over a precomputed table,
   so one draw costs one uniform variate plus O(log n) comparisons and the
   table is shared read-only across worker domains. *)

type t = { s : float; cum : float array }

let make ~s ~n =
  if n < 1 then invalid_arg "Zipf.make: need at least one rank";
  if not (s > 0.) then invalid_arg "Zipf.make: exponent must be positive";
  let w = Array.init n (fun r -> 1. /. (float_of_int (r + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0. w in
  let cum = Array.make n 0. in
  let acc = ref 0. in
  for r = 0 to n - 1 do
    acc := !acc +. (w.(r) /. total);
    cum.(r) <- !acc
  done;
  (* force the last edge to exactly 1 so no uniform draw can fall past it *)
  cum.(n - 1) <- 1.;
  { s; cum }

let support t = Array.length t.cum

let exponent t = t.s

let pmf t r =
  if r < 0 || r >= support t then invalid_arg "Zipf.pmf: rank out of range";
  if r = 0 then t.cum.(0) else t.cum.(r) -. t.cum.(r - 1)

let sample t prng =
  let u = Flo_faults.Prng.float prng in
  (* smallest r with cum.(r) > u *)
  let lo = ref 0 and hi = ref (support t - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
