open Flo_engine
open Flo_workloads

(* A service kernel is the batched-event compilation of one (app, layout)
   pair: one metrics-attached closed-loop run of the existing simulator is
   distilled into (requests per job, service demand per job, a compact
   per-request latency distribution).  The open-loop engine then models a
   whole job in O(latency classes) histogram updates instead of walking
   every element through the cache hierarchy — this is where the >= 10x
   modeled-requests-per-second over the per-element simulate loop comes
   from.  Compilation is deterministic (Run.run is), so kernels are
   identical on every machine and at every jobs setting. *)

type mode = Default | Inter

let mode_to_string = function Default -> "default" | Inter -> "inter"

type cls = { latency_us : float; weight : float }

type step = { step_name : string; step_us : float }

type profile = {
  rep_latency_us : float;
  rep_steps : step list;
  faulty : int;
}

type t = {
  app : string;
  mode : mode;
  requests_per_job : int;  (** block requests one run of the app issues *)
  accesses_per_job : int;  (** element accesses; layout-invariant per app *)
  demand_us_per_job : float;  (** summed per-request modeled service time *)
  elapsed_us_per_job : float;  (** modeled makespan of one run *)
  errors_per_job : int;  (** failed disk-read attempts one run suffers *)
  timeouts_per_job : int;  (** requests whose retry budget ran out *)
  classes : cls array;  (** per-request latency distribution; weights sum to 1 *)
  profiles : profile option array;
      (** per-class representative breakdowns, aligned with [classes];
          [[||]] when compiled without [~profile] *)
}

let classes_of_histogram h =
  let counts = Flo_obs.Histogram.counts h in
  let bounds = Flo_obs.Histogram.bounds h in
  let total = Flo_obs.Histogram.count h in
  if total = 0 then [||]
  else begin
    let lo = Flo_obs.Histogram.min_value h and hi = Flo_obs.Histogram.max_value h in
    let acc = ref [] in
    Array.iteri
      (fun i n ->
        if n > 0 then begin
          (* same clamp as Histogram.percentile: a bucket's representative
             latency is its upper edge bounded by the observed extremes *)
          let latency_us = Float.max lo (Float.min bounds.(i) hi) in
          acc := { latency_us; weight = float_of_int n /. float_of_int total } :: !acc
        end)
      counts;
    Array.of_list (List.rev !acc)
  end

(* Per-request breakdown capture for tracing, attached only under
   [~profile:true].  The collector replays the hierarchy's cost arithmetic
   from the event stream — the {e same} IEEE additions in the {e same}
   order ([access] in hierarchy.ml: l1 round trip, then the L2 hop on an L1
   miss, then the disk phase's extra+service chain, then per-prefetch
   transfer charges) — so each reconstructed latency lands in exactly the
   bucket the run's request_latency_us histogram counted it in, and the
   per-class breakdowns line up with [classes] by construction. *)

type open_req = {
  mutable cost : float;
  mutable steps_rev : step list;
  mutable service : float;  (** disk-phase accumulator, folded in event order *)
  mutable in_service : bool;
  mutable flushed : bool;  (** service already folded into [cost] *)
  mutable faulty : bool;
}

let profile_collector ~(costs : Flo_storage.Hierarchy.costs) ~prefetch_charge_us ~shape
    =
  let open_reqs : (int, open_req) Hashtbl.t = Hashtbl.create 64 in
  let buckets = Array.make (Flo_obs.Histogram.bucket_count shape) None in
  let flush_service r =
    if r.in_service && not r.flushed then begin
      r.cost <- r.cost +. r.service;
      r.flushed <- true
    end
  in
  let finalize r =
    flush_service r;
    let i = Flo_obs.Histogram.value_index shape r.cost in
    let faulty = if r.faulty then 1 else 0 in
    buckets.(i) <-
      (match buckets.(i) with
      | None ->
        Some { rep_latency_us = r.cost; rep_steps = List.rev r.steps_rev; faulty }
      | Some p ->
        (* the class representative is the max-latency request; ties keep
           the first seen, so the choice is stable in replay order *)
        Some
          (if r.cost > p.rep_latency_us then
             {
               rep_latency_us = r.cost;
               rep_steps = List.rev r.steps_rev;
               faulty = p.faulty + faulty;
             }
           else { p with faulty = p.faulty + faulty }))
  in
  let feed (e : Flo_obs.Event.t) =
    let thread = e.Flo_obs.Event.thread in
    match e.Flo_obs.Event.kind with
    | Flo_obs.Event.Access ->
      (match Hashtbl.find_opt open_reqs thread with
      | Some r ->
        finalize r;
        Hashtbl.remove open_reqs thread
      | None -> ());
      Hashtbl.add open_reqs thread
        {
          cost = costs.Flo_storage.Hierarchy.l1_hit_us;
          steps_rev = [];
          service = 0.;
          in_service = false;
          flushed = false;
          faulty = false;
        }
    | kind -> (
      match Hashtbl.find_opt open_reqs thread with
      | None -> ()  (* install/eviction noise outside any open request *)
      | Some r ->
        let step name us = r.steps_rev <- { step_name = name; step_us = us } :: r.steps_rev in
        let lat = e.Flo_obs.Event.latency_us in
        (match (kind, e.Flo_obs.Event.layer) with
        | Flo_obs.Event.Hit, Flo_obs.Event.L1 ->
          step "l1.hit" costs.Flo_storage.Hierarchy.l1_hit_us
        | Flo_obs.Event.Miss, Flo_obs.Event.L1 ->
          step "l1.miss" costs.Flo_storage.Hierarchy.l1_hit_us;
          r.cost <- r.cost +. costs.Flo_storage.Hierarchy.l2_hit_us
        | Flo_obs.Event.Hit, Flo_obs.Event.L2 ->
          step "l2.hit" costs.Flo_storage.Hierarchy.l2_hit_us
        | Flo_obs.Event.Miss, Flo_obs.Event.L2 ->
          step "l2.miss" costs.Flo_storage.Hierarchy.l2_hit_us;
          r.in_service <- true
        | Flo_obs.Event.Disk_read, _ ->
          step "disk.read" lat;
          r.service <- r.service +. lat
        | Flo_obs.Event.Fault, _ ->
          step "disk.fault" lat;
          r.service <- r.service +. lat;
          r.faulty <- true
        | Flo_obs.Event.Retry, _ ->
          step "disk.retry" lat;
          r.service <- r.service +. lat;
          r.faulty <- true
        | Flo_obs.Event.Timeout, _ ->
          step "disk.timeout" 0.;
          r.faulty <- true
        | Flo_obs.Event.Failover, _ ->
          step "disk.failover" lat;
          r.service <- r.service +. lat;
          r.faulty <- true
        | Flo_obs.Event.Prefetch, _ ->
          (* readahead transfer shares are charged after the disk phase *)
          flush_service r;
          step "l2.prefetch" prefetch_charge_us;
          r.cost <- r.cost +. prefetch_charge_us
        | ( ( Flo_obs.Event.Access | Flo_obs.Event.Evict | Flo_obs.Event.Demote
            | Flo_obs.Event.Other _ ),
            _ )
        | (Flo_obs.Event.Hit | Flo_obs.Event.Miss), Flo_obs.Event.Disk ->
          ()))
  in
  let flush () =
    (* finalize still-open tail requests in thread order — Hashtbl order is
       seed-dependent, replay order is not *)
    Hashtbl.fold (fun thread r acc -> (thread, r) :: acc) open_reqs []
    |> List.sort compare
    |> List.iter (fun (_, r) -> finalize r);
    Hashtbl.reset open_reqs
  in
  ({ Flo_obs.Sink.emit = feed; flush }, buckets)

(* align captured buckets with {!classes_of_histogram}'s nonzero-bucket
   order, so [profiles.(i)] describes [classes.(i)] *)
let profiles_of_buckets h buckets =
  let counts = Flo_obs.Histogram.counts h in
  let acc = ref [] in
  Array.iteri (fun i n -> if n > 0 then acc := buckets.(i) :: !acc) counts;
  Array.of_list (List.rev !acc)

let compile ?(sample = 1) ?(faults = Flo_faults.Fault_plan.empty) ?(profile = false)
    ~config ~mode app =
  let layouts =
    match mode with
    | Default -> Experiment.default_layouts app
    | Inter -> Experiment.inter_layouts config app
  in
  let registry = Flo_obs.Metrics.create () in
  (* a fresh injector per compilation: its per-node PRNG substreams are a
     pure function of the plan's seed, so kernels stay deterministic no
     matter how many are compiled or in which order.  An empty plan skips
     the hook entirely — byte-identical to the fault-free path. *)
  let injector =
    if Flo_faults.Fault_plan.is_empty faults then None
    else
      Some
        (Flo_faults.Injector.create
           ~storage_nodes:config.Config.topology.Flo_storage.Topology.storage_nodes
           faults)
  in
  (* the untraced path passes no sink at all: byte-identical to before the
     tracing layer existed, and the hierarchy skips event construction *)
  let collector =
    if not profile then None
    else begin
      let shape = Flo_obs.Histogram.create () in
      let prefetch_charge_us =
        0.2 *. config.Config.disk_params.Flo_storage.Disk.transfer_us
      in
      let sink, buckets =
        profile_collector ~costs:config.Config.costs ~prefetch_charge_us ~shape
      in
      Some (sink, buckets, shape)
    end
  in
  let sink = Option.map (fun (s, _, _) -> s) collector in
  let r = Run.run ?faults:injector ?sink ~sample ~metrics:registry ~config ~layouts app in
  let errors_per_job, timeouts_per_job =
    match injector with
    | None -> (0, 0)
    | Some inj ->
      let c = Flo_faults.Injector.counts inj in
      (c.Flo_faults.Injector.faults, c.Flo_faults.Injector.timeouts)
  in
  let h = Flo_obs.Metrics.find_histogram registry "request_latency_us" in
  let classes = match h with Some h -> classes_of_histogram h | None -> [||] in
  let demand_us_per_job = match h with Some h -> Flo_obs.Histogram.sum h | None -> 0. in
  let profiles =
    match (collector, h) with
    | Some (_, buckets, shape), Some h when Flo_obs.Histogram.same_shape shape h ->
      profiles_of_buckets h buckets
    | _ -> [||]
  in
  {
    app = app.App.name;
    mode;
    requests_per_job = r.Run.block_requests;
    accesses_per_job = r.Run.element_accesses;
    demand_us_per_job;
    elapsed_us_per_job = r.Run.elapsed_us;
    errors_per_job;
    timeouts_per_job;
    classes;
    profiles;
  }

(* Apportion [requests] across the latency classes by largest remainder —
   deterministic (no draws), exact (counts sum to [requests]), and faithful
   to the distribution to within one request per class. *)
let apportion t ~requests =
  let k = Array.length t.classes in
  if requests <= 0 || k = 0 then [||]
  else begin
    let counts = Array.make k 0 in
    let rems = Array.make k (0., 0) in
    let assigned = ref 0 in
    Array.iteri
      (fun i c ->
        let exact = c.weight *. float_of_int requests in
        let base = int_of_float exact in
        counts.(i) <- base;
        assigned := !assigned + base;
        rems.(i) <- (exact -. float_of_int base, i))
      t.classes;
    (* hand the leftover requests to the largest fractional remainders;
       ties broken by class index so the result is order-stable *)
    Array.sort
      (fun (ra, ia) (rb, ib) -> if ra = rb then compare ia ib else compare rb ra)
      rems;
    let leftover = requests - !assigned in
    for j = 0 to leftover - 1 do
      let _, i = rems.(j mod k) in
      counts.(i) <- counts.(i) + 1
    done;
    counts
  end
