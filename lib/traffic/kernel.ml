open Flo_engine
open Flo_workloads

(* A service kernel is the batched-event compilation of one (app, layout)
   pair: one metrics-attached closed-loop run of the existing simulator is
   distilled into (requests per job, service demand per job, a compact
   per-request latency distribution).  The open-loop engine then models a
   whole job in O(latency classes) histogram updates instead of walking
   every element through the cache hierarchy — this is where the >= 10x
   modeled-requests-per-second over the per-element simulate loop comes
   from.  Compilation is deterministic (Run.run is), so kernels are
   identical on every machine and at every jobs setting. *)

type mode = Default | Inter

let mode_to_string = function Default -> "default" | Inter -> "inter"

type cls = { latency_us : float; weight : float }

type t = {
  app : string;
  mode : mode;
  requests_per_job : int;  (** block requests one run of the app issues *)
  accesses_per_job : int;  (** element accesses; layout-invariant per app *)
  demand_us_per_job : float;  (** summed per-request modeled service time *)
  elapsed_us_per_job : float;  (** modeled makespan of one run *)
  errors_per_job : int;  (** failed disk-read attempts one run suffers *)
  classes : cls array;  (** per-request latency distribution; weights sum to 1 *)
}

let classes_of_histogram h =
  let counts = Flo_obs.Histogram.counts h in
  let bounds = Flo_obs.Histogram.bounds h in
  let total = Flo_obs.Histogram.count h in
  if total = 0 then [||]
  else begin
    let lo = Flo_obs.Histogram.min_value h and hi = Flo_obs.Histogram.max_value h in
    let acc = ref [] in
    Array.iteri
      (fun i n ->
        if n > 0 then begin
          (* same clamp as Histogram.percentile: a bucket's representative
             latency is its upper edge bounded by the observed extremes *)
          let latency_us = Float.max lo (Float.min bounds.(i) hi) in
          acc := { latency_us; weight = float_of_int n /. float_of_int total } :: !acc
        end)
      counts;
    Array.of_list (List.rev !acc)
  end

let compile ?(sample = 1) ?(faults = Flo_faults.Fault_plan.empty) ~config ~mode app =
  let layouts =
    match mode with
    | Default -> Experiment.default_layouts app
    | Inter -> Experiment.inter_layouts config app
  in
  let registry = Flo_obs.Metrics.create () in
  (* a fresh injector per compilation: its per-node PRNG substreams are a
     pure function of the plan's seed, so kernels stay deterministic no
     matter how many are compiled or in which order.  An empty plan skips
     the hook entirely — byte-identical to the fault-free path. *)
  let injector =
    if Flo_faults.Fault_plan.is_empty faults then None
    else
      Some
        (Flo_faults.Injector.create
           ~storage_nodes:config.Config.topology.Flo_storage.Topology.storage_nodes
           faults)
  in
  let r = Run.run ?faults:injector ~sample ~metrics:registry ~config ~layouts app in
  let errors_per_job =
    match injector with
    | None -> 0
    | Some inj -> (Flo_faults.Injector.counts inj).Flo_faults.Injector.faults
  in
  let h = Flo_obs.Metrics.find_histogram registry "request_latency_us" in
  let classes = match h with Some h -> classes_of_histogram h | None -> [||] in
  let demand_us_per_job = match h with Some h -> Flo_obs.Histogram.sum h | None -> 0. in
  {
    app = app.App.name;
    mode;
    requests_per_job = r.Run.block_requests;
    accesses_per_job = r.Run.element_accesses;
    demand_us_per_job;
    elapsed_us_per_job = r.Run.elapsed_us;
    errors_per_job;
    classes;
  }

(* Apportion [requests] across the latency classes by largest remainder —
   deterministic (no draws), exact (counts sum to [requests]), and faithful
   to the distribution to within one request per class. *)
let apportion t ~requests =
  let k = Array.length t.classes in
  if requests <= 0 || k = 0 then [||]
  else begin
    let counts = Array.make k 0 in
    let rems = Array.make k (0., 0) in
    let assigned = ref 0 in
    Array.iteri
      (fun i c ->
        let exact = c.weight *. float_of_int requests in
        let base = int_of_float exact in
        counts.(i) <- base;
        assigned := !assigned + base;
        rems.(i) <- (exact -. float_of_int base, i))
      t.classes;
    (* hand the leftover requests to the largest fractional remainders;
       ties broken by class index so the result is order-stable *)
    Array.sort
      (fun (ra, ia) (rb, ib) -> if ra = rb then compare ia ib else compare rb ra)
      rems;
    let leftover = requests - !assigned in
    for j = 0 to leftover - 1 do
      let _, i = rems.(j mod k) in
      counts.(i) <- counts.(i) + 1
    done;
    counts
  end
