(** Seeded open-loop arrival processes.

    Every draw comes from the {!Flo_faults.Prng} stream the caller passes
    in, so an arrival timeline is a pure function of (seed, process, rate,
    duration) — the traffic engine gives each tenant its own substream and
    replays exactly at any [--jobs] value. *)

type process =
  | Poisson  (** i.i.d. exponential inter-arrivals *)
  | Bursty of { on_s : float; off_s : float }
      (** on/off modulated Poisson: exponential sojourns with the given
          mean on/off periods (seconds); arrivals only while on, with the
          on-rate scaled so the long-run mean rate is preserved. *)

val validate : process -> (unit, string) result

val exponential : Flo_faults.Prng.t -> rate:float -> float
(** One exponential inter-arrival draw with the given rate (per second).
    @raise Invalid_argument if [rate <= 0]. *)

val iter :
  Flo_faults.Prng.t -> process:process -> rate:float -> duration_s:float ->
  (float -> unit) -> unit
(** Apply the callback to each arrival time in [[0, duration_s)], in
    order.  @raise Invalid_argument on non-positive rate or negative
    duration. *)

val count :
  Flo_faults.Prng.t -> process:process -> rate:float -> duration_s:float -> int
(** Number of arrivals in the window. *)
