(** Batched service kernels: one (application, layout) pair compiled into a
    compact per-request model by a single run of the closed-loop simulator.

    The open-loop engine replays a kernel per arriving job in O(latency
    classes) work, so a run models hundreds of millions of block requests
    without touching the cache hierarchy per element.  Compilation is
    deterministic — same config, same kernel, on every machine. *)

type mode = Default | Inter

val mode_to_string : mode -> string

type cls = { latency_us : float; weight : float }

type step = { step_name : string; step_us : float }
(** One charged stage of a request's modeled cost — ["l1.miss"],
    ["disk.retry"], … — in causal order; durations sum to the request's
    reconstructed latency. *)

type profile = {
  rep_latency_us : float;
      (** the representative (max-latency, first on ties) request of the
          class, reconstructed with the hierarchy's exact cost arithmetic *)
  rep_steps : step list;  (** that request's breakdown, causal order *)
  faulty : int;  (** requests of this class that hit the fault path *)
}

type t = {
  app : string;
  mode : mode;
  requests_per_job : int;  (** block requests one execution of the app issues *)
  accesses_per_job : int;
      (** element accesses one execution performs — a pure function of the
          app, identical under every layout, so it is the layout-fair
          denominator for error rates *)
  demand_us_per_job : float;  (** summed per-request modeled service time *)
  elapsed_us_per_job : float;  (** modeled makespan of one execution *)
  errors_per_job : int;
      (** failed disk-read attempts one execution suffers under the
          compilation's fault plan; 0 without one *)
  timeouts_per_job : int;
      (** requests whose retry budget ran out under the fault plan; 0
          without one.  Together with [errors_per_job], the health signal
          the overload subsystem's circuit breakers watch. *)
  classes : cls array;
      (** per-request latency distribution (weights sum to 1); empty only
          when the run issued no block requests *)
  profiles : profile option array;
      (** per-class representative breakdowns, index-aligned with
          [classes]; [[||]] when compiled without [~profile], so the traced
          and untraced kernels differ only in this observational field *)
}

val compile :
  ?sample:int -> ?faults:Flo_faults.Fault_plan.t -> ?profile:bool ->
  config:Flo_engine.Config.t -> mode:mode -> Flo_workloads.App.t -> t
(** One metrics-attached [Run.run] under the chosen layouts; [sample]
    forwards the simulator's profile-mode sampling factor.  A non-empty
    [faults] plan compiles a fresh seeded injector for the run: retry and
    backoff latencies land in the latency classes (they are charged to the
    modeled clocks) and the failed-read count lands in [errors_per_job] —
    an empty plan is byte-identical to compiling without one.
    [profile:true] (default false) additionally attaches an event collector
    that distills per-class representative breakdowns into [profiles] for
    the tracing layer; it observes the run without perturbing any modeled
    quantity, and the default leaves the run sink-free — provably
    zero-overhead when tracing is off. *)

val apportion : t -> requests:int -> int array
(** Split [requests] across [classes] by largest remainder: deterministic,
    sums exactly to [requests], one entry per class ([[||]] when there are
    no classes or no requests). *)
