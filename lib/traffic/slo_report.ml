open Flo_engine
module Slo = Flo_obs.Slo

(* Deterministic rendering of Slo_eval results: no wall-clock, no
   machine-dependent fields, so whole reports diff clean across --jobs. *)

let fx v =
  if v = infinity then "inf"
  else if v = neg_infinity then "-inf"
  else Printf.sprintf "%.2f" v

let pct v =
  if v = infinity then "inf" else Printf.sprintf "%.1f%%" (100. *. v)

let verdict_cells scope (v : Slo.verdict) =
  [
    scope;
    Printf.sprintf "%d/%d" v.Slo.bad_windows v.Slo.windows;
    pct v.Slo.compliance;
    fx v.Slo.burn_rate;
    pct v.Slo.budget_remaining;
    string_of_int v.Slo.fast_pages;
    string_of_int v.Slo.slow_tickets;
    (if v.Slo.compliant then "ok" else "VIOLATED");
  ]

let header =
  [ "scope"; "bad win"; "compliance"; "burn"; "budget left"; "pages"; "tickets";
    "verdict" ]

let worst_tenants ?(max_rows = 8) (e : Slo_eval.t) =
  let rows = Array.to_list e.Slo_eval.tenant_rows in
  let key (r : Slo_eval.row) =
    (* order by burn rate descending, ties by tenant id ascending *)
    match r.Slo_eval.scope with
    | Slo_eval.Tenant t -> (-.r.Slo_eval.verdict.Slo.burn_rate, t)
    | _ -> (0., 0)
  in
  let sorted = List.sort (fun a b -> compare (key a) (key b)) rows in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take (max 0 max_rows) sorted

let summary ?max_rows (r : Engine.result) (e : Slo_eval.t) =
  let p = r.Engine.params in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "slo: spec=%s mix=%s tenants=%d seed=%d windows=%d window=%.3gs faults=%s\n\n"
       (Slo.to_string e.Slo_eval.spec)
       (Traffic_report.mix_names p) p.Engine.tenants p.Engine.seed
       p.Engine.windows
       (p.Engine.duration_s /. float_of_int p.Engine.windows)
       (if Flo_faults.Fault_plan.is_empty p.Engine.faults then "none"
        else Flo_faults.Fault_plan.to_string p.Engine.faults));
  (* named only when the subsystem ran: overload-off reports stay
     byte-identical.  Under overload control the tables below score the
     accepted cohort; the shed volume is in the traffic report. *)
  (match r.Engine.overload with
  | None -> ()
  | Some ol ->
    Buffer.add_string b
      (Printf.sprintf "overload: %s shed=%d/%d admitted_requests=%d\n\n"
         (Overload.describe ol.Engine.ol_params)
         ol.Engine.ol_shed_requests ol.Engine.ol_offered_requests
         ol.Engine.ol_admitted_requests));
  Buffer.add_string b "== per-tenant error budget (worst tenants by burn rate) ==\n";
  Buffer.add_string b
    (Report.table ~header
       (List.map
          (fun (row : Slo_eval.row) ->
            verdict_cells (Slo_eval.scope_to_string row.Slo_eval.scope)
              row.Slo_eval.verdict)
          (worst_tenants ?max_rows e)));
  Buffer.add_string b "\n\n== cohorts and fleet ==\n";
  Buffer.add_string b
    (Report.table ~header
       (List.map
          (fun (row : Slo_eval.row) ->
            verdict_cells (Slo_eval.scope_to_string row.Slo_eval.scope)
              row.Slo_eval.verdict)
          (e.Slo_eval.cohort_rows @ [ e.Slo_eval.fleet ])));
  Buffer.add_string b "\n";
  (* the symptom→cause link: a burning fleet p99 names concrete traces *)
  if Flo_obs.Histogram.has_exemplars r.Engine.agg_hist then
    Buffer.add_string b
      (Printf.sprintf "fleet p99 exemplar traces: %s (resolve with `flopt trace`)\n"
         (String.concat ","
            (List.map
               (fun (x : Flo_obs.Histogram.exemplar) ->
                 Flo_obs.Trace.id_to_string x.Flo_obs.Histogram.trace_id)
               (Flo_obs.Histogram.exemplars_at r.Engine.agg_hist ~p:0.99))));
  Buffer.contents b

let verdict_line (r : Engine.result) (e : Slo_eval.t) =
  let p = r.Engine.params in
  let v = e.Slo_eval.fleet.Slo_eval.verdict in
  Printf.sprintf
    "slo %s mix=%s tenants=%d seed=%d windows=%d: fleet burn=%s budget_left=%s \
     compliance=%s pages=%d tickets=%d %s"
    (Slo.to_string e.Slo_eval.spec)
    (Traffic_report.mix_names p) p.Engine.tenants p.Engine.seed p.Engine.windows
    (fx v.Slo.burn_rate) (pct v.Slo.budget_remaining) (pct v.Slo.compliance)
    v.Slo.fast_pages v.Slo.slow_tickets
    (if v.Slo.compliant then "OK" else "VIOLATED")

let print ?max_rows r e =
  print_string (summary ?max_rows r e);
  print_endline (verdict_line r e)
