module Trace = Flo_obs.Trace

(* Sampling decisions replay the engine's exact batching: the tracer walks
   the same (window, rank, class) apportioned counts in the same order as
   Engine.replay_tenant, numbering requests 0.. per tenant, and never touches
   the histogram counts — it only *observes* the replay and attaches
   exemplars.  Determinism falls out of the walk being a pure function of
   (params, plan): no draws, no wall clock, no shard interleaving. *)

type params = {
  sample_rate : int;
  breach_us : float;
  exemplar_cap : int;
}

let default = { sample_rate = 65536; breach_us = 1e6; exemplar_cap = 2 }

let validate t =
  if t.sample_rate < 1 then Error "trace sample-rate must be positive"
  else if not (t.breach_us > 0.) then Error "trace breach threshold must be positive"
  else if t.exemplar_cap < 1 then Error "trace exemplar cap must be positive"
  else Ok ()

(* one (window, rank, class) group of a tenant's replay *)
type group = {
  g_window : int;
  g_rank : int;
  g_cls : int;
  g_count : int;
  g_first_seq : int;
  g_latency_us : float;  (** the exact float the replay recorded *)
  g_class_us : float;  (** uncongested class latency *)
  g_profile : Kernel.profile option;
}

let groups_of ~optimized ~multipliers ~kernels ~window_jobs =
  let seq = ref 0 in
  let acc = ref [] in
  Array.iteri
    (fun w rank_jobs ->
      let multiplier = multipliers.(w) in
      Array.iteri
        (fun r j ->
          if j > 0 then begin
            let kd, ki = kernels.(r) in
            let k = if optimized then ki else kd in
            let n = j * k.Kernel.requests_per_job in
            let counts = Kernel.apportion k ~requests:n in
            Array.iteri
              (fun i cnt ->
                if cnt > 0 then begin
                  let class_us = k.Kernel.classes.(i).Kernel.latency_us in
                  acc :=
                    {
                      g_window = w;
                      g_rank = r;
                      g_cls = i;
                      g_count = cnt;
                      g_first_seq = !seq;
                      (* the same expression replay_tenant feeds add_many,
                         so exemplar values match the bucketed ones exactly *)
                      g_latency_us = class_us *. multiplier;
                      g_class_us = class_us;
                      g_profile =
                        (if i < Array.length k.Kernel.profiles then
                           k.Kernel.profiles.(i)
                         else None);
                    }
                    :: !acc;
                  seq := !seq + cnt
                end)
              counts
          end)
        rank_jobs)
    window_jobs;
  List.rev !acc

let has_step name (p : Kernel.profile) =
  List.exists (fun s -> s.Kernel.step_name = name) p.Kernel.rep_steps

let outcome_of = function
  | None -> "ok"
  | Some p ->
    if has_step "disk.timeout" p then "timeout"
    else if p.Kernel.faulty > 0 then "fault"
    else "ok"

(* arrival → queue/congestion → service (→ per-layer and disk steps), all on
   the modeled clock: the root starts at its window's origin and lasts the
   congested class latency; the uncongested service nests after the
   congestion share, its children the representative breakdown rescaled to
   the class edge *)
let span_tree ~win_len_us g =
  let t0 = float_of_int g.g_window *. win_len_us in
  let cong = g.g_latency_us -. g.g_class_us in
  let service_start = t0 +. cong in
  let steps =
    match g.g_profile with
    | None -> []
    | Some p ->
      let f =
        if p.Kernel.rep_latency_us > 0. then g.g_class_us /. p.Kernel.rep_latency_us
        else 0.
      in
      let cursor = ref service_start in
      List.map
        (fun (s : Kernel.step) ->
          let dur = s.Kernel.step_us *. f in
          let sp =
            Trace.span ~name:s.Kernel.step_name ~start_us:!cursor ~dur_us:dur ()
          in
          cursor := !cursor +. dur;
          sp)
        p.Kernel.rep_steps
  in
  let service =
    Trace.span ~children:steps ~name:"service" ~start_us:service_start
      ~dur_us:g.g_class_us ()
  in
  let children =
    if cong > 0. then
      [ Trace.span ~name:"queue.congestion" ~start_us:t0 ~dur_us:cong (); service ]
    else [ service ]
  in
  Trace.span ~children ~name:"request" ~start_us:t0 ~dur_us:g.g_latency_us ()

(* head/tail sampling over a prepared group list — shared by the plain and
   overload walks, which differ only in how groups are enumerated *)
let emit_groups ~t ~seed ~stream ~tenant ~shard ~win_len_us ~windows ~app_of ~hist
    groups =
  (* the max-latency group per window, first on ties — replay order is
     deterministic, so so is this *)
  let window_max = Array.make windows (-1) in
  let window_best = Array.make windows neg_infinity in
  List.iteri
    (fun gi g ->
      if g.g_latency_us > window_best.(g.g_window) then begin
        window_best.(g.g_window) <- g.g_latency_us;
        window_max.(g.g_window) <- gi
      end)
    groups;
  let traces_rev = ref [] in
  let emit ~trace_id ~count ~reasons g =
    let trace =
      Trace.make ~trace_id ~tenant ~app:(app_of g)
        ~window:g.g_window ~shard ~outcome:(outcome_of g.g_profile)
        ~latency_us:g.g_latency_us ~count ~reasons ~root:(span_tree ~win_len_us g)
    in
    Flo_obs.Histogram.add_exemplar ~cap:t.exemplar_cap hist ~value:g.g_latency_us
      ~trace_id;
    traces_rev := trace :: !traces_rev
  in
  List.iteri
    (fun gi g ->
      let tail_reasons =
        (match g.g_profile with
        | Some p when p.Kernel.faulty > 0 -> [ Trace.Fault_path ]
        | _ -> [])
        @ (if g.g_latency_us > t.breach_us then [ Trace.Breach ] else [])
        @ if window_max.(g.g_window) = gi then [ Trace.Window_max ] else []
      in
      if tail_reasons <> [] then
        emit
          ~trace_id:(Trace.mint_id ~seed ~stream ((2 * g.g_first_seq) + 1))
          ~count:g.g_count ~reasons:tail_reasons g;
      (* head samples: replay sequence numbers divisible by the rate *)
      let first =
        (g.g_first_seq + t.sample_rate - 1) / t.sample_rate * t.sample_rate
      in
      let q = ref first in
      while !q < g.g_first_seq + g.g_count do
        emit
          ~trace_id:(Trace.mint_id ~seed ~stream (2 * !q))
          ~count:1 ~reasons:[ Trace.Head ] g;
        q := !q + t.sample_rate
      done)
    groups;
  List.rev !traces_rev

let trace_tenant ~t ~seed ~stream ~tenant ~shard ~optimized ~win_len_us ~multipliers
    ~kernels ~window_jobs ~hist =
  let groups = groups_of ~optimized ~multipliers ~kernels ~window_jobs in
  let app_of g =
    let kd, ki = kernels.(g.g_rank) in
    (if optimized then ki else kd).Kernel.app
  in
  emit_groups ~t ~seed ~stream ~tenant ~shard ~win_len_us
    ~windows:(Array.length multipliers) ~app_of ~hist groups

(* The overload walk enumerates a tenant's *admitted segments* instead of
   raw (window, rank) job counts, each under its serving multiplier and
   variant kernel.  Sequence numbering runs over the *offered* request
   space: a (window, rank)'s served segments consume sequence numbers
   first, then its shed requests — so head ids (2*seq) and group ids
   (2*first_seq + 1) can never collide between served and shed traces. *)
let overload_groups ~optimized ~kernels ~ff_kernels ~bw_kernels ~segs ~shed =
  let kernel_of variant r =
    let pick arr =
      let kd, ki = arr.(r) in
      if optimized then ki else kd
    in
    match (variant : Overload.variant) with
    | Overload.Normal -> pick kernels
    | Overload.Fail_fast_serve ->
      (match ff_kernels with Some a -> pick a | None -> pick kernels)
    | Overload.Browned ->
      (match bw_kernels with Some a -> pick a | None -> pick kernels)
  in
  let seq = ref 0 in
  let acc = ref [] in
  let shed_acc = ref [] in
  Array.iteri
    (fun w rrow ->
      Array.iteri
        (fun r segl ->
          List.iter
            (fun (sg : Overload.seg) ->
              let k = kernel_of sg.Overload.sg_variant r in
              let n = sg.Overload.sg_jobs * k.Kernel.requests_per_job in
              let counts = Kernel.apportion k ~requests:n in
              Array.iteri
                (fun i cnt ->
                  if cnt > 0 then begin
                    let class_us = k.Kernel.classes.(i).Kernel.latency_us in
                    acc :=
                      {
                        g_window = w;
                        g_rank = r;
                        g_cls = i;
                        g_count = cnt;
                        g_first_seq = !seq;
                        g_latency_us = class_us *. sg.Overload.sg_mult;
                        g_class_us = class_us;
                        g_profile =
                          (if i < Array.length k.Kernel.profiles then
                             k.Kernel.profiles.(i)
                           else None);
                      }
                      :: !acc;
                    seq := !seq + cnt
                  end)
                counts)
            segl;
          let sj = shed.(w).(r) in
          if sj > 0 then begin
            let k = kernel_of Overload.Normal r in
            let n = sj * k.Kernel.requests_per_job in
            if n > 0 then begin
              shed_acc := (w, r, n, !seq) :: !shed_acc;
              seq := !seq + n
            end
          end)
        rrow)
    segs;
  (List.rev !acc, List.rev !shed_acc)

let trace_tenant_overload ~t ~seed ~stream ~tenant ~shard ~optimized ~win_len_us
    ~kernels ~ff_kernels ~bw_kernels ~segs ~shed ~hist =
  let groups, shed_groups =
    overload_groups ~optimized ~kernels ~ff_kernels ~bw_kernels ~segs ~shed
  in
  let app_of g =
    let kd, ki = kernels.(g.g_rank) in
    (if optimized then ki else kd).Kernel.app
  in
  let served =
    emit_groups ~t ~seed ~stream ~tenant ~shard ~win_len_us
      ~windows:(Array.length segs) ~app_of ~hist groups
  in
  (* one group trace per shed (window, rank): a zero-duration
     [admission.shed] root at the window origin, standing for every request
     the controller rejected there.  No exemplar — shed requests never
     reach a histogram. *)
  let shed_traces =
    List.map
      (fun (w, r, n, first_seq) ->
        let kd, ki = kernels.(r) in
        let app = (if optimized then ki else kd).Kernel.app in
        Trace.make
          ~trace_id:(Trace.mint_id ~seed ~stream ((2 * first_seq) + 1))
          ~tenant ~app ~window:w ~shard ~outcome:"shed" ~latency_us:0. ~count:n
          ~reasons:[ Trace.Shed ]
          ~root:
            (Trace.span ~name:"admission.shed"
               ~start_us:(float_of_int w *. win_len_us) ~dur_us:0. ()))
      shed_groups
  in
  served @ shed_traces
