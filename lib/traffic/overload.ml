(* Overload-control decision machinery.  Everything here is pure: the
   engine feeds it per-(shard, window) job ledgers and it answers with
   exact integer keep/shed counts.  The admission controller, routing and
   breaker live in Engine's control loop — this module is the vocabulary
   (policies, params, segments) plus the apportioning arithmetic. *)

type policy = Fail_fast | Priority | Brownout

let policy_to_string = function
  | Fail_fast -> "fail-fast"
  | Priority -> "priority"
  | Brownout -> "brownout"

let policy_of_string = function
  | "fail-fast" -> Ok Fail_fast
  | "priority" -> Ok Priority
  | "brownout" -> Ok Brownout
  | s ->
    Error
      (Printf.sprintf
         "unknown shed policy %S (expected off, fail-fast, priority or brownout)" s)

type params = {
  shed : policy option;
  capacity : float;
  brownout_factor : int;
  breaker : Flo_faults.Breaker.spec option;
}

let default =
  { shed = Some Fail_fast; capacity = 1.0; brownout_factor = 8; breaker = None }

let validate p =
  if not (p.capacity > 0.) then
    Error (Printf.sprintf "overload capacity must be positive (got %g)" p.capacity)
  else if p.brownout_factor < 2 then
    Error
      (Printf.sprintf "overload brownout factor must be at least 2 (got %d)"
         p.brownout_factor)
  else if p.shed = None && p.breaker = None then
    Error "overload controls are all off (enable a shed policy or a breaker)"
  else
    match p.breaker with
    | None -> Ok ()
    | Some b -> Flo_faults.Breaker.validate b

let describe p =
  let cap =
    if p.capacity = infinity then "" else Printf.sprintf " capacity=%.12g" p.capacity
  in
  let shed =
    match p.shed with
    | None -> "policy=off"
    | Some pol -> Printf.sprintf "policy=%s" (policy_to_string pol)
  in
  let breaker =
    match p.breaker with
    | None -> ""
    | Some b -> Printf.sprintf " breaker=%s" (Flo_faults.Breaker.to_string b)
  in
  shed ^ (if p.shed = None then "" else cap) ^ breaker

(* Largest-remainder keep: same arithmetic as Kernel.apportion, but
   capped pointwise by [counts] — a class can never keep more jobs than it
   offered.  The leftover loop skips saturated classes; [keep < total]
   guarantees spare capacity exists, so it terminates. *)
let split ~counts ~keep =
  let n = Array.length counts in
  let total = Array.fold_left ( + ) 0 counts in
  if keep <= 0 || total = 0 || n = 0 then Array.make n 0
  else if keep >= total then Array.copy counts
  else begin
    let f = float_of_int keep /. float_of_int total in
    let kept = Array.make n 0 in
    let rems = Array.make n (0., 0) in
    let assigned = ref 0 in
    Array.iteri
      (fun i c ->
        let exact = f *. float_of_int c in
        let base = min c (int_of_float exact) in
        kept.(i) <- base;
        assigned := !assigned + base;
        rems.(i) <- (exact -. float_of_int base, i))
      counts;
    Array.sort
      (fun (ra, ia) (rb, ib) -> if ra = rb then compare ia ib else compare rb ra)
      rems;
    let leftover = ref (keep - !assigned) in
    let j = ref 0 in
    while !leftover > 0 do
      let _, i = rems.(!j mod n) in
      if kept.(i) < counts.(i) then begin
        kept.(i) <- kept.(i) + 1;
        decr leftover
      end;
      incr j
    done;
    kept
  end

type variant = Normal | Fail_fast_serve | Browned

let variant_to_string = function
  | Normal -> "normal"
  | Fail_fast_serve -> "fail-fast"
  | Browned -> "browned"

type seg = { sg_variant : variant; sg_jobs : int; sg_mult : float; sg_shard : int }
