(* SLO evaluation over Engine.result: derive per-window {total; breaching}
   counts from the engine's per-(tenant, window, rank) job ledger and the
   compiled kernels, then hand them to Flo_obs.Slo.  Nothing here touches a
   clock or a PRNG — the verdicts inherit the engine's replay-exactness. *)

module Slo = Flo_obs.Slo

type scope =
  | Tenant of int
  | Cohort of bool
  | Fleet

let scope_to_string = function
  | Tenant t -> Printf.sprintf "tenant %d" t
  | Cohort true -> "cohort optimized"
  | Cohort false -> "cohort default"
  | Fleet -> "fleet"

type row = { scope : scope; verdict : Slo.verdict }

type t = {
  spec : Slo.spec;
  windows : int;
  tenant_rows : row array;
  cohort_rows : row list;
  fleet : row;
}

(* requests of kernel [k] in one window that violate a latency threshold
   under congestion [multiplier]: the apportioned per-class counts are
   exactly what the replay added to the histograms, so the SLO sees the
   same distribution the percentiles came from *)
let breaching_of_kernel (k : Kernel.t) ~jobs ~multiplier ~threshold_us =
  let requests = jobs * k.Kernel.requests_per_job in
  if requests = 0 then 0
  else begin
    let counts = Kernel.apportion k ~requests in
    let breaching = ref 0 in
    Array.iteri
      (fun i cnt ->
        if cnt > 0 && k.Kernel.classes.(i).Kernel.latency_us *. multiplier > threshold_us
        then breaching := !breaching + cnt)
      counts;
    !breaching
  end

(* Under overload control the SLO scores the *accepted* cohort: the walk
   follows the admission ledger's segments — each slice under its serving
   multiplier and kernel variant — and shed requests never enter [total]
   (rejecting a request is not the same failure as serving it late; the
   shed volume is reported separately by the traffic/overload reports). *)
let samples_of_tenant_overload spec (r : Engine.result)
    (ol : Engine.overload_stats) tenant =
  let s = r.Engine.tenants_stats.(tenant) in
  let kernel_of variant rank =
    let pick arr =
      let kd, ki = arr.(rank) in
      if s.Engine.optimized then ki else kd
    in
    match (variant : Overload.variant) with
    | Overload.Normal -> pick r.Engine.kernels
    | Overload.Fail_fast_serve ->
      (match ol.Engine.ol_ff_kernels with
      | Some a -> pick a
      | None -> pick r.Engine.kernels)
    | Overload.Browned ->
      (match ol.Engine.ol_bw_kernels with
      | Some a -> pick a
      | None -> pick r.Engine.kernels)
  in
  Array.map
    (fun rank_segs ->
      let total = ref 0 in
      let breaching = ref 0 in
      Array.iteri
        (fun _rank segs ->
          List.iter
            (fun (sg : Overload.seg) ->
              let k = kernel_of sg.Overload.sg_variant _rank in
              let jobs = sg.Overload.sg_jobs in
              match spec.Slo.objective with
              | Slo.Latency { threshold_us; _ } ->
                total := !total + (jobs * k.Kernel.requests_per_job);
                breaching :=
                  !breaching
                  + breaching_of_kernel k ~jobs ~multiplier:sg.Overload.sg_mult
                      ~threshold_us
              | Slo.Error_rate _ ->
                total := !total + (jobs * k.Kernel.accesses_per_job);
                breaching := !breaching + (jobs * k.Kernel.errors_per_job))
            segs)
        rank_segs;
      { Slo.total = !total; breaching = min !breaching !total })
    ol.Engine.ol_tenant_segs.(tenant)

let samples_of_tenant spec (r : Engine.result) tenant =
  match r.Engine.overload with
  | Some ol -> samples_of_tenant_overload spec r ol tenant
  | None ->
  let s = r.Engine.tenants_stats.(tenant) in
  let shard = r.Engine.shards.(s.Engine.shard) in
  let kernels = r.Engine.kernels in
  Array.mapi
    (fun w rank_jobs ->
      let multiplier = shard.Engine.window_multipliers.(w) in
      let total = ref 0 in
      let breaching = ref 0 in
      Array.iteri
        (fun rank jobs ->
          if jobs > 0 then begin
            let kd, ki = kernels.(rank) in
            let k = if s.Engine.optimized then ki else kd in
            match spec.Slo.objective with
            | Slo.Latency { threshold_us; _ } ->
              total := !total + (jobs * k.Kernel.requests_per_job);
              breaching :=
                !breaching + breaching_of_kernel k ~jobs ~multiplier ~threshold_us
            | Slo.Error_rate _ ->
              (* error rate is per element access — the layout-invariant
                 request count — so a layout that avoids disk reads avoids
                 their failures too.  A retried request can fail more than
                 once, so cap at the access count below. *)
              total := !total + (jobs * k.Kernel.accesses_per_job);
              breaching := !breaching + (jobs * k.Kernel.errors_per_job)
          end)
        rank_jobs;
      { Slo.total = !total; breaching = min !breaching !total })
    s.Engine.window_rank_jobs

let sum_samples windows per_tenant =
  let acc = Array.make windows { Slo.total = 0; breaching = 0 } in
  List.iter
    (Array.iteri (fun w (s : Slo.sample) ->
         acc.(w) <-
           { Slo.total = acc.(w).Slo.total + s.Slo.total;
             breaching = acc.(w).Slo.breaching + s.Slo.breaching }))
    per_tenant;
  acc

let evaluate ?fast_span ?slow_span ?metrics spec (r : Engine.result) =
  let windows = r.Engine.params.Engine.windows in
  let n = Array.length r.Engine.tenants_stats in
  let per_tenant = Array.init n (samples_of_tenant spec r) in
  let eval scope samples =
    { scope; verdict = Slo.evaluate ?fast_span ?slow_span spec samples }
  in
  let tenant_rows = Array.mapi (fun t s -> eval (Tenant t) s) per_tenant in
  let cohort optimized =
    let members =
      List.filter
        (fun t -> r.Engine.tenants_stats.(t).Engine.optimized = optimized)
        (List.init n Fun.id)
    in
    if members = [] then None
    else
      Some
        (eval (Cohort optimized)
           (sum_samples windows (List.map (fun t -> per_tenant.(t)) members)))
  in
  let cohort_rows = List.filter_map cohort [ false; true ] in
  let fleet = eval Fleet (sum_samples windows (Array.to_list per_tenant)) in
  (match metrics with
  | None -> ()
  | Some registry ->
    let publish row =
      let labels =
        match row.scope with
        | Tenant t -> [ ("scope", "tenant"); ("tenant", string_of_int t) ]
        | Cohort o ->
          [ ("scope", "cohort"); ("cohort", if o then "optimized" else "default") ]
        | Fleet -> [ ("scope", "fleet") ]
      in
      Slo.record row.verdict ~labels registry
    in
    Array.iter publish tenant_rows;
    List.iter publish cohort_rows;
    publish fleet);
  { spec; windows; tenant_rows; cohort_rows; fleet }
