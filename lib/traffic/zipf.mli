(** Zipfian popularity distribution over a ranked catalog.

    Rank [r] (0-based) is drawn with probability proportional to
    [1 / (r+1)^s] — the standard web/tenant popularity law.  The sampler
    is a pure function of the {!Flo_faults.Prng} stream it is handed, so
    traffic built on it is replay-exact. *)

type t

val make : s:float -> n:int -> t
(** Distribution over ranks [0 .. n-1] with exponent [s].
    @raise Invalid_argument if [n < 1] or [s <= 0]. *)

val support : t -> int
val exponent : t -> float

val pmf : t -> int -> float
(** Probability of rank [r].  @raise Invalid_argument out of range. *)

val sample : t -> Flo_faults.Prng.t -> int
(** One rank draw; advances the generator by exactly one variate. *)
