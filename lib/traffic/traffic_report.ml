open Flo_engine

(* Rendering for traffic-engine results.  Everything except {!wall_line} is
   a pure function of the result's modeled fields, so the printed report is
   byte-identical at every --jobs value — CI pins {!verdict_line} and diffs
   whole reports with the [wall] line stripped. *)

let mix_names (p : Engine.params) =
  String.concat "," (List.map (fun a -> a.Flo_workloads.App.name) p.Engine.mix)

let process_to_string = function
  | Arrivals.Poisson -> "poisson"
  | Arrivals.Bursty { on_s; off_s } ->
    Printf.sprintf "bursty(on=%.3gs,off=%.3gs)" on_s off_s

let opt_pct = function
  | None -> "n/a"
  | Some v -> Printf.sprintf "%+.1f%%" v

(* largest-count rank of a tenant, ties to the more popular (lower) rank *)
let dominant_rank rank_jobs =
  let best = ref 0 in
  Array.iteri (fun r j -> if j > rank_jobs.(!best) then best := r) rank_jobs;
  !best

let header_line (r : Engine.result) =
  let p = r.Engine.params in
  Printf.sprintf
    "traffic: mix=%s tenants=%d duration=%.3gs rate=%.3g/s zipf-s=%.3g \
     opt-share=%.3g noisy=%.3gx arrivals=%s seed=%d shards=%d"
    (mix_names p) p.Engine.tenants p.Engine.duration_s p.Engine.rate p.Engine.zipf_s
    p.Engine.opt_share p.Engine.noisy_boost
    (process_to_string p.Engine.process)
    p.Engine.seed (Array.length r.Engine.shards)

let tenant_rows ?(max_rows = 8) (r : Engine.result) =
  let p = r.Engine.params in
  let apps = Array.of_list p.Engine.mix in
  let by_requests =
    List.sort
      (fun (a : Engine.tenant_stats) b ->
        compare (b.Engine.requests, a.Engine.tenant) (a.Engine.requests, b.Engine.tenant))
      (Array.to_list r.Engine.tenants_stats)
  in
  let take =
    let rec go n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: go (n - 1) rest
    in
    go (max 0 max_rows) by_requests
  in
  List.map
    (fun (s : Engine.tenant_stats) ->
      let app =
        if s.Engine.jobs = 0 || Array.length s.Engine.rank_jobs = 0 then "-"
        else apps.(dominant_rank s.Engine.rank_jobs).Flo_workloads.App.name
      in
      [
        string_of_int s.Engine.tenant;
        string_of_int s.Engine.shard;
        (if s.Engine.optimized then "inter" else "default");
        app;
        string_of_int s.Engine.jobs;
        string_of_int s.Engine.requests;
        Report.f1 s.Engine.mean_us;
        Report.f1 s.Engine.p50_us;
        Report.f1 s.Engine.p99_us;
      ])
    take

let shard_rows (r : Engine.result) =
  Array.to_list
    (Array.map
       (fun (s : Engine.shard_stats) ->
         [
           string_of_int s.Engine.shard;
           string_of_int s.Engine.shard_tenants;
           string_of_int s.Engine.shard_jobs;
           string_of_int s.Engine.shard_requests;
           Report.f3 s.Engine.utilization;
           Report.f3 s.Engine.multiplier;
         ])
       r.Engine.shards)

(* one row per shard of the overload-control ledger; "-" when no breaker
   is armed on the shard *)
let overload_rows (ol : Engine.overload_stats) =
  Array.to_list
    (Array.mapi
       (fun s cells ->
         let sum f = Array.fold_left (fun a c -> a + f c) 0 cells in
         let offered = sum (fun c -> c.Engine.aw_offered_jobs) in
         let admitted = sum (fun c -> c.Engine.aw_admitted_jobs) in
         let browned = sum (fun c -> c.Engine.aw_browned_jobs) in
         let shed = sum (fun c -> c.Engine.aw_shed_jobs) in
         let routed_in = sum (fun c -> c.Engine.aw_routed_in_jobs) in
         let routed_out = sum (fun c -> c.Engine.aw_routed_out_jobs) in
         let suppressed = sum (fun c -> if c.Engine.aw_retry_suppressed then 1 else 0) in
         let open_w =
           sum (fun c ->
               match c.Engine.aw_breaker with
               | Some (Flo_faults.Breaker.Open _) -> 1
               | _ -> 0)
         in
         let final =
           match cells.(Array.length cells - 1).Engine.aw_breaker with
           | None -> "-"
           | Some st -> Flo_faults.Breaker.state_to_string st
         in
         [
           string_of_int s;
           string_of_int offered;
           string_of_int admitted;
           string_of_int browned;
           string_of_int shed;
           string_of_int routed_in;
           string_of_int routed_out;
           string_of_int suppressed;
           string_of_int open_w;
           final;
         ])
       ol.Engine.ol_admissions)

let overload_line (r : Engine.result) (ol : Engine.overload_stats) =
  Printf.sprintf
    "overload %s: offered=%d admitted=%d shed=%d (%.1f%%) browned_jobs=%d \
     failover_jobs=%d retry_suppressed_windows=%d goodput=%.0frps accepted_p99=%.1fus"
    (Overload.describe ol.Engine.ol_params)
    ol.Engine.ol_offered_requests ol.Engine.ol_admitted_requests
    ol.Engine.ol_shed_requests
    (100. *. ol.Engine.ol_shed_fraction)
    ol.Engine.ol_browned_jobs ol.Engine.ol_failover_jobs
    ol.Engine.ol_retry_suppressed_windows ol.Engine.ol_goodput_rps
    r.Engine.agg_p99_us

let verdict_line (r : Engine.result) =
  let p = r.Engine.params in
  Printf.sprintf
    "traffic %s tenants=%d seed=%d: requests=%d offered_rps=%.0f p50=%.1fus \
     p99=%.1fus fairness=%.3f noisy_p99=%s opt_p50_adv=%s"
    (mix_names p) p.Engine.tenants p.Engine.seed r.Engine.total_requests
    r.Engine.offered_rps r.Engine.agg_p50_us r.Engine.agg_p99_us r.Engine.fairness
    (opt_pct r.Engine.noisy_p99_delta_pct)
    (opt_pct r.Engine.opt_p50_advantage_pct)

let summary ?max_rows (r : Engine.result) =
  let b = Buffer.create 1024 in
  Buffer.add_string b (header_line r);
  Buffer.add_string b "\n\n";
  Buffer.add_string b "== per-tenant modeled latency (top tenants by requests) ==\n";
  Buffer.add_string b
    (Report.table
       ~header:
         [ "tenant"; "shard"; "layout"; "top app"; "jobs"; "requests"; "mean us";
           "p50 us"; "p99 us" ]
       (tenant_rows ?max_rows r));
  Buffer.add_string b "\n\n== per-shard (storage-node worker domains) ==\n";
  Buffer.add_string b
    (Report.table
       ~header:[ "shard"; "tenants"; "jobs"; "requests"; "utilization"; "multiplier" ]
       (shard_rows r));
  (* the overload section only exists when the subsystem ran, so
     overload-off reports are byte-identical to before it existed *)
  (match r.Engine.overload with
  | None -> ()
  | Some ol ->
    Buffer.add_string b
      (Printf.sprintf "\n\n== overload control (%s) ==\n"
         (Overload.describe ol.Engine.ol_params));
    Buffer.add_string b
      (Report.table
         ~header:
           [ "shard"; "offered"; "admitted"; "browned"; "shed"; "in"; "out";
             "retry-supp"; "open w"; "breaker" ]
         (overload_rows ol)));
  Buffer.add_string b "\n\n";
  Buffer.add_string b
    (Printf.sprintf
       "aggregate: %d jobs, %d modeled requests over %.3g modeled s (offered %.0f rps)\n"
       r.Engine.total_jobs r.Engine.total_requests r.Engine.params.Engine.duration_s
       r.Engine.offered_rps);
  Buffer.add_string b
    (Printf.sprintf "fairness (Jain, per-tenant mean latency): %.3f\n" r.Engine.fairness);
  Buffer.add_string b
    (Printf.sprintf "noisy-neighbor p99 delta (co-located vs others): %s\n"
       (opt_pct r.Engine.noisy_p99_delta_pct));
  Buffer.add_string b
    (Printf.sprintf "optimized-vs-default p50 advantage: %s\n"
       (opt_pct r.Engine.opt_p50_advantage_pct));
  (* only traced runs carry exemplars, so untraced reports are unchanged *)
  if Flo_obs.Histogram.has_exemplars r.Engine.agg_hist then
    Buffer.add_string b
      (Printf.sprintf "p99 exemplar traces: %s (resolve with `flopt trace`)\n"
         (String.concat ","
            (List.map
               (fun (e : Flo_obs.Histogram.exemplar) ->
                 Flo_obs.Trace.id_to_string e.Flo_obs.Histogram.trace_id)
               (Flo_obs.Histogram.exemplars_at r.Engine.agg_hist ~p:0.99))));
  Buffer.contents b

let wall_line (r : Engine.result) =
  Printf.sprintf "[wall] engine %.3f s, %.3g modeled requests/s" r.Engine.wall_s
    r.Engine.modeled_rps

let print ?max_rows (r : Engine.result) =
  print_string (summary ?max_rows r);
  print_endline (wall_line r);
  (match r.Engine.overload with
  | None -> ()
  | Some ol -> print_endline (overload_line r ol));
  print_endline (verdict_line r)
