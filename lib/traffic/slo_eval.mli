(** SLO evaluation over traffic-engine results.

    Turns one {!Engine.result} into per-window {!Flo_obs.Slo.sample} counts
    — per tenant, per layout cohort, and fleet-wide — and scores them
    against a spec with the multi-window / multi-burn-rate machinery.  All
    inputs are modeled quantities, so verdicts are byte-identical at every
    [--jobs] value and on every machine. *)

type scope =
  | Tenant of int
  | Cohort of bool  (** [true] = the optimized-layout cohort *)
  | Fleet

val scope_to_string : scope -> string
(** ["tenant 3"], ["cohort default"], ["cohort optimized"], ["fleet"]. *)

type row = { scope : scope; verdict : Flo_obs.Slo.verdict }

type t = {
  spec : Flo_obs.Slo.spec;
  windows : int;
  tenant_rows : row array;  (** indexed by tenant id *)
  cohort_rows : row list;  (** default first, then optimized; empty cohorts skipped *)
  fleet : row;
}

val samples_of_tenant : Flo_obs.Slo.spec -> Engine.result -> int -> Flo_obs.Slo.sample array
(** One sample per window for one tenant, derived from its per-(window,
    rank) job counts, the compiled kernels, and its shard's per-window
    congestion multipliers.  For a latency objective, a request breaches
    when its class latency times the window's multiplier exceeds the
    threshold (the same apportioned counts the replay histograms use); for
    an error objective, breaches are the kernel's failed-read attempts per
    job, capped at the window's request count. *)

val evaluate :
  ?fast_span:int -> ?slow_span:int -> ?metrics:Flo_obs.Metrics.t ->
  Flo_obs.Slo.spec -> Engine.result -> t
(** Score every tenant, both layout cohorts, and the fleet.  With
    [metrics], burn-rate and budget gauges plus page/ticket counters are
    published per scope (labels [scope]/[tenant]/[cohort]). *)
