(* Open-loop arrival processes.

   Poisson: i.i.d. exponential inter-arrival times at the given rate.
   Bursty: a two-state on/off modulated Poisson process (exponential
   sojourns in each state, arrivals only while on) whose on-rate is scaled
   so the long-run mean rate equals the requested one — burstiness changes
   the variance of the arrival counts, not their mean. *)

type process =
  | Poisson
  | Bursty of { on_s : float; off_s : float }

let validate = function
  | Poisson -> Ok ()
  | Bursty { on_s; off_s } ->
    if not (on_s > 0.) then Error "bursty: on period must be positive"
    else if not (off_s >= 0.) then Error "bursty: off period must be non-negative"
    else Ok ()

let exponential prng ~rate =
  if not (rate > 0.) then invalid_arg "Arrivals.exponential: rate must be positive";
  (* Prng.float is in [0, 1), so 1 - u is in (0, 1] and the log is finite *)
  -.log (1. -. Flo_faults.Prng.float prng) /. rate

let iter prng ~process ~rate ~duration_s f =
  if not (rate > 0.) then invalid_arg "Arrivals.iter: rate must be positive";
  if not (duration_s >= 0.) then invalid_arg "Arrivals.iter: negative duration";
  match process with
  | Poisson ->
    let t = ref (exponential prng ~rate) in
    while !t < duration_s do
      f !t;
      t := !t +. exponential prng ~rate
    done
  | Bursty { on_s; off_s } ->
    (* scale the on-rate so E[arrivals]/duration converges to [rate] *)
    let on_rate = rate *. ((on_s +. off_s) /. on_s) in
    let t = ref 0. in
    let on = ref true in
    while !t < duration_s do
      let sojourn = exponential prng ~rate:(1. /. (if !on then on_s else off_s)) in
      let stop = Float.min duration_s (!t +. sojourn) in
      if !on then begin
        let a = ref (!t +. exponential prng ~rate:on_rate) in
        while !a < stop do
          f !a;
          a := !a +. exponential prng ~rate:on_rate
        done
      end;
      t := stop;
      on := not !on
    done

let count prng ~process ~rate ~duration_s =
  let n = ref 0 in
  iter prng ~process ~rate ~duration_s (fun _ -> incr n);
  !n
