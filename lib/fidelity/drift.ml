(* Windowed layout drift detection: normalized deltas of workload signals
   against the baseline the current layouts were optimized for, folded
   through enter/exit hysteresis into a re-layout recommendation. *)

type signal = {
  miss_l1 : float;
  miss_l2 : float;
  cross_shared : int;
  sharing : int array array;
  fidelity_rel : float;
}

type reason =
  | Miss_rate_drift of { layer : string; baseline : float; current : float; rel : float }
  | Sharing_shift of { baseline : int; current : int; rel : float }
  | Matrix_shift of { rel : float }
  | Fidelity_degraded of { baseline : float; current : float; rel : float }

let f3 v = Printf.sprintf "%.3f" v

let reason_to_string = function
  | Miss_rate_drift { layer; baseline; current; rel } ->
    Printf.sprintf "miss-rate-drift layer=%s base=%s cur=%s rel=%s" layer
      (f3 baseline) (f3 current) (f3 rel)
  | Sharing_shift { baseline; current; rel } ->
    Printf.sprintf "sharing-shift base=%d cur=%d rel=%s" baseline current (f3 rel)
  | Matrix_shift { rel } -> Printf.sprintf "matrix-shift rel=%s" (f3 rel)
  | Fidelity_degraded { baseline; current; rel } ->
    Printf.sprintf "fidelity-degraded base=%s cur=%s rel=%s" (f3 baseline)
      (f3 current) (f3 rel)

let rel_of_reason = function
  | Miss_rate_drift { rel; _ }
  | Sharing_shift { rel; _ }
  | Matrix_shift { rel }
  | Fidelity_degraded { rel; _ } ->
    rel

type config = {
  enter : float;
  exit_ : float;
  enter_streak : int;
  exit_streak : int;
}

let default_config = { enter = 0.25; exit_ = 0.10; enter_streak = 2; exit_streak = 2 }

let validate_config c =
  if not (Float.is_finite c.enter && Float.is_finite c.exit_) then
    Error "thresholds must be finite"
  else if c.exit_ < 0. then Error "exit threshold must be non-negative"
  else if c.enter < c.exit_ then Error "enter threshold must be >= exit threshold"
  else if c.enter_streak < 1 || c.exit_streak < 1 then
    Error "streaks must be positive"
  else Ok ()

type t = {
  config : config;
  baseline : signal;
  windows : int;
  above : int;  (* consecutive windows scoring >= enter *)
  below : int;  (* consecutive windows scoring <= exit *)
  on : bool;
  on_reasons : reason list;
  last : float;
}

let create ?(config = default_config) ~baseline () =
  (match validate_config config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Drift.create: " ^ msg));
  {
    config;
    baseline;
    windows = 0;
    above = 0;
    below = 0;
    on = false;
    on_reasons = [];
    last = 0.;
  }

(* |cur - base| scaled by the baseline, with a floor so a near-zero
   baseline reads "any appreciable absolute change is a big relative one"
   instead of dividing by zero *)
let rel_delta ~floor base cur = Float.abs (cur -. base) /. Float.max floor base

(* normalized L1 distance between (possibly differently-sized) sharing
   matrices: sum of absolute cell deltas over the baseline's total mass *)
let matrix_rel a b =
  let dim m = Array.length m in
  let n = max (dim a) (dim b) in
  let cell m i j =
    if i < dim m && j < Array.length m.(i) then m.(i).(j) else 0
  in
  let num = ref 0 and base_mass = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      num := !num + abs (cell a i j - cell b i j);
      base_mass := !base_mass + cell a i j
    done
  done;
  float_of_int !num /. float_of_int (max 1 !base_mass)

let components base cur =
  [
    Miss_rate_drift
      {
        layer = "l1";
        baseline = base.miss_l1;
        current = cur.miss_l1;
        rel = rel_delta ~floor:1e-3 base.miss_l1 cur.miss_l1;
      };
    Miss_rate_drift
      {
        layer = "l2";
        baseline = base.miss_l2;
        current = cur.miss_l2;
        rel = rel_delta ~floor:1e-3 base.miss_l2 cur.miss_l2;
      };
    Sharing_shift
      {
        baseline = base.cross_shared;
        current = cur.cross_shared;
        rel =
          rel_delta ~floor:1.
            (float_of_int base.cross_shared)
            (float_of_int cur.cross_shared);
      };
    Matrix_shift { rel = matrix_rel base.sharing cur.sharing };
    Fidelity_degraded
      {
        baseline = base.fidelity_rel;
        current = cur.fidelity_rel;
        (* fidelity is already a relative quantity: any worsening past the
           baseline is itself the normalized delta *)
        rel = Float.max 0. (cur.fidelity_rel -. base.fidelity_rel);
      };
  ]

let score t cur =
  let comps = components t.baseline cur in
  let worst = List.fold_left (fun acc c -> Float.max acc (rel_of_reason c)) 0. comps in
  let firing =
    List.filter (fun c -> rel_of_reason c >= t.config.enter) comps
    |> List.stable_sort (fun a b -> compare (rel_of_reason b) (rel_of_reason a))
  in
  (worst, firing)

let observe t cur =
  let s, firing = score t cur in
  let above = if s >= t.config.enter then t.above + 1 else 0 in
  let below = if s <= t.config.exit_ then t.below + 1 else 0 in
  let t = { t with windows = t.windows + 1; above; below; last = s } in
  if (not t.on) && above >= t.config.enter_streak then
    { t with on = true; on_reasons = firing; above = 0; below = 0 }
  else if t.on && below >= t.config.exit_streak then
    { t with on = false; on_reasons = []; above = 0; below = 0 }
  else t

let windows_seen t = t.windows
let recommended t = t.on
let reasons t = t.on_reasons
let last_score t = t.last

let status_line t =
  Printf.sprintf "drift windows=%d score=%s recommend=%s reasons=[%s]" t.windows
    (f3 t.last)
    (if t.on then "yes" else "no")
    (String.concat "; " (List.map reason_to_string t.on_reasons))
