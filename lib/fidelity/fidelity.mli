(** Predicted-vs-observed join: does the run the hierarchy actually served
    match the run the compiler's cost model promised?

    {!join} takes a {!Predict.t} (the analytical side) and an
    [Flo_analysis.Analyzer.t] (the observed side, live or from a [--trace]
    file) and lines them up:

    - one {!row} per [(thread, file)] pair with the predicted and observed
      distinct-block counts (Step I / Eq. 4);
    - whole-run cross-thread sharing, predicted vs observed at the request
      level (Step II);
    - one {!layer_row} per cache, checking that observed cache-level sharing
      stays within the request-level predicted bound (a cache can only see a
      subset of the request stream).

    Everything is exact integer bookkeeping: under matching run parameters
    the model reproduces the runtime's access sets and every drift is 0;
    a mismatched block size or thread count shows up as nonzero drift,
    flagged against [tolerance]. *)

type row = {
  thread : int;
  file : int;
  predicted : int;  (** model-side distinct blocks (Eq. 4) *)
  observed : int;  (** trace-side distinct blocks *)
}

type layer_row = {
  cache : string;  (** {!Flo_analysis.Analyzer.cache_name} *)
  observed_cross : int;  (** cache-level cross-thread shared pairs *)
  predicted_bound : int;  (** request-level predicted pair bound *)
  violated : bool;  (** observed exceeds the bound *)
}

type t = {
  app : string;
  tolerance : float;
  predict : Predict.t;
  rows : row list;  (** ascending [(thread, file)] *)
  predicted_cross_shared : int;
  observed_cross_shared : int;
  predicted_cross_pairs : int;
  observed_cross_pairs : int;
  layer_rows : layer_row list;
}

val join :
  ?tolerance:float ->
  predict:Predict.t ->
  observed:Flo_analysis.Analyzer.t ->
  unit ->
  t
(** Rows cover the union of pairs either side knows about — a pair present
    on only one side is itself drift.  [tolerance] (default 0) is the
    relative-error budget used by {!flagged} and {!ok}.
    @raise Invalid_argument on negative [tolerance]. *)

(** {1 Per-row drift} *)

val abs_drift : row -> int
val rel_drift : row -> float
(** [|obs - pred| / pred]; 0 when both are 0, [infinity] when only the
    prediction is 0. *)

(** {1 Aggregates} *)

val flagged : t -> row list
(** Rows whose relative drift exceeds the tolerance. *)

val max_abs_drift : t -> int
val max_rel_drift : t -> float
val sharing_drift : t -> int
val sharing_rel_drift : t -> float
val pairs_drift : t -> int
val layer_violations : t -> layer_row list

val ok : t -> bool
(** No flagged rows, sharing drift within tolerance, no layer violations. *)

val record : t -> Flo_obs.Metrics.t -> unit
(** Publish the drift aggregates as gauges labelled [app=<name>]:
    [fidelity.distinct.max_abs_drift], [fidelity.distinct.max_rel_drift],
    [fidelity.sharing.abs_drift], [fidelity.sharing.pairs_drift],
    [fidelity.flagged_rows], [fidelity.layer_violations]. *)
