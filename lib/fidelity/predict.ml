open Flo_poly
open Flo_core

type layer_expect = {
  level : int;
  capacity : int;
  fanout : int;
  reps : int;
  threads_sharing : int;
  chunks_per_thread : int;
  capacity_blocks : int;
}

type array_prediction = {
  array_id : int;
  array_name : string;
  layout : string;
  optimized : bool;
  chunk_elems : int option;
  block_aligned : bool;
  layers : layer_expect list;
}

type t = {
  app : string;
  threads : int;
  block_elems : int;
  blocks_per_thread : int;
  sample : int;
  arrays : array_prediction list;
  distinct : ((int * int) * int) list;
  cross_shared_blocks : int;
  cross_pairs : int;
  distinct_blocks : int;
  single_owner : bool;
}

let layer_expectations ~block_elems (p : Chunk_pattern.t) =
  let n = Array.length p.Chunk_pattern.layers in
  List.init n (fun i ->
      let { Chunk_pattern.capacity; fanout } = p.Chunk_pattern.layers.(i) in
      let threads_sharing =
        Array.fold_left
          (fun acc (ly : Chunk_pattern.layer) -> acc * ly.Chunk_pattern.fanout)
          1
          (Array.sub p.Chunk_pattern.layers 0 (i + 1))
      in
      let chunks_per_thread = capacity / threads_sharing / p.Chunk_pattern.chunk in
      {
        level = i + 1;
        capacity;
        fanout;
        reps = (if i < n - 1 then p.Chunk_pattern.reps.(i) else 1);
        threads_sharing;
        chunks_per_thread;
        capacity_blocks = capacity / block_elems;
      })

let array_prediction ~block_elems (decl : Program.array_decl) layout =
  let chunk =
    match layout with
    | File_layout.Internode i -> Some (Chunk_pattern.chunk_elems i.File_layout.pattern)
    | _ -> None
  in
  {
    array_id = decl.Program.id;
    array_name = decl.Program.name;
    layout = File_layout.describe layout;
    optimized = (match layout with File_layout.Internode _ -> true | _ -> false);
    chunk_elems = chunk;
    block_aligned = (match chunk with Some c -> c mod block_elems = 0 | None -> false);
    layers =
      (match layout with
      | File_layout.Internode i ->
        layer_expectations ~block_elems i.File_layout.pattern
      | _ -> []);
  }

(* Mirrors Tracegen's parallelization exactly: round-robin iteration blocks,
   [num_blocks = min (threads * blocks_per_thread) extent], and profile-mode
   sampling keeps a prefix of each thread's iterations. *)
let compute ?(blocks_per_thread = 1) ?(sample = 1) ~block_elems ~threads ~name ~layouts
    (program : Program.t) =
  if sample < 1 then invalid_arg "Predict.compute: sample < 1";
  if block_elems < 1 then invalid_arg "Predict.compute: block_elems < 1";
  let seen : (int * int * int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let counts : (int * int, int ref) Hashtbl.t = Hashtbl.create 64 in
  let degrees : (int * int, int ref) Hashtbl.t = Hashtbl.create 4096 in
  let touch ~thread ~file ~block =
    let key = (thread, file, block) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      (match Hashtbl.find_opt counts (thread, file) with
      | Some r -> incr r
      | None -> Hashtbl.add counts (thread, file) (ref 1));
      match Hashtbl.find_opt degrees (file, block) with
      | Some r -> incr r
      | None -> Hashtbl.add degrees (file, block) (ref 1)
    end
  in
  List.iter
    (fun (nest : Loop_nest.t) ->
      let u = nest.Loop_nest.parallel_dim in
      let extent = Iter_space.extent nest.Loop_nest.space u in
      let num_blocks = min (threads * blocks_per_thread) extent in
      let plan =
        Parallelize.custom ~threads ~num_blocks ~assign:(fun b -> b mod threads) nest
      in
      let totals = Parallelize.iterations_per_thread plan in
      let refs =
        List.map (fun r -> (Access.array_id r, layouts (Access.array_id r), r))
          nest.Loop_nest.refs
      in
      for thread = 0 to threads - 1 do
        let limit = (totals.(thread) + sample - 1) / sample in
        let counter = ref 0 in
        Parallelize.iter_thread plan ~thread (fun iter ->
            let keep = !counter < limit in
            incr counter;
            if keep then
              List.iter
                (fun (file, layout, r) ->
                  let offset = File_layout.offset_of layout (Access.eval r iter) in
                  touch ~thread ~file ~block:(offset / block_elems))
                refs)
      done)
    program.Program.nests;
  let distinct =
    Hashtbl.fold (fun key r acc -> (key, !r) :: acc) counts []
    |> List.sort compare
  in
  let cross_shared_blocks =
    Hashtbl.fold (fun _ r acc -> if !r >= 2 then acc + 1 else acc) degrees 0
  in
  let cross_pairs =
    Hashtbl.fold (fun _ r acc -> acc + (!r * (!r - 1) / 2)) degrees 0
  in
  let arrays =
    List.map
      (fun id -> array_prediction ~block_elems (Program.array_decl program id) (layouts id))
      (Program.array_ids program)
  in
  {
    app = name;
    threads;
    block_elems;
    blocks_per_thread;
    sample;
    arrays;
    distinct;
    cross_shared_blocks;
    cross_pairs;
    distinct_blocks = Hashtbl.length degrees;
    single_owner = cross_shared_blocks = 0;
  }

let distinct_of t ~thread ~file =
  match List.assoc_opt (thread, file) t.distinct with Some n -> n | None -> 0

let total_distinct t ~thread =
  List.fold_left
    (fun acc ((th, _), n) -> if th = thread then acc + n else acc)
    0 t.distinct

let threads_seen t =
  List.fold_left (fun acc ((th, _), _) -> max acc (th + 1)) 0 t.distinct

let pp_layer ppf l =
  Format.fprintf ppf "L%d: S=%d N=%d t=%d sharing=%d chunks/thread=%d (%d blocks)"
    l.level l.capacity l.fanout l.reps l.threads_sharing l.chunks_per_thread
    l.capacity_blocks
