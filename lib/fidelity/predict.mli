(** Compiler-side analytical predictions for one application under chosen
    layouts — the model half of the fidelity loop.

    The paper's pass is driven by two analytical claims:

    - {b Step I (Eq. 4)}: the chosen transformation [D] minimizes the number
      of distinct blocks of each file every thread drags through the
      hierarchy.  {!compute} evaluates that objective exactly: it enumerates
      each thread's iteration blocks (the same round-robin distribution the
      runtime uses), maps every reference through the chosen layout, and
      counts distinct [(thread, file, block)] triples — with {e no} cache
      simulation, interleaving, or request coalescing involved.
    - {b Step II}: the chunk placement
      [b_i = ((x / (t_1 ... t_(i-1))) mod t_i) * S_i] confines each thread's
      data to thread-private, block-aligned chunks, so at a matching block
      size no block has two owners and cross-thread sharing is zero.
      {!t.cross_shared_blocks} / {!t.cross_pairs} evaluate that claim on the
      predicted access sets, and [arrays] carries the per-layer pattern
      parameters ([S_i], [N_i], [t_i]) behind it.

    Joining these predictions against the observed quantities of
    [Flo_analysis] is {!Fidelity}'s job. *)

open Flo_poly
open Flo_core

type layer_expect = {
  level : int;  (** 1-based layer index, bottom-up *)
  capacity : int;  (** S_i, elements *)
  fanout : int;  (** N_i *)
  reps : int;  (** t_i (1 for the top layer) *)
  threads_sharing : int;  (** threads behind one layer-i cache *)
  chunks_per_thread : int;  (** one thread's chunks resident per layer-i pattern *)
  capacity_blocks : int;  (** S_i / block size *)
}

type array_prediction = {
  array_id : int;
  array_name : string;
  layout : string;  (** [File_layout.describe] *)
  optimized : bool;  (** true for inter-node layouts *)
  chunk_elems : int option;  (** S_1 / l for inter-node layouts *)
  block_aligned : bool;  (** chunk is a whole number of blocks *)
  layers : layer_expect list;  (** Step II parameters, empty if not optimized *)
}

type t = {
  app : string;
  threads : int;
  block_elems : int;  (** block size the predictions were made for *)
  blocks_per_thread : int;
  sample : int;
  arrays : array_prediction list;
  distinct : ((int * int) * int) list;
      (** [((thread, file), predicted distinct blocks)], ascending — Eq. 4 *)
  cross_shared_blocks : int;  (** blocks predicted to be touched by >= 2 threads *)
  cross_pairs : int;  (** predicted unordered thread-pair co-touches *)
  distinct_blocks : int;  (** total distinct blocks across all threads *)
  single_owner : bool;  (** Step II claim: no block has two owners *)
}

val compute :
  ?blocks_per_thread:int ->
  ?sample:int ->
  block_elems:int ->
  threads:int ->
  name:string ->
  layouts:(int -> File_layout.t) ->
  Program.t ->
  t
(** [blocks_per_thread] and [sample] mirror the runner's parallelization
    knobs (defaults 1); predictions are exact for a run under the same
    parameters.  @raise Invalid_argument on non-positive [sample] or
    [block_elems]. *)

val distinct_of : t -> thread:int -> file:int -> int
(** 0 for a pair the model predicts no touches for. *)

val total_distinct : t -> thread:int -> int
val threads_seen : t -> int

val pp_layer : Format.formatter -> layer_expect -> unit
