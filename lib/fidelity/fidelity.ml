open Flo_analysis

type row = { thread : int; file : int; predicted : int; observed : int }

type layer_row = {
  cache : string;
  observed_cross : int;
  predicted_bound : int;
  violated : bool;
}

type t = {
  app : string;
  tolerance : float;
  predict : Predict.t;
  rows : row list;
  predicted_cross_shared : int;
  observed_cross_shared : int;
  predicted_cross_pairs : int;
  observed_cross_pairs : int;
  layer_rows : layer_row list;
}

let abs_drift r = abs (r.observed - r.predicted)

let rel_drift r =
  if r.predicted = 0 && r.observed = 0 then 0.
  else if r.predicted = 0 then infinity
  else
    float_of_int (abs (r.observed - r.predicted)) /. float_of_int r.predicted

let flagged_row ~tolerance r = rel_drift r > tolerance

let join ?(tolerance = 0.) ~predict ~observed () =
  if tolerance < 0. then invalid_arg "Fidelity.join: negative tolerance";
  let l = Analyzer.locality observed in
  (* union of keys: a pair only one side knows about is itself drift *)
  let keys = Hashtbl.create 64 in
  List.iter (fun (key, _) -> Hashtbl.replace keys key ()) predict.Predict.distinct;
  List.iter
    (fun (thread, per_file) ->
      List.iter (fun (file, _) -> Hashtbl.replace keys (thread, file) ()) per_file)
    (Locality.per_thread l);
  let rows =
    Hashtbl.fold
      (fun (thread, file) () acc ->
        {
          thread;
          file;
          predicted = Predict.distinct_of predict ~thread ~file;
          observed = Locality.distinct l ~thread ~file;
        }
        :: acc)
      keys []
    |> List.sort (fun a b -> compare (a.thread, a.file) (b.thread, b.file))
  in
  (* a cache only sees the subset of the request stream that reaches it, so
     request-level predicted sharing upper-bounds every layer's observed
     sharing; an excess is a model violation (mis-attributed residency) *)
  let layer_rows =
    List.filter_map
      (fun c ->
        match Analyzer.sharing_of observed c with
        | None -> None
        | Some s ->
          let observed_cross = Sharing.cross_shared s in
          Some
            {
              cache = Analyzer.cache_name c;
              observed_cross;
              predicted_bound = predict.Predict.cross_pairs;
              violated = observed_cross > predict.Predict.cross_pairs;
            })
      (Analyzer.caches observed)
  in
  {
    app = predict.Predict.app;
    tolerance;
    predict;
    rows;
    predicted_cross_shared = predict.Predict.cross_shared_blocks;
    observed_cross_shared = Locality.shared_blocks l;
    predicted_cross_pairs = predict.Predict.cross_pairs;
    observed_cross_pairs = Locality.cross_pairs l;
    layer_rows;
  }

let flagged t = List.filter (flagged_row ~tolerance:t.tolerance) t.rows

let max_abs_drift t = List.fold_left (fun acc r -> max acc (abs_drift r)) 0 t.rows

let max_rel_drift t = List.fold_left (fun acc r -> Float.max acc (rel_drift r)) 0. t.rows

let sharing_drift t = abs (t.observed_cross_shared - t.predicted_cross_shared)

let pairs_drift t = abs (t.observed_cross_pairs - t.predicted_cross_pairs)

let layer_violations t = List.filter (fun lr -> lr.violated) t.layer_rows

let sharing_rel_drift t =
  if t.predicted_cross_shared = 0 && t.observed_cross_shared = 0 then 0.
  else if t.predicted_cross_shared = 0 then infinity
  else
    float_of_int (sharing_drift t) /. float_of_int t.predicted_cross_shared

let ok t =
  flagged t = []
  && sharing_rel_drift t <= t.tolerance
  && layer_violations t = []

let record t registry =
  let labels = [ ("app", t.app) ] in
  let set name v =
    Flo_obs.Metrics.set_gauge (Flo_obs.Metrics.gauge registry ~labels name) v
  in
  set "fidelity.distinct.max_abs_drift" (float_of_int (max_abs_drift t));
  set "fidelity.distinct.max_rel_drift" (max_rel_drift t);
  set "fidelity.sharing.abs_drift" (float_of_int (sharing_drift t));
  set "fidelity.sharing.pairs_drift" (float_of_int (pairs_drift t));
  set "fidelity.flagged_rows" (float_of_int (List.length (flagged t)));
  set "fidelity.layer_violations" (float_of_int (List.length (layer_violations t)))
