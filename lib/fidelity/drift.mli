(** Layout drift watch: has the workload shifted far enough from the run
    the current layouts were optimized for that re-running the compiler
    pass is worth it?

    A {!signal} is one observation window's summary — per-layer miss
    rates, cross-thread sharing, the L2 sharing matrix, and the
    model-vs-run fidelity drift.  A detector ({!t}) holds the baseline
    signal (captured when the layouts were installed) and folds windows
    with {!observe}: each window's {!score} is the worst normalized
    component delta against the baseline, and the re-layout
    recommendation flips with hysteresis — it takes [enter_streak]
    consecutive windows above [enter] to raise it and [exit_streak]
    consecutive windows below [exit] to clear it, so a single noisy
    window can neither trigger nor cancel a recommendation.

    Pure value-level folding: no clocks, no I/O, no randomness — verdicts
    are a function of the signals alone. *)

type signal = {
  miss_l1 : float;  (** L1 misses per element access *)
  miss_l2 : float;  (** L2 misses per element access *)
  cross_shared : int;  (** cross-thread shared blocks observed at L2 *)
  sharing : int array array;
      (** thread x thread shared-block matrix at L2 (any square size;
          matrices of different sizes compare by zero-padding) *)
  fidelity_rel : float;  (** max relative model-vs-run drift, >= 0 *)
}

(** Why a window scored what it did — one constructor per component, each
    carrying the baseline and observed values. *)
type reason =
  | Miss_rate_drift of { layer : string; baseline : float; current : float; rel : float }
  | Sharing_shift of { baseline : int; current : int; rel : float }
  | Matrix_shift of { rel : float }
      (** normalized L1 distance between sharing matrices *)
  | Fidelity_degraded of { baseline : float; current : float; rel : float }

val reason_to_string : reason -> string
(** One deterministic line per reason, e.g.
    [miss-rate-drift layer=l2 base=0.041 cur=0.087 rel=1.12]. *)

type config = {
  enter : float;  (** score at or above this counts towards raising *)
  exit_ : float;  (** score at or below this counts towards clearing *)
  enter_streak : int;  (** consecutive high windows required to raise *)
  exit_streak : int;  (** consecutive low windows required to clear *)
}

val default_config : config
(** [enter = 0.25], [exit_ = 0.10], both streaks 2. *)

val validate_config : config -> (unit, string) result
(** [0 <= exit_ <= enter], both streaks positive. *)

type t

val create : ?config:config -> baseline:signal -> unit -> t
(** A fresh detector: no windows seen, recommendation off.
    @raise Invalid_argument when {!validate_config} rejects [config]. *)

val score : t -> signal -> float * reason list
(** The window's score — the maximum normalized component delta against
    the baseline — and every component at or above the [enter] threshold,
    worst first.  Pure; does not advance the detector. *)

val observe : t -> signal -> t
(** Fold one window: update streaks and the recommendation. *)

val windows_seen : t -> int

val recommended : t -> bool
(** Current re-layout recommendation (hysteresis applied). *)

val reasons : t -> reason list
(** The reasons attached to the most recent recommendation flip to [on];
    [[]] while the recommendation is off. *)

val last_score : t -> float
(** Score of the most recent window; [0.] before any. *)

val status_line : t -> string
(** One deterministic line:
    [drift windows=N score=S recommend=yes|no reasons=[...]]. *)
