(** Trace analytics: consume a {!Flo_obs.Event.t} stream — live through a
    sink, or offline from a [--trace] JSONL file — and accumulate

    - per-(layer, node) block reuse-distance histograms ({!Reuse}),
    - per-shared-cache inter-thread sharing/conflict matrices ({!Sharing}),
    - per-thread distinct-block counts per file ({!Locality}),

    i.e. the observable counterparts of the paper's Step I (Eq. 4) and
    Step II objectives.  Rendering lives in [Flo_engine.Report]; Perfetto
    export in {!Perfetto}. *)

type cache = { layer : Flo_obs.Event.layer; node : int }

val cache_name : cache -> string
(** ["l1/0"], ["l2/3"], ... *)

type t

val create : ?keep_events:bool -> unit -> t
(** [keep_events] retains the raw events (for {!Perfetto} export); off by
    default so live analysis stays O(state), not O(trace). *)

val feed : t -> Flo_obs.Event.t -> unit

val sink : t -> Flo_obs.Sink.t
(** Live accumulation: attach to [Run.run ~sink] (tee with other sinks as
    needed). *)

val of_events : ?keep_events:bool -> Flo_obs.Event.t list -> t

type load_error =
  | Io of string  (** the file could not be opened *)
  | Malformed of { line : int; msg : string }
      (** first malformed trace line (1-based) and the parse error *)

val load_error_to_string : load_error -> string

val load_file : ?keep_events:bool -> string -> (t, load_error) result
(** Offline mode: parse a JSONL trace with {!Flo_obs.Event.of_json}.  Blank
    lines are skipped; the first malformed line aborts with
    [Malformed] carrying its line number. *)

val load_channel : ?keep_events:bool -> in_channel -> (t, load_error) result

val events : t -> Flo_obs.Event.t list
(** Retained events in trace order; [[]] unless [keep_events] was set. *)

val event_count : t -> int
val kind_count : t -> Flo_obs.Event.kind -> int

val time_span : t -> float * float
(** Smallest and largest timestamp seen; [(0., 0.)] when empty. *)

val total_disk_us : t -> float
(** Summed [latency_us] of the disk reads. *)

val caches : t -> cache list
(** Caches with any lookup or eviction activity: L1 nodes first, then L2,
    nodes ascending. *)

val reuse_of : t -> cache -> Reuse.t option
val sharing_of : t -> cache -> Sharing.t option
val locality : t -> Locality.t

(** {1 Whole-layer scalars} — the headline numbers compared across runs. *)

val cross_shared_at : t -> Flo_obs.Event.layer -> int
(** Sum of {!Sharing.cross_shared} over the layer's caches. *)

val conflicts_at : t -> Flo_obs.Event.layer -> int
(** Sum of {!Sharing.total_conflicts} over the layer's caches. *)

val reuse_histogram_at : t -> Flo_obs.Event.layer -> Flo_obs.Histogram.t
(** Bucket-wise merge of the layer's reuse-distance histograms. *)
