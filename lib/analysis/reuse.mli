(** Block reuse distances (LRU stack distances) for one cache's lookup
    stream.

    The reuse distance of a touch is the number of {e distinct} blocks
    touched since the previous touch of the same block — the quantity that
    fully determines LRU behaviour: under an LRU cache of capacity [C]
    blocks, a touch hits iff its reuse distance is [< C].  Distances
    accumulate into a powers-of-two {!Flo_obs.Histogram} so they read
    directly against cache capacities.

    Incremental: feed touches in stream order; each costs [O(log n)] via a
    Fenwick tree over touch slots. *)

type t

val create : unit -> t

val touch : t -> file:int -> block:int -> int option
(** Record the next touch of the stream.  [None] for a cold (first-ever)
    touch — its distance is infinite; [Some d] with the reuse distance
    otherwise ([0] = immediate re-touch). *)

val touches : t -> int
(** Total touches recorded. *)

val cold_touches : t -> int
(** First-ever touches (infinite distance; excluded from the histogram). *)

val reuses : t -> int
(** Touches with a finite distance, [= touches - cold_touches]. *)

val distinct_blocks : t -> int

val histogram : t -> Flo_obs.Histogram.t
(** Finite distances, bucketed by powers of two ([lo = 1], [gamma = 2]). *)

val below : t -> int -> int
(** [below t c]: finite-distance reuses falling in histogram buckets whose
    upper edge is [<= c] — an estimate (conservative, since the bucket
    containing [c] is excluded) of the touches an LRU cache of roughly [c]
    blocks would serve as hits. *)
