(** Inter-thread sharing and eviction-conflict matrices for one shared
    cache — the observable counterpart of the paper's Step II objective
    (minimize the blocks thread pairs co-touch inside a shared cache).

    Feed the cache's lookup stream through {!touch} and its evictions
    through {!evict}, in trace order. *)

type t

val create : unit -> t

val touch : t -> thread:int -> file:int -> block:int -> hit:bool -> unit
(** One lookup ([hit = true] for a cache hit, [false] for a miss) of
    [(file, block)] at this cache on behalf of [thread].
    @raise Invalid_argument on a negative thread id. *)

val evict : t -> thread:int -> file:int -> block:int -> unit
(** The cache evicted [(file, block)] while serving a request of
    [thread]. *)

val threads : t -> int
(** [1 + ] the largest thread id seen; matrix dimensions. *)

val touches : t -> int
val evictions : t -> int
val distinct_blocks : t -> int

val shared : t -> int array array
(** [shared.(i).(j)] = number of distinct blocks both thread [i] and thread
    [j] touched at this cache.  Symmetric by construction; the diagonal
    [shared.(i).(i)] is thread [i]'s distinct-block count (the paper's
    Step I / Eq. 4 quantity, restricted to this cache's stream). *)

val conflicts : t -> int array array
(** [conflicts.(e).(s)] = evictions triggered by thread [e] whose victim's
    {e next} lookup at this cache was a miss by thread [s <> e] — i.e. [e]
    threw out a block [s] still needed.  Each eviction charges at most one
    conflict; evictions whose victim is first re-installed (prefetch,
    demote) or re-missed by the evictor itself charge none. *)

val distinct_of : t -> thread:int -> int
(** Distinct blocks [thread] touched here ([= shared.(t).(t)]). *)

val cross_shared : t -> int
(** Sum over unordered thread pairs [i < j] of [shared.(i).(j)] — the
    scalar the optimized layout should shrink. *)

val shared_blocks : t -> int
(** Distinct blocks touched by two or more threads. *)

val total_conflicts : t -> int

val active_threads : t -> int list
(** Thread ids that touched a block here or took part in a conflict,
    ascending — the interesting rows/columns of the matrices. *)
