(** Per-thread, per-file distinct-block counts — the paper's Step I
    objective (Eq. 4): how many distinct blocks of each file every thread
    drags through the hierarchy.  Feed the trace's [Access] events. *)

type t

val create : unit -> t
val touch : t -> thread:int -> file:int -> block:int -> unit

val requests : t -> int
(** Touches recorded (block requests, not distinct blocks). *)

val distinct : t -> thread:int -> file:int -> int
(** 0 for a (thread, file) pair never seen. *)

val total_distinct : t -> thread:int -> int
(** Sum of {!distinct} over all files, per thread. *)

val threads : t -> int
(** [1 + ] the largest thread id seen (0 when empty). *)

val files : t -> int list
(** File ids seen, ascending. *)

val per_thread : t -> (int * (int * int) list) list
(** [(thread, [(file, distinct); ...])], both levels ascending. *)
