(** Per-thread, per-file distinct-block counts — the paper's Step I
    objective (Eq. 4): how many distinct blocks of each file every thread
    drags through the hierarchy.  Feed the trace's [Access] events. *)

type t

val create : unit -> t
val touch : t -> thread:int -> file:int -> block:int -> unit

val requests : t -> int
(** Touches recorded (block requests, not distinct blocks). *)

val distinct : t -> thread:int -> file:int -> int
(** 0 for a (thread, file) pair never seen. *)

val total_distinct : t -> thread:int -> int
(** Sum of {!distinct} over all files, per thread. *)

val threads : t -> int
(** [1 + ] the largest thread id seen (0 when empty). *)

val files : t -> int list
(** File ids seen, ascending. *)

val per_thread : t -> (int * (int * int) list) list
(** [(thread, [(file, distinct); ...])], both levels ascending. *)

(** {1 Request-level sharing} — over the full request stream, before any
    cache filters it: the observable the compiler's Step II prediction
    addresses directly (an inter-node layout at a matching block size
    assigns every block a single owner, so all three are minimal). *)

val distinct_blocks : t -> int
(** Distinct [(file, block)] pairs any thread touched. *)

val shared_blocks : t -> int
(** Distinct blocks touched by two or more threads. *)

val cross_pairs : t -> int
(** Sum over blocks of [k * (k-1) / 2] where [k] threads touched the block
    — the total unordered thread-pair co-touches. *)
