open Flo_obs

type cache = { layer : Event.layer; node : int }

let cache_name c = Printf.sprintf "%s/%d" (Event.layer_to_string c.layer) c.node

(* L1 caches sort before L2, nodes ascending — the report order *)
let cache_rank c =
  ((match c.layer with Event.L1 -> 0 | Event.L2 -> 1 | Event.Disk -> 2), c.node)

type t = {
  reuse : (cache, Reuse.t) Hashtbl.t;
  sharing : (cache, Sharing.t) Hashtbl.t;
  locality : Locality.t;
  keep_events : bool;
  mutable events_rev : Event.t list;
  mutable event_count : int;
  kind_counts : int array;  (* indexed by kind_index *)
  mutable t_min : float;
  mutable t_max : float;
  mutable disk_us : float;
}

let kind_index = function
  | Event.Access -> 0
  | Event.Hit -> 1
  | Event.Miss -> 2
  | Event.Evict -> 3
  | Event.Demote -> 4
  | Event.Prefetch -> 5
  | Event.Disk_read -> 6
  | Event.Fault -> 7
  | Event.Retry -> 8
  | Event.Timeout -> 9
  | Event.Failover -> 10
  | Event.Other _ -> 11

let create ?(keep_events = false) () =
  {
    reuse = Hashtbl.create 8;
    sharing = Hashtbl.create 8;
    locality = Locality.create ();
    keep_events;
    events_rev = [];
    event_count = 0;
    kind_counts = Array.make 12 0;
    t_min = infinity;
    t_max = neg_infinity;
    disk_us = 0.;
  }

let find_or tbl key make =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = make () in
    Hashtbl.add tbl key v;
    v

let feed t (e : Event.t) =
  t.event_count <- t.event_count + 1;
  if t.keep_events then t.events_rev <- e :: t.events_rev;
  let k = kind_index e.Event.kind in
  t.kind_counts.(k) <- t.kind_counts.(k) + 1;
  if e.Event.time_us < t.t_min then t.t_min <- e.Event.time_us;
  if e.Event.time_us > t.t_max then t.t_max <- e.Event.time_us;
  let c = { layer = e.Event.layer; node = e.Event.node } in
  match e.Event.kind with
  | Event.Access ->
    Locality.touch t.locality ~thread:e.Event.thread ~file:e.Event.file
      ~block:e.Event.block
  | Event.Hit | Event.Miss ->
    let hit = e.Event.kind = Event.Hit in
    ignore
      (Reuse.touch (find_or t.reuse c Reuse.create) ~file:e.Event.file
         ~block:e.Event.block);
    Sharing.touch (find_or t.sharing c Sharing.create) ~thread:e.Event.thread
      ~file:e.Event.file ~block:e.Event.block ~hit
  | Event.Evict ->
    Sharing.evict (find_or t.sharing c Sharing.create) ~thread:e.Event.thread
      ~file:e.Event.file ~block:e.Event.block
  | Event.Disk_read -> t.disk_us <- t.disk_us +. e.Event.latency_us
  (* failed attempts and failover reads occupy the disks too *)
  | Event.Fault | Event.Failover -> t.disk_us <- t.disk_us +. e.Event.latency_us
  | Event.Demote | Event.Prefetch | Event.Retry | Event.Timeout
  | Event.Other _ -> ()

let sink t = Sink.callback (feed t)

let of_events ?keep_events events =
  let t = create ?keep_events () in
  List.iter (feed t) events;
  t

type load_error = Io of string | Malformed of { line : int; msg : string }

let load_error_to_string = function
  | Io msg -> msg
  | Malformed { line; msg } -> Printf.sprintf "line %d: %s" line msg

let load_channel ?keep_events ic =
  let t = create ?keep_events () in
  let lineno = ref 0 in
  let err = ref None in
  (try
     while !err = None do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then
         match Event.of_json line with
         | Ok e -> feed t e
         | Error msg -> err := Some (Malformed { line = !lineno; msg })
     done
   with End_of_file -> ());
  match !err with Some e -> Error e | None -> Ok t

let load_file ?keep_events path =
  match open_in path with
  | exception Sys_error msg -> Error (Io msg)
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        load_channel ?keep_events ic)

let events t = List.rev t.events_rev
let event_count t = t.event_count
let kind_count t kind = t.kind_counts.(kind_index kind)
let locality t = t.locality
let total_disk_us t = t.disk_us

let time_span t = if t.event_count = 0 then (0., 0.) else (t.t_min, t.t_max)

let caches t =
  let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.sort_uniq
    (fun a b -> compare (cache_rank a) (cache_rank b))
    (keys t.reuse @ keys t.sharing)

let reuse_of t c = Hashtbl.find_opt t.reuse c
let sharing_of t c = Hashtbl.find_opt t.sharing c

let layer_caches t layer = List.filter (fun c -> c.layer = layer) (caches t)

let fold_sharing t layer f init =
  List.fold_left
    (fun acc c -> match sharing_of t c with Some s -> f acc s | None -> acc)
    init (layer_caches t layer)

let cross_shared_at t layer =
  fold_sharing t layer (fun acc s -> acc + Sharing.cross_shared s) 0

let conflicts_at t layer =
  fold_sharing t layer (fun acc s -> acc + Sharing.total_conflicts s) 0

let reuse_histogram_at t layer =
  Histogram.merge_list
    (List.filter_map (fun c -> Option.map Reuse.histogram (reuse_of t c))
       (layer_caches t layer))
