(* Chrome trace-event JSON ("JSON Object Format") for ui.perfetto.dev /
   chrome://tracing.

   Track layout:
     pid 1  "requests"  one track per thread; each block request is a
                        complete ("ph":"X") slice from its arrival to the
                        next request of the same thread, colored by outcome
                        (L1 hit / L2 hit / disk read).
     pid 2  "caches"    one track per cache or disk; evictions, demotions,
                        prefetches and disk reads appear as instant events.

   Timestamps are the trace's simulated microseconds, which is exactly the
   unit the format expects. *)

open Flo_obs

type outcome = O_unknown | O_l1_hit | O_l2_hit | O_disk

let outcome_name = function
  | O_unknown -> "request"
  | O_l1_hit -> "l1_hit"
  | O_l2_hit -> "l2_hit"
  | O_disk -> "disk"

(* legacy chrome tracing color names; Perfetto maps them to its palette *)
let outcome_cname = function
  | O_unknown -> "grey"
  | O_l1_hit -> "good"
  | O_l2_hit -> "bad"
  | O_disk -> "terrible"

type request = {
  start_us : float;
  file : int;
  block : int;
  mutable outcome : outcome;
  mutable disk_us : float;
}

let cache_label (layer : Event.layer) node =
  Printf.sprintf "%s/%d" (Event.layer_to_string layer) node

(* forward-compat [Event.Other] names come off the wire unvalidated *)
let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
        Buffer.add_char b '\\';
        Buffer.add_char b c
      | '\x00' .. '\x1f' -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_json buf first fmt =
  if !first then first := false else Buffer.add_char buf ',';
  Buffer.add_string buf "\n  ";
  Printf.ksprintf (Buffer.add_string buf) fmt

let to_buffer buf events =
  Buffer.add_string buf "{\"traceEvents\": [";
  let first = ref true in
  emit_json buf first
    {|{"ph":"M","pid":1,"name":"process_name","args":{"name":"requests"}}|};
  emit_json buf first
    {|{"ph":"M","pid":2,"name":"process_name","args":{"name":"caches"}}|};
  let threads_seen = Hashtbl.create 16 in
  let cache_tids = Hashtbl.create 16 in
  let next_cache_tid = ref 0 in
  let cache_tid layer node =
    let key = cache_label layer node in
    match Hashtbl.find_opt cache_tids key with
    | Some tid -> tid
    | None ->
      let tid = !next_cache_tid in
      incr next_cache_tid;
      Hashtbl.add cache_tids key tid;
      emit_json buf first
        {|{"ph":"M","pid":2,"tid":%d,"name":"thread_name","args":{"name":"%s"}}|} tid key;
      tid
  in
  let open_requests : (int, request) Hashtbl.t = Hashtbl.create 16 in
  (* stable per-slice ids: the k-th request of a thread always exports the
     same trace_id/span_id (minted from the (thread, k) counter position,
     never from content or wall clock), so slices cross-reference with
     `flopt trace` output and diff clean across exports *)
  let req_seq : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let close_request thread r ~end_us =
    let seq = Option.value ~default:0 (Hashtbl.find_opt req_seq thread) in
    Hashtbl.replace req_seq thread (seq + 1);
    let trace_id = Flo_obs.Trace.mint_id ~seed:0 ~stream:thread seq in
    let dur = Float.max (end_us -. r.start_us) 0.001 in
    emit_json buf first
      {|{"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"name":"f%d:b%d","cat":"%s","cname":"%s","args":{"file":%d,"block":%d,"outcome":"%s","trace_id":"%s","span_id":"%s"%s}}|}
      thread r.start_us dur r.file r.block (outcome_name r.outcome)
      (outcome_cname r.outcome) r.file r.block (outcome_name r.outcome)
      (Flo_obs.Trace.id_to_string trace_id)
      (Flo_obs.Trace.id_to_string (Flo_obs.Trace.span_id ~trace_id 0))
      (if r.disk_us > 0. then Printf.sprintf {|,"disk_us":%.3f|} r.disk_us else "")
  in
  let instant (e : Event.t) verb =
    emit_json buf first
      {|{"ph":"i","pid":2,"tid":%d,"ts":%.3f,"name":"%s f%d:b%d","s":"t","args":{"thread":%d}}|}
      (cache_tid e.Event.layer e.Event.node)
      e.Event.time_us verb e.Event.file e.Event.block e.Event.thread
  in
  List.iter
    (fun (e : Event.t) ->
      let thread = e.Event.thread in
      if not (Hashtbl.mem threads_seen thread) then begin
        Hashtbl.add threads_seen thread ();
        emit_json buf first
          {|{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":"thread %d"}}|}
          thread thread
      end;
      match e.Event.kind with
      | Event.Access ->
        (match Hashtbl.find_opt open_requests thread with
        | Some r ->
          close_request thread r ~end_us:e.Event.time_us;
          Hashtbl.remove open_requests thread
        | None -> ());
        Hashtbl.add open_requests thread
          {
            start_us = e.Event.time_us;
            file = e.Event.file;
            block = e.Event.block;
            outcome = O_unknown;
            disk_us = 0.;
          }
      | Event.Hit ->
        (match Hashtbl.find_opt open_requests thread with
        | Some r when r.outcome = O_unknown ->
          r.outcome <-
            (match e.Event.layer with Event.L1 -> O_l1_hit | _ -> O_l2_hit)
        | _ -> ())
      | Event.Disk_read ->
        (match Hashtbl.find_opt open_requests thread with
        | Some r ->
          r.outcome <- O_disk;
          r.disk_us <- r.disk_us +. e.Event.latency_us
        | None -> ());
        instant e "disk_read"
      | Event.Failover ->
        (* a failover read resolves the open request at the replica disk *)
        (match Hashtbl.find_opt open_requests thread with
        | Some r ->
          r.outcome <- O_disk;
          r.disk_us <- r.disk_us +. e.Event.latency_us
        | None -> ());
        instant e "failover"
      | Event.Fault ->
        (match Hashtbl.find_opt open_requests thread with
        | Some r -> r.disk_us <- r.disk_us +. e.Event.latency_us
        | None -> ());
        instant e "fault"
      | Event.Evict -> instant e "evict"
      | Event.Demote -> instant e "demote"
      | Event.Prefetch -> instant e "prefetch"
      | Event.Retry -> instant e "retry"
      | Event.Timeout -> instant e "timeout"
      | Event.Other name -> instant e (escape name)
      | Event.Miss -> ())
    events;
  Hashtbl.fold (fun thread r acc -> (thread, r) :: acc) open_requests []
  |> List.sort compare
  |> List.iter (fun (thread, r) ->
         (* no successor request: give the tail slice its own service time *)
         close_request thread r ~end_us:(r.start_us +. Float.max r.disk_us 1.0));
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n"

let json_of_events events =
  let buf = Buffer.create 65536 in
  to_buffer buf events;
  Buffer.contents buf

let write oc events =
  let buf = Buffer.create 65536 in
  to_buffer buf events;
  Buffer.output_buffer oc buf

(* Sampled-trace export: one track per trace (span trees of one tenant
   overlap in modeled time, so they cannot stack on a shared track), slices
   nested exactly as the span tree nests.  Every slice carries the same
   trace_id/span_id pair `flopt trace` renders — preorder numbering via
   Trace.span_id — so the two views cross-reference by id. *)
let traces_to_buffer buf traces =
  let module Trace = Flo_obs.Trace in
  Buffer.add_string buf "{\"traceEvents\": [";
  let first = ref true in
  emit_json buf first
    {|{"ph":"M","pid":1,"name":"process_name","args":{"name":"sampled traces"}}|};
  List.iteri
    (fun tid (t : Trace.t) ->
      emit_json buf first
        {|{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":"%s tenant=%d %s"}}|}
        tid (Trace.id_to_string t.Trace.trace_id) t.Trace.tenant
        (escape t.Trace.outcome);
      let next = ref 0 in
      let rec go (s : Trace.span) =
        let k = !next in
        incr next;
        emit_json buf first
          {|{"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"name":"%s","cat":"%s","args":{"trace_id":"%s","span_id":"%s","tenant":%d,"window":%d,"shard":%d,"count":%d}}|}
          tid s.Trace.start_us
          (Float.max s.Trace.dur_us 0.001)
          (escape s.Trace.name) (escape t.Trace.outcome)
          (Trace.id_to_string t.Trace.trace_id)
          (Trace.id_to_string (Trace.span_id ~trace_id:t.Trace.trace_id k))
          t.Trace.tenant t.Trace.window t.Trace.shard t.Trace.count;
        List.iter go s.Trace.children
      in
      go t.Trace.root)
    traces;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n"

let json_of_traces traces =
  let buf = Buffer.create 65536 in
  traces_to_buffer buf traces;
  Buffer.contents buf

let write_traces oc traces =
  let buf = Buffer.create 65536 in
  traces_to_buffer buf traces;
  Buffer.output_buffer oc buf
