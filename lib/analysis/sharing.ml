(* Inter-thread block sharing and eviction conflicts for one shared cache.

   Sharing is set-intersection cardinality over the per-block toucher sets;
   conflicts attribute each eviction to the pair (evictor, first thread to
   miss on the victim afterwards).  Both are computed incrementally from the
   cache's event stream in O(1) amortized per event (matrices are
   materialized on demand). *)

module Iset = Set.Make (Int)

type t = {
  touched : (int * int, Iset.t ref) Hashtbl.t;  (* (file, block) -> toucher set *)
  pending : (int * int, int) Hashtbl.t;  (* victim -> evicting thread *)
  conflicts : (int * int, int) Hashtbl.t;  (* (evictor, sufferer) -> count *)
  mutable max_thread : int;
  mutable touches : int;
  mutable evictions : int;
}

let create () =
  {
    touched = Hashtbl.create 256;
    pending = Hashtbl.create 64;
    conflicts = Hashtbl.create 64;
    max_thread = -1;
    touches = 0;
    evictions = 0;
  }

let note_thread t thread =
  if thread < 0 then invalid_arg "Sharing: negative thread id";
  if thread > t.max_thread then t.max_thread <- thread

let touch t ~thread ~file ~block ~hit =
  note_thread t thread;
  t.touches <- t.touches + 1;
  let key = (file, block) in
  (match Hashtbl.find_opt t.pending key with
  | Some evictor ->
    (* first touch after an eviction resolves it: a *miss* by another
       thread means the evictor threw out a block that thread still
       needed; a hit means something (prefetch, demote) re-installed the
       block first and the eviction hurt nobody *)
    Hashtbl.remove t.pending key;
    if (not hit) && thread <> evictor then
      Hashtbl.replace t.conflicts (evictor, thread)
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.conflicts (evictor, thread)))
  | None -> ());
  match Hashtbl.find_opt t.touched key with
  | Some set -> if not (Iset.mem thread !set) then set := Iset.add thread !set
  | None -> Hashtbl.add t.touched key (ref (Iset.singleton thread))

let evict t ~thread ~file ~block =
  note_thread t thread;
  t.evictions <- t.evictions + 1;
  (* an unresolved earlier eviction of the same block stays unresolved:
     nobody asked for the block in between, so it charged no conflict *)
  Hashtbl.replace t.pending (file, block) thread

let threads t = t.max_thread + 1
let touches t = t.touches
let evictions t = t.evictions
let distinct_blocks t = Hashtbl.length t.touched

let shared t =
  let n = threads t in
  let m = Array.make_matrix n n 0 in
  Hashtbl.iter
    (fun _ set ->
      let members = Iset.elements !set in
      List.iter
        (fun i -> List.iter (fun j -> m.(i).(j) <- m.(i).(j) + 1) members)
        members)
    t.touched;
  m

let conflicts t =
  let n = threads t in
  let m = Array.make_matrix n n 0 in
  Hashtbl.iter (fun (e, s) c -> m.(e).(s) <- m.(e).(s) + c) t.conflicts;
  m

let distinct_of t ~thread =
  Hashtbl.fold
    (fun _ set acc -> if Iset.mem thread !set then acc + 1 else acc)
    t.touched 0

let cross_shared t =
  Hashtbl.fold
    (fun _ set acc ->
      let k = Iset.cardinal !set in
      acc + (k * (k - 1) / 2))
    t.touched 0

let shared_blocks t =
  Hashtbl.fold
    (fun _ set acc -> if Iset.cardinal !set > 1 then acc + 1 else acc)
    t.touched 0

let total_conflicts t = Hashtbl.fold (fun _ c acc -> acc + c) t.conflicts 0

let active_threads t =
  let seen = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ set -> Iset.iter (fun th -> Hashtbl.replace seen th ()) !set)
    t.touched;
  Hashtbl.iter (fun (e, s) _ ->
      Hashtbl.replace seen e ();
      Hashtbl.replace seen s ())
    t.conflicts;
  List.sort compare (Hashtbl.fold (fun th () acc -> th :: acc) seen [])
