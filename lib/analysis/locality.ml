(* Per-thread, per-file distinct-block counts — the paper's Step I
   objective (Eq. 4): a thread's I/O working set is the number of distinct
   blocks it touches in each file. *)

type t = {
  seen : (int * int * int, unit) Hashtbl.t;  (* (thread, file, block) *)
  counts : (int * int, int ref) Hashtbl.t;  (* (thread, file) -> distinct *)
  mutable requests : int;
}

let create () = { seen = Hashtbl.create 1024; counts = Hashtbl.create 64; requests = 0 }

let touch t ~thread ~file ~block =
  t.requests <- t.requests + 1;
  let key = (thread, file, block) in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.add t.seen key ();
    match Hashtbl.find_opt t.counts (thread, file) with
    | Some r -> incr r
    | None -> Hashtbl.add t.counts (thread, file) (ref 1)
  end

let requests t = t.requests

let distinct t ~thread ~file =
  match Hashtbl.find_opt t.counts (thread, file) with Some r -> !r | None -> 0

let threads t =
  Hashtbl.fold (fun (th, _) _ acc -> max acc (th + 1)) t.counts 0

let files t =
  List.sort_uniq compare (Hashtbl.fold (fun (_, f) _ acc -> f :: acc) t.counts [])

let per_thread t =
  let tbl = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (th, f) r ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl th) in
      Hashtbl.replace tbl th ((f, !r) :: prev))
    t.counts;
  Hashtbl.fold (fun th l acc -> (th, List.sort compare l) :: acc) tbl []
  |> List.sort compare

let total_distinct t ~thread =
  Hashtbl.fold
    (fun (th, _) r acc -> if th = thread then acc + !r else acc)
    t.counts 0

(* (file, block) -> number of distinct threads that touched it *)
let block_degrees t =
  let deg = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun (_, file, block) () ->
      let key = (file, block) in
      match Hashtbl.find_opt deg key with
      | Some r -> incr r
      | None -> Hashtbl.add deg key (ref 1))
    t.seen;
  deg

let shared_blocks t =
  Hashtbl.fold (fun _ r acc -> if !r >= 2 then acc + 1 else acc) (block_degrees t) 0

let cross_pairs t =
  Hashtbl.fold (fun _ r acc -> acc + (!r * (!r - 1) / 2)) (block_degrees t) 0

let distinct_blocks t = Hashtbl.length (block_degrees t)
