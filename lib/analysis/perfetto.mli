(** Chrome trace-event JSON export ([ui.perfetto.dev],
    [chrome://tracing]).

    Renders a simulator trace as two process groups: per-thread request
    timelines (one complete slice per block request, colored by outcome —
    L1 hit, L2 hit, or disk read — and spanning until the thread's next
    request), and per-cache tracks carrying evictions, demotions,
    prefetches and disk reads as instant events.  Timestamps are the
    trace's simulated microseconds. *)

val json_of_events : Flo_obs.Event.t list -> string
(** The whole trace as one JSON document ([{"traceEvents": [...], ...}]).
    Events must be in trace (emission) order, as read from a JSONL file or
    a ring sink. *)

val write : out_channel -> Flo_obs.Event.t list -> unit
