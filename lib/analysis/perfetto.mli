(** Chrome trace-event JSON export ([ui.perfetto.dev],
    [chrome://tracing]).

    Renders a simulator trace as two process groups: per-thread request
    timelines (one complete slice per block request, colored by outcome —
    L1 hit, L2 hit, or disk read — and spanning until the thread's next
    request), and per-cache tracks carrying evictions, demotions,
    prefetches and disk reads as instant events.  Timestamps are the
    trace's simulated microseconds. *)

val json_of_events : Flo_obs.Event.t list -> string
(** The whole trace as one JSON document ([{"traceEvents": [...], ...}]).
    Events must be in trace (emission) order, as read from a JSONL file or
    a ring sink.  Request slices carry stable [trace_id]/[span_id] args —
    a pure function of the (thread, request-sequence) position via
    {!Flo_obs.Trace.mint_id}, so repeated exports of the same trace are
    byte-identical and cross-reference with [flopt trace] output. *)

val write : out_channel -> Flo_obs.Event.t list -> unit

val json_of_traces : Flo_obs.Trace.t list -> string
(** Sampled-trace span trees as one document: one track per trace, one
    nested slice per span, every slice carrying the [trace_id]/[span_id]
    pair [flopt trace] renders ({!Flo_obs.Trace.span_id} preorder). *)

val write_traces : out_channel -> Flo_obs.Trace.t list -> unit
