(* LRU stack distances over one cache's lookup stream.

   The classic Fenwick-tree formulation: every distinct block keeps a single
   "1" at the sequence slot of its most recent touch, so the number of
   distinct blocks touched strictly between two touches of the same block is
   a prefix-sum difference.  O(log n) per touch, O(n) memory in the stream
   length. *)

type t = {
  mutable tree : int array;  (* 1-based Fenwick array over touch slots *)
  mutable n : int;  (* touch slots used so far *)
  last : (int * int, int) Hashtbl.t;  (* (file, block) -> slot of last touch *)
  hist : Flo_obs.Histogram.t;
  mutable cold : int;
}

(* powers-of-two buckets: reuse distances read directly against cache
   capacities in blocks, and 32 buckets span 2^31 distinct blocks *)
let create () =
  {
    tree = Array.make 64 0;
    n = 0;
    last = Hashtbl.create 256;
    hist = Flo_obs.Histogram.create ~lo:1.0 ~gamma:2.0 ~buckets:32 ();
    cold = 0;
  }

(* 1-based usable slots; updates must propagate to every allocated ancestor
   (NOT just up to [t.n]: slots beyond the current length are queried later,
   once the stream grows past them) *)
let cap t = Array.length t.tree - 1

let update t i delta =
  let c = cap t in
  let i = ref i in
  while !i <= c do
    t.tree.(!i) <- t.tree.(!i) + delta;
    i := !i + (!i land - !i)
  done

(* growing reallocates, then replays the one marker per distinct block (at
   its last-touch slot) into the wider tree *)
let ensure t slot =
  if slot > cap t then begin
    let cap' = max slot (2 * cap t) in
    t.tree <- Array.make (cap' + 1) 0;
    Hashtbl.iter (fun _ s -> update t s 1) t.last
  end

(* number of "last touches" at slots <= i *)
let query t i =
  let i = ref i and acc = ref 0 in
  while !i > 0 do
    acc := !acc + t.tree.(!i);
    i := !i - (!i land - !i)
  done;
  !acc

let touch t ~file ~block =
  let s = t.n + 1 in
  ensure t s;
  t.n <- s;
  let key = (file, block) in
  match Hashtbl.find_opt t.last key with
  | None ->
    t.cold <- t.cold + 1;
    Hashtbl.add t.last key s;
    update t s 1;
    None
  | Some p ->
    let d = query t (s - 1) - query t p in
    update t p (-1);
    update t s 1;
    Hashtbl.replace t.last key s;
    Flo_obs.Histogram.add t.hist (float_of_int d);
    Some d

let touches t = t.n
let cold_touches t = t.cold
let distinct_blocks t = Hashtbl.length t.last
let histogram t = t.hist

let reuses t = Flo_obs.Histogram.count t.hist

let below t threshold =
  if threshold < 0 then 0
  else begin
    let bounds = Flo_obs.Histogram.bounds t.hist in
    let counts = Flo_obs.Histogram.counts t.hist in
    let acc = ref 0 in
    Array.iteri
      (fun i b -> if b <= float_of_int threshold then acc := !acc + counts.(i))
      bounds;
    !acc
  end
