type entry = {
  block : Block.t;
  mutable freq : int;
  mutable level : int;
  mutable expire : int;
  mutable node : Block.t Dll.node option;
}

type state = {
  capacity : int;
  queues : Block.t Dll.t array;
  tbl : entry Block.Tbl.t;
  hist : int Block.Tbl.t; (* evicted block -> remembered frequency *)
  hist_fifo : Block.t Queue.t;
  hist_cap : int;
  lifetime : int;
  mutable time : int;
  mutable count : int;
}

let level_of_freq queues f =
  let rec go l f = if f <= 1 || l >= queues - 1 then l else go (l + 1) (f / 2) in
  go 0 f

let enqueue s e =
  e.level <- level_of_freq (Array.length s.queues) e.freq;
  e.expire <- s.time + s.lifetime;
  e.node <- Some (Dll.push_front s.queues.(e.level) e.block)

(* Demote the head-of-expiry candidate: MQ checks the LRU block of the
   lowest non-empty queue; if its lifetime expired, move it one queue down. *)
let adjust s =
  let rec lowest l =
    if l >= Array.length s.queues then None
    else if Dll.is_empty s.queues.(l) then lowest (l + 1)
    else Some l
  in
  match lowest 1 with
  | None -> ()
  | Some l -> (
    match Dll.peek_back s.queues.(l) with
    | None -> ()
    | Some n ->
      let b = Dll.value n in
      let e = Block.Tbl.find s.tbl b in
      if e.expire < s.time then begin
        Dll.remove s.queues.(l) n;
        e.level <- l - 1;
        e.expire <- s.time + s.lifetime;
        e.node <- Some (Dll.push_front s.queues.(l - 1) e.block)
      end)

let tick s =
  s.time <- s.time + 1;
  adjust s

let remember s b freq =
  if not (Block.Tbl.mem s.hist b) then begin
    if Queue.length s.hist_fifo >= s.hist_cap then begin
      match Queue.take_opt s.hist_fifo with
      | Some old -> Block.Tbl.remove s.hist old
      | None -> ()
    end;
    Queue.add b s.hist_fifo
  end;
  Block.Tbl.replace s.hist b freq

let evict s =
  let rec go l =
    if l >= Array.length s.queues then None
    else
      match Dll.pop_back s.queues.(l) with
      | Some victim ->
        let e = Block.Tbl.find s.tbl victim in
        remember s victim e.freq;
        Block.Tbl.remove s.tbl victim;
        s.count <- s.count - 1;
        Some victim
      | None -> go (l + 1)
  in
  go 0

let touch s b =
  tick s;
  match Block.Tbl.find_opt s.tbl b with
  | None -> false
  | Some e ->
    (match e.node with Some n -> Dll.remove s.queues.(e.level) n | None -> ());
    e.freq <- e.freq + 1;
    enqueue s e;
    true

let insert s b =
  tick s;
  match Block.Tbl.find_opt s.tbl b with
  | Some e ->
    (match e.node with Some n -> Dll.remove s.queues.(e.level) n | None -> ());
    e.freq <- e.freq + 1;
    enqueue s e;
    None
  | None ->
    let victim = if s.count >= s.capacity then evict s else None in
    let freq =
      match Block.Tbl.find_opt s.hist b with
      | Some f ->
        Block.Tbl.remove s.hist b;
        f + 1
      | None -> 1
    in
    let e = { block = b; freq; level = 0; expire = 0; node = None } in
    Block.Tbl.add s.tbl b e;
    s.count <- s.count + 1;
    enqueue s e;
    victim

let remove s b =
  match Block.Tbl.find_opt s.tbl b with
  | None -> false
  | Some e ->
    (match e.node with Some n -> Dll.remove s.queues.(e.level) n | None -> ());
    Block.Tbl.remove s.tbl b;
    s.count <- s.count - 1;
    true

let create_custom ~queues ~lifetime ~capacity : Policy.t =
  Policy.check_capacity capacity;
  if queues < 2 then invalid_arg "Mq.create: queues < 2";
  let lifetime = match lifetime with Some l -> l | None -> 4 * capacity in
  let s =
    {
      capacity;
      queues = Array.init queues (fun _ -> Dll.create ());
      tbl = Block.Tbl.create (2 * capacity);
      hist = Block.Tbl.create (8 * capacity);
      hist_fifo = Queue.create ();
      hist_cap = 4 * capacity;
      lifetime;
      time = 0;
      count = 0;
    }
  in
  {
    Policy.name = "mq";
    capacity;
    touch = touch s;
    insert = insert s;
    insert_cold = insert s;
    remove = remove s;
    contains = (fun b -> Block.Tbl.mem s.tbl b);
    size = (fun () -> s.count);
    clear =
      (fun () ->
        Array.iter Dll.clear s.queues;
        Block.Tbl.clear s.tbl;
        Block.Tbl.clear s.hist;
        Queue.clear s.hist_fifo;
        s.time <- 0;
        s.count <- 0);
    iter = (fun f -> Block.Tbl.iter (fun b _ -> f b) s.tbl);
    fast = None;
  }

let create ~capacity = create_custom ~queues:8 ~lifetime:None ~capacity
