(* The production LRU wraps Flat_lru: the closures delegate to the flat
   state and [fast = Some s] exposes it so Hierarchy can devirtualize.  The
   original Dll+Hashtbl implementation survives below as [reference] — the
   executable spec the flat kernel is golden-tested against (the
   Tracegen.reference_streams pattern). *)

let create ~capacity : Policy.t =
  Policy.check_capacity capacity;
  let s = Flat_lru.create ~capacity in
  let victim v = if v < 0 then None else Some (Block.unsafe_of_int v) in
  {
    Policy.name = "lru";
    capacity;
    touch = (fun b -> Flat_lru.touch s (b :> int));
    insert = (fun b -> victim (Flat_lru.insert s (b :> int)));
    insert_cold = (fun b -> victim (Flat_lru.insert_cold s (b :> int)));
    remove = (fun b -> Flat_lru.remove s (b :> int));
    contains = (fun b -> Flat_lru.contains s (b :> int));
    size = (fun () -> Flat_lru.size s);
    clear = (fun () -> Flat_lru.clear s);
    iter = (fun f -> Flat_lru.iter (fun k -> f (Block.unsafe_of_int k)) s);
    fast = Some s;
  }

(* ---- reference implementation (pre-flat kernel), kept verbatim ---- *)

type state = {
  capacity : int;
  tbl : Block.t Dll.node Block.Tbl.t;
  order : Block.t Dll.t; (* front = MRU *)
}

let touch s b =
  match Block.Tbl.find_opt s.tbl b with
  | None -> false
  | Some n ->
    Dll.move_front s.order n;
    true

let evict s =
  match Dll.pop_back s.order with
  | None -> None
  | Some victim ->
    Block.Tbl.remove s.tbl victim;
    Some victim

let add ~cold s b =
  match Block.Tbl.find_opt s.tbl b with
  | Some n ->
    Dll.move_front s.order n;
    None
  | None ->
    let victim = if Dll.length s.order >= s.capacity then evict s else None in
    let n = if cold then Dll.push_back s.order b else Dll.push_front s.order b in
    Block.Tbl.add s.tbl b n;
    victim

let remove s b =
  match Block.Tbl.find_opt s.tbl b with
  | None -> false
  | Some n ->
    Dll.remove s.order n;
    Block.Tbl.remove s.tbl b;
    true

let reference ~capacity : Policy.t =
  Policy.check_capacity capacity;
  let s = { capacity; tbl = Block.Tbl.create (2 * capacity); order = Dll.create () } in
  {
    Policy.name = "lru";
    capacity;
    touch = touch s;
    insert = add ~cold:false s;
    insert_cold = add ~cold:true s;
    remove = remove s;
    contains = (fun b -> Block.Tbl.mem s.tbl b);
    size = (fun () -> Dll.length s.order);
    clear =
      (fun () ->
        Block.Tbl.clear s.tbl;
        Dll.clear s.order);
    iter = (fun f -> Dll.iter f s.order);
    fast = None;
  }
