(* A block id is a single immediate int: [file] in the high bits, [index]
   in the low bits.  Blocks are unboxed everywhere — streams are plain int
   arrays, equality is one compare, hashing is the identity — which is what
   lets the simulation kernel run allocation-free (see Flat_lru). *)

type t = int

let index_bits = 36
let index_mask = (1 lsl index_bits) - 1
let max_index = index_mask
let max_file = (1 lsl (62 - index_bits)) - 1

let make ~file ~index =
  if file < 0 || index < 0 then invalid_arg "Block.make: negative component";
  if file > max_file || index > max_index then
    invalid_arg "Block.make: component out of range";
  (file lsl index_bits) lor index

let file t = t lsr index_bits
let index t = t land index_mask
let to_int t = t
let unsafe_of_int i = i

(* file occupies the high bits, so int order is (file, index) order *)
let compare (a : int) (b : int) = compare a b
let equal (a : int) (b : int) = a = b
let hash t = t

let pp ppf t = Format.fprintf ppf "%d:%d" (file t) (index t)

let of_offset ~block_elems ~file off =
  if off < 0 then invalid_arg "Block.of_offset: negative offset";
  make ~file ~index:(off / block_elems)

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Tbl = Hashtbl.Make (Key)
module Set = Set.Make (Key)
