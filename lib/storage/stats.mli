(** Per-cache access counters.

    [prefetches] counts blocks a storage node pulled in speculatively
    (sequential readahead); [prefetch_hits] counts those prefetched blocks
    later claimed by a demand access before being evicted — the useful
    fraction of readahead work. *)

type t = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable demotions : int;
  mutable prefetches : int;
  mutable prefetch_hits : int;
}

val create : unit -> t
val record_hit : t -> unit
val record_miss : t -> unit
val record_eviction : t -> unit
val record_demotion : t -> unit
val record_prefetch : t -> unit
val record_prefetch_hit : t -> unit

val miss_rate : t -> float
(** [misses / accesses]; 0 when no accesses. *)

val hit_rate : t -> float

val prefetch_hit_rate : t -> float
(** [prefetch_hits / prefetches]; 0 when nothing was prefetched. *)

val merge : t list -> t
(** Fresh aggregate of the given counters. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
