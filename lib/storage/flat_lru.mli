(** Allocation-free LRU over preallocated int arrays.

    The replacement state lives in fixed arrays sized at [create]: an
    intrusive recency list threaded through prev/next slot indices, and an
    open-addressing key → slot hash (linear probing with backward-shift
    deletion, so there are no tombstones and never a rehash).  Keys are
    packed {!Block.t} ints; "no victim" / "miss" results are the sentinel
    {!nil} instead of an [option].  No operation allocates at steady state —
    [test/test_sim_kernel.ml] asserts this with [Gc.minor_words].

    Semantics — hit/miss results, eviction choice and tie order — are
    bit-identical to the closure-based reference implementation
    ({!Lru.reference}, Dll + Hashtbl); a qcheck law in the test suite pins
    the equivalence over arbitrary operation strings. *)

type t

val nil : int
(** Sentinel (-1) returned by {!insert} / {!insert_cold} when nothing was
    evicted.  Valid keys are non-negative, so [v >= 0] tests "victim". *)

val create : capacity:int -> t
(** @raise Invalid_argument when capacity < 1. *)

val capacity : t -> int
val size : t -> int

val touch : t -> int -> bool
(** Lookup; [true] on hit.  A hit moves the key to the MRU end. *)

val insert : t -> int -> int
(** Cache the key at the MRU end; returns the evicted LRU key or {!nil}.
    Inserting a resident key refreshes it and evicts nothing. *)

val insert_cold : t -> int -> int
(** Like {!insert} but the key enters at the LRU end. *)

val remove : t -> int -> bool
(** Drop a key; [true] if it was resident. *)

val contains : t -> int -> bool
(** Lookup without refreshing. *)

val clear : t -> unit

val iter : (int -> unit) -> t -> unit
(** MRU → LRU order, matching the reference [Dll.iter]. *)
