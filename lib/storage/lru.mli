(** Least-recently-used replacement — the paper's default policy.

    O(1) touch/insert/remove.  [insert] places at the MRU end,
    [insert_cold] at the LRU end.

    {!create} is backed by the allocation-free {!Flat_lru} kernel and
    populates {!Policy.t.fast} so {!Hierarchy} can devirtualize its hot
    path.  {!reference} is the original closure implementation over a hash
    table and an intrusive doubly-linked list ({!Dll}) — semantically
    bit-identical, kept as the executable spec for golden-equality tests
    and to exercise the generic dispatch path. *)

val create : Policy.factory

val reference : Policy.factory
(** Pre-flat-kernel implementation; [fast = None], so hierarchies built
    from it always take the generic closure path. *)
