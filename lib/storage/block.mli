(** Data blocks: the unit of storage-cache management and striping.

    A block is identified by the file it belongs to (one file per
    disk-resident array) and its index within that file's linear block
    space.  Block size is a topology parameter; this module is agnostic.

    The representation is a packed immediate int — [file] in the high bits,
    [index] in the low [index_bits] bits — so blocks are unboxed, block
    streams are plain [int array]s, and hashing is identity-cheap.  The
    packing is an implementation detail: construct with {!make} and coerce
    with [(b :> int)] / {!unsafe_of_int} only at flat-kernel boundaries. *)

type t = private int

val index_bits : int
(** Number of low bits holding [index]; [file] occupies the rest. *)

val max_file : int
val max_index : int

val make : file:int -> index:int -> t
(** @raise Invalid_argument on a negative or out-of-range file or index. *)

val to_int : t -> int
(** The packed representation (also available as [(b :> int)]). *)

val unsafe_of_int : int -> t
(** Reinterpret a packed int as a block without validation.  Only for
    values previously obtained from [(b :> int)] / {!to_int}. *)

val file : t -> int
val index : t -> int

val compare : t -> t -> int
(** Lexicographic on (file, index) — the packed int's natural order. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

val of_offset : block_elems:int -> file:int -> int -> t
(** Block containing the element at a file offset (in elements). *)

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
