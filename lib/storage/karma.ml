type hint = { file : int; lo_block : int; hi_block : int; accesses : float }

type cls = { file : int; lo : int; hi : int; density : float }

let size c = c.hi - c.lo + 1

module Int_map = Map.Make (Int)

let classes hints =
  List.iter
    (fun h ->
      if h.lo_block < 0 || h.hi_block < h.lo_block then invalid_arg "Karma: bad hint range";
      if h.accesses < 0. then invalid_arg "Karma: negative accesses")
    hints;
  let by_file =
    List.fold_left
      (fun m (h : hint) ->
        Int_map.update h.file (fun l -> Some (h :: Option.value l ~default:[])) m)
      Int_map.empty hints
  in
  Int_map.fold
    (fun file hs acc ->
      let boundaries =
        List.concat_map (fun h -> [ h.lo_block; h.hi_block + 1 ]) hs
        |> List.sort_uniq compare
      in
      let rec segments = function
        | lo :: (hi :: _ as rest) ->
          let density =
            List.fold_left
              (fun d h ->
                if h.lo_block <= lo && hi - 1 <= h.hi_block then
                  d +. (h.accesses /. float_of_int (h.hi_block - h.lo_block + 1))
                else d)
              0. hs
          in
          if density > 0. then { file; lo; hi = hi - 1; density } :: segments rest
          else segments rest
        | _ -> []
      in
      acc @ segments boundaries)
    by_file []

type plan = {
  global : cls array;
  l1_of_cls : int array array; (* per io node: indices into global *)
  l2_of_cls : int array;
}

let by_density_desc a b =
  let c = compare b.density a.density in
  if c <> 0 then c else compare (a.file, a.lo) (b.file, b.lo)

let greedy_fill capacity candidates =
  (* no class splitting: take a class only if it fits in the remainder *)
  let remaining = ref capacity in
  List.filter
    (fun (_, c) ->
      if size c <= !remaining then begin
        remaining := !remaining - size c;
        true
      end
      else false)
    candidates
  |> List.map fst

let overlaps (h : hint) (c : cls) =
  h.file = c.file && h.lo_block <= c.hi && c.lo <= h.hi_block

let plan ~l1_hints ~l1_capacity ~l2_capacity_total =
  let all_hints = Array.to_list l1_hints |> List.concat in
  let global = Array.of_list (classes all_hints) in
  let indexed = Array.to_list (Array.mapi (fun i c -> (i, c)) global) in
  let pinned = Hashtbl.create 64 in
  let l1_of_cls =
    Array.map
      (fun hints ->
        let touched = List.filter (fun (_, c) -> List.exists (fun h -> overlaps h c) hints) indexed in
        let sorted = List.sort (fun (_, a) (_, b) -> by_density_desc a b) touched in
        let chosen = greedy_fill l1_capacity sorted in
        List.iter (fun i -> Hashtbl.replace pinned i ()) chosen;
        Array.of_list chosen)
      l1_hints
  in
  let leftovers =
    List.filter (fun (i, _) -> not (Hashtbl.mem pinned i)) indexed
    |> List.sort (fun (_, a) (_, b) -> by_density_desc a b)
  in
  let l2_of_cls = Array.of_list (greedy_fill l2_capacity_total leftovers) in
  { global; l1_of_cls; l2_of_cls }

let l1_assigned plan ~io = Array.to_list (Array.map (fun i -> plan.global.(i)) plan.l1_of_cls.(io))
let l2_assigned plan = Array.to_list (Array.map (fun i -> plan.global.(i)) plan.l2_of_cls)

(* Lookup structure: per file, sorted (lo, hi, class index) for one level's
   assigned classes. *)
let range_index global indices =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      let c = global.(i) in
      let l = try Hashtbl.find tbl c.file with Not_found -> [] in
      Hashtbl.replace tbl c.file ((c.lo, c.hi, i) :: l))
    indices;
  let sorted = Hashtbl.create 16 in
  Hashtbl.iter
    (fun file l ->
      Hashtbl.replace sorted file
        (Array.of_list (List.sort (fun (a, _, _) (b, _, _) -> compare a b) l)))
    tbl;
  sorted

let find_class sorted b =
  match Hashtbl.find_opt sorted (Block.file b) with
  | None -> None
  | Some ranges ->
    let idx = Block.index b in
    let rec bsearch lo hi =
      if lo > hi then None
      else
        let mid = (lo + hi) / 2 in
        let l, h, i = ranges.(mid) in
        if idx < l then bsearch lo (mid - 1)
        else if idx > h then bsearch (mid + 1) hi
        else Some i
    in
    bsearch 0 (Array.length ranges - 1)

let partitioned_cache ~name global indices ~quota_of =
  let sorted = range_index global indices in
  let parts = Hashtbl.create 16 in
  let capacity = ref 0 in
  Array.iter
    (fun i ->
      let q = max 1 (quota_of global.(i)) in
      capacity := !capacity + q;
      Hashtbl.replace parts i (Lru.create ~capacity:q))
    indices;
  let capacity = !capacity in
  let part_of b = Option.bind (find_class sorted b) (Hashtbl.find_opt parts) in
  let fold f init =
    Hashtbl.fold (fun _ (p : Policy.t) acc -> f p acc) parts init
  in
  {
    Policy.name;
    capacity;
    touch = (fun b -> match part_of b with None -> false | Some p -> p.Policy.touch b);
    insert = (fun b -> match part_of b with None -> None | Some p -> p.Policy.insert b);
    insert_cold =
      (fun b -> match part_of b with None -> None | Some p -> p.Policy.insert_cold b);
    remove = (fun b -> match part_of b with None -> false | Some p -> p.Policy.remove b);
    contains =
      (fun b -> match part_of b with None -> false | Some p -> p.Policy.contains b);
    size = (fun () -> fold (fun p acc -> acc + p.Policy.size ()) 0);
    clear = (fun () -> Hashtbl.iter (fun _ (p : Policy.t) -> p.Policy.clear ()) parts);
    iter = (fun f -> Hashtbl.iter (fun _ (p : Policy.t) -> p.Policy.iter f) parts);
    fast = None;
  }

let l1_cache plan ~io =
  partitioned_cache ~name:"karma-l1" plan.global plan.l1_of_cls.(io) ~quota_of:size

let l2_cache plan ~storage_nodes =
  partitioned_cache ~name:"karma-l2" plan.global plan.l2_of_cls
    ~quota_of:(fun c -> (size c + storage_nodes - 1) / storage_nodes)
