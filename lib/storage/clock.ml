type slot = { mutable occupant : Block.t option; mutable referenced : bool }

type state = {
  capacity : int;
  slots : slot array;
  tbl : int Block.Tbl.t; (* block -> slot index *)
  mutable hand : int;
  mutable count : int;
}

let touch s b =
  match Block.Tbl.find_opt s.tbl b with
  | None -> false
  | Some i ->
    s.slots.(i).referenced <- true;
    true

(* Advance the hand until a victim with a clear reference bit is found. *)
let rec find_victim s =
  let slot = s.slots.(s.hand) in
  match slot.occupant with
  | None -> s.hand
  | Some _ when not slot.referenced ->
    s.hand
  | Some _ ->
    slot.referenced <- false;
    s.hand <- (s.hand + 1) mod s.capacity;
    find_victim s

let insert ?(referenced = true) s b =
  if Block.Tbl.mem s.tbl b then begin
    ignore (touch s b);
    None
  end
  else begin
    (* below capacity, prefer an empty slot so nothing is evicted early *)
    let find_empty () =
      let rec go k =
        if k = s.capacity then find_victim s
        else
          let i = (s.hand + k) mod s.capacity in
          if s.slots.(i).occupant = None then i else go (k + 1)
      in
      go 0
    in
    let i = if s.count < s.capacity then find_empty () else find_victim s in
    let slot = s.slots.(i) in
    let victim = slot.occupant in
    (match victim with
    | Some v ->
      Block.Tbl.remove s.tbl v;
      s.count <- s.count - 1
    | None -> ());
    slot.occupant <- Some b;
    slot.referenced <- referenced;
    Block.Tbl.replace s.tbl b i;
    s.count <- s.count + 1;
    s.hand <- (i + 1) mod s.capacity;
    victim
  end

let remove s b =
  match Block.Tbl.find_opt s.tbl b with
  | None -> false
  | Some i ->
    s.slots.(i).occupant <- None;
    s.slots.(i).referenced <- false;
    Block.Tbl.remove s.tbl b;
    s.count <- s.count - 1;
    true

let create ~capacity : Policy.t =
  Policy.check_capacity capacity;
  let s =
    {
      capacity;
      slots = Array.init capacity (fun _ -> { occupant = None; referenced = false });
      tbl = Block.Tbl.create (2 * capacity);
      hand = 0;
      count = 0;
    }
  in
  {
    Policy.name = "clock";
    capacity;
    touch = touch s;
    insert = (fun b -> insert s b);
    insert_cold = (fun b -> insert ~referenced:false s b);
    remove = remove s;
    contains = (fun b -> Block.Tbl.mem s.tbl b);
    size = (fun () -> s.count);
    clear =
      (fun () ->
        Array.iter
          (fun slot ->
            slot.occupant <- None;
            slot.referenced <- false)
          s.slots;
        Block.Tbl.clear s.tbl;
        s.hand <- 0;
        s.count <- 0);
    iter = (fun f -> Block.Tbl.iter (fun b _ -> f b) s.tbl);
    fast = None;
  }
