(** Runtime-pluggable cache replacement policies.

    A policy instance owns a fixed-capacity set of blocks and decides
    evictions.  Instances are records of closures so that hierarchies can mix
    policies chosen at run time (the paper stresses that the layout pass is
    orthogonal to the caching policy). *)

type t = {
  name : string;
  capacity : int;
  touch : Block.t -> bool;
      (** Lookup; [true] on hit.  A hit refreshes the block's standing
          (recency, frequency, ... as the policy defines). *)
  insert : Block.t -> Block.t option;
      (** Cache the block at full standing; returns the victim evicted to
          make room, if any.  Inserting a resident block refreshes it and
          evicts nothing. *)
  insert_cold : Block.t -> Block.t option;
      (** Cache the block at the lowest standing the policy supports (e.g.
          LRU tail).  Policies without a cold end may alias {!insert}. *)
  remove : Block.t -> bool;
      (** Drop a block (exclusive-caching hook); [true] if it was resident. *)
  contains : Block.t -> bool;  (** Lookup without refreshing. *)
  size : unit -> int;
  clear : unit -> unit;
  iter : (Block.t -> unit) -> unit;
  fast : Flat_lru.t option;
      (** The flat allocation-free state backing the closures, when the
          policy is an exact LRU ({!Lru.create} populates it; every other
          policy leaves [None]).  {!Hierarchy} resolves this once at
          creation to devirtualize its hot path; the closures above must
          view the same state, so both call paths stay interchangeable. *)
}

type factory = capacity:int -> t
(** All policy modules expose [create : factory]. *)

val check_capacity : int -> unit
(** @raise Invalid_argument when capacity < 1 (shared guard for factories). *)
