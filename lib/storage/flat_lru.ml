(* LRU over preallocated int arrays: an intrusive recency list threaded
   through prev/next slot indices plus an open-addressing key -> slot hash
   (linear probing, backward-shift deletion, load factor <= 1/2).  No
   [option], no boxing, no per-op allocation — every operation at steady
   state touches only the arrays allocated in [create].

   Eviction and tie order are bit-identical to the reference Dll+Hashtbl
   implementation in [Lru.reference]: insert on a miss evicts the tail
   first (when full), then links the new block at the head ([insert]) or
   tail ([insert_cold]); insert on a resident block refreshes it and
   evicts nothing.  [test/test_sim_kernel.ml] pins the law. *)

type t = {
  capacity : int;
  key : int array; (* slot -> packed block, -1 when free *)
  prev : int array; (* slot -> slot toward the head (MRU), -1 at head *)
  next : int array; (* slot -> slot toward the tail (LRU), -1 at tail;
                       also chains the free list *)
  hkey : int array; (* probe index -> packed block, -1 when empty *)
  hslot : int array; (* probe index -> slot, valid where hkey >= 0 *)
  mask : int; (* Array.length hkey - 1 (power of two) *)
  shift : int; (* 63 - log2 (Array.length hkey): Fibonacci bucket shift *)
  mutable head : int;
  mutable tail : int;
  mutable free : int;
  mutable size : int;
}

let nil = -1

(* Fibonacci hashing: multiply by an odd 63-bit constant and keep the HIGH
   bits of the product — every bit of the key (file and index alike)
   influences the bucket, unlike a low-bit mask.  Internal only — no
   modeled output depends on probe order. *)
let home t k = (k * 0x2545_f491_4f6c_dd1d) lsr t.shift

let create ~capacity =
  if capacity < 1 then invalid_arg "cache capacity < 1";
  let hsize =
    let rec pow2 n = if n >= 2 * capacity then n else pow2 (n * 2) in
    pow2 8
  in
  let t =
    {
      capacity;
      key = Array.make capacity (-1);
      prev = Array.make capacity (-1);
      next = Array.init capacity (fun i -> if i + 1 < capacity then i + 1 else -1);
      hkey = Array.make hsize (-1);
      hslot = Array.make hsize 0;
      mask = hsize - 1;
      shift =
        (let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
         63 - log2 hsize);
      head = -1;
      tail = -1;
      free = 0;
      size = 0;
    }
  in
  t

let capacity t = t.capacity
let size t = t.size

(* slot holding [k], or -1.  The table is never full (hsize >= 2*capacity),
   so probing always reaches an empty bucket. *)
let find t k =
  let i = ref (home t k) in
  let res = ref (-2) in
  while !res = -2 do
    let hk = t.hkey.(!i) in
    if hk = k then res := t.hslot.(!i)
    else if hk < 0 then res := -1
    else i := (!i + 1) land t.mask
  done;
  !res

let hadd t k slot =
  let i = ref (home t k) in
  while t.hkey.(!i) >= 0 do
    i := (!i + 1) land t.mask
  done;
  t.hkey.(!i) <- k;
  t.hslot.(!i) <- slot

(* Backward-shift deletion (Knuth 6.4, algorithm R): no tombstones, so the
   table never degrades and never needs a rehash. *)
let hdel t k =
  let i = ref (home t k) in
  while t.hkey.(!i) <> k do
    i := (!i + 1) land t.mask
  done;
  t.hkey.(!i) <- -1;
  let free = ref !i and j = ref !i and scanning = ref true in
  while !scanning do
    j := (!j + 1) land t.mask;
    let hk = t.hkey.(!j) in
    if hk < 0 then scanning := false
    else begin
      let h = home t hk in
      (* the entry at [j] may fill the hole iff its home lies cyclically at
         or before the hole, i.e. the hole is on its probe path *)
      if (!j - h) land t.mask >= (!j - !free) land t.mask then begin
        t.hkey.(!free) <- hk;
        t.hslot.(!free) <- t.hslot.(!j);
        t.hkey.(!j) <- -1;
        free := !j
      end
    end
  done

let unlink t slot =
  let p = t.prev.(slot) and n = t.next.(slot) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p

let push_front t slot =
  t.prev.(slot) <- -1;
  t.next.(slot) <- t.head;
  if t.head >= 0 then t.prev.(t.head) <- slot else t.tail <- slot;
  t.head <- slot

let push_back t slot =
  t.next.(slot) <- -1;
  t.prev.(slot) <- t.tail;
  if t.tail >= 0 then t.next.(t.tail) <- slot else t.head <- slot;
  t.tail <- slot

let release t slot =
  t.key.(slot) <- -1;
  t.next.(slot) <- t.free;
  t.free <- slot;
  t.size <- t.size - 1

(* evict the LRU block; only called when size >= capacity >= 1 *)
let evict t =
  let slot = t.tail in
  let k = t.key.(slot) in
  unlink t slot;
  hdel t k;
  release t slot;
  k

let touch t k =
  if k < 0 then invalid_arg "Flat_lru: negative key";
  let slot = find t k in
  if slot < 0 then false
  else begin
    if t.head <> slot then begin
      unlink t slot;
      push_front t slot
    end;
    true
  end

let add ~cold t k =
  if k < 0 then invalid_arg "Flat_lru: negative key";
  let slot = find t k in
  if slot >= 0 then begin
    if t.head <> slot then begin
      unlink t slot;
      push_front t slot
    end;
    nil
  end
  else begin
    let victim = if t.size >= t.capacity then evict t else nil in
    let slot = t.free in
    t.free <- t.next.(slot);
    t.key.(slot) <- k;
    hadd t k slot;
    if cold then push_back t slot else push_front t slot;
    t.size <- t.size + 1;
    victim
  end

let insert t k = add ~cold:false t k
let insert_cold t k = add ~cold:true t k

let remove t k =
  if k < 0 then invalid_arg "Flat_lru: negative key";
  let slot = find t k in
  if slot < 0 then false
  else begin
    unlink t slot;
    hdel t k;
    release t slot;
    true
  end

let contains t k =
  if k < 0 then invalid_arg "Flat_lru: negative key";
  find t k >= 0

let clear t =
  Array.fill t.key 0 t.capacity (-1);
  Array.fill t.hkey 0 (t.mask + 1) (-1);
  for i = 0 to t.capacity - 1 do
    t.next.(i) <- (if i + 1 < t.capacity then i + 1 else -1)
  done;
  t.head <- -1;
  t.tail <- -1;
  t.free <- 0;
  t.size <- 0

let iter f t =
  let slot = ref t.head in
  while !slot >= 0 do
    f t.key.(!slot);
    slot := t.next.(!slot)
  done
