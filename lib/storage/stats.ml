type t = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable demotions : int;
  mutable prefetches : int;
  mutable prefetch_hits : int;
}

let create () =
  {
    accesses = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    demotions = 0;
    prefetches = 0;
    prefetch_hits = 0;
  }

let record_hit t =
  t.accesses <- t.accesses + 1;
  t.hits <- t.hits + 1

let record_miss t =
  t.accesses <- t.accesses + 1;
  t.misses <- t.misses + 1

let record_eviction t = t.evictions <- t.evictions + 1
let record_demotion t = t.demotions <- t.demotions + 1
let record_prefetch t = t.prefetches <- t.prefetches + 1
let record_prefetch_hit t = t.prefetch_hits <- t.prefetch_hits + 1

let miss_rate t =
  if t.accesses = 0 then 0. else float_of_int t.misses /. float_of_int t.accesses

let hit_rate t =
  if t.accesses = 0 then 0. else float_of_int t.hits /. float_of_int t.accesses

let prefetch_hit_rate t =
  if t.prefetches = 0 then 0.
  else float_of_int t.prefetch_hits /. float_of_int t.prefetches

let merge l =
  let m = create () in
  List.iter
    (fun s ->
      m.accesses <- m.accesses + s.accesses;
      m.hits <- m.hits + s.hits;
      m.misses <- m.misses + s.misses;
      m.evictions <- m.evictions + s.evictions;
      m.demotions <- m.demotions + s.demotions;
      m.prefetches <- m.prefetches + s.prefetches;
      m.prefetch_hits <- m.prefetch_hits + s.prefetch_hits)
    l;
  m

let reset t =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.demotions <- 0;
  t.prefetches <- 0;
  t.prefetch_hits <- 0

let pp ppf t =
  Format.fprintf ppf "acc=%d hit=%d miss=%d (%.1f%%) evict=%d demote=%d" t.accesses
    t.hits t.misses (100. *. miss_rate t) t.evictions t.demotions;
  if t.prefetches > 0 || t.prefetch_hits > 0 then
    Format.fprintf ppf " prefetch=%d (%d hit)" t.prefetches t.prefetch_hits
