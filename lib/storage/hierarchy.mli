(** Trace-driven simulator for the multi-layer storage-cache hierarchy.

    A block access from a thread walks: its I/O node's cache (layer 1), then
    — by striping — one storage node's cache (layer 2), then that node's
    disk.  The per-thread clocks accumulate modeled service time; the miss
    counters per cache feed the paper's Tables 2-3.

    Two inter-level protocols are provided:
    {ul
    {- [Inclusive]: the paper's default.  Blocks fetched from below are
       installed at every level (LRU et al. inclusive caching).}
    {- [Demote_exclusive]: Wong & Wilkes' DEMOTE.  A layer-2 read hit hands
       the block to layer 1 and drops it from layer 2; blocks evicted from
       layer 1 are demoted to the MRU end of their storage node's cache;
       disk fills bypass layer 2.}}

    KARMA needs no protocol of its own: its partitioned caches (see
    {!Karma}) refuse blocks assigned to the other level, so running them
    under [Inclusive] yields exclusive hint-based caching.

    {2 Observability}

    [create ?sink ?metrics] attaches the observability layer.  Every cache
    and disk action emits a structured {!Flo_obs.Event.t} to the sink
    (timestamped with the requesting thread's simulated clock at arrival),
    and the registry gains a ["request_latency_us"] histogram of per-request
    modeled cost plus one ["disk_service_us"] histogram per storage node
    (label [node=i]).  Both default to off and add no work to the hot path
    when absent; simulation results are identical either way. *)

type protocol = Inclusive | Demote_exclusive

type costs = {
  l1_hit_us : float;  (** compute -> I/O node round trip on an L1 hit *)
  l2_hit_us : float;  (** additional hop to a storage node *)
  demote_us : float;  (** network cost of one DEMOTE transfer *)
}

val default_costs : costs

type t

val create :
  ?protocol:protocol ->
  ?mapping:int array ->
  ?l1:Policy.t array ->
  ?l2:Policy.t array ->
  ?l1_factory:Policy.factory ->
  ?l2_factory:Policy.factory ->
  ?costs:costs ->
  ?disk_params:Disk.params ->
  ?file_stride:int ->
  ?readahead:int ->
  ?sink:Flo_obs.Sink.t ->
  ?metrics:Flo_obs.Metrics.t ->
  ?faults:Flo_faults.Injector.t ->
  Topology.t ->
  t
(** [mapping] permutes threads onto compute nodes (Fig. 7(b)); default is
    the identity.  Explicit cache arrays win over factories; factories
    default to {!Lru.create}.  [readahead > 0] enables sequential prefetch
    at the storage nodes: a disk read also pulls the next [readahead]
    same-node stripe units of the file into the storage cache (cold), with
    a small overlapped transfer charge — the mechanism behind the paper's
    remark that linear layouts improve hardware I/O prefetching.
    [sink]/[metrics] attach tracing and latency profiling (see above).

    [faults] attaches a fault injector (see [docs/ROBUSTNESS.md]): requests
    are routed through its stripe-failover remap, offline storage caches
    become all-miss passthroughs (no lookups, inserts, readahead or
    demotions), and disk reads go through the retry/backoff/timeout/failover
    engine, whose wasted service time, backoffs and failover reads are all
    charged to the requesting thread's modeled clock.  The injector belongs
    to one run: {!reset} does not reset it.  Without [faults] — or with an
    injector compiled from an inert plan — results are byte-identical to
    the fault-free path.
    @raise Invalid_argument if array lengths or the mapping mismatch the
    topology. *)

val topology : t -> Topology.t
val access : t -> thread:int -> Block.t -> unit
(** Simulate one block read by [thread]. *)

val touch_element : t -> thread:int -> file:int -> offset:int -> unit
(** Convenience: access the block containing an element offset. *)

val thread_clock_us : t -> int -> float
val elapsed_us : t -> float
(** Max over threads — the modeled parallel execution time. *)

val thread_clocks_us : t -> float array
(** Copy of every thread's clock — the per-thread breakdown. *)

val add_cpu_us : t -> thread:int -> float -> unit
(** Charge pure-compute time to a thread's clock. *)

val l1_stats : t -> Stats.t
(** Aggregated over all I/O node caches. *)

val l2_stats : t -> Stats.t
val l1_stats_of : t -> int -> Stats.t
val l2_stats_of : t -> int -> Stats.t
val io_nodes : t -> int
val storage_nodes : t -> int
val disk_reads : t -> int

val prefetches : t -> int
(** Total readahead insertions (sum of per-node {!Stats.t.prefetches}). *)

val prefetch_hits : t -> int
(** Prefetched blocks later claimed by a demand access. *)

val request_latency : t -> Flo_obs.Histogram.t option
(** The ["request_latency_us"] histogram when [metrics] was attached. *)

val io_node_of_thread : t -> int -> int
val reset : t -> unit
(** Clear caches, stats, clocks and disk state (topology retained). *)
