type state = {
  capacity : int;
  tbl : unit Block.Tbl.t;
  queue : Block.t Queue.t; (* may hold stale entries for removed blocks *)
}

let rec evict s =
  match Queue.take_opt s.queue with
  | None -> None
  | Some b ->
    if Block.Tbl.mem s.tbl b then begin
      Block.Tbl.remove s.tbl b;
      Some b
    end
    else evict s (* stale entry left behind by [remove] *)

let insert s b =
  if Block.Tbl.mem s.tbl b then None
  else begin
    let victim = if Block.Tbl.length s.tbl >= s.capacity then evict s else None in
    Block.Tbl.add s.tbl b ();
    Queue.add b s.queue;
    victim
  end

let create ~capacity : Policy.t =
  Policy.check_capacity capacity;
  let s = { capacity; tbl = Block.Tbl.create (2 * capacity); queue = Queue.create () } in
  {
    Policy.name = "fifo";
    capacity;
    touch = (fun b -> Block.Tbl.mem s.tbl b);
    insert = insert s;
    insert_cold = insert s;
    remove =
      (fun b ->
        if Block.Tbl.mem s.tbl b then begin
          Block.Tbl.remove s.tbl b;
          true
        end
        else false);
    contains = (fun b -> Block.Tbl.mem s.tbl b);
    size = (fun () -> Block.Tbl.length s.tbl);
    clear =
      (fun () ->
        Block.Tbl.clear s.tbl;
        Queue.clear s.queue);
    iter = (fun f -> Block.Tbl.iter (fun b () -> f b) s.tbl);
    fast = None;
  }
