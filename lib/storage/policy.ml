type t = {
  name : string;
  capacity : int;
  touch : Block.t -> bool;
  insert : Block.t -> Block.t option;
  insert_cold : Block.t -> Block.t option;
  remove : Block.t -> bool;
  contains : Block.t -> bool;
  size : unit -> int;
  clear : unit -> unit;
  iter : (Block.t -> unit) -> unit;
  fast : Flat_lru.t option;
}

type factory = capacity:int -> t

let check_capacity c = if c < 1 then invalid_arg "cache capacity < 1"
