type protocol = Inclusive | Demote_exclusive

type costs = { l1_hit_us : float; l2_hit_us : float; demote_us : float }

let default_costs = { l1_hit_us = 25.; l2_hit_us = 140.; demote_us = 8. }

(* The devirtualized hot path: when every cache is an exact LRU backed by
   Flat_lru, no fault injector is attached and no event sink is listening,
   [access] runs direct calls on these flat states — no closure record
   indirection, no Block.Tbl hashing, no per-request allocation. *)
type fast = { fl1 : Flat_lru.t array; fl2 : Flat_lru.t array }

type t = {
  topo : Topology.t;
  protocol : protocol;
  mapping : int array; (* thread -> compute node *)
  l1 : Policy.t array;
  l2 : Policy.t array;
  l1_stats : Stats.t array;
  l2_stats : Stats.t array;
  disks : Disk.t array;
  costs : costs;
  file_stride : int;
  readahead : int;
  clocks : float array;
  (* readahead-inserted blocks not yet claimed by a demand access, per
     storage node: feeds Stats.prefetch_hits *)
  speculative : (Block.t, unit) Hashtbl.t array;
  sink : Flo_obs.Sink.t;
  (* resolved once at creation so the hot path never consults the registry *)
  request_hist : Flo_obs.Histogram.t option;
  disk_hists : Flo_obs.Histogram.t option array;
  (* thread -> I/O node, precomputed so [access] does not re-derive the
     Topology lookups per request *)
  io_tbl : int array;
  (* per storage node, the overlapped-readahead transfer charge
     0.2 *. transfer_us, hoisted out of the readahead loop (disk params
     are immutable after creation, so the value is IEEE-identical) *)
  ra_charge : float array;
  (* None guards the exact fault-free code path: with no injector every
     fault branch below is the unmodified original arithmetic *)
  faults : Flo_faults.Injector.t option;
  (* Some when the fault-free, sink-less hot path may bypass the Policy
     closures; resolved once at creation *)
  fast : fast option;
}

let create ?(protocol = Inclusive) ?mapping ?l1 ?l2 ?l1_factory ?l2_factory
    ?(costs = default_costs) ?disk_params ?(file_stride = Striping.default_file_stride)
    ?(readahead = 0) ?(sink = Flo_obs.Sink.null) ?metrics ?faults topo =
  if readahead < 0 then invalid_arg "Hierarchy.create: negative readahead";
  let threads = Topology.threads topo in
  let mapping =
    match mapping with
    | None -> Array.init threads (fun t -> t mod topo.Topology.compute_nodes)
    | Some m ->
      if Array.length m <> threads then invalid_arg "Hierarchy.create: mapping length";
      Array.iter
        (fun c ->
          if c < 0 || c >= topo.Topology.compute_nodes then
            invalid_arg "Hierarchy.create: mapping target out of range")
        m;
      Array.copy m
  in
  let l1_factory = Option.value l1_factory ~default:Lru.create in
  let l2_factory = Option.value l2_factory ~default:Lru.create in
  let l1 =
    match l1 with
    | Some caches ->
      if Array.length caches <> topo.Topology.io_nodes then
        invalid_arg "Hierarchy.create: l1 cache count";
      caches
    | None ->
      Array.init topo.Topology.io_nodes (fun _ ->
          l1_factory ~capacity:topo.Topology.io_cache_blocks)
  in
  let l2 =
    match l2 with
    | Some caches ->
      if Array.length caches <> topo.Topology.storage_nodes then
        invalid_arg "Hierarchy.create: l2 cache count";
      caches
    | None ->
      Array.init topo.Topology.storage_nodes (fun _ ->
          l2_factory ~capacity:topo.Topology.storage_cache_blocks)
  in
  let disks =
    Array.init topo.Topology.storage_nodes (fun _ -> Disk.create ?params:disk_params ())
  in
  let fast =
    let flat (caches : Policy.t array) =
      if Array.for_all (fun (c : Policy.t) -> c.Policy.fast <> None) caches then
        Some (Array.map (fun (c : Policy.t) -> Option.get c.Policy.fast) caches)
      else None
    in
    match (faults, flat l1, flat l2) with
    | None, Some fl1, Some fl2 when Flo_obs.Sink.is_null sink -> Some { fl1; fl2 }
    | _ -> None
  in
  {
    topo;
    protocol;
    mapping;
    l1;
    l2;
    l1_stats = Array.init topo.Topology.io_nodes (fun _ -> Stats.create ());
    l2_stats = Array.init topo.Topology.storage_nodes (fun _ -> Stats.create ());
    disks;
    costs;
    file_stride;
    readahead;
    clocks = Array.make threads 0.;
    speculative =
      Array.init topo.Topology.storage_nodes (fun _ -> Hashtbl.create 64);
    sink;
    request_hist =
      Option.map (fun m -> Flo_obs.Metrics.histogram m "request_latency_us") metrics;
    disk_hists =
      Array.init topo.Topology.storage_nodes (fun i ->
          Option.map
            (fun m ->
              Flo_obs.Metrics.histogram m
                ~labels:[ ("node", string_of_int i) ]
                "disk_service_us")
            metrics);
    io_tbl =
      Array.init threads (fun th ->
          Topology.io_of_compute topo (mapping.(th) mod topo.Topology.compute_nodes));
    ra_charge = Array.map (fun d -> 0.2 *. (Disk.params d).Disk.transfer_us) disks;
    faults;
    fast;
  }

let topology t = t.topo

let io_node_of_thread t thread =
  if thread < 0 || thread >= Array.length t.clocks then
    invalid_arg "Hierarchy: thread out of range";
  t.io_tbl.(thread)

(* All events of one request carry the thread's clock at arrival: a trace
   orders requests on the simulated timeline without charging the request's
   own service time to its timestamp. *)
let emit t ~time_us ~kind ~layer ~node ~thread ?latency_us b =
  if not (Flo_obs.Sink.is_null t.sink) then
    t.sink.Flo_obs.Sink.emit
      (Flo_obs.Event.make ~time_us ~kind ~layer ~node ~thread ~file:(Block.file b)
         ~block:(Block.index b) ?latency_us ())

(* A block leaving an L2 cache can no longer yield a prefetch hit. *)
let record_l2_eviction t ~time_us ~thread ~sn victim =
  Stats.record_eviction t.l2_stats.(sn);
  Hashtbl.remove t.speculative.(sn) victim;
  emit t ~time_us ~kind:Flo_obs.Event.Evict ~layer:Flo_obs.Event.L2 ~node:sn ~thread victim

(* Install a block in an L1 cache; under DEMOTE an L1 victim moves to the
   MRU end of its storage node's cache. *)
let install_l1 t ~time_us ~io ~thread b =
  match t.l1.(io).Policy.insert b with
  | None -> ()
  | Some victim -> (
    Stats.record_eviction t.l1_stats.(io);
    emit t ~time_us ~kind:Flo_obs.Event.Evict ~layer:Flo_obs.Event.L1 ~node:io ~thread
      victim;
    match t.protocol with
    | Inclusive -> ()
    | Demote_exclusive ->
      let sn0 = Striping.storage_node_of ~storage_nodes:t.topo.Topology.storage_nodes victim in
      let sn, online =
        match t.faults with
        | None -> (sn0, true)
        | Some inj ->
          let sn = Flo_faults.Injector.route inj sn0 in
          (sn, Flo_faults.Injector.cache_online inj ~node:sn)
      in
      (* a demotion to an offline storage cache is a no-op: the client
         simply drops the block *)
      if online then begin
        Stats.record_demotion t.l2_stats.(sn);
        emit t ~time_us ~kind:Flo_obs.Event.Demote ~layer:Flo_obs.Event.L2 ~node:sn ~thread
          victim;
        t.clocks.(thread) <- t.clocks.(thread) +. t.costs.demote_us;
        match t.l2.(sn).Policy.insert victim with
        | Some v -> record_l2_eviction t ~time_us ~thread ~sn v
        | None -> ()
      end)

(* The retry-engine read path, used only when an injector is attached.  A
   failed attempt costs its full (wasted) service time; backoffs and the
   eventual failover read are also charged to the requesting thread's
   modeled clock.  With a zero-rate plan no draw ever fails and the returned
   cost is [0. +. (raw *. 1.0)] — IEEE-identical to the fault-free path. *)
let faulty_disk_read t inj ~time_us ~thread ~sn ~lba b =
  let policy = Flo_faults.Injector.retry_policy inj in
  let read node =
    let raw = Disk.service t.disks.(node) ~lba in
    let svc = raw *. Flo_faults.Injector.service_multiplier inj ~node in
    (match t.disk_hists.(node) with
    | Some h -> Flo_obs.Histogram.add h svc
    | None -> ());
    svc
  in
  let failover ~extra =
    (* retries exhausted or budget spent: read the replica on the next node
       (forced success — replicas don't share the transient failure) *)
    let node = Flo_faults.Injector.failover_node inj ~node:sn in
    Flo_faults.Injector.record_failover inj;
    let svc = read node in
    emit t ~time_us ~kind:Flo_obs.Event.Failover ~layer:Flo_obs.Event.Disk ~node ~thread
      ~latency_us:svc b;
    Flo_faults.Injector.observe_retry_latency inj extra;
    extra +. svc
  in
  let rec attempt k ~extra =
    let svc = read sn in
    if not (Flo_faults.Injector.draw_read_error inj ~node:sn) then begin
      emit t ~time_us ~kind:Flo_obs.Event.Disk_read ~layer:Flo_obs.Event.Disk ~node:sn
        ~thread ~latency_us:svc b;
      if extra > 0. then Flo_faults.Injector.observe_retry_latency inj extra;
      extra +. svc
    end
    else begin
      Flo_faults.Injector.record_fault inj;
      emit t ~time_us ~kind:Flo_obs.Event.Fault ~layer:Flo_obs.Event.Disk ~node:sn ~thread
        ~latency_us:svc b;
      let extra = extra +. svc in
      if k >= policy.Flo_faults.Retry.max_retries then failover ~extra
      else if extra >= policy.Flo_faults.Retry.timeout_us then begin
        Flo_faults.Injector.record_timeout inj;
        emit t ~time_us ~kind:Flo_obs.Event.Timeout ~layer:Flo_obs.Event.Disk ~node:sn
          ~thread b;
        failover ~extra
      end
      else begin
        let backoff = Flo_faults.Injector.backoff_us inj ~node:sn ~attempt:k in
        Flo_faults.Injector.record_retry inj;
        emit t ~time_us ~kind:Flo_obs.Event.Retry ~layer:Flo_obs.Event.Disk ~node:sn
          ~thread ~latency_us:backoff b;
        attempt (k + 1) ~extra:(extra +. backoff)
      end
    end
  in
  attempt 0 ~extra:0.

(* Generic path: Policy closures, event emission, fault injection.  Taken
   whenever a non-LRU policy, a sink or an injector is attached. *)
let access_generic t ~thread b =
  let io = t.io_tbl.(thread) in
  let time_us = t.clocks.(thread) in
  let cost = ref t.costs.l1_hit_us in
  emit t ~time_us ~kind:Flo_obs.Event.Access ~layer:Flo_obs.Event.L1 ~node:io ~thread b;
  if t.l1.(io).Policy.touch b then begin
    Stats.record_hit t.l1_stats.(io);
    emit t ~time_us ~kind:Flo_obs.Event.Hit ~layer:Flo_obs.Event.L1 ~node:io ~thread b
  end
  else begin
    Stats.record_miss t.l1_stats.(io);
    emit t ~time_us ~kind:Flo_obs.Event.Miss ~layer:Flo_obs.Event.L1 ~node:io ~thread b;
    let sn0 = Striping.storage_node_of ~storage_nodes:t.topo.Topology.storage_nodes b in
    let sn, l2_online =
      match t.faults with
      | None -> (sn0, true)
      | Some inj ->
        let sn = Flo_faults.Injector.route inj sn0 in
        (sn, Flo_faults.Injector.cache_online inj ~node:sn)
    in
    cost := !cost +. t.costs.l2_hit_us;
    if l2_online && t.l2.(sn).Policy.touch b then begin
      Stats.record_hit t.l2_stats.(sn);
      emit t ~time_us ~kind:Flo_obs.Event.Hit ~layer:Flo_obs.Event.L2 ~node:sn ~thread b;
      if Hashtbl.mem t.speculative.(sn) b then begin
        (* first demand touch of a readahead-inserted block *)
        Hashtbl.remove t.speculative.(sn) b;
        Stats.record_prefetch_hit t.l2_stats.(sn)
      end;
      (match t.protocol with
      | Inclusive -> ()
      | Demote_exclusive ->
        (* the client caches it now: deprioritize rather than keep hot *)
        ignore (t.l2.(sn).Policy.remove b);
        ignore (t.l2.(sn).Policy.insert_cold b))
    end
    else begin
      Stats.record_miss t.l2_stats.(sn);
      emit t ~time_us ~kind:Flo_obs.Event.Miss ~layer:Flo_obs.Event.L2 ~node:sn ~thread b;
      (* a speculative entry for a block the cache no longer holds is stale *)
      Hashtbl.remove t.speculative.(sn) b;
      (match t.faults with
      | Some inj when not l2_online -> Flo_faults.Injector.record_offline_miss inj
      | _ -> ());
      let lba =
        Striping.lba_of ~storage_nodes:t.topo.Topology.storage_nodes
          ~file_stride:t.file_stride b
      in
      let service =
        match t.faults with
        | None ->
          let service = Disk.service t.disks.(sn) ~lba in
          (match t.disk_hists.(sn) with
          | Some h -> Flo_obs.Histogram.add h service
          | None -> ());
          emit t ~time_us ~kind:Flo_obs.Event.Disk_read ~layer:Flo_obs.Event.Disk ~node:sn
            ~thread ~latency_us:service b;
          service
        | Some inj -> faulty_disk_read t inj ~time_us ~thread ~sn ~lba b
      in
      cost := !cost +. service;
      (* sequential readahead: the storage node speculatively pulls the next
         blocks of the same file into its cache.  The disk transfer overlaps
         with the demand read, so only a fraction of the transfer is charged
         to the requesting thread. *)
      if t.readahead > 0 && l2_online then begin
        let charge = t.ra_charge.(sn) in
        for k = 1 to t.readahead do
          (* next stripe unit on this storage node *)
          let next =
            Block.make ~file:(Block.file b)
              ~index:(Block.index b + (k * t.topo.Topology.storage_nodes))
          in
          if Block.index next / t.topo.Topology.storage_nodes < t.file_stride
             && not (t.l2.(sn).Policy.contains next)
          then begin
            Stats.record_prefetch t.l2_stats.(sn);
            Hashtbl.replace t.speculative.(sn) next ();
            emit t ~time_us ~kind:Flo_obs.Event.Prefetch ~layer:Flo_obs.Event.L2 ~node:sn
              ~thread next;
            cost := !cost +. charge;
            match t.l2.(sn).Policy.insert_cold next with
            | Some v -> record_l2_eviction t ~time_us ~thread ~sn v
            | None -> ()
          end
        done
      end;
      if l2_online then
        match t.protocol with
        | Inclusive ->
          (match t.l2.(sn).Policy.insert b with
          | Some v -> record_l2_eviction t ~time_us ~thread ~sn v
          | None -> ())
        | Demote_exclusive ->
          (* DEMOTE-LRU keeps plain LRU for read blocks too, but a block the
             client is about to cache enters at the cold end *)
          (match t.l2.(sn).Policy.insert_cold b with
          | Some v -> record_l2_eviction t ~time_us ~thread ~sn v
          | None -> ())
    end;
    install_l1 t ~time_us ~io ~thread b
  end;
  (match t.request_hist with
  | Some h -> Flo_obs.Histogram.add h !cost
  | None -> ());
  t.clocks.(thread) <- t.clocks.(thread) +. !cost

(* ---- devirtualized fast path ----------------------------------------

   Mirrors [access_generic] operation for operation under the conditions
   resolved at creation (no faults, null sink, every cache an exact LRU):
   same Stats mutations, same speculative-table updates, and the same
   left-associated float additions so modeled clocks are IEEE-byte-
   identical.  Emit calls are dropped — the sink is null, so they were
   no-ops.  The L1/L2 hit paths allocate nothing: costs flow through
   unboxed local floats straight into the clocks array. *)

let record_l2_eviction_fast t ~sn v =
  Stats.record_eviction t.l2_stats.(sn);
  Hashtbl.remove t.speculative.(sn) (Block.unsafe_of_int v)

let install_l1_fast t f ~io ~thread b =
  let v = Flat_lru.insert f.fl1.(io) (b : Block.t :> int) in
  if v >= 0 then begin
    Stats.record_eviction t.l1_stats.(io);
    match t.protocol with
    | Inclusive -> ()
    | Demote_exclusive ->
      let victim = Block.unsafe_of_int v in
      let sn =
        Striping.storage_node_of ~storage_nodes:t.topo.Topology.storage_nodes victim
      in
      Stats.record_demotion t.l2_stats.(sn);
      t.clocks.(thread) <- t.clocks.(thread) +. t.costs.demote_us;
      let v2 = Flat_lru.insert f.fl2.(sn) v in
      if v2 >= 0 then record_l2_eviction_fast t ~sn v2
  end

let access_fast t f ~thread b =
  let io = t.io_tbl.(thread) in
  let bi = (b : Block.t :> int) in
  if Flat_lru.touch f.fl1.(io) bi then begin
    Stats.record_hit t.l1_stats.(io);
    (match t.request_hist with
    | Some h -> Flo_obs.Histogram.add h t.costs.l1_hit_us
    | None -> ());
    t.clocks.(thread) <- t.clocks.(thread) +. t.costs.l1_hit_us
  end
  else begin
    Stats.record_miss t.l1_stats.(io);
    let sn = Striping.storage_node_of ~storage_nodes:t.topo.Topology.storage_nodes b in
    if Flat_lru.touch f.fl2.(sn) bi then begin
      Stats.record_hit t.l2_stats.(sn);
      if Hashtbl.mem t.speculative.(sn) b then begin
        (* first demand touch of a readahead-inserted block *)
        Hashtbl.remove t.speculative.(sn) b;
        Stats.record_prefetch_hit t.l2_stats.(sn)
      end;
      (match t.protocol with
      | Inclusive -> ()
      | Demote_exclusive ->
        (* the client caches it now: deprioritize rather than keep hot *)
        ignore (Flat_lru.remove f.fl2.(sn) bi);
        ignore (Flat_lru.insert_cold f.fl2.(sn) bi));
      install_l1_fast t f ~io ~thread b;
      let cost = t.costs.l1_hit_us +. t.costs.l2_hit_us in
      (match t.request_hist with
      | Some h -> Flo_obs.Histogram.add h cost
      | None -> ());
      t.clocks.(thread) <- t.clocks.(thread) +. cost
    end
    else begin
      Stats.record_miss t.l2_stats.(sn);
      (* a speculative entry for a block the cache no longer holds is stale *)
      Hashtbl.remove t.speculative.(sn) b;
      let lba =
        Striping.lba_of ~storage_nodes:t.topo.Topology.storage_nodes
          ~file_stride:t.file_stride b
      in
      let service = Disk.service t.disks.(sn) ~lba in
      (match t.disk_hists.(sn) with
      | Some h -> Flo_obs.Histogram.add h service
      | None -> ());
      let cost = ref (t.costs.l1_hit_us +. t.costs.l2_hit_us +. service) in
      if t.readahead > 0 then begin
        let charge = t.ra_charge.(sn) in
        for k = 1 to t.readahead do
          let next =
            Block.make ~file:(Block.file b)
              ~index:(Block.index b + (k * t.topo.Topology.storage_nodes))
          in
          if Block.index next / t.topo.Topology.storage_nodes < t.file_stride
             && not (Flat_lru.contains f.fl2.(sn) (next :> int))
          then begin
            Stats.record_prefetch t.l2_stats.(sn);
            Hashtbl.replace t.speculative.(sn) next ();
            cost := !cost +. charge;
            let v = Flat_lru.insert_cold f.fl2.(sn) (next :> int) in
            if v >= 0 then record_l2_eviction_fast t ~sn v
          end
        done
      end;
      (match t.protocol with
      | Inclusive ->
        let v = Flat_lru.insert f.fl2.(sn) bi in
        if v >= 0 then record_l2_eviction_fast t ~sn v
      | Demote_exclusive ->
        (* a block the client is about to cache enters at the cold end *)
        let v = Flat_lru.insert_cold f.fl2.(sn) bi in
        if v >= 0 then record_l2_eviction_fast t ~sn v);
      install_l1_fast t f ~io ~thread b;
      (match t.request_hist with
      | Some h -> Flo_obs.Histogram.add h !cost
      | None -> ());
      t.clocks.(thread) <- t.clocks.(thread) +. !cost
    end
  end

let access t ~thread b =
  if thread < 0 || thread >= Array.length t.clocks then
    invalid_arg "Hierarchy: thread out of range";
  match t.fast with
  | Some f -> access_fast t f ~thread b
  | None -> access_generic t ~thread b

let touch_element t ~thread ~file ~offset =
  access t ~thread
    (Block.of_offset ~block_elems:t.topo.Topology.block_elems ~file offset)

let thread_clock_us t thread = t.clocks.(thread)

let elapsed_us t = Array.fold_left max 0. t.clocks

let thread_clocks_us t = Array.copy t.clocks

let add_cpu_us t ~thread us = t.clocks.(thread) <- t.clocks.(thread) +. us

let l1_stats t = Stats.merge (Array.to_list t.l1_stats)
let l2_stats t = Stats.merge (Array.to_list t.l2_stats)
let l1_stats_of t i = t.l1_stats.(i)
let l2_stats_of t i = t.l2_stats.(i)
let io_nodes t = Array.length t.l1_stats
let storage_nodes t = Array.length t.l2_stats

let disk_reads t = Array.fold_left (fun acc d -> acc + Disk.reads d) 0 t.disks

let prefetches t =
  Array.fold_left (fun acc s -> acc + s.Stats.prefetches) 0 t.l2_stats

let prefetch_hits t =
  Array.fold_left (fun acc s -> acc + s.Stats.prefetch_hits) 0 t.l2_stats

let request_latency t = t.request_hist

let reset t =
  Array.iter (fun (c : Policy.t) -> c.Policy.clear ()) t.l1;
  Array.iter (fun (c : Policy.t) -> c.Policy.clear ()) t.l2;
  Array.iter Stats.reset t.l1_stats;
  Array.iter Stats.reset t.l2_stats;
  Array.iter Disk.reset t.disks;
  Array.iter Hashtbl.reset t.speculative;
  Array.fill t.clocks 0 (Array.length t.clocks) 0.
