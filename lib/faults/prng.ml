type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

(* the splitmix64 finalizer (Steele, Lea & Flood 2014) *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let for_stream ~seed ~stream =
  (* hash the seed, then offset by the stream id times an odd constant so
     substreams of one seed start far apart in the counter sequence *)
  let s0 = mix (Int64.of_int seed) in
  { state = Int64.add s0 (Int64.mul (Int64.of_int (stream + 1)) 0xD1342543DE82EF95L) }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

(* splitmix64 is a counter-mode generator: draw k of a stream whose state
   starts at s0 is mix (s0 + (k+1)*golden), so any draw is addressable in
   O(1) without advancing shared state — tracing mints ids this way *)
let at ~seed ~stream k =
  if k < 0 then invalid_arg "Prng.at: negative index";
  let s0 =
    Int64.add (mix (Int64.of_int seed))
      (Int64.mul (Int64.of_int (stream + 1)) 0xD1342543DE82EF95L)
  in
  mix (Int64.add s0 (Int64.mul (Int64.of_int (k + 1)) golden))

let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* rejection-free modulo is fine here: bounds are tiny (node counts) next
     to 2^64, so the bias is unobservable and determinism is what matters *)
  Int64.to_int (Int64.unsigned_rem (next_int64 t) (Int64.of_int bound))
