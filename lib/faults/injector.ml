type counts = {
  faults : int;
  retries : int;
  timeouts : int;
  failovers : int;
  remaps : int;
  offline_misses : int;
  spikes : int;
}

type t = {
  plan : Fault_plan.t;
  storage_nodes : int;
  streams : Prng.t array;
  read_error_rate : float array;
  spike_rate : float array;
  spike_mult : float array;
  degraded_mult : float array;
  offline : bool array;
  route_to : int array;
  mutable c_faults : int;
  mutable c_retries : int;
  mutable c_timeouts : int;
  mutable c_failovers : int;
  mutable c_remaps : int;
  mutable c_offline_misses : int;
  mutable c_spikes : int;
  m_faults : Flo_obs.Metrics.counter option;
  m_retries : Flo_obs.Metrics.counter option;
  m_timeouts : Flo_obs.Metrics.counter option;
  m_failovers : Flo_obs.Metrics.counter option;
  m_remaps : Flo_obs.Metrics.counter option;
  m_offline : Flo_obs.Metrics.counter option;
  retry_hist : Flo_obs.Histogram.t option;
}

let create ?metrics ~storage_nodes (plan : Fault_plan.t) =
  if storage_nodes <= 0 then invalid_arg "Injector.create: storage_nodes must be positive";
  (match Retry.validate plan.Fault_plan.retry with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Injector.create: " ^ msg));
  let n = storage_nodes in
  let check clause = function
    | None -> ()
    | Some i ->
      if i < 0 || i >= n then
        invalid_arg
          (Printf.sprintf "Injector.create: %s names node %d, but there are %d storage nodes"
             clause i n)
  in
  let read_error_rate = Array.make n 0. in
  let spike_rate = Array.make n 0. in
  let spike_mult = Array.make n 1. in
  let degraded_mult = Array.make n 1. in
  let offline = Array.make n false in
  let route_to = Array.init n Fun.id in
  let each node f =
    match node with None -> for i = 0 to n - 1 do f i done | Some i -> f i
  in
  List.iter
    (function
      | Fault_plan.Read_error { node; rate } ->
        check "read-error" node;
        (* independent failure sources compose as probabilities *)
        each node (fun i ->
            read_error_rate.(i) <- 1. -. ((1. -. read_error_rate.(i)) *. (1. -. rate)))
      | Fault_plan.Latency_spike { node; rate; multiplier } ->
        check "latency" node;
        each node (fun i ->
            spike_rate.(i) <- rate;
            spike_mult.(i) <- multiplier)
      | Fault_plan.Degraded { node; multiplier } ->
        check "degrade" node;
        each node (fun i -> degraded_mult.(i) <- degraded_mult.(i) *. multiplier)
      | Fault_plan.Cache_offline { node } ->
        check "cache-off" (Some node);
        offline.(node) <- true
      | Fault_plan.Stripe_failover { node; target } ->
        check "failover" (Some node);
        check "failover" target;
        route_to.(node) <- (match target with Some t -> t | None -> (node + 1) mod n))
    plan.Fault_plan.specs;
  let counter name = Option.map (fun m -> Flo_obs.Metrics.counter m name) metrics in
  {
    plan;
    storage_nodes = n;
    streams = Array.init n (fun i -> Prng.for_stream ~seed:plan.Fault_plan.seed ~stream:i);
    read_error_rate;
    spike_rate;
    spike_mult;
    degraded_mult;
    offline;
    route_to;
    c_faults = 0;
    c_retries = 0;
    c_timeouts = 0;
    c_failovers = 0;
    c_remaps = 0;
    c_offline_misses = 0;
    c_spikes = 0;
    m_faults = counter "fault_total";
    m_retries = counter "retry_total";
    m_timeouts = counter "timeout_total";
    m_failovers = counter "failover_total";
    m_remaps = counter "remap_total";
    m_offline = counter "cache_offline_miss_total";
    retry_hist = Option.map (fun m -> Flo_obs.Metrics.histogram m "retry_latency_us") metrics;
  }

let plan t = t.plan
let retry_policy t = t.plan.Fault_plan.retry

let bump c = match c with Some c -> Flo_obs.Metrics.incr c | None -> ()

let route t sn =
  let d = t.route_to.(sn) in
  if d <> sn then begin
    t.c_remaps <- t.c_remaps + 1;
    bump t.m_remaps
  end;
  d

let cache_online t ~node = not t.offline.(node)

let draw_read_error t ~node =
  let r = t.read_error_rate.(node) in
  r > 0. && Prng.float t.streams.(node) < r

let service_multiplier t ~node =
  let m = t.degraded_mult.(node) in
  let r = t.spike_rate.(node) in
  if r > 0. && Prng.float t.streams.(node) < r then begin
    t.c_spikes <- t.c_spikes + 1;
    m *. t.spike_mult.(node)
  end
  else m

let backoff_us t ~node ~attempt =
  Retry.backoff_us t.plan.Fault_plan.retry ~attempt ~u:(Prng.float t.streams.(node))

let failover_node t ~node = (node + 1) mod t.storage_nodes

let record_fault t =
  t.c_faults <- t.c_faults + 1;
  bump t.m_faults

let record_retry t =
  t.c_retries <- t.c_retries + 1;
  bump t.m_retries

let record_timeout t =
  t.c_timeouts <- t.c_timeouts + 1;
  bump t.m_timeouts

let record_failover t =
  t.c_failovers <- t.c_failovers + 1;
  bump t.m_failovers

let record_offline_miss t =
  t.c_offline_misses <- t.c_offline_misses + 1;
  bump t.m_offline

let observe_retry_latency t us =
  match t.retry_hist with Some h -> Flo_obs.Histogram.add h us | None -> ()

let counts t =
  {
    faults = t.c_faults;
    retries = t.c_retries;
    timeouts = t.c_timeouts;
    failovers = t.c_failovers;
    remaps = t.c_remaps;
    offline_misses = t.c_offline_misses;
    spikes = t.c_spikes;
  }
