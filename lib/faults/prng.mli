(** Deterministic splitmix64 pseudo-random stream.

    The fault subsystem never consults [Random] or the wall clock: every
    stochastic decision is drawn from one of these generators, seeded from
    the fault plan, so a (seed, plan) pair replays the exact same fault
    timeline on every run, on every machine, at every [--jobs] setting. *)

type t

val create : seed:int -> t
(** A generator whose stream is a pure function of [seed]. *)

val for_stream : seed:int -> stream:int -> t
(** A decorrelated substream: [for_stream ~seed ~stream:i] for distinct [i]
    yields independent-looking sequences from the same seed.  The injector
    gives each storage node its own substream (keyed by node id), so the
    draws a node sees depend only on its own request sequence — never on
    how requests to {e other} nodes interleave. *)

val next_int64 : t -> int64
(** The raw 64-bit splitmix64 output; advances the state. *)

val at : seed:int -> stream:int -> int -> int64
(** [at ~seed ~stream k] is the [k]-th output of
    [for_stream ~seed ~stream] — random access into the counter sequence
    without allocating or advancing a generator, so independent shards can
    address the same draw without sharing state.  Trace-id minting uses
    this: ids are a pure function of (seed, stream, index).
    @raise Invalid_argument if [k < 0]. *)

val float : t -> float
(** Uniform draw in [[0, 1)]; advances the state (53 mantissa bits). *)

val int : t -> bound:int -> int
(** Uniform draw in [[0, bound)].  @raise Invalid_argument if [bound <= 0]. *)
