(** A fault plan compiled against a concrete storage-node count.

    One injector belongs to one simulated run: create it fresh per run
    ([Hierarchy.reset] does {e not} reset it).  All stochastic draws come
    from per-node {!Prng} substreams keyed by node id, so a node's fault
    sequence depends only on its own request order — which is deterministic
    within a run — and results are identical at every [--jobs] setting.

    The query functions are pure unless documented otherwise; the [record_*]
    functions bump the counters (and the optional {!Flo_obs.Metrics}
    registry: ["fault_total"], ["retry_total"], ["timeout_total"],
    ["failover_total"], ["remap_total"], ["cache_offline_miss_total"] and
    the ["retry_latency_us"] histogram). *)

type t

type counts = {
  faults : int;  (** failed disk read attempts *)
  retries : int;  (** backoff-then-retry transitions *)
  timeouts : int;  (** requests whose retry budget ran out *)
  failovers : int;  (** failover reads after retries were exhausted *)
  remaps : int;  (** routing decisions redirected by [failover:] clauses *)
  offline_misses : int;  (** L2 lookups skipped because the cache is offline *)
  spikes : int;  (** latency-spike multipliers drawn *)
}

val create : ?metrics:Flo_obs.Metrics.t -> storage_nodes:int -> Fault_plan.t -> t
(** Compile [plan] for a hierarchy with [storage_nodes] nodes.  Multiple
    clauses targeting one node compose: read-error rates combine as
    independent failure sources, [degrade] multipliers multiply, the last
    [latency] clause per node wins, and [failover] routes are single-hop.
    @raise Invalid_argument if [storage_nodes <= 0], a clause names a node
    outside [0, storage_nodes), or the retry policy is invalid. *)

val plan : t -> Fault_plan.t
val retry_policy : t -> Retry.policy

val route : t -> int -> int
(** Effective storage node for a request homed at the given node (identity
    unless a [failover:] clause remaps it).  Counts a remap when redirected. *)

val cache_online : t -> node:int -> bool
(** Pure: false iff a [cache-off:] clause disabled the node's cache. *)

val draw_read_error : t -> node:int -> bool
(** True iff this read attempt fails; draws from the node's stream only
    when the node's failure rate is positive. *)

val service_multiplier : t -> node:int -> float
(** Degraded-node multiplier, times a latency-spike multiplier when one is
    drawn.  Exactly [1.0] for an unafflicted node (so [svc *. m = svc],
    preserving the byte-identity invariant). *)

val backoff_us : t -> node:int -> attempt:int -> float
(** Jittered exponential backoff before retry [attempt] (0-based); the
    jitter draw comes from the node's stream. *)

val failover_node : t -> node:int -> int
(** The replica target for the failover read path: the next node modulo the
    node count (the node itself in a single-node system). *)

val record_fault : t -> unit
val record_retry : t -> unit
val record_timeout : t -> unit
val record_failover : t -> unit
val record_offline_miss : t -> unit

val observe_retry_latency : t -> float -> unit
(** Record the extra modeled latency (failed attempts + backoffs) a request
    accumulated beyond its final successful read. *)

val counts : t -> counts
(** Snapshot of the counters. *)
