(** Retry policy for transient disk read errors.

    A failed read attempt costs its full (wasted) service time; before the
    next attempt the requester waits an exponentially growing backoff with
    deterministic jitter.  Retrying stops when either [max_retries] extra
    attempts have failed or the time already spent on the request reaches
    [timeout_us]; the request then takes the failover read path (a replica
    on another storage node).  All waits are charged to the requesting
    thread's modeled clock — nothing sleeps for real. *)

type policy = {
  max_retries : int;  (** extra attempts after the first (0 = fail fast) *)
  base_backoff_us : float;  (** wait before the first retry *)
  multiplier : float;  (** exponential growth factor, [>= 1] *)
  jitter : float;
      (** fraction of each backoff that is randomized, in [[0, 1]]: the wait
          is uniform in [[b*(1-jitter), b]] for nominal backoff [b] *)
  timeout_us : float;  (** per-request retry budget (modeled microseconds) *)
}

val default : policy
(** 3 retries, 500 us base, x2 growth, 0.5 jitter, 50 ms timeout. *)

val validate : policy -> (unit, string) result

val backoff_us : policy -> attempt:int -> u:float -> float
(** Backoff before retry number [attempt] (0-based), given a uniform jitter
    draw [u] in [[0, 1)].  Pure: the injector supplies [u] from its own
    deterministic stream. *)

val to_string : policy -> string
(** The canonical [retry:...] clause of the fault-plan grammar. *)
