type policy = {
  max_retries : int;
  base_backoff_us : float;
  multiplier : float;
  jitter : float;
  timeout_us : float;
}

let default =
  {
    max_retries = 3;
    base_backoff_us = 500.;
    multiplier = 2.;
    jitter = 0.5;
    timeout_us = 50_000.;
  }

let validate p =
  if p.max_retries < 0 then Error "retry: max must be >= 0"
  else if not (p.base_backoff_us >= 0.) then Error "retry: base must be >= 0"
  else if not (p.multiplier >= 1.) then Error "retry: mult must be >= 1"
  else if not (p.jitter >= 0. && p.jitter <= 1.) then Error "retry: jitter must be in [0, 1]"
  else if not (p.timeout_us > 0.) then Error "retry: timeout must be > 0"
  else Ok ()

let backoff_us p ~attempt ~u =
  let b = p.base_backoff_us *. (p.multiplier ** float_of_int attempt) in
  b *. (1. -. p.jitter +. (p.jitter *. u))

let to_string p =
  Printf.sprintf "retry:max=%d,base=%.12g,mult=%.12g,jitter=%.12g,timeout=%.12g"
    p.max_retries p.base_backoff_us p.multiplier p.jitter p.timeout_us
