(** Declarative, seed-carrying fault plans.

    A plan is a list of fault clauses plus a retry policy and a seed; the
    {!Injector} compiles it against a concrete storage-node count.  The
    textual grammar (see [docs/ROBUSTNESS.md]) is what [flopt chaos
    --faults SPEC] parses:

    {v
    SPEC   := clause (';' clause)*
    clause := read-error:rate=R[,node=N]
            | latency:rate=R,mult=M[,node=N]
            | degrade:mult=M[,node=N]
            | cache-off:node=N
            | failover:node=N[,to=N']
            | retry:[max=K][,base=US][,mult=M][,jitter=J][,timeout=US]
    v}

    Omitting [node] applies a clause to every storage node.  [retry] fields
    not given keep their defaults ({!Retry.default}). *)

type spec =
  | Read_error of { node : int option; rate : float }
      (** each read attempt at the node fails with probability [rate] *)
  | Latency_spike of { node : int option; rate : float; multiplier : float }
      (** with probability [rate] a read's service time is multiplied *)
  | Degraded of { node : int option; multiplier : float }
      (** permanent service multiplier — a rebuilding / degraded RAID node *)
  | Cache_offline of { node : int }
      (** the node's storage cache is disabled: all-miss passthrough *)
  | Stripe_failover of { node : int; target : int option }
      (** stripe units of [node] are statically remapped to [target]
          (default: the next node); single-hop, no transitive routing *)

type t = {
  seed : int;  (** drives every stochastic draw; replay-exact *)
  retry : Retry.policy;
  specs : spec list;
}

val empty : t
(** Seed 0, {!Retry.default}, no clauses.  Hard invariant: running under
    [empty] (or any plan whose clauses are absent after {!scale}[ 0.])
    produces results byte-identical to the fault-free code path. *)

val is_empty : t -> bool
val with_seed : t -> int -> t

val scale : t -> float -> t
(** [scale t s] sweeps fault intensity: rates are multiplied by [s] (clamped
    to [0, 1]), [Degraded] multipliers interpolate as [1 + (m-1)*s], and
    structural clauses ([cache-off], [failover]) are kept for [s > 0] and
    dropped — along with everything else — at [s <= 0], so scale 0 is
    exactly the fault-free reference point. *)

val of_string : string -> (t, string) result
(** Parse the grammar above (seed is not part of the grammar — set it with
    {!with_seed}).  Validates ranges: rates in [[0, 1]], multipliers [>= 1],
    node ids [>= 0] (upper bounds are checked by {!Injector.create}, which
    knows the topology). *)

val to_string : t -> string
(** Canonical rendering; [of_string (to_string t) = Ok t] up to the seed. *)

(** {2 Grammar helpers}

    The key=value clause grammar is shared by the other fault-family spec
    parsers ({!Breaker.of_string}); these expose the primitive so the
    grammars stay aligned. *)

val parse_params : string -> ((string * string) list, string) result
(** ["k1=v1,k2=v2"] to an assoc list; duplicate keys are rejected. *)

val check_keys :
  clause:string -> allowed:string list -> (string * string) list ->
  (unit, string) result
(** Reject any key outside [allowed], naming the [clause] in the error. *)
