(* Circuit breaker per storage node, clocked by the traffic engine's
   modeled windows.  The state machine is pure — (spec, observation
   sequence) fully determines the trajectory — so the overload subsystem
   inherits the faults library's replay-exactness for free. *)

type spec = {
  open_rate : float;
  close_rate : float;
  cooldown_windows : int;
  probe : float;
  node : int option;
}

let default =
  { open_rate = 0.1; close_rate = 0.02; cooldown_windows = 2; probe = 0.2; node = None }

let validate s =
  if not (s.open_rate > 0. && s.open_rate <= 1.) then
    Error (Printf.sprintf "breaker: open must be in (0, 1] (got %g)" s.open_rate)
  else if not (s.close_rate > 0. && s.close_rate <= s.open_rate) then
    Error
      (Printf.sprintf "breaker: close must be in (0, open] (got %g, open %g)"
         s.close_rate s.open_rate)
  else if s.cooldown_windows < 1 then
    Error
      (Printf.sprintf "breaker: cooldown must be at least one window (got %d)"
         s.cooldown_windows)
  else if not (s.probe > 0. && s.probe <= 1.) then
    Error (Printf.sprintf "breaker: probe must be in (0, 1] (got %g)" s.probe)
  else Ok ()

let fstr = Printf.sprintf "%.12g"

let to_string s =
  Printf.sprintf "open=%s,close=%s,cooldown=%d,probe=%s%s" (fstr s.open_rate)
    (fstr s.close_rate) s.cooldown_windows (fstr s.probe)
    (match s.node with Some n -> Printf.sprintf ",node=%d" n | None -> "")

let ( let* ) = Result.bind

let of_string str =
  let* params = Fault_plan.parse_params str in
  let* () =
    Fault_plan.check_keys ~clause:"breaker"
      ~allowed:[ "open"; "close"; "cooldown"; "probe"; "node" ]
      params
  in
  let opt_float key fallback =
    match List.assoc_opt key params with
    | None -> Ok fallback
    | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "breaker: %s=%S is not a number" key v))
  in
  let* open_rate = opt_float "open" default.open_rate in
  let* close_rate = opt_float "close" default.close_rate in
  let* probe = opt_float "probe" default.probe in
  let* cooldown_windows =
    match List.assoc_opt "cooldown" params with
    | None -> Ok default.cooldown_windows
    | Some v -> (
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "breaker: cooldown=%S is not an integer" v))
  in
  let* node =
    match List.assoc_opt "node" params with
    | None -> Ok None
    | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> Ok (Some n)
      | _ -> Error (Printf.sprintf "breaker: node=%S is not a non-negative integer" v))
  in
  let s = { open_rate; close_rate; cooldown_windows; probe; node } in
  let* () = validate s in
  Ok s

type state = Closed | Open of { until_window : int } | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open _ -> "open"
  | Half_open -> "half-open"

type t = { t_spec : spec; t_state : state }

let create s = { t_spec = s; t_state = Closed }
let state t = t.t_state
let spec t = t.t_spec

let armed s ~node = match s.node with None -> true | Some n -> n = node

let admits t ~window =
  match t.t_state with
  | Closed -> `All
  | Half_open -> `Probe t.t_spec.probe
  | Open { until_window } -> if window >= until_window then `All else `None

let observe t ~window ~requests ~errors =
  let rate =
    if requests <= 0 then 0. else float_of_int errors /. float_of_int requests
  in
  let opened = Open { until_window = window + 1 + t.t_spec.cooldown_windows } in
  let state =
    match t.t_state with
    | Closed -> if requests > 0 && rate >= t.t_spec.open_rate then opened else Closed
    | Open { until_window } ->
      (* the cooldown is wall-free rest: observations during it are the
         failover traffic of other nodes, not evidence about this one *)
      if window + 1 >= until_window then Half_open else t.t_state
    | Half_open ->
      if requests = 0 then Half_open (* no probe traffic, no verdict *)
      else if rate >= t.t_spec.open_rate then opened
      else if rate <= t.t_spec.close_rate then Closed
      else Half_open (* between the thresholds: hold — hysteresis, no flap *)
  in
  { t with t_state = state }
