(** Per-storage-node circuit breaker on the modeled window clock.

    A breaker watches one node's observed read-error/timeout counts and
    moves through the classic closed -> open -> half-open cycle: a closed
    breaker opens when a window's error rate reaches [open_rate]; an open
    breaker waits [cooldown_windows] modeled windows, then goes half-open;
    a half-open breaker admits a [probe] fraction of the node's demand and
    closes only when the probe's error rate falls to [close_rate] — rates
    between the two thresholds leave it half-open, so the state cannot
    flap across the boundary (hysteresis).

    Everything is a pure function of the observation sequence: no wall
    clock, no draws, so breaker trajectories are byte-identical at every
    [--jobs] setting.  The traffic engine drives one breaker per storage
    shard and composes an open breaker with the PR 5 failover path: the
    node's traffic is routed to the next healthy node, like
    {!Injector.failover_node} routes a failed read. *)

type spec = {
  open_rate : float;  (** error rate at which a closed breaker opens *)
  close_rate : float;  (** error rate at which a half-open breaker closes *)
  cooldown_windows : int;  (** modeled windows an open breaker rests *)
  probe : float;  (** fraction of demand admitted while half-open *)
  node : int option;  (** arm only this storage node; [None] = all nodes *)
}

val default : spec
(** [open=0.1, close=0.02, cooldown=2, probe=0.2], all nodes armed. *)

val validate : spec -> (unit, string) result
(** Requires [0 < close_rate <= open_rate <= 1], [cooldown_windows >= 1]
    and [probe] in [(0, 1]]. *)

val of_string : string -> (spec, string) result
(** Parse ["open=R,close=R,cooldown=W,probe=F[,node=N]"] (any subset of
    keys; omitted keys take {!default}s), the same key=value grammar as
    {!Fault_plan.of_string} clauses.  The result is validated. *)

val to_string : spec -> string
(** Round-trips through {!of_string}. *)

type state =
  | Closed
  | Open of { until_window : int }  (** closed world resumes at this window *)
  | Half_open

val state_to_string : state -> string
(** ["closed"], ["open"], ["half-open"] — the report vocabulary. *)

type t

val create : spec -> t
val state : t -> state
val spec : t -> spec

val armed : spec -> node:int -> bool
(** Whether the spec covers this storage node. *)

val admits : t -> window:int -> [ `All | `Probe of float | `None ]
(** What the breaker lets through to its node in [window]: everything
    (closed), a probe fraction (half-open), or nothing — an open breaker's
    traffic takes the failover path.  Pure. *)

val observe : t -> window:int -> requests:int -> errors:int -> t
(** Fold the end-of-window observation ([errors] = read errors + timeouts
    among the [requests] actually served on the node during [window]) and
    return the state effective from the next window.  An open breaker
    ignores observations until its cooldown expires; a half-open breaker
    with no probe traffic stays half-open. *)
