type spec =
  | Read_error of { node : int option; rate : float }
  | Latency_spike of { node : int option; rate : float; multiplier : float }
  | Degraded of { node : int option; multiplier : float }
  | Cache_offline of { node : int }
  | Stripe_failover of { node : int; target : int option }

type t = { seed : int; retry : Retry.policy; specs : spec list }

let empty = { seed = 0; retry = Retry.default; specs = [] }
let is_empty t = t.specs = []
let with_seed t seed = { t with seed }

let scale t s =
  if s <= 0. then { t with specs = [] }
  else
    let clamp r = Float.min 1. (r *. s) in
    let specs =
      List.map
        (function
          | Read_error r -> Read_error { r with rate = clamp r.rate }
          | Latency_spike l -> Latency_spike { l with rate = clamp l.rate }
          | Degraded d -> Degraded { d with multiplier = 1. +. ((d.multiplier -. 1.) *. s) }
          | (Cache_offline _ | Stripe_failover _) as x -> x)
        t.specs
    in
    { t with specs }

let fstr = Printf.sprintf "%.12g"

let spec_to_string = function
  | Read_error { node; rate } ->
    Printf.sprintf "read-error:rate=%s%s" (fstr rate)
      (match node with Some n -> Printf.sprintf ",node=%d" n | None -> "")
  | Latency_spike { node; rate; multiplier } ->
    Printf.sprintf "latency:rate=%s,mult=%s%s" (fstr rate) (fstr multiplier)
      (match node with Some n -> Printf.sprintf ",node=%d" n | None -> "")
  | Degraded { node; multiplier } ->
    Printf.sprintf "degrade:mult=%s%s" (fstr multiplier)
      (match node with Some n -> Printf.sprintf ",node=%d" n | None -> "")
  | Cache_offline { node } -> Printf.sprintf "cache-off:node=%d" node
  | Stripe_failover { node; target } ->
    Printf.sprintf "failover:node=%d%s" node
      (match target with Some n -> Printf.sprintf ",to=%d" n | None -> "")

let to_string t =
  String.concat ";" (List.map spec_to_string t.specs @ [ Retry.to_string t.retry ])

(* --- parsing --------------------------------------------------------- *)

let ( let* ) = Result.bind

let parse_params s =
  (* "k1=v1,k2=v2" -> assoc list; duplicate keys rejected *)
  let parts = String.split_on_char ',' s |> List.map String.trim in
  List.fold_left
    (fun acc part ->
      let* acc = acc in
      match String.index_opt part '=' with
      | None -> Error (Printf.sprintf "expected key=value, got %S" part)
      | Some i ->
        let k = String.trim (String.sub part 0 i) in
        let v = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
        if List.mem_assoc k acc then Error (Printf.sprintf "duplicate key %S" k)
        else Ok ((k, v) :: acc))
    (Ok []) parts

let check_keys ~clause ~allowed params =
  List.fold_left
    (fun acc (k, _) ->
      let* () = acc in
      if List.mem k allowed then Ok ()
      else Error (Printf.sprintf "%s: unknown key %S (allowed: %s)" clause k
                    (String.concat ", " allowed)))
    (Ok ()) params

let float_param ~clause params key =
  match List.assoc_opt key params with
  | None -> Error (Printf.sprintf "%s: missing %s=" clause key)
  | Some v -> (
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "%s: %s=%S is not a number" clause key v))

let node_param ~clause params key =
  match List.assoc_opt key params with
  | None -> Ok None
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n >= 0 -> Ok (Some n)
    | _ -> Error (Printf.sprintf "%s: %s=%S is not a non-negative integer" clause key v))

let rate_param ~clause params =
  let* r = float_param ~clause params "rate" in
  if r >= 0. && r <= 1. then Ok r
  else Error (Printf.sprintf "%s: rate must be in [0, 1] (got %g)" clause r)

let mult_param ~clause params =
  let* m = float_param ~clause params "mult" in
  if m >= 1. then Ok m else Error (Printf.sprintf "%s: mult must be >= 1 (got %g)" clause m)

let parse_clause acc clause =
  let kind, params_s =
    match String.index_opt clause ':' with
    | None -> (clause, "")
    | Some i ->
      (String.sub clause 0 i, String.sub clause (i + 1) (String.length clause - i - 1))
  in
  let kind = String.trim kind in
  let* params = if params_s = "" then Ok [] else parse_params params_s in
  let retry, specs = acc in
  match kind with
  | "read-error" ->
    let* () = check_keys ~clause:kind ~allowed:[ "rate"; "node" ] params in
    let* rate = rate_param ~clause:kind params in
    let* node = node_param ~clause:kind params "node" in
    Ok (retry, Read_error { node; rate } :: specs)
  | "latency" ->
    let* () = check_keys ~clause:kind ~allowed:[ "rate"; "mult"; "node" ] params in
    let* rate = rate_param ~clause:kind params in
    let* multiplier = mult_param ~clause:kind params in
    let* node = node_param ~clause:kind params "node" in
    Ok (retry, Latency_spike { node; rate; multiplier } :: specs)
  | "degrade" ->
    let* () = check_keys ~clause:kind ~allowed:[ "mult"; "node" ] params in
    let* multiplier = mult_param ~clause:kind params in
    let* node = node_param ~clause:kind params "node" in
    Ok (retry, Degraded { node; multiplier } :: specs)
  | "cache-off" ->
    let* () = check_keys ~clause:kind ~allowed:[ "node" ] params in
    let* node = node_param ~clause:kind params "node" in
    (match node with
    | Some node -> Ok (retry, Cache_offline { node } :: specs)
    | None -> Error "cache-off: missing node=")
  | "failover" ->
    let* () = check_keys ~clause:kind ~allowed:[ "node"; "to" ] params in
    let* node = node_param ~clause:kind params "node" in
    let* target = node_param ~clause:kind params "to" in
    (match node with
    | Some node -> Ok (retry, Stripe_failover { node; target } :: specs)
    | None -> Error "failover: missing node=")
  | "retry" ->
    let* () =
      check_keys ~clause:kind ~allowed:[ "max"; "base"; "mult"; "jitter"; "timeout" ] params
    in
    let opt_float key default =
      match List.assoc_opt key params with
      | None -> Ok default
      | Some v -> (
        match float_of_string_opt v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "retry: %s=%S is not a number" key v))
    in
    let* max_retries =
      match List.assoc_opt "max" params with
      | None -> Ok retry.Retry.max_retries
      | Some v -> (
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "retry: max=%S is not an integer" v))
    in
    let* base_backoff_us = opt_float "base" retry.Retry.base_backoff_us in
    let* multiplier = opt_float "mult" retry.Retry.multiplier in
    let* jitter = opt_float "jitter" retry.Retry.jitter in
    let* timeout_us = opt_float "timeout" retry.Retry.timeout_us in
    let retry = { Retry.max_retries; base_backoff_us; multiplier; jitter; timeout_us } in
    let* () = Retry.validate retry in
    Ok (retry, specs)
  | "" -> Ok acc (* tolerate empty clauses: trailing/duplicated ';' *)
  | k -> Error (Printf.sprintf "unknown fault clause %S" k)

let of_string s =
  let clauses = String.split_on_char ';' s |> List.map String.trim in
  let* retry, specs_rev =
    List.fold_left
      (fun acc clause ->
        let* acc = acc in
        parse_clause acc clause)
      (Ok (Retry.default, []))
      clauses
  in
  Ok { seed = 0; retry; specs = List.rev specs_rev }
