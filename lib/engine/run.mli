(** The experiment runner: execute an application's block-request trace
    against a simulated storage hierarchy and report the paper's metrics. *)

open Flo_storage
open Flo_core
open Flo_workloads

type caching =
  | Lru  (** the paper's default: inclusive LRU at both layers *)
  | Demote  (** DEMOTE-LRU exclusive caching, Fig. 7(h) *)
  | Karma  (** KARMA hint-based exclusive caching, Fig. 7(h) *)
  | Custom of Policy.factory * Policy.factory
      (** any other (inclusive) policy pair, e.g. MQ or CLOCK *)

type result = {
  app : string;
  elapsed_us : float;  (** modeled parallel execution time *)
  l1 : Stats.t;  (** aggregated I/O-node cache counters *)
  l2 : Stats.t;  (** aggregated storage-node cache counters *)
  disk_reads : int;
  block_requests : int;  (** requests reaching the hierarchy (post-buffer) *)
  element_accesses : int;
  iterations : int;
  prefetches : int;  (** readahead insertions at the storage nodes *)
  prefetch_hits : int;  (** prefetched blocks later demand-touched *)
  l1_nodes : Stats.t array;  (** per-I/O-node counter snapshots *)
  l2_nodes : Stats.t array;  (** per-storage-node counter snapshots *)
  thread_us : float array;  (** per-thread modeled clocks *)
}

val l1_miss_per_element : result -> float
(** Misses per element access — the layout-independent denominator that
    makes Tables 2-3 comparable across layouts. *)

val l2_miss_per_element : result -> float

val run :
  ?mapping:int array ->
  ?caching:caching ->
  ?assigns:(int -> Compmap.strategy) ->
  ?sample:int ->
  ?readahead:int ->
  ?sink:Flo_obs.Sink.t ->
  ?metrics:Flo_obs.Metrics.t ->
  ?faults:Flo_faults.Injector.t ->
  config:Config.t ->
  layouts:(int -> File_layout.t) ->
  App.t ->
  result
(** [layouts] maps array ids to their file layouts.  [mapping] permutes
    threads over compute nodes.  [assigns] gives the computation-mapping
    baseline's strategy per nest index (layouts stay canonical there by
    convention, but any combination is allowed).  [sample > 1] runs the
    cheap profile-mode trace used by the search baselines.  [readahead]
    enables storage-node sequential prefetching (see
    {!Flo_storage.Hierarchy.create}).  [sink]/[metrics] attach the
    observability layer: structured trace events, the
    ["request_latency_us"]/["disk_service_us"] histograms, and a
    ["span.tracegen"] phase timing (defaults: off; simulation results are
    unaffected).  The sink is flushed before returning.

    [faults] attaches a fault injector to the hierarchy (see
    {!Flo_storage.Hierarchy.create} and [docs/ROBUSTNESS.md]); create one
    injector per run — read its counters back afterwards with
    {!Flo_faults.Injector.counts}.  Omitted (or compiled from an inert
    plan), the run is byte-identical to the fault-free path. *)

val karma_hints_of_streams :
  io_of_thread:(int -> int) -> io_nodes:int -> (int * Block.t array array) list ->
  Karma.hint list array
(** Per-I/O-node hint lists from weighted per-nest streams (exposed for
    tests): one hint per (thread, nest, file) giving its block range and
    request count.  Each (thread, nest) contribution is sorted ascending by
    [(file, lo_block)], so the result is a pure function of the streams —
    independent of hash-table iteration order. *)

val pp_result : Format.formatter -> result -> unit
