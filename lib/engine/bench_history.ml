(* Per-commit benchmark trajectory: append-only history rows distilled from
   bench manifests, plus a static HTML/SVG trend page.  Reuses
   Bench_schema.Json for parsing/printing and mirrors its save discipline
   (side file + fsync + rename). *)

module Json = Bench_schema.Json

let schema_name = "flopt-bench-history"
let schema_version = 1

type point = { name : string; value : float; unit_ : string }
type row = { commit : string; points : point list }
type t = { version : int; rows : row list }

let empty = { version = schema_version; rows = [] }

let valid_commit s =
  let ok = ref (s <> "" && String.length s <= 64) in
  String.iter
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> ()
      | _ -> ok := false)
    s;
  !ok

let check_points commit points =
  let ( let* ) r f = Result.bind r f in
  let* () = if points = [] then Error "no trend points" else Ok () in
  let* () =
    match List.find_opt (fun p -> not (Float.is_finite p.value)) points with
    | Some p ->
      Error (Printf.sprintf "point %s of commit %s is not finite" p.name commit)
    | None -> Ok ()
  in
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc p ->
      let* () = acc in
      if Hashtbl.mem seen p.name then
        Error (Printf.sprintf "duplicate point %s in commit %s" p.name commit)
      else begin
        Hashtbl.add seen p.name ();
        Ok ()
      end)
    (Ok ()) points

let upsert t ~commit points =
  let ( let* ) r f = Result.bind r f in
  let* () =
    if valid_commit commit then Ok ()
    else
      Error
        (Printf.sprintf
           "invalid commit id %S (want 1-64 chars of [A-Za-z0-9._-])" commit)
  in
  let* () = check_points commit points in
  let points = List.sort (fun a b -> compare a.name b.name) points in
  let row = { commit; points } in
  if List.exists (fun r -> r.commit = commit) t.rows then
    Ok
      { t with
        rows = List.map (fun r -> if r.commit = commit then row else r) t.rows }
  else Ok { t with rows = t.rows @ [ row ] }

let find t commit = List.find_opt (fun r -> r.commit = commit) t.rows

let series t name =
  List.filter_map
    (fun r ->
      List.find_opt (fun p -> p.name = name) r.points
      |> Option.map (fun p -> (r.commit, p.value)))
    t.rows

let validate t =
  let ( let* ) r f = Result.bind r f in
  let* () =
    if t.version = schema_version then Ok ()
    else
      Error
        (Printf.sprintf "unsupported schema version %d (expected %d)" t.version
           schema_version)
  in
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc r ->
      let* () = acc in
      let* () =
        if valid_commit r.commit then Ok ()
        else Error (Printf.sprintf "invalid commit id %S" r.commit)
      in
      let* () =
        if Hashtbl.mem seen r.commit then
          Error (Printf.sprintf "duplicate commit %s" r.commit)
        else begin
          Hashtbl.add seen r.commit ();
          Ok ()
        end
      in
      check_points r.commit r.points)
    (Ok ()) t.rows

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema_name);
      ("version", Json.Num (float_of_int t.version));
      ( "rows",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("commit", Json.Str r.commit);
                   ( "points",
                     Json.Arr
                       (List.map
                          (fun p ->
                            Json.Obj
                              [
                                ("name", Json.Str p.name);
                                ("value", Json.Num p.value);
                                ("unit", Json.Str p.unit_);
                              ])
                          r.points) );
                 ])
             t.rows) );
    ]

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let str = function Json.Str s -> Ok s | _ -> Error "expected a string" in
  let num = function Json.Num f -> Ok f | _ -> Error "expected a number" in
  let field obj name conv =
    match Json.member name obj with
    | Some v -> conv v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let list_of name conv obj =
    match Json.member name obj with
    | Some (Json.Arr items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* v = conv item in
          Ok (v :: acc))
        (Ok []) items
      |> Result.map List.rev
    | _ -> Error (Printf.sprintf "missing list %S" name)
  in
  let* schema = field j "schema" str in
  let* () =
    if schema = schema_name then Ok ()
    else Error (Printf.sprintf "not a %s file (schema %S)" schema_name schema)
  in
  let* version = Result.map int_of_float (field j "version" num) in
  let point item =
    let* name = field item "name" str in
    let* value = field item "value" num in
    let* unit_ = field item "unit" str in
    Ok { name; value; unit_ }
  in
  let row item =
    let* commit = field item "commit" str in
    let* points = list_of "points" point item in
    Ok { commit; points }
  in
  let* rows = list_of "rows" row j in
  let t = { version; rows } in
  let* () = validate t in
  Ok t

let parse_string contents =
  match Json.parse contents with
  | exception Json.Parse msg -> Error msg
  | j -> of_json j

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> (
    match parse_string contents with
    | Ok t -> Ok t
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

(* same discipline as Bench_schema.save: an interrupted save can never
   truncate the history a CI job is appending to *)
let save path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc (Json.to_string (to_json t));
         output_char oc '\n';
         flush oc;
         try Unix.fsync (Unix.descr_of_out_channel oc)
         with Unix.Unix_error _ -> ())
   with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

(* -- manifest distillation ----------------------------------------------- *)

let metrics_of_manifest (m : Bench_schema.t) =
  let points = ref [] in
  let add name value unit_ = points := { name; value; unit_ } :: !points in
  (* geometric mean of the per-app tracegen throughputs: the suite-level
     "how fast is trace generation" number, robust to one app dominating *)
  let tracegen =
    List.filter_map
      (fun (mm : Bench_schema.metric) ->
        if mm.Bench_schema.name = "tracegen_elems_per_sec.inter"
           && mm.Bench_schema.value > 0.
        then Some mm.Bench_schema.value
        else None)
      m.Bench_schema.metrics
  in
  (match tracegen with
  | [] -> ()
  | vs ->
    let lnsum = List.fold_left (fun acc v -> acc +. log v) 0. vs in
    add "tracegen_elems_per_sec"
      (exp (lnsum /. float_of_int (List.length vs)))
      "elem/s");
  let value_of app name =
    List.find_opt
      (fun (mm : Bench_schema.metric) ->
        mm.Bench_schema.app = app && mm.Bench_schema.name = name)
      m.Bench_schema.metrics
    |> Option.map (fun (mm : Bench_schema.metric) -> mm.Bench_schema.value)
  in
  Option.iter (fun v -> add "suite_wall_s" v "s") (value_of "_suite" "suite_wall_s.seq");
  Option.iter (fun v -> add "modeled_rps" v "req/s") (value_of "_traffic" "modeled_rps");
  Option.iter (fun v -> add "slo_burn_rate" v "x") (value_of "_slo" "fleet_burn_rate");
  Option.iter
    (fun v -> add "overload_goodput_rps" v "req/s")
    (value_of "_overload" "goodput_rps");
  List.rev !points

(* -- trend page ----------------------------------------------------------

   Design notes (and the constraints they satisfy):
   - five metrics of different scales -> small multiples, one single-series
     chart each, never a dual axis;
   - colors assigned in the palette's fixed categorical order (slots 1-5),
     validated for both modes; panels are separate plots, so slot adjacency
     never shares an axis;
   - identity is never color-alone: each panel's title names its series and
     the last point carries a direct value label; the full history is also
     a table (which doubles as the relief for the two light-mode slots
     below 3:1 contrast);
   - no JavaScript: hover detail comes from native SVG <title> tooltips;
   - dark mode is selected (the palette's dark steps), not a filter. *)

let series_specs =
  [
    ("tracegen_elems_per_sec", "Tracegen throughput", "elem/s", "s1");
    ("suite_wall_s", "Bench suite wall time", "s", "s2");
    ("modeled_rps", "Traffic engine modeled RPS", "req/s", "s3");
    ("slo_burn_rate", "Fleet SLO burn rate", "x", "s4");
    ("overload_goodput_rps", "Overload goodput under storm", "req/s", "s5");
  ]

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let short_commit c = if String.length c <= 10 then c else String.sub c 0 10

(* fixed-precision human rendering; deterministic (no locale, no %g
   exponent surprises in the magnitudes we chart) *)
let fmt_value v =
  let scaled, suffix =
    let a = Float.abs v in
    if a >= 1e9 then (v /. 1e9, "G")
    else if a >= 1e6 then (v /. 1e6, "M")
    else if a >= 1e3 then (v /. 1e3, "k")
    else (v, "")
  in
  let a = Float.abs scaled in
  let body =
    if a >= 100. then Printf.sprintf "%.0f" scaled
    else if a >= 10. then Printf.sprintf "%.1f" scaled
    else if a >= 1. then Printf.sprintf "%.2f" scaled
    else Printf.sprintf "%.3f" scaled
  in
  body ^ suffix

(* largest 1/2/5 x 10^k step that yields <= 5 ticks over [0, hi] *)
let nice_step hi =
  if hi <= 0. then 1.
  else begin
    let raw = hi /. 4. in
    let mag = 10. ** Float.of_int (int_of_float (Float.floor (Float.log10 raw))) in
    let n = raw /. mag in
    let m = if n <= 1. then 1. else if n <= 2. then 2. else if n <= 5. then 5. else 10. in
    m *. mag
  end

let f2 v = Printf.sprintf "%.2f" v

(* one panel: x = row index over the whole history, y = [0, nice max];
   rows lacking the series break the polyline into gap-separated runs *)
let chart b ~title ~unit ~cls ~commits ~values =
  let w = 640. and h = 230. in
  let ml = 62. and mr = 18. and mt = 14. and mb = 34. in
  let iw = w -. ml -. mr and ih = h -. mt -. mb in
  let n = Array.length commits in
  let vmax =
    Array.fold_left
      (fun acc v -> match v with Some v -> Float.max acc v | None -> acc)
      0. values
  in
  let step = nice_step vmax in
  let ticks = int_of_float (Float.ceil (Float.max 1. (vmax /. step))) in
  let ymax = step *. float_of_int ticks in
  let x i =
    if n <= 1 then ml +. (iw /. 2.)
    else ml +. (iw *. float_of_int i /. float_of_int (n - 1))
  in
  let y v = mt +. ih -. (ih *. v /. ymax) in
  Buffer.add_string b
    (Printf.sprintf
       "<figure class=\"panel\"><figcaption>%s <span class=\"unit\">(%s)</span></figcaption>\n"
       (html_escape title) (html_escape unit));
  Buffer.add_string b
    (Printf.sprintf
       "<svg viewBox=\"0 0 %.0f %.0f\" role=\"img\" aria-label=\"%s per commit\">\n"
       w h (html_escape title));
  (* recessive grid + y tick labels *)
  for t = 0 to ticks do
    let v = step *. float_of_int t in
    let yy = y v in
    Buffer.add_string b
      (Printf.sprintf
         "<line class=\"grid\" x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\"/>\n"
         (f2 ml) (f2 yy) (f2 (w -. mr)) (f2 yy));
    Buffer.add_string b
      (Printf.sprintf
         "<text class=\"tick\" x=\"%s\" y=\"%s\" text-anchor=\"end\">%s</text>\n"
         (f2 (ml -. 8.)) (f2 (yy +. 4.)) (fmt_value v))
  done;
  (* x tick labels: first, last, and every k-th in between *)
  let every = max 1 ((n + 5) / 6) in
  Array.iteri
    (fun i c ->
      if i = 0 || i = n - 1 || i mod every = 0 then
        Buffer.add_string b
          (Printf.sprintf
             "<text class=\"tick\" x=\"%s\" y=\"%s\" text-anchor=\"middle\">%s</text>\n"
             (f2 (x i)) (f2 (h -. 10.)) (html_escape (short_commit c))))
    commits;
  (* gap-separated polyline runs *)
  let run = ref [] in
  let flush_run () =
    (match !run with
    | [] | [ _ ] -> ()
    | pts ->
      let pts = List.rev pts in
      Buffer.add_string b
        (Printf.sprintf "<polyline class=\"line %s\" points=\"%s\"/>\n" cls
           (String.concat " "
              (List.map (fun (px, py) -> Printf.sprintf "%s,%s" (f2 px) (f2 py)) pts))));
    run := []
  in
  Array.iteri
    (fun i v ->
      match v with
      | None -> flush_run ()
      | Some v -> run := (x i, y v) :: !run)
    values;
  flush_run ();
  (* markers with native tooltips; the last sample gets a direct label *)
  let last =
    let r = ref (-1) in
    Array.iteri (fun i v -> if v <> None then r := i) values;
    !r
  in
  Array.iteri
    (fun i v ->
      match v with
      | None -> ()
      | Some v ->
        Buffer.add_string b
          (Printf.sprintf
             "<circle class=\"dot %s\" cx=\"%s\" cy=\"%s\" r=\"4\"><title>%s: %s %s</title></circle>\n"
             cls (f2 (x i)) (f2 (y v))
             (html_escape commits.(i))
             (fmt_value v) (html_escape unit));
        if i = last then begin
          let anchor = if x i > w -. mr -. 70. then "end" else "start" in
          let dx = if anchor = "end" then -8. else 8. in
          Buffer.add_string b
            (Printf.sprintf
               "<text class=\"label\" x=\"%s\" y=\"%s\" text-anchor=\"%s\">%s</text>\n"
               (f2 (x i +. dx)) (f2 (y v -. 8.)) anchor (fmt_value v))
        end)
    values;
  Buffer.add_string b "</svg></figure>\n"

let style =
  {css|
:root { color-scheme: light dark; }
body {
  margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
  font: 14px/1.5 system-ui, sans-serif;
  background: #fcfcfb; color: #0b0b0b;
}
h1 { font-size: 1.3rem; }
.sub { color: #52514e; margin-bottom: 1.5rem; }
.panels { display: grid; grid-template-columns: repeat(auto-fit, minmax(20rem, 1fr)); gap: 1.5rem; }
.panel { margin: 0; }
.panel figcaption { font-weight: 600; margin-bottom: .25rem; }
.panel .unit { color: #52514e; font-weight: 400; }
svg { width: 100%; height: auto; }
.grid { stroke: #e7e6e2; stroke-width: 1; }
.tick, .label { font: 11px system-ui, sans-serif; fill: #52514e; }
.label { font-weight: 600; fill: #0b0b0b; }
.line { fill: none; stroke-width: 2; }
.dot { stroke: #fcfcfb; stroke-width: 2; }
.line.s1 { stroke: #2a78d6; } .dot.s1 { fill: #2a78d6; }
.line.s2 { stroke: #eb6834; } .dot.s2 { fill: #eb6834; }
.line.s3 { stroke: #1baf7a; } .dot.s3 { fill: #1baf7a; }
.line.s4 { stroke: #eda100; } .dot.s4 { fill: #eda100; }
.line.s5 { stroke: #8a5cd6; } .dot.s5 { fill: #8a5cd6; }
table { border-collapse: collapse; margin-top: 2rem; }
th, td { text-align: right; padding: .3rem .8rem; border-bottom: 1px solid #e7e6e2; }
th:first-child, td:first-child { text-align: left; font-family: ui-monospace, monospace; }
thead th { color: #52514e; font-weight: 600; }
@media (prefers-color-scheme: dark) {
  body { background: #1a1a19; color: #ffffff; }
  .sub, .panel .unit, thead th { color: #c3c2b7; }
  .grid { stroke: #383835; }
  .tick { fill: #c3c2b7; }
  .label { fill: #ffffff; }
  .dot { stroke: #1a1a19; }
  .line.s1 { stroke: #3987e5; } .dot.s1 { fill: #3987e5; }
  .line.s2 { stroke: #d95926; } .dot.s2 { fill: #d95926; }
  .line.s3 { stroke: #199e70; } .dot.s3 { fill: #199e70; }
  .line.s4 { stroke: #c98500; } .dot.s4 { fill: #c98500; }
  .line.s5 { stroke: #9a70e0; } .dot.s5 { fill: #9a70e0; }
  th, td { border-bottom-color: #383835; }
}
|css}

let render_page t =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
     <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n\
     <title>flopt bench trajectory</title>\n<style>";
  Buffer.add_string b style;
  Buffer.add_string b "</style>\n</head>\n<body>\n";
  Buffer.add_string b "<h1>flopt bench trajectory</h1>\n";
  Buffer.add_string b
    (Printf.sprintf "<p class=\"sub\">%d commit%s recorded, oldest first.</p>\n"
       (List.length t.rows)
       (if List.length t.rows = 1 then "" else "s"));
  let commits = Array.of_list (List.map (fun r -> r.commit) t.rows) in
  Buffer.add_string b "<div class=\"panels\">\n";
  List.iter
    (fun (name, title, unit, cls) ->
      let values =
        Array.of_list
          (List.map
             (fun r ->
               List.find_opt (fun p -> p.name = name) r.points
               |> Option.map (fun p -> p.value))
             t.rows)
      in
      if Array.exists (fun v -> v <> None) values then
        chart b ~title ~unit ~cls ~commits ~values)
    series_specs;
  Buffer.add_string b "</div>\n";
  (* table view: every row, every charted series *)
  let shown =
    List.filter
      (fun (name, _, _, _) ->
        List.exists (fun r -> List.exists (fun p -> p.name = name) r.points) t.rows)
      series_specs
  in
  if t.rows <> [] && shown <> [] then begin
    Buffer.add_string b "<table>\n<thead><tr><th>commit</th>";
    List.iter
      (fun (_, title, unit, _) ->
        Buffer.add_string b
          (Printf.sprintf "<th>%s (%s)</th>" (html_escape title) (html_escape unit)))
      shown;
    Buffer.add_string b "</tr></thead>\n<tbody>\n";
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf "<tr><td>%s</td>" (html_escape r.commit));
        List.iter
          (fun (name, _, _, _) ->
            match List.find_opt (fun p -> p.name = name) r.points with
            | Some p -> Buffer.add_string b (Printf.sprintf "<td>%s</td>" (fmt_value p.value))
            | None -> Buffer.add_string b "<td>&mdash;</td>")
          shown;
        Buffer.add_string b "</tr>\n")
      t.rows;
    Buffer.add_string b "</tbody>\n</table>\n"
  end;
  Buffer.add_string b "</body>\n</html>\n";
  Buffer.contents b
