open Flo_linalg
open Flo_poly
open Flo_storage
open Flo_core

let plan_of ~threads ~blocks_per_thread ?assign ?cluster nest =
  let u = nest.Loop_nest.parallel_dim in
  let extent = Iter_space.extent nest.Loop_nest.space u in
  let num_blocks = min (threads * blocks_per_thread) extent in
  match assign with
  | None -> Parallelize.custom ~threads ~num_blocks ~assign:(fun b -> b mod threads) nest
  | Some strategy ->
    let cluster =
      match cluster with
      | Some c -> c
      | None -> invalid_arg "Tracegen: assign requires cluster"
    in
    Parallelize.custom ~threads ~num_blocks
      ~assign:(fun b -> Compmap.assign strategy ~cluster ~threads ~num_blocks b)
      nest

(* ---- naive reference generator ----------------------------------------

   The original per-element implementation: evaluate the access map, run
   the full offset_of transform + division chain, dedup through a Hashtbl,
   accumulate a cons list.  Retained verbatim as the executable
   specification of the stream semantics; the fast path below must be (and
   is tested to be) element-for-element identical to it. *)

let reference_streams ~layouts ~block_elems ~threads ~blocks_per_thread ?assign ?cluster
    ?(sample = 1) nest =
  if sample < 1 then invalid_arg "Tracegen.reference_streams: sample < 1";
  let plan = plan_of ~threads ~blocks_per_thread ?assign ?cluster nest in
  let refs =
    List.map (fun r -> (Access.array_id r, layouts (Access.array_id r), r)) nest.Loop_nest.refs
  in
  let totals = Parallelize.iterations_per_thread plan in
  Array.init threads (fun thread ->
      let acc = ref [] in
      let count = ref 0 in
      (* per-file last-block memory: the I/O runtime buffers one block per
         open file, so a request is only issued when a reference leaves the
         block it last read from that file *)
      let last_index = Hashtbl.create 8 in
      let counter = ref 0 in
      (* profile mode keeps a prefix of each thread's iterations: a prefix
         preserves the contiguity structure a strided subsample would break,
         so sampled evaluations transfer to full runs *)
      let limit = (totals.(thread) + sample - 1) / sample in
      Parallelize.iter_thread plan ~thread (fun iter ->
          let keep = !counter < limit in
          incr counter;
          if keep then
            List.iter
              (fun (file, layout, r) ->
                let offset = File_layout.offset_of layout (Access.eval r iter) in
                let index = offset / block_elems in
                if Hashtbl.find_opt last_index file <> Some index then begin
                  Hashtbl.replace last_index file index;
                  acc := Block.make ~file ~index :: !acc;
                  incr count
                end)
              refs);
      let arr = Array.make !count (Block.make ~file:0 ~index:0) in
      let rec fill i = function
        | [] -> ()
        | b :: rest ->
          arr.(i) <- b;
          fill (i - 1) rest
      in
      fill (!count - 1) !acc;
      arr)

(* ---- fast path ---------------------------------------------------------

   Strength reduction: every quantity the stream depends on is affine in
   the iteration vector.

   - Canonical layouts are globally linear in the element coordinates
     (File_layout.linear_strides), and the element coordinates are affine
     in the iteration vector, so the file offset itself is one affine
     functional w . i + c: stepping the innermost loop adds w_inner,
     carrying into an outer loop adds a precomputable carry delta.  No
     per-element vector allocation, no transform, no division — the block
     index only needs a division when the offset leaves the current
     block's [lo, lo + block_elems) window.

   - The inter-node layout is piecewise linear: its two inputs vv (the
     partition coordinate of D a + shift) and lin_rest (the row-major
     linearization of the other coordinates) are each affine in the
     iteration vector, so the same cursor machinery tracks them and
     File_layout.offset_of_transformed finishes the job on memoized Step II
     parameters.

   Streams are built in preallocated growable int buffers (files/indices
   pairs), with a per-file last-block array replacing the Hashtbl, and
   materialized into Block.t arrays once at the end. *)

(* one affine functional w . i + c over the iteration space, evaluated
   incrementally along the lexicographic walk *)
type functional = { w : int array; c : int }

(* per-(ref, layout) immutable description *)
type ref_spec =
  | Linear_ref of { file : int; off : functional }
  | Inter_ref of {
      file : int;
      il : File_layout.internode;
      vv : functional;
      lr : functional;
    }

(* per-thread mutable evaluation state for one ref_spec *)
type cursor = {
  spec : ref_spec;
  mutable cur_off : int;  (* Linear_ref: current offset *)
  mutable cur_vv : int;  (* Inter_ref: current vv *)
  mutable cur_lr : int;  (* Inter_ref: current lin_rest *)
  (* carry deltas for the current block slice, one per loop dimension *)
  off_delta : int array;
  vv_delta : int array;
  lr_delta : int array;
  (* current block window: index valid while cur_off in [blk_lo, blk_lo +
     block_elems); initialized to an empty window below any valid offset *)
  mutable blk_lo : int;
  mutable blk_idx : int;
}

(* w . i + c for the access row weighted by [strides]: the layout offset
   (resp. vv / lin_rest component) as one functional of the iteration
   vector *)
let compose_functional ~strides mat const =
  let m = Array.length strides in
  let depth = Imat.cols mat in
  let w = Array.make depth 0 in
  for j = 0 to depth - 1 do
    let acc = ref 0 in
    for k = 0 to m - 1 do
      acc := !acc + (strides.(k) * Imat.get mat k j)
    done;
    w.(j) <- !acc
  done;
  let c = ref 0 in
  for k = 0 to m - 1 do
    c := !c + (strides.(k) * const.(k))
  done;
  { w; c = !c }

let unit_strides v m =
  let s = Array.make m 0 in
  s.(v) <- 1;
  s

let spec_of_ref ~layouts r =
  let file = Access.array_id r in
  let layout = layouts file in
  match File_layout.linear_strides layout with
  | Some strides ->
    Linear_ref { file; off = compose_functional ~strides (Access.matrix r) (Access.offset r) }
  | None -> (
    match layout with
    | File_layout.Internode il ->
      (* compose the access with the Step I transform once:
         a'(i) = D (M i + q) + shift = (D M) i + (D q + shift) *)
      let mat = Imat.mul il.File_layout.d (Access.matrix r) in
      let const =
        Ivec.add (Imat.mul_vec il.File_layout.d (Access.offset r)) il.File_layout.shift
      in
      let m = Imat.rows mat in
      Inter_ref
        {
          file;
          il;
          vv = compose_functional ~strides:(unit_strides il.File_layout.v m) mat const;
          lr = compose_functional ~strides:il.File_layout.rest_strides mat const;
        }
    | _ -> assert false (* linear_strides covers every canonical layout *))

let cursor_of_spec ~block_elems depth spec =
  {
    spec;
    cur_off = 0;
    cur_vv = 0;
    cur_lr = 0;
    off_delta = Array.make depth 0;
    vv_delta = Array.make depth 0;
    lr_delta = Array.make depth 0;
    (* empty window below every valid (nonnegative) offset, chosen so
       [off - blk_lo] cannot overflow *)
    blk_lo = -block_elems;
    blk_idx = -1;
  }

(* position the cursor at the lexicographic corner of a slice and
   precompute, per dimension k, the delta of one odometer step at k:
   +w_k for the increment, minus the full unwind of every inner dimension *)
let init_cursor_for_slice cursor ~lo ~hi =
  let depth = Array.length lo in
  let setup (f : functional) delta =
    let v = ref f.c in
    for j = 0 to depth - 1 do
      v := !v + (f.w.(j) * lo.(j))
    done;
    for k = 0 to depth - 1 do
      let d = ref f.w.(k) in
      for j = k + 1 to depth - 1 do
        d := !d - (f.w.(j) * (hi.(j) - lo.(j)))
      done;
      delta.(k) <- !d
    done;
    !v
  in
  match cursor.spec with
  | Linear_ref { off; _ } -> cursor.cur_off <- setup off cursor.off_delta
  | Inter_ref { vv; lr; _ } ->
    cursor.cur_vv <- setup vv cursor.vv_delta;
    cursor.cur_lr <- setup lr cursor.lr_delta

let step_cursor cursor k =
  match cursor.spec with
  | Linear_ref _ -> cursor.cur_off <- cursor.cur_off + cursor.off_delta.(k)
  | Inter_ref _ ->
    cursor.cur_vv <- cursor.cur_vv + cursor.vv_delta.(k);
    cursor.cur_lr <- cursor.cur_lr + cursor.lr_delta.(k)

(* growable (file, index) pair buffer: the only allocations on the hot path
   are the amortized doublings *)
type buf = {
  mutable files : int array;
  mutable indices : int array;
  mutable len : int;
}

let buf_create () = { files = Array.make 256 0; indices = Array.make 256 0; len = 0 }

let buf_push b ~file ~index =
  if b.len = Array.length b.files then begin
    let cap = 2 * b.len in
    let files = Array.make cap 0 and indices = Array.make cap 0 in
    Array.blit b.files 0 files 0 b.len;
    Array.blit b.indices 0 indices 0 b.len;
    b.files <- files;
    b.indices <- indices
  end;
  b.files.(b.len) <- file;
  b.indices.(b.len) <- index;
  b.len <- b.len + 1

let buf_to_stream b =
  Array.init b.len (fun i -> Block.make ~file:b.files.(i) ~index:b.indices.(i))

exception Done

let nest_streams ~layouts ~block_elems ~threads ~blocks_per_thread ?assign ?cluster
    ?(sample = 1) nest =
  if sample < 1 then invalid_arg "Tracegen.nest_streams: sample < 1";
  let plan = plan_of ~threads ~blocks_per_thread ?assign ?cluster nest in
  let space = nest.Loop_nest.space in
  let depth = Iter_space.depth space in
  let u = nest.Loop_nest.parallel_dim in
  let totals = Parallelize.iterations_per_thread plan in
  let specs = Array.of_list (List.map (spec_of_ref ~layouts) nest.Loop_nest.refs) in
  let nrefs = Array.length specs in
  let max_file =
    Array.fold_left
      (fun m s -> max m (match s with Linear_ref r -> r.file | Inter_ref r -> r.file))
      0 specs
  in
  let space_lo = Array.init depth (Iter_space.lo space) in
  let space_hi = Array.init depth (Iter_space.hi space) in
  Array.init threads (fun thread ->
      let cursors = Array.map (cursor_of_spec ~block_elems depth) specs in
      let last = Array.make (max_file + 1) (-1) in
      let buf = buf_create () in
      let limit = (totals.(thread) + sample - 1) / sample in
      let kept = ref 0 in
      let lo = Array.copy space_lo and hi = Array.copy space_hi in
      let v = Array.make depth 0 in
      let visit () =
        if !kept >= limit then raise Done;
        incr kept;
        for r = 0 to nrefs - 1 do
          let c = cursors.(r) in
          let off =
            match c.spec with
            | Linear_ref _ -> c.cur_off
            | Inter_ref { il; _ } ->
              File_layout.offset_of_transformed il ~vv:c.cur_vv ~lin_rest:c.cur_lr
          in
          let index =
            if off >= c.blk_lo && off - c.blk_lo < block_elems then c.blk_idx
            else begin
              let i = off / block_elems in
              c.blk_idx <- i;
              c.blk_lo <- i * block_elems;
              i
            end
          in
          let file = match c.spec with Linear_ref r -> r.file | Inter_ref r -> r.file in
          if last.(file) <> index then begin
            last.(file) <- index;
            buf_push buf ~file ~index
          end
        done
      in
      (try
         List.iter
           (fun b ->
             let blo, bhi = Parallelize.block_range plan b in
             let blo = max blo space_lo.(u) and bhi = min bhi space_hi.(u) in
             if blo <= bhi then begin
               lo.(u) <- blo;
               hi.(u) <- bhi;
               Array.blit lo 0 v 0 depth;
               Array.iter (fun c -> init_cursor_for_slice c ~lo ~hi) cursors;
               visit ();
               (* odometer over the slice in lexicographic order: find the
                  deepest incrementable dimension, bump it, reset the inner
                  ones — each cursor absorbs the whole step as one add *)
               let continue = ref true in
               while !continue do
                 let k = ref (depth - 1) in
                 while !k >= 0 && v.(!k) = hi.(!k) do
                   decr k
                 done;
                 if !k < 0 then continue := false
                 else begin
                   let k = !k in
                   v.(k) <- v.(k) + 1;
                   for j = k + 1 to depth - 1 do
                     v.(j) <- lo.(j)
                   done;
                   Array.iter (fun c -> step_cursor c k) cursors;
                   visit ()
                 end
               done
             end)
           (Parallelize.blocks_of_thread plan thread)
       with Done -> ());
      buf_to_stream buf)

let iterations_per_thread ~threads ~blocks_per_thread ?(sample = 1) nest =
  let plan = plan_of ~threads ~blocks_per_thread nest in
  let counts = Parallelize.iterations_per_thread plan in
  Array.map (fun c -> (c + sample - 1) / sample) counts
