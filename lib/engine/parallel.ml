(* Deterministic Domain-based fan-out for the experiment grid.

   Tasks are pure from the pool's point of view: each closure owns its
   sinks, metrics registries and hierarchies, so the only shared state is
   the input array (read-only) and the results array (disjoint writes, one
   slot per task, published by Domain.join).  Results are merged by input
   index, so every jobs setting — including 1, which never spawns a domain
   and is byte-for-byte today's sequential code path — produces the same
   value in the same order. *)

let env_jobs () =
  match Sys.getenv_opt "FLOPT_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> Some n
    | _ -> invalid_arg (Printf.sprintf "FLOPT_JOBS=%S: expected a positive integer" s))

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count ())

let resolve_jobs = function
  | None -> default_jobs ()
  | Some n when n >= 1 -> n
  | Some n -> invalid_arg (Printf.sprintf "Parallel: jobs = %d < 1" n)

let map ?jobs f arr =
  let n = Array.length arr in
  let jobs = min (resolve_jobs jobs) n in
  if jobs <= 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* capture per-task failures so one bad task neither kills the
             domain nor starves the queue; the join below re-raises the
             lowest-index failure, independent of scheduling *)
          let r =
            try Ok (f arr.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    (* spawn inside the protected region: if Domain.spawn itself raises
       partway (resource exhaustion), the domains already started are still
       joined — the pool can never leak a domain, even when every task (or
       the spawn loop) throws *)
    let helpers = ref [] in
    Fun.protect
      ~finally:(fun () -> List.iter Domain.join !helpers)
      (fun () ->
        for _ = 1 to jobs - 1 do
          helpers := Domain.spawn worker :: !helpers
        done;
        (* the calling domain is the jobs-th worker *)
        worker ());
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let map_list ?jobs f l = Array.to_list (map ?jobs f (Array.of_list l))
