(* Machine-readable benchmark trajectory: a versioned JSON manifest of the
   numbers one `bench -- json` invocation produced, plus the diff/gating
   logic `flopt bench-diff` applies between two manifests. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse of string

  (* Deepest container nesting the parser accepts.  Real manifests nest 3
     levels; the cap turns a hostile "[[[[..." input into a Parse error
     instead of a stack overflow, which keeps the parser total. *)
  let max_depth = 256

  (* Recursive-descent parser over the whole (possibly multi-line) input —
     the trace-event parser in Flo_obs.Event is single-line and flat, this
     one handles the nested manifest. *)
  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
      do
        incr pos
      done
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let expect c =
      skip_ws ();
      if peek () = Some c then incr pos
      else fail "expected '%c' at offset %d" c !pos
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail "unexpected token at offset %d" !pos
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            if !pos + 1 >= n then fail "dangling escape";
            (match s.[!pos + 1] with
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | c -> Buffer.add_char b c);
            pos := !pos + 2;
            go ()
          | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let number_lit () =
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr pos
      done;
      if !pos = start then fail "expected a value at offset %d" start;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number at offset %d" start
    in
    let rec value depth =
      if depth > max_depth then fail "nesting deeper than %d at offset %d" max_depth !pos;
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (string_lit ())
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = string_lit () in
            expect ':';
            let v = value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}' at offset %d" !pos
          in
          members ();
          Obj (List.rev !fields)
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']' at offset %d" !pos
          in
          elements ();
          Arr (List.rev !items)
        end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (number_lit ())
    in
    let v = value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at offset %d" !pos;
    v

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let num_to_string f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let to_string t =
    let b = Buffer.create 256 in
    let rec go = function
      | Null -> Buffer.add_string b "null"
      | Bool v -> Buffer.add_string b (string_of_bool v)
      | Num f -> Buffer.add_string b (num_to_string f)
      | Str s -> Buffer.add_string b ("\"" ^ escape s ^ "\"")
      | Arr items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          items;
        Buffer.add_char b ']'
      | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b ("\"" ^ escape k ^ "\":");
            go v)
          fields;
        Buffer.add_char b '}'
    in
    go t;
    Buffer.contents b

  let member name = function Obj kvs -> List.assoc_opt name kvs | _ -> None
end

let schema_name = "flopt-bench"
let schema_version = 1

type metric = {
  app : string;
  name : string;
  value : float;
  unit_ : string;
  gated : bool;
}

type t = {
  version : int;
  apps : string list;
  sample : int;
  block_elems : int;
  threads : int;
  metrics : metric list;
}

let make ~apps ~sample ~block_elems ~threads metrics =
  { version = schema_version; apps; sample; block_elems; threads; metrics }

let metric_key m = (m.app, m.name)

let validate t =
  let ( let* ) r f = Result.bind r f in
  let* () =
    if t.version = schema_version then Ok ()
    else
      Error
        (Printf.sprintf "unsupported schema version %d (expected %d)" t.version
           schema_version)
  in
  let* () = if t.apps = [] then Error "no apps recorded" else Ok () in
  let* () =
    if t.sample >= 1 && t.block_elems >= 1 && t.threads >= 1 then Ok ()
    else Error "non-positive config field"
  in
  let* () =
    match List.find_opt (fun m -> Float.is_nan m.value) t.metrics with
    | Some m -> Error (Printf.sprintf "metric %s/%s is NaN" m.app m.name)
    | None -> Ok ()
  in
  let seen = Hashtbl.create 64 in
  let rec dups = function
    | [] -> Ok ()
    | m :: rest ->
      if Hashtbl.mem seen (metric_key m) then
        Error (Printf.sprintf "duplicate metric %s/%s" m.app m.name)
      else begin
        Hashtbl.add seen (metric_key m) ();
        dups rest
      end
  in
  dups t.metrics

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema_name);
      ("version", Json.Num (float_of_int t.version));
      ( "config",
        Json.Obj
          [
            ("apps", Json.Arr (List.map (fun a -> Json.Str a) t.apps));
            ("sample", Json.Num (float_of_int t.sample));
            ("block_elems", Json.Num (float_of_int t.block_elems));
            ("threads", Json.Num (float_of_int t.threads));
          ] );
      ( "metrics",
        Json.Arr
          (List.map
             (fun m ->
               Json.Obj
                 [
                   ("app", Json.Str m.app);
                   ("name", Json.Str m.name);
                   ("value", Json.Num m.value);
                   ("unit", Json.Str m.unit_);
                   ("gated", Json.Bool m.gated);
                 ])
             t.metrics) );
    ]

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let str = function Json.Str s -> Ok s | _ -> Error "expected a string" in
  let num = function Json.Num f -> Ok f | _ -> Error "expected a number" in
  let int j = Result.map int_of_float (num j) in
  let boolean = function Json.Bool b -> Ok b | _ -> Error "expected a bool" in
  let field obj name conv =
    match Json.member name obj with
    | Some v -> conv v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let* schema = field j "schema" str in
  let* () =
    if schema = schema_name then Ok ()
    else Error (Printf.sprintf "not a %s manifest (schema %S)" schema_name schema)
  in
  let* version = field j "version" int in
  let* config =
    match Json.member "config" j with
    | Some (Json.Obj _ as c) -> Ok c
    | _ -> Error "missing config object"
  in
  let* apps =
    field config "apps" (function
      | Json.Arr items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* s = str item in
            Ok (s :: acc))
          (Ok []) items
        |> Result.map List.rev
      | _ -> Error "config.apps must be a list")
  in
  let* sample = field config "sample" int in
  let* block_elems = field config "block_elems" int in
  let* threads = field config "threads" int in
  let* metrics =
    match Json.member "metrics" j with
    | Some (Json.Arr items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* app = field item "app" str in
          let* name = field item "name" str in
          let* value = field item "value" num in
          let* unit_ = field item "unit" str in
          let* gated = field item "gated" boolean in
          Ok ({ app; name; value; unit_; gated } :: acc))
        (Ok []) items
      |> Result.map List.rev
    | _ -> Error "missing metrics list"
  in
  let t = { version; apps; sample; block_elems; threads; metrics } in
  let* () = validate t in
  Ok t

(* Atomic and durable: write a side file, fsync it, and rename it onto
   [path] only after a successful close — an interrupted save (crash, ^C,
   full disk, power loss) can never leave a truncated manifest where a
   baseline used to be. *)
let save path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc (Json.to_string (to_json t));
         output_char oc '\n';
         flush oc;
         try Unix.fsync (Unix.descr_of_out_channel oc)
         with Unix.Unix_error _ -> ())
   with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

(* Total: the parser's depth cap plus [of_json]'s field checks mean any
   byte string — truncated, binary, deeply nested — lands in [Error]. *)
let parse_string contents =
  match Json.parse contents with
  | exception Json.Parse msg -> Error msg
  | j -> of_json j

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> (
    match parse_string contents with
    | Ok t -> Ok t
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

(* -- trajectory diffing -------------------------------------------------- *)

type change = {
  c_app : string;
  c_name : string;
  c_unit : string;
  c_gated : bool;
  old_value : float;
  new_value : float;
  delta_pct : float;
}

type diff = { changes : change list; added : metric list; removed : metric list }

(* every recorded metric is a cost (time, misses, sharing, drift): higher is
   worse, so the sign of delta_pct is the direction of the regression *)
let delta_pct ~old_value ~new_value =
  if old_value = 0. then (if new_value = 0. then 0. else infinity)
  else (new_value -. old_value) /. old_value *. 100.

let diff ~old_ ~new_ =
  let old_tbl = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace old_tbl (metric_key m) m) old_.metrics;
  let changes, added =
    List.fold_left
      (fun (changes, added) m ->
        match Hashtbl.find_opt old_tbl (metric_key m) with
        | None -> (changes, m :: added)
        | Some o ->
          Hashtbl.remove old_tbl (metric_key m);
          ( {
              c_app = m.app;
              c_name = m.name;
              c_unit = m.unit_;
              c_gated = m.gated;
              old_value = o.value;
              new_value = m.value;
              delta_pct = delta_pct ~old_value:o.value ~new_value:m.value;
            }
            :: changes,
            added ))
      ([], []) new_.metrics
  in
  let removed =
    List.filter (fun m -> Hashtbl.mem old_tbl (metric_key m)) old_.metrics
  in
  { changes = List.rev changes; added = List.rev added; removed }

let regressions ?(threshold = 0.) d =
  List.filter (fun c -> c.c_gated && c.delta_pct > threshold) d.changes

let improvements ?(threshold = 0.) d =
  List.filter (fun c -> c.c_gated && c.delta_pct < -.threshold) d.changes
