(** Per-thread block-request stream generation.

    A thread's element accesses are translated through the chosen file
    layouts into block requests; {e consecutive requests to the same block
    collapse into one} — exactly the MPI-IO behaviour the paper relies on:
    a thread reading elements stored contiguously issues one block-sized
    request, a thread whose elements are scattered issues one request per
    element.  This is where a layout's "block footprint" becomes request
    traffic. *)

open Flo_poly
open Flo_storage
open Flo_core

val nest_streams :
  layouts:(int -> File_layout.t) ->
  block_elems:int ->
  threads:int ->
  blocks_per_thread:int ->
  ?assign:Compmap.strategy ->
  ?cluster:int ->
  ?sample:int ->
  Loop_nest.t ->
  Block.t array array
(** [nest_streams ... nest] is one collapsed block-request stream per
    thread for a single execution of [nest] (weights are replayed by the
    runner).  [assign] substitutes the computation-mapping baseline's
    block-to-thread map ([cluster] = threads per layer-1 cache, required
    with [assign]).  [sample > 1] keeps the first [1/sample] of each
    thread's iterations (a prefix preserves contiguity) — profile mode.  The per-nest block count is capped by the nest's
    parallel extent.

    This is the strength-reduced fast path: per-reference offsets are
    tracked as incremental affine cursors over the lexicographic walk
    (via {!File_layout.linear_strides} / {!File_layout.offset_of_transformed})
    and streams are accumulated in preallocated int buffers, so the hot
    loop performs no per-element allocation, transform, or division.
    Element-for-element identical to {!reference_streams}. *)

val reference_streams :
  layouts:(int -> File_layout.t) ->
  block_elems:int ->
  threads:int ->
  blocks_per_thread:int ->
  ?assign:Compmap.strategy ->
  ?cluster:int ->
  ?sample:int ->
  Loop_nest.t ->
  Block.t array array
(** The original naive generator — evaluates {!Access.eval} and
    {!File_layout.offset_of} per element — retained as the executable
    specification of the stream semantics.  The golden equality tests
    assert [nest_streams = reference_streams] across the whole workload
    suite; use this (or [--jobs 1]) when auditing the fast path. *)

val iterations_per_thread :
  threads:int -> blocks_per_thread:int -> ?sample:int -> Loop_nest.t -> int array
(** Element-iteration counts matching [nest_streams]'s enumeration (used to
    charge CPU time). *)
