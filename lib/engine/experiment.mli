(** High-level experiment drivers: one function per table/figure family.

    All "normalized" values follow the paper: the optimized (or variant)
    execution time divided by the default execution's under the {e same}
    caching scheme, so 0.763 means a 23.7% improvement. *)

open Flo_core
open Flo_workloads

val default_layouts : App.t -> int -> File_layout.t
(** Row-major for every array — the paper's "original file layouts". *)

val inter_plan :
  ?weighted:bool -> ?scope:Internode.scope -> ?metrics:Flo_obs.Metrics.t ->
  Config.t -> App.t -> Optimizer.plan
(** Run the compiler pass for an app under a configuration.  [metrics]
    collects the optimizer's span histograms (see {!Flo_core.Optimizer.run}). *)

val inter_layouts :
  ?weighted:bool -> ?scope:Internode.scope -> Config.t -> App.t -> int -> File_layout.t

val default_run : ?mapping:int array -> ?caching:Run.caching -> Config.t -> App.t -> Run.result

val inter_run :
  ?mapping:int array ->
  ?caching:Run.caching ->
  ?weighted:bool ->
  ?scope:Internode.scope ->
  Config.t ->
  App.t ->
  Run.result

val normalized : base:Run.result -> Run.result -> float
(** Ratio of modeled execution times. *)

val reindex_best : ?sample:int -> Config.t -> App.t -> Reindex.outcome
(** The [27] baseline: profile-driven (sampled) exhaustive dimension
    reindexing, greedy per array.  Profiling is single-node centric — it
    evaluates a sequential one-cache system, the paper's stated limitation
    of prior layout work. *)

val reindex_run : ?sample:int -> Config.t -> App.t -> Run.result
(** Full-scale run under the layouts {!reindex_best} chose. *)

val inter_template_run : Config.t -> App.t -> Run.result
(** The Section 4.3 "template hierarchy" extension: a capacity-oblivious
    layout compiled once per fanout template (one-block chunks, minimal
    pattern), valid for every hierarchy of the template. *)

val reindex_static_run : Config.t -> App.t -> Run.result
(** Full-scale run under {!Flo_core.Reindex.dominant_order}'s static choice
    — the Fig. 7(g) comparator. *)

val compmap_best : ?sample:int -> Config.t -> App.t -> Compmap.outcome
(** The [26] baseline: iterative computation-mapping search (layouts stay
    row-major). *)

val compmap_run : ?sample:int -> Config.t -> App.t -> Run.result

val random_mapping : seed:int -> Config.t -> int array
(** Deterministic pseudo-random thread-to-compute-node permutation
    (Mappings II-IV of Fig. 7(b) use seeds 1-3). *)

val map_apps : ?jobs:int -> (App.t -> 'a) -> App.t list -> 'a list
(** {!Parallel.map_list} specialized to app sweeps: [f] runs once per app
    on a domain pool, results return in app order.  Every driver above is
    safe as [f] — they share no mutable state across apps. *)

type chaos_point = {
  scale : float;  (** fault-intensity scale applied to the plan *)
  plan : Flo_faults.Fault_plan.t;  (** the scaled plan actually injected *)
  default_r : Run.result;
  inter_r : Run.result;
  default_counts : Flo_faults.Injector.counts;
  inter_counts : Flo_faults.Injector.counts;
}

val chaos :
  ?scales:float list ->
  ?caching:Run.caching ->
  ?scope:Internode.scope ->
  ?jobs:int ->
  plan:Flo_faults.Fault_plan.t ->
  Config.t ->
  App.t ->
  chaos_point list
(** The [flopt chaos] sweep: for each scale (default [0; 0.5; 1; 2]) run
    the app under {!Flo_faults.Fault_plan.scale}[ plan scale] with both the
    default and the compiler-optimized layouts.  Each run gets a fresh
    injector compiled from the scaled plan, so points are independent and
    results are identical at every [jobs] setting; scale 0 is the
    fault-free reference (byte-identical to running without faults).
    @raise Invalid_argument if the plan names a node outside the topology. *)

val fidelity :
  ?tolerance:float ->
  ?mapping:int array ->
  ?sample:int ->
  ?predict_block_elems:int ->
  layouts:(int -> File_layout.t) ->
  Config.t ->
  App.t ->
  Flo_fidelity.Fidelity.t * Run.result
(** Predicted-vs-observed accounting: simulate the app with a live
    {!Flo_analysis.Analyzer} sink, evaluate {!Flo_fidelity.Predict.compute}
    under the same run parameters, and {!Flo_fidelity.Fidelity.join} the
    two.  Under matching parameters every drift is exactly 0;
    [predict_block_elems] deliberately mis-parameterizes the model (e.g. to
    demonstrate nonzero flagged drift, or to ask "what if the compiler had
    assumed a different block size?"). *)

val drift_signal :
  ?mapping:int array ->
  ?sample:int ->
  layouts:(int -> File_layout.t) ->
  Config.t ->
  App.t ->
  Flo_fidelity.Drift.signal
(** One drift-watch observation window: the {!fidelity} loop distilled
    into the plain-value signal {!Flo_fidelity.Drift} folds — per-layer
    miss rates, L2 cross-thread sharing and its matrix (summed over the
    storage-node caches), and the model-vs-run fidelity drift.
    Deterministic for fixed arguments, so equal workloads always produce
    equal signals. *)
