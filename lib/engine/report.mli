(** Plain-text table rendering for the benchmark harness. *)

val table : header:string list -> string list list -> string
(** Left-aligned first column, right-aligned rest, column-fitted. *)

val print_table : title:string -> header:string list -> string list list -> unit
(** Render to stdout with a title line and a trailing blank line. *)

val f1 : float -> string
(** One decimal place. *)

val f2 : float -> string
val f3 : float -> string
val pct : float -> string
(** Ratio as a percentage, one decimal: [0.237 -> "23.7"]. *)

val ms : float -> string
(** Microseconds rendered as milliseconds, one decimal. *)

val mean : float list -> float
val geomean : float list -> float

val stats_header : string list
val stats_row : string -> Flo_storage.Stats.t -> string list
(** One table row of counter columns (accesses .. prefetch hits). *)

val print_node_stats : title:string -> (string * Flo_storage.Stats.t) list -> unit
(** Per-node breakdown table: one labeled row per cache. *)

val latency_summary : Flo_obs.Histogram.t -> string
(** ["n=... mean=... p50=... p90=... p99=... max=..."] in microseconds. *)

val print_latency : title:string -> Flo_obs.Histogram.t -> unit
