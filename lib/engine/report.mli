(** Plain-text table rendering for the benchmark harness. *)

val table : header:string list -> string list list -> string
(** Left-aligned first column, right-aligned rest, column-fitted. *)

val print_table : title:string -> header:string list -> string list list -> unit
(** Render to stdout with a title line and a trailing blank line. *)

val f1 : float -> string
(** One decimal place. *)

val f2 : float -> string
val f3 : float -> string
val pct : float -> string
(** Ratio as a percentage, one decimal: [0.237 -> "23.7"]. *)

val ms : float -> string
(** Microseconds rendered as milliseconds, one decimal. *)

val mean : float list -> float
val geomean : float list -> float

val stats_header : string list
val stats_row : string -> Flo_storage.Stats.t -> string list
(** One table row of counter columns (accesses .. prefetch hits). *)

val print_node_stats : title:string -> (string * Flo_storage.Stats.t) list -> unit
(** Per-node breakdown table: one labeled row per cache. *)

val latency_summary : Flo_obs.Histogram.t -> string
(** ["n=... mean=... p50=... p90=... p99=... max=..."] in microseconds. *)

val print_latency : title:string -> Flo_obs.Histogram.t -> unit

(** {1 Trace analysis} — rendering for [Flo_analysis] results. *)

val matrix : label:(int -> string) -> int array array -> string
(** Square matrix as a table with [label i] row/column headers. *)

val submatrix : label:(int -> string) -> int list -> int array array -> string
(** Only the rows/columns listed (e.g. a cache's active threads). *)

val reuse_header : string list
val reuse_summary_row : string -> Flo_analysis.Reuse.t -> string list

val analysis_summary : ?max_matrix:int -> Flo_analysis.Analyzer.t -> string
(** The full text report of an analyzed trace: headline counters,
    per-cache reuse-distance tables, per-shared-cache sharing and
    eviction-conflict matrices (matrices elided beyond [max_matrix]
    threads, default 16), and the per-thread distinct-blocks-per-file
    table.  [flopt analyze] prints exactly this. *)

val print_analysis : ?max_matrix:int -> Flo_analysis.Analyzer.t -> unit

(** {1 Model fidelity} — rendering for [Flo_fidelity] joins. *)

val fidelity_summary : Flo_fidelity.Fidelity.t -> string
(** The full predicted-vs-observed report: model parameters, per-array
    Step II layout expectations, the per-(thread, file) Eq. 4 drift table,
    cross-thread sharing drift, per-cache bound checks, and a one-line
    verdict.  [flopt fidelity] prints exactly this. *)

val fidelity_line : Flo_fidelity.Fidelity.t -> string
(** One-line per-app summary (used by the suite-wide golden test). *)

val print_fidelity : Flo_fidelity.Fidelity.t -> unit

(** {1 Fault injection} — rendering for [Flo_faults] chaos sweeps. *)

val degradation_summary : Flo_core.Optimizer.plan -> string
(** The optimizer's degradation chain: one row per non-[Inter]/[Optimized]
    decision with its stage and machine-readable reason, or a single line
    when every array was fully optimized. *)

val chaos_point_counts : Experiment.chaos_point -> int * int * int * int
(** [(faults, retries, timeouts, failovers)] summed over the point's
    default and optimized runs. *)

val chaos_verdict : Experiment.chaos_point list -> string
(** Deterministic one-line verdict comparing the optimized layout's L2
    miss-per-element advantage (in percentage points) at the first and
    last fault scales: the advantage either ["persists"] or ["collapses"]
    under faults. *)

val chaos_summary : app:string -> seed:int -> Experiment.chaos_point list -> string
(** The full [flopt chaos] report: per-scale table (modeled times,
    normalized ratio, L2 miss/elem for both layouts, fault counters) plus
    the {!chaos_verdict} line prefixed ["chaos <app> seed=<n>: ..."]. *)

val print_chaos : app:string -> seed:int -> Experiment.chaos_point list -> unit
