(** Machine-readable benchmark trajectory.

    [bench -- json --out FILE] writes one {e manifest}: a versioned JSON
    document recording, per application, the headline numbers of that
    invocation — modeled execution times, per-layer miss rates, L2
    cross-thread sharing, reuse-distance medians, fidelity drift, and the
    pass's measured compile time.  [flopt bench-diff OLD NEW] loads two
    manifests and reports per-metric changes, optionally failing the
    process when a {e gated} metric regressed past a threshold.

    Gating convention: a metric is [gated] iff it is deterministic (a
    modeled quantity, identical on every machine), so a checked-in baseline
    stays comparable in CI.  Wall-clock measurements (bechamel) are
    recorded [gated = false] — trajectory data, never a gate.  Every
    recorded metric is a cost: {b higher is worse}. *)

(** Minimal JSON tree — parse, print, and probe; no external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse of string

  val parse : string -> t
  (** Whole-input parse (nested values, multi-line).  @raise Parse on
      malformed input, trailing garbage, or container nesting deeper than
      {!max_depth} — the cap makes the parser total on hostile input
      (no stack overflow on ["[[[[..."]). *)

  val max_depth : int
  (** Deepest container nesting {!parse} accepts (256). *)

  val to_string : t -> string
  (** Compact single-line rendering; integers print without a decimal
      point.  [parse (to_string t)] is [t] up to float formatting. *)

  val member : string -> t -> t option
  (** Field lookup, [None] on non-objects. *)
end

val schema_name : string
(** ["flopt-bench"] — the manifest's self-identification. *)

val schema_version : int
(** Current version (1).  Bump on any incompatible layout change; {!load}
    rejects other versions. *)

type metric = {
  app : string;
  name : string;  (** e.g. ["elapsed_us.inter"] *)
  value : float;
  unit_ : string;  (** ["us"], ["miss/elem"], ["blocks"], ... *)
  gated : bool;  (** deterministic — compared against the baseline *)
}

type t = {
  version : int;
  apps : string list;  (** apps the invocation covered, in order *)
  sample : int;  (** profile-mode sampling factor used *)
  block_elems : int;
  threads : int;
  metrics : metric list;
}

val make :
  apps:string list -> sample:int -> block_elems:int -> threads:int ->
  metric list -> t
(** A manifest of the current {!schema_version}. *)

val validate : t -> (unit, string) result
(** Structural checks: supported version, non-empty apps, positive config
    fields, no NaN values, no duplicate [(app, name)] pair.  {!load} runs
    this automatically. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val save : string -> t -> unit
(** Atomic: writes [path ^ ".tmp"] and renames it onto [path] only after a
    successful close, so an interrupted save never leaves a truncated
    manifest — the previous contents of [path] survive instead. *)

val parse_string : string -> (t, string) result
(** Parse and {!validate} a manifest from a string.  Total: any byte
    string — truncated, binary, deeply nested — returns [Error], never
    raises. *)

val load : string -> (t, string) result
(** I/O, parse, and {!validate} errors all surface as [Error]. *)

(** {1 Trajectory diffing} *)

type change = {
  c_app : string;
  c_name : string;
  c_unit : string;
  c_gated : bool;
  old_value : float;
  new_value : float;
  delta_pct : float;
      (** [(new - old) / old * 100]; 0 when both are 0, [infinity] when a
          zero-cost metric became nonzero *)
}

type diff = {
  changes : change list;  (** metrics present in both manifests *)
  added : metric list;  (** only in the new manifest *)
  removed : metric list;  (** only in the old manifest *)
}

val diff : old_:t -> new_:t -> diff

val regressions : ?threshold:float -> diff -> change list
(** Gated changes whose [delta_pct] exceeds [threshold] (percent, default
    0).  Higher-is-worse: a positive delta is a regression. *)

val improvements : ?threshold:float -> diff -> change list
