(** Deterministic multicore fan-out for experiment grids.

    A fixed pool of [jobs] domains drains an atomic work queue over the
    input; results land in a per-task slot and are returned {e in input
    order}, so the output is independent of scheduling.  Tasks must not
    share mutable state: the experiment engine gives every task its own
    sinks, metrics registries and hierarchies, and merges at the join —
    which is what makes [--jobs N] reports bit-identical to [--jobs 1].

    [jobs = 1] (and any call on a 0/1-element input) never spawns a domain:
    it runs the exact sequential code path, which is the deterministic
    reference the qcheck equivalence properties compare against. *)

val default_jobs : unit -> int
(** The [FLOPT_JOBS] environment variable if set (a positive integer —
    anything else raises [Invalid_argument]), else
    [Domain.recommended_domain_count ()].  This is what [--jobs] flags
    default to. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f arr] is [Array.map f arr] computed by [min jobs
    (Array.length arr)] domains (the caller's domain is one of them).
    [jobs] defaults to {!default_jobs}.  If tasks raise, every task still
    runs, all domains are joined, and the exception of the {e
    lowest-index} failing task is re-raised with its backtrace — again
    independent of scheduling.
    @raise Invalid_argument if [jobs < 1]. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)
