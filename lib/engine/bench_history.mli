(** Per-commit benchmark trajectory: an append-only, schema-versioned
    history of headline numbers, one row per commit, plus a self-contained
    static HTML/SVG trend page over it.

    [bench -- history --out FILE --commit ID --manifest MANIFEST] distills
    the manifest ({!Bench_schema}) into a handful of trend points,
    {!upsert}s them as the row for [ID], saves the history atomically, and
    regenerates the page.  Re-recording the same commit from the same
    manifest is idempotent — the row is replaced in place, so the history
    and the page are byte-identical.

    Rendering is a pure function of the history ({!render_page} touches no
    clock and no environment), so CI can diff regenerated pages. *)

val schema_name : string
(** ["flopt-bench-history"] — the file's self-identification. *)

val schema_version : int
(** Current version (1).  {!load} rejects other versions. *)

type point = { name : string; value : float; unit_ : string }
(** One trend series sample, e.g. [{name = "modeled_rps"; ...}]. *)

type row = { commit : string; points : point list }
(** One commit's samples; [points] is kept sorted by name. *)

type t = { version : int; rows : row list }
(** Rows in recording order — the trend page's x axis. *)

val empty : t

val valid_commit : string -> bool
(** Accepted commit ids: nonempty, at most 64 chars, drawn from
    [A-Za-z0-9._-].  Anything else (whitespace, path separators, control
    bytes) is rejected before it can reach the history or the page. *)

val upsert : t -> commit:string -> point list -> (t, string) result
(** Record [points] as the row for [commit]: replaces an existing row with
    the same id in place (its x position is preserved), appends otherwise.
    [Error] on an invalid commit id, an empty point list, a duplicate
    point name, or a non-finite value. *)

val find : t -> string -> row option

val series : t -> string -> (string * float) list
(** [(commit, value)] pairs of the rows carrying a point named [name], in
    row order — rows without it are gaps, not zeros. *)

val validate : t -> (unit, string) result
(** Supported version, valid commit ids, no duplicate commits, rows
    well-formed ({!upsert}'s point checks). *)

val to_json : t -> Bench_schema.Json.t
val of_json : Bench_schema.Json.t -> (t, string) result

val parse_string : string -> (t, string) result
(** Parse and {!validate}.  Total: any byte string returns [Error]. *)

val load : string -> (t, string) result
(** I/O, parse, and {!validate} errors all surface as [Error]. *)

val save : string -> t -> unit
(** Atomic and durable: side file, fsync, rename — an interrupted save
    never truncates an existing history. *)

val metrics_of_manifest : Bench_schema.t -> point list
(** The trend points a manifest yields: the geometric mean of the per-app
    [tracegen_elems_per_sec.inter] metrics, the [_suite] wall time, the
    [_traffic] modeled RPS, and the [_slo] fleet burn rate.  Series the
    manifest lacks (e.g. an old manifest without [_slo]) are simply
    absent — the page shows a gap. *)

val render_page : t -> string
(** Self-contained HTML document — inline CSS, inline SVG, no JavaScript,
    no external references — with one chart per trend series (commits on
    the x axis) and the full history as a table.  Deterministic: equal
    histories render byte-equal pages. *)
