open Flo_storage
open Flo_core
open Flo_poly

type t = {
  topology : Topology.t;
  blocks_per_thread : int;
  quantum : int;
  costs : Hierarchy.costs;
  disk_params : Disk.params;
  client_buffer_blocks : int;
  client_hit_us : float;
}

let default =
  {
    topology = Topology.default;
    blocks_per_thread = 1;
    quantum = 4;
    costs = Hierarchy.default_costs;
    disk_params = Disk.default_params;
    client_buffer_blocks = 16;
    client_hit_us = 2.;
  }

let with_topology t topology = { t with topology }

let threads t = Topology.threads t.topology

type invalid_config =
  | Non_positive of { field : string; value : int }
  | Indivisible of { field : string; value : int; divisor : int }
  | Step2_indivisible of { layer : int; capacity : int; unit_ : int }

let invalid_config_to_string = function
  | Non_positive { field; value } ->
    Printf.sprintf "invalid_config: %s must be positive (got %d)" field value
  | Indivisible { field; value; divisor } ->
    Printf.sprintf "invalid_config: %s (%d) must be a multiple of %d" field value divisor
  | Step2_indivisible { layer; capacity; unit_ } ->
    Printf.sprintf
      "invalid_config: Step II layer %d capacity %d is not a multiple of its chunk unit \
       %d (S_i+1 must be a multiple of N_i+1 * S_i)"
      layer capacity unit_

let ( let* ) = Result.bind

let positive field value =
  if value > 0 then Ok () else Error (Non_positive { field; value })

let divides field value divisor =
  if divisor > 0 && value mod divisor = 0 then Ok ()
  else Error (Indivisible { field; value; divisor })

let validate t =
  let topo = t.topology in
  let* () = positive "compute_nodes" topo.Topology.compute_nodes in
  let* () = positive "io_nodes" topo.Topology.io_nodes in
  let* () = positive "storage_nodes" topo.Topology.storage_nodes in
  let* () = positive "threads_per_compute" topo.Topology.threads_per_compute in
  let* () = positive "block_elems" topo.Topology.block_elems in
  let* () = positive "io_cache_blocks" topo.Topology.io_cache_blocks in
  let* () = positive "storage_cache_blocks" topo.Topology.storage_cache_blocks in
  let* () = divides "compute_nodes" topo.Topology.compute_nodes topo.Topology.io_nodes in
  let* () = divides "io_nodes" topo.Topology.io_nodes topo.Topology.storage_nodes in
  let* () = positive "blocks_per_thread" t.blocks_per_thread in
  let* () = positive "quantum" t.quantum in
  let* () = positive "client_buffer_blocks" t.client_buffer_blocks in
  Ok ()

(* The strict Step II divisibility law (Section 3.2): with layer capacities
   S_1..S_n and fanouts N_1..N_n, every chunk count t_i = S_i+1 / (N_i+1 *
   S_i) must be a positive integer (and S_1 / N_1 likewise).  Chunk_pattern
   self-heals mildly-misaligned capacities when building from a topology;
   this validator is the structured front door for user-supplied layers,
   where a violation used to surface as Division_by_zero or an assert. *)
let validate_layers (layers : Chunk_pattern.layer array) =
  let n = Array.length layers in
  let* () = if n > 0 then Ok () else Error (Non_positive { field = "layers"; value = 0 }) in
  let rec go i =
    if i >= n then Ok ()
    else
      let l = layers.(i) in
      let* () = positive (Printf.sprintf "layer %d capacity" i) l.Chunk_pattern.capacity in
      let* () = positive (Printf.sprintf "layer %d fanout" i) l.Chunk_pattern.fanout in
      let unit_ =
        if i = 0 then l.Chunk_pattern.fanout
        else l.Chunk_pattern.fanout * layers.(i - 1).Chunk_pattern.capacity
      in
      let* () =
        if unit_ > 0 && l.Chunk_pattern.capacity mod unit_ = 0 then Ok ()
        else Error (Step2_indivisible { layer = i; capacity = l.Chunk_pattern.capacity; unit_ })
      in
      go (i + 1)
  in
  go 0

let build ?(compute_nodes = 64) ?(io_nodes = 16) ?(storage_nodes = 4) ?(block_elems = 64)
    ?(io_cache_blocks = 256) ?(storage_cache_blocks = 512) ?(blocks_per_thread = 1)
    ?(quantum = 4) () =
  (* validate before Topology.make so a bad shape is a structured error,
     not an Invalid_argument from deep inside the storage layer *)
  let* () = positive "compute_nodes" compute_nodes in
  let* () = positive "io_nodes" io_nodes in
  let* () = positive "storage_nodes" storage_nodes in
  let* () = positive "block_elems" block_elems in
  let* () = positive "io_cache_blocks" io_cache_blocks in
  let* () = positive "storage_cache_blocks" storage_cache_blocks in
  let* () = positive "blocks_per_thread" blocks_per_thread in
  let* () = positive "quantum" quantum in
  let* () = divides "compute_nodes" compute_nodes io_nodes in
  let* () = divides "io_nodes" io_nodes storage_nodes in
  let topology =
    Topology.make ~compute_nodes ~io_nodes ~storage_nodes ~block_elems ~io_cache_blocks
      ~storage_cache_blocks ()
  in
  Ok { default with topology; blocks_per_thread; quantum }

let spec_for t program =
  let topo = t.topology in
  let num_arrays = max 1 (List.length program.Program.arrays) in
  let elems_of blocks = max 1 (blocks * topo.Topology.block_elems / num_arrays) in
  let s1 = elems_of topo.Topology.io_cache_blocks in
  let s2 = elems_of topo.Topology.storage_cache_blocks in
  let layers =
    [|
      { Chunk_pattern.capacity = s1; fanout = Topology.threads_per_io topo };
      { Chunk_pattern.capacity = s2; fanout = Topology.io_per_storage topo };
      (* top pseudo-layer: spans the storage nodes with minimal repetition *)
      {
        Chunk_pattern.capacity = s2 * topo.Topology.storage_nodes;
        fanout = topo.Topology.storage_nodes;
      };
    |]
  in
  Internode.make_spec ~threads:(Topology.threads topo)
    ~num_blocks:(Topology.threads topo * t.blocks_per_thread)
    ~layers ~align:topo.Topology.block_elems
