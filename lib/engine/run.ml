open Flo_storage
open Flo_workloads

type caching = Lru | Demote | Karma | Custom of Policy.factory * Policy.factory

type result = {
  app : string;
  elapsed_us : float;
  l1 : Stats.t;
  l2 : Stats.t;
  disk_reads : int;
  block_requests : int;
  element_accesses : int;
  iterations : int;
  prefetches : int;
  prefetch_hits : int;
  l1_nodes : Stats.t array;
  l2_nodes : Stats.t array;
  thread_us : float array;
}

(* Miss rates comparable with the paper's Tables 2-3 use element accesses
   as the denominator: the work an execution performs is fixed, while the
   number of block requests the hierarchy sees depends on the layout. *)
let l1_miss_per_element r =
  if r.element_accesses = 0 then 0.
  else float_of_int r.l1.Stats.misses /. float_of_int r.element_accesses

let l2_miss_per_element r =
  if r.element_accesses = 0 then 0.
  else float_of_int r.l2.Stats.misses /. float_of_int r.element_accesses

let karma_hints_of_streams ~io_of_thread ~io_nodes weighted_streams =
  let hints = Array.make io_nodes [] in
  (* Flat per-file range accumulators, sized once to the largest file id in
     any stream.  Each thread's contribution fills (lo, hi, cnt) in one pass
     over its packed-int blocks, then a single downward sweep emits hints
     and zeroes cnt — no per-stream Hashtbl, no sort.  Walking files
     downward and consing yields hints ascending by file within the
     contribution, byte-identical to the reference sort-descending fold
     (files are unique per contribution, so (file, lo_block) order is file
     order).  [test_engine] pins the order; a qcheck regression test checks
     equality against the reference implementation. *)
  let max_file =
    List.fold_left
      (fun acc (_, streams) ->
        Array.fold_left
          (fun acc blocks ->
            Array.fold_left (fun acc b -> max acc (Block.file b)) acc blocks)
          acc streams)
      (-1) weighted_streams
  in
  let lo = Array.make (max_file + 1) 0 in
  let hi = Array.make (max_file + 1) 0 in
  let cnt = Array.make (max_file + 1) 0 in
  List.iter
    (fun (weight, streams) ->
      Array.iteri
        (fun thread blocks ->
          if Array.length blocks > 0 then begin
            (* one range per file touched by this thread in this nest *)
            Array.iter
              (fun b ->
                let file = Block.file b and idx = Block.index b in
                if cnt.(file) = 0 then begin
                  lo.(file) <- idx;
                  hi.(file) <- idx;
                  cnt.(file) <- 1
                end
                else begin
                  if idx < lo.(file) then lo.(file) <- idx;
                  if idx > hi.(file) then hi.(file) <- idx;
                  cnt.(file) <- cnt.(file) + 1
                end)
              blocks;
            let io = io_of_thread thread in
            for file = max_file downto 0 do
              if cnt.(file) > 0 then begin
                let hint =
                  {
                    Karma.file;
                    lo_block = lo.(file);
                    hi_block = hi.(file);
                    accesses = float_of_int (cnt.(file) * weight);
                  }
                in
                hints.(io) <- hint :: hints.(io);
                cnt.(file) <- 0
              end
            done
          end)
        streams)
    weighted_streams;
  hints

let run ?mapping ?(caching = Lru) ?assigns ?(sample = 1) ?(readahead = 0) ?sink ?metrics
    ?faults ~config ~layouts app =
  let topo = config.Config.topology in
  let threads = Topology.threads topo in
  let block_elems = topo.Topology.block_elems in
  let cluster = Topology.threads_per_io topo in
  let program = app.App.program in
  let nests = program.Flo_poly.Program.nests in
  let weighted_streams =
    Flo_obs.Span.with_ ?metrics "tracegen" (fun () ->
        List.mapi
          (fun i nest ->
            let assign = Option.map (fun f -> f i) assigns in
            let streams =
              Tracegen.nest_streams ~layouts ~block_elems ~threads
                ~blocks_per_thread:config.Config.blocks_per_thread ?assign ~cluster
                ~sample nest
            in
            (nest, streams))
          nests)
  in
  let mapping_fn =
    match mapping with
    | Some m -> fun t -> m.(t)
    | None -> fun t -> t mod topo.Topology.compute_nodes
  in
  let hier =
    match caching with
    | Lru -> Hierarchy.create ?mapping ~costs:config.Config.costs
               ~disk_params:config.Config.disk_params ~readahead ?sink ?metrics ?faults topo
    | Demote ->
      Hierarchy.create ?mapping ~protocol:Hierarchy.Demote_exclusive
        ~costs:config.Config.costs ~disk_params:config.Config.disk_params ~readahead
        ?sink ?metrics ?faults topo
    | Custom (f1, f2) ->
      Hierarchy.create ?mapping ~l1_factory:f1 ~l2_factory:f2 ~costs:config.Config.costs
        ~disk_params:config.Config.disk_params ~readahead ?sink ?metrics ?faults topo
    | Karma ->
      let io_of_thread t = Topology.io_of_compute topo (mapping_fn t) in
      let hints =
        karma_hints_of_streams ~io_of_thread ~io_nodes:topo.Topology.io_nodes
          (List.map
             (fun (nest, streams) -> (nest.Flo_poly.Loop_nest.weight, streams))
             weighted_streams)
      in
      let plan =
        Karma.plan ~l1_hints:hints ~l1_capacity:topo.Topology.io_cache_blocks
          ~l2_capacity_total:(topo.Topology.storage_cache_blocks * topo.Topology.storage_nodes)
      in
      let l1 = Array.init topo.Topology.io_nodes (fun io -> Karma.l1_cache plan ~io) in
      let l2 =
        Array.init topo.Topology.storage_nodes (fun _ ->
            Karma.l2_cache plan ~storage_nodes:topo.Topology.storage_nodes)
      in
      Hierarchy.create ?mapping ~l1 ~l2 ~costs:config.Config.costs
        ~disk_params:config.Config.disk_params ~readahead ?sink ?metrics ?faults topo
  in
  let block_requests = ref 0 in
  let iterations = ref 0 in
  let element_accesses = ref 0 in
  (* per-thread MPI-IO data-sieving buffers (see Config.client_buffer_blocks),
     on the flat allocation-free LRU kernel *)
  let buffers =
    Array.init threads (fun _ ->
        Flat_lru.create ~capacity:config.Config.client_buffer_blocks)
  in
  let client_hit_us = config.Config.client_hit_us in
  let request thread (b : Block.t) =
    if Flat_lru.touch buffers.(thread) (b :> int) then
      Hierarchy.add_cpu_us hier ~thread client_hit_us
    else begin
      ignore (Flat_lru.insert buffers.(thread) (b :> int));
      incr block_requests;
      Hierarchy.access hier ~thread b
    end
  in
  List.iteri
    (fun i (nest, streams) ->
      ignore i;
      let iters =
        Tracegen.iterations_per_thread ~threads
          ~blocks_per_thread:config.Config.blocks_per_thread ~sample nest
      in
      for _rep = 1 to nest.Flo_poly.Loop_nest.weight do
        (* round-robin interleave across threads, [quantum] requests a turn *)
        let cursors = Array.make threads 0 in
        let live = ref threads in
        while !live > 0 do
          live := 0;
          for t = 0 to threads - 1 do
            let stream = streams.(t) in
            let len = Array.length stream in
            let upto = min len (cursors.(t) + config.Config.quantum) in
            for k = cursors.(t) to upto - 1 do
              request t stream.(k)
            done;
            cursors.(t) <- upto;
            if upto < len then incr live
          done
        done;
        let nrefs = List.length nest.Flo_poly.Loop_nest.refs in
        Array.iteri
          (fun t n ->
            iterations := !iterations + n;
            element_accesses := !element_accesses + (n * nrefs);
            Hierarchy.add_cpu_us hier ~thread:t
              (float_of_int n *. app.App.cpu_us_per_iteration))
          iters
      done)
    weighted_streams;
  (match sink with Some s -> s.Flo_obs.Sink.flush () | None -> ());
  {
    app = app.App.name;
    elapsed_us = Hierarchy.elapsed_us hier;
    l1 = Hierarchy.l1_stats hier;
    l2 = Hierarchy.l2_stats hier;
    disk_reads = Hierarchy.disk_reads hier;
    block_requests = !block_requests;
    element_accesses = !element_accesses;
    iterations = !iterations;
    prefetches = Hierarchy.prefetches hier;
    prefetch_hits = Hierarchy.prefetch_hits hier;
    l1_nodes =
      Array.init (Hierarchy.io_nodes hier) (fun i ->
          Stats.merge [ Hierarchy.l1_stats_of hier i ]);
    l2_nodes =
      Array.init (Hierarchy.storage_nodes hier) (fun i ->
          Stats.merge [ Hierarchy.l2_stats_of hier i ]);
    thread_us = Hierarchy.thread_clocks_us hier;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "@[%s: time %.1f ms, L1 miss %.1f%%, L2 miss %.1f%%, %d requests, %d disk reads@]"
    r.app (r.elapsed_us /. 1000.)
    (100. *. Stats.miss_rate r.l1)
    (100. *. Stats.miss_rate r.l2)
    r.block_requests r.disk_reads
