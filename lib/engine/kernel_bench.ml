(* Closed-loop simulation-kernel micro-benchmark, shared by
   bench/sim_bench.exe and the ungated `_sim/*` metrics of `bench -- json`.

   Block streams are generated once per app; a timed pass then replays them
   through fresh client buffers and a fresh hierarchy with the same
   round-robin quantum interleave as [Run.run], so the measured wall clock
   is the per-request simulation kernel alone — no tracegen, no layout
   compilation.  [Fast] is the production kernel ({!Flo_storage.Lru.create}
   backed by {!Flo_storage.Flat_lru}, devirtualized in Hierarchy);
   [Reference] forces the retained pre-flat implementation
   ({!Flo_storage.Lru.reference} closures through the generic dispatch
   path).  Both produce identical modeled results — the golden suite in
   test/test_sim_kernel.ml pins that — so the ratio of their walls is the
   kernel speedup. *)

open Flo_storage
open Flo_workloads

type kernel = Fast | Reference

type prepared = {
  app : App.t;
  config : Config.t;
  (* (weight, per-thread streams) per nest, generated once *)
  weighted_streams : (int * Block.t array array) list;
}

type timing = {
  block_requests : int; (* requests reaching the hierarchy in one pass *)
  element_accesses : int;
  wall_s : float; (* best-of-reps wall clock of one pass *)
  elapsed_us : float; (* modeled time, for cross-kernel sanity checks *)
}

let prepare ~config ~layouts ?(sample = 1) app =
  let topo = config.Config.topology in
  let threads = Topology.threads topo in
  let weighted_streams =
    List.map
      (fun nest ->
        ( nest.Flo_poly.Loop_nest.weight,
          Tracegen.nest_streams ~layouts ~block_elems:topo.Topology.block_elems
            ~threads ~blocks_per_thread:config.Config.blocks_per_thread
            ~cluster:(Topology.threads_per_io topo) ~sample nest ))
      app.App.program.Flo_poly.Program.nests
  in
  { app; config; weighted_streams }

(* One closed-loop pass: fresh buffers + hierarchy, same replay loop as
   Run.run.  Returns (block_requests, modeled elapsed_us). *)
let pass kernel p =
  let config = p.config in
  let topo = config.Config.topology in
  let threads = Topology.threads topo in
  let hier =
    match kernel with
    | Fast ->
      Hierarchy.create ~costs:config.Config.costs
        ~disk_params:config.Config.disk_params topo
    | Reference ->
      Hierarchy.create ~l1_factory:Lru.reference ~l2_factory:Lru.reference
        ~costs:config.Config.costs ~disk_params:config.Config.disk_params topo
  in
  let block_requests = ref 0 in
  let request =
    match kernel with
    | Fast ->
      let buffers =
        Array.init threads (fun _ ->
            Flat_lru.create ~capacity:config.Config.client_buffer_blocks)
      in
      fun thread (b : Block.t) ->
        if Flat_lru.touch buffers.(thread) (b :> int) then
          Hierarchy.add_cpu_us hier ~thread config.Config.client_hit_us
        else begin
          ignore (Flat_lru.insert buffers.(thread) (b :> int));
          incr block_requests;
          Hierarchy.access hier ~thread b
        end
    | Reference ->
      let buffers =
        Array.init threads (fun _ ->
            Lru.reference ~capacity:config.Config.client_buffer_blocks)
      in
      fun thread b ->
        if buffers.(thread).Policy.touch b then
          Hierarchy.add_cpu_us hier ~thread config.Config.client_hit_us
        else begin
          ignore (buffers.(thread).Policy.insert b);
          incr block_requests;
          Hierarchy.access hier ~thread b
        end
  in
  List.iter
    (fun (weight, streams) ->
      for _rep = 1 to weight do
        let cursors = Array.make threads 0 in
        let live = ref threads in
        while !live > 0 do
          live := 0;
          for t = 0 to threads - 1 do
            let stream = streams.(t) in
            let len = Array.length stream in
            let upto = min len (cursors.(t) + config.Config.quantum) in
            for k = cursors.(t) to upto - 1 do
              request t stream.(k)
            done;
            cursors.(t) <- upto;
            if upto < len then incr live
          done
        done
      done)
    p.weighted_streams;
  (!block_requests, Hierarchy.elapsed_us hier)

let element_accesses p =
  (* per pass: every stream element is one block touch of one reference *)
  List.fold_left
    (fun acc (weight, streams) ->
      acc + (weight * Array.fold_left (fun a s -> a + Array.length s) 0 streams))
    0 p.weighted_streams

let time ?(reps = 3) kernel p =
  let reps = max 1 reps in
  let best = ref infinity in
  let requests = ref 0 in
  let elapsed = ref 0. in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r, e = pass kernel p in
    let dt = Unix.gettimeofday () -. t0 in
    requests := r;
    elapsed := e;
    if dt < !best then best := dt
  done;
  {
    block_requests = !requests;
    element_accesses = element_accesses p;
    wall_s = !best;
    elapsed_us = !elapsed;
  }
