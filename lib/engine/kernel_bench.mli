(** Closed-loop simulation-kernel micro-benchmark.

    Separates stream generation (once, {!prepare}) from the timed replay
    ({!time}), so the measured wall clock is the per-request kernel alone:
    client data-sieving buffers, hierarchy caches, disk model.  Used by
    [bench/sim_bench.exe] and the ungated [_sim/*] metrics of
    [bench -- json]. *)

type kernel =
  | Fast  (** production kernel: {!Flo_storage.Flat_lru}, devirtualized *)
  | Reference
      (** retained pre-flat kernel: {!Flo_storage.Lru.reference} closures
          through the generic dispatch path *)

type prepared

type timing = {
  block_requests : int;  (** requests reaching the hierarchy in one pass *)
  element_accesses : int;  (** stream elements replayed in one pass *)
  wall_s : float;  (** best-of-reps wall clock of one pass *)
  elapsed_us : float;  (** modeled time — must match across kernels *)
}

val prepare :
  config:Config.t ->
  layouts:(int -> Flo_core.File_layout.t) ->
  ?sample:int ->
  Flo_workloads.App.t ->
  prepared

val time : ?reps:int -> kernel -> prepared -> timing
(** Best wall clock over [reps] (default 3) fresh closed-loop passes. *)
