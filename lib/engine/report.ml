let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc r -> max acc (try String.length (List.nth r c) with _ -> 0))
      0 all
  in
  let widths = List.init cols width in
  let render_row r =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = try List.nth r c with _ -> "" in
           let pad = w - String.length cell in
           if c = 0 then cell ^ String.make pad ' ' else String.make pad ' ' ^ cell)
         widths)
  in
  let sep = String.make (List.fold_left ( + ) (2 * (cols - 1)) widths) '-' in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)

let print_table ~title ~header rows =
  print_endline ("== " ^ title ^ " ==");
  print_endline (table ~header rows);
  print_newline ()

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let pct v = Printf.sprintf "%.1f" (100. *. v)
let ms us = Printf.sprintf "%.1f" (us /. 1000.)

let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

(* ---- observability rendering ----------------------------------------- *)

let stats_header =
  [ "node"; "accesses"; "hits"; "misses"; "miss %"; "evict"; "demote"; "prefetch";
    "pf hits" ]

let stats_row name (s : Flo_storage.Stats.t) =
  [
    name;
    string_of_int s.Flo_storage.Stats.accesses;
    string_of_int s.Flo_storage.Stats.hits;
    string_of_int s.Flo_storage.Stats.misses;
    pct (Flo_storage.Stats.miss_rate s);
    string_of_int s.Flo_storage.Stats.evictions;
    string_of_int s.Flo_storage.Stats.demotions;
    string_of_int s.Flo_storage.Stats.prefetches;
    string_of_int s.Flo_storage.Stats.prefetch_hits;
  ]

let print_node_stats ~title named =
  print_table ~title ~header:stats_header (List.map (fun (n, s) -> stats_row n s) named)

let latency_summary (h : Flo_obs.Histogram.t) =
  if Flo_obs.Histogram.is_empty h then "no observations"
  else
    Printf.sprintf "n=%d  mean=%s us  p50=%s us  p90=%s us  p99=%s us  max=%s us"
      (Flo_obs.Histogram.count h)
      (f1 (Flo_obs.Histogram.mean h))
      (f1 (Flo_obs.Histogram.percentile h 0.5))
      (f1 (Flo_obs.Histogram.percentile h 0.9))
      (f1 (Flo_obs.Histogram.percentile h 0.99))
      (f1 (Flo_obs.Histogram.max_value h))

let print_latency ~title h =
  print_endline ("== " ^ title ^ " ==");
  print_endline (latency_summary h);
  print_newline ()

let geomean = function
  | [] -> 0.
  | l -> exp (List.fold_left (fun acc x -> acc +. log x) 0. l /. float_of_int (List.length l))

(* ---- trace-analysis rendering ----------------------------------------- *)

let matrix ~label m =
  let n = Array.length m in
  table
    ~header:("" :: List.init n label)
    (Array.to_list
       (Array.mapi
          (fun i row -> label i :: Array.to_list (Array.map string_of_int row))
          m))

(* the rows/columns of [m] selected by [idx] (e.g. only active threads) *)
let submatrix ~label idx m =
  table
    ~header:("" :: List.map label idx)
    (List.map
       (fun i -> label i :: List.map (fun j -> string_of_int m.(i).(j)) idx)
       idx)

let thread_label i = Printf.sprintf "t%d" i

let reuse_summary_row name (r : Flo_analysis.Reuse.t) =
  let h = Flo_analysis.Reuse.histogram r in
  let p q = if Flo_obs.Histogram.is_empty h then "-" else f1 (Flo_obs.Histogram.percentile h q) in
  [
    name;
    string_of_int (Flo_analysis.Reuse.touches r);
    string_of_int (Flo_analysis.Reuse.distinct_blocks r);
    string_of_int (Flo_analysis.Reuse.cold_touches r);
    string_of_int (Flo_analysis.Reuse.reuses r);
    p 0.5;
    p 0.9;
    p 0.99;
    (if Flo_obs.Histogram.is_empty h then "-" else f1 (Flo_obs.Histogram.max_value h));
  ]

let reuse_header =
  [ "cache"; "touches"; "distinct"; "cold"; "reuses"; "p50"; "p90"; "p99"; "max" ]

let analysis_summary ?(max_matrix = 16) a =
  let module A = Flo_analysis.Analyzer in
  let module S = Flo_analysis.Sharing in
  let module L = Flo_analysis.Locality in
  let buf = Buffer.create 4096 in
  let section title body =
    Buffer.add_string buf ("== " ^ title ^ " ==\n");
    Buffer.add_string buf body;
    Buffer.add_string buf "\n\n"
  in
  let caches = A.caches a in
  (* headline counters *)
  let lo, hi = A.time_span a in
  section "trace summary"
    (table ~header:[ "quantity"; "value" ]
       [
         [ "events"; string_of_int (A.event_count a) ];
         [ "block requests"; string_of_int (A.kind_count a Flo_obs.Event.Access) ];
         [ "disk reads"; string_of_int (A.kind_count a Flo_obs.Event.Disk_read) ];
         [ "disk time (us)"; f1 (A.total_disk_us a) ];
         [ "span (us, modeled)"; Printf.sprintf "%s .. %s" (f1 lo) (f1 hi) ];
         [ "threads"; string_of_int (L.threads (A.locality a)) ];
         [ "caches"; string_of_int (List.length caches) ];
       ]);
  (* reuse distances *)
  let reuse_rows =
    List.filter_map
      (fun c -> Option.map (reuse_summary_row (A.cache_name c)) (A.reuse_of a c))
      caches
  in
  if reuse_rows <> [] then
    section "block reuse distances (distinct blocks between reuses)"
      (table ~header:reuse_header reuse_rows);
  (* per-cache sharing and conflicts *)
  List.iter
    (fun c ->
      match A.sharing_of a c with
      | None -> ()
      | Some s ->
        let active = S.active_threads s in
        let n = List.length active in
        if n > 1 then begin
          let body = Buffer.create 512 in
          if n <= max_matrix then begin
            Buffer.add_string body (submatrix ~label:thread_label active (S.shared s));
            Buffer.add_char body '\n'
          end;
          Buffer.add_string body
            (Printf.sprintf
               "cross-thread shared: %d pair-sharings over %d blocks (of %d distinct)"
               (S.cross_shared s) (S.shared_blocks s) (S.distinct_blocks s));
          section
            (Printf.sprintf
               "inter-thread sharing: %s (blocks both touched; diagonal = per-thread distinct)"
               (A.cache_name c))
            (Buffer.contents body);
          let conflict_body = Buffer.create 512 in
          if n <= max_matrix && S.total_conflicts s > 0 then begin
            Buffer.add_string conflict_body
              (submatrix ~label:thread_label active (S.conflicts s));
            Buffer.add_char conflict_body '\n'
          end;
          Buffer.add_string conflict_body
            (Printf.sprintf "conflicts: %d of %d evictions hurt another thread"
               (S.total_conflicts s) (S.evictions s));
          section
            (Printf.sprintf
               "eviction conflicts: %s (row evicted a block column still needed)"
               (A.cache_name c))
            (Buffer.contents conflict_body)
        end)
    caches;
  (* Step I objective: per-thread distinct blocks per file *)
  let l = A.locality a in
  let per_thread = L.per_thread l in
  if per_thread <> [] then begin
    let files = L.files l in
    let many = List.length files > 12 in
    let header =
      "thread"
      :: ((if many then [] else List.map (fun f -> Printf.sprintf "f%d" f) files)
         @ [ "total" ])
    in
    let rows =
      List.map
        (fun (t, _) ->
          thread_label t
          :: ((if many then []
              else
                List.map (fun f -> string_of_int (L.distinct l ~thread:t ~file:f)) files)
             @ [ string_of_int (L.total_distinct l ~thread:t) ]))
        per_thread
    in
    section "per-thread distinct blocks per file (Step I objective, Eq. 4)"
      (table ~header rows)
  end;
  Buffer.contents buf

let print_analysis ?max_matrix a = print_string (analysis_summary ?max_matrix a)
