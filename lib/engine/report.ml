let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc r -> max acc (try String.length (List.nth r c) with _ -> 0))
      0 all
  in
  let widths = List.init cols width in
  let render_row r =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = try List.nth r c with _ -> "" in
           let pad = w - String.length cell in
           if c = 0 then cell ^ String.make pad ' ' else String.make pad ' ' ^ cell)
         widths)
  in
  let sep = String.make (List.fold_left ( + ) (2 * (cols - 1)) widths) '-' in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)

let print_table ~title ~header rows =
  print_endline ("== " ^ title ^ " ==");
  print_endline (table ~header rows);
  print_newline ()

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let pct v = Printf.sprintf "%.1f" (100. *. v)
let ms us = Printf.sprintf "%.1f" (us /. 1000.)

let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

(* ---- observability rendering ----------------------------------------- *)

let stats_header =
  [ "node"; "accesses"; "hits"; "misses"; "miss %"; "evict"; "demote"; "prefetch";
    "pf hits" ]

let stats_row name (s : Flo_storage.Stats.t) =
  [
    name;
    string_of_int s.Flo_storage.Stats.accesses;
    string_of_int s.Flo_storage.Stats.hits;
    string_of_int s.Flo_storage.Stats.misses;
    pct (Flo_storage.Stats.miss_rate s);
    string_of_int s.Flo_storage.Stats.evictions;
    string_of_int s.Flo_storage.Stats.demotions;
    string_of_int s.Flo_storage.Stats.prefetches;
    string_of_int s.Flo_storage.Stats.prefetch_hits;
  ]

let print_node_stats ~title named =
  print_table ~title ~header:stats_header (List.map (fun (n, s) -> stats_row n s) named)

let latency_summary (h : Flo_obs.Histogram.t) =
  if Flo_obs.Histogram.is_empty h then "no observations"
  else
    Printf.sprintf "n=%d  mean=%s us  p50=%s us  p90=%s us  p99=%s us  max=%s us"
      (Flo_obs.Histogram.count h)
      (f1 (Flo_obs.Histogram.mean h))
      (f1 (Flo_obs.Histogram.percentile h 0.5))
      (f1 (Flo_obs.Histogram.percentile h 0.9))
      (f1 (Flo_obs.Histogram.percentile h 0.99))
      (f1 (Flo_obs.Histogram.max_value h))

let print_latency ~title h =
  print_endline ("== " ^ title ^ " ==");
  print_endline (latency_summary h);
  print_newline ()

let geomean = function
  | [] -> 0.
  | l -> exp (List.fold_left (fun acc x -> acc +. log x) 0. l /. float_of_int (List.length l))
