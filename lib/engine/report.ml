let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc r -> max acc (try String.length (List.nth r c) with _ -> 0))
      0 all
  in
  let widths = List.init cols width in
  let render_row r =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = try List.nth r c with _ -> "" in
           let pad = w - String.length cell in
           if c = 0 then cell ^ String.make pad ' ' else String.make pad ' ' ^ cell)
         widths)
  in
  let sep = String.make (List.fold_left ( + ) (2 * (cols - 1)) widths) '-' in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)

let print_table ~title ~header rows =
  print_endline ("== " ^ title ^ " ==");
  print_endline (table ~header rows);
  print_newline ()

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let pct v = Printf.sprintf "%.1f" (100. *. v)
let ms us = Printf.sprintf "%.1f" (us /. 1000.)

let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

(* ---- observability rendering ----------------------------------------- *)

let stats_header =
  [ "node"; "accesses"; "hits"; "misses"; "miss %"; "evict"; "demote"; "prefetch";
    "pf hits" ]

let stats_row name (s : Flo_storage.Stats.t) =
  [
    name;
    string_of_int s.Flo_storage.Stats.accesses;
    string_of_int s.Flo_storage.Stats.hits;
    string_of_int s.Flo_storage.Stats.misses;
    pct (Flo_storage.Stats.miss_rate s);
    string_of_int s.Flo_storage.Stats.evictions;
    string_of_int s.Flo_storage.Stats.demotions;
    string_of_int s.Flo_storage.Stats.prefetches;
    string_of_int s.Flo_storage.Stats.prefetch_hits;
  ]

let print_node_stats ~title named =
  print_table ~title ~header:stats_header (List.map (fun (n, s) -> stats_row n s) named)

let latency_summary (h : Flo_obs.Histogram.t) =
  if Flo_obs.Histogram.is_empty h then "no observations"
  else
    Printf.sprintf "n=%d  mean=%s us  p50=%s us  p90=%s us  p99=%s us  max=%s us"
      (Flo_obs.Histogram.count h)
      (f1 (Flo_obs.Histogram.mean h))
      (f1 (Flo_obs.Histogram.percentile h 0.5))
      (f1 (Flo_obs.Histogram.percentile h 0.9))
      (f1 (Flo_obs.Histogram.percentile h 0.99))
      (f1 (Flo_obs.Histogram.max_value h))

let print_latency ~title h =
  print_endline ("== " ^ title ^ " ==");
  print_endline (latency_summary h);
  print_newline ()

let geomean = function
  | [] -> 0.
  | l -> exp (List.fold_left (fun acc x -> acc +. log x) 0. l /. float_of_int (List.length l))

(* ---- trace-analysis rendering ----------------------------------------- *)

let matrix ~label m =
  let n = Array.length m in
  table
    ~header:("" :: List.init n label)
    (Array.to_list
       (Array.mapi
          (fun i row -> label i :: Array.to_list (Array.map string_of_int row))
          m))

(* the rows/columns of [m] selected by [idx] (e.g. only active threads) *)
let submatrix ~label idx m =
  table
    ~header:("" :: List.map label idx)
    (List.map
       (fun i -> label i :: List.map (fun j -> string_of_int m.(i).(j)) idx)
       idx)

let thread_label i = Printf.sprintf "t%d" i

let reuse_summary_row name (r : Flo_analysis.Reuse.t) =
  let h = Flo_analysis.Reuse.histogram r in
  let p q = if Flo_obs.Histogram.is_empty h then "-" else f1 (Flo_obs.Histogram.percentile h q) in
  [
    name;
    string_of_int (Flo_analysis.Reuse.touches r);
    string_of_int (Flo_analysis.Reuse.distinct_blocks r);
    string_of_int (Flo_analysis.Reuse.cold_touches r);
    string_of_int (Flo_analysis.Reuse.reuses r);
    p 0.5;
    p 0.9;
    p 0.99;
    (if Flo_obs.Histogram.is_empty h then "-" else f1 (Flo_obs.Histogram.max_value h));
  ]

let reuse_header =
  [ "cache"; "touches"; "distinct"; "cold"; "reuses"; "p50"; "p90"; "p99"; "max" ]

let analysis_summary ?(max_matrix = 16) a =
  let module A = Flo_analysis.Analyzer in
  let module S = Flo_analysis.Sharing in
  let module L = Flo_analysis.Locality in
  let buf = Buffer.create 4096 in
  let section title body =
    Buffer.add_string buf ("== " ^ title ^ " ==\n");
    Buffer.add_string buf body;
    Buffer.add_string buf "\n\n"
  in
  let caches = A.caches a in
  (* headline counters *)
  let lo, hi = A.time_span a in
  (* fault-path rows appear only when the trace contains fault events, so
     fault-free reports (and their golden files) are unchanged *)
  let fault_rows =
    List.filter_map
      (fun (label, kind) ->
        let n = A.kind_count a kind in
        if n = 0 then None else Some [ label; string_of_int n ])
      [
        ("read faults", Flo_obs.Event.Fault);
        ("retries", Flo_obs.Event.Retry);
        ("timeouts", Flo_obs.Event.Timeout);
        ("failover reads", Flo_obs.Event.Failover);
      ]
  in
  section "trace summary"
    (table ~header:[ "quantity"; "value" ]
       ([
          [ "events"; string_of_int (A.event_count a) ];
          [ "block requests"; string_of_int (A.kind_count a Flo_obs.Event.Access) ];
          [ "disk reads"; string_of_int (A.kind_count a Flo_obs.Event.Disk_read) ];
        ]
       @ fault_rows
       @ [
           [ "disk time (us)"; f1 (A.total_disk_us a) ];
           [ "span (us, modeled)"; Printf.sprintf "%s .. %s" (f1 lo) (f1 hi) ];
           [ "threads"; string_of_int (L.threads (A.locality a)) ];
           [ "caches"; string_of_int (List.length caches) ];
         ]));
  (* reuse distances *)
  let reuse_rows =
    List.filter_map
      (fun c -> Option.map (reuse_summary_row (A.cache_name c)) (A.reuse_of a c))
      caches
  in
  if reuse_rows <> [] then
    section "block reuse distances (distinct blocks between reuses)"
      (table ~header:reuse_header reuse_rows);
  (* per-cache sharing and conflicts *)
  List.iter
    (fun c ->
      match A.sharing_of a c with
      | None -> ()
      | Some s ->
        let active = S.active_threads s in
        let n = List.length active in
        if n > 1 then begin
          let body = Buffer.create 512 in
          if n <= max_matrix then begin
            Buffer.add_string body (submatrix ~label:thread_label active (S.shared s));
            Buffer.add_char body '\n'
          end;
          Buffer.add_string body
            (Printf.sprintf
               "cross-thread shared: %d pair-sharings over %d blocks (of %d distinct)"
               (S.cross_shared s) (S.shared_blocks s) (S.distinct_blocks s));
          section
            (Printf.sprintf
               "inter-thread sharing: %s (blocks both touched; diagonal = per-thread distinct)"
               (A.cache_name c))
            (Buffer.contents body);
          let conflict_body = Buffer.create 512 in
          if n <= max_matrix && S.total_conflicts s > 0 then begin
            Buffer.add_string conflict_body
              (submatrix ~label:thread_label active (S.conflicts s));
            Buffer.add_char conflict_body '\n'
          end;
          Buffer.add_string conflict_body
            (Printf.sprintf "conflicts: %d of %d evictions hurt another thread"
               (S.total_conflicts s) (S.evictions s));
          section
            (Printf.sprintf
               "eviction conflicts: %s (row evicted a block column still needed)"
               (A.cache_name c))
            (Buffer.contents conflict_body)
        end)
    caches;
  (* Step I objective: per-thread distinct blocks per file *)
  let l = A.locality a in
  let per_thread = L.per_thread l in
  if per_thread <> [] then begin
    let files = L.files l in
    let many = List.length files > 12 in
    let header =
      "thread"
      :: ((if many then [] else List.map (fun f -> Printf.sprintf "f%d" f) files)
         @ [ "total" ])
    in
    let rows =
      List.map
        (fun (t, _) ->
          thread_label t
          :: ((if many then []
              else
                List.map (fun f -> string_of_int (L.distinct l ~thread:t ~file:f)) files)
             @ [ string_of_int (L.total_distinct l ~thread:t) ]))
        per_thread
    in
    section "per-thread distinct blocks per file (Step I objective, Eq. 4)"
      (table ~header rows)
  end;
  Buffer.contents buf

let print_analysis ?max_matrix a = print_string (analysis_summary ?max_matrix a)

let rel_pct v = if v = infinity then "inf" else pct v

let fidelity_summary (fd : Flo_fidelity.Fidelity.t) =
  let module F = Flo_fidelity.Fidelity in
  let module P = Flo_fidelity.Predict in
  let buf = Buffer.create 2048 in
  let section title body =
    Buffer.add_string buf ("== " ^ title ^ " ==\n");
    Buffer.add_string buf body;
    Buffer.add_string buf "\n\n"
  in
  let p = fd.F.predict in
  section "model parameters"
    (table ~header:[ "quantity"; "value" ]
       [
         [ "app"; fd.F.app ];
         [ "threads"; string_of_int p.P.threads ];
         [ "block (elements)"; string_of_int p.P.block_elems ];
         [ "blocks/thread"; string_of_int p.P.blocks_per_thread ];
         [ "sample"; string_of_int p.P.sample ];
         [ "tolerance (rel %)"; pct fd.F.tolerance ];
       ]);
  section "per-array layout predictions (Step II parameters)"
    (table
       ~header:[ "array"; "layout"; "chunk"; "aligned"; "layers" ]
       (List.map
          (fun (ap : P.array_prediction) ->
            [
              ap.P.array_name;
              ap.P.layout;
              (match ap.P.chunk_elems with Some c -> string_of_int c | None -> "-");
              (if ap.P.optimized then string_of_bool ap.P.block_aligned else "-");
              (if ap.P.layers = [] then "-"
               else
                 String.concat "; "
                   (List.map (Format.asprintf "%a" P.pp_layer) ap.P.layers));
            ])
          p.P.arrays));
  section "predicted vs observed distinct blocks (Step I, Eq. 4)"
    (table
       ~header:[ "thread"; "file"; "predicted"; "observed"; "drift"; "rel %"; "flag" ]
       (List.map
          (fun (r : F.row) ->
            [
              thread_label r.F.thread;
              Printf.sprintf "f%d" r.F.file;
              string_of_int r.F.predicted;
              string_of_int r.F.observed;
              string_of_int (F.abs_drift r);
              rel_pct (F.rel_drift r);
              (if F.rel_drift r > fd.F.tolerance then "DRIFT" else "ok");
            ])
          fd.F.rows));
  section "cross-thread sharing (Step II)"
    (table
       ~header:[ "quantity"; "predicted"; "observed"; "drift" ]
       [
         [
           "shared blocks";
           string_of_int fd.F.predicted_cross_shared;
           string_of_int fd.F.observed_cross_shared;
           string_of_int (F.sharing_drift fd);
         ];
         [
           "pair co-touches";
           string_of_int fd.F.predicted_cross_pairs;
           string_of_int fd.F.observed_cross_pairs;
           string_of_int (F.pairs_drift fd);
         ];
       ]);
  if fd.F.layer_rows <> [] then
    section "per-cache sharing vs request-level bound"
      (table
         ~header:[ "cache"; "observed cross"; "bound"; "flag" ]
         (List.map
            (fun (lr : F.layer_row) ->
              [
                lr.F.cache;
                string_of_int lr.F.observed_cross;
                string_of_int lr.F.predicted_bound;
                (if lr.F.violated then "VIOLATION" else "ok");
              ])
            fd.F.layer_rows));
  Buffer.add_string buf
    (Printf.sprintf
       "verdict: %s (max |drift| %d, max rel %s%%, %d flagged rows, %d layer violations)\n"
       (if F.ok fd then "OK" else "DRIFT")
       (F.max_abs_drift fd)
       (rel_pct (F.max_rel_drift fd))
       (List.length (F.flagged fd))
       (List.length (F.layer_violations fd)));
  Buffer.contents buf

let fidelity_line (fd : Flo_fidelity.Fidelity.t) =
  let module F = Flo_fidelity.Fidelity in
  Printf.sprintf
    "%-10s rows=%-3d max_abs=%-3d max_rel=%s%% sharing=%d/%d flagged=%d violations=%d %s"
    fd.F.app
    (List.length fd.F.rows)
    (F.max_abs_drift fd)
    (rel_pct (F.max_rel_drift fd))
    fd.F.predicted_cross_shared fd.F.observed_cross_shared
    (List.length (F.flagged fd))
    (List.length (F.layer_violations fd))
    (if F.ok fd then "OK" else "DRIFT")

let print_fidelity fd = print_string (fidelity_summary fd)

(* --- fault / chaos rendering ----------------------------------------- *)

let degradation_summary (plan : Flo_core.Optimizer.plan) =
  let module O = Flo_core.Optimizer in
  let degraded = O.degraded plan in
  if degraded = [] then
    Printf.sprintf "layout pass: %d/%d arrays fully optimized, no degradations\n"
      (O.optimized_count plan) (O.total_arrays plan)
  else
    table
      ~header:[ "array"; "stage"; "reason" ]
      (List.map
         (fun (d : O.decision) ->
           [ d.O.array_name; O.stage_to_string d.O.stage; O.reason_to_string d.O.reason ])
         degraded)

let chaos_point_counts (p : Experiment.chaos_point) =
  let module I = Flo_faults.Injector in
  let add (a : I.counts) (b : I.counts) =
    ( a.I.faults + b.I.faults,
      a.I.retries + b.I.retries,
      a.I.timeouts + b.I.timeouts,
      a.I.failovers + b.I.failovers )
  in
  add p.Experiment.default_counts p.Experiment.inter_counts

let chaos_verdict points =
  match points with
  | [] | [ _ ] -> "need at least two fault scales for a verdict"
  | first :: _ ->
    let last = List.nth points (List.length points - 1) in
    let adv (p : Experiment.chaos_point) =
      100.
      *. (Run.l2_miss_per_element p.Experiment.default_r
         -. Run.l2_miss_per_element p.Experiment.inter_r)
    in
    let a0 = adv first and a1 = adv last in
    Printf.sprintf
      "L2 miss/elem advantage %.2fpp -> %.2fpp at scale x%g; optimized advantage %s \
       under faults"
      a0 a1 last.Experiment.scale
      (if a1 > 0. then "persists" else "collapses")

let chaos_summary ~app ~seed points =
  let module I = Flo_faults.Injector in
  let buf = Buffer.create 2048 in
  let rows =
    List.map
      (fun (p : Experiment.chaos_point) ->
        let faults, retries, timeouts, failovers = chaos_point_counts p in
        let d = p.Experiment.default_r and o = p.Experiment.inter_r in
        [
          Printf.sprintf "x%g" p.Experiment.scale;
          ms d.Run.elapsed_us;
          ms o.Run.elapsed_us;
          f3 (o.Run.elapsed_us /. d.Run.elapsed_us);
          f2 (100. *. Run.l2_miss_per_element d);
          f2 (100. *. Run.l2_miss_per_element o);
          string_of_int faults;
          string_of_int retries;
          string_of_int timeouts;
          string_of_int failovers;
        ])
      points
  in
  Buffer.add_string buf
    (Printf.sprintf "chaos sweep: %s (seed %d; default vs optimized layouts)\n" app seed);
  Buffer.add_string buf
    (table
       ~header:
         [
           "scale"; "default ms"; "optimized ms"; "norm"; "L2 m/e def %"; "L2 m/e opt %";
           "faults"; "retries"; "timeouts"; "failovers";
         ]
       rows);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "chaos %s seed=%d: %s\n" app seed (chaos_verdict points));
  Buffer.contents buf

let print_chaos ~app ~seed points = print_string (chaos_summary ~app ~seed points)
