open Flo_core
open Flo_workloads
open Flo_storage

let default_layouts app =
  let program = app.App.program in
  fun id ->
    let decl = Flo_poly.Program.array_decl program id in
    File_layout.Row_major decl.Flo_poly.Program.space

let inter_plan ?weighted ?scope ?metrics config app =
  let spec = Config.spec_for config app.App.program in
  Optimizer.run ?weighted ?scope ?metrics ~spec app.App.program

let inter_layouts ?weighted ?scope config app =
  let plan = inter_plan ?weighted ?scope config app in
  fun id -> Optimizer.layout_of plan id

let default_run ?mapping ?caching config app =
  Run.run ?mapping ?caching ~config ~layouts:(default_layouts app) app

let inter_run ?mapping ?caching ?weighted ?scope config app =
  Run.run ?mapping ?caching ~config ~layouts:(inter_layouts ?weighted ?scope config app) app

let normalized ~base r = r.Run.elapsed_us /. base.Run.elapsed_us

(* The [27] baseline is single-node centric (the paper's first criticism of
   prior layout work): its profile runs see a sequential, single-cache
   system, not the parallel sharing structure. *)
let sequential_config config =
  let t = config.Config.topology in
  Config.with_topology config
    (Topology.make ~compute_nodes:1 ~io_nodes:1 ~storage_nodes:1
       ~block_elems:t.Topology.block_elems ~io_cache_blocks:t.Topology.io_cache_blocks
       ~storage_cache_blocks:t.Topology.storage_cache_blocks ())

let reindex_best ?(sample = 4) config app =
  let seq = sequential_config config in
  let evaluate assignment =
    (Run.run ~sample ~config:seq ~layouts:assignment app).Run.elapsed_us
  in
  Reindex.optimize app.App.program ~evaluate

let reindex_run ?sample config app =
  let outcome = reindex_best ?sample config app in
  let layouts id = List.assoc id outcome.Reindex.layouts in
  Run.run ~config ~layouts app

let inter_template_run config app =
  let spec0 = Config.spec_for config app.App.program in
  let topo = config.Config.topology in
  let fanouts =
    Array.map (fun (l : Flo_core.Chunk_pattern.layer) -> l.Flo_core.Chunk_pattern.fanout)
      spec0.Internode.layers
  in
  let spec =
    Internode.template_spec ~fanouts ~chunk:topo.Topology.block_elems
      ~align:topo.Topology.block_elems ~num_blocks:spec0.Internode.num_blocks
  in
  let plan = Optimizer.run ~spec app.App.program in
  Run.run ~config ~layouts:(fun id -> Optimizer.layout_of plan id) app

let reindex_static_run config app =
  let chosen = Reindex.dominant_order app.App.program in
  Run.run ~config ~layouts:(fun id -> List.assoc id chosen) app

let compmap_best ?(sample = 4) config app =
  let layouts = default_layouts app in
  let nests = List.length app.App.program.Flo_poly.Program.nests in
  let cluster = Topology.threads_per_io config.Config.topology in
  let threads = Config.threads config in
  let evaluate assigns =
    (Run.run ~sample ~assigns ~config ~layouts app).Run.elapsed_us
  in
  Compmap.optimize ~nests ~cluster ~threads ~evaluate

let compmap_run ?sample config app =
  let outcome = compmap_best ?sample config app in
  let assigns i = List.assoc i outcome.Compmap.choices in
  Run.run ~assigns ~config ~layouts:(default_layouts app) app

(* Deterministic Fisher-Yates driven by a 64-bit LCG so mappings are stable
   across runs (Random would tie results to OCaml's generator version). *)
let random_mapping ~seed config =
  let compute = config.Config.topology.Topology.compute_nodes in
  let threads = Config.threads config in
  let state = ref (0x1E3779B97F4A7C15 * (seed + 1)) in
  let next bound =
    state := (!state * 3202034522624059733) + 1442695040888963407;
    let x = (!state lsr 17) land max_int in
    x mod bound
  in
  let perm = Array.init compute Fun.id in
  for i = compute - 1 downto 1 do
    let j = next (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  Array.init threads (fun t -> perm.(t mod compute))

let map_apps ?jobs f apps = Parallel.map_list ?jobs f apps

type chaos_point = {
  scale : float;
  plan : Flo_faults.Fault_plan.t;
  default_r : Run.result;
  inter_r : Run.result;
  default_counts : Flo_faults.Injector.counts;
  inter_counts : Flo_faults.Injector.counts;
}

(* One point per fault-rate scale, each simulated under both the default
   (row-major) and the compiler-optimized layouts with its own freshly
   compiled injector — injector state is per run, so points are independent
   tasks and the sweep parallelizes over scales with identical results at
   every jobs setting. *)
let chaos ?(scales = [ 0.; 0.5; 1.; 2. ]) ?caching ?scope ?jobs ~plan config app =
  let layouts_default = default_layouts app in
  let layouts_inter = inter_layouts ?scope config app in
  let storage_nodes = config.Config.topology.Topology.storage_nodes in
  let point scale =
    let p = Flo_faults.Fault_plan.scale plan scale in
    let run_under layouts =
      let inj = Flo_faults.Injector.create ~storage_nodes p in
      let r = Run.run ?caching ~faults:inj ~config ~layouts app in
      (r, Flo_faults.Injector.counts inj)
    in
    let default_r, default_counts = run_under layouts_default in
    let inter_r, inter_counts = run_under layouts_inter in
    { scale; plan = p; default_r; inter_r; default_counts; inter_counts }
  in
  Parallel.map_list ?jobs point scales

(* The fidelity loop: run with a live analyzer attached, recompute the
   compiler-side predictions under the same parallelization parameters (or
   deliberately different ones via [predict_block_elems]), and join. *)
let fidelity ?tolerance ?mapping ?(sample = 1) ?predict_block_elems ~layouts config
    app =
  let analyzer = Flo_analysis.Analyzer.create () in
  let result =
    Run.run ?mapping ~sample ~sink:(Flo_analysis.Analyzer.sink analyzer) ~config
      ~layouts app
  in
  let block_elems =
    match predict_block_elems with
    | Some b -> b
    | None -> config.Config.topology.Topology.block_elems
  in
  let predict =
    Flo_fidelity.Predict.compute
      ~blocks_per_thread:config.Config.blocks_per_thread ~sample ~block_elems
      ~threads:(Config.threads config) ~name:app.App.name ~layouts
      app.App.program
  in
  (Flo_fidelity.Fidelity.join ?tolerance ~predict ~observed:analyzer (), result)

(* One observation window for the drift watch: the fidelity loop's run,
   distilled into the plain-value signal Flo_fidelity.Drift folds.  The
   sharing matrix is the element-wise sum over the storage-node caches
   (threads are global indices, so cells never collide across nodes). *)
let drift_signal ?mapping ?(sample = 1) ~layouts config app =
  let analyzer = Flo_analysis.Analyzer.create () in
  let result =
    Run.run ?mapping ~sample ~sink:(Flo_analysis.Analyzer.sink analyzer) ~config
      ~layouts app
  in
  let predict =
    Flo_fidelity.Predict.compute
      ~blocks_per_thread:config.Config.blocks_per_thread ~sample
      ~block_elems:config.Config.topology.Topology.block_elems
      ~threads:(Config.threads config) ~name:app.App.name ~layouts
      app.App.program
  in
  let join = Flo_fidelity.Fidelity.join ~predict ~observed:analyzer () in
  let add_matrix a b =
    let dim m = Array.length m in
    let n = max (dim a) (dim b) in
    let cell m i j =
      if i < dim m && j < Array.length m.(i) then m.(i).(j) else 0
    in
    Array.init n (fun i -> Array.init n (fun j -> cell a i j + cell b i j))
  in
  let sharing =
    List.fold_left
      (fun acc (cache : Flo_analysis.Analyzer.cache) ->
        if cache.Flo_analysis.Analyzer.layer = Flo_obs.Event.L2 then
          match Flo_analysis.Analyzer.sharing_of analyzer cache with
          | Some s -> add_matrix acc (Flo_analysis.Sharing.shared s)
          | None -> acc
        else acc)
      [||]
      (Flo_analysis.Analyzer.caches analyzer)
  in
  let fidelity_rel =
    let r = Flo_fidelity.Fidelity.max_rel_drift join in
    (* a pair the model did not predict at all reads as total drift *)
    if Float.is_finite r then r else 1.
  in
  {
    Flo_fidelity.Drift.miss_l1 = Run.l1_miss_per_element result;
    miss_l2 = Run.l2_miss_per_element result;
    cross_shared = Flo_analysis.Analyzer.cross_shared_at analyzer Flo_obs.Event.L2;
    sharing;
    fidelity_rel;
  }
