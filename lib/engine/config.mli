(** Experiment configuration: the scaled-down Table 1 system plus execution
    model constants, and the bridge from a concrete {!Flo_storage.Topology}
    to the storage-agnostic pattern spec of the layout pass. *)

open Flo_storage
open Flo_core
open Flo_poly

type t = {
  topology : Topology.t;
  blocks_per_thread : int;  (** iteration blocks per thread (default 1) *)
  quantum : int;  (** block requests per thread per interleave round *)
  costs : Hierarchy.costs;
  disk_params : Disk.params;
  client_buffer_blocks : int;
      (** MPI-IO data-sieving buffer per thread (blocks); not a storage
          cache — the paper's compute nodes have none — but the I/O
          runtime's request coalescing window *)
  client_hit_us : float;  (** cost of serving a request from that buffer *)
}

val default : t
(** The defaults of Table 1, scaled (64/16/4 nodes, 64-element blocks,
    256/512-block caches). *)

val with_topology : t -> Topology.t -> t

val spec_for : t -> Program.t -> Internode.spec
(** Pattern spec for one program: layer capacities are each cache's share
    per disk-resident array (in elements), fanouts follow the nominal node
    tree, and a top pseudo-layer spans the storage nodes so the pattern
    interleaves all threads. *)

val threads : t -> int

(** {1 Validation} — structured rejection of malformed configurations.

    Records are concrete, so nothing stops code (or CLI flags) from
    assembling a topology with a zero-block cache or a capacity ladder that
    breaks the Step II divisibility law; these used to surface as
    [Division_by_zero] or asserts deep in the simulator.  The validators
    below turn them into a machine-readable {!invalid_config}; [flopt]
    exits 2 with {!invalid_config_to_string} of the reason. *)

type invalid_config =
  | Non_positive of { field : string; value : int }
  | Indivisible of { field : string; value : int; divisor : int }
      (** node counts must nest evenly: [value mod divisor <> 0] *)
  | Step2_indivisible of { layer : int; capacity : int; unit_ : int }
      (** the Step II law: layer [i]'s capacity [S_i+1] is not a multiple
          of its chunk unit [N_i+1 * S_i] *)

val invalid_config_to_string : invalid_config -> string

val validate : t -> (unit, invalid_config) result
(** Check an assembled configuration: positive node counts, threads, cache
    and block sizes, quantum and buffers; even node nesting. *)

val validate_layers : Chunk_pattern.layer array -> (unit, invalid_config) result
(** Strict Step II divisibility for a user-supplied capacity ladder:
    [S_1 mod N_1 = 0] and [S_i+1 mod (N_i+1 * S_i) = 0] for every layer
    (1-based in the paper; [layer] in the error is the 0-based array
    index).  {!spec_for} does not need this — pattern construction
    self-heals topology-derived capacities — but hand-built specs go
    through here first. *)

val build :
  ?compute_nodes:int ->
  ?io_nodes:int ->
  ?storage_nodes:int ->
  ?block_elems:int ->
  ?io_cache_blocks:int ->
  ?storage_cache_blocks:int ->
  ?blocks_per_thread:int ->
  ?quantum:int ->
  unit ->
  (t, invalid_config) result
(** Validating constructor over the default configuration — the CLI's
    front door: every error is a structured {!invalid_config}, never an
    exception.  Defaults are {!default}'s values. *)
