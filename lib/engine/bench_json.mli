(** Manifest collection for [bench -- json], parallel over applications.

    Each application's metrics are computed by a self-contained task (own
    analyzer, fidelity join, layouts), fanned over {!Parallel.map_list} and
    concatenated in application order — so the {e gated} portion of the
    manifest is bit-identical for every [jobs] value, including the
    sequential [jobs = 1] reference.  Only the ungated wall-clock metrics
    ([wall_ns.inter], [pass_compile_us], [tracegen_elems_per_sec.inter])
    vary run to run. *)

open Flo_core
open Flo_workloads

val collect :
  ?jobs:int ->
  ?sample:int ->
  ?wall_ns_inter:(App.t -> (int -> File_layout.t) -> float) ->
  ?progress:(string -> unit) ->
  config:Config.t ->
  App.t list ->
  Bench_schema.t
(** Per-app metrics under [config]: gated modeled quantities (elapsed time,
    per-layer miss rates, L2 cross-thread sharing, L1 reuse median, fidelity
    drift/flags) and ungated wall-clock ones.  [wall_ns_inter] supplies the
    [wall_ns.inter] measurement (the bench binary passes a bechamel timer;
    default records 0 — tests use this to keep manifests comparable);
    [progress] is called with each app name as its task starts (may
    interleave across domains).  [jobs] defaults to
    {!Parallel.default_jobs}. *)

val tracegen_elems_per_sec :
  config:Config.t -> sample:int -> App.t -> (int -> File_layout.t) -> float
(** Trace-generation throughput (elements enumerated per second, best of 3
    timed passes over the app's nests) — the fast path's headline ungated
    number. *)

val equal_gated : Bench_schema.t -> Bench_schema.t -> bool
(** Whether two manifests agree exactly on their gated metrics (same
    sequence of app/name/unit and bitwise-equal values) — the determinism
    check [bench -- json --jobs N] runs against the [jobs = 1] reference. *)
