open Flo_workloads
open Flo_storage

(* One app's manifest contribution is a pure function of (config, sample,
   app): the task builds its own analyzer, fidelity join and layouts, so the
   grid parallelizes over apps with no shared state and the gated metrics
   are identical under every jobs setting.  Ungated wall-clock metrics are
   machine- and scheduling-dependent by construction. *)

let tracegen_elems_per_sec ~config ~sample app layouts =
  let topo = config.Config.topology in
  let block_elems = topo.Topology.block_elems in
  let threads = Config.threads config in
  let blocks_per_thread = config.Config.blocks_per_thread in
  let nests = app.App.program.Flo_poly.Program.nests in
  let elems =
    List.fold_left
      (fun acc nest ->
        let iters =
          Tracegen.iterations_per_thread ~threads ~blocks_per_thread ~sample nest
        in
        acc + Array.fold_left ( + ) 0 iters)
      0 nests
  in
  let generate () =
    List.iter
      (fun nest ->
        ignore
          (Tracegen.nest_streams ~layouts ~block_elems ~threads ~blocks_per_thread
             ~sample nest))
      nests
  in
  generate () (* warm: page in code and data before timing *);
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    generate ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  float_of_int elems /. Float.max 1e-9 !best

let app_metrics ~config ~sample ~wall_ns_inter app =
  let name = app.App.name in
  let metrics = ref [] in
  let add ~name:metric ~value ~unit_ ~gated =
    metrics := { Bench_schema.app = name; name = metric; value; unit_; gated } :: !metrics
  in
  let analyzed_run layouts =
    let a = Flo_analysis.Analyzer.create () in
    let r =
      Run.run ~sample ~sink:(Flo_analysis.Analyzer.sink a) ~config ~layouts app
    in
    (r, a)
  in
  List.iter
    (fun (mode, layouts) ->
      let r, a = analyzed_run layouts in
      let g n v u = add ~name:(n ^ "." ^ mode) ~value:v ~unit_:u ~gated:true in
      g "elapsed_us" r.Run.elapsed_us "us";
      g "l1_miss_per_element" (Run.l1_miss_per_element r) "miss/elem";
      g "l2_miss_per_element" (Run.l2_miss_per_element r) "miss/elem";
      g "l2_cross_shared"
        (float_of_int (Flo_analysis.Analyzer.cross_shared_at a Flo_obs.Event.L2))
        "pairs";
      let h = Flo_analysis.Analyzer.reuse_histogram_at a Flo_obs.Event.L1 in
      if not (Flo_obs.Histogram.is_empty h) then
        g "reuse_p50_l1" (Flo_obs.Histogram.percentile h 0.5) "blocks")
    [
      ("default", Experiment.default_layouts app);
      ("inter", Experiment.inter_layouts config app);
    ];
  let fd, _ =
    Experiment.fidelity ~sample ~layouts:(Experiment.inter_layouts config app) config app
  in
  add ~name:"fidelity.max_rel_drift.inter"
    ~value:(Flo_fidelity.Fidelity.max_rel_drift fd) ~unit_:"ratio" ~gated:true;
  add ~name:"fidelity.flagged_rows.inter"
    ~value:(float_of_int (List.length (Flo_fidelity.Fidelity.flagged fd)))
    ~unit_:"rows" ~gated:true;
  add ~name:"wall_ns.inter"
    ~value:(wall_ns_inter app (Experiment.inter_layouts config app))
    ~unit_:"ns" ~gated:false;
  let compile_us =
    let t0 = Unix.gettimeofday () in
    ignore (Experiment.inter_plan config app);
    (Unix.gettimeofday () -. t0) *. 1e6
  in
  add ~name:"pass_compile_us" ~value:compile_us ~unit_:"us" ~gated:false;
  add ~name:"tracegen_elems_per_sec.inter"
    ~value:(tracegen_elems_per_sec ~config ~sample app (Experiment.inter_layouts config app))
    ~unit_:"elems/s" ~gated:false;
  List.rev !metrics

let collect ?jobs ?(sample = 1) ?(wall_ns_inter = fun _ _ -> 0.)
    ?(progress = fun _ -> ()) ~config apps =
  let per_app =
    Parallel.map_list ?jobs
      (fun app ->
        progress app.App.name;
        app_metrics ~config ~sample ~wall_ns_inter app)
      apps
  in
  Bench_schema.make
    ~apps:(List.map (fun a -> a.App.name) apps)
    ~sample
    ~block_elems:config.Config.topology.Topology.block_elems
    ~threads:(Config.threads config)
    (List.concat per_app)

let gated m =
  List.filter (fun (x : Bench_schema.metric) -> x.Bench_schema.gated)
    m.Bench_schema.metrics

let equal_gated a b =
  List.length (gated a) = List.length (gated b)
  && List.for_all2
       (fun (x : Bench_schema.metric) (y : Bench_schema.metric) ->
         x.Bench_schema.app = y.Bench_schema.app
         && x.Bench_schema.name = y.Bench_schema.name
         && x.Bench_schema.unit_ = y.Bench_schema.unit_
         && Float.equal x.Bench_schema.value y.Bench_schema.value)
       (gated a) (gated b)
