(** Step II pattern arithmetic (paper Section 4.2, Algorithm 1).

    A symmetric [n]-layer cache hierarchy is described bottom-up by
    {!layer} records: layer 1 caches hold [fanout = l] threads each and
    [capacity = S_1] elements; layer [i+1] caches hold [fanout = N_(i+1)]
    layer-[i] caches and [capacity = S_(i+1)] elements.  The file layout is
    the top-layer pattern repeated: an SC1 pattern is one chunk of
    [S_1 / l] elements per thread; an SC(i+1) pattern repeats each child
    SCi pattern [t_i = S_(i+1) / (N_(i+1) S_i)] times.

    [offset] places the [x]-th chunk of thread [t] at
    [base_t + b_n + ... + b_1] with
    [b_i = ((x / (t_1 ... t_(i-1))) mod t_i) * S_i] and
    [b_n = (x / (t_1 ... t_(n-1))) * S_n] — exactly the paper's indexing. *)

type layer = { capacity : int; fanout : int }

type t = private {
  threads : int;
  layers : layer array;
  chunk : int;  (** S_1 / l, elements per chunk *)
  reps : int array;  (** [reps.(i-1) = t_i] for [i = 1 .. n-1] *)
  bases : int array;  (** memoized {!base} per thread — the layer parameters
                          never change after construction *)
}

val make : layers:layer array -> t
(** Strict constructor.
    @raise Invalid_argument unless every capacity and fanout is positive,
    [S_1 mod l = 0], and each [t_i = S_(i+1) / (N_(i+1) S_i)] is a positive
    integer. *)

val fit : ?align:int -> layers:layer array -> unit -> t
(** Feasibility clamp: rounds [S_1] down so the chunk is a positive multiple
    of [align] (default 1), and each higher capacity down to the nearest
    [t_i >= 1] multiple.  Never raises for positive inputs; the clamped
    capacities are visible in the result's [layers]. *)

val threads : t -> int
val chunk_elems : t -> int

val period : t -> int
(** Size of the top pattern [S_n] — the repeating unit of the file layout. *)

val thread_base : t -> int
(** Elements of the period owned by each thread:
    [period / threads = chunk * t_1 * ... * t_(n-1)]. *)

val base : t -> thread:int -> int
(** Starting address of a thread's first chunk within the top pattern. *)

val offset : t -> thread:int -> rank:int -> int
(** File offset of the [rank]-th element (0-based) of [thread]'s data in
    thread-local order.
    @raise Invalid_argument on bad thread or negative rank. *)

val locate : t -> int -> int * int
(** Inverse of {!offset}: [(thread, rank)] of a file offset.
    @raise Invalid_argument on a negative offset. *)

val pp : Format.formatter -> t -> unit
