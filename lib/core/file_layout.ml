open Flo_linalg
open Flo_poly

type internode = {
  space : Data_space.t;
  d : Imat.t;
  v : int;
  shift : Ivec.t;
  ext : int array;
  num_blocks : int;
  slab_height : int;
  v_base : int;  (** first slab boundary in [0, slab_height) *)
  anchor : int;  (** slab index holding the image origin (iteration block 0) *)
  pattern : Chunk_pattern.t;
  rest : int;  (** memoized product of the non-partition extents *)
  slab_elems : int;  (** memoized [slab_height * rest] *)
  rest_strides : int array;
      (** memoized row-major strides of the non-partition dimensions:
          [lin_rest a' = sum_k rest_strides.(k) * a'.(k)] with the partition
          dimension's stride zeroed *)
}

type t =
  | Row_major of Data_space.t
  | Col_major of Data_space.t
  | Permuted of Data_space.t * int array
  | Internode of internode

let permuted space order =
  let m = Data_space.rank space in
  if Array.length order <> m then invalid_arg "File_layout.permuted: order length";
  let seen = Array.make m false in
  Array.iter
    (fun k ->
      if k < 0 || k >= m || seen.(k) then invalid_arg "File_layout.permuted: not a permutation";
      seen.(k) <- true)
    order;
  Permuted (space, Array.copy order)

(* Bounding box of the image of [0,N_1) x ... x [0,N_m) under D. *)
let bbox d space =
  let m = Data_space.rank space in
  let lo = Array.make m 0 and hi = Array.make m 0 in
  for r = 0 to m - 1 do
    for j = 0 to m - 1 do
      let c = Imat.get d r j * (Data_space.extent space j - 1) in
      if c < 0 then lo.(r) <- lo.(r) + c else hi.(r) <- hi.(r) + c
    done
  done;
  (lo, hi)

let internode ~space ~d ~v ~num_blocks ~v_origin ~slab_height ~pattern =
  let m = Data_space.rank space in
  if Imat.rows d <> m || Imat.cols d <> m then
    invalid_arg "File_layout.internode: transform shape mismatch";
  if not (Imat.is_unimodular d) then invalid_arg "File_layout.internode: D not unimodular";
  if v < 0 || v >= m then invalid_arg "File_layout.internode: v out of range";
  if num_blocks < 1 then invalid_arg "File_layout.internode: num_blocks < 1";
  if slab_height < 1 then invalid_arg "File_layout.internode: slab_height < 1";
  let lo, hi = bbox d space in
  let shift = Ivec.neg lo in
  let ext = Array.init m (fun r -> hi.(r) - lo.(r) + 1) in
  (* the image origin in shifted coordinates anchors the slab grid so data
     slab k holds exactly iteration block k's elements *)
  let origin = v_origin + shift.(v) in
  let origin = max 0 (min origin (ext.(v) - 1)) in
  let v_base = origin mod slab_height in
  let anchor = if v_base = 0 then origin / slab_height else (origin / slab_height) + 1 in
  (* Step II parameters are pure functions of the layers and the bbox, so
     derive them once here instead of on every offset_of call *)
  let rest_strides = Array.make m 0 in
  let rest = ref 1 in
  for k = m - 1 downto 0 do
    if k <> v then begin
      rest_strides.(k) <- !rest;
      rest := !rest * ext.(k)
    end
  done;
  let rest = !rest in
  Internode
    {
      space; d; v; shift; ext; num_blocks; slab_height; v_base; anchor; pattern;
      rest; slab_elems = slab_height * rest; rest_strides;
    }

let space = function
  | Row_major s | Col_major s | Permuted (s, _) -> s
  | Internode i -> i.space

let slab_height i = i.slab_height

(* slab grid over [0, ext_v): slab 0 = [0, v_base), slab j>=1 starts at
   v_base + (j-1)*slab_height; when v_base = 0 slab 0 is the first full slab *)
let slab_index i vv =
  if vv < i.v_base then 0
  else if i.v_base = 0 then vv / i.slab_height
  else (vv - i.v_base) / i.slab_height + 1

let slab_start i j =
  if j = 0 then 0
  else if i.v_base = 0 then j * i.slab_height
  else i.v_base + ((j - 1) * i.slab_height)

let total_slabs i = slab_index i (i.ext.(i.v) - 1) + 1

(* linearize the non-partition dimensions row-major, in original order *)
let lin_rest i a' =
  let acc = ref 0 in
  Array.iteri (fun k x -> acc := !acc + (i.rest_strides.(k) * x)) a';
  !acc

let slab_coords i ~vv ~lin_rest =
  let j = slab_index i vv in
  let threads = Chunk_pattern.threads i.pattern in
  (* iteration block b's image is slab (anchor + b): owner (j - anchor) mod T
     keeps data owners aligned with the round-robin block distribution *)
  let owner = (((j - i.anchor) mod threads) + threads) mod threads in
  let round = j / threads in
  let lin_in_slab = ((vv - slab_start i j) * i.rest) + lin_rest in
  let rank = (round * i.slab_elems) + lin_in_slab in
  (owner, rank)

let internode_coords i a =
  let a' = Ivec.add (Imat.mul_vec i.d a) i.shift in
  slab_coords i ~vv:a'.(i.v) ~lin_rest:(lin_rest i a')

let offset_of_transformed i ~vv ~lin_rest =
  let owner, rank = slab_coords i ~vv ~lin_rest in
  Chunk_pattern.offset i.pattern ~thread:owner ~rank

let offset_of t a =
  if not (Data_space.mem (space t) a) then invalid_arg "File_layout.offset_of: out of range";
  match t with
  | Row_major s -> Data_space.row_major_index s a
  | Col_major s -> Data_space.col_major_index s a
  | Permuted (s, order) ->
    let acc = ref 0 in
    Array.iter (fun k -> acc := (!acc * Data_space.extent s k) + a.(k)) order;
    !acc
  | Internode i ->
    let owner, rank = internode_coords i a in
    Chunk_pattern.offset i.pattern ~thread:owner ~rank

(* strides making each canonical layout a plain dot product:
   [offset_of t a = sum_k strides.(k) * a.(k)]; the inter-node layout is
   piecewise and has no such global linear form *)
let linear_strides t =
  match t with
  | Internode _ -> None
  | Row_major s ->
    let m = Data_space.rank s in
    let strides = Array.make m 1 in
    for k = m - 2 downto 0 do
      strides.(k) <- strides.(k + 1) * Data_space.extent s (k + 1)
    done;
    Some strides
  | Col_major s ->
    let m = Data_space.rank s in
    let strides = Array.make m 1 in
    for k = 1 to m - 1 do
      strides.(k) <- strides.(k - 1) * Data_space.extent s (k - 1)
    done;
    Some strides
  | Permuted (s, order) ->
    let m = Data_space.rank s in
    let strides = Array.make m 1 in
    let acc = ref 1 in
    for j = m - 1 downto 0 do
      strides.(order.(j)) <- !acc;
      acc := !acc * Data_space.extent s order.(j)
    done;
    Some strides

let size t =
  match t with
  | Row_major s | Col_major s | Permuted (s, _) -> Data_space.cardinal s
  | Internode i ->
    let slab_elems = i.slab_elems in
    let threads = Chunk_pattern.threads i.pattern in
    let total = total_slabs i in
    let best = ref 0 in
    for th = 0 to threads - 1 do
      (* slabs owned by th: j with (j - anchor) mod threads = th *)
      let r = (((th + i.anchor) mod threads) + threads) mod threads in
      if r < total then begin
        let count = ((total - r - 1) / threads) + 1 in
        let last_j = r + ((count - 1) * threads) in
        let max_rank = ((last_j / threads) * slab_elems) + slab_elems - 1 in
        let o = Chunk_pattern.offset i.pattern ~thread:th ~rank:max_rank in
        if o >= !best then best := o + 1
      end
    done;
    !best

let owner_of t a =
  match t with
  | Row_major _ | Col_major _ | Permuted _ -> None
  | Internode i ->
    if not (Data_space.mem i.space a) then invalid_arg "File_layout.owner_of: out of range";
    Some (fst (internode_coords i a))

let describe = function
  | Row_major _ -> "row-major"
  | Col_major _ -> "col-major"
  | Permuted (_, order) ->
    Format.asprintf "permuted(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Format.pp_print_int)
      (Array.to_list order)
  | Internode i ->
    Format.asprintf "internode(v=%d, blocks=%d, slab=%d, chunk=%d)" i.v i.num_blocks
      i.slab_height
      (Chunk_pattern.chunk_elems i.pattern)

let pp ppf t = Format.pp_print_string ppf (describe t)
