(** The complete inter-node file layout optimization pass (Algorithm 1).

    For every disk-resident array of the program: collect its references,
    weight and group them, run Step I ({!Array_partition}); on success build
    the Step II inter-node layout, otherwise fall back to the canonical
    row-major layout (the array counts as "not optimized" — the paper
    optimized about 72% of arrays across its suite). *)

open Flo_poly

type decision = {
  array_id : int;
  array_name : string;
  layout : File_layout.t;
  partition : Array_partition.result option;  (** [None]: fallback *)
}

type plan = {
  program : Program.t;
  scope : Internode.scope;
  decisions : decision list;  (** one per array, in id order *)
}

val run :
  ?weighted:bool ->
  ?min_coverage:float ->
  ?scope:Internode.scope ->
  ?metrics:Flo_obs.Metrics.t ->
  spec:Internode.spec ->
  Program.t ->
  plan
(** [weighted:false] is ablation A1 (unweighted constraint ordering).
    [min_coverage] (default 0.5) declines to restructure an array unless the
    found transformation satisfies a strict weight-majority of its
    references (restructuring a tie merely swaps which half of the
    references is cache-hostile, at worse seek locality);
    declined arrays — like arrays marked [opaque] (touched through
    subscripts the polyhedral front-end cannot analyze) — keep the
    canonical layout.  [scope] defaults to [Both].  [metrics] records the
    host cost of each phase into the span histograms
    ["span.optimizer.step1_solve"] and ["span.optimizer.step2_layout"]. *)

val layout_of : plan -> int -> File_layout.t
(** @raise Not_found for unknown array ids. *)

val optimized_count : plan -> int
val total_arrays : plan -> int

val mean_coverage : plan -> float
(** Average Step I weight coverage over optimized arrays (1.0 when every
    reference's constraints were satisfied). *)

val pp : Format.formatter -> plan -> unit
