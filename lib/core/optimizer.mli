(** The complete inter-node file layout optimization pass (Algorithm 1),
    with an explicit degradation chain.

    For every disk-resident array of the program: collect its references,
    weight and group them, run Step I ({!Array_partition}); on success build
    the Step II inter-node layout.  When a stage cannot run, the pass
    degrades explicitly rather than failing:

    {ul
    {- [Inter]: the full inter-node layout (Step I + Step II over [scope]).}
    {- [Intra]: Step II restricted to the I/O layer ({!Internode.Io_only})
       — taken when the inter-node pattern does not fit the hierarchy.}
    {- [Canonical]: the row-major fallback — opaque arrays, unsolvable or
       low-coverage Step I, or a Step II that fails at both scopes.}}

    Every decision carries a machine-readable {!reason} for reports and the
    [flopt plan]/[flopt chaos] CLI (the paper optimized about 72% of arrays
    across its suite; the rest land in [Canonical]). *)

open Flo_poly

type stage = Inter | Intra | Canonical

type reason =
  | Optimized  (** full inter-node result *)
  | Opaque  (** subscripts the polyhedral front-end cannot analyze *)
  | Step1_unsolvable  (** no consistent partition exists *)
  | Low_coverage of float
      (** Step I succeeded but satisfies no strict weight-majority of the
          references; restructuring would hurt more than it helps *)
  | Step2_failed of string
      (** layout construction failed; on stage [Intra] the intra-node
          retreat succeeded, on stage [Canonical] both scopes failed *)

type decision = {
  array_id : int;
  array_name : string;
  layout : File_layout.t;
  partition : Array_partition.result option;  (** [None]: Step I never held *)
  stage : stage;
  reason : reason;
}

type plan = {
  program : Program.t;
  scope : Internode.scope;
  decisions : decision list;  (** one per array, in id order *)
}

val stage_to_string : stage -> string

val reason_to_string : reason -> string
(** Machine-readable: ["optimized"], ["opaque"], ["step1-unsolvable"],
    ["low-coverage:<c>"], ["step2-failed:<msg>"]. *)

val run :
  ?weighted:bool ->
  ?min_coverage:float ->
  ?scope:Internode.scope ->
  ?metrics:Flo_obs.Metrics.t ->
  spec:Internode.spec ->
  Program.t ->
  plan
(** [weighted:false] is ablation A1 (unweighted constraint ordering).
    [min_coverage] (default 0.5) declines to restructure an array unless the
    found transformation satisfies a strict weight-majority of its
    references.  [scope] defaults to [Both].  [metrics] records the host
    cost of each phase into the span histograms
    ["span.optimizer.step1_solve"] and ["span.optimizer.step2_layout"].
    Never raises on degradation: Step II failures fall through the chain
    above. *)

val layout_of : plan -> int -> File_layout.t
(** @raise Not_found for unknown array ids. *)

val optimized_count : plan -> int
(** Arrays not at the [Canonical] stage. *)

val total_arrays : plan -> int

val degraded : plan -> decision list
(** Decisions that are not full [Inter]/[Optimized] results — what a
    degradation report lists. *)

val mean_coverage : plan -> float
(** Average Step I weight coverage over non-canonical arrays (1.0 when
    every reference's constraints were satisfied). *)

val pp : Format.formatter -> plan -> unit
