(** File layouts: mappings from array elements to linear file offsets.

    Besides the canonical row/column-major layouts and dimension
    permutations (the search space of the reindexing baseline [27]), this
    provides the paper's {e inter-node} layout: a unimodular data transform
    [D] (Step I) composed with the hierarchy-aware chunk interleaving
    (Step II).

    For a non-permutation [D] the transformed data space is a parallelepiped;
    we linearize over its bounding box with the partition dimension
    outermost, so the file may contain unused holes (never overlaps) — see
    DESIGN.md. *)

open Flo_linalg
open Flo_poly

type internode = {
  space : Data_space.t;  (** original data space *)
  d : Imat.t;  (** unimodular transform; partition dim is row [v] *)
  v : int;
  shift : Ivec.t;  (** [- bbox lower corner] of the transformed space *)
  ext : int array;  (** bbox extents of the transformed space *)
  num_blocks : int;  (** iteration blocks the parallel loop was cut into *)
  slab_height : int;  (** extent along [v] of one data slab *)
  v_base : int;  (** first slab boundary, in [0, slab_height) *)
  anchor : int;  (** slab index of the image origin (iteration block 0) *)
  pattern : Chunk_pattern.t;
  rest : int;  (** product of the non-partition bbox extents (memoized) *)
  slab_elems : int;  (** [slab_height * rest] (memoized) *)
  rest_strides : int array;
      (** row-major strides of the non-partition dimensions, partition
          dimension zeroed: the linearization used inside one slab row *)
}

type t =
  | Row_major of Data_space.t
  | Col_major of Data_space.t
  | Permuted of Data_space.t * int array
      (** dimension order, outermost first; [Permuted (s, [|0;1;...|])] is
          row-major *)
  | Internode of internode

val permuted : Data_space.t -> int array -> t
(** @raise Invalid_argument if the order is not a permutation of the
    dimensions. *)

val internode :
  space:Data_space.t ->
  d:Imat.t ->
  v:int ->
  num_blocks:int ->
  v_origin:int ->
  slab_height:int ->
  pattern:Chunk_pattern.t ->
  t
(** Computes the bounding box of the [D]-transformed space and anchors the
    slab grid at [v_origin] (the image of the first parallel iteration,
    in untransformed-shift coordinates — {!Array_partition.result.origin})
    so that data slab [k] holds iteration block [k]'s elements and slabs
    are assigned to pattern threads round-robin, mirroring the
    iteration-block distribution.
    @raise Invalid_argument if [D] is not unimodular of the array's rank,
    [v] is out of range, [num_blocks < 1] or [slab_height < 1]. *)

val space : t -> Data_space.t

val offset_of : t -> Ivec.t -> int
(** File offset (in elements) of an array element.  Total for distinct
    elements: injective. *)

val size : t -> int
(** File size in elements: one more than the largest offset any element of
    the space can map to (>= cardinal for layouts with holes). *)

val owner_of : t -> Ivec.t -> int option
(** For [Internode]: the thread whose region the element falls in.  [None]
    for canonical layouts. *)

(** {1 Strength-reduction hooks}

    The trace-generation fast path evaluates offsets incrementally over
    consecutive loop iterations instead of through {!offset_of}'s
    per-element transform + division chain.  These expose exactly the
    decomposition it needs; both agree with {!offset_of} by construction
    (shared implementation) and by the golden equality tests. *)

val linear_strides : t -> int array option
(** For the canonical layouts: strides such that
    [offset_of t a = sum_k strides.(k) * a.(k)] for every in-range [a]
    (all three are linear in the element coordinates).  [None] for
    [Internode], which is only piecewise linear. *)

val slab_coords : internode -> vv:int -> lin_rest:int -> int * int
(** [(owner, rank)] of the element whose {e transformed, shifted}
    coordinates have partition component [vv] and non-partition
    linearization [lin_rest] (per [rest_strides]).  Both inputs are affine
    in the original element coordinates, hence in the iteration vector. *)

val offset_of_transformed : internode -> vv:int -> lin_rest:int -> int
(** {!slab_coords} composed with the Step II chunk pattern: the file offset.
    [offset_of (Internode i) a] equals
    [offset_of_transformed i ~vv:a'.(v) ~lin_rest:(strides . a')] for
    [a' = D a + shift]. *)

val slab_height : internode -> int

val describe : t -> string
val pp : Format.formatter -> t -> unit
