open Flo_poly

type stage = Inter | Intra | Canonical

type reason =
  | Optimized
  | Opaque
  | Step1_unsolvable
  | Low_coverage of float
  | Step2_failed of string

type decision = {
  array_id : int;
  array_name : string;
  layout : File_layout.t;
  partition : Array_partition.result option;
  stage : stage;
  reason : reason;
}

type plan = {
  program : Program.t;
  scope : Internode.scope;
  decisions : decision list;
}

let stage_to_string = function
  | Inter -> "inter"
  | Intra -> "intra"
  | Canonical -> "canonical"

let reason_to_string = function
  | Optimized -> "optimized"
  | Opaque -> "opaque"
  | Step1_unsolvable -> "step1-unsolvable"
  | Low_coverage c -> Printf.sprintf "low-coverage:%.3f" c
  | Step2_failed msg -> Printf.sprintf "step2-failed:%s" msg

let run ?(weighted = true) ?(min_coverage = 0.5) ?(scope = Internode.Both) ?metrics ~spec
    program =
  let decide id =
    let decl = Program.array_decl program id in
    let refs = Program.refs_to program id in
    let groups = Weights.group_refs refs in
    let canonical ?partition reason =
      {
        array_id = id;
        array_name = decl.Program.name;
        layout = File_layout.Row_major decl.Program.space;
        partition;
        stage = Canonical;
        reason;
      }
    in
    if decl.Program.opaque then canonical Opaque
    else
      match
        Flo_obs.Span.with_ ?metrics "optimizer.step1_solve" (fun () ->
            Array_partition.solve ~weighted groups)
      with
      | None -> canonical Step1_unsolvable
      | Some partition when partition.Array_partition.coverage <= min_coverage ->
        (* no weighted majority of references is satisfied: restructuring
           would hurt more references than it helps *)
        canonical (Low_coverage partition.Array_partition.coverage)
      | Some partition -> (
        let step2 s =
          Flo_obs.Span.with_ ?metrics "optimizer.step2_layout" (fun () ->
              Internode.layout_for ~space:decl.Program.space ~partition spec s)
        in
        match step2 scope with
        | layout ->
          {
            array_id = id;
            array_name = decl.Program.name;
            layout;
            partition = Some partition;
            stage = Inter;
            reason = Optimized;
          }
        | exception Invalid_argument msg -> (
          (* degraded mode: the inter-node pattern does not fit this
             hierarchy — retreat to an intra-node Step II over the I/O
             layer only, then to the canonical layout *)
          match step2 Internode.Io_only with
          | layout ->
            {
              array_id = id;
              array_name = decl.Program.name;
              layout;
              partition = Some partition;
              stage = Intra;
              reason = Step2_failed msg;
            }
          | exception Invalid_argument msg2 ->
            canonical ~partition
              (Step2_failed (Printf.sprintf "%s; intra: %s" msg msg2))))
  in
  { program; scope; decisions = List.map decide (Program.array_ids program) }

let layout_of plan id =
  let d = List.find (fun d -> d.array_id = id) plan.decisions in
  d.layout

let optimized_count plan =
  List.length (List.filter (fun d -> d.stage <> Canonical) plan.decisions)

let total_arrays plan = List.length plan.decisions

let degraded plan =
  List.filter
    (fun d -> match (d.stage, d.reason) with Inter, Optimized -> false | _ -> true)
    plan.decisions

let mean_coverage plan =
  let covs =
    List.filter_map
      (fun d ->
        if d.stage = Canonical then None
        else Option.map (fun p -> p.Array_partition.coverage) d.partition)
      plan.decisions
  in
  match covs with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. covs /. float_of_int (List.length covs)

let pp ppf plan =
  Format.fprintf ppf "@[<v>plan for %s (scope %s): %d/%d arrays optimized@,%a@]"
    plan.program.Program.name
    (Internode.scope_to_string plan.scope)
    (optimized_count plan) (total_arrays plan)
    (Format.pp_print_list (fun ppf d ->
         Format.fprintf ppf "  %s -> %s%s" d.array_name (File_layout.describe d.layout)
           (match (d.stage, d.reason) with
           | Inter, Optimized ->
             Format.asprintf " (coverage %.0f%%)"
               (100.
               *. (match d.partition with
                  | Some p -> p.Array_partition.coverage
                  | None -> 0.))
           | stage, reason ->
             Printf.sprintf " (%s: %s)" (stage_to_string stage) (reason_to_string reason))))
    plan.decisions
