open Flo_poly

type decision = {
  array_id : int;
  array_name : string;
  layout : File_layout.t;
  partition : Array_partition.result option;
}

type plan = {
  program : Program.t;
  scope : Internode.scope;
  decisions : decision list;
}

let run ?(weighted = true) ?(min_coverage = 0.5) ?(scope = Internode.Both) ?metrics ~spec
    program =
  let decide id =
    let decl = Program.array_decl program id in
    let refs = Program.refs_to program id in
    let groups = Weights.group_refs refs in
    if decl.Program.opaque then
      {
        array_id = id;
        array_name = decl.Program.name;
        layout = File_layout.Row_major decl.Program.space;
        partition = None;
      }
    else
    match
      Flo_obs.Span.with_ ?metrics "optimizer.step1_solve" (fun () ->
          Array_partition.solve ~weighted groups)
    with
    | Some partition when partition.Array_partition.coverage > min_coverage ->
      let layout =
        Flo_obs.Span.with_ ?metrics "optimizer.step2_layout" (fun () ->
            Internode.layout_for ~space:decl.Program.space ~partition spec scope)
      in
      {
        array_id = id;
        array_name = decl.Program.name;
        layout;
        partition = Some partition;
      }
    | Some _ | None ->
      (* unsolvable, or no weighted majority of references is satisfied:
         restructuring would hurt more references than it helps *)
      {
        array_id = id;
        array_name = decl.Program.name;
        layout = File_layout.Row_major decl.Program.space;
        partition = None;
      }
  in
  { program; scope; decisions = List.map decide (Program.array_ids program) }

let layout_of plan id =
  let d = List.find (fun d -> d.array_id = id) plan.decisions in
  d.layout

let optimized_count plan =
  List.length (List.filter (fun d -> d.partition <> None) plan.decisions)

let total_arrays plan = List.length plan.decisions

let mean_coverage plan =
  let covs =
    List.filter_map
      (fun d -> Option.map (fun p -> p.Array_partition.coverage) d.partition)
      plan.decisions
  in
  match covs with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. covs /. float_of_int (List.length covs)

let pp ppf plan =
  Format.fprintf ppf "@[<v>plan for %s (scope %s): %d/%d arrays optimized@,%a@]"
    plan.program.Program.name
    (Internode.scope_to_string plan.scope)
    (optimized_count plan) (total_arrays plan)
    (Format.pp_print_list (fun ppf d ->
         Format.fprintf ppf "  %s -> %s%s" d.array_name (File_layout.describe d.layout)
           (match d.partition with
           | Some p -> Format.asprintf " (coverage %.0f%%)" (100. *. p.Array_partition.coverage)
           | None -> " (not optimizable)")))
    plan.decisions
