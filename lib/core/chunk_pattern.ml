type layer = { capacity : int; fanout : int }

type t = {
  threads : int;
  layers : layer array;
  chunk : int;
  reps : int array;
  bases : int array;
}

let validate layers =
  if Array.length layers = 0 then invalid_arg "Chunk_pattern: no layers";
  Array.iter
    (fun { capacity; fanout } ->
      if capacity < 1 || fanout < 1 then invalid_arg "Chunk_pattern: nonpositive layer")
    layers

let make ~layers =
  validate layers;
  let n = Array.length layers in
  let l = layers.(0).fanout in
  if layers.(0).capacity mod l <> 0 then
    invalid_arg "Chunk_pattern.make: S_1 not a multiple of threads-per-cache";
  let chunk = layers.(0).capacity / l in
  let reps =
    Array.init (n - 1) (fun i ->
        let want = layers.(i + 1).fanout * layers.(i).capacity in
        if layers.(i + 1).capacity mod want <> 0 then
          invalid_arg "Chunk_pattern.make: t_i not integral";
        layers.(i + 1).capacity / want)
  in
  Array.iter (fun t -> if t < 1 then invalid_arg "Chunk_pattern.make: t_i < 1") reps;
  let threads = Array.fold_left (fun acc ly -> acc * ly.fanout) 1 layers in
  (* a thread's base address never changes once the layers are fixed, and
     [offset] reads it on every element of every stream: table it here *)
  let base_of thread =
    let acc = ref (thread mod l * chunk) in
    let div = ref l in
    for li = 1 to n - 1 do
      let { capacity; fanout } = layers.(li) in
      acc := !acc + (thread / !div mod fanout * (capacity / fanout));
      div := !div * fanout
    done;
    !acc
  in
  { threads; layers = Array.copy layers; chunk; reps; bases = Array.init threads base_of }

let fit ?(align = 1) ~layers () =
  validate layers;
  if align < 1 then invalid_arg "Chunk_pattern.fit: align < 1";
  let n = Array.length layers in
  let l = layers.(0).fanout in
  let chunk = max align (layers.(0).capacity / l / align * align) in
  let fitted = Array.make n { capacity = chunk * l; fanout = l } in
  for i = 1 to n - 1 do
    let unit = layers.(i).fanout * fitted.(i - 1).capacity in
    let t = max 1 (layers.(i).capacity / unit) in
    fitted.(i) <- { capacity = t * unit; fanout = layers.(i).fanout }
  done;
  make ~layers:fitted

let threads t = t.threads
let chunk_elems t = t.chunk

let period t = t.layers.(Array.length t.layers - 1).capacity

let thread_base t = period t / t.threads

let base t ~thread =
  if thread < 0 || thread >= t.threads then invalid_arg "Chunk_pattern.base: bad thread";
  t.bases.(thread)

let offset t ~thread ~rank =
  if rank < 0 then invalid_arg "Chunk_pattern.offset: negative rank";
  let b0 = base t ~thread in
  let x = rank / t.chunk in
  let within = rank mod t.chunk in
  let n = Array.length t.layers in
  let b = ref 0 in
  let div = ref 1 in
  for i = 0 to n - 2 do
    b := !b + (x / !div mod t.reps.(i) * t.layers.(i).capacity);
    div := !div * t.reps.(i)
  done;
  b := !b + (x / !div * t.layers.(n - 1).capacity);
  b0 + !b + within

let locate t off =
  if off < 0 then invalid_arg "Chunk_pattern.locate: negative offset";
  let n = Array.length t.layers in
  let p = period t in
  let r = off / p in
  let o = ref (off mod p) in
  let child = Array.make n 0 in
  let rho = Array.make (max 0 (n - 1)) 0 in
  for li = n - 1 downto 1 do
    let { capacity; fanout } = t.layers.(li) in
    let child_size = capacity / fanout in
    child.(li) <- !o / child_size;
    o := !o mod child_size;
    rho.(li - 1) <- !o / t.layers.(li - 1).capacity;
    o := !o mod t.layers.(li - 1).capacity
  done;
  let slot = !o / t.chunk in
  let within = !o mod t.chunk in
  let thread = ref 0 in
  for li = n - 1 downto 1 do
    thread := (!thread * t.layers.(li).fanout) + child.(li)
  done;
  thread := (!thread * t.layers.(0).fanout) + slot;
  let x = ref r in
  for li = n - 1 downto 1 do
    x := (!x * t.reps.(li - 1)) + rho.(li - 1)
  done;
  (!thread, (!x * t.chunk) + within)

let pp ppf t =
  Format.fprintf ppf "@[pattern: %d threads, chunk %d, layers [%a], reps [%a]@]" t.threads
    t.chunk
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf ly -> Format.fprintf ppf "S=%d N=%d" ly.capacity ly.fanout))
    (Array.to_list t.layers)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Format.pp_print_int)
    (Array.to_list t.reps)
