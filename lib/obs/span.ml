type t = {
  name : string;
  metrics : Metrics.t option;
  clock : unit -> float;
  started_us : float;
}

let default_clock () = Sys.time () *. 1e6

(* spans range from sub-microsecond solver calls to second-scale suite
   sweeps: power-of-two buckets over ~40 decades of doubling *)
let span_histogram m name =
  Metrics.histogram m ~lo:1.0 ~gamma:2.0 ~buckets:40 ("span." ^ name)

let start ?metrics ?(clock = default_clock) name =
  { name; metrics; clock; started_us = clock () }

let stop t =
  let elapsed = Float.max 0. (t.clock () -. t.started_us) in
  Option.iter (fun m -> Histogram.add (span_histogram m t.name) elapsed) t.metrics;
  elapsed

let with_ ?metrics ?clock name f =
  let span = start ?metrics ?clock name in
  Fun.protect ~finally:(fun () -> ignore (stop span)) f
