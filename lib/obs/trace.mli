(** Sampled request traces: span trees on the {e modeled} clock.

    The traffic engine distills millions of modeled requests into
    per-(app, layout) latency classes — no per-request signal survives.  A
    trace is the escape hatch: for a deterministically {e sampled} request,
    the replay materializes the full causal tree (arrival → shard queue →
    per-layer cache verdicts → disk service → retries), every span charged
    to simulated microseconds.  Unsampled requests never touch this module.

    Determinism: ids are minted from the same splitmix64 counter sequences
    the fault subsystem uses ({!mint_id} is definitionally equal to
    [Flo_faults.Prng.at] — duplicated here because [flo_obs] sits {e below}
    [flo_faults] in the library DAG), never from wall clocks, so a (seed,
    params) pair yields byte-identical trace files on every run at every
    [--jobs] setting. *)

type span = {
  name : string;  (** e.g. ["request"], ["queue.congestion"], ["disk.retry"] *)
  start_us : float;  (** simulated start, absolute within the run *)
  dur_us : float;
  children : span list;  (** in causal order; charged within the parent *)
}

(** Why the sampler kept this request. *)
type reason =
  | Head  (** 1-in-N per-tenant head sampling *)
  | Breach  (** modeled latency crossed the SLO breach threshold *)
  | Fault_path  (** the request saw a fault, retry, timeout or failover *)
  | Window_max  (** the max-latency request of its (tenant, window) *)
  | Shed  (** rejected by the overload admission controller, never served *)

type t = {
  trace_id : int64;
  tenant : int;
  app : string;
  window : int;
  shard : int;
  outcome : string;  (** ["ok"], ["fault"], ["timeout"] — free-form *)
  latency_us : float;  (** the root span's modeled latency *)
  count : int;
      (** modeled requests this sampled trace stands for (tail samples
          represent their whole latency-class group; head samples are 1) *)
  reasons : reason list;  (** sorted, deduplicated; never empty *)
  root : span;
}

val span :
  ?children:span list -> name:string -> start_us:float -> dur_us:float -> unit -> span

val make :
  trace_id:int64 ->
  tenant:int ->
  app:string ->
  window:int ->
  shard:int ->
  outcome:string ->
  latency_us:float ->
  count:int ->
  reasons:reason list ->
  root:span ->
  t
(** Normalizes [reasons] (sort + dedup).  @raise Invalid_argument on an
    empty reason list or [count < 1]. *)

val span_count : t -> int
(** Spans in the tree, root included. *)

(** {1 Deterministic ids} *)

val mint_id : seed:int -> stream:int -> int -> int64
(** [mint_id ~seed ~stream k]: the [k]-th splitmix64 output of the
    decorrelated substream — a pure function of its arguments, equal to
    [Flo_faults.Prng.at ~seed ~stream k] by construction (a test pins the
    equality).  @raise Invalid_argument if [k < 0]. *)

val span_id : trace_id:int64 -> int -> int64
(** Stable id of the [k]-th span (preorder) of a trace — a pure function of
    [(trace_id, k)], so renderers and the Perfetto exporter agree without
    coordination.  @raise Invalid_argument if [k < 0]. *)

val id_to_string : int64 -> string
(** 16 lowercase hex digits, zero-padded — the wire and CLI form. *)

val id_of_string : string -> int64 option
(** Inverse of {!id_to_string}; also accepts uppercase hex. *)

(** {1 Wire format} *)

val reason_to_string : reason -> string
val reason_of_string : string -> reason option

val to_json : t -> string
(** One-line JSON object (no trailing newline); spans nest as [children]
    arrays.  Line order in a trace file is the engine's merge order (shard
    order), which is what makes files byte-comparable across [--jobs]. *)

val of_json : string -> (t, string) result
(** Inverse of {!to_json}.  Tolerates any field order; unknown reason names
    are dropped (forward-compat) unless that leaves the list empty.  Nesting
    beyond depth 64 is rejected rather than risking stack overflow on
    hostile input. *)

val pp : Format.formatter -> t -> unit
(** One-line summary (no tree). *)

val pp_tree : Format.formatter -> t -> unit
(** The summary line plus an ASCII span tree with per-span simulated start
    offsets and durations — what [flopt trace] renders. *)
