(** Log-bucketed latency/value histogram.

    Buckets grow geometrically: bucket [0] covers [(-inf, lo]], bucket [i]
    ([1 <= i < buckets-1]) covers [(lo * gamma^(i-1), lo * gamma^i]], and the
    last bucket absorbs everything above.  Geometric buckets give a bounded
    relative error on percentile estimates over many decades of latency
    (microsecond cache hits to second-scale disk storms) with a few dozen
    counters, and two histograms of the same shape merge by adding buckets. *)

type t

val create : ?lo:float -> ?gamma:float -> ?buckets:int -> unit -> t
(** Defaults: [lo = 1.0], [gamma = 1.6], [buckets = 48] — covers roughly
    [1 us, 3e9 us] before the overflow bucket.  A degenerate single-bucket
    histogram is allowed: everything lands in the overflow bucket and
    {!percentile} degrades to the observed extremes.
    @raise Invalid_argument if [lo <= 0], [gamma <= 1] or [buckets < 1]. *)

val add : t -> float -> unit
(** Record one observation.  @raise Invalid_argument on NaN. *)

val add_many : t -> float -> int -> unit
(** [add_many t v n] records [n] observations of value [v] in O(1) —
    equivalent to calling [add t v] [n] times.  Lets batched simulators
    replay millions of identical modeled requests per latency class
    without a per-request loop.  A count of 0 is a no-op.
    @raise Invalid_argument on NaN or a negative count. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float
(** Smallest recorded observation; 0 when empty. *)

val max_value : t -> float
(** Largest recorded observation; 0 when empty. *)

val is_empty : t -> bool

val bucket_count : t -> int
val bounds : t -> float array
(** Upper bound of each bucket; the last is [infinity]. Strictly increasing. *)

val counts : t -> int array
(** Per-bucket observation counts (a copy). *)

val value_index : t -> float -> int
(** Bucket a value would land in — the same monotone index {!add} uses, so
    callers can key per-bucket side tables (latency classes, exemplars)
    consistently with the counts. *)

type exemplar = { value : float; trace_id : int64 }
(** A concrete sampled observation linked to a request trace: the bridge
    from an aggregate percentile back to one request's span tree. *)

val add_exemplar : ?cap:int -> t -> value:float -> trace_id:int64 -> unit
(** Attach an exemplar to the bucket [value] falls in, without touching the
    counts.  Each bucket keeps at most [cap] exemplars (default 2) under a
    deterministic keep-max rule: largest values first, ties broken towards
    the smaller trace id — so the head of a bucket's list is always the
    bucket's maximum attached value.  The per-bucket store is allocated on
    first use; histograms that never trace carry no exemplar state at all.
    @raise Invalid_argument on NaN or [cap < 1]. *)

val exemplars_of_bucket : t -> int -> exemplar list
(** The bucket's exemplars, keep-max order.  [[]] when none were attached.
    @raise Invalid_argument when the bucket index is out of range. *)

val exemplars_at : t -> p:float -> exemplar list
(** Exemplars for the bucket holding the [p]-quantile (the bucket
    {!percentile} reads).  When that bucket carries none, falls back to the
    nearest populated bucket above it, then below — deterministic, and
    non-empty whenever the histogram holds any exemplar at all.  [[]] on an
    empty histogram.  @raise Invalid_argument if [p] is outside [0, 1]. *)

val has_exemplars : t -> bool

val percentile_bucket : t -> float -> int
(** Index of the bucket {!percentile} answers from; [0] when empty.
    @raise Invalid_argument if [p] is outside [0, 1]. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0, 1]: an upper-bound estimate of the
    p-quantile — the upper edge of the bucket holding the rank-[ceil(p*n)]
    observation, clamped to the observed min/max.  Never raises on shape
    degeneracies: an {e empty} histogram answers [0.] for every [p], and a
    {e single-bucket} histogram answers the observed maximum (its only
    bucket's edge is [+inf], so the min/max clamp is all the information
    left).  @raise Invalid_argument only if [p] is outside [0, 1]. *)

val merge : t -> t -> t
(** Fresh histogram with summed buckets.
    @raise Invalid_argument if the two shapes (lo, gamma, buckets) differ. *)

val merge_list : t list -> t
(** Fold of {!merge}; an empty default-shaped histogram for [[]]. *)

val copy : t -> t

val same_shape : t -> t -> bool
val reset : t -> unit
val pp : Format.formatter -> t -> unit
