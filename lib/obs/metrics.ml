type counter = { mutable c : int }
type gauge = { mutable g : float }

type cell = C of counter | G of gauge | H of Histogram.t

type key = string * (string * string) list

type t = { tbl : (key, cell) Hashtbl.t }

type value = Counter of int | Gauge of float | Histogram of Histogram.t

let create () = { tbl = Hashtbl.create 32 }

let normalize labels = List.sort compare labels

let register t ~name ~labels ~(fresh : unit -> cell) ~(cast : cell -> 'a option) : 'a =
  let key = (name, normalize labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some cell -> (
    match cast cell with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Metrics: %S registered as another kind" name))
  | None -> (
    let cell = fresh () in
    Hashtbl.replace t.tbl key cell;
    match cast cell with
    | Some v -> v
    | None -> assert false)

let counter t ?(labels = []) name =
  register t ~name ~labels
    ~fresh:(fun () -> C { c = 0 })
    ~cast:(function C c -> Some c | _ -> None)

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let gauge t ?(labels = []) name =
  register t ~name ~labels
    ~fresh:(fun () -> G { g = 0. })
    ~cast:(function G g -> Some g | _ -> None)

let set_gauge g v = g.g <- v
let gauge_value g = g.g

let histogram t ?(labels = []) ?lo ?gamma ?buckets name =
  register t ~name ~labels
    ~fresh:(fun () -> H (Histogram.create ?lo ?gamma ?buckets ()))
    ~cast:(function H h -> Some h | _ -> None)

let value_of = function
  | C c -> Counter c.c
  | G g -> Gauge g.g
  | H h -> Histogram h

let find t ?(labels = []) name =
  Option.map value_of (Hashtbl.find_opt t.tbl (name, normalize labels))

let find_histogram t ?labels name =
  match find t ?labels name with Some (Histogram h) -> Some h | _ -> None

let to_list t =
  Hashtbl.fold (fun (name, labels) cell acc -> (name, labels, value_of cell) :: acc) t.tbl []
  |> List.sort (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2))

let cardinal t = Hashtbl.length t.tbl

let combine name a b =
  match (a, b) with
  | C x, C y -> C { c = x.c + y.c }
  | G x, G y -> G { g = Float.max x.g y.g }
  | H x, H y -> H (Histogram.merge x y)
  | _ -> invalid_arg (Printf.sprintf "Metrics.merge: %S registered as different kinds" name)

let copy_cell = function
  | C x -> C { c = x.c }
  | G x -> G { g = x.g }
  | H h -> H (Histogram.copy h)

let merge a b =
  let m = create () in
  Hashtbl.iter (fun key cell -> Hashtbl.replace m.tbl key (copy_cell cell)) a.tbl;
  Hashtbl.iter
    (fun ((name, _) as key) cell ->
      match Hashtbl.find_opt m.tbl key with
      | None -> Hashtbl.replace m.tbl key (copy_cell cell)
      | Some prev -> Hashtbl.replace m.tbl key (combine name prev cell))
    b.tbl;
  m

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, labels, v) ->
      let labels_str =
        match labels with
        | [] -> ""
        | l ->
          "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l) ^ "}"
      in
      match v with
      | Counter c -> Format.fprintf ppf "%s%s = %d@," name labels_str c
      | Gauge g -> Format.fprintf ppf "%s%s = %g@," name labels_str g
      | Histogram h -> Format.fprintf ppf "%s%s = %a@," name labels_str Histogram.pp h)
    (to_list t);
  Format.fprintf ppf "@]"
