(** Structured trace events emitted by the storage simulator.

    One event per observable cache/disk action, timestamped with the
    {e simulated} clock of the requesting thread (microseconds), so a trace
    replays the modeled timeline, not wall time.  Events carry plain block
    coordinates ([file], [block]) rather than a [Block.t] to keep this
    library free of storage-layer dependencies. *)

type kind =
  | Access  (** a block request arriving at the hierarchy *)
  | Hit  (** served by the cache of [layer]/[node] *)
  | Miss  (** not resident at [layer]/[node] *)
  | Evict  (** a victim left the cache of [layer]/[node] *)
  | Demote  (** DEMOTE transfer of an L1 victim into a storage cache *)
  | Prefetch  (** sequential readahead pulled [block] into a storage cache *)
  | Disk_read  (** disk service; [latency_us] is the modeled service time *)
  | Fault
      (** an injected transient read failure; [latency_us] is the wasted
          service time of the failed attempt *)
  | Retry  (** a backoff wait before re-reading; [latency_us] is the wait *)
  | Timeout  (** the request's retry budget ran out *)
  | Failover
      (** read served by the failover replica node; [latency_us] is that
          read's service time ([node] is the replica) *)
  | Other of string
      (** an event kind this build does not know — round-tripped opaquely so
          traces written by newer emitters still load ({!of_json} never
          rejects a record for its kind alone).  The payload is the wire
          name; {!kind_to_string} echoes it back verbatim. *)

type layer = L1 | L2 | Disk

type t = {
  time_us : float;  (** requesting thread's simulated clock at emission *)
  kind : kind;
  layer : layer;
  node : int;  (** I/O-node id for [L1], storage-node id for [L2]/[Disk] *)
  thread : int;
  file : int;
  block : int;
  latency_us : float;  (** 0 unless meaningful for [kind] *)
}

val make :
  time_us:float ->
  kind:kind ->
  layer:layer ->
  node:int ->
  thread:int ->
  file:int ->
  block:int ->
  ?latency_us:float ->
  unit ->
  t

val kind_to_string : kind -> string
val layer_to_string : layer -> string
val kind_of_string : string -> kind option
(** The known kinds only — [None] for a name this build does not recognize;
    {!of_json} wraps such misses in {!Other} instead of failing. *)

val layer_of_string : string -> layer option

val to_json : t -> string
(** One-line JSON object (no trailing newline) — the JSONL record format
    documented in [docs/OBSERVABILITY.md]. *)

val of_json : string -> (t, string) result
(** Inverse of {!to_json}: parse one JSONL trace line.  Tolerates any field
    order and surrounding whitespace; [lat_us] defaults to [0.] when absent;
    an unrecognized kind name becomes {!Other} rather than an error.
    Timestamps round-trip at the serializer's millisecond-of-a-microsecond
    precision ([%.3f]).  Returns [Error msg] on malformed input — offline
    trace analysis ({!Flo_analysis.Analyzer.load_file}) surfaces these with
    line numbers. *)

val pp : Format.formatter -> t -> unit
