type exemplar = { value : float; trace_id : int64 }

type t = {
  lo : float;
  gamma : float;
  log_gamma : float;
  buckets : int array;
  mutable total : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  (* per-bucket trace exemplars, allocated only by the first add_exemplar so
     histograms that never trace pay nothing; each bucket's list is sorted
     by the keep-max rule: value descending, trace id ascending on ties *)
  mutable exemplars : exemplar list array option;
  mutable exemplar_cap : int;
}

let create ?(lo = 1.0) ?(gamma = 1.6) ?(buckets = 48) () =
  if lo <= 0. then invalid_arg "Histogram.create: lo must be positive";
  if gamma <= 1. then invalid_arg "Histogram.create: gamma must exceed 1";
  if buckets < 1 then invalid_arg "Histogram.create: need at least 1 bucket";
  {
    lo;
    gamma;
    log_gamma = log gamma;
    buckets = Array.make buckets 0;
    total = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity;
    exemplars = None;
    exemplar_cap = 0;
  }

let bucket_count t = Array.length t.buckets

(* ceil of log_gamma (v / lo); monotone in v, so cumulative counts stay
   consistent even when the float log is off by an ulp at a boundary *)
let index_of t v =
  if v <= t.lo then 0
  else
    let i = int_of_float (ceil (log (v /. t.lo) /. t.log_gamma)) in
    min (max 1 i) (bucket_count t - 1)

let add t v =
  if Float.is_nan v then invalid_arg "Histogram.add: NaN";
  let i = index_of t v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let add_many t v n =
  if Float.is_nan v then invalid_arg "Histogram.add_many: NaN";
  if n < 0 then invalid_arg "Histogram.add_many: negative count";
  if n > 0 then begin
    let i = index_of t v in
    t.buckets.(i) <- t.buckets.(i) + n;
    t.total <- t.total + n;
    t.sum <- t.sum +. (v *. float_of_int n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let count t = t.total
let sum t = t.sum
let is_empty t = t.total = 0
let mean t = if t.total = 0 then 0. else t.sum /. float_of_int t.total
let min_value t = if t.total = 0 then 0. else t.min_v
let max_value t = if t.total = 0 then 0. else t.max_v

let value_index = index_of

(* keep-max merge of two sorted exemplar lists: the [cap] largest values
   survive, ties broken towards the smaller trace id, duplicates (same value
   and id) collapsed — so merging is associative, commutative and idempotent
   and shard-order merges reproduce the jobs=1 list exactly *)
let exemplar_order a b =
  match compare b.value a.value with 0 -> compare a.trace_id b.trace_id | c -> c

let merge_exemplars ~cap a b =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let rec go a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: xs, y :: ys -> (
      match exemplar_order x y with
      | 0 -> x :: go xs ys
      | c when c < 0 -> x :: go xs b
      | _ -> y :: go a ys)
  in
  take cap (go a b)

let add_exemplar ?(cap = 2) t ~value ~trace_id =
  if Float.is_nan value then invalid_arg "Histogram.add_exemplar: NaN";
  if cap < 1 then invalid_arg "Histogram.add_exemplar: cap must be positive";
  let slots =
    match t.exemplars with
    | Some slots -> slots
    | None ->
      let slots = Array.make (bucket_count t) [] in
      t.exemplars <- Some slots;
      slots
  in
  if cap > t.exemplar_cap then t.exemplar_cap <- cap;
  let i = index_of t value in
  slots.(i) <- merge_exemplars ~cap:t.exemplar_cap [ { value; trace_id } ] slots.(i)

let exemplars_of_bucket t i =
  match t.exemplars with
  | None -> []
  | Some slots ->
    if i < 0 || i >= bucket_count t then
      invalid_arg "Histogram.exemplars_of_bucket: bucket out of range";
    slots.(i)

let has_exemplars t =
  match t.exemplars with
  | None -> false
  | Some slots -> Array.exists (fun l -> l <> []) slots

let bound t i =
  if i = bucket_count t - 1 then infinity else t.lo *. (t.gamma ** float_of_int i)

let bounds t = Array.init (bucket_count t) (bound t)
let counts t = Array.copy t.buckets

let percentile_bucket t p =
  if p < 0. || p > 1. then invalid_arg "Histogram.percentile_bucket: p outside [0, 1]";
  if t.total = 0 then 0
  else begin
    let rank = max 1 (min t.total (int_of_float (ceil (p *. float_of_int t.total)))) in
    let idx = ref (bucket_count t - 1) in
    let cum = ref 0 in
    (try
       for i = 0 to bucket_count t - 1 do
         cum := !cum + t.buckets.(i);
         if !cum >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    !idx
  end

let percentile t p =
  if p < 0. || p > 1. then invalid_arg "Histogram.percentile: p outside [0, 1]";
  if t.total = 0 then 0.
  else Float.max t.min_v (Float.min (bound t (percentile_bucket t p)) t.max_v)

(* exemplars for the bucket holding the p-quantile; when that bucket carries
   none (sampling is sparse), fall back to the nearest populated bucket above
   it, then below — deterministic, and non-empty whenever any bucket has one *)
let exemplars_at t ~p =
  match t.exemplars with
  | None -> []
  | Some slots ->
    if t.total = 0 then []
    else begin
      let b = percentile_bucket t p in
      if slots.(b) <> [] then slots.(b)
      else begin
        let n = bucket_count t in
        let found = ref [] in
        (try
           for i = b + 1 to n - 1 do
             if slots.(i) <> [] then begin
               found := slots.(i);
               raise Exit
             end
           done;
           for i = b - 1 downto 0 do
             if slots.(i) <> [] then begin
               found := slots.(i);
               raise Exit
             end
           done
         with Exit -> ());
        !found
      end
    end

let same_shape a b =
  a.lo = b.lo && a.gamma = b.gamma && bucket_count a = bucket_count b

let merge a b =
  if not (same_shape a b) then invalid_arg "Histogram.merge: shape mismatch";
  let cap = max a.exemplar_cap b.exemplar_cap in
  let exemplars =
    match (a.exemplars, b.exemplars) with
    | None, None -> None
    | Some sa, None -> Some (Array.copy sa)
    | None, Some sb -> Some (Array.copy sb)
    | Some sa, Some sb ->
      Some (Array.init (bucket_count a) (fun i -> merge_exemplars ~cap sa.(i) sb.(i)))
  in
  {
    lo = a.lo;
    gamma = a.gamma;
    log_gamma = a.log_gamma;
    buckets = Array.init (bucket_count a) (fun i -> a.buckets.(i) + b.buckets.(i));
    total = a.total + b.total;
    sum = a.sum +. b.sum;
    min_v = Float.min a.min_v b.min_v;
    max_v = Float.max a.max_v b.max_v;
    exemplars;
    exemplar_cap = cap;
  }

let copy t =
  {
    t with
    buckets = Array.copy t.buckets;
    exemplars = Option.map Array.copy t.exemplars;
  }

let merge_list = function
  | [] -> create ()
  | h :: rest -> List.fold_left merge h rest

let reset t =
  Array.fill t.buckets 0 (bucket_count t) 0;
  t.total <- 0;
  t.sum <- 0.;
  t.min_v <- infinity;
  t.max_v <- neg_infinity;
  (match t.exemplars with
  | None -> ()
  | Some slots -> Array.fill slots 0 (Array.length slots) []);
  ()

let pp ppf t =
  if t.total = 0 then Format.fprintf ppf "empty"
  else
    Format.fprintf ppf "n=%d mean=%.1f min=%.1f p50=%.1f p99=%.1f max=%.1f" t.total
      (mean t) (min_value t) (percentile t 0.5) (percentile t 0.99) (max_value t)
