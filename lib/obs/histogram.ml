type t = {
  lo : float;
  gamma : float;
  log_gamma : float;
  buckets : int array;
  mutable total : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create ?(lo = 1.0) ?(gamma = 1.6) ?(buckets = 48) () =
  if lo <= 0. then invalid_arg "Histogram.create: lo must be positive";
  if gamma <= 1. then invalid_arg "Histogram.create: gamma must exceed 1";
  if buckets < 1 then invalid_arg "Histogram.create: need at least 1 bucket";
  {
    lo;
    gamma;
    log_gamma = log gamma;
    buckets = Array.make buckets 0;
    total = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity;
  }

let bucket_count t = Array.length t.buckets

(* ceil of log_gamma (v / lo); monotone in v, so cumulative counts stay
   consistent even when the float log is off by an ulp at a boundary *)
let index_of t v =
  if v <= t.lo then 0
  else
    let i = int_of_float (ceil (log (v /. t.lo) /. t.log_gamma)) in
    min (max 1 i) (bucket_count t - 1)

let add t v =
  if Float.is_nan v then invalid_arg "Histogram.add: NaN";
  let i = index_of t v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let add_many t v n =
  if Float.is_nan v then invalid_arg "Histogram.add_many: NaN";
  if n < 0 then invalid_arg "Histogram.add_many: negative count";
  if n > 0 then begin
    let i = index_of t v in
    t.buckets.(i) <- t.buckets.(i) + n;
    t.total <- t.total + n;
    t.sum <- t.sum +. (v *. float_of_int n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let count t = t.total
let sum t = t.sum
let is_empty t = t.total = 0
let mean t = if t.total = 0 then 0. else t.sum /. float_of_int t.total
let min_value t = if t.total = 0 then 0. else t.min_v
let max_value t = if t.total = 0 then 0. else t.max_v

let bound t i =
  if i = bucket_count t - 1 then infinity else t.lo *. (t.gamma ** float_of_int i)

let bounds t = Array.init (bucket_count t) (bound t)
let counts t = Array.copy t.buckets

let percentile t p =
  if p < 0. || p > 1. then invalid_arg "Histogram.percentile: p outside [0, 1]";
  if t.total = 0 then 0.
  else begin
    let rank = max 1 (min t.total (int_of_float (ceil (p *. float_of_int t.total)))) in
    let idx = ref (bucket_count t - 1) in
    let cum = ref 0 in
    (try
       for i = 0 to bucket_count t - 1 do
         cum := !cum + t.buckets.(i);
         if !cum >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    Float.max t.min_v (Float.min (bound t !idx) t.max_v)
  end

let same_shape a b =
  a.lo = b.lo && a.gamma = b.gamma && bucket_count a = bucket_count b

let merge a b =
  if not (same_shape a b) then invalid_arg "Histogram.merge: shape mismatch";
  {
    lo = a.lo;
    gamma = a.gamma;
    log_gamma = a.log_gamma;
    buckets = Array.init (bucket_count a) (fun i -> a.buckets.(i) + b.buckets.(i));
    total = a.total + b.total;
    sum = a.sum +. b.sum;
    min_v = Float.min a.min_v b.min_v;
    max_v = Float.max a.max_v b.max_v;
  }

let copy t =
  {
    t with
    buckets = Array.copy t.buckets;
  }

let merge_list = function
  | [] -> create ()
  | h :: rest -> List.fold_left merge h rest

let reset t =
  Array.fill t.buckets 0 (bucket_count t) 0;
  t.total <- 0;
  t.sum <- 0.;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

let pp ppf t =
  if t.total = 0 then Format.fprintf ppf "empty"
  else
    Format.fprintf ppf "n=%d mean=%.1f min=%.1f p50=%.1f p99=%.1f max=%.1f" t.total
      (mean t) (min_value t) (percentile t 0.5) (percentile t 0.99) (max_value t)
