(** Wall-clock phase profiling for the optimizer and trace generation.

    A span measures a named phase and records its duration (microseconds)
    into the registry histogram ["span.<name>"], so repeated phases build a
    latency distribution.  With no registry the span is free apart from two
    clock reads.  The clock is injectable for tests (and because the
    simulator's own time is simulated — spans measure the {e host} cost of
    compiler phases, not modeled I/O time). *)

type t

val default_clock : unit -> float
(** Processor time via [Sys.time], scaled to microseconds. *)

val start : ?metrics:Metrics.t -> ?clock:(unit -> float) -> string -> t

val stop : t -> float
(** Elapsed microseconds (clamped at 0); records into the registry if one
    was given.  Calling [stop] twice records twice. *)

val with_ : ?metrics:Metrics.t -> ?clock:(unit -> float) -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; the duration is recorded even if the thunk
    raises. *)
