type span = {
  name : string;
  start_us : float;
  dur_us : float;
  children : span list;
}

(* Shed sorts last so adding it never reorders pre-overload reason lists *)
type reason = Head | Breach | Fault_path | Window_max | Shed

type t = {
  trace_id : int64;
  tenant : int;
  app : string;
  window : int;
  shard : int;
  outcome : string;
  latency_us : float;
  count : int;
  reasons : reason list;
  root : span;
}

let span ?(children = []) ~name ~start_us ~dur_us () =
  { name; start_us; dur_us; children }

let make ~trace_id ~tenant ~app ~window ~shard ~outcome ~latency_us ~count ~reasons
    ~root =
  if reasons = [] then invalid_arg "Trace.make: empty reason list";
  if count < 1 then invalid_arg "Trace.make: count must be positive";
  let reasons = List.sort_uniq compare reasons in
  { trace_id; tenant; app; window; shard; outcome; latency_us; count; reasons; root }

let span_count t =
  let rec go s = List.fold_left (fun acc c -> acc + go c) 1 s.children in
  go t.root

(* Deterministic ids.
   This is splitmix64 again — the same mix finalizer, golden-ratio counter
   step and substream offset as Flo_faults.Prng — duplicated because flo_obs
   sits below flo_faults in the library DAG and must not depend upward.  A
   test pins [mint_id ~seed ~stream k = Prng.at ~seed ~stream k] so the two
   copies cannot drift silently. *)

let golden = 0x9E3779B97F4A7C15L
let stream_step = 0xD1342543DE82EF95L

let mix z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mint_id ~seed ~stream k =
  if k < 0 then invalid_arg "Trace.mint_id: negative index";
  let s0 =
    Int64.add (mix (Int64.of_int seed)) (Int64.mul (Int64.of_int (stream + 1)) stream_step)
  in
  mix (Int64.add s0 (Int64.mul (Int64.of_int (k + 1)) golden))

let span_id ~trace_id k =
  if k < 0 then invalid_arg "Trace.span_id: negative index";
  mix (Int64.add trace_id (Int64.mul (Int64.of_int (k + 1)) golden))

let id_to_string id = Printf.sprintf "%016Lx" id

let id_of_string s =
  let hex = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false in
  if String.length s = 16 && String.for_all hex s then
    (* hex int64 literals parse modulo 2^64, which is exactly the unsigned
       round-trip of the %016Lx form *)
    Int64.of_string_opt ("0x" ^ s)
  else None

let reason_to_string = function
  | Head -> "head"
  | Breach -> "breach"
  | Fault_path -> "fault"
  | Window_max -> "window_max"
  | Shed -> "shed"

let reason_of_string = function
  | "head" -> Some Head
  | "breach" -> Some Breach
  | "fault" -> Some Fault_path
  | "window_max" -> Some Window_max
  | "shed" -> Some Shed
  | _ -> None

(* wire format *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
        Buffer.add_char b '\\';
        Buffer.add_char b c
      | '\x00' .. '\x1f' -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec span_to_buf buf s =
  Printf.ksprintf (Buffer.add_string buf) {|{"name":"%s","t_us":%.3f,"dur_us":%.3f|}
    (escape s.name) s.start_us s.dur_us;
  (match s.children with
  | [] -> ()
  | children ->
    Buffer.add_string buf {|,"children":[|};
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char buf ',';
        span_to_buf buf c)
      children;
    Buffer.add_char buf ']');
  Buffer.add_char buf '}'

let to_json t =
  let buf = Buffer.create 256 in
  Printf.ksprintf (Buffer.add_string buf)
    {|{"trace_id":"%s","tenant":%d,"app":"%s","window":%d,"shard":%d,"outcome":"%s","lat_us":%.3f,"count":%d,"reasons":[|}
    (id_to_string t.trace_id) t.tenant (escape t.app) t.window t.shard
    (escape t.outcome) t.latency_us t.count;
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (reason_to_string r);
      Buffer.add_char buf '"')
    t.reasons;
  Buffer.add_string buf {|],"root":|};
  span_to_buf buf t.root;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Minimal recursive JSON reader for the nested shape {!to_json} emits:
   objects, arrays, strings, numbers.  Depth-capped so a hostile line cannot
   blow the stack (same defensive posture as Bench_schema's reader). *)

exception Parse of string

type jv = S of string | N of float | O of (string * jv) list | A of jv list

let max_depth = 64

let parse_value line =
  let n = String.length line in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt in
  let skip_ws () =
    while
      !pos < n && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
    do
      incr pos
    done
  in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos else fail "expected '%c' at offset %d" c !pos
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          if !pos + 1 >= n then fail "dangling escape";
          (match line.[!pos + 1] with
          | 'u' ->
            if !pos + 5 >= n then fail "truncated \\u escape";
            let code =
              match int_of_string_opt ("0x" ^ String.sub line (!pos + 2) 4) with
              | Some c -> c
              | None -> fail "malformed \\u escape at offset %d" !pos
            in
            (* we only ever emit control characters this way *)
            Buffer.add_char b (Char.chr (code land 0xff));
            pos := !pos + 6
          | 'n' ->
            Buffer.add_char b '\n';
            pos := !pos + 2
          | 't' ->
            Buffer.add_char b '\t';
            pos := !pos + 2
          | c ->
            Buffer.add_char b c;
            pos := !pos + 2);
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number_lit () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail "expected a value at offset %d" start;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number at offset %d" start
  in
  let rec value depth =
    if depth > max_depth then fail "nesting deeper than %d" max_depth;
    skip_ws ();
    match peek () with
    | Some '"' -> S (string_lit ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        O []
      end
      else begin
        let fields = ref [] in
        let continue = ref true in
        while !continue do
          let key = string_lit () in
          expect ':';
          fields := (key, value (depth + 1)) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos
          | Some '}' ->
            incr pos;
            continue := false
          | _ -> fail "expected ',' or '}' at offset %d" !pos
        done;
        O (List.rev !fields)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        A []
      end
      else begin
        let items = ref [] in
        let continue = ref true in
        while !continue do
          items := value (depth + 1) :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos
          | Some ']' ->
            incr pos;
            continue := false
          | _ -> fail "expected ',' or ']' at offset %d" !pos
        done;
        A (List.rev !items)
      end
    | _ -> N (number_lit ())
  in
  let v = value 0 in
  skip_ws ();
  if !pos <> n then fail "trailing garbage at offset %d" !pos;
  v

let of_json line =
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt in
  let fields = function O fs -> fs | _ -> fail "expected an object" in
  let str fs key =
    match List.assoc_opt key fs with
    | Some (S s) -> s
    | Some _ -> fail "field %S is not a string" key
    | None -> fail "missing field %S" key
  in
  let num fs key =
    match List.assoc_opt key fs with
    | Some (N f) -> f
    | Some _ -> fail "field %S is not a number" key
    | None -> fail "missing field %S" key
  in
  let int fs key =
    let f = num fs key in
    let i = int_of_float f in
    if float_of_int i <> f then fail "field %S is not an integer" key;
    i
  in
  let rec span_of fs =
    let children =
      match List.assoc_opt "children" fs with
      | None -> []
      | Some (A items) -> List.map (fun v -> span_of (fields v)) items
      | Some _ -> fail "field \"children\" is not an array"
    in
    {
      name = str fs "name";
      start_us = num fs "t_us";
      dur_us = num fs "dur_us";
      children;
    }
  in
  try
    let fs = fields (parse_value line) in
    let trace_id =
      let s = str fs "trace_id" in
      match id_of_string s with
      | Some id -> id
      | None -> fail "malformed trace id %S" s
    in
    let reasons =
      match List.assoc_opt "reasons" fs with
      | Some (A items) ->
        (* unknown reason names are a newer sampler's vocabulary — drop them *)
        List.filter_map
          (function S s -> reason_of_string s | _ -> fail "non-string reason")
          items
      | Some _ -> fail "field \"reasons\" is not an array"
      | None -> fail "missing field \"reasons\""
    in
    if reasons = [] then fail "no recognizable sampling reason";
    let root =
      match List.assoc_opt "root" fs with
      | Some (O rfs) -> span_of rfs
      | Some _ -> fail "field \"root\" is not an object"
      | None -> fail "missing field \"root\""
    in
    Ok
      (make ~trace_id ~tenant:(int fs "tenant") ~app:(str fs "app")
         ~window:(int fs "window") ~shard:(int fs "shard") ~outcome:(str fs "outcome")
         ~latency_us:(num fs "lat_us") ~count:(int fs "count") ~reasons ~root)
  with
  | Parse msg -> Error msg
  | Invalid_argument msg -> Error msg

let pp ppf t =
  Format.fprintf ppf "%s tenant=%d app=%s window=%d shard=%d outcome=%s lat=%.1fus x%d [%s]"
    (id_to_string t.trace_id) t.tenant t.app t.window t.shard t.outcome t.latency_us
    t.count
    (String.concat "," (List.map reason_to_string t.reasons))

let pp_tree ppf t =
  pp ppf t;
  (* preorder numbering matches {!span_id}, so the rendered ids line up with
     the Perfetto exporter's slice args *)
  let next = ref 0 in
  let rec go prefix is_last s =
    let k = !next in
    incr next;
    Format.fprintf ppf "@\n%s%s %-24s @[%10.1fus %+12.1fus  %s@]" prefix
      (if is_last then "└──" else "├──")
      s.name s.start_us s.dur_us
      (id_to_string (span_id ~trace_id:t.trace_id k));
    let prefix = prefix ^ (if is_last then "    " else "│   ") in
    let rec children = function
      | [] -> ()
      | [ c ] -> go prefix true c
      | c :: rest ->
        go prefix false c;
        children rest
    in
    children s.children
  in
  go "" true t.root
