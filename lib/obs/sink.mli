(** Pluggable event sinks.

    A sink is a pair of closures, so callers pay exactly one indirect call
    per event — and instrumented code can skip even that by testing
    {!is_null} first (the convention used by [Flo_storage.Hierarchy]). *)

type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;  (** force buffered output out (no-op for most) *)
}

val null : t
(** Drops everything.  The default sink everywhere; compare with {!is_null}
    (physical equality) to skip event construction entirely. *)

val is_null : t -> bool

(** {1 Ring buffer} — keeps the newest [capacity] events in memory. *)

type ring

val create_ring : capacity:int -> ring
(** @raise Invalid_argument if [capacity <= 0]. *)

val ring_sink : ring -> t
val ring_capacity : ring -> int
val ring_length : ring -> int
(** Number of retained events, [<= capacity]. *)

val ring_dropped : ring -> int
(** Events overwritten because the ring was full. *)

val ring_events : ring -> Event.t list
(** Retained events, oldest first. *)

val ring_clear : ring -> unit

(** {1 Writers and combinators} *)

val jsonl : out_channel -> t
(** One {!Event.to_json} line per event.  [flush] flushes the channel; the
    caller owns (and closes) the channel. *)

val with_jsonl : string -> (t -> 'a) -> 'a
(** [with_jsonl path f] writes the trace to [path ^ ".part"], passes a
    {!jsonl} sink to [f], then closes and atomically renames the side file
    onto [path].  The rename also runs when [f] raises — every emitted
    event is a whole line, so a crashed run still publishes a complete,
    parseable JSONL prefix at [path].  A process killed mid-write leaves
    only the [.part] file behind: [path] is never truncated. *)

val callback : (Event.t -> unit) -> t

val tee : t -> t -> t
(** Emit to both sinks (left first). *)
