type t = { emit : Event.t -> unit; flush : unit -> unit }

let null = { emit = (fun _ -> ()); flush = (fun () -> ()) }
let is_null t = t == null

type ring = {
  capacity : int;
  mutable buf : Event.t array;  (* empty until the first emit *)
  mutable next : int;  (* slot for the next event *)
  mutable length : int;
  mutable dropped : int;
}

let create_ring ~capacity =
  if capacity <= 0 then invalid_arg "Sink.create_ring: capacity must be positive";
  { capacity; buf = [||]; next = 0; length = 0; dropped = 0 }

let ring_capacity r = r.capacity
let ring_length r = r.length
let ring_dropped r = r.dropped

let ring_push r e =
  if Array.length r.buf = 0 then r.buf <- Array.make r.capacity e;
  r.buf.(r.next) <- e;
  r.next <- (r.next + 1) mod r.capacity;
  if r.length < r.capacity then r.length <- r.length + 1 else r.dropped <- r.dropped + 1

let ring_events r =
  let start = (r.next - r.length + r.capacity) mod r.capacity in
  List.init r.length (fun i -> r.buf.((start + i) mod r.capacity))

let ring_clear r =
  r.next <- 0;
  r.length <- 0;
  r.dropped <- 0

let ring_sink r = { emit = ring_push r; flush = (fun () -> ()) }

let jsonl oc =
  {
    emit =
      (fun e ->
        output_string oc (Event.to_json e);
        output_char oc '\n');
    flush = (fun () -> flush oc);
  }

let with_jsonl path f =
  (* write to a side file and publish by rename: a process that dies
     mid-trace never leaves a truncated file at [path] — either the old
     contents survive or the finalized trace appears whole *)
  let tmp = path ^ ".part" in
  let oc = open_out tmp in
  (* close_out flushes; fall back to close_noerr so a full disk or a
     vanished file descriptor never masks the exception in flight *)
  let close () = try close_out oc with Sys_error _ -> close_out_noerr oc in
  (* durability, not just atomicity: force the temp file's bytes to disk
     before the rename publishes it, so a power loss right after the rename
     cannot leave a zero-length file under the final name *)
  let sync () =
    try
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc)
    with Sys_error _ | Unix.Unix_error _ -> ()
  in
  match f (jsonl oc) with
  | v ->
    sync ();
    close ();
    Sys.rename tmp path;
    v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    close ();
    (* [f] raised after emitting whole lines: still publish the prefix so a
       crashed run leaves a parseable trace at [path]; swallow rename
       failures here — the exception in flight is the real error *)
    (try Sys.rename tmp path with Sys_error _ -> ());
    Printexc.raise_with_backtrace e bt

let callback f = { emit = f; flush = (fun () -> ()) }

let tee a b =
  {
    emit =
      (fun e ->
        a.emit e;
        b.emit e);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }
