(** Registry of named metrics with labeled dimensions.

    A metric is identified by its name plus a set of [(key, value)] labels
    (order-insensitive): ["l2.hits"] with [[("node", "3")]] is a different
    time series from the same name with [("node", "0")].  Registration is
    idempotent — asking again for the same (name, labels, kind) returns the
    same underlying cell, so hot paths can resolve handles once at setup.

    {!merge} combines registries from independent runs (or shards): counters
    add, gauges take the max, histograms merge bucket-wise.  All three
    combinations are associative and commutative, so merging is
    order-independent — the property [test/test_obs.ml] checks. *)

type t

type counter
type gauge

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Histogram.t  (** live reference, not a snapshot *)

val create : unit -> t

val counter : t -> ?labels:(string * string) list -> string -> counter
(** @raise Invalid_argument if the name+labels is registered as another kind. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> ?labels:(string * string) list -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  t -> ?labels:(string * string) list -> ?lo:float -> ?gamma:float -> ?buckets:int ->
  string -> Histogram.t
(** The shape parameters apply only on first registration; later lookups
    return the existing histogram unchanged. *)

val find : t -> ?labels:(string * string) list -> string -> value option
val find_histogram : t -> ?labels:(string * string) list -> string -> Histogram.t option

val to_list : t -> (string * (string * string) list * value) list
(** Sorted by name, then labels — a stable order for reports and tests. *)

val cardinal : t -> int

val merge : t -> t -> t
(** Fresh registry; inputs unchanged.
    @raise Invalid_argument on kind or histogram-shape conflicts. *)

val pp : Format.formatter -> t -> unit
