(** Declarative service-level objectives over modeled time windows.

    An SLO names an objective (a latency threshold at a quantile, or an
    error-rate ceiling) and a target: the fraction of time windows that
    must meet the objective.  Evaluation follows the SRE multi-window /
    multi-burn-rate recipe: each window is scored good or bad, the error
    budget is the allowed fraction of bad windows, and alerts fire when a
    large share of the whole period's budget is consumed within a short
    trailing span (fast/page: 5%) or a long one (slow/ticket: 1%).

    Everything here is pure arithmetic over per-window [{total; breaching}]
    sample counts — no clocks, no randomness — so verdicts are
    byte-reproducible wherever the counts are. *)

type objective =
  | Latency of { quantile : float; threshold_us : float }
      (** ["p99<800us"]: a window is good iff at most [1 - quantile] of its
          requests took longer than [threshold_us]. *)
  | Error_rate of { max_rate : float }
      (** ["err<0.5%"]: a window is good iff at most [max_rate] of its
          requests failed. *)

type spec = {
  objective : objective;
  target : float;  (** required fraction of good windows, in [(0, 1)] *)
}

val parse : string -> (spec, string) result
(** Grammar: [pQ<Nunit@T] or [err<N%@T], e.g. ["p99<800us@99.9"] (the p99
    latency must stay under 800 us in 99.9% of windows), ["p50<2ms@99"],
    ["err<0.5%@99.9"].  Units: [us], [ms], [s].  [T] is a percentage in
    [(0, 100)].  Errors are structured messages, never exceptions. *)

val to_string : spec -> string
(** Canonical spelling; [parse (to_string s)] succeeds with an equal spec. *)

type sample = { total : int; breaching : int }
(** One window's request counts: how many requests the window saw and how
    many violated the objective (exceeded the latency threshold, or
    failed).  Both objective kinds reduce to this shape: "p99 under C"
    holds iff at most 1% of requests exceed C. *)

val good : spec -> sample -> bool
(** Whether one window meets the objective.  An empty window ([total = 0])
    is good: no traffic violated anything. *)

type verdict = {
  spec : spec;
  windows : int;
  good_windows : int;
  bad_windows : int;
  bad_flags : bool array;  (** per window, in time order *)
  compliance : float;  (** good / windows; 1 when there are no windows *)
  budget_windows : float;  (** allowed bad windows, [(1 - target) * windows] *)
  budget_consumed : float;
      (** bad / budget; [infinity] when the budget is 0 and a window is bad *)
  budget_remaining : float;  (** [max 0 (1 - budget_consumed)] *)
  burn_rate : float;
      (** budget consumption speed: bad-window {e rate} over the allowed
          rate, [(bad / windows) / (1 - target)]; 1.0 burns exactly the
          budget by period end, above 1 exhausts it early *)
  fast_pages : int;
      (** windows where the fast alert fired: the window is bad and the
          trailing [fast_span] windows consumed >= 5% of the period budget *)
  slow_tickets : int;
      (** same with [slow_span] and a 1% consumption threshold *)
  compliant : bool;  (** [compliance >= target] *)
}

val evaluate : ?fast_span:int -> ?slow_span:int -> spec -> sample array -> verdict
(** Score the period.  [samples] is one entry per window in time order.
    [fast_span] defaults to 1 window, [slow_span] to [max 1 (windows / 4)];
    both are clamped to [[1, windows]].  With few modeled windows the 5%/1%
    thresholds can fall below one window — then any bad window alerts,
    which is the conservative reading.
    @raise Invalid_argument on a sample with negative counts or
    [breaching > total]. *)

val burn_rate_gauge : string
(** ["slo.burn_rate"] — gauge name the evaluators publish under. *)

val budget_remaining_gauge : string
(** ["slo.budget_remaining"] *)

val record : verdict -> ?labels:(string * string) list -> Metrics.t -> unit
(** Publish [burn_rate] and [budget_remaining] gauges plus
    [slo.fast_pages] / [slo.slow_tickets] counters under [labels]. *)
