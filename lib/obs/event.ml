type kind = Access | Hit | Miss | Evict | Demote | Prefetch | Disk_read
type layer = L1 | L2 | Disk

type t = {
  time_us : float;
  kind : kind;
  layer : layer;
  node : int;
  thread : int;
  file : int;
  block : int;
  latency_us : float;
}

let make ~time_us ~kind ~layer ~node ~thread ~file ~block ?(latency_us = 0.) () =
  { time_us; kind; layer; node; thread; file; block; latency_us }

let kind_to_string = function
  | Access -> "access"
  | Hit -> "hit"
  | Miss -> "miss"
  | Evict -> "evict"
  | Demote -> "demote"
  | Prefetch -> "prefetch"
  | Disk_read -> "disk_read"

let layer_to_string = function L1 -> "l1" | L2 -> "l2" | Disk -> "disk"

let to_json e =
  Printf.sprintf
    {|{"t_us":%.3f,"kind":"%s","layer":"%s","node":%d,"thread":%d,"file":%d,"block":%d,"lat_us":%.3f}|}
    e.time_us (kind_to_string e.kind) (layer_to_string e.layer) e.node e.thread e.file
    e.block e.latency_us

let pp ppf e =
  Format.fprintf ppf "[%10.3f] %-9s %s/%d thread=%d block=%d:%d%s" e.time_us
    (kind_to_string e.kind) (layer_to_string e.layer) e.node e.thread e.file e.block
    (if e.latency_us > 0. then Printf.sprintf " lat=%.3fus" e.latency_us else "")
