type kind =
  | Access
  | Hit
  | Miss
  | Evict
  | Demote
  | Prefetch
  | Disk_read
  | Fault
  | Retry
  | Timeout
  | Failover
  | Other of string
type layer = L1 | L2 | Disk

type t = {
  time_us : float;
  kind : kind;
  layer : layer;
  node : int;
  thread : int;
  file : int;
  block : int;
  latency_us : float;
}

let make ~time_us ~kind ~layer ~node ~thread ~file ~block ?(latency_us = 0.) () =
  { time_us; kind; layer; node; thread; file; block; latency_us }

let kind_to_string = function
  | Access -> "access"
  | Hit -> "hit"
  | Miss -> "miss"
  | Evict -> "evict"
  | Demote -> "demote"
  | Prefetch -> "prefetch"
  | Disk_read -> "disk_read"
  | Fault -> "fault"
  | Retry -> "retry"
  | Timeout -> "timeout"
  | Failover -> "failover"
  | Other s -> s

let layer_to_string = function L1 -> "l1" | L2 -> "l2" | Disk -> "disk"

let to_json e =
  Printf.sprintf
    {|{"t_us":%.3f,"kind":"%s","layer":"%s","node":%d,"thread":%d,"file":%d,"block":%d,"lat_us":%.3f}|}
    e.time_us (kind_to_string e.kind) (layer_to_string e.layer) e.node e.thread e.file
    e.block e.latency_us

let kind_of_string = function
  | "access" -> Some Access
  | "hit" -> Some Hit
  | "miss" -> Some Miss
  | "evict" -> Some Evict
  | "demote" -> Some Demote
  | "prefetch" -> Some Prefetch
  | "disk_read" -> Some Disk_read
  | "fault" -> Some Fault
  | "retry" -> Some Retry
  | "timeout" -> Some Timeout
  | "failover" -> Some Failover
  | _ -> None

let layer_of_string = function
  | "l1" -> Some L1
  | "l2" -> Some L2
  | "disk" -> Some Disk
  | _ -> None

exception Parse of string

(* Hand-rolled parser for the flat object {!to_json} emits: string and number
   values only, any field order, no nesting.  Avoids a JSON-library
   dependency for the one record shape we ever read back. *)
let of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt in
  let skip_ws () =
    while
      !pos < n && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
    do
      incr pos
    done
  in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos else fail "expected '%c' at offset %d" c !pos
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          if !pos + 1 >= n then fail "dangling escape";
          Buffer.add_char b line.[!pos + 1];
          pos := !pos + 2;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number_lit () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail "expected a number at offset %d" start;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number at offset %d" start
  in
  let fields = ref [] in
  let parse () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let continue = ref true in
      while !continue do
        let key = string_lit () in
        expect ':';
        skip_ws ();
        let value =
          if peek () = Some '"' then `S (string_lit ()) else `N (number_lit ())
        in
        fields := (key, value) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some '}' ->
          incr pos;
          continue := false
        | _ -> fail "expected ',' or '}' at offset %d" !pos
      done
    end;
    skip_ws ();
    if !pos <> n then fail "trailing garbage at offset %d" !pos
  in
  let num key =
    match List.assoc_opt key !fields with
    | Some (`N f) -> f
    | Some (`S _) -> fail "field %S is not a number" key
    | None -> fail "missing field %S" key
  in
  let str key =
    match List.assoc_opt key !fields with
    | Some (`S s) -> s
    | Some (`N _) -> fail "field %S is not a string" key
    | None -> fail "missing field %S" key
  in
  let int key =
    let f = num key in
    let i = int_of_float f in
    if float_of_int i <> f then fail "field %S is not an integer" key;
    i
  in
  try
    parse ();
    let kind =
      (* unknown kinds round-trip as opaque [Other] records: a trace written
         by a newer emitter must not fail an older analyzer's whole load *)
      let s = str "kind" in
      match kind_of_string s with Some k -> k | None -> Other s
    in
    let layer =
      let s = str "layer" in
      match layer_of_string s with Some l -> l | None -> fail "unknown layer %S" s
    in
    Ok
      {
        time_us = num "t_us";
        kind;
        layer;
        node = int "node";
        thread = int "thread";
        file = int "file";
        block = int "block";
        latency_us = (match List.assoc_opt "lat_us" !fields with
                     | Some (`N f) -> f
                     | Some (`S _) -> fail "field \"lat_us\" is not a number"
                     | None -> 0.);
      }
  with Parse msg -> Error msg

let pp ppf e =
  Format.fprintf ppf "[%10.3f] %-9s %s/%d thread=%d block=%d:%d%s" e.time_us
    (kind_to_string e.kind) (layer_to_string e.layer) e.node e.thread e.file e.block
    (if e.latency_us > 0. then Printf.sprintf " lat=%.3fus" e.latency_us else "")
