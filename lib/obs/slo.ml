(* SLO specs and multi-window / multi-burn-rate evaluation.

   The central reduction: "the pQ latency stays under C" holds for a window
   exactly when at most (1 - Q) of its requests exceed C, and "the error
   rate stays under E" when at most E of its requests fail — so both
   objective kinds score a window from the same {total; breaching} pair and
   no quantile estimation is needed.  All arithmetic is pure, so a verdict
   is byte-identical wherever the per-window counts are. *)

type objective =
  | Latency of { quantile : float; threshold_us : float }
  | Error_rate of { max_rate : float }

type spec = { objective : objective; target : float }

(* ---- spec grammar ---------------------------------------------------- *)

let is_digit c = c >= '0' && c <= '9'

let float_prefix s =
  (* longest numeric prefix (digits, one optional dot) and the rest *)
  let n = String.length s in
  let i = ref 0 in
  let dot = ref false in
  while !i < n && (is_digit s.[!i] || (s.[!i] = '.' && not !dot)) do
    if s.[!i] = '.' then dot := true;
    incr i
  done;
  if !i = 0 then None
  else
    match float_of_string_opt (String.sub s 0 !i) with
    | Some v -> Some (v, String.sub s !i (n - !i))
    | None -> None

let parse_target s =
  (* "@99.9" -> 0.999 *)
  match float_prefix s with
  | Some (pct, "") when pct > 0. && pct < 100. -> Ok (pct /. 100.)
  | Some (_, "") -> Error "target must be a percentage strictly between 0 and 100"
  | _ -> Error "target must be a number (e.g. @99.9)"

let split_on_at s =
  match String.index_opt s '@' with
  | None -> Error "missing '@TARGET' (e.g. p99<800us@99.9)"
  | Some i ->
    Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse_latency body =
  (* "p99<800us" (after the leading 'p' is stripped) *)
  let ( let* ) = Result.bind in
  let* q_str, rest =
    match String.index_opt body '<' with
    | Some i ->
      Ok (String.sub body 0 i, String.sub body (i + 1) (String.length body - i - 1))
    | None -> Error "latency objective needs '<' (e.g. p99<800us)"
  in
  let* quantile =
    match float_of_string_opt q_str with
    | Some p when p > 0. && p < 100. -> Ok (p /. 100.)
    | _ -> Error "quantile must be strictly between 0 and 100 (e.g. p99)"
  in
  let* threshold_us =
    match float_prefix rest with
    | Some (v, unit_) when v > 0. -> (
      match unit_ with
      | "us" -> Ok v
      | "ms" -> Ok (v *. 1e3)
      | "s" -> Ok (v *. 1e6)
      | _ -> Error "latency unit must be us, ms or s")
    | _ -> Error "threshold must be a positive number with a unit (e.g. 800us)"
  in
  Ok (Latency { quantile; threshold_us })

let parse_error_rate body =
  (* "<0.5%" (after "err" is stripped) *)
  let ( let* ) = Result.bind in
  let* rest =
    if String.length body > 0 && body.[0] = '<' then
      Ok (String.sub body 1 (String.length body - 1))
    else Error "error objective needs '<' (e.g. err<0.5%)"
  in
  let* max_rate =
    match float_prefix rest with
    | Some (v, "%") when v >= 0. && v < 100. -> Ok (v /. 100.)
    | Some (_, "%") -> Error "error rate must be in [0, 100)%"
    | _ -> Error "error rate must be a percentage (e.g. 0.5%)"
  in
  Ok (Error_rate { max_rate })

let parse s =
  let ( let* ) = Result.bind in
  let s = String.trim s in
  let* obj_str, target_str = split_on_at s in
  let* target = parse_target target_str in
  let* objective =
    if String.length obj_str >= 3 && String.sub obj_str 0 3 = "err" then
      parse_error_rate (String.sub obj_str 3 (String.length obj_str - 3))
    else if String.length obj_str >= 1 && obj_str.[0] = 'p' then
      parse_latency (String.sub obj_str 1 (String.length obj_str - 1))
    else Error "objective must start with 'p' (latency) or 'err' (error rate)"
  in
  Ok { objective; target }

let num v =
  (* shortest spelling that round-trips through the grammar *)
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let to_string spec =
  let target = num (spec.target *. 100.) in
  match spec.objective with
  | Latency { quantile; threshold_us } ->
    Printf.sprintf "p%s<%sus@%s" (num (quantile *. 100.)) (num threshold_us) target
  | Error_rate { max_rate } ->
    Printf.sprintf "err<%s%%@%s" (num (max_rate *. 100.)) target

(* ---- window scoring --------------------------------------------------- *)

type sample = { total : int; breaching : int }

let allowed_fraction spec =
  match spec.objective with
  | Latency { quantile; _ } -> 1. -. quantile
  | Error_rate { max_rate } -> max_rate

let good spec s =
  if s.total = 0 then true
  else
    float_of_int s.breaching /. float_of_int s.total <= allowed_fraction spec

type verdict = {
  spec : spec;
  windows : int;
  good_windows : int;
  bad_windows : int;
  bad_flags : bool array;
  compliance : float;
  budget_windows : float;
  budget_consumed : float;
  budget_remaining : float;
  burn_rate : float;
  fast_pages : int;
  slow_tickets : int;
  compliant : bool;
}

(* alert at window i iff the window is bad and the trailing [span] windows
   consumed at least [frac] of the whole period's budget *)
let count_alerts ~bad_flags ~span ~frac ~budget_windows =
  let n = Array.length bad_flags in
  let threshold = frac *. budget_windows in
  let fired = ref 0 in
  let in_span = ref 0 in
  for i = 0 to n - 1 do
    if bad_flags.(i) then incr in_span;
    if i >= span && bad_flags.(i - span) then decr in_span;
    if bad_flags.(i) && float_of_int !in_span >= threshold then incr fired
  done;
  !fired

let evaluate ?fast_span ?slow_span spec samples =
  Array.iter
    (fun s ->
      if s.total < 0 || s.breaching < 0 || s.breaching > s.total then
        invalid_arg "Slo.evaluate: sample counts must satisfy 0 <= breaching <= total")
    samples;
  let windows = Array.length samples in
  let clamp span = max 1 (min (max windows 1) span) in
  let fast_span = clamp (Option.value fast_span ~default:1) in
  let slow_span = clamp (Option.value slow_span ~default:(max 1 (windows / 4))) in
  let bad_flags = Array.map (fun s -> not (good spec s)) samples in
  let bad_windows = Array.fold_left (fun a b -> if b then a + 1 else a) 0 bad_flags in
  let good_windows = windows - bad_windows in
  let compliance =
    if windows = 0 then 1. else float_of_int good_windows /. float_of_int windows
  in
  let budget_windows = (1. -. spec.target) *. float_of_int windows in
  let budget_consumed =
    if bad_windows = 0 then 0.
    else if budget_windows <= 0. then infinity
    else float_of_int bad_windows /. budget_windows
  in
  let burn_rate =
    if windows = 0 then 0.
    else
      let bad_rate = float_of_int bad_windows /. float_of_int windows in
      if bad_rate = 0. then 0.
      else if spec.target >= 1. then infinity
      else bad_rate /. (1. -. spec.target)
  in
  {
    spec;
    windows;
    good_windows;
    bad_windows;
    bad_flags;
    compliance;
    budget_windows;
    budget_consumed;
    budget_remaining = Float.max 0. (1. -. budget_consumed);
    burn_rate;
    fast_pages = count_alerts ~bad_flags ~span:fast_span ~frac:0.05 ~budget_windows;
    slow_tickets = count_alerts ~bad_flags ~span:slow_span ~frac:0.01 ~budget_windows;
    compliant = compliance >= spec.target;
  }

(* ---- gauges ----------------------------------------------------------- *)

let burn_rate_gauge = "slo.burn_rate"
let budget_remaining_gauge = "slo.budget_remaining"

let record v ?labels registry =
  Metrics.set_gauge (Metrics.gauge registry ?labels burn_rate_gauge) v.burn_rate;
  Metrics.set_gauge
    (Metrics.gauge registry ?labels budget_remaining_gauge)
    v.budget_remaining;
  Metrics.incr ~by:v.fast_pages (Metrics.counter registry ?labels "slo.fast_pages");
  Metrics.incr ~by:v.slow_tickets (Metrics.counter registry ?labels "slo.slow_tickets")
